#!/usr/bin/env bash
# End-to-end smoke of the persistent job service: boot dcjobd and two
# persistent dcworkers that register themselves, run two isoviz jobs
# through the HTTP API concurrently, check /healthz and both completions,
# then shut everything down with SIGTERM and require clean exits.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; wait || true; rm -rf "$work"' EXIT

go build -o "$work" ./cmd/dcjobd ./cmd/dcworker ./cmd/dcsubmit

server=http://127.0.0.1:18080
"$work/dcjobd" -listen 127.0.0.1:18080 -journal "$work/jobs.jsonl" \
  >"$work/dcjobd.log" 2>&1 &
jobd_pid=$!
"$work/dcworker" -listen 127.0.0.1:19101 -host data1 -register "$server" \
  >"$work/w1.log" 2>&1 &
w1_pid=$!
"$work/dcworker" -listen 127.0.0.1:19102 -host viz -register "$server" \
  >"$work/w2.log" 2>&1 &
w2_pid=$!

wait_for() { # wait_for <seconds> <cmd...>
  local deadline=$((SECONDS + $1)); shift
  until "$@"; do
    if ((SECONDS >= deadline)); then
      echo "smoke: timed out waiting for: $*" >&2
      tail -n 40 "$work"/*.log >&2
      exit 1
    fi
    sleep 0.2
  done
}

wait_for 10 curl -sf "$server/healthz" -o /dev/null
echo "smoke: /healthz ok"
wait_for 15 sh -c "curl -sf $server/workers | grep -c '\"healthy\": true' | grep -qx 2"
echo "smoke: two workers registered and healthy"

# Two jobs through the API at once, each a small synthetic render.
"$work/dcsubmit" -server "$server" -tenant teamA -name smoke-a \
  -size 64 -grid 17 -copies 1 >"$work/job-a.log" 2>&1 &
sub_a=$!
"$work/dcsubmit" -server "$server" -tenant teamB -name smoke-b \
  -size 64 -grid 17 -copies 1 -iso 0.4 >"$work/job-b.log" 2>&1 &
sub_b=$!
wait "$sub_a" || { echo "smoke: job A failed" >&2; cat "$work/job-a.log" >&2; exit 1; }
wait "$sub_b" || { echo "smoke: job B failed" >&2; cat "$work/job-b.log" >&2; exit 1; }
grep -q 'rendered 1 timestep' "$work/job-a.log"
grep -q 'rendered 1 timestep' "$work/job-b.log"
echo "smoke: both jobs rendered"

done_jobs=$(curl -sf "$server/jobs" | grep -c '"state": "done"')
if [ "$done_jobs" -ne 2 ]; then
  echo "smoke: expected 2 done jobs, server reports $done_jobs" >&2
  curl -s "$server/jobs" >&2
  exit 1
fi
echo "smoke: server reports both jobs done"

# Graceful shutdown: SIGTERM must drain and exit 0 everywhere.
kill -TERM "$w1_pid" "$w2_pid" "$jobd_pid"
for pid in "$w1_pid" "$w2_pid" "$jobd_pid"; do
  if ! wait "$pid"; then
    echo "smoke: pid $pid exited non-zero on SIGTERM" >&2
    tail -n 40 "$work"/*.log >&2
    exit 1
  fi
done
grep -q 'final metrics snapshot' "$work/dcjobd.log"
echo "smoke: clean SIGTERM shutdown"
echo "smoke: PASS"
