// Observability overhead benchmarks: the same real-engine pipeline with
// observability disabled (nil observer — the default, matching the
// pre-observability engine), fully enabled (ring sink + registry), and
// metrics-only. The disabled run is the acceptance gate: its cost over the
// seed engine is one nil pointer comparison per instrumented site, and
// BenchmarkPipelineObsDisabled vs BenchmarkPipelineObsEnabled bounds what
// turning observability on costs.
package datacutter

import (
	"sync"
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/obs"
)

type benchSource struct {
	core.BaseFilter
	n int
}

func (s *benchSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if err := ctx.Write("nums", core.Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
	}
	return nil
}

type benchSink struct {
	core.BaseFilter
	mu  *sync.Mutex
	sum *int
}

func (s *benchSink) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read("nums")
		if !ok {
			return nil
		}
		s.mu.Lock()
		*s.sum += b.Payload.(int)
		s.mu.Unlock()
	}
}

func benchPipeline(b *testing.B, o *obs.Observer) {
	b.Helper()
	const n = 20000
	var mu sync.Mutex
	for i := 0; i < b.N; i++ {
		sum := 0
		g := core.NewGraph()
		g.AddFilter("S", func() core.Filter { return &benchSource{n: n} })
		g.AddFilter("K", func() core.Filter { return &benchSink{mu: &mu, sum: &sum} })
		g.Connect("S", "K", "nums")
		pl := core.NewPlacement().Place("S", "h0", 1).Place("K", "h0", 2)
		r, err := core.NewRunner(g, pl, core.Options{Policy: core.DemandDriven(), Obs: o})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
		if sum != n*(n-1)/2 {
			b.Fatalf("sum = %d", sum)
		}
	}
}

// BenchmarkPipelineObsDisabled is the engine's default: a nil observer, so
// every instrumented site costs one pointer comparison.
func BenchmarkPipelineObsDisabled(b *testing.B) { benchPipeline(b, nil) }

// BenchmarkPipelineObsEnabled traces every buffer into a ring sink and
// meters every stream.
func BenchmarkPipelineObsEnabled(b *testing.B) {
	benchPipeline(b, obs.New(obs.NewRingSink(4096), obs.NewRegistry()))
}

// BenchmarkPipelineObsMetricsOnly updates counters but emits no events
// (nil sink short-circuits Emit).
func BenchmarkPipelineObsMetricsOnly(b *testing.B) {
	benchPipeline(b, obs.New(nil, obs.NewRegistry()))
}
