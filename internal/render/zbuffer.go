// Package render implements the rendering substrate of the isosurface
// application: perspective triangle rasterization with Gouraud shading,
// plus the paper's two hidden-surface removal schemes —
//
//   - Z-buffer rendering [33]: a full-frame depth+color accumulator,
//     transmitted wholesale to the merge filter at end-of-work; and
//   - Active Pixel rendering [22]: a sparse z-buffer (Winning Pixel Array
//     indexed by a Modified Scanline Array) that streams winning pixels in
//     fixed-size batches as they are produced, so rasterization and merging
//     pipeline without a synchronization barrier.
//
// All depth tests use one total order (closer depth wins; exact ties fall
// back to the lexicographically smaller color), which makes pixel merging
// commutative, associative, and idempotent: the final image is independent
// of how triangles are partitioned across transparent filter copies and of
// buffer arrival order. The package's property tests verify this.
package render

import (
	"image"
	"image/color"
)

// RGB is a packed 24-bit pixel color.
type RGB struct{ R, G, B uint8 }

// Less orders colors lexicographically; the tie-break that keeps pixel
// merging deterministic.
func (c RGB) Less(o RGB) bool {
	if c.R != o.R {
		return c.R < o.R
	}
	if c.G != o.G {
		return c.G < o.G
	}
	return c.B < o.B
}

// Background is the frame background color.
var Background = RGB{18, 20, 34}

// InfDepth is the clear value of the depth plane.
const InfDepth = float32(3.4e38)

// ZBuffer is a full-frame depth and color accumulator.
type ZBuffer struct {
	W, H  int
	Depth []float32
	Color []RGB
}

// NewZBuffer returns a cleared w×h z-buffer.
func NewZBuffer(w, h int) *ZBuffer {
	z := &ZBuffer{W: w, H: h, Depth: make([]float32, w*h), Color: make([]RGB, w*h)}
	z.Clear()
	return z
}

// Clear resets every pixel to background at infinite depth.
func (z *ZBuffer) Clear() {
	for i := range z.Depth {
		z.Depth[i] = InfDepth
		z.Color[i] = Background
	}
}

// Put deposits a shaded sample, keeping the closer of the existing and new
// samples (ties: smaller color).
func (z *ZBuffer) Put(x, y int, depth float32, c RGB) {
	if x < 0 || y < 0 || x >= z.W || y >= z.H {
		return
	}
	i := y*z.W + x
	if depth < z.Depth[i] || (depth == z.Depth[i] && c.Less(z.Color[i])) {
		z.Depth[i] = depth
		z.Color[i] = c
	}
}

// MergeFrom folds another z-buffer of the same dimensions into z.
func (z *ZBuffer) MergeFrom(o *ZBuffer) {
	if z.W != o.W || z.H != o.H {
		panic("render: merging z-buffers of different sizes")
	}
	for i := range z.Depth {
		if o.Depth[i] < z.Depth[i] || (o.Depth[i] == z.Depth[i] && o.Color[i].Less(z.Color[i])) {
			z.Depth[i] = o.Depth[i]
			z.Color[i] = o.Color[i]
		}
	}
}

// MergeRange folds a contiguous row-major slice of another buffer's planes,
// starting at pixel offset off. It is how the merge filter consumes the
// fixed-size buffers a z-buffer is shipped in.
func (z *ZBuffer) MergeRange(off int, depth []float32, colors []RGB) {
	for i := range depth {
		j := off + i
		if depth[i] < z.Depth[j] || (depth[i] == z.Depth[j] && colors[i].Less(z.Color[j])) {
			z.Depth[j] = depth[i]
			z.Color[j] = colors[i]
		}
	}
}

// ActiveCount returns the number of pixels with at least one sample (the
// paper's "active pixel locations").
func (z *ZBuffer) ActiveCount() int {
	n := 0
	for _, d := range z.Depth {
		if d != InfDepth {
			n++
		}
	}
	return n
}

// Image converts the color plane to an image.
func (z *ZBuffer) Image() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, z.W, z.H))
	for y := 0; y < z.H; y++ {
		for x := 0; x < z.W; x++ {
			c := z.Color[y*z.W+x]
			img.SetRGBA(x, y, color.RGBA{c.R, c.G, c.B, 255})
		}
	}
	return img
}

// Equal reports whether two buffers hold identical images and depths.
func (z *ZBuffer) Equal(o *ZBuffer) bool {
	if z.W != o.W || z.H != o.H {
		return false
	}
	for i := range z.Depth {
		if z.Depth[i] != o.Depth[i] || z.Color[i] != o.Color[i] {
			return false
		}
	}
	return true
}

// ZPixelBytes is the serialized size of one z-buffer pixel (depth + color),
// used for stream accounting when shipping full frames to the merge filter.
const ZPixelBytes = 4 + 3
