package render

// Pixel is one winning (foremost) pixel sample: screen position, depth, and
// shaded color. It is the unit of the Active Pixel algorithm's Winning
// Pixel Array.
type Pixel struct {
	X, Y  int32
	Depth float32
	C     RGB
}

// PixelBytes is the serialized size of one Pixel for stream accounting.
const PixelBytes = 4 + 4 + 4 + 3

// ActivePixels is the Active Pixel renderer's sparse z-buffer: a Winning
// Pixel Array (WPA) holding foremost pixels in consecutive memory, indexed
// by a Modified Scanline Array (MSA) of one entry per screen column. An MSA
// entry points at the WPA slot that most recently won its column; staleness
// is detected by comparing the stored position, so the structure needs no
// per-frame clearing. When the WPA reaches capacity it is flushed — in the
// filter pipeline, flushed arrays become fixed-size stream buffers sent to
// the merge filter while rasterization continues (no end-of-work barrier,
// unlike the z-buffer algorithm).
type ActivePixels struct {
	W, H  int
	cap   int
	msa   []int32
	wpa   []Pixel
	flush func([]Pixel)

	// Flushes counts how many times the WPA filled.
	Flushes int
}

// NewActivePixels creates a renderer target for a w×h screen whose WPA
// holds capacity pixels; flush is invoked with the full WPA content each
// time it fills (and by FlushRemaining). The slice passed to flush is only
// valid during the call.
func NewActivePixels(w, h, capacity int, flush func([]Pixel)) *ActivePixels {
	if capacity < 1 {
		capacity = 1
	}
	a := &ActivePixels{
		W: w, H: h, cap: capacity,
		msa:   make([]int32, w),
		wpa:   make([]Pixel, 0, capacity),
		flush: flush,
	}
	for i := range a.msa {
		a.msa[i] = -1
	}
	return a
}

// Len returns the current WPA occupancy.
func (a *ActivePixels) Len() int { return len(a.wpa) }

// Put deposits a shaded sample. Within the current WPA, a column's latest
// scanline entry is updated in place under the standard depth/color order;
// other samples append.
func (a *ActivePixels) Put(x, y int, depth float32, c RGB) {
	if x < 0 || y < 0 || x >= a.W || y >= a.H {
		return
	}
	if i := a.msa[x]; i >= 0 && int(i) < len(a.wpa) {
		e := &a.wpa[i]
		if int(e.X) == x && int(e.Y) == y {
			if depth < e.Depth || (depth == e.Depth && c.Less(e.C)) {
				e.Depth = depth
				e.C = c
			}
			return
		}
	}
	a.wpa = append(a.wpa, Pixel{X: int32(x), Y: int32(y), Depth: depth, C: c})
	a.msa[x] = int32(len(a.wpa) - 1)
	if len(a.wpa) >= a.cap {
		a.doFlush()
	}
}

func (a *ActivePixels) doFlush() {
	if len(a.wpa) == 0 {
		return
	}
	a.Flushes++
	a.flush(a.wpa)
	a.wpa = a.wpa[:0]
	for i := range a.msa {
		a.msa[i] = -1
	}
}

// FlushRemaining emits any buffered pixels (call when all triangles of the
// current input buffer — or unit of work — are rasterized).
func (a *ActivePixels) FlushRemaining() { a.doFlush() }

// MergePixels folds a batch of winning pixels into a full z-buffer (the
// merge filter's operation for the Active Pixel algorithm).
func MergePixels(z *ZBuffer, px []Pixel) {
	for _, p := range px {
		z.Put(int(p.X), int(p.Y), p.Depth, p.C)
	}
}
