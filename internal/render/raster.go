package render

import (
	"math"

	"datacutter/internal/geom"
)

// Target receives shaded samples from the rasterizer; both *ZBuffer and
// *ActivePixels implement it.
type Target interface {
	Put(x, y int, depth float32, c RGB)
}

var (
	_ Target = (*ZBuffer)(nil)
	_ Target = (*ActivePixels)(nil)
)

// Raster transforms, shades, and scan-converts triangles. It corresponds to
// the transformation + shading + hidden-surface-removal work of the paper's
// raster filter.
type Raster struct {
	W, H int
	M    geom.Mat4 // world-to-pixel transform

	// Light is the unit direction from surface toward the light.
	Light geom.Vec3
	// Ambient and Diffuse are the shading coefficients.
	Ambient, Diffuse float64
	// Base is the surface color at full intensity.
	Base [3]float64

	// Triangles and Pixels count work done, for cost calibration.
	Triangles int64
	Pixels    int64

	// scissor restricts rasterization to scanlines [scissorY0, scissorY1)
	// when scissorY1 > 0 — the image-space partitioning of the paper's
	// proposed hybrid strategy (§6): each raster copy owns a screen band.
	scissorY0, scissorY1 int
}

// SetScissor restricts output to scanlines y0 <= y < y1.
func (r *Raster) SetScissor(y0, y1 int) {
	r.scissorY0, r.scissorY1 = y0, y1
}

// Band returns the half-open scanline interval [y0, y1) of band i of n
// equal horizontal strips of an h-pixel-tall image.
func Band(h, n, i int) (y0, y1 int) {
	return i * h / n, (i + 1) * h / n
}

// BandOf returns the band containing scanline y (the inverse of Band,
// exact even when h is not divisible by n).
func BandOf(h, n, y int) int {
	if y < 0 {
		return 0
	}
	if y >= h {
		return n - 1
	}
	i := y * n / h
	if i+1 < n {
		if s, _ := Band(h, n, i+1); y >= s {
			i++
		}
	}
	if s, _ := Band(h, n, i); y < s {
		i--
	}
	return i
}

// NewRaster builds a rasterizer for a w×h screen viewed through cam.
func NewRaster(cam geom.Camera, w, h int) *Raster {
	return &Raster{
		W: w, H: h,
		M:       cam.Matrix(w, h),
		Light:   geom.V(0.4, 0.8, 0.45).Normalize(),
		Ambient: 0.18,
		Diffuse: 0.82,
		Base:    [3]float64{168, 196, 255},
	}
}

// shadeVertex computes a Gouraud vertex color from its normal (two-sided
// Lambert: isosurfaces have no intrinsic orientation toward the camera).
func (r *Raster) shadeVertex(n geom.Vec3) RGB {
	lambert := float64(n.Dot(r.Light))
	if lambert < 0 {
		lambert = -lambert
	}
	k := r.Ambient + r.Diffuse*lambert
	clamp := func(v float64) uint8 {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	return RGB{clamp(r.Base[0] * k), clamp(r.Base[1] * k), clamp(r.Base[2] * k)}
}

// Draw rasterizes one triangle into the target: transform to screen space,
// clip (triangles reaching behind the eye plane are culled; the screen
// rectangle clips the rest), shade, and fill with interpolated depth and
// color. Pixel centers are sampled at (x+0.5, y+0.5).
func (r *Raster) Draw(t geom.Triangle, out Target) {
	var sp [3]geom.Vec3
	for i := 0; i < 3; i++ {
		p, w := r.M.Apply(t.P[i])
		if w <= 0 {
			return // behind the eye plane
		}
		sp[i] = p
	}
	var sc [3]RGB
	for i := 0; i < 3; i++ {
		sc[i] = r.shadeVertex(t.N[i])
	}
	r.Triangles++

	// Screen bounding box, clipped to the viewport.
	minX := int(math.Floor(float64(min3(sp[0].X, sp[1].X, sp[2].X))))
	maxX := int(math.Ceil(float64(max3(sp[0].X, sp[1].X, sp[2].X))))
	minY := int(math.Floor(float64(min3(sp[0].Y, sp[1].Y, sp[2].Y))))
	maxY := int(math.Ceil(float64(max3(sp[0].Y, sp[1].Y, sp[2].Y))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > r.W-1 {
		maxX = r.W - 1
	}
	if maxY > r.H-1 {
		maxY = r.H - 1
	}
	if r.scissorY1 > 0 {
		if minY < r.scissorY0 {
			minY = r.scissorY0
		}
		if maxY > r.scissorY1-1 {
			maxY = r.scissorY1 - 1
		}
	}
	if minX > maxX || minY > maxY {
		return
	}

	// Barycentric fill in float64 for watertight edge behavior.
	x0, y0 := float64(sp[0].X), float64(sp[0].Y)
	x1, y1 := float64(sp[1].X), float64(sp[1].Y)
	x2, y2 := float64(sp[2].X), float64(sp[2].Y)
	area := (x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)
	if area == 0 {
		return
	}
	inv := 1 / area
	for y := minY; y <= maxY; y++ {
		py := float64(y) + 0.5
		for x := minX; x <= maxX; x++ {
			px := float64(x) + 0.5
			w0 := ((x1-px)*(y2-py) - (x2-px)*(y1-py)) * inv
			w1 := ((x2-px)*(y0-py) - (x0-px)*(y2-py)) * inv
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			depth := float32(w0*float64(sp[0].Z) + w1*float64(sp[1].Z) + w2*float64(sp[2].Z))
			c := RGB{
				lerp3(sc[0].R, sc[1].R, sc[2].R, w0, w1, w2),
				lerp3(sc[0].G, sc[1].G, sc[2].G, w0, w1, w2),
				lerp3(sc[0].B, sc[1].B, sc[2].B, w0, w1, w2),
			}
			out.Put(x, y, depth, c)
			r.Pixels++
		}
	}
}

// DrawAll rasterizes a batch.
func (r *Raster) DrawAll(ts []geom.Triangle, out Target) {
	for _, t := range ts {
		r.Draw(t, out)
	}
}

func lerp3(a, b, c uint8, wa, wb, wc float64) uint8 {
	v := wa*float64(a) + wb*float64(b) + wc*float64(c)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func min3(a, b, c float32) float32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3(a, b, c float32) float32 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
