package render

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datacutter/internal/geom"
	"datacutter/internal/mcubes"
	"datacutter/internal/volume"
)

func testScene(t *testing.T, n int) []geom.Triangle {
	t.Helper()
	fld := volume.NewPlumeField(31, 4)
	v := volume.Rasterize(fld, n, n, n, 0)
	min, max := v.MinMax()
	tris, _ := mcubes.Extract(v, min+(max-min)*0.5, nil)
	if len(tris) == 0 {
		t.Fatal("test scene empty")
	}
	return tris
}

func render(tris []geom.Triangle, w, h int) *ZBuffer {
	z := NewZBuffer(w, h)
	r := NewRaster(geom.DefaultCamera(), w, h)
	r.DrawAll(tris, z)
	return z
}

func TestRenderProducesPixels(t *testing.T) {
	z := render(testScene(t, 24), 96, 96)
	if z.ActiveCount() == 0 {
		t.Fatal("no active pixels")
	}
	if z.ActiveCount() >= z.W*z.H {
		t.Fatal("surface fills entire frame; camera framing wrong")
	}
}

func TestZBufferPutRespectsDepthOrder(t *testing.T) {
	z := NewZBuffer(4, 4)
	z.Put(1, 1, 5, RGB{10, 0, 0})
	z.Put(1, 1, 3, RGB{0, 10, 0}) // closer wins
	z.Put(1, 1, 4, RGB{0, 0, 10}) // farther loses
	if z.Color[1*4+1] != (RGB{0, 10, 0}) {
		t.Fatalf("pixel = %+v", z.Color[1*4+1])
	}
	// Exact tie: smaller color wins regardless of order.
	z.Put(2, 2, 1, RGB{9, 9, 9})
	z.Put(2, 2, 1, RGB{1, 1, 1})
	if z.Color[2*4+2] != (RGB{1, 1, 1}) {
		t.Fatal("tie-break failed")
	}
	z.Put(3, 3, 1, RGB{1, 1, 1})
	z.Put(3, 3, 1, RGB{9, 9, 9})
	if z.Color[3*4+3] != (RGB{1, 1, 1}) {
		t.Fatal("tie-break order dependent")
	}
}

func TestZBufferPutIgnoresOutOfBounds(t *testing.T) {
	z := NewZBuffer(2, 2)
	z.Put(-1, 0, 1, RGB{1, 1, 1})
	z.Put(0, -1, 1, RGB{1, 1, 1})
	z.Put(2, 0, 1, RGB{1, 1, 1})
	z.Put(0, 2, 1, RGB{1, 1, 1})
	if z.ActiveCount() != 0 {
		t.Fatal("out-of-bounds writes landed")
	}
}

// Property: merging z-buffers is commutative and order independent —
// merging partial buffers in any order or grouping yields the full render.
func TestMergeCommutesProperty(t *testing.T) {
	tris := testScene(t, 16)
	const w, h = 48, 48
	full := render(tris, w, h)

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 1 + rng.Intn(5)
		bufs := make([]*ZBuffer, parts)
		for i := range bufs {
			bufs[i] = NewZBuffer(w, h)
		}
		r := NewRaster(geom.DefaultCamera(), w, h)
		for _, tr := range tris {
			r.Draw(tr, bufs[rng.Intn(parts)])
		}
		acc := NewZBuffer(w, h)
		for _, i := range rng.Perm(parts) {
			acc.MergeFrom(bufs[i])
		}
		return acc.Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	full := render(testScene(t, 16), 40, 40)
	acc := NewZBuffer(40, 40)
	acc.MergeFrom(full)
	acc.MergeFrom(full)
	if !acc.Equal(full) {
		t.Fatal("double merge changed the image")
	}
}

func TestMergeRangeEqualsMergeFrom(t *testing.T) {
	full := render(testScene(t, 16), 40, 40)
	acc := NewZBuffer(40, 40)
	const chunk = 333
	for off := 0; off < len(full.Depth); off += chunk {
		end := off + chunk
		if end > len(full.Depth) {
			end = len(full.Depth)
		}
		acc.MergeRange(off, full.Depth[off:end], full.Color[off:end])
	}
	if !acc.Equal(full) {
		t.Fatal("chunked merge differs from whole merge")
	}
}

// The headline equivalence: Active Pixel rendering produces the identical
// image to z-buffer rendering, for any WPA capacity and triangle partition.
func TestActivePixelEqualsZBuffer(t *testing.T) {
	tris := testScene(t, 20)
	const w, h = 64, 64
	want := render(tris, w, h)

	for _, capacity := range []int{1, 7, 256, 100000} {
		merged := NewZBuffer(w, h)
		ap := NewActivePixels(w, h, capacity, func(px []Pixel) { MergePixels(merged, px) })
		r := NewRaster(geom.DefaultCamera(), w, h)
		r.DrawAll(tris, ap)
		ap.FlushRemaining()
		if !merged.Equal(want) {
			t.Fatalf("cap=%d: active pixel image differs from z-buffer image", capacity)
		}
	}
}

func TestActivePixelPartitionedCopiesEqualSingle(t *testing.T) {
	tris := testScene(t, 20)
	const w, h = 64, 64
	want := render(tris, w, h)

	rng := rand.New(rand.NewSource(4))
	merged := NewZBuffer(w, h)
	const copies = 3
	aps := make([]*ActivePixels, copies)
	rs := make([]*Raster, copies)
	for i := range aps {
		aps[i] = NewActivePixels(w, h, 97, func(px []Pixel) { MergePixels(merged, px) })
		rs[i] = NewRaster(geom.DefaultCamera(), w, h)
	}
	for _, tr := range tris {
		i := rng.Intn(copies)
		rs[i].Draw(tr, aps[i])
	}
	for _, ap := range aps {
		ap.FlushRemaining()
	}
	if !merged.Equal(want) {
		t.Fatal("partitioned active-pixel render differs")
	}
}

func TestActivePixelFlushesWhenFull(t *testing.T) {
	flushed := 0
	ap := NewActivePixels(16, 16, 4, func(px []Pixel) { flushed += len(px) })
	for i := 0; i < 10; i++ {
		ap.Put(i%16, i/16, 1, RGB{1, 2, 3})
	}
	if ap.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", ap.Flushes)
	}
	ap.FlushRemaining()
	if flushed != 10 {
		t.Fatalf("flushed %d pixels, want 10", flushed)
	}
	ap.FlushRemaining() // no-op on empty
	if ap.Flushes != 3 {
		t.Fatalf("empty flush counted: %d", ap.Flushes)
	}
}

func TestActivePixelDedupesColumn(t *testing.T) {
	var got []Pixel
	ap := NewActivePixels(8, 8, 100, func(px []Pixel) { got = append(got, px...) })
	ap.Put(3, 3, 5, RGB{9, 9, 9})
	ap.Put(3, 3, 2, RGB{1, 1, 1}) // same pixel, closer: in-place update
	ap.FlushRemaining()
	if len(got) != 1 || got[0].Depth != 2 || got[0].C != (RGB{1, 1, 1}) {
		t.Fatalf("WPA content: %+v", got)
	}
}

func TestActivePixelSparserThanZBufferTransport(t *testing.T) {
	// The AP algorithm's raison d'être (paper Table 1): transported volume
	// is proportional to active pixels, far below the full frame.
	tris := testScene(t, 20)
	const w, h = 128, 128
	sent := 0
	merged := NewZBuffer(w, h)
	ap := NewActivePixels(w, h, 512, func(px []Pixel) {
		sent += len(px) * PixelBytes
		MergePixels(merged, px)
	})
	r := NewRaster(geom.DefaultCamera(), w, h)
	r.DrawAll(tris, ap)
	ap.FlushRemaining()
	zbBytes := w * h * ZPixelBytes
	if sent >= zbBytes {
		t.Fatalf("AP transport %d B not below ZB transport %d B", sent, zbBytes)
	}
}

func TestBehindCameraTrianglesCulled(t *testing.T) {
	cam := geom.DefaultCamera()
	behindCenter := cam.Eye.Add(cam.ViewDir().Scale(-2))
	tri := geom.Triangle{P: [3]geom.Vec3{
		behindCenter,
		behindCenter.Add(geom.V(0.1, 0, 0)),
		behindCenter.Add(geom.V(0, 0.1, 0)),
	}}
	z := NewZBuffer(32, 32)
	r := NewRaster(cam, 32, 32)
	r.Draw(tri, z)
	if z.ActiveCount() != 0 {
		t.Fatal("behind-camera triangle rasterized")
	}
}

func TestOffscreenTriangleClipped(t *testing.T) {
	// A triangle far to the side of the frustum rasterizes nothing but
	// must not crash or write out of bounds.
	tri := geom.Triangle{P: [3]geom.Vec3{
		geom.V(50, 0, 0), geom.V(51, 0, 0), geom.V(50, 1, 0),
	}}
	z := NewZBuffer(32, 32)
	r := NewRaster(geom.DefaultCamera(), 32, 32)
	r.Draw(tri, z)
	if z.ActiveCount() != 0 {
		t.Fatal("offscreen triangle rasterized")
	}
}

func TestImageConversion(t *testing.T) {
	z := NewZBuffer(8, 8)
	z.Put(2, 5, 1, RGB{200, 100, 50})
	img := z.Image()
	c := img.RGBAAt(2, 5)
	if c.R != 200 || c.G != 100 || c.B != 50 || c.A != 255 {
		t.Fatalf("image pixel = %+v", c)
	}
	bg := img.RGBAAt(0, 0)
	if bg.R != Background.R {
		t.Fatalf("background = %+v", bg)
	}
}

func TestShadingVariesWithNormal(t *testing.T) {
	r := NewRaster(geom.DefaultCamera(), 8, 8)
	lit := r.shadeVertex(r.Light)
	dark := r.shadeVertex(geom.V(r.Light.Y, -r.Light.X, 0).Normalize()) // orthogonal
	if lit == dark {
		t.Fatal("shading insensitive to normals")
	}
	if dark.R == 0 {
		t.Fatal("ambient term missing")
	}
}

func TestRasterCountsWork(t *testing.T) {
	tris := testScene(t, 16)
	z := NewZBuffer(64, 64)
	r := NewRaster(geom.DefaultCamera(), 64, 64)
	r.DrawAll(tris, z)
	if r.Triangles == 0 || r.Pixels == 0 {
		t.Fatalf("work counters empty: %d tris %d px", r.Triangles, r.Pixels)
	}
	if r.Triangles > int64(len(tris)) {
		t.Fatalf("triangle counter too high: %d > %d", r.Triangles, len(tris))
	}
}

// Property: Band/BandOf are exact inverses — every scanline belongs to
// exactly the band whose interval contains it, for awkward heights too.
func TestBandOfInvertsBand(t *testing.T) {
	for _, h := range []int{1, 7, 10, 512, 1000} {
		for _, n := range []int{1, 2, 3, 7, 16} {
			if n > h {
				continue
			}
			for y := 0; y < h; y++ {
				i := BandOf(h, n, y)
				y0, y1 := Band(h, n, i)
				if y < y0 || y >= y1 {
					t.Fatalf("h=%d n=%d y=%d -> band %d [%d,%d)", h, n, y, i, y0, y1)
				}
			}
			// Bands tile [0,h) exactly.
			prev := 0
			for i := 0; i < n; i++ {
				y0, y1 := Band(h, n, i)
				if y0 != prev || y1 <= y0 && h >= n {
					t.Fatalf("h=%d n=%d band %d = [%d,%d), prev end %d", h, n, i, y0, y1, prev)
				}
				prev = y1
			}
			if prev != h {
				t.Fatalf("h=%d n=%d bands end at %d", h, n, prev)
			}
		}
	}
}

func TestScissorRestrictsOutput(t *testing.T) {
	tris := testScene(t, 16)
	full := render(tris, 64, 64)
	z := NewZBuffer(64, 64)
	r := NewRaster(geom.DefaultCamera(), 64, 64)
	r.SetScissor(16, 32)
	r.DrawAll(tris, z)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			i := y*64 + x
			inBand := y >= 16 && y < 32
			if inBand {
				if z.Depth[i] != full.Depth[i] {
					t.Fatalf("pixel (%d,%d) differs inside scissor", x, y)
				}
			} else if z.Depth[i] != InfDepth {
				t.Fatalf("pixel (%d,%d) written outside scissor", x, y)
			}
		}
	}
}

// Banded rasterization with scissoring reassembles the exact full image.
func TestBandedRasterizationExact(t *testing.T) {
	tris := testScene(t, 20)
	const w, h, bands = 64, 60, 7 // 60 % 7 != 0: uneven bands
	full := render(tris, w, h)
	acc := NewZBuffer(w, h)
	for b := 0; b < bands; b++ {
		z := NewZBuffer(w, h)
		r := NewRaster(geom.DefaultCamera(), w, h)
		y0, y1 := Band(h, bands, b)
		r.SetScissor(y0, y1)
		r.DrawAll(tris, z)
		acc.MergeFrom(z)
	}
	if !acc.Equal(full) {
		t.Fatal("banded render differs from full render")
	}
}
