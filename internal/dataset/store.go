package dataset

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"datacutter/internal/obs"
	"datacutter/internal/volume"
	"datacutter/internal/wirebin"
)

// Store is an on-disk chunked dataset: one binary file per declustering
// file, holding each assigned chunk's raw samples for every timestep, plus
// a meta.json. Record layout is fully determined by the Meta (chunks appear
// in Hilbert order, grouped by timestep), so no per-record index is needed.
type Store struct {
	Dir string
	DS  *Dataset
	// offsets[file] maps (timestep, position-within-file) to byte offset.
	offsets [][]int64
	perFile [][]int // chunk ids per file, Hilbert order

	// Open file handles, one per data file, opened lazily and kept for the
	// store's lifetime (reads use ReadAt, so one handle serves concurrent
	// readers).
	mu      sync.Mutex
	handles []*os.File

	// mmap read mode (EnableMmap): data files are mapped lazily and chunk
	// samples decode straight out of the page cache — no read syscall and
	// no scratch buffer per chunk. maps[f] is nil until first use.
	useMmap bool
	maps    [][]byte

	// scratch recycles per-read raw chunk buffers. A sync.Pool (rather than
	// a single buffer) keeps ReadChunk safe for concurrent readers — each
	// in-flight read owns its buffer and returns it when done.
	scratch sync.Pool

	// Summary sidecar (summary.go), loaded lazily on the first Prune: nil
	// after sumOnce when the file is missing or rejected by the strict
	// decoder — pruning then degrades to the geometry-only (Box) checks.
	sumOnce sync.Once
	summary *SummaryIndex

	// obsrv publishes pruning metrics and trace events; nil = disabled
	// (every obs method is nil-receiver safe).
	obsrv *obs.Observer
}

const metaFile = "meta.json"

func fileName(f int) string { return fmt.Sprintf("chunks-%03d.dat", f) }

// Create generates the dataset on disk by sampling its synthetic field.
func Create(dir string, m Meta) (*Store, error) {
	ds, err := New(m)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), mj, 0o644); err != nil {
		return nil, err
	}
	fld := ds.Field()
	buf := make([]byte, 0)
	ix := &SummaryIndex{
		Timesteps: m.Timesteps,
		Chunks:    ds.Chunks(),
		Entries:   make([]ChunkSummary, m.Timesteps*ds.Chunks()),
	}
	for f := 0; f < m.Files; f++ {
		chunks := ds.ChunksInFile(f)
		out, err := os.Create(filepath.Join(dir, fileName(f)))
		if err != nil {
			return nil, err
		}
		for t := 0; t < m.Timesteps; t++ {
			for _, c := range chunks {
				v := volume.NewBlockVolume(ds.Block(c))
				volume.FillBlock(fld, v, float64(t))
				summarizeVolume(ix, c, t, v)
				buf = buf[:0]
				for _, s := range v.Data {
					buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(s))
				}
				if _, err := out.Write(buf); err != nil {
					out.Close()
					return nil, err
				}
			}
		}
		if err := out.Close(); err != nil {
			return nil, err
		}
	}
	// The pruning sidecar costs one record per chunk-timestep and no extra
	// reads — the volumes were just in hand.
	if err := WriteSummaryIndex(dir, ix); err != nil {
		return nil, err
	}
	return Open(dir)
}

// Open loads a store's metadata and builds its offset tables.
func Open(dir string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, err
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("dataset: bad %s: %w", metaFile, err)
	}
	ds, err := New(m)
	if err != nil {
		return nil, err
	}
	s := &Store{Dir: dir, DS: ds, handles: make([]*os.File, m.Files)}
	s.perFile = make([][]int, m.Files)
	s.offsets = make([][]int64, m.Files)
	for f := 0; f < m.Files; f++ {
		chunks := ds.ChunksInFile(f)
		s.perFile[f] = chunks
		offs := make([]int64, m.Timesteps*len(chunks)+1)
		var off int64
		i := 0
		for t := 0; t < m.Timesteps; t++ {
			for _, c := range chunks {
				offs[i] = off
				off += int64(ds.ChunkBytes(c))
				i++
			}
		}
		offs[i] = off
		s.offsets[f] = offs
	}
	return s, nil
}

// EnableMmap switches the store to mmap read mode: subsequent ReadChunks
// decode from read-only shared mappings instead of issuing preads. Call it
// before reading; it errors on platforms without mmap support.
func (s *Store) EnableMmap() error {
	if !mmapSupported {
		return fmt.Errorf("dataset: mmap is not supported on this platform")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maps == nil {
		s.maps = make([][]byte, len(s.handles))
	}
	s.useMmap = true
	return nil
}

// mapping returns (mapping lazily) the read-only mmap of data file f.
func (s *Store) mapping(f int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maps[f] != nil {
		return s.maps[f], nil
	}
	fh := s.handles[f]
	if fh == nil {
		var err error
		fh, err = os.Open(filepath.Join(s.Dir, fileName(f)))
		if err != nil {
			return nil, err
		}
		s.handles[f] = fh
	}
	m, err := mmapFile(fh)
	if err != nil {
		return nil, fmt.Errorf("dataset: mapping %s: %w", fileName(f), err)
	}
	s.maps[f] = m
	return m, nil
}

// handle returns the lazily opened file handle for data file f.
func (s *Store) handle(f int) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.handles[f] != nil {
		return s.handles[f], nil
	}
	fh, err := os.Open(filepath.Join(s.Dir, fileName(f)))
	if err != nil {
		return nil, err
	}
	s.handles[f] = fh
	return fh, nil
}

// Close releases the store's open file handles and mappings.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for i, m := range s.maps {
		if m != nil {
			if err := munmapFile(m); err != nil && first == nil {
				first = err
			}
			s.maps[i] = nil
		}
	}
	for i, fh := range s.handles {
		if fh != nil {
			if err := fh.Close(); err != nil && first == nil {
				first = err
			}
			s.handles[i] = nil
		}
	}
	return first
}

// ReadChunk reads one chunk at one timestep from disk.
func (s *Store) ReadChunk(chunk, timestep int) (*volume.Volume, error) {
	if timestep < 0 || timestep >= s.DS.Timesteps {
		return nil, fmt.Errorf("dataset: timestep %d out of range", timestep)
	}
	f := s.DS.FileOf(chunk)
	pos := -1
	for i, c := range s.perFile[f] {
		if c == chunk {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("dataset: chunk %d not in file %d", chunk, f)
	}
	idx := timestep*len(s.perFile[f]) + pos
	off := s.offsets[f][idx]
	size := s.DS.ChunkBytes(chunk)

	s.mu.Lock()
	mm := s.useMmap
	s.mu.Unlock()
	v := volume.NewBlockVolume(s.DS.Block(chunk))
	if mm {
		m, err := s.mapping(f)
		if err != nil {
			return nil, err
		}
		if off+int64(size) > int64(len(m)) {
			return nil, fmt.Errorf("dataset: chunk %d extends past mapped file %d", chunk, f)
		}
		wirebin.Float32s(v.Data, m[off:off+int64(size)])
		return v, nil
	}

	fh, err := s.handle(f)
	if err != nil {
		return nil, err
	}
	raw := s.scratchBuf(size)
	defer s.scratch.Put(raw)
	if _, err := fh.ReadAt(*raw, off); err != nil {
		return nil, fmt.Errorf("dataset: reading chunk %d: %w", chunk, err)
	}
	wirebin.Float32s(v.Data, *raw)
	return v, nil
}

// SetObserver attaches the observability subsystem: Prune publishes
// dataset.chunks_pruned / dataset.bytes_skipped counters and a prune trace
// event per evaluation. o may be nil (disabled). Engines that run filters
// over this store call it through the filters' SetObserver chain.
func (s *Store) SetObserver(o *obs.Observer) {
	s.mu.Lock()
	s.obsrv = o
	s.mu.Unlock()
}

func (s *Store) observer() *obs.Observer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obsrv
}

// Summaries returns the sidecar summary index, loading it lazily on first
// use. It returns nil — and keeps returning nil without retrying — when the
// sidecar is missing, torn, or truncated: a store without summaries is
// merely unprunable, never broken.
func (s *Store) Summaries() *SummaryIndex {
	s.sumOnce.Do(func() {
		raw, err := os.ReadFile(filepath.Join(s.Dir, SummaryFile))
		if err != nil {
			return
		}
		ix, err := DecodeSummaryIndex(raw)
		if err != nil {
			return
		}
		// A sidecar that disagrees with the meta (copied from another
		// dataset, or written against a different chunking) must not drive
		// pruning decisions.
		if ix.Timesteps != s.DS.Timesteps || ix.Chunks != s.DS.Chunks() {
			return
		}
		s.summary = ix
	})
	return s.summary
}

// Prune returns the subset of chunks that can contribute to pred at
// timestep, in input order. It is conservative by construction: the spatial
// constraint is evaluated exactly against the chunk partition geometry, the
// iso constraint against the sidecar min/max summaries — and any chunk the
// loaded index does not cover (or, with no index at all, every chunk)
// passes the iso check unexamined. The input slice is never mutated.
func (s *Store) Prune(chunks []int, timestep int, pred Predicate) []int {
	if pred.Empty() || len(chunks) == 0 {
		return chunks
	}
	ix := s.Summaries()
	out := make([]int, 0, len(chunks))
	var skippedBytes int64
	for _, c := range chunks {
		if pred.MatchBlock(s.DS.Block(c)) {
			if sum, ok := ix.At(c, timestep); !ok || pred.MatchSummary(sum) {
				out = append(out, c)
				continue
			}
		}
		skippedBytes += int64(s.DS.ChunkBytes(c))
	}
	pruned := len(chunks) - len(out)
	if o := s.observer(); o != nil && pruned > 0 {
		if reg := o.Registry(); reg != nil {
			reg.Counter("dataset.chunks_pruned").Add(int64(pruned))
			reg.Counter("dataset.bytes_skipped").Add(skippedBytes)
		}
		o.Emit(obs.Event{
			Kind: obs.KindPrune, N: pruned, Bytes: int(skippedBytes),
			UOW: timestep, Note: pred.String(),
		})
	}
	return out
}

// scratchBuf returns a pooled raw-read buffer resized to n bytes.
func (s *Store) scratchBuf(n int) *[]byte {
	bp, _ := s.scratch.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}
