package dataset

import (
	"encoding/binary"
	"math"
	"testing"

	"datacutter/internal/volume"
)

// BenchmarkStoreReadChunk measures one chunk read at steady state.
// "pooled" is the shipping path (pooled scratch buffer + bulk float32
// decode); "naive" replicates the path it replaced — a fresh raw buffer per
// read and a per-sample binary.LittleEndian/math.Float32frombits loop — as
// the allocs/op baseline.
func BenchmarkStoreReadChunk(b *testing.B) {
	dir := b.TempDir()
	st, err := Create(dir, Meta{
		Seed: 1, Plumes: 2, Timesteps: 2, Files: 2,
		GX: 32, GY: 32, GZ: 32, BX: 2, BY: 2, BZ: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := st.ReadChunk(i%st.DS.Chunks(), 0)
			if err != nil {
				b.Fatal(err)
			}
			_ = v
		}
	})

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := readChunkNaive(st, i%st.DS.Chunks(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// readChunkNaive is the pre-optimization ReadChunk, kept verbatim as the
// benchmark baseline.
func readChunkNaive(s *Store, chunk, timestep int) (*volume.Volume, error) {
	f := s.DS.FileOf(chunk)
	pos := -1
	for i, c := range s.perFile[f] {
		if c == chunk {
			pos = i
			break
		}
	}
	idx := timestep*len(s.perFile[f]) + pos
	off := s.offsets[f][idx]
	size := s.DS.ChunkBytes(chunk)

	fh, err := s.handle(f)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, size)
	if _, err := fh.ReadAt(raw, off); err != nil {
		return nil, err
	}
	v := volume.NewBlockVolume(s.DS.Block(chunk))
	for i := range v.Data {
		v.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return v, nil
}
