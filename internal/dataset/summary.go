package dataset

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"datacutter/internal/volume"
)

// Chunk summaries are the storage tier's pruning index: one tiny record per
// (chunk, timestep) — the sample min/max plus an occupancy count — written
// at datagen time as a sidecar file next to the data files. A predicate
// (predicate.go) consults the summaries to discard chunks that provably
// cannot contribute to a query before any chunk byte is read, SkimROOT
// style: the selective part of the filter executes where the data lives and
// only surviving chunks cross the network.
//
// The sidecar is advisory. A store without one (older datasets, torn or
// truncated files) degrades to no-pruning — never to an error — because
// pruning is a correctness-critical optimization: a wrongly pruned chunk
// silently corrupts the result, while an unpruned one only costs I/O.

// ChunkSummary aggregates one chunk at one timestep.
type ChunkSummary struct {
	Min, Max float32
	// Occupancy counts nonzero samples — a sparsity measure for placement
	// and admission decisions; pruning soundness rests on Min/Max only.
	Occupancy uint32
}

// Summarize computes the summary of one sample slice.
func Summarize(data []float32) ChunkSummary {
	if len(data) == 0 {
		return ChunkSummary{}
	}
	s := ChunkSummary{Min: data[0], Max: data[0]}
	for _, v := range data {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		if v != 0 {
			s.Occupancy++
		}
	}
	return s
}

// SummaryIndex holds the summaries of every (chunk, timestep) record of a
// store, indexed [timestep*Chunks + chunk] (chunk ids are partition order,
// matching Dataset.Block).
type SummaryIndex struct {
	Timesteps int
	Chunks    int
	Entries   []ChunkSummary
}

// At returns the summary of chunk at timestep. ok=false when the index does
// not cover the pair (callers must then treat the chunk as unprunable).
func (ix *SummaryIndex) At(chunk, timestep int) (ChunkSummary, bool) {
	if ix == nil || chunk < 0 || chunk >= ix.Chunks || timestep < 0 || timestep >= ix.Timesteps {
		return ChunkSummary{}, false
	}
	return ix.Entries[timestep*ix.Chunks+chunk], true
}

// Sidecar format (little-endian, versioned):
//
//	magic "DCSI" | u32 version | u32 timesteps | u32 chunks
//	| timesteps*chunks x (f32 min, f32 max, u32 occupancy)
//
// The decoder is strict, mirroring the wire-frame decoder: counts are
// bounded before any allocation, and trailing bytes reject the file — a
// concatenated or half-overwritten sidecar must degrade to no-pruning, not
// silently half-apply.
const (
	// SummaryFile is the sidecar index filename inside a store directory.
	SummaryFile = "summary.idx"

	summaryMagic   = "DCSI"
	summaryVersion = 1
	summaryHdrLen  = 4 + 4 + 4 + 4
	summaryRecLen  = 4 + 4 + 4

	// maxSummaryEntries bounds timesteps*chunks at decode time so a hostile
	// header cannot force a huge allocation (64 Mi entries = 768 MiB of
	// index would describe a store far beyond anything this repo builds).
	maxSummaryEntries = 1 << 26
)

// EncodeSummaryIndex serializes an index in the sidecar format.
func EncodeSummaryIndex(ix *SummaryIndex) []byte {
	b := make([]byte, 0, summaryHdrLen+len(ix.Entries)*summaryRecLen)
	b = append(b, summaryMagic...)
	b = binary.LittleEndian.AppendUint32(b, summaryVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(ix.Timesteps))
	b = binary.LittleEndian.AppendUint32(b, uint32(ix.Chunks))
	for _, e := range ix.Entries {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(e.Min))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(e.Max))
		b = binary.LittleEndian.AppendUint32(b, e.Occupancy)
	}
	return b
}

// DecodeSummaryIndex parses a sidecar index, rejecting truncated bodies,
// trailing bytes, and counts that do not multiply out to the body length.
func DecodeSummaryIndex(b []byte) (*SummaryIndex, error) {
	if len(b) < summaryHdrLen {
		return nil, fmt.Errorf("dataset: summary index truncated (%d bytes)", len(b))
	}
	if string(b[:4]) != summaryMagic {
		return nil, fmt.Errorf("dataset: bad summary index magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != summaryVersion {
		return nil, fmt.Errorf("dataset: unsupported summary index version %d", v)
	}
	timesteps := binary.LittleEndian.Uint32(b[8:])
	chunks := binary.LittleEndian.Uint32(b[12:])
	n := uint64(timesteps) * uint64(chunks)
	if n > maxSummaryEntries {
		return nil, fmt.Errorf("dataset: summary index claims %d entries (max %d)", n, maxSummaryEntries)
	}
	want := summaryHdrLen + int(n)*summaryRecLen
	if len(b) != want {
		return nil, fmt.Errorf("dataset: summary index is %d bytes, want %d for %dx%d entries",
			len(b), want, timesteps, chunks)
	}
	ix := &SummaryIndex{
		Timesteps: int(timesteps),
		Chunks:    int(chunks),
		Entries:   make([]ChunkSummary, n),
	}
	off := summaryHdrLen
	for i := range ix.Entries {
		ix.Entries[i] = ChunkSummary{
			Min:       math.Float32frombits(binary.LittleEndian.Uint32(b[off:])),
			Max:       math.Float32frombits(binary.LittleEndian.Uint32(b[off+4:])),
			Occupancy: binary.LittleEndian.Uint32(b[off+8:]),
		}
		off += summaryRecLen
	}
	return ix, nil
}

// WriteSummaryIndex writes the sidecar into a store directory atomically
// (tmp + rename), so a crashed writer leaves either the old index or none —
// never a torn one.
func WriteSummaryIndex(dir string, ix *SummaryIndex) error {
	tmp := filepath.Join(dir, SummaryFile+".tmp")
	if err := os.WriteFile(tmp, EncodeSummaryIndex(ix), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, SummaryFile))
}

// BuildSummaryIndex computes the full index of an existing store by reading
// every chunk — the retrofit path (datagen -reindex) for datasets created
// before summaries existed. datagen-time creation computes summaries inline
// instead (Create), without a second read pass.
func BuildSummaryIndex(st *Store) (*SummaryIndex, error) {
	ds := st.DS
	ix := &SummaryIndex{
		Timesteps: ds.Timesteps,
		Chunks:    ds.Chunks(),
		Entries:   make([]ChunkSummary, ds.Timesteps*ds.Chunks()),
	}
	for t := 0; t < ds.Timesteps; t++ {
		for c := 0; c < ds.Chunks(); c++ {
			v, err := st.ReadChunk(c, t)
			if err != nil {
				return nil, fmt.Errorf("dataset: summarizing chunk %d t%d: %w", c, t, err)
			}
			ix.Entries[t*ix.Chunks+c] = Summarize(v.Data)
		}
	}
	return ix, nil
}

// summarizeVolume is the datagen-time hook: Create calls it with each block
// volume it just sampled, so the index costs no extra reads.
func summarizeVolume(ix *SummaryIndex, chunk, timestep int, v *volume.Volume) {
	ix.Entries[timestep*ix.Chunks+chunk] = Summarize(v.Data)
}
