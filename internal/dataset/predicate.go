package dataset

import (
	"fmt"
	"strings"

	"datacutter/internal/volume"
)

// Predicate is a declarative chunk filter a storage node can evaluate
// without reading chunk data: an iso-value range checked against the
// per-chunk min/max summaries, and a spatial box checked against the chunk
// partition geometry. The zero value matches every chunk. Predicates are
// plain data (JSON- and gob-friendly) so they travel in the dist setup
// frame and execute on the worker that owns the store — near-storage, the
// paper's R-filter placement taken one step further.
//
// Soundness: a chunk can emit marching-cubes triangles at iso-value v iff
// it holds a sample <= v and a sample > v (mcubes classifies corners with
// "> iso"; a chunk is a connected box, so mixed samples force a mixed
// cell). MatchSummary keeps a chunk for range [Lo,Hi] iff some v in the
// range could cross: Min <= Hi && Max > Lo. Everything pruned is therefore
// provably triangle-free for every iso-value in the range.
type Predicate struct {
	// Iso keeps only chunks whose value range can cross an iso-value in
	// [Lo,Hi]. Nil = no iso constraint.
	Iso *IsoRange `json:"iso,omitempty"`
	// Box keeps only chunks intersecting the half-open sample-coordinate
	// box — the paper's multi-dimensional range query as a predicate.
	// Nil = no spatial constraint.
	Box *Box `json:"box,omitempty"`
}

// IsoRange is a closed iso-value interval.
type IsoRange struct {
	Lo, Hi float32
}

// Box is a half-open sample-coordinate box [X0,X1) x [Y0,Y1) x [Z0,Z1).
type Box struct {
	X0, Y0, Z0 int
	X1, Y1, Z1 int
}

// IsoPredicate builds the predicate for a single iso-value.
func IsoPredicate(iso float32) Predicate {
	return Predicate{Iso: &IsoRange{Lo: iso, Hi: iso}}
}

// Empty reports whether the predicate matches everything (no pruning).
func (p Predicate) Empty() bool { return p.Iso == nil && p.Box == nil }

// And intersects two predicates: a chunk survives the result only if it
// survives both. Range intersections may be empty, which simply prunes
// everything — still sound.
func (p Predicate) And(q Predicate) Predicate {
	out := Predicate{}
	switch {
	case p.Iso == nil:
		out.Iso = q.Iso
	case q.Iso == nil:
		out.Iso = p.Iso
	default:
		r := IsoRange{Lo: maxf(p.Iso.Lo, q.Iso.Lo), Hi: minf(p.Iso.Hi, q.Iso.Hi)}
		out.Iso = &r
	}
	switch {
	case p.Box == nil:
		out.Box = q.Box
	case q.Box == nil:
		out.Box = p.Box
	default:
		b := Box{
			X0: maxi(p.Box.X0, q.Box.X0), Y0: maxi(p.Box.Y0, q.Box.Y0), Z0: maxi(p.Box.Z0, q.Box.Z0),
			X1: mini(p.Box.X1, q.Box.X1), Y1: mini(p.Box.Y1, q.Box.Y1), Z1: mini(p.Box.Z1, q.Box.Z1),
		}
		out.Box = &b
	}
	return out
}

// MatchSummary evaluates the iso constraint against a chunk summary.
func (p Predicate) MatchSummary(s ChunkSummary) bool {
	if p.Iso == nil {
		return true
	}
	if p.Iso.Lo > p.Iso.Hi {
		// Empty range (e.g. the And of disjoint ranges): no iso-value
		// exists to cross, so nothing matches.
		return false
	}
	return s.Min <= p.Iso.Hi && s.Max > p.Iso.Lo
}

// MatchBlock evaluates the spatial constraint against a chunk's block.
func (p Predicate) MatchBlock(b volume.Block) bool {
	if p.Box == nil {
		return true
	}
	q := p.Box
	return b.X0 < q.X1 && b.X0+b.NX > q.X0 &&
		b.Y0 < q.Y1 && b.Y0+b.NY > q.Y0 &&
		b.Z0 < q.Z1 && b.Z0+b.NZ > q.Z0
}

func (p Predicate) String() string {
	if p.Empty() {
		return "all"
	}
	var parts []string
	if p.Iso != nil {
		if p.Iso.Lo == p.Iso.Hi {
			parts = append(parts, fmt.Sprintf("iso=%g", p.Iso.Lo))
		} else {
			parts = append(parts, fmt.Sprintf("iso=[%g,%g]", p.Iso.Lo, p.Iso.Hi))
		}
	}
	if p.Box != nil {
		parts = append(parts, fmt.Sprintf("box=[%d,%d,%d)-(%d,%d,%d)",
			p.Box.X0, p.Box.Y0, p.Box.Z0, p.Box.X1, p.Box.Y1, p.Box.Z1))
	}
	return strings.Join(parts, " ")
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
