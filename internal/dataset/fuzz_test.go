package dataset

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSummaryIndex drives the sidecar decoder with arbitrary bytes. The
// decoder guards the pruning path: it must never panic or over-allocate
// whatever the header claims (hostile counts, truncation, trailing bytes are
// all in the seed corpus), and any index it does accept must re-encode to
// the exact input bytes — the codec admits no non-canonical encodings, so a
// torn or concatenated sidecar can never half-apply.
func FuzzSummaryIndex(f *testing.F) {
	seed := func(ix *SummaryIndex) { f.Add(EncodeSummaryIndex(ix)) }
	seed(&SummaryIndex{Timesteps: 0, Chunks: 0})
	seed(&SummaryIndex{Timesteps: 1, Chunks: 1, Entries: []ChunkSummary{{Min: 0.05, Max: 1.1, Occupancy: 7}}})
	seed(&SummaryIndex{Timesteps: 2, Chunks: 3, Entries: []ChunkSummary{
		{Min: -1, Max: 2, Occupancy: 0},
		{Min: float32(math.Inf(-1)), Max: float32(math.Inf(1)), Occupancy: 1},
		{Min: float32(math.NaN()), Max: float32(math.NaN()), Occupancy: 2},
		{}, {Min: 0.5, Max: 0.5}, {Min: 3, Max: -3, Occupancy: 4096},
	}})

	// Hostile headers (also committed under testdata/fuzz/FuzzSummaryIndex).
	hdr := func(magic string, version, timesteps, chunks uint32, body int) []byte {
		b := append([]byte(magic), make([]byte, 12+body)...)
		binary.LittleEndian.PutUint32(b[4:], version)
		binary.LittleEndian.PutUint32(b[8:], timesteps)
		binary.LittleEndian.PutUint32(b[12:], chunks)
		return b
	}
	f.Add([]byte{})                                                                            // empty
	f.Add([]byte("DCS"))                                                                       // shorter than magic
	f.Add(hdr("XXXX", 1, 1, 1, 12))                                                            // bad magic
	f.Add(hdr("DCSI", 2, 1, 1, 12))                                                            // future version
	f.Add(hdr("DCSI", 1, 0xFFFFFFFF, 0xFFFFFFFF, 0))                                           // count overflow
	f.Add(hdr("DCSI", 1, 1, maxSummaryEntries, 0))                                             // huge allocation claim
	f.Add(hdr("DCSI", 1, 1, 2, summaryRecLen))                                                 // body shorter than counts
	f.Add(hdr("DCSI", 1, 1, 1, summaryRecLen+1))                                               // trailing byte
	f.Add(append(hdr("DCSI", 1, 1, 1, summaryRecLen), hdr("DCSI", 1, 1, 1, summaryRecLen)...)) // concatenated

	f.Fuzz(func(t *testing.T, in []byte) {
		ix, err := DecodeSummaryIndex(in)
		if err != nil {
			return
		}
		if got := len(ix.Entries); got != ix.Timesteps*ix.Chunks {
			t.Fatalf("accepted index has %d entries for %dx%d", got, ix.Timesteps, ix.Chunks)
		}
		if re := EncodeSummaryIndex(ix); !bytes.Equal(re, in) {
			t.Fatalf("accepted index does not round-trip:\n got  %x\n want %x", re, in)
		}
		// Every in-range lookup must succeed and every out-of-range one fail,
		// whatever the decoded shape.
		if _, ok := ix.At(ix.Chunks, 0); ok {
			t.Fatal("At accepted an out-of-range chunk")
		}
		if ix.Chunks > 0 && ix.Timesteps > 0 {
			if _, ok := ix.At(ix.Chunks-1, ix.Timesteps-1); !ok {
				t.Fatal("At rejected an in-range pair")
			}
		}
	})
}
