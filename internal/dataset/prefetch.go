package dataset

import (
	"sync"

	"datacutter/internal/volume"
)

// ChunkRef names one record of a store: a chunk at a timestep. A planned
// read order is a []ChunkRef.
type ChunkRef struct {
	Chunk    int
	Timestep int
}

// prefetched is one completed read, still in plan order.
type prefetched struct {
	ref   ChunkRef
	bytes int64
	v     *volume.Volume
	err   error
}

// Prefetcher overlaps storage latency with consumer compute: a fill
// goroutine walks a planned read order, staying at most `ahead` chunks and
// `budget` bytes in front of the consumer, and Next hands the results back
// in exactly plan order. The paper's R filters spend their time alternating
// between a disk read and per-chunk filtering work; with a prefetcher the
// next read is already in flight while the current chunk computes.
//
// The fill goroutine reads through Store.ReadChunk, so it composes with
// both the pooled pread path and mmap mode. One consumer per Prefetcher;
// Close (idempotent) stops the fill goroutine even mid-plan.
type Prefetcher struct {
	st *Store
	ch chan prefetched

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int64 // bytes read but not yet consumed
	budget   int64
	closed   bool

	stop chan struct{}
	once sync.Once
}

// DefaultReadahead is the chunks-ahead depth used when callers enable
// readahead without choosing one.
const DefaultReadahead = 4

// NewPrefetcher starts prefetching plan from st. ahead is the maximum
// number of completed-but-unconsumed chunks (minimum 1); budgetBytes bounds
// the bytes those chunks may hold, 0 meaning no byte bound (a single chunk
// larger than the budget is still read alone rather than deadlocking).
func NewPrefetcher(st *Store, plan []ChunkRef, ahead int, budgetBytes int64) *Prefetcher {
	if ahead < 1 {
		ahead = 1
	}
	p := &Prefetcher{
		st:     st,
		ch:     make(chan prefetched, ahead),
		budget: budgetBytes,
		stop:   make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.fill(plan)
	return p
}

func (p *Prefetcher) fill(plan []ChunkRef) {
	defer close(p.ch)
	for _, ref := range plan {
		size := int64(p.st.DS.ChunkBytes(ref.Chunk))
		p.mu.Lock()
		for !p.closed && p.budget > 0 && p.inflight > 0 && p.inflight+size > p.budget {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.inflight += size
		p.mu.Unlock()

		v, err := p.st.ReadChunk(ref.Chunk, ref.Timestep)
		select {
		case p.ch <- prefetched{ref: ref, bytes: size, v: v, err: err}:
		case <-p.stop:
			return
		}
		if err != nil {
			return // the consumer sees the error at this plan position
		}
	}
}

// Next returns the next chunk of the plan. ok=false means the plan is
// exhausted or the prefetcher was closed. A read error surfaces at the plan
// position it occurred at, and ends the plan.
func (p *Prefetcher) Next() (ref ChunkRef, v *volume.Volume, err error, ok bool) {
	got, okc := <-p.ch
	if !okc {
		return ChunkRef{}, nil, nil, false
	}
	p.mu.Lock()
	p.inflight -= got.bytes
	p.cond.Broadcast()
	p.mu.Unlock()
	return got.ref, got.v, got.err, true
}

// Close stops the fill goroutine and releases waiters. Idempotent; safe
// concurrently with Next.
func (p *Prefetcher) Close() {
	p.once.Do(func() {
		close(p.stop)
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
		// Drain anything already buffered so its budget accounting dies with
		// the prefetcher (the fill goroutine has stopped producing).
		for range p.ch {
		}
	})
}
