package dataset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"datacutter/internal/volume"
)

func testMeta() Meta {
	return Meta{
		GX: 33, GY: 33, GZ: 17,
		BX: 4, BY: 4, BZ: 2,
		Timesteps: 3, Files: 8,
		Seed: 42, Plumes: 4,
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Meta{
		{GX: 1, GY: 8, GZ: 8, BX: 1, BY: 1, BZ: 1, Files: 1, Timesteps: 1},
		{GX: 8, GY: 8, GZ: 8, BX: 0, BY: 1, BZ: 1, Files: 1, Timesteps: 1},
		{GX: 8, GY: 8, GZ: 8, BX: 1, BY: 1, BZ: 1, Files: 0, Timesteps: 1},
		{GX: 8, GY: 8, GZ: 8, BX: 1, BY: 1, BZ: 1, Files: 1, Timesteps: 0},
	}
	for i, m := range bad {
		if _, err := New(m); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestDeclusteringCoversAllChunksOnce(t *testing.T) {
	ds, err := New(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Chunks() != 32 {
		t.Fatalf("chunks = %d", ds.Chunks())
	}
	seen := make(map[int]bool)
	for f := 0; f < ds.Files; f++ {
		for _, c := range ds.ChunksInFile(f) {
			if seen[c] {
				t.Fatalf("chunk %d in multiple files", c)
			}
			seen[c] = true
			if ds.FileOf(c) != f {
				t.Fatalf("FileOf(%d) = %d, want %d", c, ds.FileOf(c), f)
			}
		}
	}
	if len(seen) != ds.Chunks() {
		t.Fatalf("only %d chunks assigned", len(seen))
	}
}

func TestDeclusteringIsBalanced(t *testing.T) {
	ds, _ := New(testMeta())
	min, max := ds.Chunks(), 0
	for f := 0; f < ds.Files; f++ {
		n := len(ds.ChunksInFile(f))
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("file loads unbalanced: min %d max %d", min, max)
	}
}

// Hilbert declustering should spread a small spatial range query across
// many files (that is its purpose).
func TestRangeQuerySpreadsAcrossFiles(t *testing.T) {
	m := Meta{GX: 65, GY: 65, GZ: 65, BX: 8, BY: 8, BZ: 8, Timesteps: 1, Files: 16, Seed: 1, Plumes: 3}
	ds, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	// An octant query touches 4x4x4 = 64 chunks; with 16 files it should
	// hit nearly all files.
	chunks := ds.RangeQuery(0, 0, 0, 32, 32, 32)
	if len(chunks) < 60 {
		t.Fatalf("octant query returned %d chunks", len(chunks))
	}
	files := make(map[int]bool)
	for _, c := range chunks {
		files[ds.FileOf(c)] = true
	}
	if len(files) < 12 {
		t.Fatalf("query spread over only %d of 16 files", len(files))
	}
}

func TestRangeQueryFullAndEmpty(t *testing.T) {
	ds, _ := New(testMeta())
	all := ds.RangeQuery(0, 0, 0, 33, 33, 17)
	if len(all) != ds.Chunks() {
		t.Fatalf("full query returned %d of %d", len(all), ds.Chunks())
	}
	none := ds.RangeQuery(100, 100, 100, 200, 200, 200)
	if len(none) != 0 {
		t.Fatalf("empty query returned %d", len(none))
	}
}

// Property: range queries return exactly the chunks whose blocks intersect
// the box.
func TestRangeQueryCorrectProperty(t *testing.T) {
	ds, _ := New(testMeta())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x0, y0, z0 := rng.Intn(33), rng.Intn(33), rng.Intn(17)
		x1, y1, z1 := x0+1+rng.Intn(20), y0+1+rng.Intn(20), z0+1+rng.Intn(10)
		got := make(map[int]bool)
		for _, c := range ds.RangeQuery(x0, y0, z0, x1, y1, z1) {
			got[c] = true
		}
		for i := 0; i < ds.Chunks(); i++ {
			b := ds.Block(i)
			intersects := b.X0 < x1 && b.X0+b.NX > x0 &&
				b.Y0 < y1 && b.Y0+b.NY > y0 &&
				b.Z0 < z1 && b.Z0+b.NZ > z0
			if intersects != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeEven(t *testing.T) {
	hosts := []string{"a", "b", "c"}
	dist := DistributeEven(9, hosts, 2)
	counts := map[string]int{}
	for _, w := range dist.Where {
		counts[w.Host]++
		if w.Disk < 0 || w.Disk > 1 {
			t.Fatalf("disk out of range: %+v", w)
		}
	}
	for _, h := range hosts {
		if counts[h] != 3 {
			t.Fatalf("host %s holds %d files", h, counts[h])
		}
	}
	// Disks within a host alternate.
	a := dist.FilesOnHost("a")
	if len(a) != 3 {
		t.Fatalf("FilesOnHost = %v", a)
	}
}

func TestSkewMovesFiles(t *testing.T) {
	blue := []string{"blue0", "blue1"}
	rogue := []string{"rogue0", "rogue1"}
	dist := DistributeEven(64, append(append([]string{}, blue...), rogue...), 2)
	before := len(dist.FilesOnHost("blue0")) + len(dist.FilesOnHost("blue1"))
	dist.Skew(blue, rogue, 50, 2)
	afterBlue := len(dist.FilesOnHost("blue0")) + len(dist.FilesOnHost("blue1"))
	afterRogue := len(dist.FilesOnHost("rogue0")) + len(dist.FilesOnHost("rogue1"))
	if afterBlue != before/2 {
		t.Fatalf("blue files after 50%% skew: %d, want %d", afterBlue, before/2)
	}
	if afterBlue+afterRogue != 64 {
		t.Fatalf("files lost: %d", afterBlue+afterRogue)
	}
}

func TestSkewFullMove(t *testing.T) {
	dist := DistributeEven(10, []string{"x", "y"}, 1)
	dist.Skew([]string{"x"}, []string{"y"}, 100, 1)
	if n := len(dist.FilesOnHost("x")); n != 0 {
		t.Fatalf("x still holds %d files", n)
	}
}

func TestChunksOnHost(t *testing.T) {
	ds, _ := New(testMeta())
	dist := DistributeEven(ds.Files, []string{"a", "b"}, 1)
	na := len(ChunksOnHost(ds, dist, "a"))
	nb := len(ChunksOnHost(ds, dist, "b"))
	if na+nb != ds.Chunks() {
		t.Fatalf("host chunks %d+%d != %d", na, nb, ds.Chunks())
	}
	place := DiskOfChunk(ds, dist, 0)
	if place.Host != "a" && place.Host != "b" {
		t.Fatalf("DiskOfChunk = %+v", place)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Meta{GX: 17, GY: 17, GZ: 9, BX: 2, BY: 2, BZ: 2, Timesteps: 2, Files: 4, Seed: 7, Plumes: 3}
	st, err := Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	// Reopen from disk and compare a few chunks against direct sampling.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fld := st.DS.Field()
	for _, chunk := range []int{0, 3, st.DS.Chunks() - 1} {
		for ts := 0; ts < m.Timesteps; ts++ {
			got, err := st2.ReadChunk(chunk, ts)
			if err != nil {
				t.Fatal(err)
			}
			want := volume.NewBlockVolume(st.DS.Block(chunk))
			volume.FillBlock(fld, want, float64(ts))
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("chunk %d ts %d sample %d: %v != %v", chunk, ts, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestStoreReadErrors(t *testing.T) {
	dir := t.TempDir()
	m := Meta{GX: 9, GY: 9, GZ: 9, BX: 2, BY: 2, BZ: 2, Timesteps: 1, Files: 2, Seed: 1, Plumes: 2}
	st, err := Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadChunk(0, 5); err == nil {
		t.Fatal("timestep out of range accepted")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("open of empty dir succeeded")
	}
}

func TestTotalBytes(t *testing.T) {
	ds, _ := New(testMeta())
	var want int64
	for i := 0; i < ds.Chunks(); i++ {
		want += int64(ds.ChunkBytes(i))
	}
	if got := ds.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	// Sanity: chunk overlap means total slightly exceeds raw grid bytes.
	raw := int64(33*33*17) * 4
	if got := ds.TotalBytes(); got < raw {
		t.Fatalf("TotalBytes %d below raw %d", got, raw)
	}
}

func TestStoreHandleReuseAndClose(t *testing.T) {
	dir := t.TempDir()
	m := Meta{GX: 9, GY: 9, GZ: 9, BX: 2, BY: 2, BZ: 2, Timesteps: 1, Files: 2, Seed: 1, Plumes: 2}
	st, err := Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent reads share cached handles safely.
	var wg sync.WaitGroup
	for i := 0; i < st.DS.Chunks(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := st.ReadChunk(i, 0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Reads after Close reopen lazily.
	if _, err := st.ReadChunk(0, 0); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()
}
