// Package dataset implements the storage substrate: multi-timestep volume
// datasets partitioned into rectangular chunks, declustered across a set of
// data files along a 3-D Hilbert curve (as the paper's datasets were, over
// 64 files), distributed across the disks of cluster nodes — evenly or
// skewed — and retrieved by multi-dimensional range queries.
package dataset

import (
	"fmt"
	"sort"

	"datacutter/internal/hilbert"
	"datacutter/internal/volume"
)

// Meta describes a chunked dataset.
type Meta struct {
	// Grid dimensions in samples.
	GX, GY, GZ int
	// Chunking: the grid is partitioned into BX*BY*BZ chunks.
	BX, BY, BZ int
	// Timesteps stored.
	Timesteps int
	// Files the chunks are declustered across (the paper used 64).
	Files int
	// Synthetic field parameters (the generator re-creates the exact field
	// from these, so data can be validated or regenerated anywhere).
	Seed   int64
	Plumes int
	// Skewed selects the skewed variant of the field.
	Skewed bool
}

// Dataset is the logical view: the chunk partition plus the Hilbert
// declustering map.
type Dataset struct {
	Meta
	blocks []volume.Block
	fileOf []int   // chunk index -> file
	curve  []int   // chunk indices in Hilbert order
	inFile [][]int // file -> chunk indices, Hilbert order (memoized)
}

// New computes the chunk partition and declustering for a Meta.
func New(m Meta) (*Dataset, error) {
	if m.GX < 2 || m.GY < 2 || m.GZ < 2 {
		return nil, fmt.Errorf("dataset: grid %dx%dx%d too small", m.GX, m.GY, m.GZ)
	}
	if m.BX < 1 || m.BY < 1 || m.BZ < 1 {
		return nil, fmt.Errorf("dataset: invalid chunking %dx%dx%d", m.BX, m.BY, m.BZ)
	}
	if m.Files < 1 {
		return nil, fmt.Errorf("dataset: need at least one file")
	}
	if m.Timesteps < 1 {
		return nil, fmt.Errorf("dataset: need at least one timestep")
	}
	d := &Dataset{Meta: m, blocks: volume.Partition(m.GX, m.GY, m.GZ, m.BX, m.BY, m.BZ)}

	// Hilbert-order the chunks by their position in the chunk grid, then
	// stripe the curve across files: neighbors in space land in distinct
	// files, so a spatial range query spreads its I/O over many files.
	maxDim := m.BX
	if m.BY > maxDim {
		maxDim = m.BY
	}
	if m.BZ > maxDim {
		maxDim = m.BZ
	}
	bits := hilbert.BitsFor(maxDim)
	type keyed struct {
		key uint64
		idx int
	}
	keys := make([]keyed, len(d.blocks))
	for i := range d.blocks {
		bi := i % m.BX
		bj := (i / m.BX) % m.BY
		bk := i / (m.BX * m.BY)
		keys[i] = keyed{hilbert.Index(uint32(bi), uint32(bj), uint32(bk), bits), i}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
	d.curve = make([]int, len(keys))
	d.fileOf = make([]int, len(keys))
	d.inFile = make([][]int, m.Files)
	for pos, k := range keys {
		d.curve[pos] = k.idx
		f := pos % m.Files
		d.fileOf[k.idx] = f
		d.inFile[f] = append(d.inFile[f], k.idx)
	}
	return d, nil
}

// Field reconstructs the synthetic field the dataset stores.
func (d *Dataset) Field() volume.Field {
	var f volume.Field = volume.NewPlumeField(d.Seed, d.Plumes)
	if d.Skewed {
		f = &volume.SkewedField{Inner: f}
	}
	return f
}

// Chunks returns the number of chunks.
func (d *Dataset) Chunks() int { return len(d.blocks) }

// Block returns chunk i's grid block.
func (d *Dataset) Block(i int) volume.Block { return d.blocks[i] }

// Blocks returns all chunk blocks in partition order.
func (d *Dataset) Blocks() []volume.Block {
	out := make([]volume.Block, len(d.blocks))
	copy(out, d.blocks)
	return out
}

// FileOf returns the file a chunk was declustered to.
func (d *Dataset) FileOf(chunk int) int { return d.fileOf[chunk] }

// ChunksInFile lists the chunks assigned to one file, in Hilbert order.
func (d *Dataset) ChunksInFile(file int) []int {
	if file < 0 || file >= len(d.inFile) {
		return nil
	}
	out := make([]int, len(d.inFile[file]))
	copy(out, d.inFile[file])
	return out
}

// ChunkBytes returns the serialized size of chunk i's samples.
func (d *Dataset) ChunkBytes(i int) int { return d.blocks[i].Bytes() }

// TotalBytes returns the per-timestep dataset size.
func (d *Dataset) TotalBytes() int64 {
	var n int64
	for i := range d.blocks {
		n += int64(d.ChunkBytes(i))
	}
	return n
}

// RangeQuery returns the chunks whose blocks intersect the half-open
// sample-coordinate box [x0,x1) x [y0,y1) x [z0,z1) — the paper's
// multi-dimensional range query over the input space.
func (d *Dataset) RangeQuery(x0, y0, z0, x1, y1, z1 int) []int {
	var out []int
	for i, b := range d.blocks {
		if b.X0 < x1 && b.X0+b.NX > x0 &&
			b.Y0 < y1 && b.Y0+b.NY > y0 &&
			b.Z0 < z1 && b.Z0+b.NZ > z0 {
			out = append(out, i)
		}
	}
	return out
}

// Distribution assigns dataset files to (host, disk) locations.
type Distribution struct {
	// Where maps file id -> placement.
	Where []FilePlace
}

// FilePlace locates one file.
type FilePlace struct {
	Host string
	Disk int
}

// DistributeEven assigns files round-robin across hosts, and round-robin
// across each host's disks (diskCount entries per host name).
func DistributeEven(files int, hosts []string, disksPerHost int) *Distribution {
	if disksPerHost < 1 {
		disksPerHost = 1
	}
	dist := &Distribution{Where: make([]FilePlace, files)}
	perHost := make(map[string]int)
	for f := 0; f < files; f++ {
		h := hosts[f%len(hosts)]
		dist.Where[f] = FilePlace{Host: h, Disk: perHost[h] % disksPerHost}
		perHost[h]++
	}
	return dist
}

// Skew moves pct percent of the files currently on fromHosts onto toHosts
// (distributed evenly), reproducing the paper's skewed-distribution
// experiments (§4.5: move P% of the files from the Blue nodes to the Rogue
// nodes).
func (d *Distribution) Skew(fromHosts, toHosts []string, pct int, disksPerHost int) {
	if disksPerHost < 1 {
		disksPerHost = 1
	}
	from := make(map[string]bool)
	for _, h := range fromHosts {
		from[h] = true
	}
	var movable []int
	for f, w := range d.Where {
		if from[w.Host] {
			movable = append(movable, f)
		}
	}
	moveN := len(movable) * pct / 100
	perHost := make(map[string]int)
	for f, w := range d.Where {
		if !from[w.Host] {
			perHost[w.Host]++
		}
		_ = f
	}
	for i := 0; i < moveN; i++ {
		f := movable[i]
		h := toHosts[i%len(toHosts)]
		d.Where[f] = FilePlace{Host: h, Disk: perHost[h] % disksPerHost}
		perHost[h]++
	}
}

// FilesOnHost lists the file ids stored on a host.
func (d *Distribution) FilesOnHost(host string) []int {
	var out []int
	for f, w := range d.Where {
		if w.Host == host {
			out = append(out, f)
		}
	}
	return out
}

// ChunksOnHost lists the chunks of ds stored on a host (via its files), in
// Hilbert order per file.
func ChunksOnHost(ds *Dataset, dist *Distribution, host string) []int {
	var out []int
	for _, f := range dist.FilesOnHost(host) {
		out = append(out, ds.ChunksInFile(f)...)
	}
	return out
}

// DiskOfChunk returns the host and disk holding a chunk.
func DiskOfChunk(ds *Dataset, dist *Distribution, chunk int) FilePlace {
	return dist.Where[ds.FileOf(chunk)]
}
