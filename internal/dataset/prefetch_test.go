package dataset

import (
	"reflect"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	st, err := Create(t.TempDir(), Meta{
		Seed: 1, Plumes: 2, Timesteps: 2, Files: 2,
		GX: 16, GY: 16, GZ: 16, BX: 2, BY: 2, BZ: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func fullPlan(st *Store, timestep int) []ChunkRef {
	plan := make([]ChunkRef, st.DS.Chunks())
	for i := range plan {
		plan[i] = ChunkRef{Chunk: i, Timestep: timestep}
	}
	return plan
}

// TestPrefetcherMatchesDirectReads checks the prefetcher returns exactly
// what synchronous ReadChunk returns, chunk for chunk, in plan order.
func TestPrefetcherMatchesDirectReads(t *testing.T) {
	st := testStore(t)
	plan := fullPlan(st, 1)
	p := NewPrefetcher(st, plan, 3, 0)
	defer p.Close()
	for i, want := range plan {
		ref, v, err, ok := p.Next()
		if !ok || err != nil {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
		if ref != want {
			t.Fatalf("next %d returned %+v, want %+v", i, ref, want)
		}
		direct, err := st.ReadChunk(want.Chunk, want.Timestep)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Data, direct.Data) {
			t.Fatalf("chunk %d: prefetched samples differ from direct read", want.Chunk)
		}
	}
	if _, _, _, ok := p.Next(); ok {
		t.Fatal("prefetcher returned an item past the end of the plan")
	}
}

// TestPrefetcherByteBudget bounds the resident readahead: with a budget of
// ~2 chunks, at most budget bytes (plus the channel's one-deep slack per
// slot) may sit unconsumed. We can't observe inflight directly without
// racing the filler, so instead verify the filler stalls: after draining
// nothing for a while, consuming still yields every chunk exactly once.
func TestPrefetcherByteBudget(t *testing.T) {
	st := testStore(t)
	plan := fullPlan(st, 0)
	chunkBytes := int64(st.DS.ChunkBytes(0))
	p := NewPrefetcher(st, plan, len(plan), 2*chunkBytes)
	defer p.Close()
	time.Sleep(20 * time.Millisecond) // filler hits the budget and parks
	for i := range plan {
		ref, _, err, ok := p.Next()
		if !ok || err != nil {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
		if ref != plan[i] {
			t.Fatalf("next %d = %+v, want %+v", i, ref, plan[i])
		}
	}
	if _, _, _, ok := p.Next(); ok {
		t.Fatal("extra item past plan end")
	}
}

// TestPrefetcherCloseMidPlan stops the filler with most of the plan
// unconsumed; Close must not hang and Next must report exhaustion.
func TestPrefetcherCloseMidPlan(t *testing.T) {
	st := testStore(t)
	p := NewPrefetcher(st, fullPlan(st, 0), 2, int64(st.DS.ChunkBytes(0)))
	if _, _, _, ok := p.Next(); !ok {
		t.Fatal("first next failed")
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with the filler mid-plan")
	}
	p.Close() // idempotent
}

// TestPrefetcherSingleChunkOverBudget: a budget smaller than one chunk must
// still make progress (the first chunk is read alone, never deadlocking).
func TestPrefetcherSingleChunkOverBudget(t *testing.T) {
	st := testStore(t)
	plan := fullPlan(st, 0)[:4]
	p := NewPrefetcher(st, plan, 2, 1 /* byte */)
	defer p.Close()
	for i := range plan {
		if _, _, err, ok := p.Next(); !ok || err != nil {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestMmapReadMatchesPread pins mmap mode: same samples as the pread path,
// for every chunk and timestep, and Close unmaps without error.
func TestMmapReadMatchesPread(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	st := testStore(t)
	mm, err := Open(st.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.EnableMmap(); err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < st.DS.Timesteps; ts++ {
		for c := 0; c < st.DS.Chunks(); c++ {
			want, err := st.ReadChunk(c, ts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mm.ReadChunk(c, ts)
			if err != nil {
				t.Fatalf("mmap read chunk %d t%d: %v", c, ts, err)
			}
			if !reflect.DeepEqual(got.Data, want.Data) {
				t.Fatalf("chunk %d t%d: mmap samples differ from pread", c, ts)
			}
		}
	}
	if err := mm.Close(); err != nil {
		t.Fatalf("close with mappings: %v", err)
	}
}

// TestPrefetcherOverMmap composes both read-path features.
func TestPrefetcherOverMmap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	st := testStore(t)
	if err := st.EnableMmap(); err != nil {
		t.Fatal(err)
	}
	plan := fullPlan(st, 1)
	p := NewPrefetcher(st, plan, 4, 0)
	defer p.Close()
	n := 0
	for {
		_, v, err, ok := p.Next()
		if !ok {
			break
		}
		if err != nil || v == nil {
			t.Fatalf("next %d: %v", n, err)
		}
		n++
	}
	if n != len(plan) {
		t.Fatalf("prefetched %d of %d chunks", n, len(plan))
	}
}
