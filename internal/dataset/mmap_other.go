//go:build !unix

package dataset

import (
	"fmt"
	"os"
)

// mmapSupported reports whether this platform can memory-map store files.
const mmapSupported = false

func mmapFile(*os.File) ([]byte, error) {
	return nil, fmt.Errorf("dataset: mmap is not supported on this platform")
}

func munmapFile([]byte) error { return nil }
