package dataset

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datacutter/internal/obs"
)

func sumTestMeta() Meta {
	return Meta{
		GX: 33, GY: 33, GZ: 25, BX: 3, BY: 3, BZ: 3,
		Timesteps: 2, Files: 4, Seed: 11, Plumes: 4,
	}
}

func TestSummarizeExact(t *testing.T) {
	s := Summarize([]float32{0.5, -1.25, 0, 3, 0, 0.5})
	if s.Min != -1.25 || s.Max != 3 {
		t.Fatalf("min/max = %g/%g, want -1.25/3", s.Min, s.Max)
	}
	if s.Occupancy != 4 {
		t.Fatalf("occupancy = %d, want 4", s.Occupancy)
	}
	if z := Summarize(nil); z != (ChunkSummary{}) {
		t.Fatalf("empty slice summary = %+v, want zero", z)
	}
}

// Create must write a sidecar whose entries are the exact min/max of every
// chunk record on disk — the tightness the pruning soundness rests on.
func TestCreateWritesTightSummaries(t *testing.T) {
	st, err := Create(t.TempDir(), sumTestMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ix := st.Summaries()
	if ix == nil {
		t.Fatal("created store has no summary index")
	}
	for ts := 0; ts < st.DS.Timesteps; ts++ {
		for c := 0; c < st.DS.Chunks(); c++ {
			v, err := st.ReadChunk(c, ts)
			if err != nil {
				t.Fatal(err)
			}
			want := Summarize(v.Data)
			got, ok := ix.At(c, ts)
			if !ok || got != want {
				t.Fatalf("summary of chunk %d t%d = %+v ok=%v, want %+v", c, ts, got, ok, want)
			}
		}
	}
}

func TestSummaryIndexRoundTrip(t *testing.T) {
	ix := &SummaryIndex{Timesteps: 2, Chunks: 3, Entries: make([]ChunkSummary, 6)}
	for i := range ix.Entries {
		ix.Entries[i] = ChunkSummary{Min: float32(i) - 2, Max: float32(i), Occupancy: uint32(i * 7)}
	}
	enc := EncodeSummaryIndex(ix)
	dec, err := DecodeSummaryIndex(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Timesteps != ix.Timesteps || dec.Chunks != ix.Chunks {
		t.Fatalf("decoded shape %dx%d, want %dx%d", dec.Timesteps, dec.Chunks, ix.Timesteps, ix.Chunks)
	}
	for i := range ix.Entries {
		if dec.Entries[i] != ix.Entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, dec.Entries[i], ix.Entries[i])
		}
	}
	if !bytes.Equal(EncodeSummaryIndex(dec), enc) {
		t.Fatal("re-encode is not byte-identical")
	}
}

// The decoder mirrors the wire-frame decoder's strictness: anything that is
// not exactly one well-formed index is rejected.
func TestDecodeSummaryIndexRejects(t *testing.T) {
	good := EncodeSummaryIndex(&SummaryIndex{Timesteps: 1, Chunks: 2, Entries: make([]ChunkSummary, 2)})
	cases := map[string][]byte{
		"empty":         {},
		"short header":  good[:summaryHdrLen-1],
		"bad magic":     append([]byte("XXSI"), good[4:]...),
		"truncated":     good[:len(good)-1],
		"trailing byte": append(append([]byte(nil), good...), 0),
	}
	badVersion := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(badVersion[4:], 99)
	cases["bad version"] = badVersion
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[8:], 1<<20)
	binary.LittleEndian.PutUint32(huge[12:], 1<<20)
	cases["oversized counts"] = huge
	for name, b := range cases {
		if _, err := DecodeSummaryIndex(b); err == nil {
			t.Errorf("%s: decoder accepted a malformed index", name)
		}
	}
	if _, err := DecodeSummaryIndex(good); err != nil {
		t.Fatalf("well-formed index rejected: %v", err)
	}
}

// A missing, torn, truncated, or foreign sidecar must degrade the store to
// no-pruning — never to an error, and never to a half-applied index.
func TestSidecarDegradation(t *testing.T) {
	m := sumTestMeta()
	chunks := func(st *Store) []int {
		all := make([]int, st.DS.Chunks())
		for i := range all {
			all[i] = i
		}
		return all
	}
	pred := IsoPredicate(100) // above every value: prunes everything when indexed

	corrupt := map[string]func(t *testing.T, dir string){
		"missing": func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, SummaryFile)); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, dir string) {
			p := filepath.Join(dir, SummaryFile)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"torn overwrite": func(t *testing.T, dir string) {
			p := filepath.Join(dir, SummaryFile)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			// A second index concatenated onto the first: the strict decoder's
			// trailing-bytes check must reject it wholesale.
			if err := os.WriteFile(p, append(raw, raw...), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, SummaryFile), []byte("not an index"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"foreign dataset": func(t *testing.T, dir string) {
			// A valid sidecar whose shape disagrees with the meta (copied in
			// from another dataset) must not drive pruning.
			other := &SummaryIndex{Timesteps: 1, Chunks: 1, Entries: make([]ChunkSummary, 1)}
			if err := WriteSummaryIndex(dir, other); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, breakIt := range corrupt {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			created, err := Create(dir, m)
			if err != nil {
				t.Fatal(err)
			}
			created.Close()
			breakIt(t, dir)
			st, err := Open(dir)
			if err != nil {
				t.Fatalf("Open errored on a broken sidecar: %v", err)
			}
			defer st.Close()
			if ix := st.Summaries(); ix != nil {
				t.Fatal("broken sidecar produced a summary index")
			}
			all := chunks(st)
			got := st.Prune(all, 0, pred)
			if len(got) != len(all) {
				t.Fatalf("degraded store pruned %d chunks; must prune none", len(all)-len(got))
			}
			if _, err := st.ReadChunk(0, 0); err != nil {
				t.Fatalf("degraded store cannot read: %v", err)
			}
		})
	}
}

func TestPrunePredicates(t *testing.T) {
	st, err := Create(t.TempDir(), sumTestMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	all := make([]int, st.DS.Chunks())
	for i := range all {
		all[i] = i
	}

	// Empty predicate: the input slice itself comes back (no copy, no work).
	if got := st.Prune(all, 0, Predicate{}); len(got) != len(all) {
		t.Fatal("empty predicate pruned chunks")
	}

	// Geometry-only box pruning works without consulting summaries: keep the
	// chunks of one corner block of the domain.
	box := Predicate{Box: &Box{X0: 0, Y0: 0, Z0: 0, X1: 10, Y1: 10, Z1: 10}}
	got := st.Prune(all, 0, box)
	if len(got) == 0 || len(got) == len(all) {
		t.Fatalf("box predicate kept %d of %d chunks; want a proper subset", len(got), len(all))
	}
	for _, c := range got {
		if !box.MatchBlock(st.DS.Block(c)) {
			t.Fatalf("chunk %d survived the box predicate but does not intersect", c)
		}
	}

	// Impossible iso range (And of disjoint ranges): prunes everything.
	none := IsoPredicate(0.1).And(IsoPredicate(0.9))
	if got := st.Prune(all, 0, none); len(got) != 0 {
		t.Fatalf("empty-range predicate kept %d chunks", len(got))
	}

	// Pruning must never reorder or mutate the input.
	before := append([]int(nil), all...)
	st.Prune(all, 0, IsoPredicate(0.5))
	for i := range all {
		if all[i] != before[i] {
			t.Fatal("Prune mutated its input slice")
		}
	}
}

// Prune publishes its counters and a trace event through the observer.
func TestPruneObservability(t *testing.T) {
	st, err := Create(t.TempDir(), sumTestMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ring := obs.NewRingSink(64)
	reg := obs.NewRegistry()
	st.SetObserver(obs.New(ring, reg))
	all := make([]int, st.DS.Chunks())
	for i := range all {
		all[i] = i
	}
	kept := st.Prune(all, 1, IsoPredicate(100))
	if len(kept) != 0 {
		t.Fatalf("iso above global max kept %d chunks", len(kept))
	}
	if got := reg.Counter("dataset.chunks_pruned").Value(); got != int64(len(all)) {
		t.Fatalf("chunks_pruned = %d, want %d", got, len(all))
	}
	if reg.Counter("dataset.bytes_skipped").Value() == 0 {
		t.Fatal("bytes_skipped not recorded")
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != obs.KindPrune {
		t.Fatalf("expected one prune event, got %v", evs)
	}
	if evs[0].N != len(all) || evs[0].UOW != 1 || evs[0].Bytes == 0 {
		t.Fatalf("prune event fields wrong: %+v", evs[0])
	}
}

// Concurrent readers (pooled scratch buffers) racing an EnableMmap switch
// must each decode exactly the chunk they asked for. Run under -race this
// also proves the mode switch and the lazy summary load are data-race free.
func TestConcurrentReadChunkEnableMmapAndPrune(t *testing.T) {
	st, err := Create(t.TempDir(), sumTestMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want := make([][]float32, st.DS.Chunks())
	for c := range want {
		v, err := st.ReadChunk(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[c] = append([]float32(nil), v.Data...)
	}
	all := make([]int, st.DS.Chunks())
	for i := range all {
		all[i] = i
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				c := (g*13 + rep*7) % st.DS.Chunks()
				v, err := st.ReadChunk(c, 0)
				if err != nil {
					errs <- err
					return
				}
				for i, s := range v.Data {
					if s != want[c][i] {
						errs <- fmt.Errorf("torn concurrent read of chunk %d", c)
						return
					}
				}
				st.Prune(all, 0, IsoPredicate(0.5)) // races the lazy summary load
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := st.EnableMmap(); err != nil {
			t.Logf("mmap unavailable: %v", err) // reads stay on pread; still a valid race test
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Mmap reads must serve the same chunk bytes as pread reads.
func TestMmapMatchesPread(t *testing.T) {
	dir := t.TempDir()
	created, err := Create(dir, sumTestMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer created.Close()
	mm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	if err := mm.EnableMmap(); err != nil {
		t.Skipf("mmap unavailable: %v", err)
	}
	for _, c := range []int{0, created.DS.Chunks() / 2, created.DS.Chunks() - 1} {
		a, err := created.ReadChunk(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mm.ReadChunk(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("chunk %d sample %d differs between pread and mmap", c, i)
			}
		}
	}
}

// BuildSummaryIndex (the datagen -reindex retrofit path) must reproduce the
// datagen-time sidecar exactly.
func TestBuildSummaryIndexMatchesCreate(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, sumTestMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rebuilt, err := BuildSummaryIndex(st)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, SummaryFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeSummaryIndex(rebuilt), raw) {
		t.Fatal("retrofit index differs from the datagen-time sidecar")
	}
}
