package dataset

import (
	"testing"
	"time"
)

// BenchmarkStoreReadahead measures a full planned sweep over a store with a
// simulated per-chunk compute cost, the workload shape of an R filter:
// read chunk, process chunk, repeat. "direct" issues synchronous preads
// between compute steps; "readahead" overlaps the next reads with compute
// through the prefetcher; "mmap" decodes from mapped pages; the combined
// variant stacks both.
func BenchmarkStoreReadahead(b *testing.B) {
	dir := b.TempDir()
	// 16 chunks of 64^3 floats (1 MiB each): big enough that one chunk's
	// read+decode is a material slice of the per-chunk cycle below.
	st, err := Create(dir, Meta{
		Seed: 1, Plumes: 2, Timesteps: 1, Files: 4,
		GX: 256, GY: 128, GZ: 128, BX: 4, BY: 2, BZ: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	plan := make([]ChunkRef, st.DS.Chunks())
	var planBytes int64
	for i := range plan {
		plan[i] = ChunkRef{Chunk: i, Timestep: 0}
		planBytes += int64(st.DS.ChunkBytes(i))
	}
	// Stand-in for the per-chunk consumer step. time.Sleep rather than a
	// busy spin: readahead overlaps the read with whatever the consumer
	// does between chunks, which pays off when the consumer is not
	// CPU-saturated (blocking on downstream backpressure, its own IO, or
	// running on an otherwise busy core) or when reads miss the page
	// cache. A spin on a single-CPU host would serialize with the filler
	// goroutine and show nothing. The actual sleep duration is the
	// platform timer granularity (~1ms on small VMs), not 200us; what
	// matters is only that reads can hide inside it.
	const compute = 200 * time.Microsecond

	sweep := func(b *testing.B, s *Store, ahead int) {
		b.Helper()
		b.SetBytes(planBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ahead > 0 {
				p := NewPrefetcher(s, plan, ahead, 0)
				for range plan {
					if _, v, err, ok := p.Next(); !ok || err != nil || v == nil {
						b.Fatalf("next: ok=%v err=%v", ok, err)
					}
					time.Sleep(compute)
				}
				p.Close()
			} else {
				for _, ref := range plan {
					if _, err := s.ReadChunk(ref.Chunk, ref.Timestep); err != nil {
						b.Fatal(err)
					}
					time.Sleep(compute)
				}
			}
		}
	}

	openMmap := func(b *testing.B) *Store {
		b.Helper()
		s, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		if err := s.EnableMmap(); err != nil {
			b.Skipf("mmap unavailable: %v", err)
		}
		return s
	}

	b.Run("direct", func(b *testing.B) { sweep(b, st, 0) })
	b.Run("readahead-4", func(b *testing.B) { sweep(b, st, 4) })
	b.Run("mmap", func(b *testing.B) { sweep(b, openMmap(b), 0) })
	b.Run("mmap-readahead-4", func(b *testing.B) { sweep(b, openMmap(b), 4) })
}
