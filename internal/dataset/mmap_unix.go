//go:build unix

package dataset

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map store files.
const mmapSupported = true

// mmapFile maps fh read-only, shared. Zero-length files map to an empty
// (but valid) slice without touching mmap, which rejects length 0.
func mmapFile(fh *os.File) ([]byte, error) {
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(fh.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
