// Package plan automates the placement decisions the paper leaves to the
// application developer (§2, footnote 1: "We are in the process of
// examining various mechanisms to automate some of these steps"): given a
// cluster description and a filter configuration, it chooses how many
// transparent copies of each filter to run where, which host merges, and
// which writer policy to use.
//
// The heuristics encode the paper's experimental findings:
//
//   - source filters run on every data host (reads must be local);
//   - worker copies scale with a host's compute capacity (cores x relative
//     speed), which reproduces the paper's hand placement of seven raster
//     copies on the 8-way Deathstar node;
//   - the merge filter runs on the best-connected host (fast NIC first,
//     capacity second) since everything funnels into it;
//   - the writer policy is WRR when the slowest NIC is below the fast-path
//     threshold (§4.4: DD acknowledgments are too expensive on Fast
//     Ethernet), DD when host capacities differ or copy counts vary
//     (§4.2-4.3), and RR for uniform dedicated hosts (zero overhead).
package plan

import (
	"fmt"
	"sort"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/isoviz"
)

// Plan is a placement proposal.
type Plan struct {
	Placement *core.Placement
	Policy    core.Policy
	MergeHost string
	// Reasons lists human-readable justifications, one per decision.
	Reasons []string
}

// Options tunes the planner.
type Options struct {
	// DataHosts are the hosts holding the dataset (source copies go here).
	// Required.
	DataHosts []string
	// ComputeHosts may additionally run worker copies (defaults to
	// DataHosts).
	ComputeHosts []string
	// SlowNICBandwidth is the threshold (bytes/s) below which demand-driven
	// acknowledgments are considered too expensive (default 20 MB/s —
	// between Fast and Gigabit Ethernet).
	SlowNICBandwidth float64
	// MaxCopiesPerHost caps worker copies on one host (default: cores).
	MaxCopiesPerHost int
}

// capacity is a host's relative compute throughput.
func capacity(h *cluster.Host) float64 {
	return float64(h.Spec.Cores) * h.Spec.Speed
}

// Suggest builds a placement for the given pipeline configuration on the
// cluster.
func Suggest(cl *cluster.Cluster, cfg isoviz.Config, opts Options) (*Plan, error) {
	if len(opts.DataHosts) == 0 {
		return nil, fmt.Errorf("plan: DataHosts required")
	}
	for _, h := range opts.DataHosts {
		if cl.Host(h) == nil {
			return nil, fmt.Errorf("plan: unknown data host %q", h)
		}
	}
	computeHosts := opts.ComputeHosts
	if len(computeHosts) == 0 {
		computeHosts = opts.DataHosts
	}
	for _, h := range computeHosts {
		if cl.Host(h) == nil {
			return nil, fmt.Errorf("plan: unknown compute host %q", h)
		}
	}
	slowNIC := opts.SlowNICBandwidth
	if slowNIC == 0 {
		slowNIC = 20e6
	}

	p := &Plan{Placement: core.NewPlacement()}

	// Source copies: one per data host (reads stay local to the data).
	src := cfg.SourceFilter()
	for _, h := range opts.DataHosts {
		p.Placement.Place(src, h, 1)
	}
	p.Reasons = append(p.Reasons, fmt.Sprintf("%s on every data host (local reads)", src))
	if cfg == isoviz.FullPipeline {
		for _, h := range opts.DataHosts {
			p.Placement.Place("E", h, 1)
		}
		p.Reasons = append(p.Reasons, "E colocated with R (voxels stay local)")
	}

	// Merge host: best NIC, then capacity.
	merge := computeHosts[0]
	for _, h := range computeHosts[1:] {
		a, b := cl.Host(h), cl.Host(merge)
		if a.Spec.NICBandwidth > b.Spec.NICBandwidth ||
			(a.Spec.NICBandwidth == b.Spec.NICBandwidth && capacity(a) > capacity(b)) {
			merge = h
		}
	}
	p.MergeHost = merge
	p.Placement.Place("M", merge, 1)
	p.Reasons = append(p.Reasons, fmt.Sprintf("M on %s (best connected)", merge))

	// Worker copies proportional to capacity, reserving headroom on the
	// merge host.
	copyCounts := make(map[string]int)
	if wk := cfg.WorkerFilter(); wk != "" {
		for _, h := range computeHosts {
			host := cl.Host(h)
			copies := host.Spec.Cores
			if opts.MaxCopiesPerHost > 0 && copies > opts.MaxCopiesPerHost {
				copies = opts.MaxCopiesPerHost
			}
			if h == merge && copies > 1 {
				copies-- // leave a core for the merge filter
			}
			if copies < 1 {
				copies = 1
			}
			copyCounts[h] = copies
			p.Placement.Place(wk, h, copies)
		}
		p.Reasons = append(p.Reasons, fmt.Sprintf("%s copies scale with cores (merge host keeps one core free)", wk))
	}

	p.Policy = choosePolicy(cl, computeHosts, copyCounts, slowNIC, &p.Reasons)
	return p, nil
}

func choosePolicy(cl *cluster.Cluster, hosts []string, copies map[string]int, slowNIC float64, reasons *[]string) core.Policy {
	minNIC := cl.Host(hosts[0]).Spec.NICBandwidth
	caps := make([]float64, 0, len(hosts))
	copySet := make(map[int]struct{})
	for _, h := range hosts {
		host := cl.Host(h)
		if host.Spec.NICBandwidth < minNIC {
			minNIC = host.Spec.NICBandwidth
		}
		caps = append(caps, capacity(host))
		c := copies[h]
		if c == 0 {
			c = 1
		}
		copySet[c] = struct{}{}
	}
	sort.Float64s(caps)
	uniformCapacity := caps[len(caps)-1]-caps[0] < 1e-9
	uniformCopies := len(copySet) <= 1

	switch {
	case minNIC < slowNIC && !uniformCopies:
		*reasons = append(*reasons, "WRR: asymmetric copy counts over a slow network (DD acks too costly, paper §4.4)")
		return core.WeightedRoundRobin()
	case !uniformCapacity || !uniformCopies:
		*reasons = append(*reasons, "DD: heterogeneous capacity (paper §4.2-4.3)")
		return core.DemandDriven()
	default:
		*reasons = append(*reasons, "RR: uniform dedicated hosts (zero-overhead policy)")
		return core.RoundRobin()
	}
}
