package plan

import (
	"testing"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
)

func table5Cluster() (*cluster.Cluster, []string, string) {
	cl := cluster.New(sim.NewKernel())
	reds := cluster.AddRed(cl, 4)
	ds := cluster.AddDeathstar(cl)
	return cl, reds, ds
}

func TestSuggestReproducesPaperPlacement(t *testing.T) {
	// On the Table-5 cluster (Red data nodes + 8-way Deathstar via Fast
	// Ethernet) the planner should reproduce the paper's hand placement:
	// seven raster copies on Deathstar (one core reserved for merge, which
	// lands there too... unless NIC decides otherwise) and WRR.
	cl, reds, dsHost := table5Cluster()
	p, err := Suggest(cl, isoviz.ReadExtract, Options{
		DataHosts:    reds,
		ComputeHosts: append(append([]string{}, reds...), dsHost),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Merge goes to a Red node: Gigabit beats Deathstar's Fast Ethernet.
	if cl.Host(p.MergeHost).Spec.NICBandwidth < cl.Host(dsHost).Spec.NICBandwidth {
		t.Fatalf("merge host %s has the slower NIC", p.MergeHost)
	}
	// Deathstar runs ~8 worker copies (its core count).
	var dsCopies int
	for _, e := range p.Placement.Of("Ra") {
		if e.Host == dsHost {
			dsCopies = e.Copies
		}
	}
	if dsCopies < 7 {
		t.Fatalf("deathstar got %d raster copies, want >= 7", dsCopies)
	}
	// Asymmetric copies over a Fast Ethernet hop: WRR (paper §4.4).
	if p.Policy.Name() != "WRR" {
		t.Fatalf("policy = %s, want WRR", p.Policy.Name())
	}
	if len(p.Reasons) == 0 {
		t.Fatal("no reasons recorded")
	}
}

func TestSuggestUniformClusterUsesRR(t *testing.T) {
	cl := cluster.New(sim.NewKernel())
	hosts := cluster.AddRogue(cl, 4)
	p, err := Suggest(cl, isoviz.ReadExtract, Options{DataHosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy.Name() != "RR" {
		t.Fatalf("policy = %s, want RR for uniform single-copy hosts", p.Policy.Name())
	}
}

func TestSuggestHeterogeneousUsesDD(t *testing.T) {
	cl := cluster.New(sim.NewKernel())
	rogues := cluster.AddRogue(cl, 2)
	blues := cluster.AddBlue(cl, 2)
	hosts := append(append([]string{}, rogues...), blues...)
	p, err := Suggest(cl, isoviz.ReadExtract, Options{DataHosts: hosts, MaxCopiesPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy.Name() != "DD" {
		t.Fatalf("policy = %s, want DD for mixed capacities", p.Policy.Name())
	}
}

func TestSuggestValidation(t *testing.T) {
	cl := cluster.New(sim.NewKernel())
	cluster.AddRogue(cl, 1)
	if _, err := Suggest(cl, isoviz.ReadExtract, Options{}); err == nil {
		t.Fatal("empty data hosts accepted")
	}
	if _, err := Suggest(cl, isoviz.ReadExtract, Options{DataHosts: []string{"ghost"}}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestSuggestFullPipelinePlacesExtract(t *testing.T) {
	cl := cluster.New(sim.NewKernel())
	hosts := cluster.AddBlue(cl, 2)
	p, err := Suggest(cl, isoviz.FullPipeline, Options{DataHosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	if p.Placement.TotalCopies("E") != 2 {
		t.Fatalf("E copies = %d", p.Placement.TotalCopies("E"))
	}
	if p.Placement.TotalCopies("R") != 2 {
		t.Fatalf("R copies = %d", p.Placement.TotalCopies("R"))
	}
}

// The planner's placement must beat the naive one (one copy per host,
// merge on the first host, RR) on the heterogeneous compute-node cluster.
func TestPlannedBeatsNaive(t *testing.T) {
	ds, err := dataset.New(dataset.Meta{
		GX: 65, GY: 65, GZ: 65, BX: 4, BY: 4, BZ: 4,
		Timesteps: 1, Files: 16, Seed: 23, Plumes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	view := isoviz.DefaultView(0.6)
	view.Width, view.Height = 1024, 1024

	run := func(pl *core.Placement, pol core.Policy) float64 {
		cl, reds, dsHost := table5Cluster()
		_ = dsHost
		w := isoviz.NewWorkload(ds, 0.6)
		dist := dataset.DistributeEven(ds.Files, reds, 1)
		spec := isoviz.ModelSpec{
			Config: isoviz.ReadExtract, Alg: isoviz.ActivePixel, W: w, Dist: dist,
			Assign: isoviz.AssignByDistribution(ds, dist, pl, "RE"),
			Costs:  isoviz.DefaultCosts(),
		}
		r, err := simrt.NewRunner(spec.Build(), pl, cl, simrt.Options{Policy: pol, UOWs: []any{view}})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.WallSeconds
	}

	// Planner.
	clPlan, reds, dsHost := table5Cluster()
	plan, err := Suggest(clPlan, isoviz.ReadExtract, Options{
		DataHosts:    reds,
		ComputeHosts: append(append([]string{}, reds...), dsHost),
	})
	if err != nil {
		t.Fatal(err)
	}
	planned := run(plan.Placement, plan.Policy)

	// Naive: one worker copy per data host only, merge on reds[0], RR.
	naive := core.NewPlacement()
	for _, h := range reds {
		naive.Place("RE", h, 1).Place("Ra", h, 1)
	}
	naive.Place("M", reds[0], 1)
	naiveT := run(naive, core.RoundRobin())

	if planned >= naiveT {
		t.Fatalf("planned placement (%.2fs) not faster than naive (%.2fs)", planned, naiveT)
	}
}
