package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Add is one atomic add.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Safe on a nil counter (disabled metrics).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 when nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. Set/Add are single atomic operations.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. Safe on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 when nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a streaming log-bucketed histogram of non-negative float64
// observations (typically seconds). Buckets are geometric with four
// sub-buckets per power of two, so quantile estimates carry at most 12.5%
// relative error from bucketing (half a sub-bucket against the bucket's low
// edge). Observe is lock-free: one atomic add on a bucket plus count/sum
// updates.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Uint64 // float64 bits, CAS-updated
	zero  atomic.Int64  // observations <= 0
	// buckets[(exp+hExpBias)*hSub + sub] counts observations with
	// frexp exponent exp; exponents are clamped to [-hExpBias, hExpMax].
	buckets [hBuckets]atomic.Int64
}

const (
	hSub     = 4  // sub-buckets per power of two
	hExpBias = 32 // smallest tracked exponent: 2^-32 (~2.3e-10)
	hExpMax  = 31 // largest: 2^31 (~2.1e9)
	hBuckets = (hExpBias + hExpMax + 1) * hSub
)

func bucketOf(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp < -hExpBias {
		exp, frac = -hExpBias, 0.5
	} else if exp > hExpMax {
		exp, frac = hExpMax, 1-1e-9
	}
	sub := int((frac - 0.5) * (2 * hSub)) // [0, hSub)
	if sub >= hSub {
		sub = hSub - 1
	}
	return (exp+hExpBias)*hSub + sub
}

// bucketMid returns the representative value (midpoint) of bucket i.
func bucketMid(i int) float64 {
	exp := i/hSub - hExpBias
	sub := i % hSub
	lo := math.Ldexp(0.5+float64(sub)/(2*hSub), exp)
	return lo + math.Ldexp(1.0/(2*hSub), exp)/2
}

// Observe records one observation. Safe on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			break
		}
	}
	if v <= 0 || math.IsNaN(v) {
		h.zero.Add(1)
		return
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets. The
// estimate is the midpoint of the bucket holding the q-th observation, so
// its relative error is bounded by half the bucket width (at most 12.5%).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := h.zero.Load()
	if rank <= cum {
		return 0
	}
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(hBuckets - 1)
}

// HistogramSnapshot is a histogram's JSON representation.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot captures the histogram's summary statistics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	return s
}

// Registry is a named collection of metrics. Registration takes a mutex;
// engines resolve metric handles once at setup, so steady-state updates
// never touch the registry lock.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. Nil-registry
// safe: returns a nil *Counter whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns every metric's current value keyed by name: counters and
// gauges as int64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the expvar-style snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
