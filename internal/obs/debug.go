package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the live debug endpoint:
//
//	/healthz        liveness probe: "ok\n" with status 200
//	/metrics        expvar-style JSON snapshot of the registry
//	/debug/events   recent trace events from the ring sink (JSON array)
//	/debug/pprof/*  the standard net/http/pprof profiles
//
// reg and ring may be nil; the corresponding endpoint then serves an empty
// document.
func Handler(reg *Registry, ring *RingSink) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var events []Event
		if ring != nil {
			events = ring.Events()
		}
		if events == nil {
			events = []Event{}
		}
		wire := make([]wireEventT, len(events))
		for i, e := range events {
			wire[i] = wireEvent(e)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(wire)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "datacutter debug endpoint\n\n/healthz\n/metrics\n/debug/events\n/debug/pprof/\n")
	})
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug starts the debug endpoint on addr (e.g. ":6060") in a
// background goroutine and returns immediately.
func ServeDebug(addr string, reg *Registry, ring *RingSink) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, ring), ReadHeaderTimeout: 5 * time.Second}
	d := &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln)
	return d, nil
}

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
