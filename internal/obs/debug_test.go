package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandlerHealthz(t *testing.T) {
	h := Handler(nil, nil) // nil registry/ring must not matter for liveness
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", rr.Code)
	}
	if got := rr.Body.String(); got != "ok\n" {
		t.Fatalf("/healthz body = %q, want %q", got, "ok\n")
	}
}

func TestHandlerMetricsWithRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	h := Handler(reg, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics content type = %q", ct)
	}
}
