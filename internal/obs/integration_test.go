// Integration: run a real-engine pipeline under the observer and check the
// emitted trace and metrics against the engine's own statistics. Lives in an
// external test package because core imports obs.
package obs_test

import (
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/obs"
)

type genFilter struct {
	core.BaseFilter
	n int
}

func (g *genFilter) Process(ctx core.Ctx) error {
	for i := 0; i < g.n; i++ {
		if err := ctx.Write("nums", core.Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
	}
	return nil
}

type drainFilter struct{ core.BaseFilter }

func (d *drainFilter) Process(ctx core.Ctx) error {
	for {
		if _, ok := ctx.Read("nums"); !ok {
			return nil
		}
	}
}

func runObserved(t *testing.T, o *obs.Observer, n, copies int) *core.Stats {
	t.Helper()
	g := core.NewGraph()
	g.AddFilter("S", func() core.Filter { return &genFilter{n: n} })
	g.AddFilter("K", func() core.Filter { return &drainFilter{} })
	g.Connect("S", "K", "nums")
	pl := core.NewPlacement().Place("S", "h0", 1).Place("K", "h0", copies)
	r, err := core.NewRunner(g, pl, core.Options{Policy: core.DemandDriven(), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCoreEngineTrace(t *testing.T) {
	const n, copies = 50, 2
	ring := obs.NewRingSink(4096)
	reg := obs.NewRegistry()
	o := obs.New(ring, reg)
	st := runObserved(t, o, n, copies)

	byKind := map[obs.Kind][]obs.Event{}
	for _, e := range ring.Events() {
		byKind[e.Kind] = append(byKind[e.Kind], e)
	}

	// One ProcessStart/ProcessEnd pair per filter copy (1 S + 2 K).
	if got := len(byKind[obs.KindProcessStart]); got != 1+copies {
		t.Fatalf("process-start events = %d, want %d", got, 1+copies)
	}
	if got := len(byKind[obs.KindProcessEnd]); got != 1+copies {
		t.Fatalf("process-end events = %d, want %d", got, 1+copies)
	}

	// Every buffer the stats saw has a pick and an enqueue event.
	if got := int64(len(byKind[obs.KindEnqueue])); got != st.Streams["nums"].Buffers {
		t.Fatalf("enqueue events = %d, stats buffers = %d", got, st.Streams["nums"].Buffers)
	}
	if got := int64(len(byKind[obs.KindPick])); got != st.Streams["nums"].Buffers {
		t.Fatalf("pick events = %d, stats buffers = %d", got, st.Streams["nums"].Buffers)
	}

	// Demand-driven acks appear as events and in the stats.
	var ackN int64
	for _, e := range byKind[obs.KindAck] {
		ackN += int64(e.N)
	}
	if ackN != st.Streams["nums"].Acks {
		t.Fatalf("ack event sum = %d, stats acks = %d", ackN, st.Streams["nums"].Acks)
	}

	// Stall events pair up.
	if s, e := len(byKind[obs.KindStallStart]), len(byKind[obs.KindStallEnd]); s != e {
		t.Fatalf("stall start/end = %d/%d", s, e)
	}

	// Per-stream counters in the registry match the stats.
	if got := reg.Counter("core.stream.nums.buffers").Value(); got != st.Streams["nums"].Buffers {
		t.Fatalf("counter buffers = %d, stats = %d", got, st.Streams["nums"].Buffers)
	}
	if got := reg.Counter("core.stream.nums.bytes").Value(); got != st.Streams["nums"].Bytes {
		t.Fatalf("counter bytes = %d, stats = %d", got, st.Streams["nums"].Bytes)
	}
}

func TestCoreEngineNilObserver(t *testing.T) {
	// The disabled path must run identically with a nil observer.
	st := runObserved(t, nil, 25, 2)
	if st.Streams["nums"].Buffers != 25 {
		t.Fatalf("buffers = %d", st.Streams["nums"].Buffers)
	}
}

func TestCoreEngineChromeTraceTimestampsMonotonicPerSpan(t *testing.T) {
	ring := obs.NewRingSink(4096)
	o := obs.New(ring, nil)
	runObserved(t, o, 10, 1)
	// Wall-clock events must be stamped from the run's start (small,
	// non-negative) and each ProcessEnd must not precede its ProcessStart.
	start := map[string]float64{}
	for _, e := range ring.Events() {
		if e.T < 0 {
			t.Fatalf("negative timestamp %v", e)
		}
		key := e.Filter + "#" + string(rune('0'+e.Copy))
		switch e.Kind {
		case obs.KindProcessStart:
			start[key] = e.T
		case obs.KindProcessEnd:
			if e.T < start[key] {
				t.Fatalf("process-end before start for %s", key)
			}
		}
	}
}
