package obs

import "testing"

// The disabled fast path is a nil check: these benches pin its cost next to
// the enabled path so regressions show up as a ratio, not a guess.

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkObserverEmitRing(b *testing.B) {
	o := New(NewRingSink(4096), nil)
	e := Event{Kind: KindEnqueue, Filter: "Ra", Copy: 1, Stream: "tris", Bytes: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}

func BenchmarkObserverEmitNil(b *testing.B) {
	var o *Observer
	e := Event{Kind: KindEnqueue, Filter: "Ra", Copy: 1, Stream: "tris", Bytes: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}
