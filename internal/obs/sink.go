package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives trace events. Implementations must be safe for concurrent
// Emit calls (the real and distributed engines emit from many goroutines);
// Flush is called once at the end of a run.
type Sink interface {
	Emit(Event)
	Flush() error
}

// ---- In-memory ring ----

// RingSink keeps the most recent events in a fixed-size ring buffer — the
// always-on, bounded-memory sink behind the live debug endpoint.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	wrap  bool
	total uint64
}

// NewRingSink returns a ring holding up to cap events (min 1).
func NewRingSink(cap int) *RingSink {
	if cap < 1 {
		cap = 1
	}
	return &RingSink{buf: make([]Event, cap)}
}

// Emit implements Sink.
func (r *RingSink) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
}

// Flush implements Sink (no-op).
func (r *RingSink) Flush() error { return nil }

// Events returns the buffered events, oldest first.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrap {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever emitted (including overwritten).
func (r *RingSink) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ---- JSONL writer ----

// JSONLSink streams events as one JSON object per line — the
// machine-readable dump format (schema documented in DESIGN.md).
type JSONLSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewJSONLSink wraps w (buffered; call Flush to drain).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	raw, err := json.Marshal(wireEvent(e))
	if err != nil {
		return
	}
	s.mu.Lock()
	s.w.Write(raw)
	s.w.WriteByte('\n')
	s.mu.Unlock()
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// wireEvent renders the kind as its schema name instead of a raw integer.
type wireEventT struct {
	T      float64 `json:"t"`
	Kind   string  `json:"k"`
	Filter string  `json:"f,omitempty"`
	Copy   int     `json:"c"`
	Host   string  `json:"h,omitempty"`
	Stream string  `json:"s,omitempty"`
	Target string  `json:"tg,omitempty"`
	Bytes  int     `json:"b,omitempty"`
	N      int     `json:"n,omitempty"`
	UOW    int     `json:"u"`
	Note   string  `json:"note,omitempty"`
}

func wireEvent(e Event) wireEventT {
	return wireEventT{
		T: e.T, Kind: e.Kind.String(), Filter: e.Filter, Copy: e.Copy,
		Host: e.Host, Stream: e.Stream, Target: e.Target, Bytes: e.Bytes,
		N: e.N, UOW: e.UOW, Note: e.Note,
	}
}

// ---- Fan-out ----

// Tee returns a sink duplicating every event to each of sinks (e.g. a live
// ring plus an on-disk JSONL dump).
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

func (t teeSink) Flush() error {
	var first error
	for _, s := range t {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
