package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ChromeTraceSink exports events in the Chrome trace_event JSON format, so
// a run can be opened in chrome://tracing or https://ui.perfetto.dev.
//
// Mapping: each host becomes a trace process (pid), each filter copy a
// thread (tid) within it. ProcessStart/ProcessEnd and StallStart/StallEnd
// become duration begin/end pairs ("B"/"E"), so Perfetto renders per-copy
// timelines with stalls nested inside the Process span; pick/send/enqueue/
// ack become instant events ("i") on the same thread track. Timestamps are
// the engine's seconds (virtual or wall) scaled to microseconds.
//
// Events accumulate in memory; Flush writes the complete, valid JSON
// document ({"traceEvents": [...]}) exactly once.
type ChromeTraceSink struct {
	mu      sync.Mutex
	w       io.Writer
	events  []Event
	flushed bool
}

// NewChromeTraceSink returns a sink writing its trace to w on Flush.
func NewChromeTraceSink(w io.Writer) *ChromeTraceSink {
	return &ChromeTraceSink{w: w}
}

// Emit implements Sink.
func (s *ChromeTraceSink) Emit(e Event) {
	s.mu.Lock()
	if !s.flushed {
		s.events = append(s.events, e)
	}
	s.mu.Unlock()
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Flush implements Sink: it writes the trace document. Subsequent Flush
// calls are no-ops.
func (s *ChromeTraceSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flushed {
		return nil
	}
	s.flushed = true

	pids := map[string]int{}
	tids := map[string]int{}
	pidOf := func(host string) int {
		if host == "" {
			host = "?"
		}
		if id, ok := pids[host]; ok {
			return id
		}
		id := len(pids) + 1
		pids[host] = id
		return id
	}
	tidOf := func(host, filter string, copyIdx int) (int, string) {
		if filter == "" {
			return 0, ""
		}
		label := fmt.Sprintf("%s#%d", filter, copyIdx)
		key := host + "\x00" + label
		if id, ok := tids[key]; ok {
			return id, label
		}
		id := len(tids) + 1
		tids[key] = id
		return id, label
	}

	var out []chromeEvent
	type meta struct {
		pid, tid int
		name     string
		thread   bool
	}
	var metas []meta
	seenPID := map[int]bool{}
	seenTID := map[[2]int]bool{}

	for _, e := range s.events {
		pid := pidOf(e.Host)
		tid, label := tidOf(e.Host, e.Filter, e.Copy)
		if !seenPID[pid] {
			seenPID[pid] = true
			host := e.Host
			if host == "" {
				host = "?"
			}
			metas = append(metas, meta{pid: pid, name: "host " + host})
		}
		if label != "" && !seenTID[[2]int{pid, tid}] {
			seenTID[[2]int{pid, tid}] = true
			metas = append(metas, meta{pid: pid, tid: tid, name: label, thread: true})
		}
		ce := chromeEvent{TS: e.T * 1e6, PID: pid, TID: tid, Cat: "buffer"}
		switch e.Kind {
		case KindProcessStart, KindProcessEnd:
			ce.Cat = "filter"
			ce.Name = fmt.Sprintf("process uow=%d", e.UOW)
			if e.Kind == KindProcessStart {
				ce.Ph = "B"
			} else {
				ce.Ph = "E"
			}
		case KindStallStart, KindStallEnd:
			ce.Cat = "stall"
			ce.Name = "stall:" + e.Note
			if e.Stream != "" {
				ce.Name += ":" + e.Stream
			}
			if e.Kind == KindStallStart {
				ce.Ph = "B"
			} else {
				ce.Ph = "E"
			}
		default:
			ce.Ph, ce.Scope = "i", "t"
			ce.Name = e.Kind.String()
			if e.Stream != "" {
				ce.Name += ":" + e.Stream
			}
			args := map[string]any{"uow": e.UOW}
			if e.Target != "" {
				args["target"] = e.Target
			}
			if e.Bytes != 0 {
				args["bytes"] = e.Bytes
			}
			if e.N != 0 {
				args["n"] = e.N
			}
			ce.Args = args
		}
		out = append(out, ce)
	}

	// Metadata events label the process and thread tracks.
	sort.SliceStable(metas, func(i, j int) bool {
		if metas[i].pid != metas[j].pid {
			return metas[i].pid < metas[j].pid
		}
		return metas[i].tid < metas[j].tid
	})
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	for _, m := range metas {
		name := "process_name"
		if m.thread {
			name = "thread_name"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Ph: "M", PID: m.pid, TID: m.tid,
			Args: map[string]any{"name": m.name},
		})
	}
	doc.TraceEvents = append(doc.TraceEvents, out...)
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}

	enc := json.NewEncoder(s.w)
	return enc.Encode(doc)
}
