package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// ---- Metrics ----

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram stats")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if len(r.Snapshot()) != 0 || r.Names() != nil {
		t.Fatal("nil registry snapshot/names")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames")
	c.Add(10)
	c.Inc()
	if c.Value() != 11 {
		t.Fatalf("counter = %d, want 11", c.Value())
	}
	if r.Counter("frames") != c {
		t.Fatal("get-or-create must return the same counter handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1ms .. 1000ms uniform.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 500.5
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	// Bucketing error is bounded by half a sub-bucket: at most 12.5%.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.500}, {0.95, 0.950}, {0.99, 0.990},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.125 {
			t.Errorf("q%.0f = %g, want %g +-12.5%%", tc.q*100, got, tc.want)
		}
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Mean < 0.45 || s.Mean > 0.55 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("all-zero quantile = %g", h.Quantile(0.5))
	}
	// Extreme magnitudes must clamp, not panic or land out of range.
	h.Observe(1e-300)
	h.Observe(1e300)
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Fatalf("sum = %g, want 8", h.Sum())
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.depth").Set(9)
	r.Histogram("c.lat").Observe(0.25)
	names := r.Names()
	want := []string{"a.depth", "b.count", "c.lat"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	snap := r.Snapshot()
	if snap["b.count"].(int64) != 2 || snap["a.depth"].(int64) != 9 {
		t.Fatalf("snapshot = %v", snap)
	}
	if hs := snap["c.lat"].(HistogramSnapshot); hs.Count != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
}

// ---- Observer ----

func TestNilObserver(t *testing.T) {
	var o *Observer
	o.Emit(Event{Kind: KindEnqueue})
	o.EmitAt(1, Event{Kind: KindAck})
	o.SetClock(NewWallClock())
	if o.Registry() != nil || o.Now() != 0 || o.Flush() != nil {
		t.Fatal("nil observer must be inert")
	}
}

func TestObserverStampsAndEmits(t *testing.T) {
	ring := NewRingSink(8)
	o := New(ring, nil)
	var virt float64 = 1.5
	o.SetClock(ClockFunc(func() float64 { return virt }))
	o.Emit(Event{Kind: KindPick, Filter: "F"})
	virt = 2.5
	o.Emit(Event{Kind: KindSend, Filter: "F"})
	o.EmitAt(0.25, Event{Kind: KindStallStart, Filter: "F"})
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].T != 1.5 || evs[1].T != 2.5 || evs[2].T != 0.25 {
		t.Fatalf("timestamps = %v %v %v", evs[0].T, evs[1].T, evs[2].T)
	}
	if o.Now() != 2.5 {
		t.Fatalf("Now = %g", o.Now())
	}
}

func TestKindString(t *testing.T) {
	if KindEnqueue.String() != "enqueue" || KindStallEnd.String() != "stall-end" {
		t.Fatal("kind names")
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("unknown kinds")
	}
}

// ---- Sinks ----

func TestRingSinkWrap(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{UOW: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.UOW != 6+i {
			t.Fatalf("event %d has UOW %d, want %d (oldest-first)", i, e.UOW, 6+i)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{T: 0.5, Kind: KindEnqueue, Filter: "Ra", Copy: 1, Stream: "tris", Bytes: 64, UOW: 2})
	s.Emit(Event{T: 0.6, Kind: KindAck, Filter: "Ra", Copy: 1, Stream: "tris", N: 4})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not valid JSON: %v (%s)", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0]["k"] != "enqueue" || lines[1]["k"] != "ack" {
		t.Fatalf("kinds = %v %v", lines[0]["k"], lines[1]["k"])
	}
	if lines[0]["s"] != "tris" || lines[0]["b"].(float64) != 64 {
		t.Fatalf("fields = %v", lines[0])
	}
}

func TestTee(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	tee := Tee(a, b)
	tee.Emit(Event{Kind: KindPick})
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("tee must duplicate to every sink")
	}
}

func TestChromeTraceSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeTraceSink(&buf)
	s.Emit(Event{T: 0.0, Kind: KindProcessStart, Filter: "RE", Copy: 0, Host: "node0", UOW: 0})
	s.Emit(Event{T: 0.1, Kind: KindPick, Filter: "RE", Copy: 0, Host: "node0", Stream: "tris", Target: "node1"})
	s.Emit(Event{T: 0.2, Kind: KindStallStart, Filter: "RE", Copy: 0, Host: "node0", Stream: "tris", Note: "write"})
	s.Emit(Event{T: 0.3, Kind: KindStallEnd, Filter: "RE", Copy: 0, Host: "node0", Stream: "tris", Note: "write"})
	s.Emit(Event{T: 0.4, Kind: KindProcessEnd, Filter: "RE", Copy: 0, Host: "node0", UOW: 0})
	s.Emit(Event{T: 0.5, Kind: KindEnqueue, Filter: "Ra", Copy: 1, Host: "node1", Stream: "tris", Bytes: 99})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var b, e int
	pids := map[int]bool{}
	var sawThreadMeta, sawInstant bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			b++
		case "E":
			e++
		case "i":
			sawInstant = true
		case "M":
			if ev.Name == "thread_name" {
				sawThreadMeta = true
			}
		}
		pids[ev.PID] = true
	}
	if b != 2 || e != 2 {
		t.Fatalf("B/E = %d/%d, want 2/2", b, e)
	}
	if !sawInstant || !sawThreadMeta {
		t.Fatal("missing instant or thread metadata events")
	}
	if len(pids) < 2 {
		t.Fatalf("hosts must map to distinct pids, got %v", pids)
	}
	// Timestamps scale to microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" && strings.HasPrefix(ev.Name, "enqueue") && ev.TS != 0.5*1e6 {
			t.Fatalf("enqueue ts = %g, want 5e5", ev.TS)
		}
	}
	// Second flush is a no-op, not a second document.
	n := buf.Len()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("second Flush wrote more output")
	}
}

func TestChromeTraceEmptyFlush(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeTraceSink(&buf)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents missing or wrong type: %v", doc)
	}
}

// ---- Debug endpoint ----

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dist.rx.data_frames").Add(42)
	ring := NewRingSink(16)
	ring.Emit(Event{T: 1, Kind: KindSend, Filter: "RE", Stream: "tris"})
	srv := httptest.NewServer(Handler(reg, ring))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap["dist.rx.data_frames"].(float64) != 42 {
		t.Fatalf("metrics = %v", snap)
	}

	code, body = get("/debug/events")
	if code != 200 {
		t.Fatalf("/debug/events status %d", code)
	}
	var evs []map[string]any
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if len(evs) != 1 || evs[0]["k"] != "send" {
		t.Fatalf("events = %v", evs)
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path status %d", code)
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("x").Set(1)
	d, err := ServeDebug("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
