// Package obs is the unified observability subsystem for the DataCutter
// engines: a lock-cheap metrics registry (counters, gauges, streaming
// histograms), structured buffer-lifecycle trace events emitted through a
// pluggable Sink, and a live HTTP debug endpoint.
//
// All three engines (internal/core, internal/simrt, internal/dist) emit the
// same Event schema, so one tooling path — the JSONL dump, the in-memory
// ring, or the Chrome trace_event export viewable in Perfetto — explains a
// run on any of them. A Clock abstraction keeps the time domain honest: the
// simulated engine stamps events in virtual seconds, the real and
// distributed engines in wall seconds.
//
// Observability is opt-in and designed to cost nothing when off: every
// engine holds a *Observer that is nil when disabled, and all Observer
// methods are nil-receiver safe, so the hot-path cost of a disabled
// observer is a single pointer comparison (no allocation, no time syscall).
package obs

import (
	"sync/atomic"
	"time"
)

// Kind identifies a buffer-lifecycle trace event.
type Kind uint8

// Event kinds. Together they cover a buffer's life: a producer Picks a
// target copy set, Sends it (wire transfer on the simulated/distributed
// engines), the buffer is Enqueued on the consumer's copy-set queue, and —
// under demand-driven policies — the consumer Acks it as processing begins.
// ProcessStart/ProcessEnd bracket one filter copy's Process call for a unit
// of work; StallStart/StallEnd bracket time a copy spends blocked on a full
// or empty stream queue (Note says which side: "read" or "write").
// HostDown/UOWRetry are failure-model events from the distributed
// coordinator: a host declared dead (Note names it) and a unit of work
// re-dispatched on a shrunk placement.
// ScaleUp/ScaleDown/Rebalance are elasticity events (internal/elastic):
// copies added to or retired from a filter's copy set (Filter and Host name
// the set, Copy carries the new copy count, Note the reason), and a WRR
// weight rebalance from observed throughput (Stream names the stream).
// Prune is a storage-tier pushdown event (internal/dataset): one predicate
// evaluation over a chunk list, with N carrying the pruned-chunk count,
// Bytes the chunk bytes that will never be read, UOW the timestep, and
// Note the predicate.
const (
	KindEnqueue Kind = iota + 1
	KindPick
	KindSend
	KindAck
	KindProcessStart
	KindProcessEnd
	KindStallStart
	KindStallEnd
	KindHostDown
	KindUOWRetry
	KindScaleUp
	KindScaleDown
	KindRebalance
	KindPrune
)

var kindNames = [...]string{
	KindEnqueue:      "enqueue",
	KindPick:         "pick",
	KindSend:         "send",
	KindAck:          "ack",
	KindProcessStart: "process-start",
	KindProcessEnd:   "process-end",
	KindStallStart:   "stall-start",
	KindStallEnd:     "stall-end",
	KindHostDown:     "host-down",
	KindUOWRetry:     "uow-retry",
	KindScaleUp:      "scale-up",
	KindScaleDown:    "scale-down",
	KindRebalance:    "rebalance",
	KindPrune:        "prune",
}

// String returns the event kind's schema name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured trace record. Not every field is meaningful for
// every kind; unused fields are zero and omitted from JSON encodings.
type Event struct {
	// T is the timestamp in seconds in the emitting engine's time domain
	// (virtual seconds on the simulated engine, wall seconds since the
	// observer's epoch otherwise). Stamped by Observer.Emit.
	T    float64 `json:"t"`
	Kind Kind    `json:"k"`
	// Filter / Copy / Host identify the filter copy the event belongs to.
	Filter string `json:"f,omitempty"`
	Copy   int    `json:"c"`
	Host   string `json:"h,omitempty"`
	// Stream is the logical stream a buffer event concerns.
	Stream string `json:"s,omitempty"`
	// Target is the destination copy-set host for pick/send/enqueue.
	Target string `json:"tg,omitempty"`
	// Bytes is the buffer payload size for send/enqueue.
	Bytes int `json:"b,omitempty"`
	// N is the coalesced message count for batched acknowledgments.
	N int `json:"n,omitempty"`
	// UOW is the unit-of-work index.
	UOW int `json:"u"`
	// Note carries kind-specific detail ("read"/"write" for stalls).
	Note string `json:"note,omitempty"`
}

// Clock supplies event timestamps in seconds. Engines bind the clock to
// their time domain before a run: wall time for the real and distributed
// engines, the simulation kernel's virtual time for internal/simrt.
type Clock interface {
	Now() float64
}

// ClockFunc adapts a function to a Clock (how internal/simrt wraps its
// kernel without obs importing the simulation packages).
type ClockFunc func() float64

// Now implements Clock.
func (f ClockFunc) Now() float64 { return f() }

type wallClock struct{ epoch time.Time }

func (w wallClock) Now() float64 { return time.Since(w.epoch).Seconds() }

// NewWallClock returns a Clock reporting wall seconds since now.
func NewWallClock() Clock { return wallClock{epoch: time.Now()} }

// Observer bundles a trace sink, a metrics registry, and a clock — the
// handle an engine holds. A nil *Observer is the disabled state: every
// method is nil-receiver safe and returns immediately, so instrumented hot
// paths cost one pointer comparison when observability is off.
type Observer struct {
	sink  Sink
	reg   *Registry
	clock atomic.Pointer[Clock]
}

// New creates an Observer around a sink (nil for metrics-only observers)
// and a registry (nil allocates a fresh one). The clock defaults to wall
// seconds since New; engines rebind it with SetClock.
func New(sink Sink, reg *Registry) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	o := &Observer{sink: sink, reg: reg}
	c := NewWallClock()
	o.clock.Store(&c)
	return o
}

// Registry returns the observer's metrics registry (nil observer: nil).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// SetClock rebinds the observer's time domain. Engines call it at the start
// of a run (e.g. the simulated engine installs its kernel's virtual clock).
func (o *Observer) SetClock(c Clock) {
	if o == nil || c == nil {
		return
	}
	o.clock.Store(&c)
}

// Now returns the current time in the observer's domain (0 when nil).
func (o *Observer) Now() float64 {
	if o == nil {
		return 0
	}
	return (*o.clock.Load()).Now()
}

// Emit stamps the event with the observer's clock and hands it to the sink.
// Safe on a nil observer and with a nil sink (both no-ops).
func (o *Observer) Emit(e Event) {
	if o == nil || o.sink == nil {
		return
	}
	e.T = (*o.clock.Load()).Now()
	o.sink.Emit(e)
}

// EmitAt is Emit with an explicit timestamp, for engines that detect a span
// after the fact (the simulated engine compares virtual time around a
// blocking call and back-stamps the stall pair). Events in a sink are in
// emission order; timestamps, not order, are authoritative.
func (o *Observer) EmitAt(t float64, e Event) {
	if o == nil || o.sink == nil {
		return
	}
	e.T = t
	o.sink.Emit(e)
}

// Flush flushes the sink (writes the Chrome trace file footer, drains
// buffered JSONL). Call once at the end of a run.
func (o *Observer) Flush() error {
	if o == nil || o.sink == nil {
		return nil
	}
	return o.sink.Flush()
}
