// Package faults is a deterministic, seeded fault-injection layer for the
// distributed engine's chaos tests and -faults CLI flags. A Plan is parsed
// from a compact spec string and instantiated as one Injector per process;
// the transport layer (internal/dist's conn and dial paths) consults the
// injector through nil-by-default hooks, so the production hot path pays
// only a nil pointer comparison when injection is off.
//
// Spec grammar — directives separated by ';':
//
//	seed=N                    seed the plan's PRNG (default 1)
//	faildial=N                fail the first N dial attempts
//	drop=STREAM:NTH           drop the NTH data frame sent on STREAM
//	dup=STREAM:NTH            duplicate the NTH data frame sent on STREAM
//	delay=STREAM:NTH:DUR      delay the NTH data frame on STREAM by DUR
//	droppct=STREAM:PCT        drop PCT percent of STREAM's data frames (PRNG)
//	kill=data:N               hard-close every connection and the listener
//	                          after N data frames received (process crash)
//	wedge=data:N:DUR          after N data frames received, stop heartbeats
//	                          and stall frame handling for DUR (frozen
//	                          process; detected only by heartbeat timeout)
//
// Counted directives (drop, dup, delay, kill, wedge) are fully
// deterministic given a frame arrival order; droppct is deterministic with
// respect to the seeded PRNG and the per-stream send sequence.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

type dirKind uint8

const (
	dirFailDial dirKind = iota + 1
	dirDrop
	dirDup
	dirDelay
	dirDropPct
	dirKill
	dirWedge
)

type directive struct {
	kind   dirKind
	stream string
	n      int           // occurrence / count threshold
	pct    float64       // droppct probability in [0,1]
	dur    time.Duration // delay / wedge duration
}

// Plan is an immutable, parsed fault plan. One Plan can instantiate any
// number of independent Injectors (one per simulated process).
type Plan struct {
	seed int64
	dirs []directive
	spec string
}

// ParsePlan parses a fault spec string (see the package comment for the
// grammar). An empty spec yields a plan that injects nothing.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{seed: 1, spec: spec}
	for _, raw := range strings.Split(spec, ";") {
		d := strings.TrimSpace(raw)
		if d == "" {
			continue
		}
		key, val, ok := strings.Cut(d, "=")
		if !ok {
			return nil, fmt.Errorf("faults: directive %q: want key=value", d)
		}
		if err := p.parseDirective(key, val); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (p *Plan) parseDirective(key, val string) error {
	fields := strings.Split(val, ":")
	switch key {
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("faults: seed=%q: %v", val, err)
		}
		p.seed = n
	case "faildial":
		n, err := positiveInt(val)
		if err != nil {
			return fmt.Errorf("faults: faildial=%q: %v", val, err)
		}
		p.dirs = append(p.dirs, directive{kind: dirFailDial, n: n})
	case "drop", "dup":
		if len(fields) != 2 {
			return fmt.Errorf("faults: %s=%q: want STREAM:NTH", key, val)
		}
		n, err := positiveInt(fields[1])
		if err != nil {
			return fmt.Errorf("faults: %s=%q: %v", key, val, err)
		}
		k := dirDrop
		if key == "dup" {
			k = dirDup
		}
		p.dirs = append(p.dirs, directive{kind: k, stream: fields[0], n: n})
	case "delay":
		if len(fields) != 3 {
			return fmt.Errorf("faults: delay=%q: want STREAM:NTH:DUR", val)
		}
		n, err := positiveInt(fields[1])
		if err != nil {
			return fmt.Errorf("faults: delay=%q: %v", val, err)
		}
		dur, err := time.ParseDuration(fields[2])
		if err != nil || dur <= 0 {
			return fmt.Errorf("faults: delay=%q: bad duration %q", val, fields[2])
		}
		p.dirs = append(p.dirs, directive{kind: dirDelay, stream: fields[0], n: n, dur: dur})
	case "droppct":
		if len(fields) != 2 {
			return fmt.Errorf("faults: droppct=%q: want STREAM:PCT", val)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || pct < 0 || pct > 100 {
			return fmt.Errorf("faults: droppct=%q: percentage must be in [0,100]", val)
		}
		p.dirs = append(p.dirs, directive{kind: dirDropPct, stream: fields[0], pct: pct / 100})
	case "kill":
		if len(fields) != 2 || fields[0] != "data" {
			return fmt.Errorf("faults: kill=%q: want data:N", val)
		}
		n, err := positiveInt(fields[1])
		if err != nil {
			return fmt.Errorf("faults: kill=%q: %v", val, err)
		}
		p.dirs = append(p.dirs, directive{kind: dirKill, n: n})
	case "wedge":
		if len(fields) != 3 || fields[0] != "data" {
			return fmt.Errorf("faults: wedge=%q: want data:N:DUR", val)
		}
		n, err := positiveInt(fields[1])
		if err != nil {
			return fmt.Errorf("faults: wedge=%q: %v", val, err)
		}
		dur, err := time.ParseDuration(fields[2])
		if err != nil || dur <= 0 {
			return fmt.Errorf("faults: wedge=%q: bad duration %q", val, fields[2])
		}
		p.dirs = append(p.dirs, directive{kind: dirWedge, n: n, dur: dur})
	default:
		return errUnknown(key)
	}
	return nil
}

func errUnknown(key string) error {
	return fmt.Errorf("faults: unknown directive %q (want seed, faildial, drop, dup, delay, droppct, kill, wedge)", key)
}

func positiveInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("count must be positive, got %d", n)
	}
	return n, nil
}

// String returns the original spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.dirs) == 0 }

// Injector instantiates the plan for one process, with fresh counters and a
// PRNG seeded from the plan. All methods are safe on a nil *Injector (every
// hook in the transport is nil-by-default) and safe for concurrent use.
func (p *Plan) Injector() *Injector {
	if p == nil {
		return nil
	}
	return &Injector{
		plan: p,
		rng:  rand.New(rand.NewSource(p.seed)),
		sent: make(map[string]int),
	}
}

// SendAction tells the transport what to do with one outgoing data frame.
type SendAction struct {
	Drop  bool
	Dup   bool
	Delay time.Duration
}

// Injector holds one process's live fault state.
type Injector struct {
	plan *Plan

	mu         sync.Mutex
	rng        *rand.Rand
	dials      int
	dataRecvd  int
	sent       map[string]int // per-stream data frames sent
	wedgeUntil time.Time
	killed     bool
	onKill     func()
}

// OnKill registers the callback fired (once, without the injector lock held)
// when a kill directive triggers — typically Worker.Kill.
func (in *Injector) OnKill(fn func()) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.onKill = fn
	in.mu.Unlock()
}

// FailDial returns a non-nil error for each of the plan's first N dial
// attempts (counted across all addresses), nil afterwards.
func (in *Injector) FailDial() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.dials++
	for _, d := range in.plan.dirs {
		if d.kind == dirFailDial && in.dials <= d.n {
			return fmt.Errorf("faults: injected dial failure %d of %d", in.dials, d.n)
		}
	}
	return nil
}

// DataSent accounts one outgoing data frame on stream and returns the
// injected action (zero value = pass through untouched).
func (in *Injector) DataSent(stream string) SendAction {
	if in == nil {
		return SendAction{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sent[stream]++
	nth := in.sent[stream]
	var act SendAction
	for _, d := range in.plan.dirs {
		if d.stream != stream {
			continue
		}
		switch d.kind {
		case dirDrop:
			if nth == d.n {
				act.Drop = true
			}
		case dirDup:
			if nth == d.n {
				act.Dup = true
			}
		case dirDelay:
			if nth == d.n {
				act.Delay = d.dur
			}
		case dirDropPct:
			if in.rng.Float64() < d.pct {
				act.Drop = true
			}
		}
	}
	return act
}

// FrameReceived accounts one received frame (isData marks data-plane frames,
// the unit kill/wedge thresholds count). It returns kill=true exactly once
// when a kill directive fires — the registered OnKill callback has already
// run — and a positive stall duration while a wedge is in effect.
func (in *Injector) FrameReceived(isData bool) (kill bool, stall time.Duration) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	if isData {
		in.dataRecvd++
	}
	now := time.Now()
	var fire func()
	for _, d := range in.plan.dirs {
		switch d.kind {
		case dirKill:
			if isData && !in.killed && in.dataRecvd >= d.n {
				in.killed = true
				kill = true
				fire = in.onKill
			}
		case dirWedge:
			if isData && in.wedgeUntil.IsZero() && in.dataRecvd >= d.n {
				in.wedgeUntil = now.Add(d.dur)
			}
		}
	}
	if !in.wedgeUntil.IsZero() && now.Before(in.wedgeUntil) {
		stall = in.wedgeUntil.Sub(now)
	}
	in.mu.Unlock()
	if fire != nil {
		fire()
	}
	return kill, stall
}

// Wedged reports whether the process is inside a wedge window; the worker's
// heartbeat sender consults it so a wedged worker goes silent, the way a
// frozen process would.
func (in *Injector) Wedged() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.wedgeUntil.IsZero() && time.Now().Before(in.wedgeUntil)
}
