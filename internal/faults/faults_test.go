package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParsePlanEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;", " ; "} {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		if !p.Empty() {
			t.Fatalf("ParsePlan(%q): want empty plan", spec)
		}
		if p.Injector() == nil {
			t.Fatalf("ParsePlan(%q): empty plan should still yield an injector", spec)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"bogus=1",
		"drop=stream",        // missing NTH
		"drop=stream:0",      // non-positive
		"drop=stream:x",      // non-numeric
		"delay=stream:1",     // missing duration
		"delay=stream:1:abc", // bad duration
		"delay=stream:1:-1s", // non-positive duration
		"droppct=stream:101",
		"droppct=stream:-1",
		"kill=5",        // missing data: prefix
		"kill=frames:5", // wrong unit
		"wedge=data:5",  // missing duration
		"faildial=0",
		"seed=abc",
		"noequals",
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q): want error, got nil", spec)
		}
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if err := in.FailDial(); err != nil {
		t.Fatalf("nil FailDial: %v", err)
	}
	if act := in.DataSent("s"); act != (SendAction{}) {
		t.Fatalf("nil DataSent: %+v", act)
	}
	if kill, stall := in.FrameReceived(true); kill || stall != 0 {
		t.Fatalf("nil FrameReceived: kill=%v stall=%v", kill, stall)
	}
	if in.Wedged() {
		t.Fatal("nil Wedged: want false")
	}
	in.OnKill(func() {}) // must not panic
}

func TestFailDial(t *testing.T) {
	p, err := ParsePlan("faildial=2")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector()
	for i := 0; i < 2; i++ {
		if err := in.FailDial(); err == nil {
			t.Fatalf("dial %d: want injected failure", i+1)
		}
	}
	if err := in.FailDial(); err != nil {
		t.Fatalf("dial 3: want success, got %v", err)
	}
}

func TestDropDupDelayTargetNthFrame(t *testing.T) {
	p, err := ParsePlan("drop=a:2; dup=b:1; delay=a:3:50ms")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector()
	// Stream a: frame1 clean, frame2 dropped, frame3 delayed.
	if act := in.DataSent("a"); act != (SendAction{}) {
		t.Fatalf("a#1: %+v", act)
	}
	if act := in.DataSent("a"); !act.Drop || act.Dup || act.Delay != 0 {
		t.Fatalf("a#2: %+v", act)
	}
	if act := in.DataSent("a"); act.Drop || act.Dup || act.Delay != 50*time.Millisecond {
		t.Fatalf("a#3: %+v", act)
	}
	// Stream b: frame1 duplicated, frame2 clean.
	if act := in.DataSent("b"); !act.Dup || act.Drop {
		t.Fatalf("b#1: %+v", act)
	}
	if act := in.DataSent("b"); act != (SendAction{}) {
		t.Fatalf("b#2: %+v", act)
	}
	// Unrelated stream untouched.
	if act := in.DataSent("c"); act != (SendAction{}) {
		t.Fatalf("c#1: %+v", act)
	}
}

func TestDropPctDeterministicPerSeed(t *testing.T) {
	run := func(seed string) []bool {
		p, err := ParsePlan("seed=" + seed + "; droppct=s:50")
		if err != nil {
			t.Fatal(err)
		}
		in := p.Injector()
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.DataSent("s").Drop
		}
		return out
	}
	a, b := run("7"), run("7")
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: same seed diverged", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("droppct=50 dropped %d/%d frames; want a mix", drops, len(a))
	}
}

func TestKillFiresOnceAndRunsCallback(t *testing.T) {
	p, err := ParsePlan("kill=data:3")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector()
	fired := 0
	in.OnKill(func() { fired++ })
	for i := 1; i <= 2; i++ {
		if kill, _ := in.FrameReceived(true); kill {
			t.Fatalf("frame %d: premature kill", i)
		}
	}
	if kill, _ := in.FrameReceived(false); kill {
		t.Fatal("control frame must not advance the data count to the threshold")
	}
	if kill, _ := in.FrameReceived(true); !kill {
		t.Fatal("frame 3: want kill")
	}
	if kill, _ := in.FrameReceived(true); kill {
		t.Fatal("kill must fire exactly once")
	}
	if fired != 1 {
		t.Fatalf("OnKill fired %d times, want 1", fired)
	}
}

func TestWedgeWindow(t *testing.T) {
	p, err := ParsePlan("wedge=data:2:100ms")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector()
	if in.Wedged() {
		t.Fatal("wedged before threshold")
	}
	in.FrameReceived(true)
	if _, stall := in.FrameReceived(true); stall <= 0 {
		t.Fatal("frame 2: want a stall inside the wedge window")
	}
	if !in.Wedged() {
		t.Fatal("want Wedged inside the window")
	}
	time.Sleep(120 * time.Millisecond)
	if in.Wedged() {
		t.Fatal("wedge window should have expired")
	}
	if _, stall := in.FrameReceived(true); stall != 0 {
		t.Fatal("no stall after the window expires")
	}
}

func TestSeparateInjectorsAreIndependent(t *testing.T) {
	p, err := ParsePlan("drop=s:1")
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.Injector(), p.Injector()
	if act := a.DataSent("s"); !act.Drop {
		t.Fatal("a#1: want drop")
	}
	if act := b.DataSent("s"); !act.Drop {
		t.Fatal("b must have its own counters: want drop on its first frame")
	}
}

func TestPlanString(t *testing.T) {
	spec := "seed=3; kill=data:10"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != spec {
		t.Fatalf("String() = %q, want %q", p.String(), spec)
	}
	var nilPlan *Plan
	if nilPlan.String() != "" || !nilPlan.Empty() || nilPlan.Injector() != nil {
		t.Fatal("nil plan must be inert")
	}
}

func TestUnknownDirectiveErrorListsGrammar(t *testing.T) {
	_, err := ParsePlan("frobnicate=1")
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("want error naming the directive, got %v", err)
	}
}
