// Package mcubes implements isosurface extraction on rectilinear grids, the
// transformation step of the paper's isosurface rendering application
// (Lorensen & Cline's marching cubes [23]).
//
// Cells are polygonized through the Freudenthal decomposition of each cube
// into six tetrahedra sharing the main diagonal — the standard crack-free
// marching-cubes variant. The decomposition is translation-invariant, so
// neighboring cells (and neighboring *blocks* processed by different
// transparent copies of the extract filter) generate bit-identical vertices
// on their shared faces: block-parallel extraction is seamless, which the
// package's watertightness property tests verify.
//
// Each voxel is processed independently, so extraction pipelines buffer by
// buffer and parallelizes across transparent filter copies (paper §3.1.1).
package mcubes

import (
	"datacutter/internal/geom"
	"datacutter/internal/volume"
)

// corner is one cell corner with everything interpolation needs. The id is
// the corner's global sample index, used to orient edge interpolation
// deterministically so shared edges produce bit-identical vertices no
// matter which cell or tetrahedron generates them.
type corner struct {
	p  geom.Vec3
	g  geom.Vec3
	v  float32
	id int64
}

// The six tetrahedra of the Freudenthal decomposition, as cube-corner
// indices (corner c = dx + 2*dy + 4*dz). Each is a monotone path
// (0,0,0) -> (1,1,1).
var tets = [6][4]int{
	{0, 1, 3, 7}, // +x +y +z
	{0, 1, 5, 7}, // +x +z +y
	{0, 2, 3, 7}, // +y +x +z
	{0, 2, 6, 7}, // +y +z +x
	{0, 4, 5, 7}, // +z +x +y
	{0, 4, 6, 7}, // +z +y +x
}

var cornerOffset = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
}

// Stats reports work done by one extraction pass.
type Stats struct {
	Cells       int // marching cells visited
	ActiveCells int // cells intersected by the isosurface
	Triangles   int
}

// Walk extracts the isosurface of v at isovalue iso, invoking emit for
// every triangle. Triangle vertices are in the global normalized
// coordinates of v's block; normals derive from the sampled field's
// gradient and point toward decreasing values.
func Walk(v *volume.Volume, iso float32, emit func(geom.Triangle)) Stats {
	var st Stats
	if v.NX < 2 || v.NY < 2 || v.NZ < 2 {
		return st
	}
	gx := int64(v.Block.GX)
	gxy := gx * int64(v.Block.GY)
	if gx == 0 {
		gx = int64(v.NX)
		gxy = gx * int64(v.NY)
	}

	var cs [8]corner
	for z := 0; z < v.NZ-1; z++ {
		for y := 0; y < v.NY-1; y++ {
			for x := 0; x < v.NX-1; x++ {
				st.Cells++
				// Classify quickly on the 8 corner samples.
				inside := 0
				for c := 0; c < 8; c++ {
					o := cornerOffset[c]
					if v.At(x+o[0], y+o[1], z+o[2]) > iso {
						inside++
					}
				}
				if inside == 0 || inside == 8 {
					continue
				}
				st.ActiveCells++
				for c := 0; c < 8; c++ {
					o := cornerOffset[c]
					cx, cy, cz := x+o[0], y+o[1], z+o[2]
					px, py, pz := v.PosOf(cx, cy, cz)
					cs[c] = corner{
						p:  geom.V(px, py, pz),
						g:  gradient(v, cx, cy, cz),
						v:  v.At(cx, cy, cz),
						id: int64(v.Block.X0+cx) + int64(v.Block.Y0+cy)*gx + int64(v.Block.Z0+cz)*gxy,
					}
				}
				for _, t := range tets {
					st.Triangles += tetra(cs[t[0]], cs[t[1]], cs[t[2]], cs[t[3]], iso, emit)
				}
			}
		}
	}
	return st
}

// Extract appends the isosurface triangles of v at iso to out.
func Extract(v *volume.Volume, iso float32, out []geom.Triangle) ([]geom.Triangle, Stats) {
	st := Walk(v, iso, func(t geom.Triangle) { out = append(out, t) })
	return out, st
}

// gradient computes the sampled field's gradient at a sample point via
// central differences, falling back to one-sided differences at block
// borders. The per-axis step is the grid spacing in normalized coordinates.
func gradient(v *volume.Volume, x, y, z int) geom.Vec3 {
	diff := func(get func(int) float32, i, n int) float32 {
		switch {
		case n < 2:
			return 0
		case i == 0:
			return get(1) - get(0)
		case i == n-1:
			return get(n-1) - get(n-2)
		default:
			return (get(i+1) - get(i-1)) / 2
		}
	}
	gxv := diff(func(i int) float32 { return v.At(i, y, z) }, x, v.NX)
	gyv := diff(func(j int) float32 { return v.At(x, j, z) }, y, v.NY)
	gzv := diff(func(k int) float32 { return v.At(x, y, k) }, z, v.NZ)
	return geom.V(gxv, gyv, gzv)
}

// interp returns the isosurface crossing on edge (a,b) with deterministic
// endpoint orientation: the corner with the smaller global sample id is
// always the interpolation origin, so every cell that shares the edge
// produces the identical vertex.
func interp(a, b corner, iso float32) (geom.Vec3, geom.Vec3) {
	if a.id > b.id {
		a, b = b, a
	}
	d := b.v - a.v
	t := float32(0.5)
	if d != 0 {
		t = (iso - a.v) / d
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	p := geom.Lerp(a.p, b.p, t)
	n := geom.Lerp(a.g, b.g, t).Scale(-1).Normalize()
	return p, n
}

// tetra polygonizes one tetrahedron, returning the triangle count emitted.
func tetra(a, b, c, d corner, iso float32, emit func(geom.Triangle)) int {
	vs := [4]corner{a, b, c, d}
	mask := 0
	for i := 0; i < 4; i++ {
		if vs[i].v > iso {
			mask |= 1 << i
		}
	}
	if mask == 0 || mask == 0xF {
		return 0
	}
	if mask > 7 {
		mask ^= 0xF // complement: same crossing edges
	}
	n := 0
	tri := func(e0a, e0b, e1a, e1b, e2a, e2b int) {
		var t geom.Triangle
		t.P[0], t.N[0] = interp(vs[e0a], vs[e0b], iso)
		t.P[1], t.N[1] = interp(vs[e1a], vs[e1b], iso)
		t.P[2], t.N[2] = interp(vs[e2a], vs[e2b], iso)
		if degenerate(t) {
			return
		}
		emit(t)
		n++
	}
	switch mask {
	case 0x1: // vertex 0 inside
		tri(0, 1, 0, 2, 0, 3)
	case 0x2: // vertex 1 inside
		tri(1, 0, 1, 3, 1, 2)
	case 0x4: // vertex 2 inside
		tri(2, 0, 2, 1, 2, 3)
	case 0x3: // vertices 0,1 inside: quad on edges 02,03,13,12
		tri(0, 2, 0, 3, 1, 3)
		tri(0, 2, 1, 3, 1, 2)
	case 0x5: // vertices 0,2: quad on edges 01,21,23,03
		tri(0, 1, 2, 1, 2, 3)
		tri(0, 1, 2, 3, 0, 3)
	case 0x6: // vertices 1,2: quad on edges 10,20,23,13
		tri(1, 0, 2, 0, 2, 3)
		tri(1, 0, 2, 3, 1, 3)
	case 0x7: // vertices 0,1,2 inside == vertex 3 outside
		tri(3, 0, 3, 2, 3, 1)
	}
	return n
}

// degenerate reports a zero-area triangle (coincident vertices), which can
// arise when the isovalue grazes a sample exactly.
func degenerate(t geom.Triangle) bool {
	return t.P[0] == t.P[1] || t.P[1] == t.P[2] || t.P[0] == t.P[2]
}
