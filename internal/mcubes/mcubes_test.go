package mcubes

import (
	"math"
	"testing"
	"testing/quick"

	"datacutter/internal/geom"
	"datacutter/internal/volume"
)

// sphereVolume samples f(p) = r - |p - c| so the isosurface at 0 is a
// sphere of radius r (positive inside).
func sphereVolume(n int, r float32) *volume.Volume {
	v := volume.New(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				fx, fy, fz := v.PosOf(x, y, z)
				dx, dy, dz := fx-0.5, fy-0.5, fz-0.5
				d := float32(math.Sqrt(float64(dx*dx + dy*dy + dz*dz)))
				v.Set(x, y, z, r-d)
			}
		}
	}
	return v
}

func TestSphereVerticesLieOnSphere(t *testing.T) {
	const n, r = 33, 0.3
	v := sphereVolume(n, r)
	tris, st := Extract(v, 0, nil)
	if st.Triangles == 0 || len(tris) != st.Triangles {
		t.Fatalf("triangles: %d (stats %d)", len(tris), st.Triangles)
	}
	h := 1.0 / float32(n-1) // grid spacing bounds the interpolation error
	for _, tr := range tris {
		for _, p := range tr.P {
			dx, dy, dz := p.X-0.5, p.Y-0.5, p.Z-0.5
			d := float32(math.Sqrt(float64(dx*dx + dy*dy + dz*dz)))
			if math.Abs(float64(d-r)) > float64(h) {
				t.Fatalf("vertex %v at distance %v, want %v +- %v", p, d, r, h)
			}
		}
	}
}

func TestSphereNormalsPointOutward(t *testing.T) {
	v := sphereVolume(25, 0.3)
	tris, _ := Extract(v, 0, nil)
	bad := 0
	for _, tr := range tris {
		for i, p := range tr.P {
			radial := geom.V(p.X-0.5, p.Y-0.5, p.Z-0.5).Normalize()
			if radial.Dot(tr.N[i]) < 0.8 {
				bad++
			}
		}
	}
	if bad > len(tris)/100 {
		t.Fatalf("%d of %d vertex normals deviate from radial", bad, len(tris)*3)
	}
}

type edgeKey struct{ a, b geom.Vec3 }

func canonEdge(a, b geom.Vec3) edgeKey {
	if a.X > b.X || (a.X == b.X && (a.Y > b.Y || (a.Y == b.Y && a.Z > b.Z))) {
		a, b = b, a
	}
	return edgeKey{a, b}
}

func edgeCounts(tris []geom.Triangle) map[edgeKey]int {
	edges := make(map[edgeKey]int)
	for _, tr := range tris {
		edges[canonEdge(tr.P[0], tr.P[1])]++
		edges[canonEdge(tr.P[1], tr.P[2])]++
		edges[canonEdge(tr.P[2], tr.P[0])]++
	}
	return edges
}

func TestSphereSurfaceIsWatertight(t *testing.T) {
	v := sphereVolume(21, 0.28)
	tris, _ := Extract(v, 0, nil)
	for e, n := range edgeCounts(tris) {
		if n != 2 {
			t.Fatalf("edge %v shared by %d triangles, want 2", e, n)
		}
	}
}

func TestSphereEulerCharacteristic(t *testing.T) {
	v := sphereVolume(21, 0.28)
	tris, _ := Extract(v, 0, nil)
	verts := make(map[geom.Vec3]struct{})
	for _, tr := range tris {
		for _, p := range tr.P {
			verts[p] = struct{}{}
		}
	}
	edges := edgeCounts(tris)
	chi := len(verts) - len(edges) + len(tris)
	if chi != 2 {
		t.Fatalf("Euler characteristic = %d, want 2 (sphere)", chi)
	}
}

// Property: extraction from random smooth fields is watertight away from
// the volume boundary — boundary-touching surfaces are open there, so only
// edges strictly inside must pair up.
func TestWatertightInteriorProperty(t *testing.T) {
	f := func(seed int64) bool {
		fld := volume.NewPlumeField(seed, 3)
		v := volume.Rasterize(fld, 17, 17, 17, 0)
		min, max := v.MinMax()
		iso := min + (max-min)*0.55
		tris, _ := Extract(v, iso, nil)
		const eps = 1e-6
		onBoundary := func(p geom.Vec3) bool {
			return p.X < eps || p.X > 1-eps || p.Y < eps || p.Y > 1-eps || p.Z < eps || p.Z > 1-eps
		}
		for e, n := range edgeCounts(tris) {
			if n == 2 {
				continue
			}
			if !(onBoundary(e.a) && onBoundary(e.b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Block-parallel extraction must produce the same triangle positions as
// whole-volume extraction (normals may differ at seams where block-local
// gradients are one-sided).
func TestBlockExtractionSeamless(t *testing.T) {
	fld := volume.NewPlumeField(11, 4)
	full := volume.Rasterize(fld, 25, 21, 19, 1)
	min, max := full.MinMax()
	iso := min + (max-min)*0.5

	wholeTris, wst := Extract(full, iso, nil)

	var blockTris []geom.Triangle
	var bst Stats
	for _, b := range volume.Partition(25, 21, 19, 3, 2, 2) {
		sub := full.ExtractBlock(b)
		var s Stats
		blockTris, s = Extract(sub, iso, blockTris)
		bst.Cells += s.Cells
		bst.ActiveCells += s.ActiveCells
		bst.Triangles += s.Triangles
	}
	if bst.Cells != wst.Cells {
		t.Fatalf("cells: blocks %d vs whole %d", bst.Cells, wst.Cells)
	}
	if len(blockTris) != len(wholeTris) {
		t.Fatalf("triangle count: blocks %d vs whole %d", len(blockTris), len(wholeTris))
	}
	type triKey [9]float32
	key := func(tr geom.Triangle) triKey {
		return triKey{tr.P[0].X, tr.P[0].Y, tr.P[0].Z, tr.P[1].X, tr.P[1].Y, tr.P[1].Z, tr.P[2].X, tr.P[2].Y, tr.P[2].Z}
	}
	seen := make(map[triKey]int)
	for _, tr := range wholeTris {
		seen[key(tr)]++
	}
	for _, tr := range blockTris {
		seen[key(tr)]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Fatalf("triangle multiset mismatch at %v (%+d)", k, n)
		}
	}
}

func TestUniformVolumeYieldsNothing(t *testing.T) {
	v := volume.New(8, 8, 8)
	for i := range v.Data {
		v.Data[i] = 1
	}
	tris, st := Extract(v, 0.5, nil)
	if len(tris) != 0 || st.ActiveCells != 0 {
		t.Fatalf("uniform volume produced %d triangles", len(tris))
	}
	if st.Cells != 7*7*7 {
		t.Fatalf("cells = %d", st.Cells)
	}
}

func TestDegenerateVolumeDims(t *testing.T) {
	v := volume.New(1, 8, 8)
	tris, st := Extract(v, 0.5, nil)
	if len(tris) != 0 || st.Cells != 0 {
		t.Fatal("flat volume should produce nothing")
	}
}

func TestIsoOutsideRangeYieldsNothing(t *testing.T) {
	fld := volume.NewPlumeField(5, 3)
	v := volume.Rasterize(fld, 12, 12, 12, 0)
	_, max := v.MinMax()
	tris, _ := Extract(v, max+1, nil)
	if len(tris) != 0 {
		t.Fatalf("iso above max produced %d triangles", len(tris))
	}
}

func TestStatsConsistency(t *testing.T) {
	fld := volume.NewPlumeField(13, 4)
	v := volume.Rasterize(fld, 20, 20, 20, 0)
	min, max := v.MinMax()
	count := 0
	st := Walk(v, (min+max)/2, func(geom.Triangle) { count++ })
	if st.Triangles != count {
		t.Fatalf("stats %d vs emitted %d", st.Triangles, count)
	}
	if st.ActiveCells > st.Cells || st.ActiveCells == 0 {
		t.Fatalf("active=%d cells=%d", st.ActiveCells, st.Cells)
	}
	if st.Triangles < st.ActiveCells {
		t.Fatalf("active cells must emit at least one triangle each: tris=%d active=%d", st.Triangles, st.ActiveCells)
	}
}

func TestTriangleAreasReasonable(t *testing.T) {
	const n = 25
	v := sphereVolume(n, 0.3)
	tris, _ := Extract(v, 0, nil)
	cell := float32(1.0 / float32(n-1))
	maxArea := cell * cell * 1.5 // a triangle cannot exceed ~a cell face
	total := float32(0)
	for _, tr := range tris {
		a := tr.Area()
		if a > maxArea {
			t.Fatalf("oversized triangle area %v (cell %v)", a, cell)
		}
		total += a
	}
	// Total area should approximate the sphere's 4*pi*r^2.
	want := float32(4 * math.Pi * 0.3 * 0.3)
	if total < want*0.9 || total > want*1.2 {
		t.Fatalf("total area %v, want ~%v", total, want)
	}
}

func TestDeterministicExtraction(t *testing.T) {
	fld := volume.NewPlumeField(21, 4)
	v := volume.Rasterize(fld, 15, 15, 15, 3)
	min, max := v.MinMax()
	iso := (min + max) / 2
	a, _ := Extract(v, iso, nil)
	b, _ := Extract(v, iso, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
}

func BenchmarkExtract64(b *testing.B) {
	fld := volume.NewPlumeField(1, 4)
	v := volume.Rasterize(fld, 64, 64, 64, 0)
	min, max := v.MinMax()
	iso := (min + max) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Walk(v, iso, func(geom.Triangle) {})
	}
}
