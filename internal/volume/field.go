package volume

import (
	"math"
	"math/rand"
)

// Field is a continuous scalar field over the unit cube and time, sampled
// to grids of any resolution. It replaces the stored ParSSim outputs: one
// Field plays the role of one chemical species' concentration.
type Field interface {
	// Sample evaluates the field at normalized position (x,y,z) in [0,1]
	// and timestep t (continuous; integer values correspond to stored
	// timesteps).
	Sample(x, y, z, t float64) float32
}

// plume is one advected Gaussian concentration blob.
type plume struct {
	cx, cy, cz float64 // initial center
	vx, vy, vz float64 // drift per timestep
	sigma      float64
	amp        float64
	growth     float64 // sigma growth per timestep (dispersion)
}

// PlumeField models the concentration of a chemical species in a reactive
// transport simulation: several Gaussian plumes drifting with the flow
// field and dispersing over time, over a mild background gradient. It is
// deterministic for a given seed.
type PlumeField struct {
	plumes     []plume
	background float64
}

// NewPlumeField creates a field with n plumes drawn from the given seed.
func NewPlumeField(seed int64, n int) *PlumeField {
	rng := rand.New(rand.NewSource(seed))
	f := &PlumeField{background: 0.05}
	for i := 0; i < n; i++ {
		f.plumes = append(f.plumes, plume{
			cx:     0.15 + 0.7*rng.Float64(),
			cy:     0.15 + 0.7*rng.Float64(),
			cz:     0.15 + 0.7*rng.Float64(),
			vx:     (rng.Float64() - 0.5) * 0.04,
			vy:     (rng.Float64() - 0.5) * 0.04,
			vz:     (rng.Float64() - 0.5) * 0.04,
			sigma:  0.06 + 0.10*rng.Float64(),
			amp:    0.6 + 0.5*rng.Float64(),
			growth: 0.002 + 0.004*rng.Float64(),
		})
	}
	return f
}

// Sample implements Field.
func (f *PlumeField) Sample(x, y, z, t float64) float32 {
	v := f.background * (1 - z*0.5) // mild vertical background gradient
	for _, p := range f.plumes {
		cx := p.cx + p.vx*t
		cy := p.cy + p.vy*t
		cz := p.cz + p.vz*t
		s := p.sigma + p.growth*t
		dx, dy, dz := x-cx, y-cy, z-cz
		d2 := dx*dx + dy*dy + dz*dz
		v += p.amp * math.Exp(-d2/(2*s*s))
	}
	return float32(v)
}

// SkewedField wraps a field so most of its interesting structure sits in
// one corner of the domain, for data-skew experiments.
type SkewedField struct{ Inner Field }

// Sample implements Field.
func (s *SkewedField) Sample(x, y, z, t float64) float32 {
	// Compress the interesting region toward the origin.
	return s.Inner.Sample(x*x, y*y, z, t)
}

// Rasterize samples a field onto a fresh (nx,ny,nz) grid at timestep t.
func Rasterize(f Field, nx, ny, nz int, t float64) *Volume {
	v := New(nx, ny, nz)
	FillBlock(f, v, t)
	return v
}

// FillBlock samples a field into an existing (possibly block-extracted)
// volume at timestep t, honoring the volume's global position so block-wise
// sampling agrees exactly with whole-grid sampling.
func FillBlock(f Field, v *Volume, t float64) {
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				fx, fy, fz := v.PosOf(x, y, z)
				v.Set(x, y, z, f.Sample(float64(fx), float64(fy), float64(fz), t))
			}
		}
	}
}

// NewBlockVolume allocates an empty volume shaped like block b.
func NewBlockVolume(b Block) *Volume {
	v := New(b.NX, b.NY, b.NZ)
	v.Block = b
	return v
}
