// Package volume provides rectilinear scalar grids, sub-volume
// partitioning, and synthetic time-evolving reactive-transport fields that
// stand in for the paper's ParSSim simulation datasets. The experiments in
// the paper depend on data volume, chunking, placement, and the
// voxel-to-triangle expansion of the isosurface — not on the PDE physics —
// so a smooth multi-species plume field with realistic spatial skew is an
// adequate substitute (see DESIGN.md §3).
package volume

import "fmt"

// Volume is a rectilinear grid of scalar samples over the unit cube.
// Samples are indexed [x + y*NX + z*NX*NY]; sample (i,j,k) sits at
// normalized position (i/(NX-1), j/(NY-1), k/(NZ-1)).
type Volume struct {
	NX, NY, NZ int
	Data       []float32
	// Block records which region of a larger grid this volume covers when
	// it was cut out by ExtractBlock; a full volume covers itself.
	Block Block
}

// New allocates a zeroed volume.
func New(nx, ny, nz int) *Volume {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("volume: dimensions must be >= 1")
	}
	return &Volume{
		NX: nx, NY: ny, NZ: nz,
		Data:  make([]float32, nx*ny*nz),
		Block: Block{NX: nx, NY: ny, NZ: nz},
	}
}

// At returns the sample at (x,y,z). No bounds checks beyond the slice's.
func (v *Volume) At(x, y, z int) float32 { return v.Data[x+y*v.NX+z*v.NX*v.NY] }

// Set stores a sample at (x,y,z).
func (v *Volume) Set(x, y, z int, val float32) { v.Data[x+y*v.NX+z*v.NX*v.NY] = val }

// Samples returns the total sample count.
func (v *Volume) Samples() int { return v.NX * v.NY * v.NZ }

// Bytes returns the in-memory payload size of the samples.
func (v *Volume) Bytes() int { return 4 * v.Samples() }

// Cells returns the number of marching cells (one less than samples per
// axis).
func (v *Volume) Cells() int {
	if v.NX < 2 || v.NY < 2 || v.NZ < 2 {
		return 0
	}
	return (v.NX - 1) * (v.NY - 1) * (v.NZ - 1)
}

// MinMax returns the sample range.
func (v *Volume) MinMax() (min, max float32) {
	if len(v.Data) == 0 {
		return 0, 0
	}
	min, max = v.Data[0], v.Data[0]
	for _, s := range v.Data {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// Block identifies a rectangular sub-grid of a larger volume: sample
// offsets (X0,Y0,Z0) and sample counts (NX,NY,NZ) within a full grid of
// (GX,GY,GZ) samples.
type Block struct {
	X0, Y0, Z0 int
	NX, NY, NZ int
	GX, GY, GZ int
	// Index is the block's position in the partition enumeration order.
	Index int
}

// Samples returns the sample count of the block.
func (b Block) Samples() int { return b.NX * b.NY * b.NZ }

// Bytes returns the serialized size of the block's samples.
func (b Block) Bytes() int { return 4 * b.Samples() }

func (b Block) String() string {
	return fmt.Sprintf("block[%d](%d,%d,%d)+(%d,%d,%d)", b.Index, b.X0, b.Y0, b.Z0, b.NX, b.NY, b.NZ)
}

// Partition cuts a (gx,gy,gz)-sample grid into bx*by*bz blocks. Blocks
// share one sample plane with their +axis neighbors (marching cells sit
// between samples, so overlap keeps block-wise isosurface extraction
// seamless: every cell belongs to exactly one block).
func Partition(gx, gy, gz, bx, by, bz int) []Block {
	if bx < 1 || by < 1 || bz < 1 {
		panic("volume: block counts must be >= 1")
	}
	// Cut on cells: cellsPerAxis = samples-1 split into b parts; each block
	// then owns its cells plus the closing sample plane.
	cuts := func(samples, parts int) []int {
		cells := samples - 1
		edges := make([]int, parts+1)
		for i := 0; i <= parts; i++ {
			edges[i] = i * cells / parts
		}
		return edges
	}
	ex, ey, ez := cuts(gx, bx), cuts(gy, by), cuts(gz, bz)
	blocks := make([]Block, 0, bx*by*bz)
	idx := 0
	for k := 0; k < bz; k++ {
		for j := 0; j < by; j++ {
			for i := 0; i < bx; i++ {
				b := Block{
					X0: ex[i], Y0: ey[j], Z0: ez[k],
					NX: ex[i+1] - ex[i] + 1,
					NY: ey[j+1] - ey[j] + 1,
					NZ: ez[k+1] - ez[k] + 1,
					GX: gx, GY: gy, GZ: gz,
					Index: idx,
				}
				blocks = append(blocks, b)
				idx++
			}
		}
	}
	return blocks
}

// ExtractBlock copies a block's samples out of a full volume.
func (v *Volume) ExtractBlock(b Block) *Volume {
	out := New(b.NX, b.NY, b.NZ)
	out.Block = b
	for z := 0; z < b.NZ; z++ {
		for y := 0; y < b.NY; y++ {
			src := (b.X0) + (b.Y0+y)*v.NX + (b.Z0+z)*v.NX*v.NY
			dst := y*b.NX + z*b.NX*b.NY
			copy(out.Data[dst:dst+b.NX], v.Data[src:src+b.NX])
		}
	}
	return out
}

// PosOf returns the normalized world position of local sample (x,y,z) in a
// block-extracted volume (using the global grid dims recorded in Block).
func (v *Volume) PosOf(x, y, z int) (fx, fy, fz float32) {
	gx, gy, gz := v.Block.GX, v.Block.GY, v.Block.GZ
	if gx == 0 {
		gx, gy, gz = v.NX, v.NY, v.NZ
	}
	den := func(n int) float32 {
		if n <= 1 {
			return 1
		}
		return float32(n - 1)
	}
	return float32(v.Block.X0+x) / den(gx),
		float32(v.Block.Y0+y) / den(gy),
		float32(v.Block.Z0+z) / den(gz)
}
