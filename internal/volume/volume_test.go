package volume

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtSetRoundTrip(t *testing.T) {
	v := New(3, 4, 5)
	v.Set(2, 3, 4, 7.5)
	if got := v.At(2, 3, 4); got != 7.5 {
		t.Fatalf("At = %v", got)
	}
	if v.Samples() != 60 || v.Bytes() != 240 {
		t.Fatalf("Samples/Bytes = %d/%d", v.Samples(), v.Bytes())
	}
	if v.Cells() != 2*3*4 {
		t.Fatalf("Cells = %d", v.Cells())
	}
}

func TestMinMax(t *testing.T) {
	v := New(2, 2, 1)
	v.Data = []float32{3, -1, 4, 1.5}
	min, max := v.MinMax()
	if min != -1 || max != 4 {
		t.Fatalf("MinMax = %v %v", min, max)
	}
}

// Property: a partition covers every marching cell exactly once.
func TestPartitionCoversCellsExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gx, gy, gz := 2+rng.Intn(20), 2+rng.Intn(20), 2+rng.Intn(20)
		bx, by, bz := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		blocks := Partition(gx, gy, gz, bx, by, bz)
		if len(blocks) != bx*by*bz {
			return false
		}
		covered := make(map[[3]int]int)
		for _, b := range blocks {
			if b.NX < 1 || b.NY < 1 || b.NZ < 1 {
				return false
			}
			for z := b.Z0; z < b.Z0+b.NZ-1; z++ {
				for y := b.Y0; y < b.Y0+b.NY-1; y++ {
					for x := b.X0; x < b.X0+b.NX-1; x++ {
						covered[[3]int{x, y, z}]++
					}
				}
			}
		}
		want := (gx - 1) * (gy - 1) * (gz - 1)
		if len(covered) != want {
			return false
		}
		for _, n := range covered {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionIndicesSequential(t *testing.T) {
	blocks := Partition(9, 9, 9, 2, 2, 2)
	for i, b := range blocks {
		if b.Index != i {
			t.Fatalf("block %d has index %d", i, b.Index)
		}
	}
}

func TestExtractBlockMatchesSource(t *testing.T) {
	f := NewPlumeField(42, 3)
	full := Rasterize(f, 17, 13, 11, 0)
	for _, b := range Partition(17, 13, 11, 3, 2, 2) {
		sub := full.ExtractBlock(b)
		for z := 0; z < b.NZ; z++ {
			for y := 0; y < b.NY; y++ {
				for x := 0; x < b.NX; x++ {
					if sub.At(x, y, z) != full.At(b.X0+x, b.Y0+y, b.Z0+z) {
						t.Fatalf("block %v sample (%d,%d,%d) mismatch", b, x, y, z)
					}
				}
			}
		}
	}
}

// Property: sampling a field block-by-block produces bit-identical values
// to whole-grid sampling (needed for seamless distributed extraction).
func TestFillBlockAgreesWithRasterize(t *testing.T) {
	f := NewPlumeField(7, 4)
	full := Rasterize(f, 21, 19, 15, 2.0)
	for _, b := range Partition(21, 19, 15, 2, 3, 2) {
		blockVol := NewBlockVolume(b)
		FillBlock(f, blockVol, 2.0)
		for z := 0; z < b.NZ; z++ {
			for y := 0; y < b.NY; y++ {
				for x := 0; x < b.NX; x++ {
					if blockVol.At(x, y, z) != full.At(b.X0+x, b.Y0+y, b.Z0+z) {
						t.Fatalf("block sampling differs at (%d,%d,%d)", x, y, z)
					}
				}
			}
		}
	}
}

func TestPlumeFieldDeterministic(t *testing.T) {
	a := NewPlumeField(99, 5)
	b := NewPlumeField(99, 5)
	for i := 0; i < 50; i++ {
		x, y, z, tt := rand.Float64(), rand.Float64(), rand.Float64(), rand.Float64()*10
		if a.Sample(x, y, z, tt) != b.Sample(x, y, z, tt) {
			t.Fatal("same seed, different field")
		}
	}
	c := NewPlumeField(100, 5)
	diff := false
	for i := 0; i < 50 && !diff; i++ {
		x, y, z := rand.Float64(), rand.Float64(), rand.Float64()
		if a.Sample(x, y, z, 0) != c.Sample(x, y, z, 0) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestPlumeFieldEvolvesOverTime(t *testing.T) {
	f := NewPlumeField(1, 4)
	diff := false
	for i := 0; i < 100 && !diff; i++ {
		x, y, z := rand.Float64(), rand.Float64(), rand.Float64()
		if f.Sample(x, y, z, 0) != f.Sample(x, y, z, 5) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("field does not evolve between timesteps")
	}
}

func TestPlumeFieldHasIsosurfaceCrossings(t *testing.T) {
	f := NewPlumeField(3, 4)
	v := Rasterize(f, 32, 32, 32, 0)
	min, max := v.MinMax()
	iso := (min + max) / 2
	below, above := 0, 0
	for _, s := range v.Data {
		if s < iso {
			below++
		} else {
			above++
		}
	}
	if below == 0 || above == 0 {
		t.Fatalf("no crossings at iso=%v (min=%v max=%v)", iso, min, max)
	}
}

func TestSkewedFieldShiftsMass(t *testing.T) {
	inner := NewPlumeField(5, 4)
	skew := &SkewedField{Inner: inner}
	// The skewed field at (x,...) equals inner at (x²,...): low-coordinate
	// corner oversampled.
	if skew.Sample(0.5, 0.5, 0.3, 0) != inner.Sample(0.25, 0.25, 0.3, 0) {
		t.Fatal("skew mapping wrong")
	}
}

func TestPosOfFullVolume(t *testing.T) {
	v := New(5, 5, 5)
	x, y, z := v.PosOf(4, 0, 2)
	if x != 1 || y != 0 || z != 0.5 {
		t.Fatalf("PosOf = %v %v %v", x, y, z)
	}
}

func TestPosOfBlockVolumeIsGlobal(t *testing.T) {
	blocks := Partition(9, 9, 9, 2, 1, 1)
	b := blocks[1] // second half in x
	v := NewBlockVolume(b)
	x, _, _ := v.PosOf(0, 0, 0)
	if x != float32(b.X0)/8 {
		t.Fatalf("block PosOf x = %v, want %v", x, float32(b.X0)/8)
	}
}
