// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Simulated processes are ordinary goroutines, but the kernel enforces
// strictly cooperative execution: exactly one process runs at a time, and
// control returns to the scheduler whenever a process blocks on a simulated
// primitive (Sleep, channel operations, CPU compute, server queues). Virtual
// time advances only between process steps, through a central event heap, so
// runs are fully deterministic for a given program.
//
// The kernel is the substrate for the simulated DataCutter engine
// (internal/simrt) and the cluster resource models (internal/cluster).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Infinity is a virtual-time duration longer than any run.
const Infinity = math.MaxFloat64 / 4

type event struct {
	t   Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Kernel is a discrete-event scheduler. Create one with NewKernel, spawn
// processes, then call Run (or RunUntil). A Kernel is not safe for use from
// multiple goroutines other than through the cooperative process mechanism.
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	yield   chan struct{} // processes signal the scheduler here when parking
	live    int           // spawned but unfinished processes
	parked  map[*Proc]struct{}
	current *Proc
	nevents uint64
	failure error // first process panic, if any
}

// NewKernel returns an empty simulation at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events dispatched so far.
func (k *Kernel) Events() uint64 { return k.nevents }

// After schedules fn to run as a kernel callback d seconds from now.
// Callbacks run in the scheduler context and must not block on simulated
// primitives; they may Unpark processes or schedule further events.
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+Time(d), fn)
}

func (k *Kernel) schedule(t Time, fn func()) {
	k.seq++
	heap.Push(&k.events, &event{t: t, seq: k.seq, fn: fn})
}

// Proc is a simulated process. All blocking methods must be called from the
// process's own goroutine while it is the running process.
type Proc struct {
	k        *Kernel
	name     string
	resume   chan struct{}
	finished bool
	// blockedOn describes what the process is waiting for, for deadlock
	// reports.
	blockedOn string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process that starts running fn at the current virtual
// time (after already-scheduled events at this time).
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process that starts running fn at virtual time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(*Proc)) *Proc {
	if t < k.now {
		t = k.now
	}
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.finished = true
			k.live--
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.schedule(t, func() { k.resumeProc(p) })
	return p
}

// resumeProc transfers control to p and blocks the scheduler until p parks
// or finishes.
func (k *Kernel) resumeProc(p *Proc) {
	if p.finished {
		return
	}
	delete(k.parked, p)
	prev := k.current
	k.current = p
	p.resume <- struct{}{}
	<-k.yield
	k.current = prev
}

// Park suspends the calling process until another process or a kernel
// callback calls Unpark on it. reason is used in deadlock reports.
// Park is a low-level primitive; prefer Sleep, Chan, CPU and Server.
func (p *Proc) Park(reason string) {
	p.blockedOn = reason
	p.k.parked[p] = struct{}{}
	p.k.yield <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// Unpark schedules p to resume at the current virtual time. It is a no-op
// if p already finished. Unpark must only be called for a process that is
// parked or about to park (the resume event fires after the caller yields,
// so a process may Unpark another and then Park itself).
func (k *Kernel) Unpark(p *Proc) {
	k.schedule(k.now, func() { k.resumeProc(p) })
}

// UnparkAfter schedules p to resume d seconds from now.
func (k *Kernel) UnparkAfter(p *Proc, d float64) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+Time(d), func() { k.resumeProc(p) })
}

// Sleep suspends the calling process for d seconds of virtual time.
func (p *Proc) Sleep(d float64) {
	if d <= 0 {
		// Still yield, preserving FIFO fairness among same-time events.
		d = 0
	}
	p.k.UnparkAfter(p, d)
	p.blockedOn = "sleep"
	p.k.parked[p] = struct{}{}
	p.k.yield <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// DeadlockError reports that live processes remain but no events are
// scheduled to wake any of them.
type DeadlockError struct {
	At     Time
	Parked []string // names and wait reasons of the stuck processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.6f: %d process(es) parked: %v", float64(e.At), len(e.Parked), e.Parked)
}

// Run dispatches events until none remain. It returns an error if a process
// panicked or if live processes remain parked with no pending events
// (deadlock).
func (k *Kernel) Run() error { return k.RunUntil(Time(Infinity)) }

// RunUntil dispatches events with time <= t, then sets the clock to t if
// the run drained early. Processes still parked at a later wake time simply
// remain suspended; a subsequent RunUntil continues them.
func (k *Kernel) RunUntil(t Time) error {
	for len(k.events) > 0 && k.failure == nil {
		if k.events.peek().t > t {
			k.now = t
			return nil
		}
		ev := heap.Pop(&k.events).(*event)
		if ev.t > k.now {
			k.now = ev.t
		}
		k.nevents++
		ev.fn()
	}
	if k.failure != nil {
		return k.failure
	}
	if k.live > 0 {
		names := make([]string, 0, len(k.parked))
		for p := range k.parked {
			names = append(names, p.name+" ("+p.blockedOn+")")
		}
		sort.Strings(names)
		return &DeadlockError{At: k.now, Parked: names}
	}
	if t < Time(Infinity) {
		k.now = t
	}
	return nil
}
