package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var seen []float64
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1.5)
		seen = append(seen, float64(p.Now()))
		p.Sleep(2.5)
		seen = append(seen, float64(p.Now()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || !almostEq(seen[0], 1.5, 1e-12) || !almostEq(seen[1], 4.0, 1e-12) {
		t.Fatalf("clock progression wrong: %v", seen)
	}
	if float64(k.Now()) != 4.0 {
		t.Fatalf("final time = %v, want 4", k.Now())
	}
}

func TestEventOrderingIsFIFOAtSameTime(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(1.0, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events reordered: %v", order)
		}
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		for _, name := range []string{"x", "y", "z"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(0.5)
					trace = append(trace, name)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != 9 {
		t.Fatalf("trace length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic traces:\n%v\n%v", a, b)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel()
	var at float64
	k.SpawnAt(7, "late", func(p *Proc) { at = float64(p.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7 {
		t.Fatalf("spawned at %v, want 7", at)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) { p.Park("never") })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck (never)" {
		t.Fatalf("bad deadlock report: %+v", de)
	}
}

func TestRunUntilStopsAndResumes(t *testing.T) {
	k := NewKernel()
	var hits []float64
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			hits = append(hits, float64(p.Now()))
		}
	})
	if err := k.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || float64(k.Now()) != 2.5 {
		t.Fatalf("after RunUntil(2.5): hits=%v now=%v", hits, k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 || hits[4] != 5 {
		t.Fatalf("after Run: hits=%v", hits)
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) { p.Sleep(1); panic("kapow") })
	err := k.Run()
	if err == nil || err.Error() != `sim: process "boom" panicked: kapow` {
		t.Fatalf("got %v", err)
	}
}

func TestUnparkFromCallback(t *testing.T) {
	k := NewKernel()
	done := false
	var p1 *Proc
	p1 = k.Spawn("waiter", func(p *Proc) {
		p.Park("signal")
		done = true
	})
	k.After(3, func() { k.Unpark(p1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done || float64(k.Now()) != 3 {
		t.Fatalf("done=%v now=%v", done, k.Now())
	}
}

func TestChanBuffered(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c", 2)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			c.Send(p, i)
		}
		c.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			p.Sleep(1) // slower than producer: forces sender blocking
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	k := NewKernel()
	c := NewChan[string](k, "r", 0)
	var recvAt, sendDone float64
	k.Spawn("sender", func(p *Proc) {
		c.Send(p, "hello")
		sendDone = float64(p.Now())
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(10)
		v, ok := c.Recv(p)
		if !ok || v != "hello" {
			t.Errorf("recv got %q %v", v, ok)
		}
		recvAt = float64(p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 10 || sendDone != 10 {
		t.Fatalf("rendezvous times recv=%v send=%v", recvAt, sendDone)
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c", 0)
	okAfterClose := true
	k.Spawn("rx", func(p *Proc) {
		_, okAfterClose = c.Recv(p)
	})
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(1)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if okAfterClose {
		t.Fatal("Recv on closed chan returned ok=true")
	}
}

func TestChanTryRecv(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c", 4)
	k.Spawn("p", func(p *Proc) {
		if _, ok := c.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		c.Send(p, 42)
		v, ok := c.TryRecv()
		if !ok || v != 42 {
			t.Errorf("TryRecv = %v %v", v, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUSingleJobRunsAtSpeed(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, "c", 2, 2.0) // 2 cores, 2x speed
	var done float64
	k.Spawn("j", func(p *Proc) {
		cpu.Compute(p, 10) // 10 reference seconds at 2x => 5s
		done = float64(p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 5, 1e-9) {
		t.Fatalf("done at %v, want 5", done)
	}
}

func TestCPUProcessorSharingTwoJobsOneCore(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, "c", 1, 1.0)
	var d1, d2 float64
	k.Spawn("a", func(p *Proc) { cpu.Compute(p, 1); d1 = float64(p.Now()) })
	k.Spawn("b", func(p *Proc) { cpu.Compute(p, 1); d2 = float64(p.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Equal shares: both finish at t=2.
	if !almostEq(d1, 2, 1e-9) || !almostEq(d2, 2, 1e-9) {
		t.Fatalf("completions %v %v, want 2 2", d1, d2)
	}
}

func TestCPUMoreCoresThanJobs(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, "c", 8, 1.0)
	var d1, d2 float64
	k.Spawn("a", func(p *Proc) { cpu.Compute(p, 3); d1 = float64(p.Now()) })
	k.Spawn("b", func(p *Proc) { cpu.Compute(p, 5); d2 = float64(p.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Each job gets a full core: no slowdown.
	if !almostEq(d1, 3, 1e-9) || !almostEq(d2, 5, 1e-9) {
		t.Fatalf("completions %v %v, want 3 5", d1, d2)
	}
}

func TestCPUHogsSlowJobsDown(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, "c", 1, 1.0)
	cpu.SetHogs(1)
	var done float64
	k.Spawn("j", func(p *Proc) { cpu.Compute(p, 2); done = float64(p.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Job shares the core with one hog: half speed => 4s.
	if !almostEq(done, 4, 1e-9) {
		t.Fatalf("done at %v, want 4", done)
	}
}

func TestCPUStaggeredArrivals(t *testing.T) {
	// Job A (work 2) starts at t=0 on a 1-core CPU. Job B (work 2) arrives
	// at t=1. A runs alone [0,1) completing 1 unit; then both share, each
	// at 0.5/s. A finishes its remaining 1 unit at t=3. B then runs alone
	// with 1 unit left at full speed, finishing at t=4.
	k := NewKernel()
	cpu := NewCPU(k, "c", 1, 1.0)
	var da, db float64
	k.Spawn("a", func(p *Proc) { cpu.Compute(p, 2); da = float64(p.Now()) })
	k.SpawnAt(1, "b", func(p *Proc) { cpu.Compute(p, 2); db = float64(p.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(da, 3, 1e-9) || !almostEq(db, 4, 1e-9) {
		t.Fatalf("completions a=%v b=%v, want 3 4", da, db)
	}
}

// Property: processor sharing is work-conserving — with a single core and
// jobs all present from t=0, the last completion equals total work / speed.
func TestCPUWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		speed := 0.5 + rng.Float64()*3
		k := NewKernel()
		cpu := NewCPU(k, "c", 1, speed)
		total := 0.0
		var last float64
		for i := 0; i < n; i++ {
			w := 0.1 + rng.Float64()*5
			total += w
			k.Spawn("j", func(p *Proc) {
				cpu.Compute(p, w)
				if f := float64(p.Now()); f > last {
					last = f
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return almostEq(last, total/speed, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: shorter jobs never finish after longer jobs when all arrive
// together (processor sharing preserves SJF completion order).
func TestCPUCompletionOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		k := NewKernel()
		cpu := NewCPU(k, "c", 2, 1.0)
		type res struct{ work, done float64 }
		results := make([]res, n)
		for i := 0; i < n; i++ {
			i := i
			w := 0.1 + rng.Float64()*10
			results[i].work = w
			k.Spawn("j", func(p *Proc) {
				cpu.Compute(p, w)
				results[i].done = float64(p.Now())
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if results[i].work < results[j].work && results[i].done > results[j].done+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestServerFIFOAndStats(t *testing.T) {
	k := NewKernel()
	s := NewServer(k, "disk", 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("req", func(p *Proc) {
			s.Serve(p, 2)
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if s.Served != 4 || !almostEq(s.BusySeconds, 8, 1e-9) {
		t.Fatalf("stats served=%d busy=%v", s.Served, s.BusySeconds)
	}
	// Waits: 0 + 2 + 4 + 6 = 12.
	if !almostEq(s.WaitSeconds, 12, 1e-9) {
		t.Fatalf("wait seconds %v, want 12", s.WaitSeconds)
	}
	if float64(k.Now()) != 8 {
		t.Fatalf("end time %v, want 8", k.Now())
	}
}

func TestServerParallelSlots(t *testing.T) {
	k := NewKernel()
	s := NewServer(k, "nic", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		k.Spawn("req", func(p *Proc) {
			s.Serve(p, 3)
			finish = append(finish, float64(p.Now()))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: finishes at 3,3,6,6.
	want := []float64{3, 3, 6, 6}
	for i := range want {
		if !almostEq(finish[i], want[i], 1e-9) {
			t.Fatalf("finish times %v", finish)
		}
	}
}

func TestChanSendOnClosedPanics(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c", 1)
	k.Spawn("p", func(p *Proc) {
		c.Close()
		c.Send(p, 1)
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected panic error from send on closed chan")
	}
}

func TestKernelEventCount(t *testing.T) {
	k := NewKernel()
	k.After(1, func() {})
	k.After(2, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Events() != 2 {
		t.Fatalf("events = %d, want 2", k.Events())
	}
}

func TestCPUHogsChangeMidRun(t *testing.T) {
	// A job of 2 reference-seconds starts alone; at t=1 two hogs arrive.
	// [0,1): full speed, 1 unit done. After: 1/3 speed, 3 more seconds.
	k := NewKernel()
	cpu := NewCPU(k, "c", 1, 1.0)
	var done float64
	k.Spawn("j", func(p *Proc) { cpu.Compute(p, 2); done = float64(p.Now()) })
	k.After(1, func() { cpu.SetHogs(2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 4, 1e-9) {
		t.Fatalf("done at %v, want 4", done)
	}
}

func TestCPUHogsRemovedMidRun(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, "c", 1, 1.0)
	cpu.SetHogs(1)
	var done float64
	k.Spawn("j", func(p *Proc) { cpu.Compute(p, 2); done = float64(p.Now()) })
	// At t=2 (1 unit done at half speed) the hog leaves: 1 unit at full
	// speed remains, finishing at t=3.
	k.After(2, func() { cpu.SetHogs(0) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 3, 1e-9) {
		t.Fatalf("done at %v, want 3", done)
	}
}

func TestServerMaxQueueHighWater(t *testing.T) {
	k := NewKernel()
	s := NewServer(k, "d", 1)
	for i := 0; i < 5; i++ {
		k.Spawn("r", func(p *Proc) { s.Serve(p, 1) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.MaxQueue != 4 {
		t.Fatalf("MaxQueue = %d, want 4", s.MaxQueue)
	}
}
