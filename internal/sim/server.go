package sim

// Server is a FIFO queueing station with a fixed number of service slots,
// used to model disks and network interfaces: a process acquires a slot
// (queueing in arrival order if all are busy), holds it for the service
// time, and releases it.
type Server struct {
	k     *Kernel
	name  string
	slots int
	busy  int
	q     []*Proc

	// Stats
	Served      uint64  // completed Serve calls
	BusySeconds float64 // total slot-seconds of service delivered
	WaitSeconds float64 // total queueing delay experienced
	MaxQueue    int     // high-water mark of the wait queue
}

// NewServer creates a FIFO server with the given number of parallel slots.
func NewServer(k *Kernel, name string, slots int) *Server {
	if slots < 1 {
		panic("sim: Server needs at least one slot")
	}
	return &Server{k: k, name: name, slots: slots}
}

// QueueLen returns the number of processes waiting for a slot.
func (s *Server) QueueLen() int { return len(s.q) }

// Busy returns the number of occupied slots.
func (s *Server) Busy() int { return s.busy }

// Acquire obtains a service slot, blocking FIFO while all are busy.
func (s *Server) Acquire(p *Proc) {
	if s.busy < s.slots {
		s.busy++
		return
	}
	s.q = append(s.q, p)
	if len(s.q) > s.MaxQueue {
		s.MaxQueue = len(s.q)
	}
	p.Park("queue " + s.name)
}

// Release frees a slot, handing it to the oldest waiter if any.
func (s *Server) Release() {
	if len(s.q) > 0 {
		next := s.q[0]
		s.q = s.q[1:]
		s.k.Unpark(next)
		return
	}
	s.busy--
	if s.busy < 0 {
		panic("sim: Server.Release without Acquire on " + s.name)
	}
}

// Serve occupies a slot for d seconds of virtual time (queueing first if
// necessary) and records statistics.
func (s *Server) Serve(p *Proc, d float64) {
	t0 := p.Now()
	s.Acquire(p)
	s.WaitSeconds += float64(p.Now() - t0)
	if d < 0 {
		d = 0
	}
	p.Sleep(d)
	s.BusySeconds += d
	s.Served++
	s.Release()
}
