package sim

import "fmt"

// CPU models a multi-core processor with egalitarian processor sharing, the
// classic model for equal-priority timeshared jobs. A job never runs faster
// than one core; when more jobs than cores are runnable, every job receives
// an equal share of the machine. Background "hog" jobs (see SetHogs) consume
// shares without ever completing, reproducing the paper's "user level job
// that consumes CPU time, at the same priority" load generator.
//
// Work is expressed in reference seconds: seconds the job would take on one
// core of a machine with Speed == 1.
type CPU struct {
	k     *Kernel
	name  string
	cores int
	speed float64
	hogs  int

	jobs  map[*cpuJob]struct{}
	lastT Time
	gen   uint64 // invalidates stale completion events

	// BusySeconds accumulates core-seconds of real work delivered to
	// completing jobs (excluding hogs), for utilization accounting.
	BusySeconds float64
}

type cpuJob struct {
	remaining float64 // reference seconds
	p         *Proc
}

// NewCPU creates a processor-sharing CPU with the given core count and
// relative speed (1.0 = reference core).
func NewCPU(k *Kernel, name string, cores int, speed float64) *CPU {
	if cores < 1 {
		panic("sim: CPU needs at least one core")
	}
	if speed <= 0 {
		panic("sim: CPU speed must be positive")
	}
	return &CPU{k: k, name: name, cores: cores, speed: speed, jobs: make(map[*cpuJob]struct{})}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// Speed returns the relative per-core speed.
func (c *CPU) Speed() float64 { return c.speed }

// Hogs returns the current number of background hog jobs.
func (c *CPU) Hogs() int { return c.hogs }

// Load returns the number of runnable jobs, including hogs.
func (c *CPU) Load() int { return len(c.jobs) + c.hogs }

// perJobRate is the speed each runnable job currently receives.
func (c *CPU) perJobRate() float64 {
	n := len(c.jobs) + c.hogs
	if n == 0 {
		return 0
	}
	share := float64(c.cores) / float64(n)
	if share > 1 {
		share = 1
	}
	return c.speed * share
}

// advance charges elapsed virtual time against every runnable job.
func (c *CPU) advance() {
	now := c.k.Now()
	dt := float64(now - c.lastT)
	c.lastT = now
	if dt <= 0 || len(c.jobs) == 0 {
		return
	}
	done := float64(len(c.jobs)) * c.perJobRate() * dt
	c.BusySeconds += done
	dec := c.perJobRate() * dt
	for j := range c.jobs {
		j.remaining -= dec
	}
}

// reschedule cancels any pending completion event and schedules the next
// one based on current membership.
func (c *CPU) reschedule() {
	c.gen++
	if len(c.jobs) == 0 {
		return
	}
	rate := c.perJobRate()
	min := Infinity
	for j := range c.jobs {
		if j.remaining < min {
			min = j.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	g := c.gen
	c.k.After(min/rate, func() {
		if g != c.gen {
			return
		}
		c.onTick()
	})
}

func (c *CPU) onTick() {
	c.advance()
	const eps = 1e-9
	for j := range c.jobs {
		if j.remaining <= eps {
			delete(c.jobs, j)
			c.k.Unpark(j.p)
		}
	}
	c.reschedule()
}

// Compute blocks the calling process until `work` reference seconds of CPU
// time have been delivered under processor sharing.
func (c *CPU) Compute(p *Proc, work float64) {
	if work <= 0 {
		return
	}
	c.advance()
	j := &cpuJob{remaining: work, p: p}
	c.jobs[j] = struct{}{}
	c.reschedule()
	p.Park(fmt.Sprintf("cpu %s", c.name))
}

// SetHogs changes the number of permanent background jobs competing for the
// CPU. It may be called from a kernel callback or a running process.
func (c *CPU) SetHogs(n int) {
	if n < 0 {
		n = 0
	}
	c.advance()
	c.hogs = n
	c.reschedule()
}
