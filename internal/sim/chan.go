package sim

// Chan is a bounded FIFO channel in virtual time, with semantics modeled on
// Go channels: Send blocks while the buffer is full, Recv blocks while it is
// empty, a capacity of zero rendezvouses sender and receiver, and Close
// wakes blocked receivers. All operations must be made by the currently
// running process (or, for Close and TryRecv, a kernel callback).
type Chan[T any] struct {
	k      *Kernel
	name   string
	buf    []T
	cap    int
	closed bool
	sendq  []*chanWaiter[T]
	recvq  []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p         *Proc
	val       T
	delivered bool // receiver: a value arrived; sender: the value was taken
	broken    bool // sender woken by Close
}

// NewChan creates a channel with the given buffer capacity (>= 0).
func NewChan[T any](k *Kernel, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{k: k, name: name, cap: capacity}
}

// Len returns the number of buffered values (excluding parked senders).
func (c *Chan[T]) Len() int { return len(c.buf) }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send delivers v, blocking in virtual time while the channel is full.
// Sending on a closed channel panics, as does a send that is woken by Close.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic("sim: send on closed Chan " + c.name)
	}
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val = v
		w.delivered = true
		c.k.Unpark(w.p)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	w := &chanWaiter[T]{p: p, val: v}
	c.sendq = append(c.sendq, w)
	p.Park("send " + c.name)
	if w.broken {
		panic("sim: send on closed Chan " + c.name)
	}
}

// Recv returns the next value. ok is false if and only if the channel is
// closed and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// A parked sender can now move its value into the buffer.
		if len(c.sendq) > 0 {
			w := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, w.val)
			w.delivered = true
			c.k.Unpark(w.p)
		}
		return v, true
	}
	if len(c.sendq) > 0 { // rendezvous (cap == 0)
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		w.delivered = true
		c.k.Unpark(w.p)
		return w.val, true
	}
	if c.closed {
		return v, false
	}
	w := &chanWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	p.Park("recv " + c.name)
	if !w.delivered {
		var zero T
		return zero, false // closed while waiting
	}
	return w.val, true
}

// TryRecv returns a value without blocking; ok is false if none is ready.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendq) > 0 {
			w := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, w.val)
			w.delivered = true
			c.k.Unpark(w.p)
		}
		return v, true
	}
	if len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		w.delivered = true
		c.k.Unpark(w.p)
		return w.val, true
	}
	var zero T
	return zero, false
}

// Close marks the channel closed and wakes all blocked receivers (they
// observe ok == false) and all blocked senders (they panic). Closing twice
// panics.
func (c *Chan[T]) Close() {
	if c.closed {
		panic("sim: close of closed Chan " + c.name)
	}
	c.closed = true
	for _, w := range c.recvq {
		c.k.Unpark(w.p)
	}
	c.recvq = nil
	for _, w := range c.sendq {
		w.broken = true
		c.k.Unpark(w.p)
	}
	c.sendq = nil
}
