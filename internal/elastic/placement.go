// Package elastic makes the paper's transparent-copy sets runtime-mutable:
// it owns the engine-neutral placement-mutation helpers (fault replanning
// and seeded scale schedules share one code path), and the autoscale
// controller that turns live load signals — demand-driven ack-window
// occupancy, copy-set queue depth, p95 filter service time — into bounded
// scale-up/scale-down and WRR reweight decisions.
//
// Transparent copies make all of this legal (paper §2): copies of a filter
// are interchangeable and per-unit-of-work state is rebuilt by Init at each
// work-cycle boundary, so membership can change between cycles without any
// state hand-off, and buffer routing can shift mid-cycle because any copy
// may process any buffer.
package elastic

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one placement assignment: Copies transparent copies of Filter on
// Host. It is the engine-neutral shape of core's PlaceEntry and dist's
// PlacementEntry; engines convert at the boundary.
type Entry struct {
	Filter string
	Host   string
	Copies int
}

// ReplanDead rebuilds a placement after the hosts in dead are declared
// lost. Copies stranded on a dead host are re-created on survivors —
// preferentially on hosts that already run copies of the same filter (warm
// code paths, and WRR weights rescale naturally because the per-host copy
// counts grow), otherwise round-robin across all survivors. Entries for the
// same (filter, host) pair are merged. The input is not mutated; ordering
// is deterministic (first-appearance order), so a retry with the same dead
// set always produces the same plan.
func ReplanDead(placement []Entry, dead map[string]bool) ([]Entry, error) {
	// Survivor hosts in first-appearance order.
	var survivors []string
	seen := map[string]bool{}
	for _, pe := range placement {
		if !dead[pe.Host] && !seen[pe.Host] {
			seen[pe.Host] = true
			survivors = append(survivors, pe.Host)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("elastic: no surviving hosts (lost: %s)", deadList(dead))
	}

	// Filters in first-appearance order, with their surviving and lost
	// entries partitioned.
	type filterPlan struct {
		name     string
		hosts    []string       // surviving hosts already running this filter
		copies   map[string]int // surviving host -> copies
		orphaned int            // copies stranded on dead hosts
	}
	var order []*filterPlan
	byName := map[string]*filterPlan{}
	for _, pe := range placement {
		fp := byName[pe.Filter]
		if fp == nil {
			fp = &filterPlan{name: pe.Filter, copies: map[string]int{}}
			byName[pe.Filter] = fp
			order = append(order, fp)
		}
		if dead[pe.Host] {
			fp.orphaned += pe.Copies
			continue
		}
		if _, ok := fp.copies[pe.Host]; !ok {
			fp.hosts = append(fp.hosts, pe.Host)
		}
		fp.copies[pe.Host] += pe.Copies
	}

	out := make([]Entry, 0, len(placement))
	for _, fp := range order {
		targets := fp.hosts
		if len(targets) == 0 {
			targets = survivors
			for _, h := range targets {
				fp.copies[h] = 0
			}
			fp.hosts = targets
		}
		for i := 0; i < fp.orphaned; i++ {
			fp.copies[targets[i%len(targets)]]++
		}
		for _, h := range fp.hosts {
			if n := fp.copies[h]; n > 0 {
				out = append(out, Entry{Filter: fp.name, Host: h, Copies: n})
			}
		}
	}
	return out, nil
}

func deadList(dead map[string]bool) string {
	names := make([]string, 0, len(dead))
	for h := range dead {
		names = append(names, h)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
