package elastic

import (
	"datacutter/internal/obs"
)

// Metric names published by the elasticity machinery. The copyset-size
// gauge is namespaced per copy set (GaugeCopysetSize + ".<filter>.<host>"),
// matching the per-stream naming the engines already use.
const (
	MetricCopiesAdded   = "elastic.copies_added"
	MetricCopiesRemoved = "elastic.copies_removed"
	MetricRebalances    = "elastic.rebalances"
	GaugeCopysetSize    = "elastic.copyset_size"
)

// RecordScale publishes one applied copy-count change: the copies_added /
// copies_removed counters, the per-set copyset_size gauge, and a scale-up /
// scale-down trace event (Filter and Host name the set, Copy carries the
// new count, Note the controller's reason). Safe on a nil observer.
func RecordScale(o *obs.Observer, filter, host string, oldCopies, newCopies, uow int, reason string) {
	if o == nil || oldCopies == newCopies {
		return
	}
	if reg := o.Registry(); reg != nil {
		if newCopies > oldCopies {
			reg.Counter(MetricCopiesAdded).Add(int64(newCopies - oldCopies))
		} else {
			reg.Counter(MetricCopiesRemoved).Add(int64(oldCopies - newCopies))
		}
		reg.Gauge(GaugeCopysetSize + "." + filter + "." + host).Set(int64(newCopies))
	}
	kind := obs.KindScaleUp
	if newCopies < oldCopies {
		kind = obs.KindScaleDown
	}
	o.Emit(obs.Event{
		Kind: kind, Filter: filter, Host: host, Copy: newCopies, UOW: uow,
		Note: reason,
	})
}

// RecordRebalance publishes one WRR weight rebalance on a stream: the
// rebalances counter and a rebalance trace event (Stream names the stream,
// Host the producer side, Note the new weights). Safe on a nil observer.
func RecordRebalance(o *obs.Observer, stream, host string, uow int, note string) {
	if o == nil {
		return
	}
	if reg := o.Registry(); reg != nil {
		reg.Counter(MetricRebalances).Inc()
	}
	o.Emit(obs.Event{
		Kind: obs.KindRebalance, Stream: stream, Host: host, UOW: uow, Note: note,
	})
}
