package elastic

// ScaleStep is one seeded copy-set membership change, applied at a
// work-cycle boundary: before unit of work BeforeUOW starts, the (Filter,
// Host) placement entry's copy count becomes Copies. Steps are the
// deterministic counterpart of the live autoscale controller — the
// conformance harness seeds them to prove the delivery oracles hold across
// membership changes, and engines accept them through their Options so a
// recorded scaling run can be replayed exactly. The zero UOW boundary is
// the initial plan, so meaningful steps have BeforeUOW >= 1.
//
// A step with Copies <= 0 retires the entry — unless it is the filter's
// last, in which case it is clamped to one copy (a filter must run
// somewhere; mirrors StreamWriter.RemoveTarget refusing to empty a target
// set). A step naming a (Filter, Host) pair absent from the placement
// appends a new entry.
type ScaleStep struct {
	BeforeUOW int
	Filter    string
	Host      string
	Copies    int
}

// Apply returns placement with the steps applied in order. The input is not
// mutated; entry order is preserved, with brand-new entries appended in
// step order, so repeated application is deterministic.
func Apply(placement []Entry, steps []ScaleStep) []Entry {
	out := append([]Entry(nil), placement...)
	for _, s := range steps {
		idx := -1
		for i := range out {
			if out[i].Filter == s.Filter && out[i].Host == s.Host {
				idx = i
				break
			}
		}
		switch {
		case idx < 0:
			if s.Copies >= 1 {
				out = append(out, Entry{Filter: s.Filter, Host: s.Host, Copies: s.Copies})
			}
		case s.Copies >= 1:
			out[idx].Copies = s.Copies
		default:
			// Retire the entry, but never the filter's last one.
			last := true
			for i := range out {
				if i != idx && out[i].Filter == s.Filter {
					last = false
					break
				}
			}
			if last {
				out[idx].Copies = 1
			} else {
				out = append(out[:idx], out[idx+1:]...)
			}
		}
	}
	return out
}

// EffectivePlacement returns the placement in force for unit of work uow:
// base with every step whose boundary has passed (BeforeUOW <= uow)
// applied, in schedule order.
func EffectivePlacement(base []Entry, steps []ScaleStep, uow int) []Entry {
	var due []ScaleStep
	for _, s := range steps {
		if s.BeforeUOW <= uow {
			due = append(due, s)
		}
	}
	if len(due) == 0 {
		return append([]Entry(nil), base...)
	}
	return Apply(base, due)
}

// StepsAt returns the steps firing exactly at the given work-cycle
// boundary, in schedule order — what an engine applies between UOW uow-1
// and uow.
func StepsAt(steps []ScaleStep, uow int) []ScaleStep {
	var out []ScaleStep
	for _, s := range steps {
		if s.BeforeUOW == uow {
			out = append(out, s)
		}
	}
	return out
}
