package elastic

import (
	"reflect"
	"testing"

	"datacutter/internal/obs"
)

// ---- placement: ReplanDead ----

func TestReplanDeadMovesOrphansToWarmHosts(t *testing.T) {
	in := []Entry{
		{Filter: "F", Host: "a", Copies: 2},
		{Filter: "F", Host: "b", Copies: 1},
	}
	out, err := ReplanDead(in, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Filter: "F", Host: "b", Copies: 3}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	// Input untouched.
	if in[0].Copies != 2 || in[1].Copies != 1 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestReplanDeadNoSurvivors(t *testing.T) {
	in := []Entry{{Filter: "F", Host: "a", Copies: 1}}
	if _, err := ReplanDead(in, map[string]bool{"a": true}); err == nil {
		t.Fatal("want error when every host is dead")
	}
}

func TestReplanDeadIdentityWithoutDeaths(t *testing.T) {
	in := []Entry{
		{Filter: "F", Host: "a", Copies: 1},
		{Filter: "G", Host: "b", Copies: 2},
	}
	out, err := ReplanDead(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("identity replan changed plan: %v", out)
	}
}

// ---- schedule: Apply / EffectivePlacement / StepsAt ----

func basePlacement() []Entry {
	return []Entry{
		{Filter: "F", Host: "a", Copies: 1},
		{Filter: "F", Host: "b", Copies: 2},
		{Filter: "G", Host: "a", Copies: 1},
	}
}

func TestApplySetsAppendsAndRetires(t *testing.T) {
	out := Apply(basePlacement(), []ScaleStep{
		{Filter: "F", Host: "a", Copies: 3},  // set existing
		{Filter: "G", Host: "b", Copies: 2},  // append new entry
		{Filter: "F", Host: "b", Copies: 0},  // retire (F still on a)
		{Filter: "G", Host: "a", Copies: -1}, // retire
	})
	want := []Entry{
		{Filter: "F", Host: "a", Copies: 3},
		{Filter: "G", Host: "b", Copies: 2},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}

func TestApplyNeverRetiresLastEntry(t *testing.T) {
	out := Apply([]Entry{{Filter: "F", Host: "a", Copies: 4}},
		[]ScaleStep{{Filter: "F", Host: "a", Copies: 0}})
	want := []Entry{{Filter: "F", Host: "a", Copies: 1}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("last entry retired: %v", out)
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	in := basePlacement()
	Apply(in, []ScaleStep{{Filter: "F", Host: "a", Copies: 9}})
	if in[0].Copies != 1 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestEffectivePlacementByBoundary(t *testing.T) {
	steps := []ScaleStep{
		{BeforeUOW: 1, Filter: "F", Host: "b", Copies: 4},
		{BeforeUOW: 2, Filter: "F", Host: "b", Copies: 1},
	}
	base := basePlacement()
	if got := EffectivePlacement(base, steps, 0); !reflect.DeepEqual(got, base) {
		t.Fatalf("uow 0: %v", got)
	}
	if got := EffectivePlacement(base, steps, 1); got[1].Copies != 4 {
		t.Fatalf("uow 1: %v", got)
	}
	// Both steps in force: the later one wins.
	if got := EffectivePlacement(base, steps, 2); got[1].Copies != 1 {
		t.Fatalf("uow 2: %v", got)
	}
	if got := StepsAt(steps, 2); len(got) != 1 || got[0].Copies != 1 {
		t.Fatalf("StepsAt(2) = %v", got)
	}
	if got := StepsAt(steps, 3); got != nil {
		t.Fatalf("StepsAt(3) = %v", got)
	}
}

// ---- controller: Decide / ReweightByThroughput ----

func TestDecideScalesHotAndIdleSets(t *testing.T) {
	cfg := Config{MaxCopies: 4}
	sets := []Signals{
		{Filter: "F", Host: "a", Copies: 1, QueueLen: 9, QueueCap: 10},               // hot
		{Filter: "F", Host: "b", Copies: 3, QueueLen: 0, QueueCap: 10, LowStreak: 3}, // idle long enough
		{Filter: "G", Host: "a", Copies: 2, QueueLen: 5, QueueCap: 10},               // fine
		{Filter: "G", Host: "b", Copies: 1, QueueLen: 0, QueueCap: 10, LowStreak: 5}, // idle, at floor
		{Filter: "H", Host: "a", Copies: 4, QueueLen: 10, QueueCap: 10},              // hot, at ceiling
	}
	got := Decide(cfg, sets, 11)
	want := []Decision{
		{Filter: "F", Host: "b", Copies: 2},
		{Filter: "F", Host: "a", Copies: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("decisions %v, want %v", got, want)
	}
	for i := range want {
		if got[i].Filter != want[i].Filter || got[i].Host != want[i].Host || got[i].Copies != want[i].Copies {
			t.Fatalf("decision %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Reason == "" {
			t.Fatalf("decision %d missing reason", i)
		}
	}
}

func TestDecideRespectsBudget(t *testing.T) {
	cfg := Config{MaxCopies: 8, Budget: 5}
	sets := []Signals{
		{Filter: "F", Host: "a", Copies: 2, QueueLen: 8, QueueCap: 10, P95Service: 0.1},
		{Filter: "F", Host: "b", Copies: 2, QueueLen: 8, QueueCap: 10, P95Service: 0.9},
	}
	got := Decide(cfg, sets, 4)
	// Budget leaves room for exactly one new copy; the slower set (higher
	// p95) wins the tie on equal occupancy.
	if len(got) != 1 || got[0].Host != "b" || got[0].Copies != 3 {
		t.Fatalf("decisions %v, want one scale-up on b", got)
	}
	if got := Decide(cfg, sets, 5); len(got) != 0 {
		t.Fatalf("at budget, got %v", got)
	}
}

// A transiently idle set — low occupancy but a streak shorter than the
// hysteresis — must not shed a copy, and the budget its down would free
// must not be spent on an up in the same round.
func TestDecideScaleDownHysteresis(t *testing.T) {
	cfg := Config{MaxCopies: 4, Budget: 4}
	sets := []Signals{
		{Filter: "F", Host: "a", Copies: 3, QueueLen: 0, QueueCap: 10, LowStreak: 1}, // draining, not idle yet
		{Filter: "G", Host: "a", Copies: 1, QueueLen: 10, QueueCap: 10},              // hot
	}
	if got := Decide(cfg, sets, 4); len(got) != 0 {
		t.Fatalf("short low streak produced decisions %v, want none (budget full, down debounced)", got)
	}
	sets[0].LowStreak = 3
	got := Decide(cfg, sets, 4)
	if len(got) != 2 || got[0].Copies != 2 || got[1].Filter != "G" || got[1].Copies != 2 {
		t.Fatalf("sustained low streak: decisions %v, want F.a down to 2 then G.a up to 2", got)
	}
}

func TestDecideWindowFracTriggersScaleUp(t *testing.T) {
	sets := []Signals{
		{Filter: "F", Host: "a", Copies: 1, QueueLen: 0, QueueCap: 10, WindowFrac: 0.9},
	}
	got := Decide(Config{}, sets, 1)
	if len(got) != 1 || got[0].Copies != 2 {
		t.Fatalf("DD window occupancy ignored: %v", got)
	}
}

func TestReweightByThroughput(t *testing.T) {
	got := ReweightByThroughput(map[string]float64{"a": 100, "b": 50, "c": 1}, 4)
	want := map[string]int{"a": 4, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("weights %v, want %v", got, want)
	}
	// No signal, no skew.
	got = ReweightByThroughput(map[string]float64{"a": 0, "b": 0}, 4)
	if got["a"] != 1 || got["b"] != 1 {
		t.Fatalf("zero-throughput weights %v, want all 1", got)
	}
}

// ---- metrics / trace events ----

func TestRecordScaleMetricsAndEvents(t *testing.T) {
	ring := obs.NewRingSink(16)
	o := obs.New(ring, nil)
	RecordScale(o, "F", "a", 1, 3, 2, "hot")
	RecordScale(o, "F", "a", 3, 2, 4, "cool")
	RecordScale(o, "F", "a", 2, 2, 5, "noop") // no-op: no counter, no event
	reg := o.Registry()
	if got := reg.Counter(MetricCopiesAdded).Value(); got != 2 {
		t.Fatalf("copies_added = %d, want 2", got)
	}
	if got := reg.Counter(MetricCopiesRemoved).Value(); got != 1 {
		t.Fatalf("copies_removed = %d, want 1", got)
	}
	if got := reg.Gauge(GaugeCopysetSize + ".F.a").Value(); got != 2 {
		t.Fatalf("copyset_size gauge = %d, want 2", got)
	}
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("events %d, want 2: %v", len(evs), evs)
	}
	if evs[0].Kind != obs.KindScaleUp || evs[0].Copy != 3 || evs[0].UOW != 2 || evs[0].Note != "hot" {
		t.Fatalf("scale-up event: %+v", evs[0])
	}
	if evs[1].Kind != obs.KindScaleDown || evs[1].Copy != 2 {
		t.Fatalf("scale-down event: %+v", evs[1])
	}
	if evs[0].Kind.String() != "scale-up" || evs[1].Kind.String() != "scale-down" {
		t.Fatalf("kind names: %v %v", evs[0].Kind, evs[1].Kind)
	}
	// Nil observer: all no-ops.
	RecordScale(nil, "F", "a", 1, 2, 0, "")
	RecordRebalance(nil, "s", "a", 0, "")
}

func TestRecordRebalance(t *testing.T) {
	ring := obs.NewRingSink(4)
	o := obs.New(ring, nil)
	RecordRebalance(o, "tri", "node0", 3, "a=4 b=1")
	if got := o.Registry().Counter(MetricRebalances).Value(); got != 1 {
		t.Fatalf("rebalances = %d", got)
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != obs.KindRebalance || evs[0].Stream != "tri" {
		t.Fatalf("rebalance event: %+v", evs)
	}
	if evs[0].Kind.String() != "rebalance" {
		t.Fatalf("kind name: %v", evs[0].Kind)
	}
}
