package elastic

import (
	"fmt"
	"sort"
	"time"
)

// Config bounds the autoscale controller. The paper's cost model (§3) says
// the right copy count depends on per-datum filter cost and host speed —
// runtime quantities — so the controller reads live signals instead of the
// static plan, but every decision stays inside these bounds so elasticity
// composes with jobd's per-tenant quotas: a job can never grow past Budget
// total copies no matter how hot it runs.
type Config struct {
	// MinCopies / MaxCopies bound each (filter, host) copy set. Defaults 1
	// and 4.
	MinCopies int
	MaxCopies int
	// Budget caps the job's total copy count across all filters and hosts;
	// 0 means bounded only by MaxCopies per set. Scale-ups stop at the
	// budget; scale-downs always proceed.
	Budget int
	// Interval is the sampling period between controller decisions. The
	// engines interpret it on their own clock. Default 50ms.
	Interval time.Duration
	// HighWater / LowWater are occupancy fractions (of queue capacity or of
	// the DD ack window) above which a set scales up and below which it
	// scales down. Defaults 0.75 and 0.10.
	HighWater float64
	LowWater  float64
	// DownAfter is the scale-down hysteresis: a set must report at least
	// this many consecutive low-occupancy samples (Signals.LowStreak)
	// before it sheds a copy. Queues drain naturally around work-cycle
	// boundaries, and a single idle sample there must not retire a copy the
	// next cycle needs. Scale-ups have no debounce — a full queue is
	// already evidence of sustained pressure. Default 3.
	DownAfter int
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.MinCopies < 1 {
		c.MinCopies = 1
	}
	if c.MaxCopies < c.MinCopies {
		if c.MaxCopies == 0 {
			c.MaxCopies = 4
		}
		if c.MaxCopies < c.MinCopies {
			c.MaxCopies = c.MinCopies
		}
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.75
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.10
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	return c
}

// Signals is one sampling snapshot of one copy set (all copies of Filter on
// Host), assembled by the engine from the signals internal/obs already
// collects.
type Signals struct {
	Filter string
	Host   string
	Copies int // current copy count

	// QueueLen/QueueCap is the copy-set queue depth: buffers enqueued and
	// waiting against capacity.
	QueueLen int
	QueueCap int
	// WindowFrac is the demand-driven ack-window occupancy toward this set
	// (unacked buffers over the producer's effective window), 0 when the
	// feeding policy wants no acks.
	WindowFrac float64
	// P95Service is the set's p95 per-buffer filter service time in the
	// engine's seconds; 0 when unknown. Used to order scale-up candidates
	// under a tight budget: the slowest sets grow first.
	P95Service float64
	// Throughput is buffers/sec since the last sample, for WRR reweighting.
	Throughput float64
	// LowStreak counts consecutive samples (including this one) at or below
	// the controller's low-water occupancy, maintained by the engine across
	// its sampling ticks. Decide scales a set down only once the streak
	// reaches Config.DownAfter, so transient drains — a work-cycle boundary,
	// a momentarily starved producer — never retire copies.
	LowStreak int
}

// Occupancy is the scalar load signal: the worse of queue fill and DD
// window fill.
func (s Signals) Occupancy() float64 {
	occ := 0.0
	if s.QueueCap > 0 {
		occ = float64(s.QueueLen) / float64(s.QueueCap)
	}
	if s.WindowFrac > occ {
		occ = s.WindowFrac
	}
	return occ
}

// Decision is one copy-count change for a (filter, host) copy set.
type Decision struct {
	Filter string
	Host   string
	Copies int // new copy count
	Reason string
}

// Decide is the controller policy: a pure function from one sampling round
// to copy-count changes, deterministic in its inputs so seeded tests can
// replay it. total is the job's current total copy count (for the budget).
// Hot sets (occupancy >= HighWater) scale up one copy, slowest-p95 first
// when the budget cannot cover them all; idle sets (occupancy <= LowWater
// for at least DownAfter consecutive samples) scale down one copy toward
// MinCopies. A set is never both.
func Decide(cfg Config, sets []Signals, total int) []Decision {
	cfg = cfg.WithDefaults()
	var ups []int // indices of scale-up candidates
	var out []Decision
	for i, s := range sets {
		occ := s.Occupancy()
		switch {
		case occ >= cfg.HighWater && s.Copies < cfg.MaxCopies:
			ups = append(ups, i)
		case occ <= cfg.LowWater && s.Copies > cfg.MinCopies && s.LowStreak >= cfg.DownAfter:
			out = append(out, Decision{
				Filter: s.Filter, Host: s.Host, Copies: s.Copies - 1,
				Reason: fmt.Sprintf("occupancy %.2f <= low water %.2f", occ, cfg.LowWater),
			})
			total--
		}
	}
	// Hottest first: by occupancy, then p95 service time; stable so equal
	// sets keep input order and the decision stays deterministic.
	sort.SliceStable(ups, func(a, b int) bool {
		sa, sb := sets[ups[a]], sets[ups[b]]
		if oa, ob := sa.Occupancy(), sb.Occupancy(); oa != ob {
			return oa > ob
		}
		return sa.P95Service > sb.P95Service
	})
	for _, i := range ups {
		if cfg.Budget > 0 && total >= cfg.Budget {
			break
		}
		s := sets[i]
		out = append(out, Decision{
			Filter: s.Filter, Host: s.Host, Copies: s.Copies + 1,
			Reason: fmt.Sprintf("occupancy %.2f >= high water %.2f", s.Occupancy(), cfg.HighWater),
		})
		total++
	}
	return out
}

// ReweightByThroughput maps observed per-host throughput onto small integer
// WRR weights in 1..maxWeight, proportional to the fastest host — the
// runtime replacement for weighting by static copy counts. All-zero (or
// empty) throughput yields weight 1 everywhere: no observed signal, no
// skew. Deterministic: hosts are processed in sorted order.
func ReweightByThroughput(tp map[string]float64, maxWeight int) map[string]int {
	if maxWeight < 1 {
		maxWeight = 4
	}
	out := make(map[string]int, len(tp))
	hosts := make([]string, 0, len(tp))
	best := 0.0
	for h, v := range tp {
		hosts = append(hosts, h)
		if v > best {
			best = v
		}
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		w := 1
		if best > 0 {
			w = int(float64(maxWeight)*tp[h]/best + 0.5)
			if w < 1 {
				w = 1
			}
			if w > maxWeight {
				w = maxWeight
			}
		}
		out[h] = w
	}
	return out
}
