package cluster

import "fmt"

// Relative CPU speeds, normalized to the Pentium III 550 MHz (Blue,
// Deathstar) reference core. The Pentium II 450 is both slower-clocked and
// an older core; the Pentium III 650 is a clock-scaled reference core.
const (
	speedPII450  = 0.75
	speedPIII550 = 1.00
	speedPIII650 = 650.0 / 550.0
)

// Effective network bandwidths (bytes/second) and per-message overheads.
// Fast Ethernet delivers ~11 MB/s of payload; Gigabit on 2002-era Linux
// hosts ~65 MB/s. Per-message costs are higher on Fast Ethernet, which is
// what makes DD acknowledgment traffic expensive there (paper §4.4).
const (
	bwFastEther  = 11e6
	bwGigE       = 65e6
	ovhFastEther = 60e-6
	ovhGigE      = 20e-6
	// Per-chunk positioning cost. Chunks within a file are laid out in
	// Hilbert order and read mostly sequentially, so the effective
	// per-request overhead is below a full random seek.
	seekSCSI     = 4e-3
	seekIDE      = 5e-3
	bwSCSI       = 30e6
	bwIDE        = 24e6
	memPerRed    = 256
	memPerBlue   = 1024
	memPerRogue  = 128
	memDeathstar = 4096
)

// RedSpec returns node i of the Red cluster: 8 nodes, 2-processor Pentium
// II 450 MHz, 256 MB, one 18 GB SCSI disk, Gigabit Ethernet.
func RedSpec(i int) HostSpec {
	return HostSpec{
		Name:         fmt.Sprintf("red%d", i),
		Cores:        2,
		Speed:        speedPII450,
		MemMB:        memPerRed,
		Disks:        []DiskSpec{{SeekSeconds: seekSCSI, Bandwidth: bwSCSI}},
		NICBandwidth: bwGigE,
		NICOverhead:  ovhGigE,
	}
}

// BlueSpec returns node i of the Blue cluster: 8 nodes, 2-processor Pentium
// III 550 MHz, 1 GB, two 18 GB SCSI disks, Gigabit Ethernet.
func BlueSpec(i int) HostSpec {
	return HostSpec{
		Name:         fmt.Sprintf("blue%d", i),
		Cores:        2,
		Speed:        speedPIII550,
		MemMB:        memPerBlue,
		Disks:        []DiskSpec{{SeekSeconds: seekSCSI, Bandwidth: bwSCSI}, {SeekSeconds: seekSCSI, Bandwidth: bwSCSI}},
		NICBandwidth: bwGigE,
		NICOverhead:  ovhGigE,
	}
}

// RogueSpec returns node i of the Rogue cluster: 8 nodes, 1-processor
// Pentium III 650 MHz, 128 MB, two 75 GB IDE disks, switched Fast Ethernet.
func RogueSpec(i int) HostSpec {
	return HostSpec{
		Name:         fmt.Sprintf("rogue%d", i),
		Cores:        1,
		Speed:        speedPIII650,
		MemMB:        memPerRogue,
		Disks:        []DiskSpec{{SeekSeconds: seekIDE, Bandwidth: bwIDE}, {SeekSeconds: seekIDE, Bandwidth: bwIDE}},
		NICBandwidth: bwFastEther,
		NICOverhead:  ovhFastEther,
	}
}

// DeathstarSpec returns the Deathstar node: one 8-processor Pentium III
// 550 MHz SMP with 4 GB, connected to the other clusters via Fast Ethernet.
func DeathstarSpec() HostSpec {
	return HostSpec{
		Name:         "deathstar",
		Cores:        8,
		Speed:        speedPIII550,
		MemMB:        memDeathstar,
		Disks:        []DiskSpec{{SeekSeconds: seekSCSI, Bandwidth: bwSCSI}},
		NICBandwidth: bwFastEther,
		NICOverhead:  ovhFastEther,
	}
}

// AddRogue adds n Rogue nodes to the cluster and returns their names.
func AddRogue(c *Cluster, n int) []string {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		h := c.AddHost(RogueSpec(i))
		names[i] = h.Spec.Name
	}
	return names
}

// AddBlue adds n Blue nodes to the cluster and returns their names.
func AddBlue(c *Cluster, n int) []string {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		h := c.AddHost(BlueSpec(i))
		names[i] = h.Spec.Name
	}
	return names
}

// AddRed adds n Red nodes to the cluster and returns their names.
func AddRed(c *Cluster, n int) []string {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		h := c.AddHost(RedSpec(i))
		names[i] = h.Spec.Name
	}
	return names
}

// AddDeathstar adds the 8-way SMP node and returns its name.
func AddDeathstar(c *Cluster) string {
	return c.AddHost(DeathstarSpec()).Spec.Name
}
