// Package cluster models heterogeneous collections of hosts — CPUs with
// processor sharing, disks, and network interfaces — on top of the
// discrete-event kernel in internal/sim. It provides constructors for the
// four University of Maryland clusters used in the paper's evaluation
// (Red, Blue, Rogue, Deathstar) and the paper's load generator: background
// jobs competing for CPU at equal priority.
package cluster

import (
	"fmt"
	"sort"

	"datacutter/internal/sim"
)

// DiskSpec describes one disk: a fixed per-request positioning time plus a
// sequential transfer rate.
type DiskSpec struct {
	SeekSeconds float64 // per-request positioning overhead
	Bandwidth   float64 // bytes/second sequential
}

// HostSpec describes one machine.
type HostSpec struct {
	Name  string
	Cores int
	// Speed is the relative per-core CPU speed; 1.0 is the reference core
	// (a Pentium III 550 in the paper's calibration).
	Speed float64
	MemMB int
	Disks []DiskSpec
	// NICBandwidth is the effective network bandwidth in bytes/second.
	NICBandwidth float64
	// NICOverhead is the fixed per-message NIC occupancy (protocol and
	// interrupt cost), charged in addition to size/bandwidth. This is what
	// makes small messages (DD acknowledgments) expensive on slow NICs.
	NICOverhead float64
}

// Host is a simulated machine.
type Host struct {
	Spec    HostSpec
	CPU     *sim.CPU
	Egress  *sim.Server // outbound NIC queue
	Ingress *sim.Server // inbound NIC queue
	Disks   []*sim.Server
	cl      *Cluster
}

// SetBackgroundJobs sets the number of equal-priority CPU hog processes on
// this host (the paper's synthetic load).
func (h *Host) SetBackgroundJobs(n int) { h.CPU.SetHogs(n) }

// ReadDisk charges a read of `bytes` from disk `disk` (modulo the disk
// count), blocking the caller for queueing, seek, and transfer time.
func (h *Host) ReadDisk(p *sim.Proc, disk int, bytes int) {
	if len(h.Disks) == 0 {
		return
	}
	d := h.Disks[disk%len(h.Disks)]
	spec := h.Spec.Disks[disk%len(h.Spec.Disks)]
	d.Serve(p, spec.SeekSeconds+float64(bytes)/spec.Bandwidth)
}

// Cluster is a set of hosts plus the network connecting them.
type Cluster struct {
	k     *sim.Kernel
	hosts map[string]*Host
	order []string

	// Latency is the one-way message latency between distinct hosts.
	Latency float64
	// LocalBandwidth is the effective bandwidth for same-host transfers
	// (shared-memory buffer hand-off).
	LocalBandwidth float64
	// LocalOverhead is the fixed per-message cost for same-host transfers.
	LocalOverhead float64

	// Traffic statistics.
	BytesMoved    int64
	MessagesMoved int64
	// RemoteBytes counts only bytes that crossed the network (excludes
	// same-host hand-offs).
	RemoteBytes int64
}

// New creates an empty cluster with LAN-like defaults (150 microsecond
// latency, 1 GB/s local hand-off).
func New(k *sim.Kernel) *Cluster {
	return &Cluster{
		k:              k,
		hosts:          make(map[string]*Host),
		Latency:        150e-6,
		LocalBandwidth: 1e9,
		LocalOverhead:  5e-6,
	}
}

// Kernel returns the simulation kernel.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }

// AddHost instantiates a host from its spec.
func (c *Cluster) AddHost(spec HostSpec) *Host {
	if _, dup := c.hosts[spec.Name]; dup {
		panic("cluster: duplicate host " + spec.Name)
	}
	h := &Host{
		Spec:    spec,
		CPU:     sim.NewCPU(c.k, spec.Name+"/cpu", spec.Cores, spec.Speed),
		Egress:  sim.NewServer(c.k, spec.Name+"/tx", 1),
		Ingress: sim.NewServer(c.k, spec.Name+"/rx", 1),
		cl:      c,
	}
	for i := range spec.Disks {
		h.Disks = append(h.Disks, sim.NewServer(c.k, fmt.Sprintf("%s/disk%d", spec.Name, i), 1))
	}
	c.hosts[spec.Name] = h
	c.order = append(c.order, spec.Name)
	return h
}

// Host returns a host by name, or nil.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// Hosts returns host names in insertion order.
func (c *Cluster) Hosts() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// HostsSorted returns host names sorted lexicographically.
func (c *Cluster) HostsSorted() []string {
	out := c.Hosts()
	sort.Strings(out)
	return out
}

// Transfer moves `bytes` from host `from` to host `to`, blocking the caller
// for the transfer duration. Remote transfers hold the sender's egress NIC
// and the receiver's ingress NIC for the cut-through duration
// overhead + bytes/bottleneck + latency, so NIC contention (many producers
// feeding one merge node, ack storms on Fast Ethernet) queues naturally.
// Same-host transfers charge only the cheap local hand-off.
func (c *Cluster) Transfer(p *sim.Proc, from, to string, bytes int) {
	c.BytesMoved += int64(bytes)
	c.MessagesMoved++
	if from == to {
		p.Sleep(c.LocalOverhead + float64(bytes)/c.LocalBandwidth)
		return
	}
	c.RemoteBytes += int64(bytes)
	src, ok := c.hosts[from]
	if !ok {
		panic("cluster: unknown host " + from)
	}
	dst, ok := c.hosts[to]
	if !ok {
		panic("cluster: unknown host " + to)
	}
	bw := src.Spec.NICBandwidth
	if dst.Spec.NICBandwidth < bw {
		bw = dst.Spec.NICBandwidth
	}
	dur := src.Spec.NICOverhead + dst.Spec.NICOverhead + float64(bytes)/bw
	src.Egress.Acquire(p)
	dst.Ingress.Acquire(p)
	p.Sleep(dur + c.Latency)
	dst.Ingress.Release()
	src.Egress.Release()
}
