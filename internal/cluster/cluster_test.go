package cluster

import (
	"math"
	"testing"

	"datacutter/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func twoHosts(k *sim.Kernel) *Cluster {
	c := New(k)
	c.AddHost(HostSpec{Name: "a", Cores: 1, Speed: 1, NICBandwidth: 10e6, NICOverhead: 0,
		Disks: []DiskSpec{{SeekSeconds: 0.01, Bandwidth: 50e6}}})
	c.AddHost(HostSpec{Name: "b", Cores: 1, Speed: 1, NICBandwidth: 20e6, NICOverhead: 0})
	return c
}

func TestTransferUsesBottleneckBandwidth(t *testing.T) {
	k := sim.NewKernel()
	c := twoHosts(k)
	c.Latency = 0
	var done float64
	k.Spawn("t", func(p *sim.Proc) {
		c.Transfer(p, "a", "b", 10e6) // 10 MB over min(10,20) MB/s = 1 s
		done = float64(p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 1.0, 1e-9) {
		t.Fatalf("transfer took %v, want 1.0", done)
	}
}

func TestTransferLatencyAndOverhead(t *testing.T) {
	k := sim.NewKernel()
	c := New(k)
	c.Latency = 0.001
	c.AddHost(HostSpec{Name: "a", Cores: 1, Speed: 1, NICBandwidth: 1e6, NICOverhead: 0.002})
	c.AddHost(HostSpec{Name: "b", Cores: 1, Speed: 1, NICBandwidth: 1e6, NICOverhead: 0.003})
	var done float64
	k.Spawn("t", func(p *sim.Proc) {
		c.Transfer(p, "a", "b", 0) // pure overhead: 0.002+0.003+0.001
		done = float64(p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 0.006, 1e-9) {
		t.Fatalf("zero-byte transfer took %v, want 0.006", done)
	}
}

func TestLocalTransferIsCheap(t *testing.T) {
	k := sim.NewKernel()
	c := twoHosts(k)
	var local, remote float64
	k.Spawn("t", func(p *sim.Proc) {
		t0 := p.Now()
		c.Transfer(p, "a", "a", 1e6)
		local = float64(p.Now() - t0)
		t0 = p.Now()
		c.Transfer(p, "a", "b", 1e6)
		remote = float64(p.Now() - t0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if local*10 > remote {
		t.Fatalf("local transfer (%v) not much cheaper than remote (%v)", local, remote)
	}
}

func TestNICContentionSerializes(t *testing.T) {
	// Two senders to the same receiver share its ingress NIC: total time is
	// the sum, not the max.
	k := sim.NewKernel()
	c := New(k)
	c.Latency = 0
	c.AddHost(HostSpec{Name: "a", Cores: 1, Speed: 1, NICBandwidth: 10e6})
	c.AddHost(HostSpec{Name: "b", Cores: 1, Speed: 1, NICBandwidth: 10e6})
	c.AddHost(HostSpec{Name: "dst", Cores: 1, Speed: 1, NICBandwidth: 10e6})
	var t1, t2 float64
	k.Spawn("s1", func(p *sim.Proc) { c.Transfer(p, "a", "dst", 10e6); t1 = float64(p.Now()) })
	k.Spawn("s2", func(p *sim.Proc) { c.Transfer(p, "b", "dst", 10e6); t2 = float64(p.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	max := t1
	if t2 > max {
		max = t2
	}
	if !almostEq(max, 2.0, 1e-9) {
		t.Fatalf("contended finish at %v, want 2.0 (serialized)", max)
	}
}

func TestDiskReadCost(t *testing.T) {
	k := sim.NewKernel()
	c := twoHosts(k)
	var done float64
	k.Spawn("r", func(p *sim.Proc) {
		h := c.Host("a")
		h.ReadDisk(p, 0, 50e6) // seek 0.01 + 1s transfer
		done = float64(p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 1.01, 1e-9) {
		t.Fatalf("disk read took %v, want 1.01", done)
	}
}

func TestDiskIndexWrapsAround(t *testing.T) {
	k := sim.NewKernel()
	c := twoHosts(k)
	k.Spawn("r", func(p *sim.Proc) {
		c.Host("a").ReadDisk(p, 5, 1000) // only one disk; index must wrap
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundJobsSlowCompute(t *testing.T) {
	k := sim.NewKernel()
	c := twoHosts(k)
	h := c.Host("a")
	h.SetBackgroundJobs(3)
	var done float64
	k.Spawn("w", func(p *sim.Proc) {
		h.CPU.Compute(p, 1) // shares 1 core with 3 hogs: 4x slower
		done = float64(p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 4, 1e-9) {
		t.Fatalf("compute with 3 hogs took %v, want 4", done)
	}
}

func TestPaperSpecs(t *testing.T) {
	k := sim.NewKernel()
	c := New(k)
	rogues := AddRogue(c, 8)
	blues := AddBlue(c, 8)
	reds := AddRed(c, 8)
	ds := AddDeathstar(c)
	if len(c.Hosts()) != 25 {
		t.Fatalf("host count = %d", len(c.Hosts()))
	}
	if got := c.Host(rogues[0]); got.Spec.Cores != 1 || len(got.Disks) != 2 {
		t.Fatalf("rogue spec wrong: %+v", got.Spec)
	}
	if got := c.Host(blues[7]); got.Spec.Cores != 2 || got.Spec.Speed != 1.0 {
		t.Fatalf("blue spec wrong: %+v", got.Spec)
	}
	if got := c.Host(reds[0]); got.Spec.Speed >= 1.0 {
		t.Fatalf("red should be slower than reference: %+v", got.Spec)
	}
	if got := c.Host(ds); got.Spec.Cores != 8 {
		t.Fatalf("deathstar spec wrong: %+v", got.Spec)
	}
	// Rogue NICs must be slower than Blue NICs (Fast vs Gigabit Ethernet).
	if c.Host(rogues[0]).Spec.NICBandwidth >= c.Host(blues[0]).Spec.NICBandwidth {
		t.Fatal("rogue NIC should be slower than blue NIC")
	}
	// Rogue cores are the fastest individual cores.
	if c.Host(rogues[0]).Spec.Speed <= c.Host(blues[0]).Spec.Speed {
		t.Fatal("rogue core should be fastest")
	}
}

func TestTrafficStats(t *testing.T) {
	k := sim.NewKernel()
	c := twoHosts(k)
	k.Spawn("t", func(p *sim.Proc) {
		c.Transfer(p, "a", "b", 1000)
		c.Transfer(p, "a", "a", 500)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.BytesMoved != 1500 || c.MessagesMoved != 2 {
		t.Fatalf("traffic stats: %d bytes, %d messages", c.BytesMoved, c.MessagesMoved)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := sim.NewKernel()
	c := New(k)
	c.AddHost(HostSpec{Name: "x", Cores: 1, Speed: 1})
	c.AddHost(HostSpec{Name: "x", Cores: 1, Speed: 1})
}
