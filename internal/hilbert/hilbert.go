// Package hilbert implements the 3-D Hilbert space-filling curve used for
// declustering dataset chunks across files (Faloutsos & Bhagwat [14]):
// chunks adjacent in space land near each other on the curve, so striping
// the curve order across files spreads any range query's chunks evenly.
//
// The transformation is John Skilling's transpose algorithm, operating on
// n-dimensional coordinates of b bits each.
package hilbert

// Dims is the dimensionality of the curve this package instantiates.
const Dims = 3

// axesToTranspose converts spatial coordinates into the "transposed"
// Hilbert index representation, in place.
func axesToTranspose(x []uint32, bits int) {
	m := uint32(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < len(x); i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < len(x); i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if x[len(x)-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := range x {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose, in place.
func transposeToAxes(x []uint32, bits int) {
	n := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[len(x)-1] >> 1
	for i := len(x) - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := len(x) - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// pack interleaves the transposed representation into a linear index:
// bit (bits-1-j) of x[i] becomes bit (3*bits - 1 - (j*3 + i)) of d.
func pack(x []uint32, bits int) uint64 {
	var d uint64
	for j := 0; j < bits; j++ {
		for i := 0; i < Dims; i++ {
			bit := (x[i] >> (bits - 1 - j)) & 1
			d = d<<1 | uint64(bit)
		}
	}
	return d
}

func unpack(d uint64, bits int) [Dims]uint32 {
	var x [Dims]uint32
	for pos := 3*bits - 1; pos >= 0; pos-- {
		bit := uint32(d>>pos) & 1
		j := (3*bits - 1 - pos) / Dims
		i := (3*bits - 1 - pos) % Dims
		x[i] |= bit << (bits - 1 - j)
	}
	return x
}

// Index returns the position of cell (x,y,z) along the Hilbert curve of a
// (2^bits)³ grid. bits must be in [1, 20]; coordinates must be < 2^bits.
func Index(x, y, z uint32, bits int) uint64 {
	checkBits(bits)
	v := []uint32{x, y, z}
	axesToTranspose(v, bits)
	return pack(v, bits)
}

// Coords inverts Index.
func Coords(d uint64, bits int) (x, y, z uint32) {
	checkBits(bits)
	v := unpack(d, bits)
	s := v[:]
	transposeToAxes(s, bits)
	return s[0], s[1], s[2]
}

func checkBits(bits int) {
	if bits < 1 || bits > 20 {
		panic("hilbert: bits must be in [1,20]")
	}
}

// BitsFor returns the smallest bit width whose 2^bits grid covers n cells
// per axis.
func BitsFor(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}
