package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Fatalf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRoundTripExhaustiveSmall(t *testing.T) {
	for _, bits := range []int{1, 2, 3} {
		n := uint32(1) << bits
		seen := make(map[uint64]bool)
		for x := uint32(0); x < n; x++ {
			for y := uint32(0); y < n; y++ {
				for z := uint32(0); z < n; z++ {
					d := Index(x, y, z, bits)
					if d >= uint64(n)*uint64(n)*uint64(n) {
						t.Fatalf("bits=%d: index %d out of range", bits, d)
					}
					if seen[d] {
						t.Fatalf("bits=%d: duplicate index %d", bits, d)
					}
					seen[d] = true
					rx, ry, rz := Coords(d, bits)
					if rx != x || ry != y || rz != z {
						t.Fatalf("bits=%d: roundtrip (%d,%d,%d) -> %d -> (%d,%d,%d)", bits, x, y, z, d, rx, ry, rz)
					}
				}
			}
		}
		if len(seen) != 1<<(3*bits) {
			t.Fatalf("bits=%d: not a bijection (%d cells)", bits, len(seen))
		}
	}
}

// The defining Hilbert property: consecutive curve positions are adjacent
// grid cells (unit step along exactly one axis).
func TestCurveContinuity(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4} {
		total := uint64(1) << (3 * bits)
		px, py, pz := Coords(0, bits)
		for d := uint64(1); d < total; d++ {
			x, y, z := Coords(d, bits)
			dx := absDiff(x, px)
			dy := absDiff(y, py)
			dz := absDiff(z, pz)
			if dx+dy+dz != 1 {
				t.Fatalf("bits=%d: step %d not unit: (%d,%d,%d)->(%d,%d,%d)", bits, d, px, py, pz, x, y, z)
			}
			px, py, pz = x, y, z
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// Property: round trip at random larger bit widths.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 4 + rng.Intn(10)
		n := uint32(1) << bits
		for i := 0; i < 50; i++ {
			x, y, z := rng.Uint32()%n, rng.Uint32()%n, rng.Uint32()%n
			d := Index(x, y, z, bits)
			rx, ry, rz := Coords(d, bits)
			if rx != x || ry != y || rz != z {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Locality: points nearby on the curve should be nearby in space — the
// property that makes Hilbert declustering spread range queries evenly.
// Compare against a raster (row-major) order, which has terrible locality.
func TestLocalityBeatsRasterOrder(t *testing.T) {
	const bits = 4
	n := uint32(1) << bits
	total := uint64(n) * uint64(n) * uint64(n)
	manhattan := func(x1, y1, z1, x2, y2, z2 uint32) int {
		return int(absDiff(x1, x2) + absDiff(y1, y2) + absDiff(z1, z2))
	}
	const gap = 8 // curve distance to compare at
	var hilbertSum, rasterSum int
	for d := uint64(0); d+gap < total; d += 13 {
		x1, y1, z1 := Coords(d, bits)
		x2, y2, z2 := Coords(d+gap, bits)
		hilbertSum += manhattan(x1, y1, z1, x2, y2, z2)
		// Raster order: index -> (x,y,z) row-major.
		r1 := d
		r2 := d + gap
		rasterSum += manhattan(
			uint32(r1%uint64(n)), uint32((r1/uint64(n))%uint64(n)), uint32(r1/uint64(n*n)),
			uint32(r2%uint64(n)), uint32((r2/uint64(n))%uint64(n)), uint32(r2/uint64(n*n)))
	}
	if hilbertSum >= rasterSum {
		t.Fatalf("hilbert locality (%d) not better than raster (%d)", hilbertSum, rasterSum)
	}
}

func TestBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Index(0, 0, 0, 0)
}
