package conformance

import "testing"

// FuzzGraphSpec drives the generator with arbitrary seeds and bounds and
// requires that (1) every generated spec validates and (2) the in-process
// engine satisfies every oracle on it. The CI fuzz job runs this for a
// fixed time budget; crashers archive the failing corpus entry.
func FuzzGraphSpec(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(4))
	f.Add(int64(42), uint8(1), uint8(8))
	f.Add(int64(-7), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, uows, emit uint8) {
		cfg := GenConfig{
			MaxUOWs: int(uows%3) + 1,
			MaxEmit: int(emit%12) + 2,
		}
		s := Generate(seed, cfg)
		if err := s.Validate(); err != nil {
			t.Fatalf("generated invalid spec: %v\n%s", err, s)
		}
		if fail := Check(s, Options{Engines: []string{"core"}}); fail != nil {
			t.Fatalf("core conformance violation: %v", fail)
		}
	})
}
