package conformance

import (
	"fmt"
	"strings"

	"datacutter/internal/core"
	"datacutter/internal/elastic"
	"datacutter/internal/obs"
)

// Options configures a conformance check.
type Options struct {
	// Engines selects which engines to run ("core", "simrt", "dist");
	// empty means all three.
	Engines []string
	// Perturb, if set, mutates an engine's stats before the oracle diff.
	// It exists so the harness can be tested against itself: inject a
	// violation (e.g. discard the ack counts) and assert the oracle
	// catches it and the shrinker minimizes it.
	Perturb func(engine string, st *core.Stats)
}

func (o Options) engines() []string {
	if len(o.Engines) == 0 {
		return engineNames
	}
	return o.Engines
}

// Failure describes one conformance violation: which spec, which engine,
// and every oracle it broke.
type Failure struct {
	Spec       *Spec
	Engine     string
	Violations []string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("engine %s violated %d oracle(s) on %s  - %s",
		f.Engine, len(f.Violations), strings.TrimSpace(f.Spec.String()),
		strings.Join(f.Violations, "\n  - "))
}

// ReproCommand returns the one-line command that reproduces a failing
// seed: the conformance test re-generates the same spec from the seed and
// re-runs the full check + shrink.
func ReproCommand(seed int64) string {
	return fmt.Sprintf("go test ./internal/conformance -run 'TestConformance$' -conformance.seed=%d", seed)
}

// Check runs the spec on every selected engine and diffs each run against
// the oracle model. It returns nil if every engine conforms, or the first
// engine's Failure otherwise. Each engine gets a fresh Recorder; engines
// run sequentially so a violation is attributed unambiguously.
func Check(s *Spec, opts Options) *Failure {
	if err := s.Validate(); err != nil {
		return &Failure{Spec: s, Engine: "spec", Violations: []string{err.Error()}}
	}
	m := buildModel(s)
	for _, engine := range opts.engines() {
		rec := newRecorder()
		st, err := runEngine(engine, s, rec)
		if err != nil {
			return &Failure{Spec: s, Engine: engine, Violations: []string{"run failed: " + err.Error()}}
		}
		if opts.Perturb != nil {
			opts.Perturb(engine, st)
		}
		if v := checkRun(m, st, rec, false); len(v) > 0 {
			return &Failure{Spec: s, Engine: engine, Violations: v}
		}
	}
	return nil
}

// CheckFaults runs the spec on the distributed engine with a deterministic
// mid-run worker kill and validates the relaxed (at-least-once) oracle
// after UOW replanning: the run must still complete, every expected
// identity must reach its consumer at least once, nothing unexpected may
// appear, and every consumer copy must see end-of-work. The second return
// is false when the spec has no qualifying kill victim (fewer than two
// hosts, or no host with a scheduling-independent guarantee of at least
// two inbound remote data frames — the kill trigger must be guaranteed to
// fire or the test would be vacuous).
func CheckFaults(s *Spec) (*Failure, bool) {
	if err := s.Validate(); err != nil {
		return &Failure{Spec: s, Engine: "spec", Violations: []string{err.Error()}}, true
	}
	if len(s.Hosts) < 2 {
		return nil, false
	}
	m := buildModel(s)
	victim := ""
	for _, h := range s.Hosts {
		if m.remoteIn[h.Name] >= 2 && (victim == "" || m.remoteIn[h.Name] > m.remoteIn[victim]) {
			victim = h.Name
		}
	}
	if victim == "" {
		return nil, false
	}
	rec := newRecorder()
	reg := obs.NewRegistry()
	st, err := runDist(s, rec, map[string]string{victim: "kill=data:2"}, faultTune, reg)
	if err != nil {
		return &Failure{Spec: s, Engine: "dist+faults",
			Violations: []string{fmt.Sprintf("run failed after killing %s: %v", victim, err)}}, true
	}
	v := checkRun(m, st, rec, true)
	// The victim is chosen so the kill trigger is guaranteed to fire: the
	// coordinator must have replanned and retried at least one unit of
	// work, or the run passed vacuously.
	if retries := reg.Counter("coord.uow_retries").Value(); retries < 1 {
		v = append(v, fmt.Sprintf("killed %s but coord.uow_retries = %d (kill never fired?)", victim, retries))
	}
	if len(v) > 0 {
		return &Failure{Spec: s, Engine: "dist+faults", Violations: v}, true
	}
	return nil, true
}

// Shrink greedily minimizes a failing spec: it repeatedly tries the
// candidate reductions below (drop a filter with its streams and
// placements, drop a stream, drop a placement entry, collapse copies,
// halve a source's emit count, collapse units of work), keeps the first
// candidate that still fails, and restarts until no reduction fails or
// the run budget is spent. The result is a locally minimal spec plus its
// failure. maxRuns bounds the number of Check executions (<=0 selects
// 200).
func Shrink(s *Spec, opts Options, maxRuns int) (*Spec, *Failure) {
	if maxRuns <= 0 {
		maxRuns = 200
	}
	cur := s.Clone()
	fail := Check(cur, opts)
	runs := 1
	if fail == nil {
		return cur, nil
	}
	for runs < maxRuns {
		progressed := false
		for _, cand := range shrinkCandidates(cur) {
			if cand.Validate() != nil {
				continue
			}
			f := Check(cand, opts)
			runs++
			if f != nil {
				cur, fail = cand, f
				progressed = true
				break
			}
			if runs >= maxRuns {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return cur, fail
}

// shrinkCandidates enumerates single-step reductions of a spec, most
// aggressive first, in deterministic order.
func shrinkCandidates(s *Spec) []*Spec {
	var out []*Spec
	for i := range s.Filters {
		out = append(out, removeFilter(s, s.Filters[i].Name))
	}
	for i := range s.Streams {
		c := s.Clone()
		c.Streams = append(c.Streams[:i:i], c.Streams[i+1:]...)
		out = append(out, c)
	}
	for i, p := range s.Placement {
		if len(s.entriesOf(p.Filter)) > 1 {
			c := s.Clone()
			c.Placement = append(c.Placement[:i:i], c.Placement[i+1:]...)
			c.normalizeHosts()
			out = append(out, c)
		}
	}
	for i, p := range s.Placement {
		if p.Copies > 1 {
			c := s.Clone()
			c.Placement[i].Copies = 1
			out = append(out, c)
		}
	}
	for i, f := range s.Filters {
		if f.Role == RoleSource && f.Emit > 2 {
			c := s.Clone()
			c.Filters[i].Emit = f.Emit / 2
			out = append(out, c)
		}
	}
	if s.UOWs > 1 {
		c := s.Clone()
		c.UOWs = 1
		out = append(out, c)
	}
	for i := range s.Scale {
		// A failure that survives without a scale step is not an elasticity
		// bug; one that doesn't keeps the step in its minimal reproduction.
		c := s.Clone()
		c.Scale = append(c.Scale[:i:i], c.Scale[i+1:]...)
		out = append(out, c)
	}
	if s.Transport != "" {
		// Back to plain TCP: a failure that survives this reduction is not
		// a ring-transport bug, and one that doesn't keeps the transport in
		// its minimal reproduction.
		c := s.Clone()
		c.Transport = ""
		out = append(out, c)
	}
	if s.Pred != nil {
		// Drop the pushdown predicate: a failure that survives without it
		// is not a pruning bug, and one that doesn't keeps the predicate in
		// its minimal reproduction.
		c := s.Clone()
		c.Pred = nil
		out = append(out, c)
	}
	return out
}

// removeFilter drops a filter along with every stream and placement entry
// that references it.
func removeFilter(s *Spec, name string) *Spec {
	c := s.Clone()
	c.Filters = filterSlice(c.Filters, func(f Filter) bool { return f.Name != name })
	c.Streams = filterSlice(c.Streams, func(st Stream) bool { return st.From != name && st.To != name })
	c.Placement = filterSlice(c.Placement, func(p Place) bool { return p.Filter != name })
	c.Scale = filterSlice(c.Scale, func(st elastic.ScaleStep) bool { return st.Filter != name })
	c.normalizeHosts()
	return c
}

func filterSlice[T any](in []T, keep func(T) bool) []T {
	out := in[:0:0]
	for _, v := range in {
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}
