package conformance

import (
	"fmt"
	"time"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/faults"
	"datacutter/internal/obs"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
)

// The three engine adapters build observationally equivalent runs from one
// Spec: same graph, same placement (entry order preserved — it defines
// copy-set target order and global copy indices on every engine), same
// per-stream policies, same queue capacity, same unit-of-work count.

func buildGraph(s *Spec, rec *Recorder) *core.Graph {
	g := core.NewGraph()
	for _, f := range s.Filters {
		f := f
		g.AddFilter(f.Name, func() core.Filter { return newConfFilter(s, f, rec) })
	}
	for _, st := range s.Streams {
		g.Connect(st.From, st.To, st.Name)
	}
	return g
}

func buildPlacement(s *Spec) *core.Placement {
	pl := core.NewPlacement()
	for _, p := range s.Placement {
		pl.Place(p.Filter, p.Host, p.Copies)
	}
	return pl
}

func policyNames(s *Spec) map[string]string {
	out := make(map[string]string, len(s.Streams))
	for _, st := range s.Streams {
		out[st.Name] = st.Policy
	}
	return out
}

func corePolicies(s *Spec) map[string]core.Policy {
	out := make(map[string]core.Policy, len(s.Streams))
	for _, st := range s.Streams {
		out[st.Name] = core.PolicyByName(st.Policy)
	}
	return out
}

func uowList(s *Spec) []any {
	out := make([]any, s.UOWs)
	for i := range out {
		out[i] = i
	}
	return out
}

func runCore(s *Spec, rec *Recorder) (*core.Stats, error) {
	r, err := core.NewRunner(buildGraph(s, rec), buildPlacement(s), core.Options{
		Policy:        core.RoundRobin(),
		StreamPolicy:  corePolicies(s),
		QueueCap:      s.QueueCap,
		UOWs:          uowList(s),
		ScaleSchedule: s.Scale,
	})
	if err != nil {
		return nil, err
	}
	return r.Run()
}

func runSimrt(s *Spec, rec *Recorder) (*core.Stats, error) {
	cl := cluster.New(sim.NewKernel())
	for _, h := range s.Hosts {
		cl.AddHost(cluster.HostSpec{
			Name: h.Name, Cores: 1, Speed: h.Speed, NICBandwidth: 100e6,
			Disks: []cluster.DiskSpec{{SeekSeconds: 0.001, Bandwidth: 50e6}},
		})
	}
	r, err := simrt.NewRunner(buildGraph(s, rec), buildPlacement(s), cl, simrt.Options{
		Policy:        core.RoundRobin(),
		StreamPolicy:  corePolicies(s),
		QueueCap:      s.QueueCap,
		UOWs:          uowList(s),
		ScaleSchedule: s.Scale,
	})
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// runDist executes the spec on the distributed engine over TCP loopback:
// one in-process worker per spec host. plans optionally installs a
// deterministic fault plan (internal/faults grammar) on named hosts before
// the workers accept their first connection; tune optionally adjusts the
// coordinator options (fault-mode runs enable retries and fast
// heartbeats); reg, when non-nil, collects the coordinator's metrics so
// fault-mode callers can assert recovery actually happened
// (coord.uow_retries).
func runDist(s *Spec, rec *Recorder, plans map[string]string, tune func(*dist.Options), reg *obs.Registry) (*core.Stats, error) {
	tok := registerRecorder(rec)
	defer releaseRecorder(tok)

	addrs := make(map[string]string, len(s.Hosts))
	var workers []*dist.Worker
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for _, h := range s.Hosts {
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		workers = append(workers, w)
		if spec := plans[h.Name]; spec != "" {
			plan, err := faults.ParsePlan(spec)
			if err != nil {
				return nil, err
			}
			w.SetFaults(plan.Injector())
		}
		go w.Serve()
		addrs[h.Name] = w.Addr()
	}

	filters := make([]dist.FilterSpec, 0, len(s.Filters))
	for _, f := range s.Filters {
		fs, err := newConfFilter(s, f, rec).distSpec(tok)
		if err != nil {
			return nil, err
		}
		filters = append(filters, fs)
	}
	streams := make([]core.StreamSpec, 0, len(s.Streams))
	for _, st := range s.Streams {
		streams = append(streams, core.StreamSpec{Name: st.Name, From: st.From, To: st.To})
	}
	entries := make([]dist.PlacementEntry, 0, len(s.Placement))
	for _, p := range s.Placement {
		entries = append(entries, dist.PlacementEntry{Filter: p.Filter, Host: p.Host, Copies: p.Copies})
	}

	opts := dist.Options{
		Policy:        "RR",
		StreamPolicy:  policyNames(s),
		QueueCap:      s.QueueCap,
		Transport:     s.Transport,
		ScaleSchedule: s.Scale,
	}
	if tune != nil {
		tune(&opts)
	}
	g := dist.GraphSpec{Filters: filters, Streams: streams}
	if reg != nil {
		return dist.RunObserved(addrs, g, entries, opts, uowList(s), obs.New(nil, reg))
	}
	return dist.Run(addrs, g, entries, opts, uowList(s))
}

// faultTune is the coordinator configuration every fault-mode run uses:
// recovery on (UOW retries + replanning) and heartbeats fast enough that a
// killed loopback worker is declared dead in well under a second.
func faultTune(o *dist.Options) {
	o.MaxUOWRetries = 3
	o.HeartbeatInterval = 100 * time.Millisecond
	o.HeartbeatMisses = 5
}

// engineNames in canonical order.
var engineNames = []string{"core", "simrt", "dist"}

func runEngine(engine string, s *Spec, rec *Recorder) (*core.Stats, error) {
	switch engine {
	case "core":
		return runCore(s, rec)
	case "simrt":
		return runSimrt(s, rec)
	case "dist":
		return runDist(s, rec, nil, nil, nil)
	}
	return nil, fmt.Errorf("conformance: unknown engine %q", engine)
}
