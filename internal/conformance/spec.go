// Package conformance is a deterministic, seed-driven property-testing
// harness for the three execution engines. It generates random-but-valid
// pipeline graphs (fan-in/fan-out, mixed writer policies, transparent copy
// counts, heterogeneous host placements, mixed payload wire types), runs
// each graph on internal/core, internal/simrt, and internal/dist over TCP
// loopback, and diffs every engine against a shared reference model:
// multiset equality of delivered buffers per consumer filter, exact RR/WRR
// per-target distributions (replayed through the very exec.Policy writers
// the engines use), demand-driven ack-count bounds, exactly-once
// end-of-work per consumer copy, and zero goroutine leaks. In pushdown
// mode (GenConfig.Pushdown) a near-storage predicate prunes identities at
// the sources and a conservation oracle requires the pruned and delivered
// sets to exactly partition the full multiset. A failing seed
// is greedily shrunk to a minimal reproduction (see shrink.go).
//
// Everything is derived from a Spec, which is in turn derived from a seed:
// the same seed always produces the same graph, placement, policies, and
// payloads, so one integer reproduces any failure
// (go test ./internal/conformance -run 'TestConformance$' -conformance.seed=N).
package conformance

import (
	"fmt"
	"math/rand"
	"strings"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/elastic"
)

// Wire selects how a stream's payload identities travel: as a string (the
// dist gob fallback), as []byte (dist's zero-copy built-in codec), or as
// []float32 (dist's bulk little-endian built-in codec). On core and simrt
// the value is passed through unchanged; on dist it exercises the PR 2
// codec registry end to end.
type Wire uint8

const (
	WireString Wire = iota
	WireBytes
	WireFloats
)

func (w Wire) String() string {
	switch w {
	case WireString:
		return "string"
	case WireBytes:
		return "bytes"
	case WireFloats:
		return "floats"
	}
	return fmt.Sprintf("wire(%d)", uint8(w))
}

// Role classifies a conformance filter.
type Role uint8

const (
	// RoleSource emits Emit deterministic buffers per copy per unit of work
	// on every output stream.
	RoleSource Role = iota + 1
	// RoleTransform forwards every buffer it reads to every output stream,
	// appending its own name to the payload identity.
	RoleTransform
	// RoleSink consumes and records; it has no outputs.
	RoleSink
)

func (r Role) String() string {
	switch r {
	case RoleSource:
		return "source"
	case RoleTransform:
		return "transform"
	case RoleSink:
		return "sink"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Filter is one conformance filter: a source, transform, or sink.
type Filter struct {
	Name string
	Role Role
	Emit int // buffers per copy per UOW per output stream (sources only)
}

// Stream is one logical stream with its writer policy and wire type.
type Stream struct {
	Name   string
	From   string
	To     string
	Policy string // "RR" | "WRR" | "DD" | "DD/<k>"
	Wire   Wire
}

// Place assigns transparent copies of a filter to a host.
type Place struct {
	Filter string
	Host   string
	Copies int
}

// Host is one simulated/loopback host; Speed feeds the simrt cluster model
// (heterogeneous CPUs change scheduling timing, never semantics).
type Host struct {
	Name  string
	Speed float64
}

// Spec is a fully deterministic description of one conformance pipeline:
// everything the three engines need to construct observationally equivalent
// runs, plus the knobs the oracle model consumes.
type Spec struct {
	Seed      int64 // provenance; 0 for hand-built specs
	Filters   []Filter
	Streams   []Stream
	Placement []Place
	Hosts     []Host
	UOWs      int
	// QueueCap is the per-copy-set queue capacity. The generator sizes it
	// above the largest per-stream buffer count so that a filter draining
	// its input streams sequentially can never deadlock a producer.
	QueueCap int
	// Transport selects the dist engine's peer data plane: "" or "tcp" for
	// sockets, "auto" to use in-process rings for peers in the same
	// process (in this harness every worker is, so "auto" moves the whole
	// mesh onto rings), "ring" to require them. Core and simrt ignore it —
	// the oracles must hold identically either way.
	Transport string
	// Scale lists seeded copy-set membership changes applied at work-cycle
	// boundaries on every engine. The harness restricts steps to what keeps
	// the oracle model exact: non-source filters only (source copy counts
	// define the emitted identity multiset), existing (filter, host)
	// placement entries only, Copies >= 1 (the entry set is run-constant;
	// only counts move), BeforeUOW in [1, UOWs-1].
	Scale []elastic.ScaleStep
	// Pred, when non-nil, is a near-storage pushdown predicate: every
	// conformance buffer stands in for a chunk whose summary is a pure hash
	// of its identity (synthSummary), and each source evaluates the real
	// dataset predicate against that summary before emitting — matching
	// identities flow, the rest are recorded as pruned. The pruning oracle
	// (checkRun) then requires, on every engine, that pruned and delivered
	// partition the full identity multiset exactly: nothing pruned AND
	// delivered, nothing silently dropped. QueueCap is sized from the
	// UNPRUNED totals (the generator draws Pred last), so it stays safe.
	Pred *dataset.Predicate
}

// filter returns the named filter spec, or nil.
func (s *Spec) filter(name string) *Filter {
	for i := range s.Filters {
		if s.Filters[i].Name == name {
			return &s.Filters[i]
		}
	}
	return nil
}

// entriesOf returns the placement entries for a filter, in spec order —
// the copy-set target order every engine uses.
func (s *Spec) entriesOf(filter string) []Place {
	var out []Place
	for _, p := range s.Placement {
		if p.Filter == filter {
			out = append(out, p)
		}
	}
	return out
}

// totalCopies returns the number of transparent copies of a filter.
func (s *Spec) totalCopies(filter string) int {
	n := 0
	for _, p := range s.Placement {
		if p.Filter == filter {
			n += p.Copies
		}
	}
	return n
}

// inputsOf / outputsOf list a filter's streams in spec order.
func (s *Spec) inputsOf(filter string) []Stream {
	var out []Stream
	for _, st := range s.Streams {
		if st.To == filter {
			out = append(out, st)
		}
	}
	return out
}

func (s *Spec) outputsOf(filter string) []Stream {
	var out []Stream
	for _, st := range s.Streams {
		if st.From == filter {
			out = append(out, st)
		}
	}
	return out
}

// hostNames returns the spec's host names in order.
func (s *Spec) hostNames() []string {
	out := make([]string, len(s.Hosts))
	for i, h := range s.Hosts {
		out[i] = h.Name
	}
	return out
}

// Clone deep-copies the spec (shrinking mutates candidates freely).
func (s *Spec) Clone() *Spec {
	c := *s
	c.Filters = append([]Filter(nil), s.Filters...)
	c.Streams = append([]Stream(nil), s.Streams...)
	c.Placement = append([]Place(nil), s.Placement...)
	c.Hosts = append([]Host(nil), s.Hosts...)
	c.Scale = append([]elastic.ScaleStep(nil), s.Scale...)
	if s.Pred != nil {
		p := *s.Pred
		if p.Iso != nil {
			r := *p.Iso
			p.Iso = &r
		}
		if p.Box != nil {
			b := *p.Box
			p.Box = &b
		}
		c.Pred = &p
	}
	return &c
}

// effectiveSpec returns the spec with the placement every engine runs for
// unit of work u (scale steps with BeforeUOW <= u applied, later steps
// winning). With no scale steps it returns s itself.
func (s *Spec) effectiveSpec(u int) *Spec {
	due := false
	for _, step := range s.Scale {
		if step.BeforeUOW <= u {
			due = true
			break
		}
	}
	if !due {
		return s
	}
	base := make([]elastic.Entry, len(s.Placement))
	for i, p := range s.Placement {
		base[i] = elastic.Entry{Filter: p.Filter, Host: p.Host, Copies: p.Copies}
	}
	eff := elastic.EffectivePlacement(base, s.Scale, u)
	c := s.Clone()
	c.Placement = make([]Place, len(eff))
	for i, e := range eff {
		c.Placement[i] = Place{Filter: e.Filter, Host: e.Host, Copies: e.Copies}
	}
	return c
}

// Validate checks the spec is runnable: the graph must be valid under the
// engine-neutral rules (core.Graph.Validate), every filter placed, every
// policy known, and every count positive.
func (s *Spec) Validate() error {
	if len(s.Filters) == 0 {
		return fmt.Errorf("conformance: spec has no filters")
	}
	if s.UOWs < 1 {
		return fmt.Errorf("conformance: UOWs must be >= 1, got %d", s.UOWs)
	}
	if s.QueueCap < 1 {
		return fmt.Errorf("conformance: QueueCap must be >= 1, got %d", s.QueueCap)
	}
	seen := map[string]bool{}
	for _, f := range s.Filters {
		if seen[f.Name] {
			return fmt.Errorf("conformance: duplicate filter %q", f.Name)
		}
		seen[f.Name] = true
		if f.Role == RoleSource && f.Emit < 1 {
			return fmt.Errorf("conformance: source %q emits %d buffers", f.Name, f.Emit)
		}
	}
	hosts := map[string]bool{}
	for _, h := range s.Hosts {
		if hosts[h.Name] {
			return fmt.Errorf("conformance: duplicate host %q", h.Name)
		}
		hosts[h.Name] = true
	}
	switch s.Transport {
	case "", "tcp", "auto", "ring": // mirrors dist.Options.Transport
	default:
		return fmt.Errorf("conformance: unknown transport %q", s.Transport)
	}
	for _, st := range s.Streams {
		if core.PolicyByName(st.Policy) == nil {
			return fmt.Errorf("conformance: stream %s: unknown policy %q", st.Name, st.Policy)
		}
		if st.Wire > WireFloats {
			return fmt.Errorf("conformance: stream %s: unknown wire type %d", st.Name, st.Wire)
		}
	}
	for _, p := range s.Placement {
		if s.filter(p.Filter) == nil {
			return fmt.Errorf("conformance: placement for unknown filter %q", p.Filter)
		}
		if !hosts[p.Host] {
			return fmt.Errorf("conformance: placement on unknown host %q", p.Host)
		}
		if p.Copies < 1 {
			return fmt.Errorf("conformance: filter %q on %q has %d copies", p.Filter, p.Host, p.Copies)
		}
	}
	entryCopies := map[[2]string]bool{}
	for _, p := range s.Placement {
		entryCopies[[2]string{p.Filter, p.Host}] = true
	}
	for _, step := range s.Scale {
		f := s.filter(step.Filter)
		if f == nil {
			return fmt.Errorf("conformance: scale step for unknown filter %q", step.Filter)
		}
		if f.Role == RoleSource {
			return fmt.Errorf("conformance: scale step for source %q (source copy counts define the identity multiset)", step.Filter)
		}
		if step.BeforeUOW < 1 || step.BeforeUOW >= s.UOWs {
			return fmt.Errorf("conformance: scale step for %q at boundary %d, want 1..%d", step.Filter, step.BeforeUOW, s.UOWs-1)
		}
		if !entryCopies[[2]string{step.Filter, step.Host}] {
			return fmt.Errorf("conformance: scale step for %q on %q has no base placement entry", step.Filter, step.Host)
		}
		if step.Copies < 1 {
			return fmt.Errorf("conformance: scale step for %q on %q sets %d copies, want >= 1", step.Filter, step.Host, step.Copies)
		}
	}
	// The engine-neutral graph rules (unique streams, known endpoints,
	// acyclicity) and full placement, checked exactly the way every engine
	// will check them.
	g := core.NewGraph()
	for _, f := range s.Filters {
		g.AddFilter(f.Name, func() core.Filter { return nil })
	}
	for _, st := range s.Streams {
		g.Connect(st.From, st.To, st.Name)
	}
	if err := g.Validate(); err != nil {
		return err
	}
	pl := core.NewPlacement()
	for _, p := range s.Placement {
		pl.Place(p.Filter, p.Host, p.Copies)
	}
	return pl.Validate(g)
}

// String renders a compact, reproducible description — the form printed in
// failure reports and shrink traces.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec(seed=%d uows=%d qcap=%d", s.Seed, s.UOWs, s.QueueCap)
	if s.Transport != "" {
		fmt.Fprintf(&b, " transport=%s", s.Transport)
	}
	if s.Pred != nil {
		fmt.Fprintf(&b, " pred=%s", s.Pred)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  hosts:")
	for _, h := range s.Hosts {
		fmt.Fprintf(&b, " %s(x%g)", h.Name, h.Speed)
	}
	b.WriteString("\n")
	for _, f := range s.Filters {
		fmt.Fprintf(&b, "  filter %-4s %s", f.Name, f.Role)
		if f.Role == RoleSource {
			fmt.Fprintf(&b, " emit=%d", f.Emit)
		}
		fmt.Fprintf(&b, " @")
		for _, p := range s.entriesOf(f.Name) {
			fmt.Fprintf(&b, " %s:%d", p.Host, p.Copies)
		}
		b.WriteString("\n")
	}
	for _, st := range s.Streams {
		fmt.Fprintf(&b, "  stream %-4s %s -> %s  policy=%s wire=%s\n", st.Name, st.From, st.To, st.Policy, st.Wire)
	}
	for _, step := range s.Scale {
		fmt.Fprintf(&b, "  scale  %-4s %s:%d before uow %d\n", step.Filter, step.Host, step.Copies, step.BeforeUOW)
	}
	return b.String()
}

// GenConfig bounds the generator. The zero value selects the defaults in
// parentheses — sized so a -short run of dozens of seeds on all three
// engines (dist included) finishes in seconds.
type GenConfig struct {
	MaxHosts   int      // distinct hosts (3)
	MaxSources int      // source filters (2)
	MaxMids    int      // transform filters, may be 0 (2)
	MaxSinks   int      // sink filters (2)
	MaxCopies  int      // transparent copies per placement entry (3)
	MaxEmit    int      // buffers per source copy per UOW per stream (10)
	MaxUOWs    int      // units of work (2)
	Policies   []string // policy pool (RR, WRR, DD, DD/2, DD/4)
	// Elastic seeds a runtime scale schedule into every generated spec: at
	// least three units of work, one guaranteed scale-up before UOW 1 and
	// one guaranteed scale-down before UOW 2 on a non-source filter's
	// existing placement entry. All elastic draws happen after the
	// transport draw, so a seed's base pipeline is identical with the flag
	// on or off.
	Elastic bool
	// Pushdown seeds a near-storage pruning predicate (Spec.Pred) into
	// every generated spec: a random iso range evaluated by sources against
	// each identity's synthetic chunk summary. The predicate draws happen
	// strictly after every other draw (the same seed-stability rule as
	// Transport and Elastic), so a seed's base pipeline is identical with
	// the flag on or off.
	Pushdown bool
}

func (c GenConfig) withDefaults() GenConfig {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.MaxHosts, 3)
	def(&c.MaxSources, 2)
	def(&c.MaxMids, 3) // 0..2 transforms: Intn(MaxMids)
	def(&c.MaxSinks, 2)
	def(&c.MaxCopies, 3)
	def(&c.MaxEmit, 10)
	def(&c.MaxUOWs, 2)
	if len(c.Policies) == 0 {
		c.Policies = []string{"RR", "WRR", "DD", "DD/2", "DD/4"}
	}
	return c
}

var hostSpeeds = []float64{0.5, 1, 2}

// Generate derives a valid Spec from a seed. The construction is layered —
// filters are indexed sources < transforms < sinks and streams only flow
// from lower to higher index — so every generated graph is acyclic by
// construction, and Validate holds for every seed.
func Generate(seed int64, cfg GenConfig) *Spec {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	s := &Spec{Seed: seed, UOWs: 1 + rng.Intn(cfg.MaxUOWs)}

	nHosts := 1 + rng.Intn(cfg.MaxHosts)
	for i := 0; i < nHosts; i++ {
		s.Hosts = append(s.Hosts, Host{
			Name:  fmt.Sprintf("h%d", i),
			Speed: hostSpeeds[rng.Intn(len(hostSpeeds))],
		})
	}

	nSrc := 1 + rng.Intn(cfg.MaxSources)
	nMid := rng.Intn(cfg.MaxMids)
	nSink := 1 + rng.Intn(cfg.MaxSinks)
	for i := 0; i < nSrc; i++ {
		s.Filters = append(s.Filters, Filter{
			Name: fmt.Sprintf("F%d", len(s.Filters)), Role: RoleSource,
			Emit: 2 + rng.Intn(cfg.MaxEmit-1),
		})
	}
	for i := 0; i < nMid; i++ {
		s.Filters = append(s.Filters, Filter{Name: fmt.Sprintf("F%d", len(s.Filters)), Role: RoleTransform})
	}
	for i := 0; i < nSink; i++ {
		s.Filters = append(s.Filters, Filter{Name: fmt.Sprintf("F%d", len(s.Filters)), Role: RoleSink})
	}

	// Streams: every transform and sink picks 1-2 distinct producers among
	// the lower-indexed sources and transforms (fan-in); afterwards, any
	// source or transform left without an output stream is wired to a
	// random higher-indexed consumer (so no filter is dead weight).
	addStream := func(from, to int) {
		s.Streams = append(s.Streams, Stream{
			Name:   fmt.Sprintf("s%d", len(s.Streams)),
			From:   s.Filters[from].Name,
			To:     s.Filters[to].Name,
			Policy: cfg.Policies[rng.Intn(len(cfg.Policies))],
			Wire:   Wire(rng.Intn(3)),
		})
	}
	hasEdge := func(from, to int) bool {
		for _, st := range s.Streams {
			if st.From == s.Filters[from].Name && st.To == s.Filters[to].Name {
				return true
			}
		}
		return false
	}
	for to := nSrc; to < len(s.Filters); to++ {
		eligible := to // producers are indices < to among sources+transforms
		if eligible > nSrc+nMid {
			eligible = nSrc + nMid
		}
		wants := 1 + rng.Intn(2)
		if wants > eligible {
			wants = eligible
		}
		for _, from := range rng.Perm(eligible)[:wants] {
			addStream(from, to)
		}
	}
	for from := 0; from < nSrc+nMid; from++ {
		if len(s.outputsOf(s.Filters[from].Name)) > 0 {
			continue
		}
		// Wire to a random consumer after this filter; sinks always exist.
		lo := from + 1
		if lo < nSrc {
			lo = nSrc
		}
		to := lo + rng.Intn(len(s.Filters)-lo)
		if !hasEdge(from, to) {
			addStream(from, to)
		}
	}

	// Placement: 1..nHosts distinct hosts per filter, 1..MaxCopies each.
	for _, f := range s.Filters {
		n := 1 + rng.Intn(nHosts)
		for _, hi := range rng.Perm(nHosts)[:n] {
			s.Placement = append(s.Placement, Place{
				Filter: f.Name, Host: s.Hosts[hi].Name, Copies: 1 + rng.Intn(cfg.MaxCopies),
			})
		}
	}
	s.normalizeHosts()

	// Queue capacity above the largest per-stream per-UOW buffer count, so
	// a whole stream fits in any single copy-set queue and sequential
	// draining of inputs can never deadlock a producer (see filters.go).
	max := 0
	for _, total := range streamTotals(s) {
		if total > max {
			max = total
		}
	}
	s.QueueCap = max + 4
	if s.QueueCap < 8 {
		s.QueueCap = 8
	}

	// Transport is drawn LAST among the base fields: every draw above
	// consumes the same rng prefix as before this field existed, so
	// historical seeds reproduce their exact graphs. About half the seeds
	// run dist's peer mesh over in-process rings instead of TCP sockets.
	if rng.Intn(2) == 0 {
		s.Transport = "auto"
	}

	// Elastic draws come strictly after every base draw (same seed-
	// stability rule as Transport): the base pipeline of a seed is
	// identical whether or not cfg.Elastic is set.
	if cfg.Elastic {
		if s.UOWs < 3 {
			s.UOWs = 3 // room for a scale-up boundary and a scale-down boundary
		}
		// Candidates: placement entries of non-source filters (sinks always
		// exist, so there is always at least one).
		var cands []Place
		for _, p := range s.Placement {
			if s.filter(p.Filter).Role != RoleSource {
				cands = append(cands, p)
			}
		}
		e := cands[rng.Intn(len(cands))]
		up := e.Copies + 1 + rng.Intn(2)
		down := 1 + rng.Intn(e.Copies) // <= base < up: a strict scale-down
		s.Scale = []elastic.ScaleStep{
			{BeforeUOW: 1, Filter: e.Filter, Host: e.Host, Copies: up},
			{BeforeUOW: 2, Filter: e.Filter, Host: e.Host, Copies: down},
		}
		// Sometimes a second set scales too, on another entry.
		if len(cands) > 1 && rng.Intn(2) == 0 {
			e2 := cands[rng.Intn(len(cands))]
			if e2 != e {
				s.Scale = append(s.Scale, elastic.ScaleStep{
					BeforeUOW: 1 + rng.Intn(s.UOWs-1), Filter: e2.Filter, Host: e2.Host,
					Copies: 1 + rng.Intn(e2.Copies+1),
				})
			}
		}
	}

	// Pushdown draws come last of all (the Transport/Elastic seed-stability
	// rule again). Identity summaries have Min uniform in [0,1) and Max in
	// [Min, Min+1), so an iso range with Lo in [0,1.2) and a short width
	// sweeps the whole spectrum: seeds where everything survives, seeds
	// where almost everything prunes, and plenty of genuine partitions.
	if cfg.Pushdown {
		lo := float32(rng.Float64() * 1.2)
		s.Pred = &dataset.Predicate{Iso: &dataset.IsoRange{Lo: lo, Hi: lo + float32(rng.Float64()*0.6)}}
	}
	return s
}

// normalizeHosts drops hosts no placement references (shrinking removes
// placements; dist must not start workers for unused hosts).
func (s *Spec) normalizeHosts() {
	used := map[string]bool{}
	for _, p := range s.Placement {
		used[p.Host] = true
	}
	var hosts []Host
	for _, h := range s.Hosts {
		if used[h.Name] {
			hosts = append(hosts, h)
		}
	}
	s.Hosts = hosts
}

// survives reports whether the pushdown predicate keeps the identity: the
// very dataset.Predicate.MatchSummary call the source filters run, against
// the identity's synthetic summary. No predicate keeps everything.
func (s *Spec) survives(id string) bool {
	return s.Pred == nil || s.Pred.MatchSummary(synthSummary(id))
}

// sourceWrites returns how many buffers each copy of a source emits per UOW
// per output stream after pushdown pruning (identities encode the copy, so
// different copies may prune different counts).
func sourceWrites(s *Spec, f Filter) []int {
	w := make([]int, s.totalCopies(f.Name))
	for c := range w {
		if s.Pred == nil {
			w[c] = f.Emit
			continue
		}
		for i := 0; i < f.Emit; i++ {
			if s.survives(fmt.Sprintf("%s.%d#%d", f.Name, c, i)) {
				w[c]++
			}
		}
	}
	return w
}

// streamTotals returns each stream's per-UOW buffer count, propagated
// through the DAG: sources write Emit x copies (minus anything the pushdown
// predicate prunes), transforms forward every buffer they receive to every
// output. Totals are exact on every engine regardless of policy —
// conservation is scheduling-independent. The generator calls this before
// drawing Pred, so QueueCap is sized from the unpruned totals.
func streamTotals(s *Spec) map[string]int {
	totals := make(map[string]int, len(s.Streams))
	recv := map[string]int{}
	for _, f := range s.Filters { // spec order is topological by construction
		var writes int
		switch f.Role {
		case RoleSource:
			for _, n := range sourceWrites(s, f) {
				writes += n
			}
		default:
			writes = recv[f.Name]
		}
		for _, st := range s.outputsOf(f.Name) {
			totals[st.Name] = writes
			recv[st.To] += writes
		}
	}
	return totals
}
