package conformance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"datacutter/internal/core"
	"datacutter/internal/exec"
)

// The oracle model predicts, for a Spec, everything that must hold on
// every engine:
//
//   - per-stream buffer totals — exact on any engine for any policy, by
//     conservation (sources emit a fixed count per copy; transforms
//     forward everything to everything);
//   - the delivered-identity multiset per consumer per unit of work —
//     also exact for any policy, because identities encode provenance and
//     transparent copies must not change what is delivered, only where;
//   - per-target-host delivery counts — exact whenever the writes feeding
//     a stream are per-copy deterministic and the policy ignores acks
//     (RR/WRR): the model replays the very exec.Policy writer the engines
//     run (exec.ReplayCounts), so the expected split is the production
//     pick sequence, not a re-implementation;
//   - acknowledgment-count bounds for the demand-driven family;
//   - end-of-work exactly once per consumer copy per input per UOW.
//
// Exactness propagates: a transform's own writes are per-copy
// deterministic only if every input stream's per-copy-set split is exact
// AND each of its placement entries holds a single copy (buffers route to
// a copy set; with >1 copies per entry, which copy consumed — and so which
// copy's writers fire — depends on scheduling).
type model struct {
	spec   *Spec
	totals map[string]int            // buffers per stream per UOW (always exact)
	ids    map[string]map[string]int // identity multiset per stream per UOW (always exact)
	// eff is the effective spec per unit of work: the base spec with the
	// scale schedule applied up to that boundary. Without scale steps every
	// entry is the base spec itself. Identities and totals are UOW-invariant
	// even under scaling (the harness only scales non-source filters, and
	// transform identities do not encode copy indices), but per-host splits
	// and end-of-work copy counts follow the effective placement.
	eff []*Spec
	// perHost is the exact per-target-host split over the WHOLE RUN (summed
	// across each UOW's effective placement), nil for streams where only
	// conservation holds (DD family, non-deterministic producer writes, or
	// any UOW in which the split went inexact).
	perHost map[string]map[string]int64
	// ackLo/ackHi bound Stats.Acks per stream over the whole run.
	ackLo, ackHi map[string]int64
	// remoteIn counts, per host, the exactly-known data frames per UOW
	// arriving from other hosts — used to pick kill victims in fault mode.
	remoteIn map[string]int
	// prunedIDs is, per source filter, the identity multiset the pushdown
	// predicate prunes per UOW (always exact: the predicate is a pure
	// function of the identity, and source copy counts never scale). Empty
	// when the spec has no predicate.
	prunedIDs map[string]map[string]int
}

// ddEvery returns the ack batch size of a policy name (1 for plain DD)
// and whether the policy is ack-driven at all.
func ddEvery(name string) (int, bool) {
	if name == "DD" {
		return 1, true
	}
	if rest, ok := strings.CutPrefix(name, "DD/"); ok {
		k, err := strconv.Atoi(rest)
		if err == nil && k >= 1 {
			return k, true
		}
	}
	return 0, false
}

// targetInfos expands a consumer's placement entries into the TargetInfo
// slice every engine hands the policy (one entry per copy set, spec
// order). Local is irrelevant for the ack-free policies the model replays.
func targetInfos(s *Spec, consumer string) []core.TargetInfo {
	entries := s.entriesOf(consumer)
	out := make([]core.TargetInfo, len(entries))
	for i, e := range entries {
		out[i] = core.TargetInfo{Host: e.Host, Copies: e.Copies}
	}
	return out
}

// buildModel composes the whole-run model from one single-UOW model per
// unit of work: each UOW's effective placement (scale schedule applied) is
// replayed independently — matching the engines, which rebuild writers
// every UOW — and the per-host splits and ack bounds accumulate. A stream's
// split is exact only if it is exact in EVERY UOW.
func buildModel(s *Spec) *model {
	m := buildUOW(s)
	m.eff = make([]*Spec, s.UOWs)
	perHost := map[string]map[string]int64{}
	ackLo := map[string]int64{}
	ackHi := map[string]int64{}
	inexact := map[string]bool{}
	for u := 0; u < s.UOWs; u++ {
		m.eff[u] = s.effectiveSpec(u)
		um := m
		if m.eff[u] != s {
			um = buildUOW(m.eff[u])
		}
		for _, st := range s.Streams {
			ackLo[st.Name] += um.ackLo[st.Name]
			ackHi[st.Name] += um.ackHi[st.Name]
			if ph := um.perHost[st.Name]; ph != nil && !inexact[st.Name] {
				acc := perHost[st.Name]
				if acc == nil {
					acc = map[string]int64{}
					perHost[st.Name] = acc
				}
				for h, n := range ph {
					acc[h] += n
				}
			} else {
				inexact[st.Name] = true
				delete(perHost, st.Name)
			}
		}
	}
	m.perHost, m.ackLo, m.ackHi = perHost, ackLo, ackHi
	return m
}

// buildUOW builds the single-unit-of-work model for a spec: per-stream
// totals, identity multisets, exact per-host splits where the writes are
// per-copy deterministic, per-UOW ack bounds, and remote-arrival counts.
func buildUOW(s *Spec) *model {
	m := &model{
		spec:      s,
		totals:    streamTotals(s),
		ids:       map[string]map[string]int{},
		perHost:   map[string]map[string]int64{},
		ackLo:     map[string]int64{},
		ackHi:     map[string]int64{},
		remoteIn:  map[string]int{},
		prunedIDs: map[string]map[string]int{},
	}
	u := int64(1)

	// copyWrites[f][c] is how many buffers copy c of f writes on EACH of
	// its output streams per UOW; nil when scheduling-dependent.
	copyWrites := map[string][]int{}
	// recvByEntry[f][e] accumulates exact arrivals at placement entry e of
	// consumer f; recvExact[f] goes false the moment any input is inexact.
	recvByEntry := map[string][]int{}
	recvExact := map[string]bool{}
	recvIDs := map[string]map[string]int{}
	for _, f := range s.Filters {
		recvByEntry[f.Name] = make([]int, len(s.entriesOf(f.Name)))
		recvExact[f.Name] = true
		recvIDs[f.Name] = map[string]int{}
	}

	for _, f := range s.Filters { // spec order is topological
		// What this filter writes per copy per output stream.
		switch f.Role {
		case RoleSource:
			// Per-copy survivor counts: the pushdown predicate (when set)
			// prunes a deterministic subset of each copy's identities, so
			// copies may write different counts — the policy replay below
			// consumes the per-copy numbers.
			copyWrites[f.Name] = sourceWrites(s, f)
		case RoleTransform:
			exact := recvExact[f.Name]
			for _, e := range s.entriesOf(f.Name) {
				if e.Copies != 1 {
					exact = false
				}
			}
			if exact {
				copyWrites[f.Name] = recvByEntry[f.Name] // entry == copy
			}
		}

		// This filter's output identities per UOW.
		var outIDs map[string]int
		switch f.Role {
		case RoleSource:
			outIDs = map[string]int{}
			for c := 0; c < s.totalCopies(f.Name); c++ {
				for i := 0; i < f.Emit; i++ {
					id := fmt.Sprintf("%s.%d#%d", f.Name, c, i)
					if !s.survives(id) {
						if m.prunedIDs[f.Name] == nil {
							m.prunedIDs[f.Name] = map[string]int{}
						}
						m.prunedIDs[f.Name][id]++
						continue
					}
					outIDs[id]++
				}
			}
		case RoleTransform:
			outIDs = map[string]int{}
			for id, n := range recvIDs[f.Name] {
				outIDs[id+">"+f.Name] += n
			}
		}

		for _, st := range s.outputsOf(f.Name) {
			m.ids[st.Name] = outIDs
			for id, n := range outIDs {
				recvIDs[st.To][id] += n
			}
			total := int64(m.totals[st.Name])
			if k, dd := ddEvery(st.Policy); dd {
				m.ackLo[st.Name] = u * ((total + int64(k) - 1) / int64(k))
				m.ackHi[st.Name] = u * total
				recvExact[st.To] = false
				continue
			}
			m.ackLo[st.Name], m.ackHi[st.Name] = 0, 0
			writes := copyWrites[f.Name]
			if writes == nil {
				recvExact[st.To] = false
				continue
			}
			// Replay the production writer per producing copy (each copy
			// owns a fresh writer per stream on every engine).
			pol := core.PolicyByName(st.Policy)
			targets := targetInfos(s, st.To)
			perEntry := make([]int, len(targets))
			hostOf := copyHosts(s, f.Name)
			for c, n := range writes {
				for ti, cnt := range exec.ReplayCounts(pol, targets, n) {
					perEntry[ti] += cnt
					if targets[ti].Host != hostOf[c] {
						m.remoteIn[targets[ti].Host] += cnt
					}
				}
			}
			ph := map[string]int64{}
			for ti, cnt := range perEntry {
				if cnt != 0 {
					ph[targets[ti].Host] += int64(cnt)
				}
				recvByEntry[st.To][ti] += cnt
			}
			m.perHost[st.Name] = ph
		}
	}
	return m
}

// copyHosts returns the host of each global copy index of a filter
// (placement entries expand in order on every engine).
func copyHosts(s *Spec, filter string) []string {
	var out []string
	for _, e := range s.entriesOf(filter) {
		for c := 0; c < e.Copies; c++ {
			out = append(out, e.Host)
		}
	}
	return out
}

// expectedDeliveries builds the full delivery multiset the Recorder must
// hold after a clean run: every stream's identity multiset, at the
// stream's consumer, once per unit of work.
func (m *model) expectedDeliveries() map[DeliveryKey]int {
	out := map[DeliveryKey]int{}
	for _, st := range m.spec.Streams {
		for u := 0; u < m.spec.UOWs; u++ {
			for id, n := range m.ids[st.Name] {
				out[DeliveryKey{st.To, st.Name, u, id}] = n
			}
		}
	}
	return out
}

// expectedPruned builds the full pruned multiset the Recorder must hold
// after a clean run: each source's pruned identity set, once per unit of
// work (the predicate is UOW-invariant and source copy counts never scale).
func (m *model) expectedPruned() map[PruneKey]int {
	out := map[PruneKey]int{}
	for src, ids := range m.prunedIDs {
		for u := 0; u < m.spec.UOWs; u++ {
			for id, n := range ids {
				out[PruneKey{src, u, id}] = n
			}
		}
	}
	return out
}

// expectedEOW: every consumer copy sees end-of-work exactly once per input
// stream per unit of work — counted against that UOW's effective placement
// when a scale schedule is in force.
func (m *model) expectedEOW() map[EOWKey]int {
	out := map[EOWKey]int{}
	for _, st := range m.spec.Streams {
		for u := 0; u < m.spec.UOWs; u++ {
			eff := m.spec
			if u < len(m.eff) && m.eff[u] != nil {
				eff = m.eff[u]
			}
			out[EOWKey{st.To, st.Name, u}] = eff.totalCopies(st.To)
		}
	}
	return out
}

// checkRun diffs one engine's run against the model. It returns a list of
// human-readable oracle violations (empty = conformant). relaxed selects
// the fault-mode oracle: delivery becomes at-least-once (every expected
// identity delivered, nothing unexpected, end-of-work at least once per
// copy) and the scheduling-sensitive stats oracles are skipped, because
// retried units of work legitimately re-deliver.
func checkRun(m *model, st *core.Stats, rec *Recorder, relaxed bool) []string {
	var v []string
	u := int64(m.spec.UOWs)

	if !relaxed {
		for _, sp := range m.spec.Streams {
			ss := st.Streams[sp.Name]
			if ss == nil {
				v = append(v, fmt.Sprintf("stream %s: no stats", sp.Name))
				continue
			}
			want := u * int64(m.totals[sp.Name])
			if ss.Buffers != want {
				v = append(v, fmt.Sprintf("stream %s: %d buffers, want %d", sp.Name, ss.Buffers, want))
			}
			var sum int64
			for _, n := range ss.PerTargetHost {
				sum += n
			}
			if sum != want {
				v = append(v, fmt.Sprintf("stream %s: per-host deliveries sum to %d, want %d (%v)",
					sp.Name, sum, want, ss.PerTargetHost))
			}
			if wantPer := m.perHost[sp.Name]; wantPer != nil {
				if !equalHostCounts(ss.PerTargetHost, wantPer) {
					v = append(v, fmt.Sprintf("stream %s (%s): per-host split %v, want %v",
						sp.Name, sp.Policy, ss.PerTargetHost, wantPer))
				}
			}
			if lo, hi := m.ackLo[sp.Name], m.ackHi[sp.Name]; ss.Acks < lo || ss.Acks > hi {
				v = append(v, fmt.Sprintf("stream %s (%s): %d acks, want %d..%d",
					sp.Name, sp.Policy, ss.Acks, lo, hi))
			}
		}
	}

	wantDel := m.expectedDeliveries()
	gotDel := rec.Deliveries()
	for k, want := range wantDel {
		got := gotDel[k]
		bad := got != want
		if relaxed {
			bad = got < want
		}
		if bad {
			v = append(v, fmt.Sprintf("delivery %s/%s uow=%d id=%q: %d, want %s%d",
				k.Consumer, k.Stream, k.UOW, k.ID, got, relaxedPrefix(relaxed), want))
		}
	}
	for k, got := range gotDel {
		if _, ok := wantDel[k]; !ok {
			v = append(v, fmt.Sprintf("unexpected delivery %s/%s uow=%d id=%q (x%d)",
				k.Consumer, k.Stream, k.UOW, k.ID, got))
		}
	}

	// Pushdown oracles. First the pruned multiset itself: exactly what the
	// predicate dictates (at-least-once under the relaxed fault oracle,
	// where a retried UOW legitimately re-prunes), and never an identity
	// the model expects to flow. Then conservation, the soundness property
	// near-storage pruning stands on: on every stream leaving a source,
	// pruned and delivered must PARTITION the full identity multiset — an
	// identity in both was pruned yet leaked downstream, an identity in
	// neither was silently dropped without being accounted as pruned.
	wantPruned := m.expectedPruned()
	gotPruned := rec.Pruned()
	for k, want := range wantPruned {
		got := gotPruned[k]
		bad := got != want
		if relaxed {
			bad = got < want
		}
		if bad {
			v = append(v, fmt.Sprintf("pruned %s uow=%d id=%q: %d, want %s%d",
				k.Source, k.UOW, k.ID, got, relaxedPrefix(relaxed), want))
		}
	}
	for k, got := range gotPruned {
		if _, ok := wantPruned[k]; !ok {
			v = append(v, fmt.Sprintf("unexpected prune %s uow=%d id=%q (x%d)", k.Source, k.UOW, k.ID, got))
		}
	}
	if m.spec.Pred != nil {
		for _, sp := range m.spec.Streams {
			if m.spec.filter(sp.From).Role != RoleSource {
				continue
			}
			for u := 0; u < m.spec.UOWs; u++ {
				check := func(id string) {
					del := gotDel[DeliveryKey{sp.To, sp.Name, u, id}]
					pr := gotPruned[PruneKey{sp.From, u, id}]
					if del > 0 && pr > 0 {
						v = append(v, fmt.Sprintf("conservation %s uow=%d id=%q: pruned (x%d) AND delivered (x%d)",
							sp.Name, u, id, pr, del))
					}
					if !relaxed && del+pr != 1 {
						v = append(v, fmt.Sprintf("conservation %s uow=%d id=%q: delivered %d + pruned %d, want exactly 1",
							sp.Name, u, id, del, pr))
					}
				}
				for id := range m.ids[sp.Name] {
					check(id)
				}
				for id := range m.prunedIDs[sp.From] {
					check(id)
				}
			}
		}
	}

	wantEOW := m.expectedEOW()
	gotEOW := rec.EOW()
	for k, want := range wantEOW {
		got := gotEOW[k]
		bad := got != want
		if relaxed {
			bad = got < want
		}
		if bad {
			v = append(v, fmt.Sprintf("end-of-work %s/%s uow=%d: seen by %d copies, want %s%d",
				k.Consumer, k.Stream, k.UOW, got, relaxedPrefix(relaxed), want))
		}
	}
	for k, got := range gotEOW {
		if _, ok := wantEOW[k]; !ok {
			v = append(v, fmt.Sprintf("unexpected end-of-work %s/%s uow=%d (x%d)", k.Consumer, k.Stream, k.UOW, got))
		}
	}

	sort.Strings(v)
	return v
}

func relaxedPrefix(relaxed bool) string {
	if relaxed {
		return ">= "
	}
	return ""
}

func equalHostCounts(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for h, n := range a {
		if b[h] != n {
			return false
		}
	}
	return true
}
