package conformance

import (
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/dist"
)

// DistJob packages one seeded conformance pipeline for execution on an
// externally managed worker mesh — the oracle side of multi-job testing:
// internal/jobd submits the Graph/Placement/Policies to its shared workers
// and hands the run's stats back to Check, which diffs them (and the
// identities the filters recorded) against the same reference model the
// in-package harness uses. Each DistJob owns a fresh Recorder, so two jobs
// running concurrently over the same workers are checked independently —
// any cross-job frame leak shows up as an unexpected identity.
//
// The spec's generated host names (h0, h1, ...) are renamed onto the
// caller's worker names, so many jobs with differently-shaped specs can
// share one fixed mesh. Close releases the process-global recorder token;
// always call it when the job is done.
type DistJob struct {
	Spec      *Spec
	Graph     dist.GraphSpec
	Placement []dist.PlacementEntry
	// Policies is the per-stream writer-policy table for dist.Options.
	Policies map[string]string
	QueueCap int
	// UOWs are the job's unit-of-work descriptors, pre-encoded so a job
	// server can relay them without knowing their types.
	UOWs []dist.RawUOW
	// Hosts are the worker names this job places filters on (a subset of
	// the names passed to NewDistJob).
	Hosts []string

	rec *Recorder
	m   *model
	tok uint64
}

// NewDistJob builds a DistJob from a spec, renaming the spec's hosts onto
// the given worker names (spec host i becomes hosts[i]); the spec must not
// need more hosts than are offered. The returned job holds a recorder
// registration — callers must Close it.
func NewDistJob(s *Spec, hosts []string) (*DistJob, error) {
	if len(s.Hosts) > len(hosts) {
		return nil, fmt.Errorf("conformance: spec needs %d hosts, mesh offers %d", len(s.Hosts), len(hosts))
	}
	c := s.Clone()
	rename := make(map[string]string, len(c.Hosts))
	for i := range c.Hosts {
		rename[c.Hosts[i].Name] = hosts[i]
		c.Hosts[i].Name = hosts[i]
	}
	for i := range c.Placement {
		c.Placement[i].Host = rename[c.Placement[i].Host]
	}
	for i := range c.Scale {
		c.Scale[i].Host = rename[c.Scale[i].Host]
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}

	rec := newRecorder()
	tok := registerRecorder(rec)
	j := &DistJob{
		Spec:     c,
		Policies: policyNames(c),
		QueueCap: c.QueueCap,
		UOWs:     make([]dist.RawUOW, 0, c.UOWs),
		Hosts:    c.hostNames(),
		rec:      rec,
		m:        buildModel(c),
		tok:      tok,
	}
	for _, f := range c.Filters {
		fs, err := newConfFilter(c, f, rec).distSpec(tok)
		if err != nil {
			releaseRecorder(tok)
			return nil, err
		}
		j.Graph.Filters = append(j.Graph.Filters, fs)
	}
	for _, st := range c.Streams {
		j.Graph.Streams = append(j.Graph.Streams, core.StreamSpec{Name: st.Name, From: st.From, To: st.To})
	}
	for _, p := range c.Placement {
		j.Placement = append(j.Placement, dist.PlacementEntry{Filter: p.Filter, Host: p.Host, Copies: p.Copies})
	}
	for _, w := range uowList(c) {
		raw, err := dist.EncodeUOW(w)
		if err != nil {
			releaseRecorder(tok)
			return nil, err
		}
		j.UOWs = append(j.UOWs, raw)
	}
	return j, nil
}

// Options returns the dist run options the job's mesh execution needs
// (per-stream policies, queue capacity, the elastic scale schedule when the
// spec carries one); the executor sets JobID itself.
func (j *DistJob) Options() dist.Options {
	return dist.Options{Policy: "RR", StreamPolicy: j.Policies, QueueCap: j.QueueCap, ScaleSchedule: j.Spec.Scale}
}

// Check diffs a completed run — its aggregated stats plus everything this
// job's filters recorded — against the oracle model, returning the
// violations (empty = conformant).
func (j *DistJob) Check(st *core.Stats) []string {
	return checkRun(j.m, st, j.rec, false)
}

// CheckAtLeastOnce diffs a completed run against the relaxed at-least-once
// oracle: every expected delivery and end-of-work must be seen at least its
// expected count, extras are allowed. This is the correct oracle for a job
// that failed partway and was re-run by a resilience layer (jobd retry):
// the aborted attempt's partial traffic legitimately inflates the records.
func (j *DistJob) CheckAtLeastOnce(st *core.Stats) []string {
	v := checkRun(j.m, st, j.rec, true)
	// The relaxed pass still rejects identities outside the model entirely;
	// those are cross-job leaks, not retry artifacts, and stay violations.
	return v
}

// Deliveries exposes the job's recorded identity multiset, so tests can
// assert two concurrent jobs' records never bleed into each other.
func (j *DistJob) Deliveries() map[DeliveryKey]int { return j.rec.Deliveries() }

// Close releases the job's recorder registration.
func (j *DistJob) Close() { releaseRecorder(j.tok) }
