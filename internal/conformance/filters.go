package conformance

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/dist"
)

// Every buffer a conformance pipeline moves carries a provenance identity:
// a source copy writes "F0.2#7" (filter.copyIndex#sequence) and every
// transform that forwards it appends ">"+its name. Identities are unique
// per stream, and the oracle model can predict the exact multiset each
// consumer must receive per unit of work without ever caring how the
// engines scheduled the copies. The identity travels as one of three wire
// shapes (Wire) so dist exercises the gob fallback and both built-in
// payload codecs.

func encodePayload(w Wire, id string) any {
	switch w {
	case WireBytes:
		return []byte(id)
	case WireFloats:
		f := make([]float32, len(id))
		for i := 0; i < len(id); i++ {
			f[i] = float32(id[i])
		}
		return f
	default:
		return id
	}
}

// decodePayload recovers the identity from any wire shape. It copies out of
// []byte immediately: on dist that slice aliases a pooled frame buffer that
// is recycled on the consumer's next Read.
func decodePayload(p any) (string, error) {
	switch v := p.(type) {
	case string:
		return v, nil
	case []byte:
		return string(v), nil
	case []float32:
		b := make([]byte, len(v))
		for i, f := range v {
			b[i] = byte(f)
		}
		return string(b), nil
	}
	return "", fmt.Errorf("conformance: unexpected payload type %T", p)
}

// synthSummary derives the deterministic chunk summary of one identity:
// conformance buffers stand in for chunks, so the summary is a pure hash of
// the identity — sources on every engine and the oracle model compute the
// identical summary without coordination. Min is uniform in [0,1) and Max
// in [Min, Min+1), a spread the generator's predicate draw is matched to.
func synthSummary(id string) dataset.ChunkSummary {
	h := fnv.New64a()
	h.Write([]byte(id))
	v := h.Sum64()
	min := float32(v%1024) / 1024
	return dataset.ChunkSummary{
		Min:       min,
		Max:       min + float32((v>>10)%1024)/1024,
		Occupancy: uint32(v % 7),
	}
}

// DeliveryKey identifies one delivered identity at one consumer filter.
type DeliveryKey struct {
	Consumer string
	Stream   string
	UOW      int
	ID       string
}

// EOWKey identifies one end-of-work observation: one consumer copy seeing
// an input stream close for one unit of work.
type EOWKey struct {
	Consumer string
	Stream   string
	UOW      int
}

// PruneKey identifies one pruned identity at one source filter: the owning
// copy evaluated the pushdown predicate and skipped the emission. Pruning
// happens before the buffer reaches any stream, so the key has no stream —
// an identity a source prunes is withheld from every output at once.
type PruneKey struct {
	Source string
	UOW    int
	ID     string
}

// Recorder accumulates what the pipeline's filters actually observed: a
// multiset of delivered identities and a count of end-of-work edges. It is
// shared by every copy of every filter in one run (including the dist
// workers, which live in-process for loopback conformance runs) and is
// what the oracle diffs against the model.
type Recorder struct {
	mu         sync.Mutex
	deliveries map[DeliveryKey]int
	eow        map[EOWKey]int
	pruned     map[PruneKey]int
}

func newRecorder() *Recorder {
	return &Recorder{
		deliveries: map[DeliveryKey]int{},
		eow:        map[EOWKey]int{},
		pruned:     map[PruneKey]int{},
	}
}

func (r *Recorder) delivery(consumer, stream string, uow int, id string) {
	r.mu.Lock()
	r.deliveries[DeliveryKey{consumer, stream, uow, id}]++
	r.mu.Unlock()
}

func (r *Recorder) endOfWork(consumer, stream string, uow int) {
	r.mu.Lock()
	r.eow[EOWKey{consumer, stream, uow}]++
	r.mu.Unlock()
}

func (r *Recorder) prune(source string, uow int, id string) {
	r.mu.Lock()
	r.pruned[PruneKey{source, uow, id}]++
	r.mu.Unlock()
}

// Deliveries returns a copy of the delivered-identity multiset.
func (r *Recorder) Deliveries() map[DeliveryKey]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[DeliveryKey]int, len(r.deliveries))
	for k, v := range r.deliveries {
		out[k] = v
	}
	return out
}

// EOW returns a copy of the end-of-work counts.
func (r *Recorder) EOW() map[EOWKey]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[EOWKey]int, len(r.eow))
	for k, v := range r.eow {
		out[k] = v
	}
	return out
}

// Pruned returns a copy of the pruned-identity multiset.
func (r *Recorder) Pruned() map[PruneKey]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[PruneKey]int, len(r.pruned))
	for k, v := range r.pruned {
		out[k] = v
	}
	return out
}

// ---- the one conformance filter (role-switched) ----

type confFilter struct {
	core.BaseFilter
	name    string
	role    Role
	emit    int
	inputs  []string
	outputs []string
	wires   map[string]Wire
	pred    *dataset.Predicate // pushdown predicate; nil = emit everything
	rec     *Recorder
}

func newConfFilter(s *Spec, f Filter, rec *Recorder) *confFilter {
	cf := &confFilter{name: f.Name, role: f.Role, emit: f.Emit, rec: rec,
		pred: s.Pred, wires: map[string]Wire{}}
	for _, st := range s.inputsOf(f.Name) {
		cf.inputs = append(cf.inputs, st.Name)
	}
	for _, st := range s.outputsOf(f.Name) {
		cf.outputs = append(cf.outputs, st.Name)
		cf.wires[st.Name] = st.Wire
	}
	return cf
}

func (f *confFilter) writeAll(ctx core.Ctx, id string) error {
	for _, out := range f.outputs {
		b := core.Buffer{Payload: encodePayload(f.wires[out], id), Size: len(id) + 16}
		if err := ctx.Write(out, b); err != nil {
			return err
		}
	}
	return nil
}

func (f *confFilter) Process(ctx core.Ctx) error {
	if f.role == RoleSource {
		for i := 0; i < f.emit; i++ {
			id := fmt.Sprintf("%s.%d#%d", f.name, ctx.CopyIndex(), i)
			// Near-storage pushdown: evaluate the predicate against the
			// identity's synthetic summary before emitting, exactly like a
			// store pruning a chunk before reading it. Pruned identities are
			// recorded so the oracle can prove pruned + delivered partition
			// the full multiset.
			if f.pred != nil && !f.pred.MatchSummary(synthSummary(id)) {
				f.rec.prune(f.name, ctx.UOW(), id)
				continue
			}
			if err := f.writeAll(ctx, id); err != nil {
				return err
			}
		}
		return nil
	}
	// Transforms and sinks drain their input streams sequentially. This is
	// deadlock-free because the generator sizes QueueCap above the largest
	// per-stream buffer count: an undrained stream fits entirely in its
	// consumer queue, so no producer ever blocks on it.
	for _, in := range f.inputs {
		for {
			b, ok := ctx.Read(in)
			if !ok {
				break
			}
			id, err := decodePayload(b.Payload)
			if err != nil {
				return fmt.Errorf("%s reading %s: %w", f.name, in, err)
			}
			f.rec.delivery(f.name, in, ctx.UOW(), id)
			if f.role == RoleTransform {
				if err := f.writeAll(ctx, id+">"+f.name); err != nil {
					return err
				}
			}
		}
		f.rec.endOfWork(f.name, in, ctx.UOW())
	}
	return nil
}

// ---- dist registration ----
//
// dist builds filters worker-side from a registered kind plus opaque
// params. Loopback conformance workers live in this process, so the params
// carry a token into a process-global recorder registry instead of trying
// to serialize the Recorder itself.

var (
	tokMu     sync.Mutex
	tokNext   uint64
	recorders = map[uint64]*Recorder{}
)

func registerRecorder(rec *Recorder) uint64 {
	tokMu.Lock()
	defer tokMu.Unlock()
	tokNext++
	recorders[tokNext] = rec
	return tokNext
}

func releaseRecorder(tok uint64) {
	tokMu.Lock()
	defer tokMu.Unlock()
	delete(recorders, tok)
}

func lookupRecorder(tok uint64) *Recorder {
	tokMu.Lock()
	defer tokMu.Unlock()
	return recorders[tok]
}

// distFilterKind is the one registered dist builder for every conformance
// filter; distParams selects role, streams, and recorder.
const distFilterKind = "conformance.filter"

type distParams struct {
	Name    string
	Role    Role
	Emit    int
	Inputs  []string
	Outputs []string
	Wires   map[string]Wire
	Token   uint64
	// Pred rides the setup frame as JSON, like the production StoreREParams
	// path: the pruning decision executes on the worker that owns the
	// source, never on the coordinator.
	Pred *dataset.Predicate `json:",omitempty"`
}

func init() {
	dist.RegisterFilter(distFilterKind, func(params []byte) (core.Filter, error) {
		var p distParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("conformance: bad filter params: %w", err)
		}
		rec := lookupRecorder(p.Token)
		if rec == nil {
			return nil, fmt.Errorf("conformance: no recorder for token %d (non-loopback worker?)", p.Token)
		}
		return &confFilter{
			name: p.Name, role: p.Role, emit: p.Emit,
			inputs: p.Inputs, outputs: p.Outputs, wires: p.Wires,
			pred: p.Pred, rec: rec,
		}, nil
	})
}

func (f *confFilter) distSpec(tok uint64) (dist.FilterSpec, error) {
	params, err := json.Marshal(distParams{
		Name: f.name, Role: f.role, Emit: f.emit,
		Inputs: f.inputs, Outputs: f.outputs, Wires: f.wires, Token: tok,
		Pred: f.pred,
	})
	if err != nil {
		return dist.FilterSpec{}, err
	}
	return dist.FilterSpec{Name: f.name, Kind: distFilterKind, Params: params}, nil
}
