package conformance

import (
	"flag"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/leakcheck"
)

// -conformance.seed reruns (and, on failure, shrinks) a single seed — the
// flag a failure report's reproduction command uses.
var seedFlag = flag.Int64("conformance.seed", -1, "run a single conformance seed instead of the sweep")

func conformanceSeeds() []int64 {
	if *seedFlag >= 0 {
		return []int64{*seedFlag}
	}
	n := 60 // -short still clears the acceptance floor of 50 seeds per engine pair
	if !testing.Short() {
		n = 150
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

// failReport renders a conformance failure: the original violation, the
// shrunk minimal reproduction, and the one-line repro command.
func failReport(t *testing.T, seed int64, fail *Failure, opts Options) {
	t.Helper()
	min, mf := Shrink(fail.Spec, opts, 0)
	shrunk := "shrink could not reproduce the failure (flaky?)"
	if mf != nil {
		shrunk = mf.Error()
	}
	t.Fatalf("conformance violation at seed %d:\n%v\n\nshrunk reproduction (%d filters, %d streams):\n%v\n\nreproduce with:\n  %s",
		seed, fail, len(min.Filters), len(min.Streams), shrunk, ReproCommand(seed))
}

// TestConformance is the differential sweep: every seed's generated
// pipeline must satisfy every oracle on all three engines.
func TestConformance(t *testing.T) {
	for _, seed := range conformanceSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			s := Generate(seed, GenConfig{})
			if fail := Check(s, Options{}); fail != nil {
				failReport(t, seed, fail, Options{})
			}
		})
	}
}

// TestConformanceFaults sweeps the relaxed oracle: a deterministic worker
// kill mid-run, recovery via UOW replanning, at-least-once delivery with
// nothing unexpected. Seeds without a guaranteed-to-fire kill victim are
// skipped; the sweep fails if every seed were to skip.
func TestConformanceFaults(t *testing.T) {
	n := int64(12)
	if !testing.Short() {
		n = 30
	}
	if *seedFlag >= 0 {
		n = 1
	}
	ran := 0
	for i := int64(0); i < n; i++ {
		seed := i
		if *seedFlag >= 0 {
			seed = *seedFlag
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			s := Generate(seed, GenConfig{})
			fail, ok := CheckFaults(s)
			if !ok {
				t.Skipf("seed %d: no qualifying kill victim", seed)
			}
			ran++
			if fail != nil {
				t.Fatalf("fault-mode violation at seed %d:\n%v\n\nreproduce with:\n  %s",
					seed, fail, ReproCommand(seed))
			}
		})
	}
	if ran == 0 && *seedFlag < 0 {
		t.Fatalf("no seed in 0..%d produced a qualifying kill victim", n-1)
	}
}

// TestConformanceRingTransport pins the in-process ring data plane under
// the full oracle set. The generator already flips ~half the sweep seeds
// to transport "auto"; this sweep forces strict "ring" — the dist engine
// errors rather than falling back to TCP, so a pass proves every oracle
// holds with the whole peer mesh on rings. Core and simrt ignore the
// field, keeping the differential baseline identical.
func TestConformanceRingTransport(t *testing.T) {
	n := int64(20)
	if !testing.Short() {
		n = 50
	}
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			s := Generate(seed, GenConfig{})
			s.Transport = "ring"
			if fail := Check(s, Options{}); fail != nil {
				failReport(t, seed, fail, Options{})
			}
		})
	}
}

// TestConformanceFaultsRing is the fault sweep over the ring transport: a
// deterministic worker kill must still be detected, replanned around, and
// the relaxed oracle must hold when peer data rides in-process rings (the
// kill trigger counts ring frames exactly like TCP frames).
func TestConformanceFaultsRing(t *testing.T) {
	n := int64(12)
	if !testing.Short() {
		n = 30
	}
	ran := 0
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			s := Generate(seed, GenConfig{})
			s.Transport = "ring"
			fail, ok := CheckFaults(s)
			if !ok {
				t.Skipf("seed %d: no qualifying kill victim", seed)
			}
			ran++
			if fail != nil {
				t.Fatalf("ring fault-mode violation at seed %d:\n%v", seed, fail)
			}
		})
	}
	if ran == 0 {
		t.Fatalf("no seed in 0..%d produced a qualifying kill victim", n-1)
	}
}

// TestConformanceElastic sweeps runtime-mutable copy sets: every seed's
// pipeline carries a scale schedule with at least one guaranteed scale-up
// and one guaranteed scale-down at work-cycle boundaries, and the full
// oracle set — per-UOW effective placements composed by the model — must
// hold on all three engines.
func TestConformanceElastic(t *testing.T) {
	n := int64(25)
	if !testing.Short() {
		n = 60
	}
	if *seedFlag >= 0 {
		n = 1
	}
	for i := int64(0); i < n; i++ {
		seed := i
		if *seedFlag >= 0 {
			seed = *seedFlag
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			s := Generate(seed, GenConfig{Elastic: true})
			var ups, downs int
			cur := map[[2]string]int{}
			for _, p := range s.Placement {
				cur[[2]string{p.Filter, p.Host}] = p.Copies
			}
			for _, step := range s.Scale {
				k := [2]string{step.Filter, step.Host}
				if step.Copies > cur[k] {
					ups++
				}
				if step.Copies < cur[k] {
					downs++
				}
				cur[k] = step.Copies
			}
			if ups < 1 || downs < 1 {
				t.Fatalf("generator must guarantee a scale-up and a scale-down, got up=%d down=%d:\n%s", ups, downs, s)
			}
			opts := Options{}
			if fail := Check(s, opts); fail != nil {
				failReport(t, seed, fail, opts)
			}
		})
	}
}

// TestConformancePushdown sweeps near-storage predicate pruning: every
// seed's pipeline carries a pushdown predicate (drawn after every base
// draw, so the base pipeline is seed-stable), sources evaluate the real
// dataset predicate against each identity's synthetic chunk summary, and
// the full oracle set — including pruning conservation: pruned plus
// delivered exactly partition the unpruned multiset — must hold on all
// three engines. The sweep itself must be non-vacuous: some identities
// pruned, some kept, and at least one seed where a source is genuinely
// split (both pruned and surviving identities).
func TestConformancePushdown(t *testing.T) {
	n := int64(25)
	if !testing.Short() {
		n = 60
	}
	if *seedFlag >= 0 {
		n = 1
	}
	var sweepPruned, sweepKept int
	partial := false
	for i := int64(0); i < n; i++ {
		seed := i
		if *seedFlag >= 0 {
			seed = *seedFlag
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			s := Generate(seed, GenConfig{Pushdown: true})
			if s.Pred == nil || s.Pred.Empty() {
				t.Fatalf("pushdown generator produced no predicate:\n%s", s)
			}
			// Seed stability: the predicate draw must not perturb the base
			// pipeline.
			base := s.Clone()
			base.Pred = nil
			if !reflect.DeepEqual(Generate(seed, GenConfig{}), base) {
				t.Fatalf("pushdown draw changed the base pipeline of seed %d", seed)
			}
			m := buildModel(s)
			var pruned, kept int
			for _, ids := range m.prunedIDs {
				for _, cnt := range ids {
					pruned += cnt
				}
			}
			for _, f := range s.Filters {
				if f.Role != RoleSource {
					continue
				}
				if outs := s.outputsOf(f.Name); len(outs) > 0 {
					for _, cnt := range m.ids[outs[0].Name] {
						kept += cnt
					}
				}
			}
			sweepPruned += pruned
			sweepKept += kept
			if pruned > 0 && kept > 0 {
				partial = true
			}
			if fail := Check(s, Options{}); fail != nil {
				failReport(t, seed, fail, Options{})
			}
		})
	}
	if *seedFlag >= 0 {
		return
	}
	if sweepPruned == 0 || sweepKept == 0 {
		t.Fatalf("vacuous sweep: %d identities pruned, %d kept across all seeds", sweepPruned, sweepKept)
	}
	if !partial {
		t.Fatal("no seed split a pipeline into both pruned and surviving identities")
	}
}

// TestConformanceShrinksInjectedViolation tests the harness against
// itself: discard every ack count before the oracle diff — a violation on
// any pipeline with demand-driven traffic — and require the shrinker to
// reduce the first failing seed to a minimal two-filter, one-stream
// reproduction with a printable repro command.
func TestConformanceShrinksInjectedViolation(t *testing.T) {
	leakcheck.Check(t)
	opts := Options{
		Engines: []string{"core"},
		Perturb: func(_ string, st *core.Stats) {
			for _, ss := range st.Streams {
				ss.Acks = 0
			}
		},
	}
	for seed := int64(0); seed < 50; seed++ {
		s := Generate(seed, GenConfig{})
		fail := Check(s, opts)
		if fail == nil {
			continue // no demand-driven stream with traffic on this seed
		}
		min, mf := Shrink(s, opts, 0)
		if mf == nil {
			t.Fatalf("shrink lost the injected violation for seed %d", seed)
		}
		if len(min.Filters) > 3 {
			t.Fatalf("shrunk to %d filters, want <= 3:\n%s", len(min.Filters), min)
		}
		if len(min.Streams) != 1 {
			t.Fatalf("shrunk to %d streams, want 1:\n%s", len(min.Streams), min)
		}
		repro := ReproCommand(seed)
		if !strings.Contains(repro, fmt.Sprintf("-conformance.seed=%d", seed)) {
			t.Fatalf("repro command %q does not pin the seed", repro)
		}
		t.Logf("seed %d shrank to:\n%srepro: %s", seed, min, repro)
		return
	}
	t.Fatal("no seed in 0..49 generated a demand-driven stream to violate")
}

// Same seed, same spec — the whole harness rests on this.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		a, b := Generate(seed, GenConfig{}), Generate(seed, GenConfig{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d generated two different specs:\n%s\n%s", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d generated an invalid spec: %v\n%s", seed, err, a)
		}
	}
}

// The model's conservation totals must match a hand-computed diamond.
func TestStreamTotalsDiamond(t *testing.T) {
	s := &Spec{
		Filters: []Filter{
			{Name: "A", Role: RoleSource, Emit: 3},
			{Name: "T", Role: RoleTransform},
			{Name: "K", Role: RoleSink},
		},
		Streams: []Stream{
			{Name: "s0", From: "A", To: "T", Policy: "RR"},
			{Name: "s1", From: "A", To: "K", Policy: "RR"},
			{Name: "s2", From: "T", To: "K", Policy: "RR"},
		},
		Placement: []Place{
			{Filter: "A", Host: "h0", Copies: 2},
			{Filter: "T", Host: "h0", Copies: 1},
			{Filter: "K", Host: "h0", Copies: 1},
		},
		Hosts:    []Host{{Name: "h0", Speed: 1}},
		UOWs:     1,
		QueueCap: 16,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	totals := streamTotals(s)
	// A: 2 copies x 3 buffers on each output; T forwards its 6 to s2.
	want := map[string]int{"s0": 6, "s1": 6, "s2": 6}
	if !reflect.DeepEqual(totals, want) {
		t.Fatalf("totals %v, want %v", totals, want)
	}
	m := buildModel(s)
	wantIDs := map[string]int{}
	for c := 0; c < 2; c++ {
		for i := 0; i < 3; i++ {
			wantIDs[fmt.Sprintf("A.%d#%d>T", c, i)] = 1
		}
	}
	if !reflect.DeepEqual(m.ids["s2"], wantIDs) {
		t.Fatalf("s2 multiset %v, want %v", m.ids["s2"], wantIDs)
	}
}
