package isoviz

import (
	"encoding/json"
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/dist"
	"datacutter/internal/volume"
)

// Distributed-worker registrations: these builders let any process that
// imports isoviz serve as a dist worker for the isosurface application.
// The coordinator ships only filter kinds and parameters; chunk sources
// are reconstructed worker-side (a synthetic field from its seed, or an
// on-disk store from its directory).

// FieldREParams parameterizes a ReadExtractFilter over a synthetic field
// source for distributed runs.
type FieldREParams struct {
	Seed       int64
	Plumes     int
	GX, GY, GZ int
	BX, BY, BZ int
}

// StoreREParams parameterizes a ReadExtractFilter over an on-disk store.
// Readahead/ReadaheadBytes configure chunk prefetching along the copy's
// planned read order; Mmap switches the store to memory-mapped reads.
// Pushdown/Pred enable near-storage predicate pruning: the params travel in
// the session setup frame, so the pruning decision executes on the worker
// that owns the store and pruned chunks never cross the network.
type StoreREParams struct {
	Dir            string
	Readahead      int
	ReadaheadBytes int64
	Mmap           bool
	Pushdown       bool              `json:",omitempty"`
	Pred           dataset.Predicate `json:",omitempty"`
}

// Distributed filter kind names.
const (
	KindREField  = "isoviz.RE-field"
	KindREStore  = "isoviz.RE-store"
	KindRasterAP = "isoviz.Ra-ap"
	KindRasterZB = "isoviz.Ra-zb"
	KindMerge    = "isoviz.M"
)

func init() {
	dist.RegisterPayload(View{})
	dist.RegisterPayload(TriBatch{})
	dist.RegisterPayload(PixBatch{})
	dist.RegisterPayload(ZChunk{})
	dist.RegisterPayload(VoxelBlock{})

	// Fast-path wire codecs (codec.go) for the per-buffer payloads; the gob
	// registrations above remain the fallback for control descriptors
	// (View) and anything shipped without a codec (VoxelBlock).
	dist.RegisterCodec(codecTriBatch, TriBatch{}, triBatchCodec{})
	dist.RegisterCodec(codecPixBatch, PixBatch{}, pixBatchCodec{})
	dist.RegisterCodec(codecZChunk, ZChunk{}, zChunkCodec{})

	dist.RegisterFilter(KindREField, func(params []byte) (core.Filter, error) {
		var p FieldREParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("isoviz: bad RE-field params: %w", err)
		}
		src := NewFieldSource(volume.NewPlumeField(p.Seed, p.Plumes), p.GX, p.GY, p.GZ, p.BX, p.BY, p.BZ)
		return &ReadExtractFilter{Source: src, Assign: AssignByCopy(src.Chunks()), Out: StreamTriangles}, nil
	})
	dist.RegisterFilter(KindREStore, func(params []byte) (core.Filter, error) {
		var p StoreREParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("isoviz: bad RE-store params: %w", err)
		}
		st, err := dataset.Open(p.Dir)
		if err != nil {
			return nil, err
		}
		if p.Mmap {
			if err := st.EnableMmap(); err != nil {
				return nil, err
			}
		}
		src := &StoreSource{St: st, Readahead: p.Readahead, ReadaheadBytes: p.ReadaheadBytes}
		return &ReadExtractFilter{
			Source: src, Assign: AssignByCopy(src.Chunks()), Out: StreamTriangles,
			Pushdown: p.Pushdown, Pred: p.Pred,
		}, nil
	})
	dist.RegisterFilter(KindRasterAP, func([]byte) (core.Filter, error) {
		return &RasterAPFilter{In: StreamTriangles, Out: StreamPixels}, nil
	})
	dist.RegisterFilter(KindRasterZB, func([]byte) (core.Filter, error) {
		return &RasterZFilter{In: StreamTriangles, Out: StreamPixels}, nil
	})
	dist.RegisterFilter(KindMerge, func([]byte) (core.Filter, error) {
		return &MergeFilter{In: StreamPixels}, nil
	})
}

// DistGraphField builds a GraphSpec for the RE–Ra–M pipeline over a
// synthetic field source.
func DistGraphField(p FieldREParams, alg Algorithm) (dist.GraphSpec, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return dist.GraphSpec{}, err
	}
	return distGraphRE(KindREField, raw, alg), nil
}

// DistGraphStore builds a GraphSpec for the RE–Ra–M pipeline over an
// on-disk store every worker can open. The params — including the pushdown
// predicate — ship in the session setup frame, so each RE copy prunes
// against its local summary sidecar before reading.
func DistGraphStore(p StoreREParams, alg Algorithm) (dist.GraphSpec, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return dist.GraphSpec{}, err
	}
	return distGraphRE(KindREStore, raw, alg), nil
}

func distGraphRE(kind string, params []byte, alg Algorithm) dist.GraphSpec {
	raster := KindRasterAP
	if alg == ZBuffer {
		raster = KindRasterZB
	}
	return dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "RE", Kind: kind, Params: params},
			{Name: "Ra", Kind: raster},
			{Name: "M", Kind: KindMerge},
		},
		Streams: []core.StreamSpec{
			{Name: StreamTriangles, From: "RE", To: "Ra"},
			{Name: StreamPixels, From: "Ra", To: "M"},
		},
	}
}
