package isoviz

import (
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/leakcheck"
)

// The real pipeline fed from an on-disk store must produce the same image
// as the in-memory field source (the store holds exact sampled data).
func TestStoreSourceMatchesFieldSource(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	m := dataset.Meta{
		GX: 33, GY: 33, GZ: 33, BX: 3, BY: 3, BZ: 3,
		Timesteps: 2, Files: 8, Seed: 17, Plumes: 4,
	}
	st, err := dataset.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	view := testView(64)
	run := func(src ChunkSource) [32]byte {
		spec := PipelineSpec{Config: ReadExtract, Alg: ActivePixel, Source: src, Assign: AssignByCopy(src.Chunks())}
		pl := core.NewPlacement().Place("RE", "h0", 1).Place("Ra", "h0", 2).Place("M", "h0", 1)
		img, _ := runPipeline(t, spec, pl, core.Options{UOWs: []any{view}})
		var sum [32]byte
		for i, c := range img.Color {
			sum[i%32] ^= c.R + c.G<<1 + c.B<<2
			_ = i
		}
		return sum
	}
	disk := run(&StoreSource{St: st})
	mem := run(NewFieldSource(st.DS.Field(), 33, 33, 33, 3, 3, 3))
	if disk != mem {
		t.Fatal("disk-backed pipeline renders differently from in-memory pipeline")
	}

	// The read-path fast modes must not change the image: chunk readahead
	// (bounded prefetcher along the planned order) and mmap reads.
	ra := run(&StoreSource{St: st, Readahead: 3, ReadaheadBytes: 64 << 10})
	if ra != mem {
		t.Fatal("readahead pipeline renders differently")
	}
	mmSt, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mmSt.Close()
	if err := mmSt.EnableMmap(); err != nil {
		t.Skipf("mmap unavailable: %v", err)
	}
	if mm := run(&StoreSource{St: mmSt, Readahead: 2}); mm != mem {
		t.Fatal("mmap+readahead pipeline renders differently")
	}
}

// AssignByDistribution must split a host's chunks disjointly among the
// copies placed on that host.
func TestAssignByDistributionSplitsWithinHost(t *testing.T) {
	ds, err := dataset.New(dataset.Meta{
		GX: 17, GY: 17, GZ: 17, BX: 4, BY: 4, BZ: 4,
		Timesteps: 1, Files: 8, Seed: 3, Plumes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := dataset.DistributeEven(ds.Files, []string{"a", "b"}, 1)
	pl := core.NewPlacement().Place("R", "a", 2).Place("R", "b", 1)
	assign := AssignByDistribution(ds, dist, pl, "R")

	seen := map[int]int{}
	ctxs := []fakeCtx{
		{idx: 0, total: 3, host: "a"},
		{idx: 1, total: 3, host: "a"},
		{idx: 2, total: 3, host: "b"},
	}
	for _, c := range ctxs {
		for _, chunk := range assign(c) {
			seen[chunk]++
		}
	}
	if len(seen) != ds.Chunks() {
		t.Fatalf("assignment covered %d of %d chunks", len(seen), ds.Chunks())
	}
	for chunk, n := range seen {
		if n != 1 {
			t.Fatalf("chunk %d assigned %d times", chunk, n)
		}
	}
	// The two copies on host a share that host's chunks roughly evenly.
	a0 := len(assign(ctxs[0]))
	a1 := len(assign(ctxs[1]))
	if a0 == 0 || a1 == 0 {
		t.Fatalf("intra-host split degenerate: %d/%d", a0, a1)
	}
	if diff := a0 - a1; diff < -1 || diff > 1 {
		t.Fatalf("intra-host split uneven: %d vs %d", a0, a1)
	}
}

// sendZBuffer must cover every pixel exactly once across its chunks.
func TestZBufferChunkingCoversFrame(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(96)
	spec := PipelineSpec{Config: ReadExtract, Alg: ZBuffer, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().Place("RE", "h0", 1).Place("Ra", "h0", 1).Place("M", "h0", 1)
	g := spec.Build()
	r, err := core.NewRunner(g, pl, core.Options{UOWs: []any{view}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Total Ra->M bytes = frame size exactly (one raster copy).
	want := int64(view.Width * view.Height * 7)
	if got := st.Streams[StreamPixels].Bytes; got != want {
		t.Fatalf("z-buffer transport %d bytes, want %d", got, want)
	}
}
