package isoviz

import (
	"encoding/hex"
	"reflect"
	"testing"

	"datacutter/internal/geom"
	"datacutter/internal/render"
)

func TestTriBatchCodecRoundTrip(t *testing.T) {
	in := TriBatch{Tris: []geom.Triangle{
		{
			P: [3]geom.Vec3{{X: 1, Y: 2, Z: 3}, {X: 4, Y: 5, Z: 6}, {X: 7, Y: 8, Z: 9}},
			N: [3]geom.Vec3{{X: 0, Y: 0, Z: 1}, {X: 0, Y: 1, Z: 0}, {X: 1, Y: 0, Z: 0}},
		},
		{
			P: [3]geom.Vec3{{X: -1, Y: -2, Z: -3}, {X: 0.5, Y: 0.25, Z: 0.125}, {}},
			N: [3]geom.Vec3{{X: 0, Y: 0, Z: -1}, {}, {}},
		},
	}}
	body, err := triBatchCodec{}.Append(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + 2*geom.TriangleBytes; len(body) != want {
		t.Fatalf("encoded %d bytes, want %d", len(body), want)
	}
	out, err := triBatchCodec{}.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.(TriBatch), in) {
		t.Fatalf("round trip mangled:\n got  %+v\n want %+v", out, in)
	}
	if _, err := (triBatchCodec{}).Decode(body[:len(body)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := (triBatchCodec{}).Decode([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestPixBatchCodecRoundTrip(t *testing.T) {
	in := PixBatch{Pixels: []render.Pixel{
		{X: 10, Y: 20, Depth: 0.5, C: render.RGB{R: 1, G: 2, B: 3}},
		{X: -1, Y: 1 << 20, Depth: -2.25, C: render.RGB{R: 255, G: 0, B: 128}},
	}}
	body, err := pixBatchCodec{}.Append(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + 2*render.PixelBytes; len(body) != want {
		t.Fatalf("encoded %d bytes, want %d", len(body), want)
	}
	out, err := pixBatchCodec{}.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.(PixBatch), in) {
		t.Fatalf("round trip mangled:\n got  %+v\n want %+v", out, in)
	}
	if _, err := (pixBatchCodec{}).Decode(body[:len(body)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// The PixBatch wire layout is field-wise and fixed (render.Pixel has
// interior padding in memory, so it cannot change shape silently); pin it.
func TestPixBatchCodecGoldenBytes(t *testing.T) {
	in := PixBatch{Pixels: []render.Pixel{
		{X: 1, Y: 2, Depth: 1.0, C: render.RGB{R: 0xAA, G: 0xBB, B: 0xCC}},
	}}
	body, err := pixBatchCodec{}.Append(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	const want = "01000000" + // count
		"01000000" + "02000000" + "0000803f" + "aabbcc"
	if got := hex.EncodeToString(body); got != want {
		t.Fatalf("wire bytes changed:\n got  %s\n want %s", got, want)
	}
}

func TestZChunkCodecRoundTrip(t *testing.T) {
	in := ZChunk{
		Off:   4096,
		Depth: []float32{1, 0.5, -0.25, 3e8},
		Color: []render.RGB{{R: 1, G: 2, B: 3}, {R: 4, G: 5, B: 6}},
	}
	body, err := zChunkCodec{}.Append(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := zChunkCodec{}.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.(ZChunk), in) {
		t.Fatalf("round trip mangled:\n got  %+v\n want %+v", out, in)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := (zChunkCodec{}).Decode(body[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

func TestCodecsRejectWrongType(t *testing.T) {
	if _, err := (triBatchCodec{}).Append(nil, PixBatch{}); err == nil {
		t.Fatal("TriBatch codec accepted PixBatch")
	}
	if _, err := (pixBatchCodec{}).Append(nil, ZChunk{}); err == nil {
		t.Fatal("PixBatch codec accepted ZChunk")
	}
	if _, err := (zChunkCodec{}).Append(nil, TriBatch{}); err == nil {
		t.Fatal("ZChunk codec accepted TriBatch")
	}
}

func TestEmptyBatches(t *testing.T) {
	for _, tc := range []struct {
		name  string
		enc   func() ([]byte, error)
		check func(any) bool
		dec   func([]byte) (any, error)
	}{
		{
			name:  "tri",
			enc:   func() ([]byte, error) { return triBatchCodec{}.Append(nil, TriBatch{}) },
			check: func(v any) bool { return len(v.(TriBatch).Tris) == 0 },
			dec:   triBatchCodec{}.Decode,
		},
		{
			name:  "pix",
			enc:   func() ([]byte, error) { return pixBatchCodec{}.Append(nil, PixBatch{}) },
			check: func(v any) bool { return len(v.(PixBatch).Pixels) == 0 },
			dec:   pixBatchCodec{}.Decode,
		},
		{
			name: "z",
			enc:  func() ([]byte, error) { return zChunkCodec{}.Append(nil, ZChunk{Off: 7}) },
			check: func(v any) bool {
				z := v.(ZChunk)
				return z.Off == 7 && len(z.Depth) == 0 && len(z.Color) == 0
			},
			dec: zChunkCodec{}.Decode,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			body, err := tc.enc()
			if err != nil {
				t.Fatal(err)
			}
			v, err := tc.dec(body)
			if err != nil {
				t.Fatal(err)
			}
			if !tc.check(v) {
				t.Fatalf("empty batch mangled: %+v", v)
			}
		})
	}
}
