package isoviz

import (
	"fmt"
	"testing"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/leakcheck"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.New(dataset.Meta{
		GX: 65, GY: 65, GZ: 65,
		BX: 4, BY: 4, BZ: 4,
		Timesteps: 3, Files: 16,
		Seed: 23, Plumes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestWorkloadEstimatesSkewAndTotals(t *testing.T) {
	ds := testDataset(t)
	w := NewWorkload(ds, 0.35)
	var total int64
	empty, busy := 0, 0
	for i := 0; i < ds.Chunks(); i++ {
		st := w.Stats(i, 0)
		if st.Cells != 16*16*16 {
			t.Fatalf("chunk %d cells = %d", i, st.Cells)
		}
		if st.Tris < 0 || st.ActiveCells > st.Cells {
			t.Fatalf("nonsense stats: %+v", st)
		}
		if st.Tris == 0 {
			empty++
		} else {
			busy++
		}
		total += int64(st.Tris)
	}
	if total != w.TotalTris(0) {
		t.Fatalf("TotalTris %d != sum %d", w.TotalTris(0), total)
	}
	if empty == 0 || busy == 0 {
		t.Fatalf("no spatial skew: %d empty, %d busy chunks", empty, busy)
	}
}

func TestWorkloadEvolvesAcrossTimesteps(t *testing.T) {
	ds := testDataset(t)
	w := NewWorkload(ds, 0.35)
	if w.TotalTris(0) == w.TotalTris(2) {
		t.Fatal("workload identical across timesteps")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	ds := testDataset(t)
	a, b := NewWorkload(ds, 0.35), NewWorkload(ds, 0.35)
	for i := 0; i < ds.Chunks(); i += 7 {
		if a.Stats(i, 1) != b.Stats(i, 1) {
			t.Fatalf("chunk %d stats differ", i)
		}
	}
}

// simSetup builds a uniform simulated cluster and a model pipeline on it.
func simSetup(t *testing.T, ds *dataset.Dataset, cfg Config, alg Algorithm, pol core.Policy, hosts, bg int) (*simrtRun, *cluster.Cluster) {
	t.Helper()
	k := sim.NewKernel()
	cl := cluster.New(k)
	var names []string
	for i := 0; i < hosts; i++ {
		h := cl.AddHost(cluster.HostSpec{
			Name: fmt.Sprintf("n%d", i), Cores: 1, Speed: 1,
			NICBandwidth: 50e6, NICOverhead: 20e-6,
			Disks: []cluster.DiskSpec{{SeekSeconds: 0.005, Bandwidth: 30e6}},
		})
		if i >= hosts/2 && bg > 0 {
			h.SetBackgroundJobs(bg)
		}
		names = append(names, h.Spec.Name)
	}
	w := NewWorkload(ds, 0.35)
	dist := dataset.DistributeEven(ds.Files, names, 1)
	pl := core.NewPlacement()
	spec := ModelSpec{Config: cfg, Alg: alg, W: w, Dist: dist, Assign: nil, Costs: DefaultCosts()}
	src := cfg.SourceFilter()
	for _, n := range names {
		pl.Place(src, n, 1)
	}
	if wk := cfg.WorkerFilter(); wk != "" && wk != src {
		for _, n := range names {
			pl.Place(wk, n, 1)
		}
	}
	if cfg == FullPipeline {
		for _, n := range names {
			pl.Place("E", n, 1)
		}
	}
	pl.Place("M", names[0], 1)
	spec.Assign = AssignByDistribution(ds, dist, pl, src)
	return &simrtRun{spec: spec, pl: pl, pol: pol}, cl
}

type simrtRun struct {
	spec ModelSpec
	pl   *core.Placement
	pol  core.Policy
}

func (r *simrtRun) run(t *testing.T, cl *cluster.Cluster, view View) (*core.Stats, *ModelMerge) {
	t.Helper()
	g := r.spec.Build()
	// Small stream buffers: the paper's runs had hundreds of buffers per
	// producer; scheduling tests need that granularity for DD to adapt.
	runner, err := simrt.NewRunner(g, r.pl, cl, simrt.Options{Policy: r.pol, UOWs: []any{view}, BufferBytes: 24 << 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := runner.Instances("M")[0].(*ModelMerge)
	return st, m
}

func TestModelPipelineRunsOnSimCluster(t *testing.T) {
	leakcheck.Check(t)
	ds := testDataset(t)
	for _, cfg := range []Config{FullPipeline, CombinedAll, ReadExtract, ExtractRaster} {
		for _, alg := range []Algorithm{ZBuffer, ActivePixel} {
			t.Run(fmt.Sprintf("%v/%v", cfg, alg), func(t *testing.T) {
				r, cl := simSetup(t, ds, cfg, alg, core.DemandDriven(), 4, 0)
				st, m := r.run(t, cl, DefaultView(0.35))
				if st.WallSeconds <= 0 {
					t.Fatal("no virtual time elapsed")
				}
				if m.Received == 0 || m.PixelsMerged == 0 {
					t.Fatalf("merge saw nothing: %+v", m)
				}
			})
		}
	}
}

// Table 1's shape must hold in the model too: AP ships more, smaller
// buffers than ZB.
func TestModelAPvsZBTransport(t *testing.T) {
	leakcheck.Check(t)
	ds := testDataset(t)
	view := DefaultView(0.35)
	view.Width, view.Height = 1024, 1024
	get := func(alg Algorithm) *core.StreamStats {
		r, cl := simSetup(t, ds, ReadExtract, alg, core.RoundRobin(), 4, 0)
		st, _ := r.run(t, cl, view)
		return st.Streams[StreamPixels]
	}
	zb, ap := get(ZBuffer), get(ActivePixel)
	if ap.Buffers <= zb.Buffers || ap.Bytes >= zb.Bytes {
		t.Fatalf("AP %d bufs/%d B vs ZB %d bufs/%d B: wrong shape",
			ap.Buffers, ap.Bytes, zb.Buffers, zb.Bytes)
	}
}

// Table 3's shape: under background load on half the hosts, DD shifts E->Ra
// buffers toward the unloaded hosts; RR does not.
func TestModelDDShiftsBuffersUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	ds := testDataset(t)
	view := DefaultView(0.35)
	share := func(pol core.Policy, bg int) (loaded, unloaded int64) {
		r, cl := simSetup(t, ds, ReadExtract, ActivePixel, pol, 4, bg)
		st, _ := r.run(t, cl, view)
		for host, n := range st.Streams[StreamTriangles].PerTargetHost {
			if host == "n2" || host == "n3" {
				loaded += n
			} else {
				unloaded += n
			}
		}
		return
	}
	ddL, ddU := share(core.DemandDriven(), 8)
	rrL, rrU := share(core.RoundRobin(), 8)
	// RR is oblivious: its split stays near even (per-producer cyclic
	// remainders bound the imbalance by 2 buffers per producer).
	if diff := rrU - rrL; diff < -8 || diff > 8 {
		t.Fatalf("RR shifted load: loaded=%d unloaded=%d", rrL, rrU)
	}
	if ddU <= ddL {
		t.Fatalf("DD did not shift buffers off loaded hosts: loaded=%d unloaded=%d", ddL, ddU)
	}
	if float64(ddU)/float64(ddL+1) <= float64(rrU)/float64(rrL+1) {
		t.Fatalf("DD shift (%d/%d) not stronger than RR (%d/%d)", ddU, ddL, rrU, rrL)
	}
}

// DD must beat RR on makespan under load imbalance (Table 4's shape).
func TestModelDDBeatsRRUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	ds := testDataset(t)
	view := DefaultView(0.35)
	mk := func(pol core.Policy) float64 {
		r, cl := simSetup(t, ds, ReadExtract, ActivePixel, pol, 4, 8)
		st, _ := r.run(t, cl, view)
		return st.WallSeconds
	}
	dd, rr := mk(core.DemandDriven()), mk(core.RoundRobin())
	if dd >= rr {
		t.Fatalf("DD (%.2fs) not faster than RR (%.2fs) under load", dd, rr)
	}
}

func TestModelDeterminism(t *testing.T) {
	leakcheck.Check(t)
	ds := testDataset(t)
	view := DefaultView(0.35)
	mk := func() float64 {
		r, cl := simSetup(t, ds, FullPipeline, ActivePixel, core.DemandDriven(), 4, 4)
		st, _ := r.run(t, cl, view)
		return st.WallSeconds
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("nondeterministic model run: %v vs %v", a, b)
	}
}

// The model twins must ship buffer counts in the same ballpark as the real
// filters on the same dataset (within the estimator's resolution-scaling
// error).
func TestModelBufferCountsTrackRealPipeline(t *testing.T) {
	leakcheck.Check(t)
	// Real run on the in-memory source.
	ds := testDataset(t)
	src := NewFieldSource(ds.Field(), 65, 65, 65, 4, 4, 4)
	view := View{Timestep: 0, Iso: 0.35, Width: 256, Height: 256, Camera: DefaultView(0.35).Camera}
	spec := PipelineSpec{Config: ReadExtract, Alg: ActivePixel, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().Place("RE", "h0", 1).Place("Ra", "h0", 1).Place("M", "h0", 1)
	g := spec.Build()
	runner, err := core.NewRunner(g, pl, core.Options{UOWs: []any{view}, BufferBytes: 24 << 10})
	if err != nil {
		t.Fatal(err)
	}
	realStats, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Model run, same dataset/view.
	r, cl := simSetup(t, ds, ReadExtract, ActivePixel, core.RoundRobin(), 1, 0)
	modelStats, _ := r.run(t, cl, view)

	rt := realStats.Streams[StreamTriangles].Buffers
	mt := modelStats.Streams[StreamTriangles].Buffers
	if mt < rt/3 || mt > rt*3 {
		t.Fatalf("model E->Ra buffers (%d) far from real (%d)", mt, rt)
	}
}
