package isoviz

import (
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/obs"
	"datacutter/internal/volume"
)

// ChunkSource supplies volume chunks to read filters. Implementations: a
// field sampled on demand (in-memory synthetic storage) or an on-disk
// chunk store.
type ChunkSource interface {
	Chunks() int
	Block(i int) volume.Block
	Load(i int, timestep int) (*volume.Volume, error)
}

// FieldSource samples a synthetic field on demand — the in-memory stand-in
// for disk storage, used by tests and examples.
type FieldSource struct {
	Fld    volume.Field
	Blocks []volume.Block
}

// NewFieldSource partitions a (gx,gy,gz) grid into bx*by*bz chunks backed
// by field sampling.
func NewFieldSource(f volume.Field, gx, gy, gz, bx, by, bz int) *FieldSource {
	return &FieldSource{Fld: f, Blocks: volume.Partition(gx, gy, gz, bx, by, bz)}
}

// Chunks implements ChunkSource.
func (s *FieldSource) Chunks() int { return len(s.Blocks) }

// Block implements ChunkSource.
func (s *FieldSource) Block(i int) volume.Block { return s.Blocks[i] }

// Load implements ChunkSource.
func (s *FieldSource) Load(i, timestep int) (*volume.Volume, error) {
	v := volume.NewBlockVolume(s.Blocks[i])
	volume.FillBlock(s.Fld, v, float64(timestep))
	return v, nil
}

// StoreSource reads chunks from an on-disk dataset store. With Readahead
// set, read filters that know their chunk order up front overlap storage
// latency with compute through a dataset.Prefetcher (see PlanLoad);
// ReadaheadBytes optionally bounds the prefetched-but-unconsumed bytes.
type StoreSource struct {
	St             *dataset.Store
	Readahead      int   // chunks to prefetch ahead; 0 = synchronous reads
	ReadaheadBytes int64 // byte budget for prefetched chunks; 0 = unbounded
}

// Chunks implements ChunkSource.
func (s *StoreSource) Chunks() int { return s.St.DS.Chunks() }

// Block implements ChunkSource.
func (s *StoreSource) Block(i int) volume.Block { return s.St.DS.Block(i) }

// Load implements ChunkSource.
func (s *StoreSource) Load(i, timestep int) (*volume.Volume, error) {
	return s.St.ReadChunk(i, timestep)
}

// Prune implements PrunableSource by delegating to the store's summary
// index (dataset.Store.Prune).
func (s *StoreSource) Prune(chunks []int, timestep int, pred dataset.Predicate) []int {
	return s.St.Prune(chunks, timestep, pred)
}

// SetObserver forwards the engine's observer to the store so pushdown
// metrics (dataset.chunks_pruned, dataset.bytes_skipped) are published.
func (s *StoreSource) SetObserver(o *obs.Observer) { s.St.SetObserver(o) }

// PrunableSource is a ChunkSource whose storage tier can evaluate a
// predicate over chunk ids without reading chunk data. Read filters with
// Pushdown enabled consult it before planning loads; sources that cannot
// prune (e.g. FieldSource) simply don't implement it and every chunk is
// read, which is always correct.
type PrunableSource interface {
	ChunkSource
	Prune(chunks []int, timestep int, pred dataset.Predicate) []int
}

// forwardObserver hands the engine's observer to a source that carries
// instrumentation (StoreSource does; FieldSource doesn't). Read filters use
// it to implement core.ObserverSetter without knowing the source type.
func forwardObserver(src ChunkSource, o *obs.Observer) {
	if s, ok := src.(interface{ SetObserver(*obs.Observer) }); ok {
		s.SetObserver(o)
	}
}

// pruneChunks applies pushdown for a read filter: the view's iso-value is
// compiled into a predicate, intersected with the filter's extra predicate,
// and evaluated by the source's storage tier. Disabled pushdown or an
// unprunable source returns chunks unchanged.
func pruneChunks(src ChunkSource, chunks []int, view View, extra dataset.Predicate, enabled bool) []int {
	if !enabled {
		return chunks
	}
	ps, ok := src.(PrunableSource)
	if !ok {
		return chunks
	}
	return ps.Prune(chunks, view.Timestep, dataset.IsoPredicate(view.Iso).And(extra))
}

// PlannedSource is a ChunkSource that can exploit an announced read order.
// PlanLoad returns a load function equivalent to Load for exactly that
// sequence of requests, plus a stop that releases prefetch resources (call
// it even after completing the plan).
type PlannedSource interface {
	ChunkSource
	PlanLoad(plan []dataset.ChunkRef) (load func(chunk, timestep int) (*volume.Volume, error), stop func())
}

// PlanLoad implements PlannedSource: requests following the plan are served
// from a bounded prefetcher that reads ahead while the caller computes;
// out-of-plan requests fall back to a synchronous read.
func (s *StoreSource) PlanLoad(plan []dataset.ChunkRef) (func(chunk, timestep int) (*volume.Volume, error), func()) {
	if s.Readahead <= 0 {
		return s.Load, func() {}
	}
	p := dataset.NewPrefetcher(s.St, plan, s.Readahead, s.ReadaheadBytes)
	load := func(chunk, timestep int) (*volume.Volume, error) {
		ref, v, err, ok := p.Next()
		if ok && ref.Chunk == chunk && ref.Timestep == timestep {
			return v, err
		}
		// Caller deviated from the plan (or outran it): serve directly.
		return s.St.ReadChunk(chunk, timestep)
	}
	return load, p.Close
}

// planLoad resolves the load function a read filter should use for visiting
// chunks at timestep in order: prefetching when src announces PlanLoad
// support, plain Load otherwise. Callers must invoke stop when done.
func planLoad(src ChunkSource, chunks []int, timestep int) (func(chunk, timestep int) (*volume.Volume, error), func()) {
	ps, ok := src.(PlannedSource)
	if !ok {
		return src.Load, func() {}
	}
	plan := make([]dataset.ChunkRef, len(chunks))
	for i, c := range chunks {
		plan[i] = dataset.ChunkRef{Chunk: c, Timestep: timestep}
	}
	return ps.PlanLoad(plan)
}

// Assign decides which chunks a given read-filter copy retrieves. The
// paper's placement puts a read copy on each storage node to read the node's
// local files; these helpers reproduce that and a simple modulo fallback.
type Assign func(ctx core.Ctx) []int

// AssignByCopy deals chunks round-robin over the copies of the read filter
// (chunk i goes to copy i mod totalCopies).
func AssignByCopy(nchunks int) Assign {
	return func(ctx core.Ctx) []int {
		var out []int
		for i := ctx.CopyIndex(); i < nchunks; i += ctx.TotalCopies() {
			out = append(out, i)
		}
		return out
	}
}

// AssignByDistribution gives each read copy the chunks stored on its host
// (per the dataset's file distribution). When several read copies share a
// host, they deal the host's chunks round-robin using their rank among the
// host's copies, derived from the placement.
func AssignByDistribution(ds *dataset.Dataset, dist *dataset.Distribution, pl *core.Placement, filterName string) Assign {
	// Precompute the global copy index ranges per host, mirroring the
	// engines' copy numbering (placement order).
	type hostRange struct {
		host  string
		first int
		n     int
	}
	var ranges []hostRange
	idx := 0
	for _, e := range pl.Of(filterName) {
		ranges = append(ranges, hostRange{e.Host, idx, e.Copies})
		idx += e.Copies
	}
	return func(ctx core.Ctx) []int {
		var rank, n int
		for _, r := range ranges {
			if ctx.CopyIndex() >= r.first && ctx.CopyIndex() < r.first+r.n {
				rank = ctx.CopyIndex() - r.first
				n = r.n
				break
			}
		}
		if n == 0 {
			// The running placement does not match the one this assignment
			// was built from; reading nothing is safer than guessing (and a
			// zero stride would loop forever).
			return nil
		}
		hostChunks := dataset.ChunksOnHost(ds, dist, ctx.Host())
		var out []int
		for i := rank; i < len(hostChunks); i += n {
			out = append(out, hostChunks[i])
		}
		return out
	}
}
