package isoviz

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/dist"
	"datacutter/internal/geom"
	"datacutter/internal/leakcheck"
	"datacutter/internal/mcubes"
	"datacutter/internal/obs"
	"datacutter/internal/render"
)

// Predicate pushdown is a correctness-critical optimization: a wrongly
// pruned chunk silently deletes part of the isosurface. The property test
// below is the primary oracle — across seeded random datasets and random
// iso-values, a pruned run must render the byte-identical image (depth AND
// color planes) of the unpruned run, and every chunk the predicate prunes
// must be provably triangle-free (summary tightness).

// pushdownPipeline renders one view through the full R-E-Ra-M pipeline
// with several copies per stage (exercising the per-copy pruning path).
func pushdownPipeline(t *testing.T, src ChunkSource, view View, pushdown bool) *render.ZBuffer {
	t.Helper()
	spec := PipelineSpec{
		Config: FullPipeline, Alg: ZBuffer,
		Source: src, Assign: AssignByCopy(src.Chunks()),
		Pushdown: pushdown,
	}
	pl := core.NewPlacement().
		Place("R", "h0", 2).
		Place("E", "h0", 2).
		Place("Ra", "h0", 2).
		Place("M", "h0", 1)
	img, _ := runPipeline(t, spec, pl, core.Options{UOWs: []any{view}})
	return img
}

func TestPushdownPropertyByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	seeds := []int64{101, 202, 303}
	trials := 6
	if testing.Short() {
		seeds = seeds[:1]
		trials = 3
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := dataset.Meta{
				GX: 33, GY: 33, GZ: 25, BX: 3, BY: 3, BZ: 3,
				Timesteps: 2, Files: 4,
				Seed: seed, Plumes: 3 + rng.Intn(3),
			}
			st, err := dataset.Create(t.TempDir(), m)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			src := &StoreSource{St: st}
			all := make([]int, st.DS.Chunks())
			for i := range all {
				all[i] = i
			}

			prunedEver := 0
			for trial := 0; trial < trials; trial++ {
				// Spans below the background (nothing prunable) through above
				// every plume peak (everything pruned).
				iso := float32(rng.Float64() * 1.3)
				ts := rng.Intn(m.Timesteps)
				view := View{Timestep: ts, Iso: iso, Width: 64, Height: 64, Camera: geom.DefaultCamera()}

				plain := pushdownPipeline(t, src, view, false)
				pruned := pushdownPipeline(t, src, view, true)
				if !plain.Equal(pruned) {
					t.Fatalf("iso %g t%d: pruned image differs from unpruned", iso, ts)
				}

				// Tightness: everything the predicate discards must emit zero
				// triangles — the summaries' min/max is exact, so no chunk is
				// both pruned and crossing.
				survived := map[int]bool{}
				for _, c := range st.Prune(all, ts, dataset.IsoPredicate(iso)) {
					survived[c] = true
				}
				for c := 0; c < st.DS.Chunks(); c++ {
					if survived[c] {
						continue
					}
					prunedEver++
					v, err := st.ReadChunk(c, ts)
					if err != nil {
						t.Fatal(err)
					}
					tris := 0
					mcubes.Walk(v, iso, func(geom.Triangle) { tris++ })
					if tris > 0 {
						t.Fatalf("chunk %d pruned at iso %g t%d but emits %d triangles", c, iso, ts, tris)
					}
				}
			}
			if prunedEver == 0 {
				t.Fatal("no chunk was ever pruned across all trials; property test is vacuous")
			}
		})
	}
}

// Pushdown over a source that cannot prune (FieldSource) and over a store
// whose sidecar is absent must both be silent no-ops: same image, nothing
// skipped.
func TestPushdownDegradesWithoutSummaries(t *testing.T) {
	leakcheck.Check(t)
	view := testView(64)

	fieldSrc := testSource()
	plain := pushdownPipeline(t, fieldSrc, view, false)
	if got := pushdownPipeline(t, fieldSrc, view, true); !plain.Equal(got) {
		t.Fatal("pushdown over an unprunable source changed the image")
	}

	// A store created with summaries, then stripped of them (a pre-pushdown
	// dataset, datagen -no-index): Pushdown stays on but must degrade to
	// reading everything.
	dir := t.TempDir()
	m := dataset.Meta{
		GX: 33, GY: 33, GZ: 33, BX: 3, BY: 3, BZ: 3,
		Timesteps: 2, Files: 4, Seed: 17, Plumes: 4,
	}
	created, err := dataset.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	created.Close()
	if err := os.Remove(filepath.Join(dir, dataset.SummaryFile)); err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	src := &StoreSource{St: st}
	diskPlain := pushdownPipeline(t, src, view, false)
	if got := pushdownPipeline(t, src, view, true); !diskPlain.Equal(got) {
		t.Fatal("pushdown over a store without a sidecar changed the image")
	}
}

// The engine must hand its observer to the read filters (core.ObserverSetter
// -> StoreSource -> Store), so pruning lands in the metrics registry.
func TestPushdownMetricsReachRegistry(t *testing.T) {
	leakcheck.Check(t)
	m := dataset.Meta{
		GX: 33, GY: 33, GZ: 33, BX: 3, BY: 3, BZ: 3,
		Timesteps: 1, Files: 4, Seed: 17, Plumes: 4,
	}
	st, err := dataset.Create(t.TempDir(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	src := &StoreSource{St: st}
	view := testView(64)
	view.Timestep = 0
	view.Iso = 1.5 // sparse: above all but the strongest plume overlaps

	// Expected counts from a direct Prune call with the same predicate the
	// pipeline compiles.
	all := make([]int, st.DS.Chunks())
	for i := range all {
		all[i] = i
	}
	survivors := st.Prune(all, 0, dataset.IsoPredicate(view.Iso))
	wantPruned := int64(st.DS.Chunks() - len(survivors))
	if wantPruned == 0 {
		t.Fatal("iso prunes nothing; bad test scene")
	}
	var wantSkipped int64
	kept := map[int]bool{}
	for _, c := range survivors {
		kept[c] = true
	}
	for c := 0; c < st.DS.Chunks(); c++ {
		if !kept[c] {
			wantSkipped += int64(st.DS.ChunkBytes(c))
		}
	}

	reg := obs.NewRegistry()
	spec := PipelineSpec{
		Config: ReadExtract, Alg: ActivePixel,
		Source: src, Assign: AssignByCopy(src.Chunks()),
		Pushdown: true,
	}
	pl := core.NewPlacement().Place("RE", "h0", 2).Place("Ra", "h0", 2).Place("M", "h0", 1)
	runPipeline(t, spec, pl, core.Options{UOWs: []any{view}, Obs: obs.New(nil, reg)})

	if got := reg.Counter("dataset.chunks_pruned").Value(); got != wantPruned {
		t.Fatalf("chunks_pruned = %d, want %d", got, wantPruned)
	}
	if got := reg.Counter("dataset.bytes_skipped").Value(); got != wantSkipped {
		t.Fatalf("bytes_skipped = %d, want %d", got, wantSkipped)
	}
}

// On the distributed engine the predicate travels inside StoreREParams in
// the setup frame, so pruning runs on the worker that owns the store: the
// triangle traffic must be unchanged while the pruning counters accumulate
// on the worker's registry, not the coordinator's.
func TestPushdownDistNearStorage(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	m := dataset.Meta{
		GX: 33, GY: 33, GZ: 33, BX: 3, BY: 3, BZ: 3,
		Timesteps: 1, Files: 4, Seed: 17, Plumes: 4,
	}
	st, err := dataset.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	view := testView(64)
	view.Timestep = 0
	run := func(pushdown bool) (triBytes int64, prunedChunks int64) {
		graph, err := DistGraphStore(StoreREParams{Dir: dir, Pushdown: pushdown}, ActivePixel)
		if err != nil {
			t.Fatal(err)
		}
		workerReg := obs.NewRegistry()
		addrs := map[string]string{}
		for _, host := range []string{"w0", "w1"} {
			w, err := dist.NewWorker("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			w.SetObserver(obs.New(nil, workerReg))
			go w.Serve()
			defer w.Close()
			addrs[host] = w.Addr()
		}
		placement := []dist.PlacementEntry{
			{Filter: "RE", Host: "w0", Copies: 1},
			{Filter: "RE", Host: "w1", Copies: 1},
			{Filter: "Ra", Host: "w1", Copies: 2},
			{Filter: "M", Host: "w0", Copies: 1},
		}
		stats, err := dist.Run(addrs, graph, placement, dist.Options{}, []any{view})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Streams[StreamTriangles].Bytes, workerReg.Counter("dataset.chunks_pruned").Value()
	}

	offBytes, offPruned := run(false)
	onBytes, onPruned := run(true)
	if offPruned != 0 {
		t.Fatalf("pushdown off pruned %d chunks", offPruned)
	}
	if onPruned == 0 {
		t.Fatal("pushdown on pruned nothing on the workers")
	}
	if offBytes != onBytes {
		t.Fatalf("triangle traffic changed under pushdown: %d vs %d bytes", offBytes, onBytes)
	}
}
