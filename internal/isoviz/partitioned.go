package isoviz

import (
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/geom"
	"datacutter/internal/mcubes"
	"datacutter/internal/render"
)

// Image-space partitioning — the hybrid strategy the paper's conclusions
// propose (§6): "we could partition the image space into subregions among
// the raster filters, thus eliminating the merge filter['s bottleneck] …
// a hybrid strategy that combines image-partitioning and
// image-replication". The screen is cut into horizontal bands; each band
// has its own raster filter (which may itself be transparently replicated
// — the replication axis), and the producer routes each triangle to every
// band its screen projection overlaps. Band rasterizers scissor to their
// strip, so bands stay disjoint and the merge filter's work drops from
// "every copy's winning pixels" to "each winning pixel once".

// TriBandStream names the triangle stream feeding band i.
func TriBandStream(i int) string { return fmt.Sprintf("tri%d", i) }

// PixBandStream names the pixel stream from band i's rasterizer.
func PixBandStream(i int) string { return fmt.Sprintf("pix%d", i) }

// BandFilterName names band i's raster filter.
func BandFilterName(i int) string { return fmt.Sprintf("Ra%d", i) }

// ReadExtractRouteFilter is the RE stage of the partitioned pipeline: it
// reads chunks, extracts triangles, and routes each triangle to the bands
// its screen-space bounding box overlaps (triangles spanning a band border
// go to both; scissoring keeps the result exact).
type ReadExtractRouteFilter struct {
	core.BaseFilter
	Source ChunkSource
	Assign Assign
	Bands  int
}

// Process implements core.Filter.
func (f *ReadExtractRouteFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	if f.Bands < 1 {
		return fmt.Errorf("isoviz: partitioned pipeline needs >= 1 band")
	}
	m := view.Camera.Matrix(view.Width, view.Height)
	packers := make([]*triPacker, f.Bands)
	for i := range packers {
		packers[i] = newTriPacker(ctx, TriBandStream(i))
	}

	route := func(t geom.Triangle) error {
		minY, maxY := float32(0), float32(0)
		first := true
		for _, p := range t.P {
			sp, w := m.Apply(p)
			if w <= 0 {
				return nil // behind the eye: the rasterizer would cull it
			}
			if first {
				minY, maxY = sp.Y, sp.Y
				first = false
				continue
			}
			if sp.Y < minY {
				minY = sp.Y
			}
			if sp.Y > maxY {
				maxY = sp.Y
			}
		}
		// Generous one-pixel margin: routing a triangle to an extra band
		// is harmless (its scissor discards it); missing a band would drop
		// pixels.
		y0 := int(minY) - 1
		y1 := int(maxY) + 1
		if y1 < 0 || y0 > view.Height-1 {
			return nil // fully off screen: early cull
		}
		if y0 < 0 {
			y0 = 0
		}
		if y1 > view.Height-1 {
			y1 = view.Height - 1
		}
		b0 := render.BandOf(view.Height, f.Bands, y0)
		b1 := render.BandOf(view.Height, f.Bands, y1)
		for b := b0; b <= b1; b++ {
			if err := packers[b].add(ctx, t); err != nil {
				return err
			}
		}
		return nil
	}

	chunks := f.Assign(ctx)
	load, stop := planLoad(f.Source, chunks, view.Timestep)
	defer stop()
	for _, chunk := range chunks {
		v, err := load(chunk, view.Timestep)
		if err != nil {
			return fmt.Errorf("isoviz: read chunk %d: %w", chunk, err)
		}
		var werr error
		mcubes.Walk(v, view.Iso, func(t geom.Triangle) {
			if werr == nil {
				werr = route(t)
			}
		})
		if werr != nil {
			return werr
		}
		for _, p := range packers {
			if err := p.flush(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// RasterBandAPFilter rasterizes one screen band with the active-pixel
// algorithm. Transparent copies of a band filter replicate within the
// partition (the hybrid's replication axis).
type RasterBandAPFilter struct {
	In, Out     string
	Band, Bands int
	view        View
	st          *apState
}

// Init implements core.Filter.
func (f *RasterBandAPFilter) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	ctx.DeclareBuffer(f.Out, 0, WPABufferBytes)
	f.view = view
	return nil
}

// Process implements core.Filter.
func (f *RasterBandAPFilter) Process(ctx core.Ctx) error {
	f.st = newAPState(ctx, f.view, f.Out)
	y0, y1 := render.Band(f.view.Height, f.Bands, f.Band)
	f.st.rr.SetScissor(y0, y1)
	f.st.ctx = ctx
	defer func() { f.st.ctx = nil }()
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			f.st.ap.FlushRemaining()
			return f.st.werr
		}
		tb, ok := b.Payload.(TriBatch)
		if !ok {
			return fmt.Errorf("isoviz: band raster got %T", b.Payload)
		}
		f.st.rr.DrawAll(tb.Tris, f.st.ap)
		f.st.ap.FlushRemaining()
		if f.st.werr != nil {
			return f.st.werr
		}
	}
}

// Finalize implements core.Filter.
func (f *RasterBandAPFilter) Finalize(core.Ctx) error {
	f.st = nil
	return nil
}

// PartitionedSpec assembles the hybrid pipeline: RE routes triangles to
// `Bands` band rasterizers, whose disjoint pixel streams a single merge
// filter assembles (its per-pixel work no longer grows with the copy
// count).
type PartitionedSpec struct {
	Bands  int
	Source ChunkSource
	Assign Assign
}

// Build constructs the partitioned graph: filters "RE", "Ra0".."Ra<K-1>",
// and "M".
func (s PartitionedSpec) Build() *core.Graph {
	g := core.NewGraph()
	g.AddFilter("RE", func() core.Filter {
		return &ReadExtractRouteFilter{Source: s.Source, Assign: s.Assign, Bands: s.Bands}
	})
	var ins []string
	for i := 0; i < s.Bands; i++ {
		i := i
		name := BandFilterName(i)
		g.AddFilter(name, func() core.Filter {
			return &RasterBandAPFilter{In: TriBandStream(i), Out: PixBandStream(i), Band: i, Bands: s.Bands}
		})
		g.Connect("RE", name, TriBandStream(i))
		g.Connect(name, "M", PixBandStream(i))
		ins = append(ins, PixBandStream(i))
	}
	g.AddFilter("M", func() core.Filter { return &MergeFilter{Ins: ins} })
	return g
}
