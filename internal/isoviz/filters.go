package isoviz

import (
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/geom"
	"datacutter/internal/mcubes"
	"datacutter/internal/obs"
	"datacutter/internal/render"
	"datacutter/internal/volume"
)

// viewOf extracts the View descriptor from the unit of work.
func viewOf(ctx core.Ctx) (View, error) {
	v, ok := ctx.Work().(View)
	if !ok {
		return View{}, fmt.Errorf("isoviz: unit of work is %T, want isoviz.View", ctx.Work())
	}
	return v, nil
}

// ---- Read filter (R) ----

// ReadFilter retrieves the chunks assigned to this copy and writes each as
// one buffer on its output stream. With Pushdown set, the view's iso-value
// (and the optional Pred) is evaluated against the source's chunk summaries
// first, so provably contribution-free chunks are never read.
type ReadFilter struct {
	core.BaseFilter
	Source   ChunkSource
	Assign   Assign
	Out      string // output stream (StreamVoxels in the standard graphs)
	Pushdown bool
	Pred     dataset.Predicate // extra constraint ANDed with the view's
}

// SetObserver implements core.ObserverSetter (near-storage metrics).
func (f *ReadFilter) SetObserver(o *obs.Observer) { forwardObserver(f.Source, o) }

// Process implements core.Filter.
func (f *ReadFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	chunks := pruneChunks(f.Source, f.Assign(ctx), view, f.Pred, f.Pushdown)
	load, stop := planLoad(f.Source, chunks, view.Timestep)
	defer stop()
	for _, chunk := range chunks {
		v, err := load(chunk, view.Timestep)
		if err != nil {
			return fmt.Errorf("isoviz: read chunk %d: %w", chunk, err)
		}
		if err := ctx.Write(f.Out, core.Buffer{Payload: VoxelBlock{V: v}, Size: v.Bytes()}); err != nil {
			return err
		}
	}
	return nil
}

// ---- Extract filter (E) ----

// triPacker accumulates extracted triangles and emits fixed-size buffers:
// when the batch reaches the stream's buffer size or an input buffer has
// been fully processed, the batch is sent (paper §3.1.1).
type triPacker struct {
	out   string
	cap   int
	batch []geom.Triangle
}

func newTriPacker(ctx core.Ctx, out string) *triPacker {
	capTris := ctx.BufferBytes(out) / geom.TriangleBytes
	if capTris < 1 {
		capTris = 1
	}
	return &triPacker{out: out, cap: capTris, batch: make([]geom.Triangle, 0, capTris)}
}

func (p *triPacker) add(ctx core.Ctx, t geom.Triangle) error {
	p.batch = append(p.batch, t)
	if len(p.batch) >= p.cap {
		return p.flush(ctx)
	}
	return nil
}

func (p *triPacker) flush(ctx core.Ctx) error {
	if len(p.batch) == 0 {
		return nil
	}
	tris := make([]geom.Triangle, len(p.batch))
	copy(tris, p.batch)
	p.batch = p.batch[:0]
	b := TriBatch{Tris: tris}
	return ctx.Write(p.out, core.Buffer{Payload: b, Size: b.Bytes()})
}

// extractBlock runs isosurface extraction on one chunk, feeding the packer.
func extractBlock(ctx core.Ctx, v *volume.Volume, iso float32, p *triPacker) error {
	var werr error
	mcubes.Walk(v, iso, func(t geom.Triangle) {
		if werr == nil {
			werr = p.add(ctx, t)
		}
	})
	return werr
}

// ExtractFilter turns voxel chunks into triangle batches via marching
// cubes. Voxels are independent, so any number of transparent copies may
// run (paper §3.1.1).
type ExtractFilter struct {
	core.BaseFilter
	In, Out string
}

// Process implements core.Filter.
func (f *ExtractFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	packer := newTriPacker(ctx, f.Out)
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			return nil
		}
		vb, ok := b.Payload.(VoxelBlock)
		if !ok {
			return fmt.Errorf("isoviz: extract got %T", b.Payload)
		}
		if err := extractBlock(ctx, vb.V, view.Iso, packer); err != nil {
			return err
		}
		// End of input buffer: send what we have (keeps the pipeline busy).
		if err := packer.flush(ctx); err != nil {
			return err
		}
	}
}

// ---- Raster filter (Ra), z-buffer variant ----

// zbufState is the per-unit-of-work accumulator of a z-buffer raster copy.
type zbufState struct {
	z  *render.ZBuffer
	rr *render.Raster
}

func newZbufState(view View) *zbufState {
	return &zbufState{
		z:  render.NewZBuffer(view.Width, view.Height),
		rr: render.NewRaster(view.Camera, view.Width, view.Height),
	}
}

// sendZBuffer ships the full z-buffer in fixed-size chunks on out. This is
// the pixel-merging phase of the z-buffer algorithm: it happens only after
// the end-of-work marker, the synchronization point that stalls the
// pipeline (paper §3.1.2), and it transmits inactive pixels too.
func sendZBuffer(ctx core.Ctx, z *render.ZBuffer, out string) error {
	pxPerBuf := ctx.BufferBytes(out) / render.ZPixelBytes
	if pxPerBuf < 1 {
		pxPerBuf = 1
	}
	total := z.W * z.H
	for off := 0; off < total; off += pxPerBuf {
		end := off + pxPerBuf
		if end > total {
			end = total
		}
		chunk := ZChunk{
			Off:   off,
			Depth: append([]float32(nil), z.Depth[off:end]...),
			Color: append([]render.RGB(nil), z.Color[off:end]...),
		}
		if err := ctx.Write(out, core.Buffer{Payload: chunk, Size: chunk.Bytes()}); err != nil {
			return err
		}
	}
	return nil
}

// RasterZFilter renders triangle batches into a private full z-buffer and
// transmits the whole buffer at end-of-work.
type RasterZFilter struct {
	In, Out string
	st      *zbufState
}

// Init implements core.Filter: the z-buffer is allocated and initialized
// per unit of work (paper §3.1.2). The filter discloses that it wants large
// buffers for the frame dump; the WPA variant instead asks for small ones
// (paper §2: filters disclose buffer bounds, the runtime picks the size).
func (f *RasterZFilter) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	ctx.DeclareBuffer(f.Out, ZFrameBufferBytes, 0)
	f.st = newZbufState(view)
	return nil
}

// Process implements core.Filter.
func (f *RasterZFilter) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			// End-of-work marker received: enter the pixel merging phase.
			return sendZBuffer(ctx, f.st.z, f.Out)
		}
		tb, ok := b.Payload.(TriBatch)
		if !ok {
			return fmt.Errorf("isoviz: raster got %T", b.Payload)
		}
		f.st.rr.DrawAll(tb.Tris, f.st.z)
	}
}

// Finalize implements core.Filter.
func (f *RasterZFilter) Finalize(core.Ctx) error {
	f.st = nil // release the frame (paper: finalize frees scratch space)
	return nil
}

// ---- Raster filter (Ra), active pixel variant ----

// RasterAPFilter renders triangle batches through the Active Pixel
// algorithm: winning pixels stream to the merge filter in fixed-size
// batches while rasterization continues, overlapping raster and merge with
// no synchronization point (paper §3.1.2).
type RasterAPFilter struct {
	In, Out string

	view View
	st   *apState
}

// Init implements core.Filter. Buffer sizes resolve after the init phase,
// so the WPA itself is sized lazily on the first Process call.
func (f *RasterAPFilter) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	ctx.DeclareBuffer(f.Out, 0, WPABufferBytes)
	f.view = view
	return nil
}

// Process implements core.Filter.
func (f *RasterAPFilter) Process(ctx core.Ctx) error {
	f.st = newAPState(ctx, f.view, f.Out)
	f.st.ctx = ctx
	defer func() { f.st.ctx = nil }()
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			f.st.ap.FlushRemaining()
			return f.st.werr
		}
		tb, ok := b.Payload.(TriBatch)
		if !ok {
			return fmt.Errorf("isoviz: raster got %T", b.Payload)
		}
		f.st.rr.DrawAll(tb.Tris, f.st.ap)
		// All triangles of this input buffer processed: ship the WPA
		// (paper §3.1.2).
		f.st.ap.FlushRemaining()
		if f.st.werr != nil {
			return f.st.werr
		}
	}
}

// Finalize implements core.Filter.
func (f *RasterAPFilter) Finalize(core.Ctx) error {
	f.st = nil
	return nil
}

// ---- Merge filter (M) ----

// MergeFilter composites partial results (z-buffer chunks or winning-pixel
// batches) into the final image. Exactly one copy runs (paper §4.1); it is
// the combine filter required because raster copies hold accumulator
// state.
type MergeFilter struct {
	// In is the single input stream of the standard pipelines. The
	// partitioned pipeline instead sets Ins (one disjoint pixel stream per
	// screen band); when Ins is non-empty it takes precedence.
	In  string
	Ins []string

	z     *render.ZBuffer
	final *render.ZBuffer
	// Received counts buffers merged, for experiment accounting.
	Received int64
}

func (f *MergeFilter) inputs() []string {
	if len(f.Ins) > 0 {
		return f.Ins
	}
	return []string{f.In}
}

// Init implements core.Filter.
func (f *MergeFilter) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	f.z = render.NewZBuffer(view.Width, view.Height)
	return nil
}

// Process implements core.Filter.
func (f *MergeFilter) Process(ctx core.Ctx) error {
	for _, in := range f.inputs() {
		for {
			b, ok := ctx.Read(in)
			if !ok {
				break
			}
			f.Received++
			switch p := b.Payload.(type) {
			case ZChunk:
				f.z.MergeRange(p.Off, p.Depth, p.Color)
			case PixBatch:
				render.MergePixels(f.z, p.Pixels)
			default:
				return fmt.Errorf("isoviz: merge got %T", b.Payload)
			}
		}
	}
	return nil
}

// Finalize implements core.Filter: the merged frame becomes the result
// delivered to the client.
func (f *MergeFilter) Finalize(core.Ctx) error {
	f.final = f.z
	f.z = nil
	return nil
}

// Result returns the image produced by the last completed unit of work.
func (f *MergeFilter) Result() *render.ZBuffer { return f.final }
