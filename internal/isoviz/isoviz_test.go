package isoviz

import (
	"errors"
	"fmt"
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/geom"
	"datacutter/internal/leakcheck"
	"datacutter/internal/mcubes"
	"datacutter/internal/render"
	"datacutter/internal/volume"
)

// testSource builds a small synthetic chunked dataset.
func testSource() *FieldSource {
	return NewFieldSource(volume.NewPlumeField(17, 4), 33, 33, 33, 3, 3, 3)
}

func testView(w int) View {
	return View{Timestep: 1, Iso: 0.35, Width: w, Height: w, Camera: geom.DefaultCamera()}
}

// renderReference renders the same chunked dataset directly (no pipeline):
// the ground-truth image every configuration must reproduce exactly.
func renderReference(t *testing.T, src ChunkSource, view View) *render.ZBuffer {
	t.Helper()
	z := render.NewZBuffer(view.Width, view.Height)
	rr := render.NewRaster(view.Camera, view.Width, view.Height)
	for i := 0; i < src.Chunks(); i++ {
		v, err := src.Load(i, view.Timestep)
		if err != nil {
			t.Fatal(err)
		}
		mcubes.Walk(v, view.Iso, func(tr geom.Triangle) { rr.Draw(tr, z) })
	}
	if z.ActiveCount() == 0 {
		t.Fatal("reference image empty; bad test scene")
	}
	return z
}

func runPipeline(t *testing.T, spec PipelineSpec, pl *core.Placement, opts core.Options) (*render.ZBuffer, *core.Stats) {
	t.Helper()
	g := spec.Build()
	r, err := core.NewRunner(g, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeResult(r.Instances("M"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Result() == nil {
		t.Fatal("merge produced no image")
	}
	return m.Result(), st
}

func placeAll(g *core.Graph, copies map[string][]core.PlaceEntry) *core.Placement {
	pl := core.NewPlacement()
	for f, entries := range copies {
		for _, e := range entries {
			pl.Place(f, e.Host, e.Copies)
		}
	}
	return pl
}

func TestFullPipelineMatchesReference(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(96)
	want := renderReference(t, src, view)

	spec := PipelineSpec{Config: FullPipeline, Alg: ActivePixel, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := placeAll(spec.Build(), map[string][]core.PlaceEntry{
		"R":  {{Host: "h0", Copies: 1}},
		"E":  {{Host: "h0", Copies: 1}},
		"Ra": {{Host: "h0", Copies: 1}},
		"M":  {{Host: "h0", Copies: 1}},
	})
	got, _ := runPipeline(t, spec, pl, core.Options{UOWs: []any{view}})
	if !got.Equal(want) {
		t.Fatal("pipeline image differs from direct rendering")
	}
}

// The paper's central consistency claim: the final output is identical
// regardless of how many transparent copies run at each stage and which
// writer policy distributes buffers (§1: "the final output is consistent
// regardless of how many copies of various filters are instantiated").
func TestOutputInvariantUnderCopiesAndPolicies(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(72)
	want := renderReference(t, src, view)

	for _, alg := range []Algorithm{ZBuffer, ActivePixel} {
		for _, pol := range []core.Policy{core.RoundRobin(), core.WeightedRoundRobin(), core.DemandDriven()} {
			for _, copies := range []int{1, 2, 4} {
				name := fmt.Sprintf("%v/%s/x%d", alg, pol.Name(), copies)
				t.Run(name, func(t *testing.T) {
					spec := PipelineSpec{Config: FullPipeline, Alg: alg, Source: src, Assign: AssignByCopy(src.Chunks())}
					pl := core.NewPlacement().
						Place("R", "h0", 1).
						Place("E", "h0", 1).Place("E", "h1", copies-copies/2).
						Place("Ra", "h0", copies).Place("Ra", "h1", copies).
						Place("M", "h0", 1)
					got, _ := runPipeline(t, spec, pl, core.Options{Policy: pol, UOWs: []any{view}})
					if !got.Equal(want) {
						t.Fatal("image depends on copies/policy")
					}
				})
			}
		}
	}
}

func TestAllConfigurationsProduceSameImage(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(80)
	want := renderReference(t, src, view)

	for _, cfg := range []Config{FullPipeline, CombinedAll, ReadExtract, ExtractRaster} {
		for _, alg := range []Algorithm{ZBuffer, ActivePixel} {
			t.Run(fmt.Sprintf("%v/%v", cfg, alg), func(t *testing.T) {
				spec := PipelineSpec{Config: cfg, Alg: alg, Source: src, Assign: AssignByCopy(src.Chunks())}
				pl := core.NewPlacement()
				for _, f := range spec.Build().Filters() {
					if f == "M" {
						pl.Place("M", "h0", 1)
						continue
					}
					pl.Place(f, "h0", 1)
					pl.Place(f, "h1", 1)
				}
				// The source filter needs exactly the copies Assign expects.
				got, _ := runPipeline(t, spec, pl, core.Options{Policy: core.DemandDriven(), UOWs: []any{view}})
				if !got.Equal(want) {
					t.Fatal("configuration changed the image")
				}
			})
		}
	}
}

func TestTimestepsRenderDifferently(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	v0, v5 := testView(64), testView(64)
	v0.Timestep, v5.Timestep = 0, 5
	spec := PipelineSpec{Config: ReadExtract, Alg: ActivePixel, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().Place("RE", "h0", 1).Place("Ra", "h0", 1).Place("M", "h0", 1)

	g := spec.Build()
	r, err := core.NewRunner(g, pl, core.Options{UOWs: []any{v0, v5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	m, _ := MergeResult(r.Instances("M"))
	last := m.Result()
	want := renderReference(t, src, v5)
	if !last.Equal(want) {
		t.Fatal("second unit of work did not render timestep 5")
	}
	if last.Equal(renderReference(t, src, v0)) {
		t.Fatal("timesteps 0 and 5 render identically; field not evolving")
	}
}

// Table 1's shape: the active-pixel version sends many more Ra->M buffers
// than the z-buffer version, but a smaller total volume.
func TestActivePixelTradeoffVsZBuffer(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(256)
	run := func(alg Algorithm) *core.StreamStats {
		spec := PipelineSpec{Config: ReadExtract, Alg: alg, Source: src, Assign: AssignByCopy(src.Chunks())}
		pl := core.NewPlacement().Place("RE", "h0", 1).Place("Ra", "h0", 2).Place("M", "h0", 1)
		_, st := runPipeline(t, spec, pl, core.Options{UOWs: []any{view}, BufferBytes: 64 << 10})
		return st.Streams[StreamPixels]
	}
	zb, ap := run(ZBuffer), run(ActivePixel)
	if ap.Buffers <= zb.Buffers {
		t.Fatalf("AP should send more, smaller buffers: AP %d vs ZB %d", ap.Buffers, zb.Buffers)
	}
	if ap.Bytes >= zb.Bytes {
		t.Fatalf("AP volume %d should be below ZB volume %d", ap.Bytes, zb.Bytes)
	}
	// ZB volume is exactly the frame, once per raster copy.
	wantZB := int64(2 * view.Width * view.Height * render.ZPixelBytes)
	if zb.Bytes != wantZB {
		t.Fatalf("ZB bytes = %d, want %d", zb.Bytes, wantZB)
	}
}

// errSource fails on a specific chunk.
type errSource struct {
	*FieldSource
	failAt int
}

func (s *errSource) Load(i, ts int) (*volume.Volume, error) {
	if i == s.failAt {
		return nil, errors.New("disk error")
	}
	return s.FieldSource.Load(i, ts)
}

func TestSourceErrorPropagates(t *testing.T) {
	leakcheck.Check(t)
	src := &errSource{FieldSource: testSource(), failAt: 5}
	view := testView(32)
	spec := PipelineSpec{Config: FullPipeline, Alg: ActivePixel, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().
		Place("R", "h0", 1).Place("E", "h0", 1).Place("Ra", "h0", 1).Place("M", "h0", 1)
	r, err := core.NewRunner(spec.Build(), pl, core.Options{UOWs: []any{view}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("expected disk error to abort the run")
	}
}

func TestWrongUOWTypeFails(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	spec := PipelineSpec{Config: ReadExtract, Alg: ZBuffer, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().Place("RE", "h0", 1).Place("Ra", "h0", 1).Place("M", "h0", 1)
	r, err := core.NewRunner(spec.Build(), pl, core.Options{UOWs: []any{"not a view"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("expected type error for bad unit of work")
	}
}

func TestAssignByCopyPartitions(t *testing.T) {
	a := AssignByCopy(10)
	seen := map[int]int{}
	for idx := 0; idx < 3; idx++ {
		for _, c := range a(fakeCtx{idx: idx, total: 3}) {
			seen[c]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("assignment covered %d chunks", len(seen))
	}
	for c, n := range seen {
		if n != 1 {
			t.Fatalf("chunk %d assigned %d times", c, n)
		}
	}
}

// fakeCtx implements just enough of core.Ctx for Assign tests.
type fakeCtx struct {
	core.Ctx
	idx, total int
	host       string
}

func (f fakeCtx) CopyIndex() int   { return f.idx }
func (f fakeCtx) TotalCopies() int { return f.total }
func (f fakeCtx) Host() string     { return f.host }

func TestConfigStrings(t *testing.T) {
	if FullPipeline.String() != "R-E-Ra-M" || CombinedAll.String() != "RERa-M" ||
		ReadExtract.String() != "RE-Ra-M" || ExtractRaster.String() != "R-ERa-M" {
		t.Fatal("config names wrong")
	}
	if ReadExtract.SourceFilter() != "RE" || ReadExtract.WorkerFilter() != "Ra" {
		t.Fatal("ReadExtract filter names wrong")
	}
	if CombinedAll.WorkerFilter() != "" {
		t.Fatal("CombinedAll has no separate worker")
	}
}
