package isoviz

import (
	"fmt"
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/leakcheck"
)

func runPartitioned(t *testing.T, bands int, copiesPerBand int, view View) (*core.Stats, *MergeFilter) {
	t.Helper()
	src := testSource()
	spec := PartitionedSpec{Bands: bands, Source: src, Assign: AssignByCopy(src.Chunks())}
	g := spec.Build()
	pl := core.NewPlacement().Place("RE", "h0", 2).Place("M", "h0", 1)
	for i := 0; i < bands; i++ {
		pl.Place(BandFilterName(i), "h0", copiesPerBand)
		if copiesPerBand > 1 {
			// Spread hybrid copies over a second host too.
			pl.Place(BandFilterName(i), "h1", 1)
		}
	}
	r, err := core.NewRunner(g, pl, core.Options{Policy: core.DemandDriven(), UOWs: []any{view}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeResult(r.Instances("M"))
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// The hybrid pipeline must produce the exact reference image for any band
// count, including bands that do not divide the height, and with
// replication within bands.
func TestPartitionedPipelineExact(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(90) // 90 not divisible by 4 or 7
	want := renderReference(t, src, view)
	for _, bands := range []int{1, 2, 4, 7} {
		for _, copies := range []int{1, 2} {
			t.Run(fmt.Sprintf("bands=%d copies=%d", bands, copies), func(t *testing.T) {
				_, m := runPartitioned(t, bands, copies, view)
				if !m.Result().Equal(want) {
					t.Fatal("partitioned image differs from reference")
				}
			})
		}
	}
}

// The point of partitioning (paper §6: "the merge filter becomes a
// bottleneck" as copies grow): the replicated z-buffer pipeline ships
// copies x full frame to the merge filter, while the partitioned pipeline
// ships each winning pixel once — its merge traffic does not grow with
// parallelism.
func TestPartitionedReducesMergeTraffic(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(128)
	const par = 6

	// Replicated z-buffer: par full-screen raster copies, par frames.
	spec := PipelineSpec{Config: ReadExtract, Alg: ZBuffer, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().Place("RE", "h0", 2).Place("Ra", "h0", par).Place("M", "h0", 1)
	r, err := core.NewRunner(spec.Build(), pl, core.Options{Policy: core.RoundRobin(), UOWs: []any{view}})
	if err != nil {
		t.Fatal(err)
	}
	stRep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	repBytes := stRep.Streams[StreamPixels].Bytes
	wantRep := int64(par * view.Width * view.Height * 7)
	if repBytes != wantRep {
		t.Fatalf("replicated z-buffer traffic = %d, want %d", repBytes, wantRep)
	}

	// Partitioned: par bands, one copy each.
	stPart, _ := runPartitioned(t, par, 1, view)
	var partBytes int64
	for i := 0; i < par; i++ {
		partBytes += stPart.Streams[PixBandStream(i)].Bytes
	}
	if partBytes*4 >= repBytes {
		t.Fatalf("partitioned merge traffic (%d B) should be far below replicated z-buffer (%d B)", partBytes, repBytes)
	}
}

// Band routing duplicates only triangles that straddle band borders: total
// routed triangles stay well below bands x extracted.
func TestPartitionedRoutingDuplicationBounded(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(96)
	st, _ := runPartitioned(t, 8, 1, view)
	var routed int64
	for i := 0; i < 8; i++ {
		routed += st.Streams[TriBandStream(i)].Bytes
	}
	// Reference extraction count.
	ref := renderReference(t, src, view) // ensures scene non-trivial
	_ = ref
	spec := PipelineSpec{Config: ReadExtract, Alg: ActivePixel, Source: src, Assign: AssignByCopy(src.Chunks())}
	pl := core.NewPlacement().Place("RE", "h0", 1).Place("Ra", "h0", 1).Place("M", "h0", 1)
	r, _ := core.NewRunner(spec.Build(), pl, core.Options{UOWs: []any{view}})
	stRep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := stRep.Streams[StreamTriangles].Bytes
	if routed > base*3 {
		t.Fatalf("routing tripled triangle traffic: %d vs base %d", routed, base)
	}
	if routed < base {
		t.Fatalf("routing lost triangles: %d vs base %d", routed, base)
	}
}

func TestPartitionedBadBandCount(t *testing.T) {
	leakcheck.Check(t)
	src := testSource()
	view := testView(32)
	spec := PartitionedSpec{Bands: 1, Source: src, Assign: AssignByCopy(src.Chunks())}
	_ = spec
	// Bands < 1 must surface as a run error.
	g := core.NewGraph()
	g.AddFilter("RE", func() core.Filter {
		return &ReadExtractRouteFilter{Source: src, Assign: AssignByCopy(src.Chunks()), Bands: 0}
	})
	pl := core.NewPlacement().Place("RE", "h0", 1)
	r, _ := core.NewRunner(g, pl, core.Options{UOWs: []any{view}})
	if _, err := r.Run(); err == nil {
		t.Fatal("zero bands accepted")
	}
}
