package isoviz

import (
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
)

// Algorithm selects the hidden-surface removal scheme.
type Algorithm int

// The two rendering algorithms evaluated in the paper.
const (
	ZBuffer Algorithm = iota
	ActivePixel
)

func (a Algorithm) String() string {
	if a == ZBuffer {
		return "Z-buffer"
	}
	return "Active Pixel"
}

// Config selects the filter decomposition (paper Figure 3 plus the fully
// split baseline pipeline).
type Config int

// The evaluated configurations.
const (
	// FullPipeline is R–E–Ra–M: every stage its own filter.
	FullPipeline Config = iota
	// CombinedAll is RERa–M: read+extract+raster fused (SPMD-like).
	CombinedAll
	// ReadExtract is RE–Ra–M: read+extract fused, raster separate.
	ReadExtract
	// ExtractRaster is R–ERa–M: read separate, extract+raster fused.
	ExtractRaster
)

func (c Config) String() string {
	switch c {
	case FullPipeline:
		return "R-E-Ra-M"
	case CombinedAll:
		return "RERa-M"
	case ReadExtract:
		return "RE-Ra-M"
	case ExtractRaster:
		return "R-ERa-M"
	}
	return fmt.Sprintf("Config(%d)", int(c))
}

// SourceFilter returns the name of the filter that reads storage in this
// configuration (the one whose placement should cover the data nodes).
func (c Config) SourceFilter() string {
	switch c {
	case FullPipeline:
		return "R"
	case CombinedAll:
		return "RERa"
	case ReadExtract:
		return "RE"
	case ExtractRaster:
		return "R"
	}
	return ""
}

// WorkerFilter returns the name of the compute-heavy filter whose copies
// absorb raster load ("" when it is fused into the source filter).
func (c Config) WorkerFilter() string {
	switch c {
	case FullPipeline, ReadExtract:
		return "Ra"
	case ExtractRaster:
		return "ERa"
	}
	return ""
}

// PipelineSpec assembles an isosurface rendering graph.
type PipelineSpec struct {
	Config Config
	Alg    Algorithm
	Source ChunkSource
	Assign Assign
	// Pushdown enables near-storage predicate pruning in the source-side
	// filter: each view's iso-value (ANDed with Pred) is checked against the
	// source's chunk summaries and provably contribution-free chunks are
	// skipped before any read. Requires a PrunableSource to take effect.
	Pushdown bool
	// Pred is an extra predicate (e.g. a spatial box) intersected with the
	// per-view iso predicate when Pushdown is on.
	Pred dataset.Predicate
}

// Build constructs the filter graph for the spec. The merge filter is
// always named "M" and each graph's streams use the Stream* constants.
func (s PipelineSpec) Build() *core.Graph {
	g := core.NewGraph()
	switch s.Config {
	case FullPipeline:
		g.AddFilter("R", func() core.Filter {
			return &ReadFilter{Source: s.Source, Assign: s.Assign, Out: StreamVoxels, Pushdown: s.Pushdown, Pred: s.Pred}
		})
		g.AddFilter("E", func() core.Filter {
			return &ExtractFilter{In: StreamVoxels, Out: StreamTriangles}
		})
		g.AddFilter("Ra", s.rasterFactory(StreamTriangles))
		g.Connect("R", "E", StreamVoxels)
		g.Connect("E", "Ra", StreamTriangles)
		g.Connect("Ra", "M", StreamPixels)
	case CombinedAll:
		g.AddFilter("RERa", func() core.Filter {
			if s.Alg == ZBuffer {
				return &ReadExtractRasterZFilter{Source: s.Source, Assign: s.Assign, Out: StreamPixels, Pushdown: s.Pushdown, Pred: s.Pred}
			}
			return &ReadExtractRasterAPFilter{Source: s.Source, Assign: s.Assign, Out: StreamPixels, Pushdown: s.Pushdown, Pred: s.Pred}
		})
		g.Connect("RERa", "M", StreamPixels)
	case ReadExtract:
		g.AddFilter("RE", func() core.Filter {
			return &ReadExtractFilter{Source: s.Source, Assign: s.Assign, Out: StreamTriangles, Pushdown: s.Pushdown, Pred: s.Pred}
		})
		g.AddFilter("Ra", s.rasterFactory(StreamTriangles))
		g.Connect("RE", "Ra", StreamTriangles)
		g.Connect("Ra", "M", StreamPixels)
	case ExtractRaster:
		g.AddFilter("R", func() core.Filter {
			return &ReadFilter{Source: s.Source, Assign: s.Assign, Out: StreamVoxels, Pushdown: s.Pushdown, Pred: s.Pred}
		})
		g.AddFilter("ERa", func() core.Filter {
			if s.Alg == ZBuffer {
				return &ExtractRasterZFilter{In: StreamVoxels, Out: StreamPixels}
			}
			return &ExtractRasterAPFilter{In: StreamVoxels, Out: StreamPixels}
		})
		g.Connect("R", "ERa", StreamVoxels)
		g.Connect("ERa", "M", StreamPixels)
	default:
		panic("isoviz: unknown config")
	}
	g.AddFilter("M", func() core.Filter { return &MergeFilter{In: StreamPixels} })
	return g
}

func (s PipelineSpec) rasterFactory(in string) core.FilterFactory {
	if s.Alg == ZBuffer {
		return func() core.Filter { return &RasterZFilter{In: in, Out: StreamPixels} }
	}
	return func() core.Filter { return &RasterAPFilter{In: in, Out: StreamPixels} }
}

// MergeResult retrieves the merge filter (and so the final image) from a
// runner after a run. Works with both engines' Instances method.
func MergeResult(instances []core.Filter) (*MergeFilter, error) {
	if len(instances) != 1 {
		return nil, fmt.Errorf("isoviz: expected exactly one merge copy, got %d", len(instances))
	}
	m, ok := instances[0].(*MergeFilter)
	if !ok {
		return nil, fmt.Errorf("isoviz: filter M is %T", instances[0])
	}
	return m, nil
}
