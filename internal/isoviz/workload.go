package isoviz

import (
	"math"
	"sync"

	"datacutter/internal/dataset"
	"datacutter/internal/geom"
	"datacutter/internal/mcubes"
	"datacutter/internal/volume"
)

// ChunkStats is the modeled workload of one chunk at one timestep.
type ChunkStats struct {
	Cells       int // exact marching-cell count of the chunk
	ActiveCells int // estimated cells intersected by the isosurface
	Tris        int // estimated triangles generated
	Bytes       int // chunk payload size
}

// Workload estimates per-chunk isosurface statistics for paper-scale
// datasets without extracting them at full resolution: each chunk's field
// is sampled on a coarse grid, extracted with the real marching-cubes code,
// and the counts are scaled by the resolution ratio (isosurface size grows
// with the square of linear resolution). This keeps the spatial skew of the
// real data — plume-dense chunks stay expensive, empty chunks stay free —
// which is what the scheduling experiments measure.
type Workload struct {
	DS  *dataset.Dataset
	Iso float32
	// CoarseCells is the estimation grid's cells per axis (default 6).
	CoarseCells int

	mu    sync.Mutex
	fld   volume.Field
	cache map[int][]ChunkStats // per timestep
	total map[int]int64
}

// NewWorkload builds an estimator for a dataset at one isovalue.
func NewWorkload(ds *dataset.Dataset, iso float32) *Workload {
	return &Workload{
		DS: ds, Iso: iso, CoarseCells: 6,
		fld:   ds.Field(),
		cache: make(map[int][]ChunkStats),
		total: make(map[int]int64),
	}
}

// Stats returns the modeled workload of one chunk at one timestep.
func (w *Workload) Stats(chunk, timestep int) ChunkStats {
	return w.timestep(timestep)[chunk]
}

// TotalTris returns the estimated triangle total of one timestep.
func (w *Workload) TotalTris(timestep int) int64 {
	w.timestep(timestep)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total[timestep]
}

func (w *Workload) timestep(t int) []ChunkStats {
	w.mu.Lock()
	if st, ok := w.cache[t]; ok {
		w.mu.Unlock()
		return st
	}
	w.mu.Unlock()

	c := w.CoarseCells
	if c < 2 {
		c = 2
	}
	stats := make([]ChunkStats, w.DS.Chunks())
	var total int64
	coarse := volume.New(c+1, c+1, c+1)
	for i := range stats {
		b := w.DS.Block(i)
		// Sample the chunk's world extent on the coarse grid.
		den := func(n int) float64 {
			if n <= 1 {
				return 1
			}
			return float64(n - 1)
		}
		x0 := float64(b.X0) / den(b.GX)
		y0 := float64(b.Y0) / den(b.GY)
		z0 := float64(b.Z0) / den(b.GZ)
		x1 := float64(b.X0+b.NX-1) / den(b.GX)
		y1 := float64(b.Y0+b.NY-1) / den(b.GY)
		z1 := float64(b.Z0+b.NZ-1) / den(b.GZ)
		for kz := 0; kz <= c; kz++ {
			for ky := 0; ky <= c; ky++ {
				for kx := 0; kx <= c; kx++ {
					fx := x0 + (x1-x0)*float64(kx)/float64(c)
					fy := y0 + (y1-y0)*float64(ky)/float64(c)
					fz := z0 + (z1-z0)*float64(kz)/float64(c)
					coarse.Set(kx, ky, kz, w.fld.Sample(fx, fy, fz, float64(t)))
				}
			}
		}
		st := mcubes.Walk(coarse, w.Iso, func(geom.Triangle) {})
		realCells := (b.NX - 1) * (b.NY - 1) * (b.NZ - 1)
		// Surface quantities scale with the 2/3 power of the cell-count
		// ratio (area vs volume scaling).
		scale := math.Pow(float64(realCells)/float64(c*c*c), 2.0/3.0)
		stats[i] = ChunkStats{
			Cells:       realCells,
			ActiveCells: int(float64(st.ActiveCells) * scale),
			Tris:        int(float64(st.Triangles) * scale),
			Bytes:       b.Bytes(),
		}
		total += int64(stats[i].Tris)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if st, ok := w.cache[t]; ok {
		return st
	}
	w.cache[t] = stats
	w.total[t] = total
	return stats
}
