// Package isoviz implements the paper's case study: the isosurface
// rendering application decomposed into DataCutter filters.
//
// The real filters (filters.go, combined.go) run on either engine with
// actual data: a read filter (R) retrieves volume chunks, an extract filter
// (E) runs marching-cubes isosurface extraction, a raster filter (Ra)
// renders triangles with either the z-buffer or the active-pixel algorithm,
// and a merge filter (M) composites partial results into the final image
// (filters such as Ra keep internal state — the accumulator — so a combine
// stage is required for transparent copying; paper §1, §3).
//
// The model filters (model.go) are workload-statistics twins of the real
// filters for the simulated engine: they move buffers with the same counts
// and sizes and charge calibrated CPU/disk costs instead of doing the math,
// which is how the paper-scale (25 GB) experiments run in virtual time.
// Their statistics come from coarse extraction with the real marching-cubes
// code (workload.go), so spatial skew is preserved.
package isoviz

import (
	"datacutter/internal/geom"
	"datacutter/internal/render"
	"datacutter/internal/volume"
)

// View is the unit-of-work descriptor: which stored timestep to render,
// from where, at what isovalue, into what image.
type View struct {
	Timestep int
	Iso      float32
	Width    int
	Height   int
	Camera   geom.Camera
}

// DefaultView renders timestep 0 at a mid-range isovalue into a 512²
// frame.
func DefaultView(iso float32) View {
	return View{Timestep: 0, Iso: iso, Width: 512, Height: 512, Camera: geom.DefaultCamera()}
}

// Stream names used by the standard graphs.
const (
	StreamVoxels    = "voxels"    // R -> E: volume chunks
	StreamTriangles = "triangles" // E -> Ra: extracted triangles
	StreamPixels    = "pixels"    // Ra -> M: z-buffer chunks or pixel batches
)

// TriBatch is the payload of one E->Ra buffer.
type TriBatch struct {
	Tris []geom.Triangle
}

// Bytes returns the batch's serialized size.
func (t TriBatch) Bytes() int { return len(t.Tris) * geom.TriangleBytes }

// ZChunk is one fixed-size slice of a z-buffer, the Ra->M payload of the
// z-buffer algorithm. Off is the starting pixel offset in row-major order.
type ZChunk struct {
	Off   int
	Depth []float32
	Color []render.RGB
}

// Bytes returns the chunk's serialized size.
func (z ZChunk) Bytes() int { return len(z.Depth) * render.ZPixelBytes }

// PixBatch is one flushed Winning Pixel Array, the Ra->M payload of the
// active-pixel algorithm.
type PixBatch struct {
	Pixels []render.Pixel
}

// Bytes returns the batch's serialized size.
func (p PixBatch) Bytes() int { return len(p.Pixels) * render.PixelBytes }

// Buffer-size preferences the raster filters disclose for their output
// stream (paper §2: a filter declares minimum and optional maximum buffer
// sizes; the runtime chooses the actual size). The z-buffer algorithm dumps
// whole frames and wants big buffers; the active-pixel algorithm streams
// winning-pixel arrays and keeps them small so merging overlaps raster
// work.
const (
	ZFrameBufferBytes = 2 << 20
	WPABufferBytes    = 64 << 10
)

// VoxelBlock is the R->E payload: one chunk of the volume.
type VoxelBlock struct {
	V *volume.Volume
}

// Bytes returns the block's serialized size.
func (b VoxelBlock) Bytes() int { return b.V.Bytes() }
