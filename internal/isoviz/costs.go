package isoviz

// CostModel holds the calibration constants that translate workload counts
// (cells scanned, triangles generated, pixels filled, bytes moved) into
// reference-CPU seconds for the simulated engine. The reference core is the
// cluster package's speed-1.0 host (a Pentium III 550 in the paper's
// hardware). Defaults are calibrated so an isolated-filter run of the
// paper's baseline workload (Tables 1 and 2) lands near the published
// per-filter times; see EXPERIMENTS.md.
type CostModel struct {
	// Read filter: CPU per byte moved from disk (buffer management).
	ReadCPUPerByte float64
	// Extract filter: per marching cell scanned and per triangle built.
	CellSeconds   float64
	TriGenSeconds float64
	// Raster filter: per triangle (transform/clip/setup) and per filled
	// pixel (interpolation + depth test).
	TriRasterSeconds float64
	PixelSeconds     float64
	// Merge filter: per pixel or winning-pixel entry merged, plus a
	// per-frame cost to extract colors and generate the client image.
	MergePixelSeconds float64
	ImageGenSeconds   float64

	// Coverage is the fraction of the output image covered by the
	// projected surface, including depth overlap (filled pixels ≈
	// Coverage × W × H).
	Coverage float64
	// APDedupFactor is the ratio of winning-pixel entries shipped by the
	// active-pixel algorithm to raw filled pixels (the WPA dedupes
	// same-column rewrites within a batch).
	APDedupFactor float64
}

// DefaultCosts returns the 2002-reference calibration.
func DefaultCosts() CostModel {
	return CostModel{
		ReadCPUPerByte:    6e-9,
		CellSeconds:       0.8e-6,
		TriGenSeconds:     7e-6,
		TriRasterSeconds:  100e-6,
		PixelSeconds:      15e-6,
		MergePixelSeconds: 0.6e-6,
		ImageGenSeconds:   1.2e-6,
		Coverage:          0.75,
		APDedupFactor:     0.55,
	}
}

// ExtractSeconds returns the modeled extract cost of one chunk.
func (c CostModel) ExtractSeconds(cells, tris int) float64 {
	return float64(cells)*c.CellSeconds + float64(tris)*c.TriGenSeconds
}

// RasterSeconds returns the modeled raster cost of a triangle batch, given
// the per-triangle projected pixel count for this view.
func (c CostModel) RasterSeconds(tris int, pxPerTri float64) float64 {
	return float64(tris) * (c.TriRasterSeconds + pxPerTri*c.PixelSeconds)
}

// PxPerTri returns the average filled pixels per triangle for a view with
// the given total triangle count.
func (c CostModel) PxPerTri(view View, totalTris int64) float64 {
	if totalTris <= 0 {
		return 0
	}
	return c.Coverage * float64(view.Width) * float64(view.Height) / float64(totalTris)
}
