package isoviz

import (
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/geom"
	"datacutter/internal/render"
)

// Model filters: workload-statistics twins of the real filters, for the
// simulated engine. They produce buffers with the same counts and sizes the
// real filters would (triangle batches packed to the stream buffer size and
// flushed per input buffer, full z-buffer frames at end-of-work, winning
// pixel batches streamed as the WPA fills) and charge calibrated CPU and
// disk costs instead of doing the math. The per-chunk statistics come from
// a Workload estimator, so data skew drives load exactly as it would with
// real data.

// MChunk is the model R->E payload: one chunk's workload statistics.
type MChunk struct {
	Chunk int
	Stats ChunkStats
}

// MTris is the model E->Ra payload: a batch of `Count` triangles.
type MTris struct{ Count int }

// MZPix is the model Ra->M payload of the z-buffer algorithm: a frame
// slice of `Pixels` z-buffer entries.
type MZPix struct{ Pixels int }

// MAPix is the model Ra->M payload of the active-pixel algorithm: a batch
// of `Entries` winning pixels.
type MAPix struct{ Entries int }

// ModelRead mirrors ReadFilter: disk time per chunk plus buffer-management
// CPU, then one buffer per chunk.
type ModelRead struct {
	core.BaseFilter
	W      *Workload
	Dist   *dataset.Distribution
	Assign Assign
	Out    string
	Costs  CostModel
}

func (f *ModelRead) diskOf(chunk int) int {
	if f.Dist == nil {
		return 0
	}
	return dataset.DiskOfChunk(f.W.DS, f.Dist, chunk).Disk
}

// Process implements core.Filter.
func (f *ModelRead) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	for _, chunk := range f.Assign(ctx) {
		st := f.W.Stats(chunk, view.Timestep)
		ctx.ChargeDisk(f.diskOf(chunk), st.Bytes)
		ctx.Compute(float64(st.Bytes) * f.Costs.ReadCPUPerByte)
		if err := ctx.Write(f.Out, core.Buffer{Payload: MChunk{Chunk: chunk, Stats: st}, Size: st.Bytes}); err != nil {
			return err
		}
	}
	return nil
}

// modelTriEmitter packs modeled triangles into stream buffers with the
// same policy as the real triPacker: emit when full, flush at the end of
// each input chunk.
type modelTriEmitter struct {
	out     string
	capTris int
	pending int
}

func newModelTriEmitter(ctx core.Ctx, out string) *modelTriEmitter {
	capTris := ctx.BufferBytes(out) / geom.TriangleBytes
	if capTris < 1 {
		capTris = 1
	}
	return &modelTriEmitter{out: out, capTris: capTris}
}

// add accounts for `tris` freshly generated triangles whose generation
// costs perTriCost each. Compute is charged incrementally as the buffer
// fills — mirroring the real extract filter, which interleaves marching
// cubes with buffer emission rather than bursting a chunk's buffers out
// back to back (burstiness would distort demand-driven scheduling).
func (e *modelTriEmitter) add(ctx core.Ctx, tris int, perTriCost float64) error {
	for tris > 0 {
		slice := e.capTris - e.pending
		if slice > tris {
			slice = tris
		}
		ctx.Compute(float64(slice) * perTriCost)
		e.pending += slice
		tris -= slice
		if e.pending >= e.capTris {
			e.pending = 0
			b := MTris{Count: e.capTris}
			if err := ctx.Write(e.out, core.Buffer{Payload: b, Size: e.capTris * geom.TriangleBytes}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *modelTriEmitter) flush(ctx core.Ctx) error {
	if e.pending == 0 {
		return nil
	}
	b := MTris{Count: e.pending}
	n := e.pending
	e.pending = 0
	return ctx.Write(e.out, core.Buffer{Payload: b, Size: n * geom.TriangleBytes})
}

// ModelExtract mirrors ExtractFilter.
type ModelExtract struct {
	core.BaseFilter
	In, Out string
	Costs   CostModel
}

// Process implements core.Filter.
func (f *ModelExtract) Process(ctx core.Ctx) error {
	em := newModelTriEmitter(ctx, f.Out)
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			return nil
		}
		mc, ok := b.Payload.(MChunk)
		if !ok {
			return fmt.Errorf("isoviz: model extract got %T", b.Payload)
		}
		cellCost, perTri := splitExtractCost(f.Costs, mc.Stats)
		ctx.Compute(cellCost)
		if err := em.add(ctx, mc.Stats.Tris, perTri); err != nil {
			return err
		}
		if err := em.flush(ctx); err != nil {
			return err
		}
	}
}

// modelAPEmitter streams winning-pixel entries like the real WPA: full
// batches whenever the array fills, remainder at the end of each input
// buffer.
type modelAPEmitter struct {
	out        string
	capEntries int
	acc        float64
}

func newModelAPEmitter(ctx core.Ctx, out string) *modelAPEmitter {
	capE := ctx.BufferBytes(out) / render.PixelBytes
	if capE < 1 {
		capE = 1
	}
	return &modelAPEmitter{out: out, capEntries: capE}
}

func (e *modelAPEmitter) add(ctx core.Ctx, entries float64) error {
	e.acc += entries
	for e.acc >= float64(e.capEntries) {
		e.acc -= float64(e.capEntries)
		b := MAPix{Entries: e.capEntries}
		if err := ctx.Write(e.out, core.Buffer{Payload: b, Size: e.capEntries * render.PixelBytes}); err != nil {
			return err
		}
	}
	return nil
}

func (e *modelAPEmitter) flushInput(ctx core.Ctx) error {
	n := int(e.acc)
	if n < 1 {
		return nil
	}
	e.acc -= float64(n)
	b := MAPix{Entries: n}
	return ctx.Write(e.out, core.Buffer{Payload: b, Size: n * render.PixelBytes})
}

// emitModelZFrame ships a full modeled z-buffer in fixed-size buffers (the
// z-buffer algorithm's pixel-merging phase).
func emitModelZFrame(ctx core.Ctx, view View, out string) error {
	pxPerBuf := ctx.BufferBytes(out) / render.ZPixelBytes
	if pxPerBuf < 1 {
		pxPerBuf = 1
	}
	total := view.Width * view.Height
	for off := 0; off < total; off += pxPerBuf {
		n := pxPerBuf
		if off+n > total {
			n = total - off
		}
		if err := ctx.Write(out, core.Buffer{Payload: MZPix{Pixels: n}, Size: n * render.ZPixelBytes}); err != nil {
			return err
		}
	}
	return nil
}

// ModelRaster mirrors RasterZFilter / RasterAPFilter depending on Alg.
type ModelRaster struct {
	In, Out string
	Alg     Algorithm
	W       *Workload
	Costs   CostModel

	view     View
	pxPerTri float64
	ap       *modelAPEmitter
}

// Init implements core.Filter.
func (f *ModelRaster) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	f.view = view
	f.pxPerTri = f.Costs.PxPerTri(view, f.W.TotalTris(view.Timestep))
	f.declare(ctx)
	f.ap = nil
	return nil
}

func (f *ModelRaster) declare(ctx core.Ctx) {
	if f.Alg == ZBuffer {
		ctx.DeclareBuffer(f.Out, ZFrameBufferBytes, 0)
	} else {
		ctx.DeclareBuffer(f.Out, 0, WPABufferBytes)
	}
}

// Process implements core.Filter.
func (f *ModelRaster) Process(ctx core.Ctx) error {
	if f.Alg == ActivePixel {
		f.ap = newModelAPEmitter(ctx, f.Out)
	}
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			if f.Alg == ZBuffer {
				return emitModelZFrame(ctx, f.view, f.Out)
			}
			return f.ap.flushInput(ctx)
		}
		mt, ok := b.Payload.(MTris)
		if !ok {
			return fmt.Errorf("isoviz: model raster got %T", b.Payload)
		}
		ctx.Compute(f.Costs.RasterSeconds(mt.Count, f.pxPerTri))
		if f.Alg == ActivePixel {
			if err := f.ap.add(ctx, float64(mt.Count)*f.pxPerTri*f.Costs.APDedupFactor); err != nil {
				return err
			}
			if err := f.ap.flushInput(ctx); err != nil {
				return err
			}
		}
	}
}

// Finalize implements core.Filter.
func (f *ModelRaster) Finalize(core.Ctx) error { return nil }

// ModelMerge mirrors MergeFilter: per-pixel merge cost while buffers
// arrive, plus final image generation in Finalize. One copy runs.
type ModelMerge struct {
	In    string
	Costs CostModel

	view         View
	Received     int64
	PixelsMerged int64
}

// Init implements core.Filter.
func (f *ModelMerge) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	f.view = view
	return nil
}

// Process implements core.Filter.
func (f *ModelMerge) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			return nil
		}
		f.Received++
		switch p := b.Payload.(type) {
		case MZPix:
			ctx.Compute(float64(p.Pixels) * f.Costs.MergePixelSeconds)
			f.PixelsMerged += int64(p.Pixels)
		case MAPix:
			ctx.Compute(float64(p.Entries) * f.Costs.MergePixelSeconds)
			f.PixelsMerged += int64(p.Entries)
		default:
			return fmt.Errorf("isoviz: model merge got %T", b.Payload)
		}
	}
}

// Finalize implements core.Filter: extract colors from the accumulator and
// generate the image sent to the client.
func (f *ModelMerge) Finalize(ctx core.Ctx) error {
	ctx.Compute(float64(f.view.Width) * float64(f.view.Height) * f.Costs.ImageGenSeconds)
	return nil
}

// ModelReadExtract mirrors ReadExtractFilter (RE).
type ModelReadExtract struct {
	core.BaseFilter
	W      *Workload
	Dist   *dataset.Distribution
	Assign Assign
	Out    string
	Costs  CostModel
}

// Process implements core.Filter.
func (f *ModelReadExtract) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	rd := &ModelRead{W: f.W, Dist: f.Dist, Costs: f.Costs}
	em := newModelTriEmitter(ctx, f.Out)
	for _, chunk := range f.Assign(ctx) {
		st := f.W.Stats(chunk, view.Timestep)
		ctx.ChargeDisk(rd.diskOf(chunk), st.Bytes)
		cellCost, perTri := splitExtractCost(f.Costs, st)
		ctx.Compute(float64(st.Bytes)*f.Costs.ReadCPUPerByte + cellCost)
		if err := em.add(ctx, st.Tris, perTri); err != nil {
			return err
		}
		if err := em.flush(ctx); err != nil {
			return err
		}
	}
	return nil
}

// splitExtractCost divides a chunk's extract cost into the cell-scan part
// (charged up front) and a per-triangle part (charged as buffers fill).
func splitExtractCost(c CostModel, st ChunkStats) (cellCost, perTri float64) {
	cellCost = float64(st.Cells) * c.CellSeconds
	if st.Tris > 0 {
		perTri = c.TriGenSeconds
	}
	return cellCost, perTri
}

// ModelExtractRaster mirrors ExtractRasterZFilter / ExtractRasterAPFilter
// (ERa).
type ModelExtractRaster struct {
	In, Out string
	Alg     Algorithm
	W       *Workload
	Costs   CostModel

	view     View
	pxPerTri float64
	ap       *modelAPEmitter
}

// Init implements core.Filter.
func (f *ModelExtractRaster) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	f.view = view
	f.pxPerTri = f.Costs.PxPerTri(view, f.W.TotalTris(view.Timestep))
	(&ModelRaster{Alg: f.Alg, Out: f.Out}).declare(ctx)
	return nil
}

// Process implements core.Filter.
func (f *ModelExtractRaster) Process(ctx core.Ctx) error {
	if f.Alg == ActivePixel {
		f.ap = newModelAPEmitter(ctx, f.Out)
	}
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			if f.Alg == ZBuffer {
				return emitModelZFrame(ctx, f.view, f.Out)
			}
			return f.ap.flushInput(ctx)
		}
		mc, ok := b.Payload.(MChunk)
		if !ok {
			return fmt.Errorf("isoviz: model extract-raster got %T", b.Payload)
		}
		st := mc.Stats
		ctx.Compute(f.Costs.ExtractSeconds(st.Cells, st.Tris) + f.Costs.RasterSeconds(st.Tris, f.pxPerTri))
		if f.Alg == ActivePixel {
			if err := f.ap.add(ctx, float64(st.Tris)*f.pxPerTri*f.Costs.APDedupFactor); err != nil {
				return err
			}
			if err := f.ap.flushInput(ctx); err != nil {
				return err
			}
		}
	}
}

// Finalize implements core.Filter.
func (f *ModelExtractRaster) Finalize(core.Ctx) error { return nil }

// ModelReadExtractRaster mirrors the RERa combined filters.
type ModelReadExtractRaster struct {
	Out    string
	Alg    Algorithm
	W      *Workload
	Dist   *dataset.Distribution
	Assign Assign
	Costs  CostModel

	view     View
	pxPerTri float64
}

// Init implements core.Filter.
func (f *ModelReadExtractRaster) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	f.view = view
	f.pxPerTri = f.Costs.PxPerTri(view, f.W.TotalTris(view.Timestep))
	(&ModelRaster{Alg: f.Alg, Out: f.Out}).declare(ctx)
	return nil
}

// Process implements core.Filter.
func (f *ModelReadExtractRaster) Process(ctx core.Ctx) error {
	rd := &ModelRead{W: f.W, Dist: f.Dist, Costs: f.Costs}
	var ap *modelAPEmitter
	if f.Alg == ActivePixel {
		ap = newModelAPEmitter(ctx, f.Out)
	}
	for _, chunk := range f.Assign(ctx) {
		st := f.W.Stats(chunk, f.view.Timestep)
		ctx.ChargeDisk(rd.diskOf(chunk), st.Bytes)
		ctx.Compute(float64(st.Bytes)*f.Costs.ReadCPUPerByte +
			f.Costs.ExtractSeconds(st.Cells, st.Tris) +
			f.Costs.RasterSeconds(st.Tris, f.pxPerTri))
		if f.Alg == ActivePixel {
			if err := ap.add(ctx, float64(st.Tris)*f.pxPerTri*f.Costs.APDedupFactor); err != nil {
				return err
			}
			if err := ap.flushInput(ctx); err != nil {
				return err
			}
		}
	}
	if f.Alg == ZBuffer {
		return emitModelZFrame(ctx, f.view, f.Out)
	}
	return ap.flushInput(ctx)
}

// Finalize implements core.Filter.
func (f *ModelReadExtractRaster) Finalize(core.Ctx) error { return nil }

// ModelSpec assembles a model pipeline graph with the same filter and
// stream names as PipelineSpec, so placements are interchangeable.
type ModelSpec struct {
	Config Config
	Alg    Algorithm
	W      *Workload
	Dist   *dataset.Distribution
	Assign Assign
	Costs  CostModel
}

// Build constructs the model graph.
func (s ModelSpec) Build() *core.Graph {
	g := core.NewGraph()
	switch s.Config {
	case FullPipeline:
		g.AddFilter("R", func() core.Filter {
			return &ModelRead{W: s.W, Dist: s.Dist, Assign: s.Assign, Out: StreamVoxels, Costs: s.Costs}
		})
		g.AddFilter("E", func() core.Filter {
			return &ModelExtract{In: StreamVoxels, Out: StreamTriangles, Costs: s.Costs}
		})
		g.AddFilter("Ra", func() core.Filter {
			return &ModelRaster{In: StreamTriangles, Out: StreamPixels, Alg: s.Alg, W: s.W, Costs: s.Costs}
		})
		g.Connect("R", "E", StreamVoxels)
		g.Connect("E", "Ra", StreamTriangles)
		g.Connect("Ra", "M", StreamPixels)
	case CombinedAll:
		g.AddFilter("RERa", func() core.Filter {
			return &ModelReadExtractRaster{Out: StreamPixels, Alg: s.Alg, W: s.W, Dist: s.Dist, Assign: s.Assign, Costs: s.Costs}
		})
		g.Connect("RERa", "M", StreamPixels)
	case ReadExtract:
		g.AddFilter("RE", func() core.Filter {
			return &ModelReadExtract{W: s.W, Dist: s.Dist, Assign: s.Assign, Out: StreamTriangles, Costs: s.Costs}
		})
		g.AddFilter("Ra", func() core.Filter {
			return &ModelRaster{In: StreamTriangles, Out: StreamPixels, Alg: s.Alg, W: s.W, Costs: s.Costs}
		})
		g.Connect("RE", "Ra", StreamTriangles)
		g.Connect("Ra", "M", StreamPixels)
	case ExtractRaster:
		g.AddFilter("R", func() core.Filter {
			return &ModelRead{W: s.W, Dist: s.Dist, Assign: s.Assign, Out: StreamVoxels, Costs: s.Costs}
		})
		g.AddFilter("ERa", func() core.Filter {
			return &ModelExtractRaster{In: StreamVoxels, Out: StreamPixels, Alg: s.Alg, W: s.W, Costs: s.Costs}
		})
		g.Connect("R", "ERa", StreamVoxels)
		g.Connect("ERa", "M", StreamPixels)
	default:
		panic("isoviz: unknown config")
	}
	g.AddFilter("M", func() core.Filter { return &ModelMerge{In: StreamPixels, Costs: s.Costs} })
	return g
}
