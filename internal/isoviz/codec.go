package isoviz

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"datacutter/internal/geom"
	"datacutter/internal/render"
	"datacutter/internal/wirebin"
)

// Fast-path wire codecs for the hot dist payloads: triangle batches
// (E->Ra) and the two pixel-run shapes (Ra->M). Each replaces the gob
// fallback's per-frame type descriptors and element-wise reflection with a
// count header plus bulk little-endian field data, encoded straight into
// the connection's pooled frame buffer. Registered in distfilters.go
// alongside the gob registrations, which remain the fallback.
//
// Codec ids (dist reserves 1–255 for built-ins; applications start at 256).
const (
	codecTriBatch uint16 = 256
	codecPixBatch uint16 = 257
	codecZChunk   uint16 = 258
)

// The bulk encoders view []Triangle as the flat []float32 it is in memory
// (18 float32 per triangle: 3 positions + 3 normals) and []RGB as raw
// bytes. Guard the layout assumptions the views rely on.
func init() {
	if unsafe.Sizeof(geom.Triangle{}) != geom.TriangleBytes {
		panic("isoviz: geom.Triangle layout is padded; bulk codec invalid")
	}
	if unsafe.Sizeof(render.RGB{}) != 3 {
		panic("isoviz: render.RGB layout is padded; bulk codec invalid")
	}
}

const triFloats = geom.TriangleBytes / 4 // float32s per triangle

func triView(t []geom.Triangle) []float32 {
	if len(t) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&t[0])), triFloats*len(t))
}

func rgbView(c []render.RGB) []byte {
	if len(c) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&c[0])), 3*len(c))
}

// triBatchCodec: u32 count | count×18 little-endian float32s.
type triBatchCodec struct{}

func (triBatchCodec) Append(dst []byte, v any) ([]byte, error) {
	b, ok := v.(TriBatch)
	if !ok {
		return nil, fmt.Errorf("isoviz: TriBatch codec got %T", v)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Tris)))
	return wirebin.AppendFloat32s(dst, triView(b.Tris)), nil
}

func (triBatchCodec) Decode(body []byte) (any, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("isoviz: TriBatch payload truncated")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body)-4 != n*geom.TriangleBytes {
		return nil, fmt.Errorf("isoviz: TriBatch payload: %d bytes for %d triangles", len(body)-4, n)
	}
	tris := make([]geom.Triangle, n)
	wirebin.Float32s(triView(tris), body[4:])
	return TriBatch{Tris: tris}, nil
}

func (triBatchCodec) ZeroCopy() bool { return false }

// pixBatchCodec: u32 count | count × (i32 x | i32 y | f32 depth | r g b).
// Field-wise (render.Pixel has interior padding in memory), so the wire
// layout is exactly render.PixelBytes per pixel and platform-independent.
type pixBatchCodec struct{}

func (pixBatchCodec) Append(dst []byte, v any) ([]byte, error) {
	b, ok := v.(PixBatch)
	if !ok {
		return nil, fmt.Errorf("isoviz: PixBatch codec got %T", v)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Pixels)))
	for i := range b.Pixels {
		p := &b.Pixels[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.X))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Y))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(p.Depth))
		dst = append(dst, p.C.R, p.C.G, p.C.B)
	}
	return dst, nil
}

func (pixBatchCodec) Decode(body []byte) (any, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("isoviz: PixBatch payload truncated")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body)-4 != n*render.PixelBytes {
		return nil, fmt.Errorf("isoviz: PixBatch payload: %d bytes for %d pixels", len(body)-4, n)
	}
	px := make([]render.Pixel, n)
	b := body[4:]
	for i := range px {
		px[i] = render.Pixel{
			X:     int32(binary.LittleEndian.Uint32(b)),
			Y:     int32(binary.LittleEndian.Uint32(b[4:])),
			Depth: math.Float32frombits(binary.LittleEndian.Uint32(b[8:])),
			C:     render.RGB{R: b[12], G: b[13], B: b[14]},
		}
		b = b[render.PixelBytes:]
	}
	return PixBatch{Pixels: px}, nil
}

func (pixBatchCodec) ZeroCopy() bool { return false }

// zChunkCodec: u32 off | u32 npix | npix little-endian f32 depths |
// u32 ncol | ncol × (r g b).
type zChunkCodec struct{}

func (zChunkCodec) Append(dst []byte, v any) ([]byte, error) {
	z, ok := v.(ZChunk)
	if !ok {
		return nil, fmt.Errorf("isoviz: ZChunk codec got %T", v)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(z.Off))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(z.Depth)))
	dst = wirebin.AppendFloat32s(dst, z.Depth)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(z.Color)))
	return append(dst, rgbView(z.Color)...), nil
}

func (zChunkCodec) Decode(body []byte) (any, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("isoviz: ZChunk payload truncated")
	}
	z := ZChunk{Off: int(binary.LittleEndian.Uint32(body))}
	np := int(binary.LittleEndian.Uint32(body[4:]))
	b := body[8:]
	if len(b) < 4*np+4 {
		return nil, fmt.Errorf("isoviz: ZChunk payload: %d bytes for %d depths", len(b), np)
	}
	z.Depth = make([]float32, np)
	wirebin.Float32s(z.Depth, b[:4*np])
	b = b[4*np:]
	nc := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != 3*nc {
		return nil, fmt.Errorf("isoviz: ZChunk payload: %d bytes for %d colors", len(b), nc)
	}
	z.Color = make([]render.RGB, nc)
	copy(rgbView(z.Color), b)
	return z, nil
}

func (zChunkCodec) ZeroCopy() bool { return false }
