package isoviz

import (
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/geom"
	"datacutter/internal/mcubes"
	"datacutter/internal/obs"
	"datacutter/internal/render"
)

// The paper evaluates three decompositions of the application beyond the
// fully split R–E–Ra–M (Figure 3): RERa–M, RE–Ra–M, and R–ERa–M. The
// combined filters below fuse stages inside one filter, trading pipeline
// decoupling for lower communication volume.

// ReadExtractFilter (RE) fuses reading and extraction: chunks never cross
// the network as voxels, only triangles leave the filter. With Pushdown the
// predicate prunes before any chunk read (see ReadFilter).
type ReadExtractFilter struct {
	core.BaseFilter
	Source   ChunkSource
	Assign   Assign
	Out      string
	Pushdown bool
	Pred     dataset.Predicate
}

// SetObserver implements core.ObserverSetter (near-storage metrics).
func (f *ReadExtractFilter) SetObserver(o *obs.Observer) { forwardObserver(f.Source, o) }

// Process implements core.Filter.
func (f *ReadExtractFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	packer := newTriPacker(ctx, f.Out)
	chunks := pruneChunks(f.Source, f.Assign(ctx), view, f.Pred, f.Pushdown)
	load, stop := planLoad(f.Source, chunks, view.Timestep)
	defer stop()
	for _, chunk := range chunks {
		v, err := load(chunk, view.Timestep)
		if err != nil {
			return fmt.Errorf("isoviz: read chunk %d: %w", chunk, err)
		}
		if err := extractBlock(ctx, v, view.Iso, packer); err != nil {
			return err
		}
		if err := packer.flush(ctx); err != nil {
			return err
		}
	}
	return nil
}

// ExtractRasterZFilter (ERa, z-buffer) fuses extraction and rasterization:
// triangles are rendered where they are generated.
type ExtractRasterZFilter struct {
	In, Out string
	st      *zbufState
}

// Init implements core.Filter.
func (f *ExtractRasterZFilter) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	ctx.DeclareBuffer(f.Out, ZFrameBufferBytes, 0)
	f.st = newZbufState(view)
	return nil
}

// Process implements core.Filter.
func (f *ExtractRasterZFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			return sendZBuffer(ctx, f.st.z, f.Out)
		}
		vb, ok := b.Payload.(VoxelBlock)
		if !ok {
			return fmt.Errorf("isoviz: extract-raster got %T", b.Payload)
		}
		f.st.renderBlock(vb, view.Iso)
	}
}

// Finalize implements core.Filter.
func (f *ExtractRasterZFilter) Finalize(core.Ctx) error {
	f.st = nil
	return nil
}

// ExtractRasterAPFilter (ERa, active pixel).
type ExtractRasterAPFilter struct {
	In, Out string
	ap      *apState
}

// Init implements core.Filter.
func (f *ExtractRasterAPFilter) Init(ctx core.Ctx) error {
	if _, err := viewOf(ctx); err != nil {
		return err
	}
	ctx.DeclareBuffer(f.Out, 0, WPABufferBytes)
	return nil
}

// Process implements core.Filter.
func (f *ExtractRasterAPFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	f.ap = newAPState(ctx, view, f.Out)
	f.ap.ctx = ctx
	defer func() { f.ap.ctx = nil }()
	for {
		b, ok := ctx.Read(f.In)
		if !ok {
			f.ap.ap.FlushRemaining()
			return f.ap.werr
		}
		vb, ok := b.Payload.(VoxelBlock)
		if !ok {
			return fmt.Errorf("isoviz: extract-raster got %T", b.Payload)
		}
		f.ap.extractRenderBlock(vb, view.Iso)
		f.ap.ap.FlushRemaining()
		if f.ap.werr != nil {
			return f.ap.werr
		}
	}
}

// Finalize implements core.Filter.
func (f *ExtractRasterAPFilter) Finalize(core.Ctx) error {
	f.ap = nil
	return nil
}

// ReadExtractRasterZFilter (RERa, z-buffer) fuses the whole producer side:
// the application degenerates to SPMD processing plus a final merge, the
// configuration closest to ADR's model (paper §4.3: a single combined
// filter allows no demand-driven distribution among copies).
type ReadExtractRasterZFilter struct {
	Source   ChunkSource
	Assign   Assign
	Out      string
	Pushdown bool
	Pred     dataset.Predicate
	st       *zbufState
}

// SetObserver implements core.ObserverSetter (near-storage metrics).
func (f *ReadExtractRasterZFilter) SetObserver(o *obs.Observer) { forwardObserver(f.Source, o) }

// Init implements core.Filter.
func (f *ReadExtractRasterZFilter) Init(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	ctx.DeclareBuffer(f.Out, ZFrameBufferBytes, 0)
	f.st = newZbufState(view)
	return nil
}

// Process implements core.Filter.
func (f *ReadExtractRasterZFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	chunks := pruneChunks(f.Source, f.Assign(ctx), view, f.Pred, f.Pushdown)
	load, stop := planLoad(f.Source, chunks, view.Timestep)
	defer stop()
	for _, chunk := range chunks {
		v, err := load(chunk, view.Timestep)
		if err != nil {
			return fmt.Errorf("isoviz: read chunk %d: %w", chunk, err)
		}
		f.st.renderBlock(VoxelBlock{V: v}, view.Iso)
	}
	return sendZBuffer(ctx, f.st.z, f.Out)
}

// Finalize implements core.Filter.
func (f *ReadExtractRasterZFilter) Finalize(core.Ctx) error {
	f.st = nil
	return nil
}

// ReadExtractRasterAPFilter (RERa, active pixel).
type ReadExtractRasterAPFilter struct {
	Source   ChunkSource
	Assign   Assign
	Out      string
	Pushdown bool
	Pred     dataset.Predicate
	ap       *apState
}

// SetObserver implements core.ObserverSetter (near-storage metrics).
func (f *ReadExtractRasterAPFilter) SetObserver(o *obs.Observer) { forwardObserver(f.Source, o) }

// Init implements core.Filter.
func (f *ReadExtractRasterAPFilter) Init(ctx core.Ctx) error {
	if _, err := viewOf(ctx); err != nil {
		return err
	}
	ctx.DeclareBuffer(f.Out, 0, WPABufferBytes)
	return nil
}

// Process implements core.Filter.
func (f *ReadExtractRasterAPFilter) Process(ctx core.Ctx) error {
	view, err := viewOf(ctx)
	if err != nil {
		return err
	}
	f.ap = newAPState(ctx, view, f.Out)
	f.ap.ctx = ctx
	defer func() { f.ap.ctx = nil }()
	chunks := pruneChunks(f.Source, f.Assign(ctx), view, f.Pred, f.Pushdown)
	load, stop := planLoad(f.Source, chunks, view.Timestep)
	defer stop()
	for _, chunk := range chunks {
		v, err := load(chunk, view.Timestep)
		if err != nil {
			return fmt.Errorf("isoviz: read chunk %d: %w", chunk, err)
		}
		f.ap.extractRenderBlock(VoxelBlock{V: v}, view.Iso)
		if f.ap.werr != nil {
			return f.ap.werr
		}
	}
	f.ap.ap.FlushRemaining()
	return f.ap.werr
}

// Finalize implements core.Filter.
func (f *ReadExtractRasterAPFilter) Finalize(core.Ctx) error {
	f.ap = nil
	return nil
}

// apState bundles an active-pixel rasterizer whose flushes write buffers.
type apState struct {
	rr   *render.Raster
	ap   *render.ActivePixels
	out  string
	ctx  core.Ctx
	werr error
}

// renderBlock extracts and immediately rasterizes one chunk into the
// private z-buffer.
func (s *zbufState) renderBlock(vb VoxelBlock, iso float32) {
	mcubes.Walk(vb.V, iso, func(t geom.Triangle) { s.rr.Draw(t, s.z) })
}

// extractRenderBlock extracts and rasterizes one chunk through the
// active-pixel target (flushes may fire mid-block when the WPA fills).
func (s *apState) extractRenderBlock(vb VoxelBlock, iso float32) {
	mcubes.Walk(vb.V, iso, func(t geom.Triangle) { s.rr.Draw(t, s.ap) })
}

// newAPState must run in Process (buffer sizes are resolved after Init).
func newAPState(ctx core.Ctx, view View, out string) *apState {
	s := &apState{out: out}
	capPixels := ctx.BufferBytes(out) / render.PixelBytes
	if capPixels < 1 {
		capPixels = 1
	}
	s.rr = render.NewRaster(view.Camera, view.Width, view.Height)
	s.ap = render.NewActivePixels(view.Width, view.Height, capPixels, func(px []render.Pixel) {
		if s.werr != nil {
			return
		}
		batch := PixBatch{Pixels: append([]render.Pixel(nil), px...)}
		s.werr = s.ctx.Write(s.out, core.Buffer{Payload: batch, Size: batch.Bytes()})
	})
	return s
}
