package tablefmt

import (
	"strings"
	"testing"
)

func TestBasicRendering(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.Row("alpha", 42)
	tb.Row("b", 3.14159)
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha  42") {
		t.Fatalf("row not rendered:\n%s", out)
	}
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Fatalf("floats should render with 2 decimals:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestColumnsAlign(t *testing.T) {
	tb := New("", "a", "b")
	tb.Row("short", 1)
	tb.Row("muchlongervalue", 2)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Column b should start at the same offset on both data rows.
	r1, r2 := lines[len(lines)-2], lines[len(lines)-1]
	if strings.IndexByte(r1, '1') == -1 || strings.Index(r2, "2") == -1 {
		t.Fatalf("rows missing:\n%s", out)
	}
	if strings.Index(r1, "1") != strings.Index(r2, "2") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestCellAccess(t *testing.T) {
	tb := New("", "x")
	tb.Row("v0").Row("v1")
	if tb.Rows() != 2 || tb.Cell(1, 0) != "v1" {
		t.Fatalf("Rows/Cell wrong: %d %q", tb.Rows(), tb.Cell(1, 0))
	}
	if tb.Cell(5, 5) != "" {
		t.Fatal("out-of-range Cell should be empty")
	}
}

func TestExtraCellsBeyondHeaders(t *testing.T) {
	tb := New("", "only")
	tb.Row("a", "b", "c")
	out := tb.String()
	if !strings.Contains(out, "b") || !strings.Contains(out, "c") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}

func TestFloat32Formatting(t *testing.T) {
	tb := New("", "v")
	tb.Row(float32(1.5))
	if tb.Cell(0, 0) != "1.50" {
		t.Fatalf("float32 cell = %q", tb.Cell(0, 0))
	}
}
