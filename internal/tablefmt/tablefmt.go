// Package tablefmt renders fixed-width text tables for the experiment
// harness's paper-style output.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New creates a table with a title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v, floats with 2 decimals.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col), or "" out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range width {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
