package dist

import (
	"net"
	"testing"
	"time"

	"datacutter/internal/leakcheck"
	"datacutter/internal/obs"
)

// tcpPair returns a connected loopback socket pair so the vectored-write
// path (net.Buffers -> writev) is the one under test.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, derr := net.Dial("tcp", ln.Addr().String())
	<-done
	if err != nil || derr != nil {
		t.Fatalf("pair: accept=%v dial=%v", err, derr)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestConnBatchedWritevRoundTrip pushes a burst of small and large frames
// through one conn and checks the receiver sees every frame, in order, with
// intact payloads — the writev framing invariant: segment boundaries are
// invisible on the wire.
func TestConnBatchedWritevRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	cc, sc := tcpPair(t)

	reg := obs.NewRegistry()
	m := &connMetrics{
		flushes:        reg.Counter("dist.tx.flushes"),
		framesPerFlush: reg.Histogram("dist.tx.frames_per_flush"),
		frameBytes:     reg.Histogram("dist.tx.frame_bytes"),
		writevCalls:    reg.Counter("dist.tx.writev_calls"),
		writevIovecs:   reg.Histogram("dist.tx.writev_iovecs"),
		writevBytes:    reg.Counter("dist.tx.writev_bytes"),
	}
	c := newConn(cc, m)
	defer c.close()
	s := newConn(sc, nil)
	defer s.close()

	big := make([]byte, 3*smallFrameMax)
	for i := range big {
		big[i] = byte(i)
	}
	const n = 100
	for i := 0; i < n; i++ {
		var f *frame
		if i%10 == 9 { // every tenth frame is a large zero-copy segment
			f = dataFrame(7, 0, "s", 0, 0, 0, len(big), big)
		} else {
			f = &frame{Kind: kindAck, Job: 7, Stream: "s", Target: i, AckN: 1}
		}
		if err := c.send(f); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		f, err := s.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if i%10 == 9 {
			if f.Kind != kindData || len(f.Payload) == 0 {
				t.Fatalf("frame %d: kind %v, payload %d bytes", i, f.Kind, len(f.Payload))
			}
			p, rel, err := decodePayload(f)
			if err != nil {
				t.Fatal(err)
			}
			got := p.([]byte)
			for j := range got {
				if got[j] != byte(j) {
					t.Fatalf("frame %d payload corrupted at byte %d", i, j)
				}
			}
			if rel != nil {
				rel()
			}
		} else if f.Kind != kindAck || f.Target != i {
			t.Fatalf("frame %d: kind %v target %d", i, f.Kind, f.Target)
		}
	}
	if v := reg.Counter("dist.tx.writev_calls").Value(); v == 0 {
		t.Fatal("no vectored writes recorded")
	}
	if v := reg.Counter("dist.tx.writev_bytes").Value(); v == 0 {
		t.Fatal("no vectored bytes recorded")
	}
}

// TestFlusherStopsOnClose pins the satellite fix: the flush-on-idle
// goroutine must exit when the connection closes (leakcheck fails the test
// if it lingers), including when frames are still queued at close time.
func TestFlusherStopsOnClose(t *testing.T) {
	leakcheck.Check(t)
	for i := 0; i < 20; i++ {
		cc, sc := tcpPair(t)
		c := newConn(cc, nil)
		s := newConn(sc, nil)
		for j := 0; j < 50; j++ {
			if err := c.send(&frame{Kind: kindAck, Job: 1, Stream: "s", AckN: 1}); err != nil {
				t.Fatal(err)
			}
		}
		c.close()
		s.close()
	}
}

// TestConnCloseBoundedOnStuckPeer reproduces the close-time deadlock the
// rewrite fixes: the flusher is mid-write on a peer that never reads, and
// close() must still return within its deadline bound instead of waiting
// out the TCP stack. net.Pipe is fully synchronous (a write blocks until
// the other side reads), the sharpest version of "stuck".
func TestConnCloseBoundedOnStuckPeer(t *testing.T) {
	leakcheck.Check(t)
	cc, sc := net.Pipe()
	defer sc.Close()
	c := newConn(cc, nil)
	if err := c.send(&frame{Kind: kindAck, Job: 1, Stream: "s", AckN: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	start := time.Now()
	go func() {
		c.close()
		close(done)
	}()
	select {
	case <-done:
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("close took %v against a stuck peer", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close deadlocked against a stuck peer")
	}
}

// TestSendAfterCloseFails pins the sticky error: a closed connection
// refuses frames deterministically rather than queueing them forever.
func TestSendAfterCloseFails(t *testing.T) {
	leakcheck.Check(t)
	cc, sc := tcpPair(t)
	c := newConn(cc, nil)
	s := newConn(sc, nil)
	defer s.close()
	c.close()
	if err := c.send(&frame{Kind: kindAck, Job: 1, Stream: "s"}); err == nil {
		t.Fatal("send on a closed conn succeeded")
	}
}
