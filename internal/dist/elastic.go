package dist

import (
	"fmt"

	"datacutter/internal/elastic"
)

// Elasticity on the distributed engine. Copy-set membership changes apply
// at work-cycle boundaries only: the coordinator gracefully ends every
// worker session and re-runs setup with the mutated placement — the same
// session restart fault recovery already performs, minus the casualties.
// Transparent-copy semantics make this legal: per-UOW filter state is
// rebuilt by Init, so spawned and retired copies need no state hand-off.

// toEntries converts a dist placement to engine-neutral elastic entries.
func toEntries(pl []PlacementEntry) []elastic.Entry {
	out := make([]elastic.Entry, len(pl))
	for i, pe := range pl {
		out[i] = elastic.Entry{Filter: pe.Filter, Host: pe.Host, Copies: pe.Copies}
	}
	return out
}

func fromEntries(es []elastic.Entry) []PlacementEntry {
	out := make([]PlacementEntry, len(es))
	for i, e := range es {
		out[i] = PlacementEntry{Filter: e.Filter, Host: e.Host, Copies: e.Copies}
	}
	return out
}

// validateSchedule rejects steps naming filters absent from the graph spec,
// hosts without a worker address, or the reserved zero boundary.
func validateSchedule(spec GraphSpec, addrs map[string]string, steps []elastic.ScaleStep) error {
	known := make(map[string]bool, len(spec.Filters))
	for _, f := range spec.Filters {
		known[f.Name] = true
	}
	for _, s := range steps {
		if !known[s.Filter] {
			return fmt.Errorf("dist: scale schedule names unknown filter %q", s.Filter)
		}
		if s.BeforeUOW < 1 {
			return fmt.Errorf("dist: scale step for %q has BeforeUOW %d (the initial plan is the zero boundary; steps need >= 1)", s.Filter, s.BeforeUOW)
		}
		if s.Copies >= 1 {
			if _, ok := addrs[s.Host]; !ok {
				return fmt.Errorf("dist: scale step for %q uses host %q with no worker address", s.Filter, s.Host)
			}
		}
	}
	return nil
}

// rescaleSessions applies the scale steps due at boundary uow. Steps whose
// target host has no live worker (it died mid-run and was replanned away)
// are dropped — a dead host cannot take copies. When the effective
// placement actually changes, every worker session is gracefully shut down
// and set up again with the new plan, and the elastic metrics and scale
// trace events are published on the coordinator's observer.
func (co *coordinator) rescaleSessions(due []elastic.ScaleStep, uow int) error {
	live := make([]elastic.ScaleStep, 0, len(due))
	for _, s := range due {
		if s.Copies >= 1 {
			if _, ok := co.addrs[s.Host]; !ok {
				continue
			}
		}
		live = append(live, s)
	}
	if len(live) == 0 {
		return nil
	}
	old := co.placement
	next := fromEntries(elastic.Apply(toEntries(old), live))
	if placementEqual(old, next) {
		return nil
	}
	co.shutdownAll()
	co.shut = false
	co.placement = next
	emitScaleDiff(co, old, next, uow)
	return co.connectAll()
}

func placementEqual(a, b []PlacementEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// emitScaleDiff publishes one RecordScale per (filter, host) pair whose
// copy count changed between the old and new placements.
func emitScaleDiff(co *coordinator, old, next []PlacementEntry, uow int) {
	type key struct{ filter, host string }
	before := make(map[key]int, len(old))
	for _, e := range old {
		before[key{e.Filter, e.Host}] += e.Copies
	}
	seen := make(map[key]bool, len(next))
	for _, e := range next {
		k := key{e.Filter, e.Host}
		if seen[k] {
			continue
		}
		seen[k] = true
		after := 0
		for _, e2 := range next {
			if e2.Filter == k.filter && e2.Host == k.host {
				after += e2.Copies
			}
		}
		if b := before[k]; b != after {
			elastic.RecordScale(co.o, k.filter, k.host, b, after, uow, "scale schedule")
		}
	}
	for k, b := range before {
		if !seen[k] {
			elastic.RecordScale(co.o, k.filter, k.host, b, 0, uow, "scale schedule")
		}
	}
}
