package dist_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/leakcheck"
)

// cancelRecordingSource writes n ints and records the first Write error, so
// tests can assert the distributed engine's cancellation contract: a
// producer blocked on a same-host queue (or sending to a failed session)
// gets core.ErrCancelled, not a hang.
type cancelRecordingSource struct {
	core.BaseFilter
	n    int
	werr error
}

func (s *cancelRecordingSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if err := ctx.Write("ints", core.Buffer{Payload: i, Size: 8}); err != nil {
			s.werr = err
			return err
		}
	}
	return nil
}

func init() {
	dist.RegisterFilter("test.cancelsource", func([]byte) (core.Filter, error) {
		return &cancelRecordingSource{n: 500}, nil
	})
}

// TestDistributedLocalWriteCancelled: producer and failing consumer share a
// host, so delivery goes through the same-host queue path (enqueueLocal).
// When the consumer fails, the producer blocked on the tiny full queue must
// be released with core.ErrCancelled and the run must surface the
// consumer's error promptly.
func TestDistributedLocalWriteCancelled(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 1)
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.cancelsource"},
			{Name: "F", Kind: "test.fail"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "F"}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := dist.Run(addrs, g, []dist.PlacementEntry{
			{Filter: "S", Host: "host0", Copies: 1},
			{Filter: "F", Host: "host0", Copies: 1},
		}, dist.Options{QueueCap: 1}, nil)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("run hung: blocked same-host producer was never cancelled")
	}
	if err == nil {
		t.Fatal("consumer failure not surfaced")
	}
	if errors.Is(err, core.ErrCancelled) {
		t.Fatalf("run error = %v: application error must win over the cancellation it caused", err)
	}
	src := workers["host0"].Instances("S")[0].(*cancelRecordingSource)
	if !errors.Is(src.werr, core.ErrCancelled) {
		t.Fatalf("source write error = %v, want core.ErrCancelled", src.werr)
	}
}

// crawlSource writes n ints with a sleep between writes — slow enough for
// a caller to cancel the run context mid-stream.
type crawlSource struct {
	core.BaseFilter
	n int
}

func (s *crawlSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := ctx.Write("ints", core.Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
	}
	return nil
}

func init() {
	dist.RegisterFilter("test.crawlsrc", func(p []byte) (core.Filter, error) {
		return &crawlSource{n: int(p[0])}, nil
	})
}

// Cancelling the run context mid-session returns an error wrapping
// context.Canceled and tears the session down through the abort protocol:
// the same workers serve a fresh run immediately afterwards.
func TestRunCtxCancelTearsDown(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.crawlsrc", Params: []byte{200}},
			{Name: "K", Kind: "test.sink"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "K"}},
	}
	place := []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := dist.RunCtx(ctx, addrs, g, place, dist.Options{}, nil)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error %v does not wrap context.Canceled", err)
	}
	// 200 writes x 20ms would run ~4s; cancellation must cut that short.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}

	// The aborted session released the workers: a fresh (uncancelled) run
	// over the same mesh completes with full delivery.
	const n = 30
	if _, err := dist.Run(addrs, intGraph(n), place, dist.Options{}, nil); err != nil {
		t.Fatalf("mesh unusable after cancelled run: %v", err)
	}
	seen := 0
	for _, inst := range workers["host1"].Instances("K") {
		seen += inst.(*intSink).Seen
	}
	if seen < n {
		t.Fatalf("post-cancel run delivered %d, want >= %d", seen, n)
	}
}
