package dist_test

import (
	"errors"
	"testing"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/leakcheck"
)

// cancelRecordingSource writes n ints and records the first Write error, so
// tests can assert the distributed engine's cancellation contract: a
// producer blocked on a same-host queue (or sending to a failed session)
// gets core.ErrCancelled, not a hang.
type cancelRecordingSource struct {
	core.BaseFilter
	n    int
	werr error
}

func (s *cancelRecordingSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if err := ctx.Write("ints", core.Buffer{Payload: i, Size: 8}); err != nil {
			s.werr = err
			return err
		}
	}
	return nil
}

func init() {
	dist.RegisterFilter("test.cancelsource", func([]byte) (core.Filter, error) {
		return &cancelRecordingSource{n: 500}, nil
	})
}

// TestDistributedLocalWriteCancelled: producer and failing consumer share a
// host, so delivery goes through the same-host queue path (enqueueLocal).
// When the consumer fails, the producer blocked on the tiny full queue must
// be released with core.ErrCancelled and the run must surface the
// consumer's error promptly.
func TestDistributedLocalWriteCancelled(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 1)
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.cancelsource"},
			{Name: "F", Kind: "test.fail"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "F"}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := dist.Run(addrs, g, []dist.PlacementEntry{
			{Filter: "S", Host: "host0", Copies: 1},
			{Filter: "F", Host: "host0", Copies: 1},
		}, dist.Options{QueueCap: 1}, nil)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("run hung: blocked same-host producer was never cancelled")
	}
	if err == nil {
		t.Fatal("consumer failure not surfaced")
	}
	if errors.Is(err, core.ErrCancelled) {
		t.Fatalf("run error = %v: application error must win over the cancellation it caused", err)
	}
	src := workers["host0"].Instances("S")[0].(*cancelRecordingSource)
	if !errors.Is(src.werr, core.ErrCancelled) {
		t.Fatalf("source write error = %v, want core.ErrCancelled", src.werr)
	}
}
