package dist_test

import (
	"testing"

	"datacutter/internal/dist"
	"datacutter/internal/elastic"
	"datacutter/internal/leakcheck"
	"datacutter/internal/obs"
)

// TestDistElasticScaleScheduleRestartsSessions drives a 3-UOW distributed
// run through a seeded scale-up (sink grows onto a second host) and
// scale-down (it retreats), checking delivery conservation across the
// session restarts, traffic on the grown host, and the elastic metrics.
func TestDistElasticScaleScheduleRestartsSessions(t *testing.T) {
	leakcheck.Check(t)
	addrs, _ := startWorkers(t, 2)
	const n = 40
	ring := obs.NewRingSink(1 << 12)
	o := obs.New(ring, nil)
	st, err := dist.RunObserved(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}, dist.Options{
		ScaleSchedule: []elastic.ScaleStep{
			{BeforeUOW: 1, Filter: "K", Host: "host1", Copies: 2},
			{BeforeUOW: 2, Filter: "K", Host: "host1", Copies: 0},
		},
	}, []any{0, 1, 2}, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams["ints"].Buffers != 3*n {
		t.Fatalf("delivered %d buffers across 3 UOWs, want %d", st.Streams["ints"].Buffers, 3*n)
	}
	// UOW 1 ran the sink on both hosts; RR must have used the new one.
	per := st.Streams["ints"].PerTargetHost
	if per["host1"] == 0 {
		t.Fatalf("per-target deliveries %v: grown host never picked", per)
	}
	if per["host0"] == 0 {
		t.Fatalf("per-target deliveries %v: original host starved", per)
	}
	reg := o.Registry()
	if v := reg.Counter(elastic.MetricCopiesAdded).Value(); v != 2 {
		t.Fatalf("copies_added = %d, want 2", v)
	}
	if v := reg.Counter(elastic.MetricCopiesRemoved).Value(); v != 2 {
		t.Fatalf("copies_removed = %d, want 2", v)
	}
	var ups, downs int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KindScaleUp:
			ups++
			if e.Filter != "K" || e.Host != "host1" || e.Copy != 2 || e.UOW != 1 {
				t.Fatalf("scale-up event: %+v", e)
			}
		case obs.KindScaleDown:
			downs++
			if e.Copy != 0 || e.UOW != 2 {
				t.Fatalf("scale-down event: %+v", e)
			}
		}
	}
	if ups != 1 || downs != 1 {
		t.Fatalf("scale events up=%d down=%d, want 1/1", ups, downs)
	}
}

// TestDistElasticScheduleValidation rejects bad schedules before any
// worker is dialed.
func TestDistElasticScheduleValidation(t *testing.T) {
	leakcheck.Check(t)
	addrs, _ := startWorkers(t, 1)
	pl := []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}
	cases := []elastic.ScaleStep{
		{BeforeUOW: 1, Filter: "nope", Host: "host0", Copies: 2},
		{BeforeUOW: 0, Filter: "K", Host: "host0", Copies: 2},
		{BeforeUOW: 1, Filter: "K", Host: "ghost", Copies: 2},
	}
	for i, step := range cases {
		_, err := dist.Run(addrs, intGraph(1), pl,
			dist.Options{ScaleSchedule: []elastic.ScaleStep{step}}, []any{0, 1})
		if err == nil {
			t.Fatalf("case %d: bad step %+v accepted", i, step)
		}
	}
}
