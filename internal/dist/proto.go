// Package dist executes a filter graph across multiple OS processes
// connected by TCP — the deployment model of the original DataCutter
// prototype ("the current prototype implementation uses TCP for stream
// communication", paper §2). A coordinator distributes the graph spec and
// placement to workers (one per named host); each worker runs its local
// transparent copies as goroutines; stream buffers between copies on
// different hosts travel as gob-encoded frames over per-host-pair TCP
// connections, with TCP backpressure standing in for bounded queues across
// the wire. The same core.Policy objects drive buffer distribution, and
// demand-driven acknowledgments are real network messages.
//
// Filters are constructed worker-side from a registry of named builders
// (the coordinator ships only the spec), so any process that imports the
// application's filter package can serve as a worker.
package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"datacutter/internal/core"
)

// FilterSpec names a registered filter builder plus its parameters.
type FilterSpec struct {
	Name   string // filter name in the graph
	Kind   string // registered builder kind
	Params []byte // builder-specific encoding (often gob or JSON)
}

// GraphSpec is a serializable filter graph.
type GraphSpec struct {
	Filters []FilterSpec
	Streams []core.StreamSpec
}

// PlacementEntry assigns copies of a filter to a host.
type PlacementEntry struct {
	Filter string
	Host   string
	Copies int
}

// Options configures a distributed run.
type Options struct {
	Policy      string // policy name (core.PolicyByName); default RR
	QueueCap    int    // per-copy-set queue capacity (default 8)
	BufferBytes int    // default stream buffer size (default 256 KiB)
}

// Builder constructs a filter instance on a worker.
type Builder func(params []byte) (core.Filter, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// RegisterFilter makes a filter kind constructible on workers. Typically
// called from an init function in the application's filter package.
func RegisterFilter(kind string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic("dist: duplicate filter kind " + kind)
	}
	registry[kind] = b
}

func builderFor(kind string) (Builder, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("dist: filter kind %q not registered on this worker", kind)
	}
	return b, nil
}

// ---- Wire frames ----
//
// Control frames travel on the coordinator<->worker connection; data, ack,
// and producer-done frames travel on worker->worker connections (one TCP
// connection per ordered host pair, so FIFO ordering between a host's data
// and its end-of-work markers is guaranteed by TCP).

type frame struct {
	Kind frameKind

	// Control (coordinator -> worker).
	Setup *setupMsg
	UOW   *uowMsg
	Sizes map[string]int // resolved stream buffer sizes

	// Control (worker -> coordinator).
	Decls map[string][2]int // stream -> {min,max} declared this UOW
	Err   string
	Stats *wireStats

	// Peer traffic (worker -> worker).
	UOWIdx  int // unit of work the frame belongs to (stale frames dropped)
	Stream  string
	Target  int    // consumer copy-set index (data) / producer target index (ack)
	Copy    int    // producer global copy index (data: sender; ack: addressee)
	AckN    int    // coalesced ack count
	Payload []byte // gob-encoded core.Buffer payload
	Size    int    // buffer's accounted size
}

type frameKind uint8

const (
	kindHello frameKind = iota + 1
	kindSetup
	kindSetupOK
	kindInitUOW
	kindDecls
	kindBeginProcess
	kindProcessDone
	kindFinalize
	kindFinalizeDone
	kindShutdown
	kindData
	kindAck
	kindProducerDone
	kindFail
)

type setupMsg struct {
	Graph     GraphSpec
	Placement []PlacementEntry
	Opts      Options
	Addrs     map[string]string // host name -> worker address
	Host      string            // the receiving worker's host name
}

type uowMsg struct {
	Index int
	Work  []byte // gob-encoded unit-of-work descriptor
}

// wireStats is the per-worker stats fragment returned at finalize.
type wireStats struct {
	StreamBuffers map[string]int64
	StreamBytes   map[string]int64
	StreamAcks    map[string]int64
	PerTarget     map[string]map[string]int64 // stream -> host -> buffers
	FilterBusy    map[string][]float64        // filter -> per-local-copy busy seconds
}

// RegisterPayload registers a buffer payload or unit-of-work type with gob
// (convenience wrapper so applications don't import encoding/gob).
func RegisterPayload(v any) { gob.Register(v) }

// encodeAny gob-encodes a value (with its concrete type registered).
func encodeAny(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeAny(raw []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// conn wraps a TCP connection with a locked gob encoder/decoder.
type conn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	mu  sync.Mutex
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (c *conn) send(f *frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(f)
}

func (c *conn) recv() (*frame, error) {
	var f frame
	if err := c.dec.Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}
