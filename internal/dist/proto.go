// Package dist executes a filter graph across multiple OS processes
// connected by TCP — the deployment model of the original DataCutter
// prototype ("the current prototype implementation uses TCP for stream
// communication", paper §2). A coordinator distributes the graph spec and
// placement to workers (one per named host); each worker runs its local
// transparent copies as goroutines; stream buffers between copies on
// different hosts travel as length-prefixed binary frames over
// per-host-pair TCP connections, with TCP backpressure standing in for
// bounded queues across the wire. The same core.Policy objects drive
// buffer distribution, and demand-driven acknowledgments are real network
// messages.
//
// The data plane (data, ack, and producer-done frames) uses hand-rolled
// binary headers, per-payload-type codecs (PayloadCodec, with a gob
// fallback for unregistered types), pooled frame buffers, and buffered
// connection writers whose flush-on-idle policy coalesces bursts of small
// frames into single syscalls (wire.go, codec.go). Control frames stay on
// gob — they are per-session or per-unit-of-work, never per-buffer.
//
// Filters are constructed worker-side from a registry of named builders
// (the coordinator ships only the spec), so any process that imports the
// application's filter package can serve as a worker.
package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/elastic"
	"datacutter/internal/faults"
)

// FilterSpec names a registered filter builder plus its parameters.
type FilterSpec struct {
	Name   string // filter name in the graph
	Kind   string // registered builder kind
	Params []byte // builder-specific encoding (often gob or JSON)
}

// GraphSpec is a serializable filter graph.
type GraphSpec struct {
	Filters []FilterSpec
	Streams []core.StreamSpec
}

// PlacementEntry assigns copies of a filter to a host.
type PlacementEntry struct {
	Filter string
	Host   string
	Copies int
}

// Options configures a distributed run.
type Options struct {
	// JobID namespaces the run on the worker mesh: every setup, data, ack,
	// and producer-done frame carries it, so one persistent worker process
	// serves interleaved sessions from many concurrent jobs (internal/jobd
	// assigns unique ids). Zero — the default for one-shot runs — behaves
	// exactly like the pre-job protocol: a second setup with the same id is
	// refused while the first session is active.
	JobID uint64

	Policy string // default policy name (core.PolicyByName); default RR
	// StreamPolicy overrides the writer policy for individual streams by
	// name ("RR" | "WRR" | "DD" | "DD/<k>"). Carried to every worker in
	// the setup frame; the coordinator rejects the run up front if any
	// name fails core.PolicyByName.
	StreamPolicy map[string]string
	QueueCap     int // per-copy-set queue capacity (default 8)
	BufferBytes  int // default stream buffer size (default 256 KiB)

	// Transport selects the peer data-plane link: "tcp" (the default, also
	// chosen by "") always dials sockets; "ring" moves frames over
	// in-process SPSC rings and fails when a peer worker is not in this
	// process; "auto" uses a ring per edge when the peer is in-process and
	// TCP otherwise. Control-plane traffic always stays on TCP. Carried to
	// every worker in the setup frame.
	Transport string

	// ScaleSchedule lists seeded copy-set membership changes applied at
	// work-cycle boundaries (elastic.ScaleStep.BeforeUOW >= 1): the
	// coordinator restarts worker sessions with the mutated placement.
	// Gob-carried in the setup frame like the rest of Options, though only
	// the coordinator acts on it.
	ScaleSchedule []elastic.ScaleStep

	// Failure model. Zero values select the defaults below; recovery is
	// opt-in — with MaxUOWRetries at its default of 0, a lost host fails
	// the run immediately (the pre-failure-model behaviour).
	DialTimeout       time.Duration // per-attempt dial timeout (default DefaultDialTimeout)
	DialAttempts      int           // dial attempts before giving up (default 3)
	HeartbeatInterval time.Duration // control-plane heartbeat period (default 1s)
	HeartbeatMisses   int           // consecutive missed beats before a host is dead (default 3)
	MaxUOWRetries     int           // re-dispatches of a failed UOW on a shrunk placement

	// faults is a coordinator-side injector (dial failures). Unexported so
	// gob never ships it to workers; workers get their own injector via
	// Worker.SetFaults. Set with WithFaults.
	faults *faults.Injector
}

// Defaults for the failure-model knobs in Options.
const (
	DefaultDialTimeout       = 10 * time.Second
	DefaultDialAttempts      = 3
	DefaultHeartbeatInterval = time.Second
	DefaultHeartbeatMisses   = 3
)

// WithFaults returns a copy of o carrying a coordinator-side fault
// injector (consulted on dial attempts). Test/chaos use only.
func (o Options) WithFaults(in *faults.Injector) Options {
	o.faults = in
	return o
}

// validate rejects nonsensical knob values; zero means "use the default".
func (o Options) validate() error {
	if o.QueueCap < 0 {
		return fmt.Errorf("dist: Options.QueueCap must be >= 0, got %d", o.QueueCap)
	}
	if o.BufferBytes < 0 {
		return fmt.Errorf("dist: Options.BufferBytes must be >= 0, got %d", o.BufferBytes)
	}
	if o.DialTimeout < 0 {
		return fmt.Errorf("dist: Options.DialTimeout must be >= 0, got %v", o.DialTimeout)
	}
	if o.DialAttempts < 0 {
		return fmt.Errorf("dist: Options.DialAttempts must be >= 0, got %d", o.DialAttempts)
	}
	if o.HeartbeatInterval < 0 {
		return fmt.Errorf("dist: Options.HeartbeatInterval must be >= 0, got %v", o.HeartbeatInterval)
	}
	if o.HeartbeatMisses < 0 {
		return fmt.Errorf("dist: Options.HeartbeatMisses must be >= 0, got %d", o.HeartbeatMisses)
	}
	if o.MaxUOWRetries < 0 {
		return fmt.Errorf("dist: Options.MaxUOWRetries must be >= 0, got %d", o.MaxUOWRetries)
	}
	switch o.Transport {
	case "", TransportTCP, TransportRing, TransportAuto:
	default:
		return fmt.Errorf("dist: Options.Transport must be %q, %q, or %q, got %q",
			TransportTCP, TransportRing, TransportAuto, o.Transport)
	}
	return nil
}

// defaultDialTimeoutNanos lets a process override the fallback dial timeout
// (dcworker -dialtimeout) for sessions whose Options leave it zero; workers
// receive Options from the coordinator, so this is their only local knob.
var defaultDialTimeoutNanos atomic.Int64

// SetDefaultDialTimeout sets this process's fallback dial timeout, used
// whenever Options.DialTimeout is zero. d <= 0 restores DefaultDialTimeout.
func SetDefaultDialTimeout(d time.Duration) {
	defaultDialTimeoutNanos.Store(int64(d))
}

func (o *Options) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	if d := defaultDialTimeoutNanos.Load(); d > 0 {
		return time.Duration(d)
	}
	return DefaultDialTimeout
}

func (o *Options) dialAttempts() int {
	if o.DialAttempts > 0 {
		return o.DialAttempts
	}
	return DefaultDialAttempts
}

func (o *Options) hbInterval() time.Duration {
	if o.HeartbeatInterval > 0 {
		return o.HeartbeatInterval
	}
	return DefaultHeartbeatInterval
}

func (o *Options) hbMisses() int {
	if o.HeartbeatMisses > 0 {
		return o.HeartbeatMisses
	}
	return DefaultHeartbeatMisses
}

// hbTimeout is how long silence on the control plane is tolerated.
func (o *Options) hbTimeout() time.Duration {
	return o.hbInterval() * time.Duration(o.hbMisses())
}

// Builder constructs a filter instance on a worker.
type Builder func(params []byte) (core.Filter, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// RegisterFilter makes a filter kind constructible on workers. Typically
// called from an init function in the application's filter package.
func RegisterFilter(kind string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic("dist: duplicate filter kind " + kind)
	}
	registry[kind] = b
}

func builderFor(kind string) (Builder, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("dist: filter kind %q not registered on this worker", kind)
	}
	return b, nil
}

// ---- Wire frames ----
//
// Control frames travel on the coordinator<->worker connection; data, ack,
// and producer-done frames travel on worker->worker connections (one TCP
// connection per ordered host pair, so FIFO ordering between a host's data
// and its end-of-work markers is guaranteed by TCP). Frame serialization
// lives in wire.go: binary bodies for the data plane, gob for control.

type frame struct {
	Kind frameKind

	// Control (coordinator -> worker).
	Setup *setupMsg
	UOW   *uowMsg
	Sizes map[string]int // resolved stream buffer sizes

	// Control (worker -> coordinator).
	Decls map[string][2]int // stream -> {min,max} declared this UOW
	Err   string
	Stats *wireStats
	// Failure attribution on kindFail: when the first failure a worker saw
	// was a transport error talking to a peer, FailNet is true and FailHost
	// names the implicated host, so the coordinator can mark that host dead
	// instead of treating a cascade as an application error.
	FailHost string
	FailNet  bool

	// Peer traffic (worker -> worker).
	Job     uint64 // job the frame belongs to (session demux on the worker)
	UOWIdx  int    // unit of work the frame belongs to (stale frames dropped)
	Stream  string // stream name (interned on receive)
	Target  int    // consumer copy-set index (data) / producer target index (ack)
	Copy    int    // producer global copy index (data: sender; ack: addressee)
	AckN    int    // coalesced ack count
	Codec   uint16 // payload codec id (0 = gob fallback)
	Payload []byte // encoded payload; on receive it aliases the pooled wire buffer
	Size    int    // buffer's accounted size

	// payloadVal is a tx-side payload value serialized by appendFrame via
	// the codec registry (hasPayloadVal distinguishes an untyped nil value
	// from "use the pre-encoded Payload bytes").
	payloadVal    any
	hasPayloadVal bool
	// rel recycles the pooled wire buffer a received data frame (and its
	// in-place-decoded payload) lives in; see frame.release.
	rel func()
}

// dataFrame builds a tx data frame around a payload value.
func dataFrame(job uint64, uowIdx int, stream string, copyIdx, target, ackN, size int, payload any) *frame {
	return &frame{
		Kind: kindData, Job: job, UOWIdx: uowIdx, Stream: stream, Copy: copyIdx,
		Target: target, AckN: ackN, Size: size,
		payloadVal: payload, hasPayloadVal: true,
	}
}

type frameKind uint8

const (
	kindHello frameKind = iota + 1
	kindSetup
	kindSetupOK
	kindInitUOW
	kindDecls
	kindBeginProcess
	kindProcessDone
	kindFinalize
	kindFinalizeDone
	kindShutdown
	kindData
	kindAck
	kindProducerDone
	kindFail
	kindHeartbeat    // liveness beacon, both directions on the control plane
	kindAbort        // coordinator -> worker: tear the session down now
	kindAbortDone    // worker -> coordinator: session torn down
	kindShutdownDone // worker -> coordinator: graceful session end confirmed
)

type setupMsg struct {
	Graph     GraphSpec
	Placement []PlacementEntry
	Opts      Options
	Addrs     map[string]string // host name -> worker address
	Host      string            // the receiving worker's host name
}

type uowMsg struct {
	Index int
	Work  []byte // gob-encoded unit-of-work descriptor
}

// wireStats is the per-worker stats fragment returned at finalize.
type wireStats struct {
	StreamBuffers map[string]int64
	StreamBytes   map[string]int64
	StreamAcks    map[string]int64
	PerTarget     map[string]map[string]int64 // stream -> host -> buffers
	FilterBusy    map[string][]float64        // filter -> per-local-copy busy seconds
}

// RegisterPayload registers a buffer payload or unit-of-work type with gob
// (convenience wrapper so applications don't import encoding/gob). Types
// without a RegisterCodec fast path travel through the gob fallback.
func RegisterPayload(v any) { gob.Register(v) }

// RawUOW is a pre-encoded unit-of-work descriptor (the output of
// EncodeUOW). A coordinator passes it through to workers verbatim instead
// of gob-encoding it again, so a job server can relay units of work whose
// concrete Go types only the submitting client and the workers know.
type RawUOW []byte

// EncodeUOW serializes a unit-of-work descriptor for transport outside a
// live session — e.g. inside a job submission to internal/jobd. The
// concrete type must be registered (RegisterPayload) in the worker
// processes that will decode it.
func EncodeUOW(v any) (RawUOW, error) {
	raw, err := encodeAny(v)
	return RawUOW(raw), err
}

// DecodeUOW reverses EncodeUOW; the concrete type must be registered in
// this process.
func DecodeUOW(raw RawUOW) (any, error) { return decodeAny(raw) }

// encodeAny gob-encodes a value (with its concrete type registered) —
// the gob-fallback payload format and the unit-of-work descriptor format.
func encodeAny(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeAny(raw []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}
