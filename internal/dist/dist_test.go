package dist_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/geom"
	"datacutter/internal/isoviz"
	"datacutter/internal/leakcheck"
	"datacutter/internal/mcubes"
	"datacutter/internal/render"
	"datacutter/internal/volume"
)

// ---- Minimal registered test filters ----

type intSource struct {
	core.BaseFilter
	n int
}

func (s *intSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if err := ctx.Write("ints", core.Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
	}
	return nil
}

type intSink struct {
	core.BaseFilter
	Sum  int
	Seen int
}

func (s *intSink) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read("ints")
		if !ok {
			return nil
		}
		s.Seen++
		s.Sum += b.Payload.(int)
	}
}

type failingFilter struct{ core.BaseFilter }

func (f *failingFilter) Process(ctx core.Ctx) error {
	ctx.Read("ints")
	return errors.New("synthetic worker failure")
}

func init() {
	dist.RegisterFilter("test.source", func(params []byte) (core.Filter, error) {
		n := int(params[0])
		return &intSource{n: n}, nil
	})
	dist.RegisterFilter("test.sink", func([]byte) (core.Filter, error) { return &intSink{}, nil })
	dist.RegisterFilter("test.fail", func([]byte) (core.Filter, error) { return &failingFilter{}, nil })
	dist.RegisterFilter("test.suicide", func([]byte) (core.Filter, error) {
		return &suicideSink{w: suicideTarget}, nil
	})
}

// suicideTarget is the worker the suicide sink kills; set by the test
// before the run (builders are registered once in init).
var suicideTarget *dist.Worker

// startWorkers launches n in-process workers on ephemeral localhost ports,
// named host0..host<n-1>.
func startWorkers(t *testing.T, n int) (map[string]string, map[string]*dist.Worker) {
	t.Helper()
	addrs := make(map[string]string, n)
	workers := make(map[string]*dist.Worker, n)
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		host := fmt.Sprintf("host%d", i)
		addrs[host] = w.Addr()
		workers[host] = w
		t.Cleanup(w.Close)
	}
	return addrs, workers
}

func intGraph(n int) dist.GraphSpec {
	return dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.source", Params: []byte{byte(n)}},
			{Name: "K", Kind: "test.sink"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "K"}},
	}
}

func TestDistributedPipelineDelivers(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)
	const n = 200
	st, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := workers["host1"].Instances("K")[0].(*intSink)
	if sink.Seen != n {
		t.Fatalf("sink saw %d buffers, want %d", sink.Seen, n)
	}
	if sink.Sum != n*(n-1)/2 {
		t.Fatalf("sum = %d", sink.Sum)
	}
	if st.Streams["ints"].Buffers != n {
		t.Fatalf("stats buffers = %d", st.Streams["ints"].Buffers)
	}
}

func TestDistributedCopiesAcrossHostsEveryPolicy(t *testing.T) {
	for _, pol := range []string{"RR", "WRR", "DD", "DD/4"} {
		t.Run(pol, func(t *testing.T) {
			addrs, workers := startWorkers(t, 3)
			const n = 120
			st, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
				{Filter: "S", Host: "host0", Copies: 1},
				{Filter: "K", Host: "host0", Copies: 1},
				{Filter: "K", Host: "host1", Copies: 2},
				{Filter: "K", Host: "host2", Copies: 1},
			}, dist.Options{Policy: pol}, nil)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, host := range []string{"host0", "host1", "host2"} {
				for _, inst := range workers[host].Instances("K") {
					total += inst.(*intSink).Seen
				}
			}
			if total != n {
				t.Fatalf("delivered %d of %d buffers", total, n)
			}
			per := st.Streams["ints"].PerTargetHost
			sum := int64(0)
			for _, v := range per {
				sum += v
			}
			if sum != n {
				t.Fatalf("per-target sum = %d: %v", sum, per)
			}
			if pol == "WRR" && (per["host1"] != 2*per["host0"] || per["host1"] != 2*per["host2"]) {
				t.Fatalf("WRR proportions wrong: %v", per)
			}
			if pol == "DD" || pol == "DD/4" {
				if st.Streams["ints"].Acks == 0 {
					t.Fatal("DD produced no acknowledgments")
				}
			}
		})
	}
}

func TestDistributedMultiUOW(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)
	_, err := dist.Run(addrs, intGraph(30), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{}, []any{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sink := workers["host1"].Instances("K")[0].(*intSink)
	if sink.Seen != 90 {
		t.Fatalf("sink saw %d across 3 UOWs, want 90", sink.Seen)
	}
}

func TestDistributedFilterErrorSurfaces(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.source", Params: []byte{50}},
			{Name: "F", Kind: "test.fail"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "F"}},
	}
	_, err := dist.Run(addrs, g, []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "F", Host: "host1", Copies: 1},
	}, dist.Options{}, nil)
	if err == nil {
		t.Fatal("worker-side filter error not surfaced")
	}
}

func TestDistributedUnknownKindRejected(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{{Name: "X", Kind: "test.unregistered"}},
	}
	_, err := dist.Run(addrs, g, []dist.PlacementEntry{{Filter: "X", Host: "host0", Copies: 1}}, dist.Options{}, nil)
	if err == nil {
		t.Fatal("unknown filter kind accepted")
	}
}

func TestDistributedMissingWorkerAddress(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	_, err := dist.Run(addrs, intGraph(1), []dist.PlacementEntry{
		{Filter: "S", Host: "ghost", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}, dist.Options{}, nil)
	if err == nil {
		t.Fatal("placement on unknown host accepted")
	}
}

// The flagship distributed test: the full isosurface pipeline spread over
// three worker processes renders the exact reference image.
func TestDistributedIsosurfaceRender(t *testing.T) {
	p := isoviz.FieldREParams{Seed: 17, Plumes: 4, GX: 33, GY: 33, GZ: 33, BX: 3, BY: 3, BZ: 3}
	view := isoviz.View{Timestep: 1, Iso: 0.35, Width: 96, Height: 96, Camera: geom.DefaultCamera()}

	// Reference: direct rendering of the same chunked source.
	src := isoviz.NewFieldSource(volume.NewPlumeField(p.Seed, p.Plumes), p.GX, p.GY, p.GZ, p.BX, p.BY, p.BZ)
	want := render.NewZBuffer(view.Width, view.Height)
	rr := render.NewRaster(view.Camera, view.Width, view.Height)
	for i := 0; i < src.Chunks(); i++ {
		v, err := src.Load(i, view.Timestep)
		if err != nil {
			t.Fatal(err)
		}
		mcubes.Walk(v, view.Iso, func(tr geom.Triangle) { rr.Draw(tr, want) })
	}

	for _, alg := range []isoviz.Algorithm{isoviz.ActivePixel, isoviz.ZBuffer} {
		t.Run(alg.String(), func(t *testing.T) {
			leakcheck.Check(t)
			addrs, workers := startWorkers(t, 3)
			spec, err := isoviz.DistGraphField(p, alg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := dist.Run(addrs, spec, []dist.PlacementEntry{
				{Filter: "RE", Host: "host0", Copies: 2},
				{Filter: "Ra", Host: "host1", Copies: 2},
				{Filter: "Ra", Host: "host2", Copies: 1},
				{Filter: "M", Host: "host2", Copies: 1},
			}, dist.Options{Policy: "DD"}, []any{view})
			if err != nil {
				t.Fatal(err)
			}
			m, err := isoviz.MergeResult(workers["host2"].Instances("M"))
			if err != nil {
				t.Fatal(err)
			}
			if m.Result() == nil || !m.Result().Equal(want) {
				t.Fatal("distributed render differs from reference")
			}
			if st.Streams[isoviz.StreamTriangles].Buffers == 0 {
				t.Fatal("no triangle traffic recorded")
			}
		})
	}
}

// A worker dying mid-run must surface as a coordinator error, not a hang.
func TestDistributedWorkerDeathSurfaces(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)
	suicideTarget = workers["host1"]
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.source", Params: []byte{200}},
			{Name: "K", Kind: "test.suicide"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "K"}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := dist.Run(addrs, g, []dist.PlacementEntry{
			{Filter: "S", Host: "host0", Copies: 1},
			{Filter: "K", Host: "host1", Copies: 1},
		}, dist.Options{}, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker death produced no error")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("coordinator hung after worker death")
	}
}

type suicideSink struct {
	core.BaseFilter
	w    *dist.Worker
	seen int
}

func (s *suicideSink) Process(ctx core.Ctx) error {
	for {
		_, ok := ctx.Read("ints")
		if !ok {
			return nil
		}
		s.seen++
		if s.seen == 5 {
			s.w.Close()
		}
	}
}

// Stress: many buffers through tiny queues across three hosts under DD —
// exercising TCP backpressure and ack flow without deadlock.
func TestDistributedTinyQueueStress(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 3)
	const n = 250
	_, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
		{Filter: "K", Host: "host2", Copies: 1},
	}, dist.Options{Policy: "DD", QueueCap: 1}, []any{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, host := range []string{"host0", "host1", "host2"} {
		for _, inst := range workers[host].Instances("K") {
			total += inst.(*intSink).Seen
		}
	}
	if total != 2*n {
		t.Fatalf("delivered %d of %d", total, 2*n)
	}
}

// A second coordinator hitting a busy worker must be refused, and the
// worker must accept a fresh session after the first completes.
func TestDistributedWorkerRefusesConcurrentSession(t *testing.T) {
	addrs, workers := startWorkers(t, 2)
	suicideTarget = nil

	// Occupy host0 with a session that stays open (slow sink holds it).
	started := make(chan struct{})
	go func() {
		close(started)
		_, _ = dist.Run(addrs, intGraph(200), []dist.PlacementEntry{
			{Filter: "S", Host: "host0", Copies: 1},
			{Filter: "K", Host: "host1", Copies: 1},
		}, dist.Options{}, []any{0, 1, 2, 3, 4})
	}()
	<-started
	// Race a competing coordinator repeatedly; every attempt must either be
	// refused ("busy") or succeed cleanly after the first finished — never
	// corrupt state.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, err := dist.Run(map[string]string{"host0": addrs["host0"]}, intGraph(5),
			[]dist.PlacementEntry{
				{Filter: "S", Host: "host0", Copies: 1},
				{Filter: "K", Host: "host0", Copies: 1},
			}, dist.Options{}, nil)
		if err == nil {
			// First session finished; ours ran cleanly on the freed worker.
			if sinks := workers["host0"].Instances("K"); len(sinks) == 0 {
				t.Fatal("no sink instance after successful second session")
			}
			return
		}
	}
	t.Fatal("second session never succeeded after the first ended")
}
