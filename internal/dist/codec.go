package dist

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync/atomic"

	"datacutter/internal/wirebin"
)

// A PayloadCodec serializes one concrete buffer payload type onto the data
// plane without gob's per-frame type descriptors or reflection. Codecs are
// the fast path: any payload type without a registered codec still travels
// via the gob fallback (codec id 0), so registering a codec is purely a
// performance decision and both directions of a mixed deployment stay
// wire-compatible as long as the same ids map to the same codecs.
type PayloadCodec interface {
	// Append encodes v, appending its wire bytes to dst.
	Append(dst []byte, v any) ([]byte, error)
	// Decode decodes one payload from body. If ZeroCopy reports true the
	// returned value may alias body; the runtime then keeps body alive
	// until the consuming filter copy finishes the buffer (its next Read
	// on the stream, or stream end-of-work) before recycling it.
	Decode(body []byte) (any, error)
	// ZeroCopy reports whether Decode returns values aliasing its input.
	ZeroCopy() bool
}

// Codec ids 1–255 are reserved for dist built-ins; applications register
// theirs from 256 up. Id 0 is the implicit gob fallback and cannot be
// registered.
const (
	codecGob      uint16 = 0 // fallback, not in the tables
	CodecBytes    uint16 = 1 // []byte, zero-copy decode
	CodecFloat32s uint16 = 2 // []float32, bulk little-endian
)

type codecEntry struct {
	id    uint16
	codec PayloadCodec
}

type codecTables struct {
	byType map[reflect.Type]codecEntry
	byID   map[uint16]PayloadCodec
}

// codecs is copy-on-write: RegisterCodec swaps a fresh table so the
// per-frame lookups on the data plane are a single atomic load.
var codecs atomic.Pointer[codecTables]

func init() {
	codecs.Store(&codecTables{
		byType: map[reflect.Type]codecEntry{},
		byID:   map[uint16]PayloadCodec{},
	})
	RegisterCodec(CodecBytes, []byte(nil), bytesCodec{})
	RegisterCodec(CodecFloat32s, []float32(nil), float32sCodec{})
}

// RegisterCodec installs a fast-path codec for prototype's concrete type
// under a stable wire id. Like RegisterFilter it is meant for init
// functions in the application's filter package, before any worker serves
// traffic, and must be called with the same (id, type) pairing on every
// process of a deployment. It is the sibling of RegisterPayload: types with
// only RegisterPayload still round-trip via gob.
func RegisterCodec(id uint16, prototype any, c PayloadCodec) {
	if id == codecGob {
		panic("dist: codec id 0 is reserved for the gob fallback")
	}
	t := reflect.TypeOf(prototype)
	if t == nil {
		panic("dist: RegisterCodec prototype must be a non-nil-typed value")
	}
	regMu.Lock()
	defer regMu.Unlock()
	old := codecs.Load()
	if _, dup := old.byID[id]; dup {
		panic(fmt.Sprintf("dist: duplicate payload codec id %d", id))
	}
	if _, dup := old.byType[t]; dup {
		panic(fmt.Sprintf("dist: duplicate payload codec for type %v", t))
	}
	nt := &codecTables{
		byType: make(map[reflect.Type]codecEntry, len(old.byType)+1),
		byID:   make(map[uint16]PayloadCodec, len(old.byID)+1),
	}
	for k, v := range old.byType {
		nt.byType[k] = v
	}
	for k, v := range old.byID {
		nt.byID[k] = v
	}
	nt.byType[t] = codecEntry{id: id, codec: c}
	nt.byID[id] = c
	codecs.Store(nt)
}

// codecFor resolves the fast-path codec for a payload value; (0, nil)
// selects the gob fallback.
func codecFor(v any) (uint16, PayloadCodec) {
	if v == nil {
		return codecGob, nil
	}
	if e, ok := codecs.Load().byType[reflect.TypeOf(v)]; ok {
		return e.id, e.codec
	}
	return codecGob, nil
}

func codecByID(id uint16) PayloadCodec { return codecs.Load().byID[id] }

// appendPayload encodes a payload value with its resolved codec, returning
// the codec id actually used.
func appendPayload(dst []byte, v any) ([]byte, uint16, error) {
	id, c := codecFor(v)
	if c == nil {
		var err error
		dst, err = appendGob(dst, v)
		return dst, codecGob, err
	}
	out, err := c.Append(dst, v)
	return out, id, err
}

// decodePayload decodes a received data frame's payload. The returned
// release (possibly nil) must be called once the payload value is dead —
// immediately for copying codecs, at the consumer's finish point for
// zero-copy ones — to recycle the pooled wire buffer.
func decodePayload(f *frame) (any, func(), error) {
	if f.Codec == codecGob {
		v, err := decodeAny(f.Payload)
		f.release()
		return v, nil, err
	}
	c := codecByID(f.Codec)
	if c == nil {
		f.release()
		return nil, nil, fmt.Errorf("dist: payload codec %d not registered on this worker", f.Codec)
	}
	v, err := c.Decode(f.Payload)
	if err != nil || !c.ZeroCopy() {
		f.release()
		return v, nil, err
	}
	rel := f.rel
	f.rel = nil
	return v, rel, nil
}

// appendWriter adapts append-style encoding to gob's io.Writer.
type appendWriter struct{ b *[]byte }

func (w appendWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// appendGob encodes &v with a fresh gob encoder (type descriptors
// included, exactly as the pre-codec wire format did per frame) appending
// to dst, so gob-fallback payloads stay byte-compatible with encodeAny.
func appendGob(dst []byte, v any) ([]byte, error) {
	if err := gob.NewEncoder(appendWriter{&dst}).Encode(&v); err != nil {
		return nil, err
	}
	return dst, nil
}

// ---- Built-in codecs ----

// bytesCodec moves []byte payloads verbatim; its decode aliases the pooled
// wire buffer (zero-copy), which the runtime keeps alive until the
// consuming filter finishes the buffer.
type bytesCodec struct{}

func (bytesCodec) Append(dst []byte, v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("dist: bytes codec got %T", v)
	}
	return append(dst, b...), nil
}

func (bytesCodec) Decode(body []byte) (any, error) { return body, nil }
func (bytesCodec) ZeroCopy() bool                  { return true }

// float32sCodec bulk-converts []float32 payloads: a length header plus the
// little-endian sample bytes, decoded with one allocation and one copy.
type float32sCodec struct{}

func (float32sCodec) Append(dst []byte, v any) ([]byte, error) {
	f, ok := v.([]float32)
	if !ok {
		return nil, fmt.Errorf("dist: float32s codec got %T", v)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f)))
	return wirebin.AppendFloat32s(dst, f), nil
}

func (float32sCodec) Decode(body []byte) (any, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("dist: float32s payload truncated")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body)-4 != 4*n {
		return nil, fmt.Errorf("dist: float32s payload: %d bytes for %d samples", len(body)-4, n)
	}
	out := make([]float32, n)
	wirebin.Float32s(out, body[4:])
	return out, nil
}

func (float32sCodec) ZeroCopy() bool { return false }
