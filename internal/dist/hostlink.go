package dist

import (
	"sync"
	"sync/atomic"
	"time"
)

// hostLink is the coordinator's control-plane attachment to one worker: the
// connection plus a reader goroutine that separates liveness (heartbeats,
// tracked in lastBeat) from protocol replies, and a sender goroutine that
// heartbeats the worker so its control-read deadline never fires while the
// coordinator is merely busy with other hosts.
type hostLink struct {
	host  string
	c     *conn
	reply chan *frame // non-heartbeat frames, in arrival order
	errc  chan error  // reader termination cause (capacity 1)

	// lastBeat is the wall clock (unix nanos) of the last frame of any
	// kind — real replies count as liveness too.
	lastBeat atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once

	// dead is the coordinator's verdict on this host; only the coordinator
	// run loop reads and writes it (no concurrent access).
	dead bool

	// misses counts consecutive heartbeat intervals of silence, accumulated
	// across liveness sweeps (coordinator run loop only).
	misses int
}

func newHostLink(host string, c *conn, hbInterval time.Duration) *hostLink {
	l := &hostLink{
		host:  host,
		c:     c,
		reply: make(chan *frame, 8),
		errc:  make(chan error, 1),
		stop:  make(chan struct{}),
	}
	l.lastBeat.Store(time.Now().UnixNano())
	go l.readLoop()
	go l.beatLoop(hbInterval)
	return l
}

// readLoop pumps frames off the connection until it errors or the link is
// stopped. A blocked handoff also selects stop, so a reader holding a stale
// reply can never outlive its link.
func (l *hostLink) readLoop() {
	for {
		f, err := l.c.recv()
		if err != nil {
			select {
			case l.errc <- err:
			default:
			}
			return
		}
		l.lastBeat.Store(time.Now().UnixNano())
		if f.Kind == kindHeartbeat {
			continue
		}
		select {
		case l.reply <- f:
		case <-l.stop:
			return
		}
	}
}

func (l *hostLink) beatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if l.c.send(&frame{Kind: kindHeartbeat}) != nil {
				return
			}
		case <-l.stop:
			return
		}
	}
}

// shutdown stops the link's goroutines and closes the connection gracefully
// (buffered farewell frames get a bounded flush).
func (l *hostLink) shutdown() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.c.close()
}

// sever hard-closes a dead host's link; nothing in its write buffer is
// worth the wait.
func (l *hostLink) sever() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.c.abort()
}
