package dist

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// The gob baseline ships []float32 through the fallback, which needs the
// concrete type registered (the codec fast path does not).
func init() { RegisterPayload([]float32{}) }

// BenchmarkWireCodec compares the binary frame path against the gob path it
// replaced, frame encode + decode + payload decode per op. "gob" replicates
// the old protocol faithfully: a persistent frame encoder/decoder pair per
// connection (gob streams), with each payload gob-encoded separately into
// the frame's byte slice (encodeAny/decodeAny, still the fallback today).
func BenchmarkWireCodec(b *testing.B) {
	payload := make([]float32, 4096)
	for i := range payload {
		payload[i] = float32(i) * 0.5
	}

	b.Run("binary/float32s", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(4 * len(payload)))
		var buf []byte
		var r frameReader
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = appendFrame(buf[:0], dataFrame(1, 1, "floats", 0, 0, 4, len(payload)*4, payload))
			if err != nil {
				b.Fatal(err)
			}
			f, err := r.decodeFrame(buf)
			if err != nil {
				b.Fatal(err)
			}
			v, _, err := decodePayload(f)
			if err != nil {
				b.Fatal(err)
			}
			if len(v.([]float32)) != len(payload) {
				b.Fatal("payload mangled")
			}
		}
	})

	b.Run("gob/float32s", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(4 * len(payload)))
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		for i := 0; i < b.N; i++ {
			raw, err := encodeAny(payload)
			if err != nil {
				b.Fatal(err)
			}
			f := &frame{Kind: kindData, UOWIdx: 1, Stream: "floats", AckN: 4,
				Size: len(payload) * 4, Payload: raw}
			if err := enc.Encode(f); err != nil {
				b.Fatal(err)
			}
			var g frame
			if err := dec.Decode(&g); err != nil {
				b.Fatal(err)
			}
			v, err := decodeAny(g.Payload)
			if err != nil {
				b.Fatal(err)
			}
			if len(v.([]float32)) != len(payload) {
				b.Fatal("payload mangled")
			}
		}
	})

	b.Run("binary/ack", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		var r frameReader
		f := &frame{Kind: kindAck, UOWIdx: 1, Stream: "floats", Target: 2, Copy: 3, AckN: 4}
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = appendFrame(buf[:0], f)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.decodeFrame(buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob/ack", func(b *testing.B) {
		b.ReportAllocs()
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		dec := gob.NewDecoder(&stream)
		f := &frame{Kind: kindAck, UOWIdx: 1, Stream: "floats", Target: 2, Copy: 3, AckN: 4}
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(f); err != nil {
				b.Fatal(err)
			}
			var g frame
			if err := dec.Decode(&g); err != nil {
				b.Fatal(err)
			}
		}
	})
}
