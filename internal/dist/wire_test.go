package dist

import (
	"bytes"
	"encoding/hex"
	"io"
	"reflect"
	"testing"
)

// roundTrip encodes f and decodes the result with a fresh reader.
func roundTrip(t *testing.T, f *frame) *frame {
	t.Helper()
	body, err := appendFrame(nil, f)
	if err != nil {
		t.Fatalf("appendFrame: %v", err)
	}
	var r frameReader
	g, err := r.decodeFrame(body)
	if err != nil {
		t.Fatalf("decodeFrame: %v", err)
	}
	return g
}

func TestDataFrameRoundTrip(t *testing.T) {
	f := dataFrame(11, 3, "triangles", 7, 2, 4, 1234, []float32{1, 2.5, -3})
	g := roundTrip(t, f)
	if g.Kind != kindData || g.Job != 11 || g.UOWIdx != 3 || g.Stream != "triangles" ||
		g.Copy != 7 || g.Target != 2 || g.AckN != 4 || g.Size != 1234 {
		t.Fatalf("header fields mangled: %+v", g)
	}
	if g.Codec != CodecFloat32s {
		t.Fatalf("codec id = %d, want %d", g.Codec, CodecFloat32s)
	}
	v, rel, err := decodePayload(g)
	if err != nil {
		t.Fatalf("decodePayload: %v", err)
	}
	if rel != nil {
		t.Fatal("float32s codec is copying; release must be nil")
	}
	if got := v.([]float32); !reflect.DeepEqual(got, []float32{1, 2.5, -3}) {
		t.Fatalf("payload = %v", got)
	}
}

func TestBytesPayloadZeroCopy(t *testing.T) {
	f := dataFrame(0, 0, "s", 0, 0, 0, 4, []byte{9, 8, 7, 6})
	g := roundTrip(t, f)
	if g.Codec != CodecBytes {
		t.Fatalf("codec id = %d, want %d", g.Codec, CodecBytes)
	}
	released := false
	g.rel = func() { released = true }
	v, rel, err := decodePayload(g)
	if err != nil {
		t.Fatalf("decodePayload: %v", err)
	}
	if !bytes.Equal(v.([]byte), []byte{9, 8, 7, 6}) {
		t.Fatalf("payload = %v", v)
	}
	if rel == nil {
		t.Fatal("bytes codec is zero-copy; caller must get the release")
	}
	if released {
		t.Fatal("released before the consumer finished")
	}
	rel()
	if !released {
		t.Fatal("release did not fire")
	}
}

// Payload types without a registered codec must fall back to gob and
// round-trip unchanged (wire compatibility of the RegisterPayload API).
type unregisteredPayload struct {
	A int
	B string
}

func init() { RegisterPayload(unregisteredPayload{}) }

func TestGobFallbackRoundTrip(t *testing.T) {
	want := unregisteredPayload{A: 42, B: "fallback"}
	f := dataFrame(5, 1, "s", 0, 0, 0, 8, want)
	g := roundTrip(t, f)
	if g.Codec != 0 {
		t.Fatalf("codec id = %d, want 0 (gob fallback)", g.Codec)
	}
	v, rel, err := decodePayload(g)
	if err != nil {
		t.Fatalf("decodePayload: %v", err)
	}
	if rel != nil {
		t.Fatal("gob fallback must not hand out a release")
	}
	if got := v.(unregisteredPayload); got != want {
		t.Fatalf("payload = %+v, want %+v", got, want)
	}
}

func TestAckAndDoneRoundTrip(t *testing.T) {
	a := roundTrip(t, &frame{Kind: kindAck, Job: 6, UOWIdx: 9, Stream: "pixels", Target: 1, Copy: 3, AckN: 4})
	if a.Kind != kindAck || a.Job != 6 || a.UOWIdx != 9 || a.Stream != "pixels" || a.Target != 1 || a.Copy != 3 || a.AckN != 4 {
		t.Fatalf("ack mangled: %+v", a)
	}
	d := roundTrip(t, &frame{Kind: kindProducerDone, Job: 6, UOWIdx: 2, Stream: "ints"})
	if d.Kind != kindProducerDone || d.Job != 6 || d.UOWIdx != 2 || d.Stream != "ints" {
		t.Fatalf("done mangled: %+v", d)
	}
	h := roundTrip(t, &frame{Kind: kindHello})
	if h.Kind != kindHello {
		t.Fatalf("hello mangled: %+v", h)
	}
}

func TestControlFrameRoundTrip(t *testing.T) {
	f := &frame{Kind: kindDecls, Decls: map[string][2]int{"ints": {64, 4096}}}
	g := roundTrip(t, f)
	if g.Kind != kindDecls || g.Decls["ints"] != [2]int{64, 4096} {
		t.Fatalf("control frame mangled: %+v", g)
	}
	s := &frame{Kind: kindSetup, Setup: &setupMsg{
		Host:  "host1",
		Addrs: map[string]string{"host1": "127.0.0.1:1"},
		Opts:  Options{Policy: "DD", QueueCap: 3},
	}}
	g = roundTrip(t, s)
	if g.Setup == nil || g.Setup.Host != "host1" || g.Setup.Opts.QueueCap != 3 {
		t.Fatalf("setup frame mangled: %+v", g.Setup)
	}
}

// Golden wire fixtures: the binary data plane's byte layout is a
// compatibility contract (DESIGN.md "Wire protocol"). An accidental format
// change must fail here loudly, not surface as cross-version corruption.
func TestFrameGoldenBytes(t *testing.T) {
	cases := []struct {
		name string
		f    *frame
		hex  string
	}{
		{
			name: "data-float32s",
			f:    dataFrame(7, 1, "tri", 2, 3, 4, 24, []float32{1, -2}),
			hex:  "0b070000000000000001000000" + "03007472690300000002000000040000001800000002000c000000020000000000803f000000c0",
		},
		{
			name: "data-bytes",
			f:    dataFrame(0, 0, "s", 0, 0, 0, 3, []byte{0xDE, 0xAD, 0xBF}),
			hex:  "0b000000000000000000000000" + "01007300000000000000000000000003000000010003000000deadbf",
		},
		{
			name: "ack",
			f:    &frame{Kind: kindAck, Job: 7, UOWIdx: 1, Stream: "tri", Target: 2, Copy: 3, AckN: 4},
			hex:  "0c070000000000000001000000" + "0300747269020000000300000004000000",
		},
		{
			name: "producer-done",
			f:    &frame{Kind: kindProducerDone, Job: 1, UOWIdx: 7, Stream: "pix"},
			hex:  "0d010000000000000007000000" + "0300706978",
		},
		{
			name: "hello",
			f:    &frame{Kind: kindHello},
			hex:  "01",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, err := appendFrame(nil, tc.f)
			if err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(body); got != tc.hex {
				t.Fatalf("wire bytes changed:\n got  %s\n want %s", got, tc.hex)
			}
			var r frameReader
			if _, err := r.decodeFrame(body); err != nil {
				t.Fatalf("golden bytes no longer decode: %v", err)
			}
		})
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid, err := appendFrame(nil, dataFrame(1, 1, "tri", 2, 3, 4, 24, []float32{1, -2}))
	if err != nil {
		t.Fatal(err)
	}
	var r frameReader
	for cut := 0; cut < len(valid); cut++ {
		if _, err := r.decodeFrame(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
	if _, err := r.decodeFrame([]byte{0xFF, 0, 0}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Payload length header disagreeing with the body must be rejected.
	mangled := append([]byte(nil), valid...)
	mangled[len(mangled)-13]++ // high byte of the payload length field
	if _, err := r.decodeFrame(mangled); err == nil {
		t.Fatal("mismatched payload length accepted")
	}
}

func TestReadWireFrameLimits(t *testing.T) {
	var r frameReader
	// Oversized length prefix: rejected before any allocation.
	if _, _, err := r.readWireFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err != errFrameTooLarge {
		t.Fatalf("oversized prefix: err = %v", err)
	}
	// Zero-length prefix is invalid (frames always carry a kind byte).
	if _, _, err := r.readWireFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err != errFrameTooLarge {
		t.Fatalf("zero prefix: err = %v", err)
	}
	// Truncated stream: frame announces more bytes than arrive.
	if _, _, err := r.readWireFrame(bytes.NewReader([]byte{16, 0, 0, 0, byte(kindHello)})); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated body: err = %v", err)
	}
}

func TestStreamNameInterning(t *testing.T) {
	var r frameReader
	frames := make([][]byte, 2)
	for i := range frames {
		body, err := appendFrame(nil, &frame{Kind: kindProducerDone, UOWIdx: i, Stream: "triangles"})
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = body
	}
	a, _ := r.decodeFrame(frames[0])
	b, _ := r.decodeFrame(frames[1])
	// Same backing string after interning (pointer equality via unsafe-free
	// check: the intern map holds exactly one entry).
	if a.Stream != b.Stream || len(r.names) != 1 {
		t.Fatalf("interning failed: %d names", len(r.names))
	}
}
