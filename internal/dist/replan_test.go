package dist

import (
	"reflect"
	"testing"
)

func TestReplanMovesOrphanedCopiesToExistingHosts(t *testing.T) {
	in := []PlacementEntry{
		{Filter: "F", Host: "a", Copies: 2},
		{Filter: "F", Host: "b", Copies: 2},
		{Filter: "G", Host: "b", Copies: 1},
	}
	out, err := replanPlacement(in, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	want := []PlacementEntry{
		{Filter: "F", Host: "b", Copies: 4}, // b already ran F: absorbs a's copies
		{Filter: "G", Host: "b", Copies: 1},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %+v, want %+v", out, want)
	}
}

func TestReplanSpreadsFullyOrphanedFilterAcrossSurvivors(t *testing.T) {
	in := []PlacementEntry{
		{Filter: "F", Host: "a", Copies: 3}, // all of F dies with a
		{Filter: "G", Host: "b", Copies: 1},
		{Filter: "G", Host: "c", Copies: 1},
	}
	out, err := replanPlacement(in, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	// F had no surviving hosts: round-robin across all survivors (b, c in
	// first-appearance order), 3 copies -> b:2, c:1.
	want := []PlacementEntry{
		{Filter: "F", Host: "b", Copies: 2},
		{Filter: "F", Host: "c", Copies: 1},
		{Filter: "G", Host: "b", Copies: 1},
		{Filter: "G", Host: "c", Copies: 1},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %+v, want %+v", out, want)
	}
}

func TestReplanNoSurvivors(t *testing.T) {
	in := []PlacementEntry{{Filter: "F", Host: "a", Copies: 1}}
	if _, err := replanPlacement(in, map[string]bool{"a": true}); err == nil {
		t.Fatal("want error when every host is dead")
	}
}

func TestReplanNoDeadHostsIsIdentity(t *testing.T) {
	in := []PlacementEntry{
		{Filter: "F", Host: "a", Copies: 2},
		{Filter: "G", Host: "b", Copies: 1},
	}
	out, err := replanPlacement(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v, want input unchanged", out)
	}
}

func TestReplanMergesDuplicateEntries(t *testing.T) {
	// Two entries for (F, b) in the input must merge in the output.
	in := []PlacementEntry{
		{Filter: "F", Host: "b", Copies: 1},
		{Filter: "F", Host: "a", Copies: 1},
		{Filter: "F", Host: "b", Copies: 1},
	}
	out, err := replanPlacement(in, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	want := []PlacementEntry{{Filter: "F", Host: "b", Copies: 3}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %+v, want %+v", out, want)
	}
}

func TestReplanSingleSurvivor(t *testing.T) {
	// Everything collapses onto the one host left standing, totals intact.
	in := []PlacementEntry{
		{Filter: "F", Host: "a", Copies: 2},
		{Filter: "F", Host: "b", Copies: 1},
		{Filter: "G", Host: "b", Copies: 3},
		{Filter: "G", Host: "c", Copies: 2},
		{Filter: "H", Host: "a", Copies: 1},
	}
	out, err := replanPlacement(in, map[string]bool{"a": true, "b": true})
	if err != nil {
		t.Fatal(err)
	}
	want := []PlacementEntry{
		{Filter: "F", Host: "c", Copies: 3},
		{Filter: "G", Host: "c", Copies: 5},
		{Filter: "H", Host: "c", Copies: 1},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %+v, want %+v", out, want)
	}
}

func TestReplanAllButCoordinatorDead(t *testing.T) {
	// Only the coordinator-side host remains: the survivor selection must
	// fold every filter onto it even when it never ran most of them, and
	// per-filter copy totals must be preserved exactly.
	in := []PlacementEntry{
		{Filter: "Src", Host: "coord", Copies: 1},
		{Filter: "F", Host: "w1", Copies: 2},
		{Filter: "F", Host: "w2", Copies: 2},
		{Filter: "K", Host: "w2", Copies: 3},
	}
	out, err := replanPlacement(in, map[string]bool{"w1": true, "w2": true})
	if err != nil {
		t.Fatal(err)
	}
	want := []PlacementEntry{
		{Filter: "Src", Host: "coord", Copies: 1},
		{Filter: "F", Host: "coord", Copies: 4},
		{Filter: "K", Host: "coord", Copies: 3},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %+v, want %+v", out, want)
	}
}

func TestReplanWeightedHosts(t *testing.T) {
	// Surviving hosts with unequal copy counts (the WRR weights) keep
	// their relative weight and absorb orphans in first-appearance order:
	// the per-filter total is conserved and redistribution is by position,
	// not proportional to existing weight.
	in := []PlacementEntry{
		{Filter: "F", Host: "big", Copies: 4},
		{Filter: "F", Host: "small", Copies: 1},
		{Filter: "F", Host: "dying", Copies: 3},
	}
	out, err := replanPlacement(in, map[string]bool{"dying": true})
	if err != nil {
		t.Fatal(err)
	}
	// 3 orphans round-robin over (big, small): big +2, small +1.
	want := []PlacementEntry{
		{Filter: "F", Host: "big", Copies: 6},
		{Filter: "F", Host: "small", Copies: 2},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %+v, want %+v", out, want)
	}
	total := 0
	for _, pe := range out {
		total += pe.Copies
	}
	if total != 8 {
		t.Fatalf("copy total %d, want 8 (replan must preserve TotalCopies)", total)
	}
}

func TestReplanDeterministic(t *testing.T) {
	in := []PlacementEntry{
		{Filter: "F", Host: "a", Copies: 5},
		{Filter: "G", Host: "b", Copies: 2},
		{Filter: "G", Host: "c", Copies: 2},
		{Filter: "H", Host: "c", Copies: 1},
	}
	dead := map[string]bool{"a": true}
	first, err := replanPlacement(in, dead)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		again, err := replanPlacement(in, dead)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("replan not deterministic: %+v vs %+v", first, again)
		}
	}
}
