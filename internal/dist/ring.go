package dist

import (
	"fmt"
	"sync"
	"time"

	"datacutter/internal/exec"
)

// In-process ring transport: when the producer and consumer workers of a
// copy-set edge live in the same process (tests, benchmarks, conformance
// runs, jobd colocations), frames can skip the TCP stack entirely. A
// ringLink moves *frame values over a lock-light SPSC ring (exec.Ring) —
// no codec encode, no syscalls, no decode: the payload value the producer
// handed to its StreamWriter is the very value the consumer's queue
// receives. Acks and producer-done markers ride the reverse-direction link
// the same way, so the ack window and end-of-work ordering semantics are
// identical to TCP's (one FIFO link per session per direction).
//
// Selection is placement-aware and per-edge: Options.Transport "auto" uses
// a ring exactly for peers whose advertised address is served by a live
// Worker in this process and falls back to TCP otherwise; "ring" requires
// it and fails the session when a peer is out-of-process. The control plane
// (coordinator <-> worker) always stays on TCP.

// Transport mode names for Options.Transport.
const (
	TransportTCP  = "tcp"
	TransportRing = "ring"
	TransportAuto = "auto"
)

// ringCap is the frame capacity of one ring-link direction. Together with
// the consumer-side copy-set queues it bounds in-flight frames per edge;
// a full ring blocks the producer, standing in for TCP backpressure.
const ringCap = 512

// ---- In-process worker registry ----

// inprocWorkers maps listen addresses to the live Workers of this process,
// so a session can recognize that a peer "host" is actually local. Workers
// register in NewWorker and leave on Close/Kill.
var (
	inprocMu      sync.RWMutex
	inprocWorkers = map[string]*Worker{}
)

func registerInproc(w *Worker) {
	inprocMu.Lock()
	inprocWorkers[w.Addr()] = w
	inprocMu.Unlock()
}

func unregisterInproc(w *Worker) {
	inprocMu.Lock()
	if inprocWorkers[w.Addr()] == w {
		delete(inprocWorkers, w.Addr())
	}
	inprocMu.Unlock()
}

func inprocWorker(addr string) *Worker {
	inprocMu.RLock()
	defer inprocMu.RUnlock()
	return inprocWorkers[addr]
}

// peerLink is a session's transport attachment to one peer worker: a TCP
// conn (wire.go) or an in-process ringLink. send must be safe for
// concurrent producer goroutines; close must be idempotent.
type peerLink interface {
	send(f *frame) error
	close()
}

var errRingPeerDown = fmt.Errorf("dist: in-process ring peer is down")

// ringLink is one directed in-process edge between two workers. The sender
// side serializes producers with sendMu (the ring is single-producer); the
// receiver side is a single serveRing goroutine, keeping the ring's SPSC
// contract.
type ringLink struct {
	src, dst *Worker
	ring     *exec.Ring[*frame]
	stop     chan struct{} // unblocks pushers when either endpoint dies
	once     sync.Once

	sendMu sync.Mutex
}

// newRingLink connects src to an in-process dst and starts the consumer
// goroutine. Both endpoints track the link, so a Kill or Close of either
// worker severs it.
func newRingLink(src, dst *Worker) (*ringLink, error) {
	rl := &ringLink{
		src:  src,
		dst:  dst,
		ring: exec.NewRing[*frame](ringCap),
		stop: make(chan struct{}),
	}
	if !src.trackRing(rl) {
		return nil, errRingPeerDown
	}
	if !dst.trackRing(rl) {
		src.untrackRing(rl)
		return nil, errRingPeerDown
	}
	go dst.serveRing(rl)
	return rl, nil
}

// send implements peerLink. Frames are moved by reference — callers build a
// fresh frame per send, so the receiver owns it. The sender-side fault
// hooks (drop/dup/delay) apply exactly as on a TCP conn; a duplicated frame
// is pushed as a shallow copy so the two deliveries stay independent.
func (rl *ringLink) send(f *frame) error {
	var dup bool
	if fi := rl.src.fi; fi != nil && f.Kind == kindData {
		act := fi.DataSent(f.Stream)
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		if act.Drop {
			return nil // vanished in transit
		}
		dup = act.Dup
	}
	rl.sendMu.Lock()
	err := rl.ring.Push(f, rl.stop)
	if err == nil && dup {
		cp := *f
		err = rl.ring.Push(&cp, rl.stop)
	}
	rl.sendMu.Unlock()
	if err != nil {
		return errRingPeerDown
	}
	return nil
}

// close implements peerLink. The ring is closed rather than dropped, so the
// consumer drains frames already pushed (a final producer-done marker must
// not be lost to a racing teardown) before its goroutine exits.
func (rl *ringLink) close() {
	rl.once.Do(func() {
		close(rl.stop)
		rl.ring.Close()
		rl.src.untrackRing(rl)
		rl.dst.untrackRing(rl)
	})
}

// serveRing is the consumer half of an inbound ring link — the in-process
// analogue of servePeer: pop frames and dispatch them into the owning job's
// session. The receive-side fault hooks (kill/wedge) count ring frames like
// wire frames, so chaos and conformance fault plans behave identically on
// both transports.
func (w *Worker) serveRing(rl *ringLink) {
	defer rl.close()
	for {
		f, ok := rl.ring.Pop(nil)
		if !ok {
			return
		}
		if w.fi != nil {
			kill, stall := w.fi.FrameReceived(f.Kind == kindData)
			if kill {
				// FrameReceived already ran Worker.Kill: every link
				// (including this one) is severed.
				return
			}
			if stall > 0 {
				time.Sleep(stall)
			}
		}
		if m := w.metrics(); m != nil && f.Kind == kindData {
			m.rxRingFrames.Inc()
		}
		w.mu.Lock()
		s := w.sessions[f.Job]
		w.mu.Unlock()
		if s == nil {
			continue // stale frame after the job's session ended
		}
		s.dispatchPeer(f)
	}
}

// trackRing registers a ring link endpoint for severing; false when the
// worker is already dead (the link must not form).
func (w *Worker) trackRing(rl *ringLink) bool {
	w.connsMu.Lock()
	defer w.connsMu.Unlock()
	if w.killed || w.closed.Load() {
		return false
	}
	w.rings[rl] = struct{}{}
	return true
}

func (w *Worker) untrackRing(rl *ringLink) {
	w.connsMu.Lock()
	delete(w.rings, rl)
	w.connsMu.Unlock()
}
