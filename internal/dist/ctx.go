package dist

import (
	"fmt"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/obs"
)

// dctx implements core.Ctx for one local copy in a distributed session.
type dctx struct {
	s *session
	u *uowState
	c *dcopy

	// o is the worker's observer (nil = disabled).
	o           *obs.Observer
	readStallH  *obs.Histogram
	writeStallH *obs.Histogram

	// ackPending coalesces acknowledgments per (producer copy, stream,
	// target) for batched-ack policies.
	ackPending map[ackPendKey]int

	// pendRel holds, per input stream, the release of the zero-copy wire
	// buffer backing the buffer most recently delivered to this copy. It is
	// called when the copy finishes that buffer — at its next Read on the
	// stream, or at stream end-of-work — recycling the buffer to the pool.
	pendRel map[string]func()
}

type ackPendKey struct {
	stream       string
	producerCopy int
	targetIdx    int
	fromHost     string
	hasLocal     bool
}

func (s *session) ctxFor(c *dcopy, u *uowState) *dctx {
	d := &dctx{s: s, u: u, c: c, o: s.w.obsrv}
	if reg := s.w.obsrv.Registry(); reg != nil {
		d.readStallH = reg.Histogram("dist.read_stall_seconds")
		d.writeStallH = reg.Histogram("dist.write_stall_seconds")
	}
	return d
}

var _ core.Ctx = (*dctx)(nil)

func (d *dctx) Read(stream string) (core.Buffer, bool) {
	q := d.u.queues[stream]
	if q == nil {
		panic(fmt.Sprintf("dist: filter %s reads unknown stream %q on host %s", d.c.name, stream, d.s.setup.Host))
	}
	if d.o != nil {
		// Non-blocking attempt so an actual stall gets a trace span.
		select {
		case dv, ok := <-q:
			return d.finishRead(stream, dv, ok)
		case <-d.s.failedCh:
			return core.Buffer{}, false
		default:
		}
		t0 := time.Now()
		d.emitStall(obs.KindStallStart, stream, "read")
		defer func() {
			d.readStallH.Observe(time.Since(t0).Seconds())
			d.emitStall(obs.KindStallEnd, stream, "read")
		}()
	}
	select {
	case dv, ok := <-q:
		return d.finishRead(stream, dv, ok)
	case <-d.s.failedCh:
		return core.Buffer{}, false
	}
}

func (d *dctx) finishRead(stream string, dv delivery, ok bool) (core.Buffer, bool) {
	// The previous buffer on this stream is finished now (DataCutter buffer
	// contract: a delivered buffer is valid until the copy's next Read);
	// recycle the wire buffer a zero-copy payload was decoded in place from.
	if rel := d.pendRel[stream]; rel != nil {
		rel()
		delete(d.pendRel, stream)
	}
	if !ok {
		d.flushAcks()
		return core.Buffer{}, false
	}
	if dv.release != nil {
		if d.pendRel == nil {
			d.pendRel = make(map[string]func())
		}
		d.pendRel[stream] = dv.release
	}
	if dv.ackEvery > 0 {
		d.ack(dv)
	}
	return dv.buf, true
}

func (d *dctx) emitStall(k obs.Kind, stream, dir string) {
	d.o.Emit(obs.Event{Kind: k, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: stream, UOW: d.u.index, Note: dir})
}

// enqueueLocal places a same-host delivery on the shared copy-set queue,
// wrapping an actual block in a write-stall span.
func (d *dctx) enqueueLocal(stream string, dv delivery) error {
	q := d.u.queues[stream]
	if d.o != nil {
		select {
		case q <- dv:
			return nil
		case <-d.s.failedCh:
			return core.ErrCancelled
		default:
		}
		t0 := time.Now()
		d.emitStall(obs.KindStallStart, stream, "write")
		defer func() {
			d.writeStallH.Observe(time.Since(t0).Seconds())
			d.emitStall(obs.KindStallEnd, stream, "write")
		}()
	}
	select {
	case q <- dv:
		return nil
	case <-d.s.failedCh:
		return core.ErrCancelled
	}
}

// ack acknowledges one consumed buffer, locally or over the wire,
// coalescing per the producer's batch factor.
func (d *dctx) ack(dv delivery) {
	key := ackPendKey{
		stream: dv.stream, producerCopy: dv.producerCopy,
		targetIdx: dv.targetIdx, fromHost: dv.fromHost, hasLocal: dv.localAck != nil,
	}
	n := 1
	if dv.ackEvery > 1 {
		if d.ackPending == nil {
			d.ackPending = make(map[ackPendKey]int)
		}
		d.ackPending[key]++
		if d.ackPending[key] < dv.ackEvery {
			return
		}
		n = d.ackPending[key]
		delete(d.ackPending, key)
	}
	d.sendAck(key, dv, n)
}

func (d *dctx) sendAck(key ackPendKey, dv delivery, n int) {
	d.u.statMu.Lock()
	d.u.ackCount[key.stream]++
	d.u.statMu.Unlock()
	if d.o != nil {
		d.o.Emit(obs.Event{Kind: obs.KindAck, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: key.stream, Target: dv.fromHost, N: n, UOW: d.u.index})
	}
	if dv.localAck != nil {
		select {
		case dv.localAck <- [2]int{dv.targetIdx, n}:
		default:
		}
		return
	}
	c, err := d.s.peer(dv.fromHost)
	if err != nil {
		return
	}
	if m := d.s.w.metrics(); m != nil {
		m.txAckFrames.Inc()
	}
	_ = c.send(&frame{Kind: kindAck, UOWIdx: d.u.index, Stream: key.stream, Copy: dv.producerCopy, Target: dv.targetIdx, AckN: n})
}

func (d *dctx) flushAcks() {
	for key, n := range d.ackPending {
		delete(d.ackPending, key)
		if d.o != nil {
			d.o.Emit(obs.Event{Kind: obs.KindAck, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: key.stream, Target: key.fromHost, N: n, UOW: d.u.index, Note: "flush"})
		}
		if key.hasLocal {
			// Local acks need the channel; recover it from the writer map.
			if ch, ok := d.u.acks[copyStream{key.producerCopy, key.stream}]; ok {
				select {
				case ch <- [2]int{key.targetIdx, n}:
				default:
				}
			}
			continue
		}
		if c, err := d.s.peer(key.fromHost); err == nil {
			if m := d.s.w.metrics(); m != nil {
				m.txAckFrames.Inc()
			}
			_ = c.send(&frame{Kind: kindAck, UOWIdx: d.u.index, Stream: key.stream, Copy: key.producerCopy, Target: key.targetIdx, AckN: n})
		}
	}
}

func (d *dctx) Write(stream string, b core.Buffer) error {
	key := copyStream{d.c.globalIdx, stream}
	dw := d.u.writers[key]
	if dw == nil {
		panic(fmt.Sprintf("dist: filter %s writes unknown stream %q", d.c.name, stream))
	}
	// Fold in pending acknowledgments.
	if ch, ok := d.u.acks[key]; ok {
	drain:
		for {
			select {
			case a := <-ch:
				dw.unacked[a[0]] -= a[1]
			default:
				break drain
			}
		}
	}
	idx := dw.writer.Pick(dw.unacked)
	target := dw.targets[idx]
	if dw.writer.WantsAcks() {
		dw.unacked[idx]++
	}
	if d.o != nil {
		d.o.Emit(obs.Event{Kind: obs.KindPick, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: stream, Target: target.Host, UOW: d.u.index})
	}

	if target.Host == d.s.setup.Host {
		// Same-host delivery: straight into the shared copy-set queue.
		dv := delivery{
			buf: b, fromHost: d.s.setup.Host, producerCopy: d.c.globalIdx,
			targetIdx: idx, stream: stream,
		}
		if dw.writer.WantsAcks() {
			dv.ackEvery = dw.ackEvery
			dv.localAck = d.u.acks[key]
		}
		if err := d.enqueueLocal(stream, dv); err != nil {
			return err
		}
		if d.o != nil {
			d.o.Emit(obs.Event{Kind: obs.KindEnqueue, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: stream, Target: target.Host, Bytes: b.Size, UOW: d.u.index})
		}
	} else {
		c, err := d.s.peer(target.Host)
		if err != nil {
			d.s.failTransport(target.Host, err)
			return core.ErrCancelled
		}
		ackEvery := 0
		if dw.writer.WantsAcks() {
			ackEvery = dw.ackEvery
		}
		// The payload is serialized by the conn via the codec registry
		// (fast path for registered types, gob otherwise), outside the
		// connection's write lock.
		if err := c.send(dataFrame(d.u.index, stream, d.c.globalIdx, idx, ackEvery, b.Size, b.Payload)); err != nil {
			d.s.failTransport(target.Host, fmt.Errorf("dist: sending buffer for %s to %s: %w", stream, target.Host, err))
			return core.ErrCancelled
		}
		if m := d.s.w.metrics(); m != nil {
			m.txDataFrames.Inc()
			m.txDataBytes.Add(int64(b.Size))
		}
		if d.o != nil {
			d.o.Emit(obs.Event{Kind: obs.KindSend, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: stream, Target: target.Host, Bytes: b.Size, UOW: d.u.index})
		}
	}

	d.u.statMu.Lock()
	d.u.buffers[stream]++
	d.u.bytes[stream] += int64(b.Size)
	per := d.u.perTarget[stream]
	if per == nil {
		per = make(map[string]int64)
		d.u.perTarget[stream] = per
	}
	per[target.Host]++
	d.u.statMu.Unlock()
	return nil
}

func (d *dctx) Compute(float64)     {} // real work is real on this engine
func (d *dctx) ChargeDisk(int, int) {}

func (d *dctx) DeclareBuffer(stream string, minBytes, maxBytes int) {
	d.u.declMu.Lock()
	defer d.u.declMu.Unlock()
	cur := d.u.decls[stream]
	if minBytes > cur[0] {
		cur[0] = minBytes
	}
	if maxBytes > 0 && (cur[1] == 0 || maxBytes < cur[1]) {
		cur[1] = maxBytes
	}
	d.u.decls[stream] = cur
}

func (d *dctx) BufferBytes(stream string) int {
	if v, ok := d.u.sizes[stream]; ok {
		return v
	}
	return 0
}

func (d *dctx) Host() string     { return d.s.setup.Host }
func (d *dctx) CopyIndex() int   { return d.c.globalIdx }
func (d *dctx) TotalCopies() int { return d.c.total }
func (d *dctx) UOW() int         { return d.u.index }
func (d *dctx) Work() any        { return d.u.work }
