package dist

import (
	"fmt"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/exec"
	"datacutter/internal/obs"
)

// dctx implements core.Ctx for one local copy in a distributed session.
type dctx struct {
	s *session
	u *uowState
	c *dcopy

	// o is the worker's observer (nil = disabled).
	o           *obs.Observer
	readStallH  *obs.Histogram
	writeStallH *obs.Histogram

	// acks coalesces acknowledgments per (producer copy, stream, target)
	// for batched-ack policies (exec.Coalescer).
	acks *exec.Coalescer[ackPendKey]

	// pendRel holds, per input stream, the release of the zero-copy wire
	// buffer backing the buffer most recently delivered to this copy. It is
	// called when the copy finishes that buffer — at its next Read on the
	// stream, or at stream end-of-work — recycling the buffer to the pool.
	pendRel map[string]func()
}

type ackPendKey struct {
	stream       string
	producerCopy int
	targetIdx    int
	fromHost     string
	hasLocal     bool
}

func (s *session) ctxFor(c *dcopy, u *uowState) *dctx {
	d := &dctx{s: s, u: u, c: c, o: s.w.obsrv}
	if reg := s.w.obsrv.Registry(); reg != nil {
		d.readStallH = reg.Histogram("dist.read_stall_seconds")
		d.writeStallH = reg.Histogram("dist.write_stall_seconds")
	}
	return d
}

var _ core.Ctx = (*dctx)(nil)

func (d *dctx) Read(stream string) (core.Buffer, bool) {
	q := d.u.queues[stream]
	if q == nil {
		panic(fmt.Sprintf("dist: filter %s reads unknown stream %q on host %s", d.c.name, stream, d.s.setup.Host))
	}
	if d.o != nil {
		// Non-blocking attempt so an actual stall gets a trace span.
		select {
		case dv, ok := <-q:
			return d.finishRead(stream, dv, ok)
		case <-d.s.failedCh:
			return core.Buffer{}, false
		default:
		}
		t0 := time.Now()
		d.emitStall(obs.KindStallStart, stream, "read")
		defer func() {
			d.readStallH.Observe(time.Since(t0).Seconds())
			d.emitStall(obs.KindStallEnd, stream, "read")
		}()
	}
	select {
	case dv, ok := <-q:
		return d.finishRead(stream, dv, ok)
	case <-d.s.failedCh:
		return core.Buffer{}, false
	}
}

func (d *dctx) finishRead(stream string, dv delivery, ok bool) (core.Buffer, bool) {
	// The previous buffer on this stream is finished now (DataCutter buffer
	// contract: a delivered buffer is valid until the copy's next Read);
	// recycle the wire buffer a zero-copy payload was decoded in place from.
	if rel := d.pendRel[stream]; rel != nil {
		rel()
		delete(d.pendRel, stream)
	}
	if !ok {
		d.flushAcks()
		return core.Buffer{}, false
	}
	if dv.release != nil {
		if d.pendRel == nil {
			d.pendRel = make(map[string]func())
		}
		d.pendRel[stream] = dv.release
	}
	if dv.ackEvery > 0 {
		d.ack(dv)
	}
	return dv.buf, true
}

func (d *dctx) emitStall(k obs.Kind, stream, dir string) {
	d.o.Emit(obs.Event{Kind: k, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: stream, UOW: d.u.index, Note: dir})
}

// distPort binds the shared stream-writer runtime (exec.StreamWriter) to
// the distributed engine: a same-host pick lands on the shared copy-set
// queue, a remote pick is framed and sent on the peer's data connection
// (where blocking is TCP backpressure). The port lives in uowState with
// its writer — dctx instances are rebuilt per phase, the write path is
// per unit of work.
type distPort struct {
	s       *session
	u       *uowState
	c       *dcopy
	stream  string
	targets []core.TargetInfo
	acks    exec.AckChan // non-nil when the policy wants acks
	// writeStallH is resolved at writer construction (nil = obs disabled).
	writeStallH *obs.Histogram
}

func (p *distPort) Deliver(idx int, b core.Buffer, ackEvery int) error {
	s, u, o := p.s, p.u, p.s.w.obsrv
	target := p.targets[idx]
	if target.Host == s.setup.Host {
		// Same-host delivery: straight into the shared copy-set queue.
		dv := delivery{
			buf: b, fromHost: s.setup.Host, producerCopy: p.c.globalIdx,
			targetIdx: idx, stream: p.stream,
		}
		if ackEvery > 0 {
			dv.ackEvery = ackEvery
			dv.localAck = p.acks
		}
		if err := p.enqueueLocal(dv); err != nil {
			return err
		}
		if o != nil {
			o.Emit(obs.Event{Kind: obs.KindEnqueue, Filter: p.c.name, Copy: p.c.globalIdx, Host: s.setup.Host, Stream: p.stream, Target: target.Host, Bytes: b.Size, UOW: u.index})
		}
	} else {
		c, err := s.peer(target.Host)
		if err != nil {
			s.failTransport(target.Host, err)
			return core.ErrCancelled
		}
		// The payload is serialized by the conn via the codec registry
		// (fast path for registered types, gob otherwise), outside the
		// connection's write lock.
		if err := c.send(dataFrame(s.job, u.index, p.stream, p.c.globalIdx, idx, ackEvery, b.Size, b.Payload)); err != nil {
			s.failTransport(target.Host, fmt.Errorf("dist: sending buffer for %s to %s: %w", p.stream, target.Host, err))
			return core.ErrCancelled
		}
		if m := s.w.metrics(); m != nil {
			m.txDataFrames.Inc()
			m.txDataBytes.Add(int64(b.Size))
		}
		if o != nil {
			o.Emit(obs.Event{Kind: obs.KindSend, Filter: p.c.name, Copy: p.c.globalIdx, Host: s.setup.Host, Stream: p.stream, Target: target.Host, Bytes: b.Size, UOW: u.index})
		}
	}
	u.statMu.Lock()
	u.buffers[p.stream]++
	u.bytes[p.stream] += int64(b.Size)
	u.statMu.Unlock()
	return nil
}

// enqueueLocal places a same-host delivery on the shared copy-set queue,
// wrapping an actual block in a write-stall span.
func (p *distPort) enqueueLocal(dv delivery) error {
	s, o := p.s, p.s.w.obsrv
	q := p.u.queues[p.stream]
	emit := func(k obs.Kind) {
		o.Emit(obs.Event{Kind: k, Filter: p.c.name, Copy: p.c.globalIdx, Host: s.setup.Host, Stream: p.stream, UOW: p.u.index, Note: "write"})
	}
	if o != nil {
		select {
		case q <- dv:
			return nil
		case <-s.failedCh:
			return core.ErrCancelled
		default:
		}
		t0 := time.Now()
		emit(obs.KindStallStart)
		defer func() {
			p.writeStallH.Observe(time.Since(t0).Seconds())
			emit(obs.KindStallEnd)
		}()
	}
	select {
	case q <- dv:
		return nil
	case <-s.failedCh:
		return core.ErrCancelled
	}
}

// ack acknowledges one consumed buffer, locally or over the wire,
// coalescing per the producer's batch factor.
func (d *dctx) ack(dv delivery) {
	if d.acks == nil {
		d.acks = exec.NewCoalescer[ackPendKey](d.sendAck)
	}
	key := ackPendKey{
		stream: dv.stream, producerCopy: dv.producerCopy,
		targetIdx: dv.targetIdx, fromHost: dv.fromHost, hasLocal: dv.localAck != nil,
	}
	d.acks.Ack(key, dv.ackEvery)
}

func (d *dctx) sendAck(key ackPendKey, n int) {
	d.u.statMu.Lock()
	d.u.ackCount[key.stream]++
	d.u.statMu.Unlock()
	if d.o != nil {
		d.o.Emit(obs.Event{Kind: obs.KindAck, Filter: d.c.name, Copy: d.c.globalIdx, Host: d.s.setup.Host, Stream: key.stream, Target: key.fromHost, N: n, UOW: d.u.index})
	}
	if key.hasLocal {
		// Local acks go straight to the producer's window channel; Offer
		// drops on overflow (the channel is sized so that cannot happen
		// without fault-injected duplication).
		if ch, ok := d.u.acks[copyStream{key.producerCopy, key.stream}]; ok {
			ch.Offer(key.targetIdx, n)
		}
		return
	}
	c, err := d.s.peer(key.fromHost)
	if err != nil {
		return
	}
	if m := d.s.w.metrics(); m != nil {
		m.txAckFrames.Inc()
	}
	_ = c.send(&frame{Kind: kindAck, Job: d.s.job, UOWIdx: d.u.index, Stream: key.stream, Copy: key.producerCopy, Target: key.targetIdx, AckN: n})
}

// flushAcks releases coalesced acknowledgments at end-of-work so producer
// windows drain even when a batch is incomplete.
func (d *dctx) flushAcks() {
	if d.acks != nil {
		d.acks.Flush()
	}
}

// Write hands the buffer to the shared stream-writer runtime: ack drain,
// policy pick, and window update happen in exec.StreamWriter; the distPort
// Deliver callback routes the buffer to the local queue or the wire.
func (d *dctx) Write(stream string, b core.Buffer) error {
	sw := d.u.writers[copyStream{d.c.globalIdx, stream}]
	if sw == nil {
		panic(fmt.Sprintf("dist: filter %s writes unknown stream %q", d.c.name, stream))
	}
	return sw.Write(b)
}

func (d *dctx) Compute(float64)     {} // real work is real on this engine
func (d *dctx) ChargeDisk(int, int) {}

func (d *dctx) DeclareBuffer(stream string, minBytes, maxBytes int) {
	d.u.declMu.Lock()
	defer d.u.declMu.Unlock()
	cur := d.u.decls[stream]
	if minBytes > cur[0] {
		cur[0] = minBytes
	}
	if maxBytes > 0 && (cur[1] == 0 || maxBytes < cur[1]) {
		cur[1] = maxBytes
	}
	d.u.decls[stream] = cur
}

func (d *dctx) BufferBytes(stream string) int {
	if v, ok := d.u.sizes[stream]; ok {
		return v
	}
	return 0
}

func (d *dctx) Host() string     { return d.s.setup.Host }
func (d *dctx) CopyIndex() int   { return d.c.globalIdx }
func (d *dctx) TotalCopies() int { return d.c.total }
func (d *dctx) UOW() int         { return d.u.index }
func (d *dctx) Work() any        { return d.u.work }
