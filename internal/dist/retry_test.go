package dist

import (
	"net"
	"strings"
	"testing"
	"time"

	"datacutter/internal/obs"
)

// refusedAddr returns a loopback address that refuses connections: the
// port was just allocated and released, so a dial fails immediately with
// ECONNREFUSED instead of timing out.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDialRetryFirstAttemptSucceeds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	reg := obs.NewRegistry()
	redials := reg.Counter("dist.redials")
	opts := &Options{DialAttempts: 3, DialTimeout: 2 * time.Second}
	c, err := dialRetry(ln.Addr().String(), opts, nil, redials, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if got := redials.Value(); got != 0 {
		t.Fatalf("redials = %d after a first-attempt success, want 0", got)
	}
}

// Three failing attempts sleep twice, with full jitter in [backoff/2,
// 3*backoff/2): [25ms,75ms) then [50ms,150ms). The total elapsed time must
// respect the deterministic lower bound (75ms) — proving the backoff
// actually waits — and a generous upper bound well under the unjittered
// worst case would ever allow (proving the cap and jitter keep retries
// prompt). Refused loopback dials themselves are effectively instant.
func TestDialRetryBackoffAndJitterBounds(t *testing.T) {
	reg := obs.NewRegistry()
	redials := reg.Counter("dist.redials")
	opts := &Options{DialAttempts: 3, DialTimeout: time.Second}

	start := time.Now()
	_, err := dialRetry(refusedAddr(t), opts, nil, redials, nil)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("dialing a refused address succeeded")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error does not report the attempt budget: %v", err)
	}
	if got := redials.Value(); got != 2 {
		t.Fatalf("redials = %d for 3 attempts, want 2", got)
	}
	if elapsed < 75*time.Millisecond {
		t.Fatalf("3 attempts finished in %v; backoff floor is 75ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("3 attempts took %v; jittered backoff should stay well under 2s", elapsed)
	}
}

// A nil redials counter must be safe: the worker peer mesh passes nil when
// observability is disabled.
func TestDialRetryNilCounter(t *testing.T) {
	opts := &Options{DialAttempts: 2, DialTimeout: time.Second}
	if _, err := dialRetry(refusedAddr(t), opts, nil, nil, nil); err == nil {
		t.Fatal("dialing a refused address succeeded")
	}
}

// Cancellation mid-backoff must return promptly instead of sleeping out the
// remaining attempts: a session being torn down closes failedCh and its
// peer dials must not linger.
func TestDialRetryCancelReturnsPromptly(t *testing.T) {
	addr := refusedAddr(t)
	opts := &Options{DialAttempts: 1000, DialTimeout: time.Second}
	cancel := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(cancel)
	}()

	start := time.Now()
	_, err := dialRetry(addr, opts, nil, nil, cancel)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("cancelled dial succeeded")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("error does not report cancellation: %v", err)
	}
	// 1000 attempts would sleep minutes; a prompt cancel returns within the
	// first couple of backoff windows.
	if elapsed > time.Second {
		t.Fatalf("cancelled dial returned after %v", elapsed)
	}
}

// A cancel channel that is already closed aborts during the first backoff:
// exactly one dial attempt happens.
func TestDialRetryCancelAlreadyClosed(t *testing.T) {
	addr := refusedAddr(t)
	opts := &Options{DialAttempts: 1000, DialTimeout: time.Second}
	cancel := make(chan struct{})
	close(cancel)

	_, err := dialRetry(addr, opts, nil, nil, cancel)
	if err == nil {
		t.Fatal("cancelled dial succeeded")
	}
	if !strings.Contains(err.Error(), "cancelled after 1 attempts") {
		t.Fatalf("want cancellation after exactly 1 attempt, got: %v", err)
	}
}
