package dist_test

import (
	"strings"
	"testing"

	"datacutter/internal/dist"
	"datacutter/internal/leakcheck"
)

// A per-stream override must survive the gob setup frame and actually steer
// the workers' writers: with a DD session default but a WRR override on the
// one stream, the distribution is the exact WRR split and no acknowledgment
// traffic exists (WRR is ack-free; had the override been dropped anywhere
// between Options, the setup frame, and the worker's writer construction,
// DD would have produced acks).
func TestDistributedStreamPolicyOverrideRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)
	const n = 120
	st, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 2},
	}, dist.Options{
		Policy:       "DD",
		StreamPolicy: map[string]string{"ints": "WRR"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	per := st.Streams["ints"].PerTargetHost
	if per["host0"] != n/3 || per["host1"] != 2*n/3 {
		t.Fatalf("override not applied, distribution %v, want host0:%d host1:%d", per, n/3, 2*n/3)
	}
	if st.Streams["ints"].Acks != 0 {
		t.Fatalf("WRR override produced %d acks — DD default leaked through", st.Streams["ints"].Acks)
	}
	total := 0
	for _, host := range []string{"host0", "host1"} {
		for _, inst := range workers[host].Instances("K") {
			total += inst.(*intSink).Seen
		}
	}
	if total != n {
		t.Fatalf("delivered %d of %d", total, n)
	}
}

// The reverse direction: an ack-free default with a DD override on the
// stream must produce acknowledgments.
func TestDistributedStreamPolicyOverrideEnablesAcks(t *testing.T) {
	leakcheck.Check(t)
	addrs, _ := startWorkers(t, 2)
	const n = 120
	st, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{
		Policy:       "RR",
		StreamPolicy: map[string]string{"ints": "DD/4"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams["ints"].Acks == 0 {
		t.Fatal("DD/4 override produced no acks — RR default leaked through")
	}
}

// The coordinator must reject a bad per-stream policy name before any
// worker sees the session.
func TestDistributedStreamPolicyRejected(t *testing.T) {
	leakcheck.Check(t)
	addrs, _ := startWorkers(t, 1)
	_, err := dist.Run(addrs, intGraph(5), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}, dist.Options{StreamPolicy: map[string]string{"ints": "bogus"}}, nil)
	if err == nil {
		t.Fatal("bogus stream policy accepted")
	}
	if !strings.Contains(err.Error(), "unknown policy") || !strings.Contains(err.Error(), "ints") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}
