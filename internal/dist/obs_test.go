package dist_test

import (
	"testing"

	"datacutter/internal/dist"
	"datacutter/internal/obs"
)

// TestDistributedObservedRun attaches observers to both workers and the
// coordinator and checks that frame counters, trace events, and coordinator
// metrics reflect the cross-host traffic.
func TestDistributedObservedRun(t *testing.T) {
	addrs, workers := startWorkers(t, 2)

	rings := map[string]*obs.RingSink{}
	regs := map[string]*obs.Registry{}
	for host, w := range workers {
		ring := obs.NewRingSink(8192)
		reg := obs.NewRegistry()
		o := obs.New(ring, reg)
		o.SetClock(obs.NewWallClock())
		w.SetObserver(o)
		rings[host] = ring
		regs[host] = reg
	}

	coordReg := obs.NewRegistry()
	coordObs := obs.New(nil, coordReg)

	const n = 100
	st, err := dist.RunObserved(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{Policy: "DD"}, nil, coordObs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams["ints"].Buffers != n {
		t.Fatalf("stats buffers = %d", st.Streams["ints"].Buffers)
	}

	// All n buffers cross host0 -> host1: sender counts tx frames, receiver
	// counts rx frames.
	if got := regs["host0"].Counter("dist.tx.data_frames").Value(); got != n {
		t.Fatalf("host0 tx data frames = %d, want %d", got, n)
	}
	if got := regs["host1"].Counter("dist.rx.data_frames").Value(); got != n {
		t.Fatalf("host1 rx data frames = %d, want %d", got, n)
	}
	if got := regs["host1"].Counter("dist.rx.data_bytes").Value(); got != n*8 {
		t.Fatalf("host1 rx data bytes = %d, want %d", got, n*8)
	}
	// DD acks flow back host1 -> host0.
	if regs["host1"].Counter("dist.tx.ack_frames").Value() == 0 {
		t.Fatal("host1 sent no ack frames under DD")
	}
	if regs["host0"].Counter("dist.rx.ack_frames").Value() == 0 {
		t.Fatal("host0 received no ack frames under DD")
	}

	// Trace events: producer emits pick+send on host0, consumer enqueue on
	// host1; both hosts bracket Process.
	count := func(host string, k obs.Kind) int {
		c := 0
		for _, e := range rings[host].Events() {
			if e.Kind == k {
				c++
			}
		}
		return c
	}
	if got := count("host0", obs.KindSend); got != n {
		t.Fatalf("host0 send events = %d, want %d", got, n)
	}
	if got := count("host1", obs.KindEnqueue); got != n {
		t.Fatalf("host1 enqueue events = %d, want %d", got, n)
	}
	for _, host := range []string{"host0", "host1"} {
		if count(host, obs.KindProcessStart) != 1 || count(host, obs.KindProcessEnd) != 1 {
			t.Fatalf("%s process bracket events missing", host)
		}
	}

	// Coordinator-side metrics.
	if got := coordReg.Histogram("coord.uow_seconds").Count(); got != 1 {
		t.Fatalf("coord uow histogram count = %d", got)
	}
	if got := coordReg.Gauge("coord.stream.ints.buffers").Value(); got != n {
		t.Fatalf("coord buffers gauge = %d, want %d", got, n)
	}
}

// TestDistributedRunNilObserver pins Run == RunObserved(nil).
func TestDistributedRunNilObserver(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	st, err := dist.RunObserved(addrs, intGraph(10), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}, dist.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams["ints"].Buffers != 10 {
		t.Fatalf("buffers = %d", st.Streams["ints"].Buffers)
	}
}
