package dist

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/elastic"
	"datacutter/internal/obs"
)

// HostsError attributes a failed run to specific hosts: the workers the
// coordinator declared dead (transport errors, heartbeat silence, peer
// failure attribution on kindFail) or could not dial at setup. Callers that
// manage the worker fleet — internal/jobd's failure scoring — unwrap it
// with errors.As to charge the implicated workers instead of treating every
// failure as an anonymous application error.
type HostsError struct {
	Hosts []string // implicated hosts, sorted
	Err   error
}

func (e *HostsError) Error() string {
	return fmt.Sprintf("%v (hosts implicated: %s)", e.Err, strings.Join(e.Hosts, ","))
}

func (e *HostsError) Unwrap() error { return e.Err }

// attributeHosts wraps err with the implicated hosts when there are any.
func attributeHosts(err error, hosts []string) error {
	if err == nil || len(hosts) == 0 {
		return err
	}
	return &HostsError{Hosts: hosts, Err: err}
}

// Run executes a distributed session: it connects to the worker at each
// host's address, ships the graph spec and placement, drives the
// unit-of-work phases (init with buffer-size resolution, process,
// finalize), and aggregates the workers' statistics.
//
// Failure model: worker liveness is tracked with control-plane heartbeats
// (Options.HeartbeatInterval / HeartbeatMisses); when a host is declared
// dead the coordinator aborts the survivors with kindAbort — instead of
// leaving them blocked on dead peer streams — and, when MaxUOWRetries
// allows, re-dispatches the failed unit of work on a placement replanned
// without the dead hosts (legal under the paper's transparent-copy
// semantics: per-UOW filter state is rebuilt by Init). Application errors
// are never retried.
func Run(addrs map[string]string, spec GraphSpec, placement []PlacementEntry, opts Options, uows []any) (*core.Stats, error) {
	return RunObservedCtx(context.Background(), addrs, spec, placement, opts, uows, nil)
}

// RunCtx is Run with a context: cancellation (or a deadline) interrupts the
// run between and during units of work — the coordinator stops waiting on
// workers, broadcasts the abort protocol so their sessions tear down, and
// returns an error wrapping ctx.Err(). This is the cancel plumb-through the
// job service uses for job deadlines and DELETE /jobs/{id}.
func RunCtx(ctx context.Context, addrs map[string]string, spec GraphSpec, placement []PlacementEntry, opts Options, uows []any) (*core.Stats, error) {
	return RunObservedCtx(ctx, addrs, spec, placement, opts, uows, nil)
}

// RunObserved is Run with coordinator-side observability attached: a
// "coord.uow_seconds" latency histogram, per-stream buffer/byte/ack
// counters updated after each unit of work's stats merge, and the
// failure-model counters (coord.uow_retries, coord.hosts_lost,
// dist.heartbeat_misses, dist.redials) plus host-down / uow-retry trace
// events. The observer is coordinator-local only — it is never serialized
// into Options, so workers attach their own via Worker.SetObserver. o may
// be nil (disabled).
func RunObserved(addrs map[string]string, spec GraphSpec, placement []PlacementEntry, opts Options, uows []any, o *obs.Observer) (*core.Stats, error) {
	return RunObservedCtx(context.Background(), addrs, spec, placement, opts, uows, o)
}

// RunObservedCtx is RunObserved with RunCtx's cancellation semantics.
func RunObservedCtx(ctx context.Context, addrs map[string]string, spec GraphSpec, placement []PlacementEntry, opts Options, uows []any, o *obs.Observer) (*core.Stats, error) {
	if len(uows) == 0 {
		uows = []any{nil}
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Policy != "" && core.PolicyByName(opts.Policy) == nil {
		return nil, fmt.Errorf("dist: unknown policy %q", opts.Policy)
	}
	for stream, name := range opts.StreamPolicy {
		if core.PolicyByName(name) == nil {
			return nil, fmt.Errorf("dist: unknown policy %q for stream %q", name, stream)
		}
	}
	for _, e := range placement {
		if _, ok := addrs[e.Host]; !ok {
			return nil, fmt.Errorf("dist: placement host %q has no worker address", e.Host)
		}
	}
	if err := validateSchedule(spec, addrs, opts.ScaleSchedule); err != nil {
		return nil, err
	}

	if ctx == nil {
		ctx = context.Background()
	}
	co := &coordinator{
		ctx:       ctx,
		spec:      spec,
		opts:      opts,
		o:         o,
		addrs:     make(map[string]string, len(addrs)),
		placement: placement,
		links:     make(map[string]*hostLink, len(addrs)),
		agg:       newAggStats(spec),
	}
	for h, a := range addrs {
		co.addrs[h] = a
	}
	if reg := o.Registry(); reg != nil {
		co.m.uowH = reg.Histogram("coord.uow_seconds")
		co.m.retries = reg.Counter("coord.uow_retries")
		co.m.hostsLost = reg.Counter("coord.hosts_lost")
		co.m.hbMisses = reg.Counter("dist.heartbeat_misses")
		co.m.redials = reg.Counter("dist.redials")
	}
	// Every exit path runs teardown: on anything but a completed graceful
	// shutdown it broadcasts kindAbort so in-flight workers exit promptly
	// instead of waiting for a TCP reset or a blocked peer stream.
	defer co.teardown()

	if err := co.connectAll(); err != nil {
		return co.agg.s, err
	}

	start := time.Now()
	for i, work := range uows {
		if due := elastic.StepsAt(opts.ScaleSchedule, i); len(due) > 0 {
			if err := co.rescaleSessions(due, i); err != nil {
				return co.agg.s, attributeHosts(err, co.deadHosts())
			}
		}
		for attempt := 0; ; attempt++ {
			if cerr := ctx.Err(); cerr != nil {
				return co.agg.s, fmt.Errorf("dist: run cancelled: %w", cerr)
			}
			t0 := time.Now()
			err := co.runUOW(i, work)
			if err == nil {
				d := time.Since(t0).Seconds()
				co.agg.s.PerUOWSeconds = append(co.agg.s.PerUOWSeconds, d)
				co.m.uowH.Observe(d)
				publishCoordGauges(co.o, co.agg)
				break
			}
			dead := co.deadHosts()
			if ctx.Err() != nil || len(dead) == 0 || attempt >= co.opts.MaxUOWRetries {
				return co.agg.s, attributeHosts(err, dead)
			}
			if rerr := co.recover(dead); rerr != nil {
				return co.agg.s, attributeHosts(
					fmt.Errorf("dist: recovering from %q failed: %w", err, rerr), dead)
			}
			co.m.retries.Inc()
			co.o.Emit(obs.Event{Kind: obs.KindUOWRetry, UOW: i, N: attempt + 1,
				Note: "hosts lost: " + strings.Join(dead, ",")})
		}
	}
	co.agg.s.WallSeconds = time.Since(start).Seconds()

	co.shutdownAll()
	return co.agg.s, nil
}

// coordMetrics are the coordinator's resolved metric handles (nil-safe).
type coordMetrics struct {
	uowH      *obs.Histogram
	retries   *obs.Counter // coord.uow_retries
	hostsLost *obs.Counter // coord.hosts_lost
	hbMisses  *obs.Counter // dist.heartbeat_misses
	redials   *obs.Counter // dist.redials
}

// coordinator drives one distributed run. addrs and placement shrink as
// hosts die and units of work are replanned onto the survivors.
type coordinator struct {
	// ctx cancels the run: waits on workers abort, dial backoffs stop, and
	// the deferred teardown broadcasts kindAbort. Never nil.
	ctx       context.Context
	spec      GraphSpec
	opts      Options
	o         *obs.Observer
	addrs     map[string]string
	placement []PlacementEntry
	links     map[string]*hostLink
	agg       *aggStats
	m         coordMetrics

	// shut marks a completed graceful shutdown; teardown then skips the
	// abort broadcast.
	shut bool
}

// connectAll dials and sets up every host in co.addrs, populating co.links.
// A dial or setup failure is attributed to the host that refused — unless
// the run's context was cancelled, which is the caller's doing, not the
// worker's.
func (co *coordinator) connectAll() error {
	for _, host := range co.hostNames() {
		l, err := co.connectHost(host, co.addrs[host])
		if err != nil {
			if co.ctx.Err() != nil {
				return err
			}
			return attributeHosts(err, []string{host})
		}
		co.links[host] = l
	}
	return nil
}

// hostNames returns the current hosts sorted, for deterministic dial and
// gather order.
func (co *coordinator) hostNames() []string {
	names := make([]string, 0, len(co.addrs))
	for h := range co.addrs {
		names = append(names, h)
	}
	sort.Strings(names)
	return names
}

// connectHost dials one worker (with backoff via dialRetry) and completes
// the Setup handshake. A "worker busy" refusal is retried briefly: after an
// abort, the re-setup can race the old session's final teardown.
func (co *coordinator) connectHost(host, addr string) (*hostLink, error) {
	busyDeadline := time.Now().Add(co.opts.hbTimeout() + 2*time.Second)
	backoff := 10 * time.Millisecond
	for {
		nc, err := dialRetry(addr, &co.opts, co.opts.faults, co.m.redials, co.ctx.Done())
		if err != nil {
			return nil, fmt.Errorf("dist: dialing worker %s: %w", host, err)
		}
		c := newConn(nc, nil)
		if err := c.send(&frame{Kind: kindSetup, Setup: &setupMsg{
			Graph: co.spec, Placement: co.placement, Opts: co.opts,
			Addrs: co.addrs, Host: host,
		}}); err != nil {
			c.close()
			return nil, err
		}
		c.setReadDeadline(co.opts.hbTimeout() + 2*time.Second)
		f, err := c.recv()
		c.setReadDeadline(0)
		if err != nil {
			c.close()
			return nil, fmt.Errorf("dist: worker %s setup: %w", host, err)
		}
		switch {
		case f.Kind == kindFail && f.Err == busyMsg && time.Now().Before(busyDeadline):
			c.close()
			select {
			case <-time.After(backoff):
			case <-co.ctx.Done():
				return nil, fmt.Errorf("dist: worker %s setup cancelled: %w", host, co.ctx.Err())
			}
			if backoff *= 2; backoff > 200*time.Millisecond {
				backoff = 200 * time.Millisecond
			}
		case f.Kind == kindFail:
			c.close()
			return nil, fmt.Errorf("dist: worker %s: %s", host, f.Err)
		case f.Kind != kindSetupOK:
			c.close()
			return nil, fmt.Errorf("dist: worker %s: unexpected setup reply %d", host, f.Kind)
		default:
			return newHostLink(host, c, co.opts.hbInterval()), nil
		}
	}
}

// waitReply blocks for the next protocol reply from l, sweeping liveness
// across every live link each heartbeat interval. The sweep is what makes
// detection independent of gather order: when a third host dies while the
// coordinator waits on a healthy one, the healthy host may be blocked
// forever on the dead host's streams (demand-driven writers stop picking a
// dead copy set, so no surviving socket ever errors) — the dead host's
// buffered reader error or heartbeat silence is the only signal. On error
// the casualty — l itself or another host — has been marked dead and a
// host-down event emitted; callers inspect l.dead to tell which.
func (co *coordinator) waitReply(l *hostLink) (*frame, error) {
	// Prefer a buffered reply over a buffered error: the reader may have
	// delivered the reply and then hit the connection teardown.
	select {
	case f := <-l.reply:
		return f, nil
	default:
	}
	interval := co.opts.hbInterval()
	limit := co.opts.hbMisses()
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case f := <-l.reply:
			return f, nil
		case err := <-l.errc:
			co.markDead(l, err)
			return nil, fmt.Errorf("dist: worker %s: %w", l.host, err)
		case <-co.ctx.Done():
			// Cancellation, not a casualty: no host is marked dead; the
			// deferred teardown aborts every worker session.
			return nil, fmt.Errorf("dist: run cancelled: %w", co.ctx.Err())
		case <-t.C:
			if err := co.sweepLiveness(interval, limit); err != nil {
				return nil, err
			}
			t.Reset(interval)
		}
	}
}

// sweepLiveness checks every live link once: a buffered reader error, or a
// full miss budget of heartbeat-interval silences (counted per host in
// hostLink.misses so the tally survives gather moving between hosts),
// declares that host dead.
func (co *coordinator) sweepLiveness(interval time.Duration, limit int) error {
	for _, host := range co.hostNames() {
		l := co.links[host]
		if l == nil || l.dead {
			continue
		}
		select {
		case err := <-l.errc:
			co.markDead(l, err)
			return fmt.Errorf("dist: worker %s: %w", host, err)
		default:
		}
		if time.Duration(time.Now().UnixNano()-l.lastBeat.Load()) >= interval {
			l.misses++
			co.m.hbMisses.Inc()
			if l.misses >= limit {
				err := fmt.Errorf("dist: worker %s silent for %d heartbeat intervals", host, l.misses)
				co.markDead(l, err)
				return err
			}
		} else {
			l.misses = 0
		}
	}
	return nil
}

// markDead records the coordinator's verdict on one host and emits the
// host-down trace event.
func (co *coordinator) markDead(l *hostLink, err error) {
	l.dead = true
	co.o.Emit(obs.Event{Kind: obs.KindHostDown, Host: l.host, Note: err.Error()})
}

// broadcast sends f to every link; the first send error marks that host
// dead and aborts the broadcast (its conn error is sticky anyway).
func (co *coordinator) broadcast(f *frame) error {
	for _, host := range co.hostNames() {
		l := co.links[host]
		if err := l.c.send(f); err != nil {
			l.dead = true
			return fmt.Errorf("dist: worker %s unreachable: %w", host, err)
		}
	}
	return nil
}

// gather awaits one reply per host. A transport failure or heartbeat
// timeout marks the host dead and returns immediately — the remaining
// hosts may be blocked on the dead host's streams, so waiting on them
// in sequence could deadlock the coordinator; recovery aborts them
// instead. A kindFail reply either implicates a peer host (FailNet) or
// is an application error.
func (co *coordinator) gather(phase string, each func(host string, f *frame)) error {
	for _, host := range co.hostNames() {
		l := co.links[host]
		f, err := co.waitReply(l)
		if err != nil {
			// waitReply already marked the casualty dead — l itself, or
			// another host whose death strands the gather.
			return fmt.Errorf("dist: %s: %w", phase, err)
		}
		if f.Kind == kindFail {
			if f.FailNet {
				if tl := co.links[f.FailHost]; tl != nil && f.FailHost != host {
					co.markDead(tl, fmt.Errorf("%s", f.Err))
				}
				return fmt.Errorf("dist: worker %s %s: %s", host, phase, f.Err)
			}
			return fmt.Errorf("dist: worker %s: %s", host, f.Err)
		}
		if each != nil {
			each(host, f)
		}
	}
	return nil
}

func (co *coordinator) runUOW(idx int, work any) error {
	var raw []byte
	if r, ok := work.(RawUOW); ok {
		// Pre-encoded descriptor (a job-server relay): pass through
		// verbatim — the coordinator process need not know the type.
		raw = r
	} else if work != nil {
		var err error
		raw, err = encodeAny(work)
		if err != nil {
			return fmt.Errorf("dist: encoding unit of work: %w", err)
		}
	}

	// Phase 1: Init everywhere; gather and resolve buffer declarations.
	if err := co.broadcast(&frame{Kind: kindInitUOW, UOW: &uowMsg{Index: idx, Work: raw}}); err != nil {
		return err
	}
	decls := map[string][2]int{}
	err := co.gather("init", func(host string, f *frame) {
		for stream, d := range f.Decls {
			cur := decls[stream]
			if d[0] > cur[0] {
				cur[0] = d[0]
			}
			if d[1] > 0 && (cur[1] == 0 || d[1] < cur[1]) {
				cur[1] = d[1]
			}
			decls[stream] = cur
		}
	})
	if err != nil {
		return err
	}
	def := co.opts.BufferBytes
	if def <= 0 {
		def = 256 << 10
	}
	sizes := map[string]int{}
	for _, sp := range co.agg.streams {
		b := def
		d := decls[sp]
		if d[0] > 0 && b < d[0] {
			b = d[0]
		}
		if d[1] > 0 && b > d[1] {
			b = d[1]
		}
		sizes[sp] = b
	}

	// Phase 2: Process everywhere.
	if err := co.broadcast(&frame{Kind: kindBeginProcess, Sizes: sizes}); err != nil {
		return err
	}
	if err := co.gather("process", nil); err != nil {
		return err
	}

	// Phase 3: Finalize everywhere. Stats fragments are committed only
	// once the whole unit of work succeeded — a retried unit must not
	// double-count a failed attempt's traffic.
	if err := co.broadcast(&frame{Kind: kindFinalize}); err != nil {
		return err
	}
	var frags []*wireStats
	err = co.gather("finalize", func(host string, f *frame) {
		frags = append(frags, f.Stats)
	})
	if err != nil {
		return err
	}
	for _, ws := range frags {
		co.agg.merge(ws)
	}
	return nil
}

// deadHosts lists the hosts marked dead, sorted.
func (co *coordinator) deadHosts() []string {
	var out []string
	for host, l := range co.links {
		if l.dead {
			out = append(out, host)
		}
	}
	sort.Strings(out)
	return out
}

// recover transitions the run past the hosts in dead: survivors are aborted
// (and confirmed down via kindAbortDone, so their sessions are really over
// before re-setup), every link is torn down, the placement is replanned
// onto the survivors, and fresh sessions are set up. The caller then
// re-dispatches the failed unit of work.
func (co *coordinator) recover(dead []string) error {
	co.m.hostsLost.Add(int64(len(dead)))

	abort := &frame{Kind: kindAbort, Err: "host(s) lost: " + strings.Join(dead, ",")}
	for _, host := range co.hostNames() {
		l := co.links[host]
		if l.dead {
			continue
		}
		if err := l.c.send(abort); err != nil {
			co.markDead(l, err)
		}
	}
	// Await each survivor's AbortDone, discarding stale phase replies that
	// were already in flight when the abort went out. A survivor that
	// cannot confirm within the liveness budget is dead too.
	for _, host := range co.hostNames() {
		l := co.links[host]
		if l.dead {
			continue
		}
	drain:
		for {
			f, err := co.waitReply(l)
			if err != nil {
				if co.ctx.Err() != nil {
					return fmt.Errorf("dist: recovery cancelled: %w", co.ctx.Err())
				}
				if l.dead {
					break drain // this survivor died too (already marked)
				}
				continue // a different host died; keep draining this one
			}
			if f.Kind == kindAbortDone {
				break drain
			}
		}
	}

	// Tear every link down; survivors get fresh sessions below.
	survivors := make(map[string]string, len(co.addrs))
	deadSet := make(map[string]bool, len(co.links))
	for host, l := range co.links {
		if l.dead {
			l.sever()
			deadSet[host] = true
		} else {
			l.shutdown()
			survivors[host] = co.addrs[host]
		}
	}
	co.links = make(map[string]*hostLink, len(survivors))
	if len(survivors) == 0 {
		return fmt.Errorf("dist: no surviving hosts")
	}

	replanned, err := replanPlacement(co.placement, deadSet)
	if err != nil {
		return err
	}
	co.addrs = survivors
	co.placement = replanned
	return co.connectAll()
}

// shutdownAll ends a successful run: polite kindShutdown to every worker,
// confirmation that each session is unregistered, then link teardown. The
// confirmation matters for latency, not correctness — without it a
// back-to-back Run's Setup races the old session's teardown, gets refused
// busy, and sits out a retry backoff that dwarfs the actual work.
func (co *coordinator) shutdownAll() {
	for _, l := range co.links {
		_ = l.c.send(&frame{Kind: kindShutdown})
	}
	for _, host := range co.hostNames() {
		l := co.links[host]
		if l.dead {
			continue
		}
	confirm:
		for {
			f, err := co.waitReply(l)
			switch {
			case err != nil:
				break confirm // best-effort: the run already succeeded
			case f.Kind == kindShutdownDone:
				break confirm
			}
		}
	}
	for _, l := range co.links {
		l.shutdown()
	}
	co.links = map[string]*hostLink{}
	co.shut = true
}

// teardown runs on every exit path. Unless the run already shut down
// gracefully, it broadcasts a best-effort abort — the bugfix for workers
// previously left blocked mid-phase when the coordinator bailed out early —
// and closes every link.
func (co *coordinator) teardown() {
	if co.shut {
		return
	}
	abort := &frame{Kind: kindAbort, Err: "coordinator aborted the run"}
	for _, l := range co.links {
		if !l.dead {
			_ = l.c.send(abort)
		}
	}
	for _, l := range co.links {
		if l.dead {
			l.sever()
		} else {
			l.shutdown()
		}
	}
	co.links = map[string]*hostLink{}
}

// publishCoordGauges reflects the running aggregate stream totals into the
// coordinator's registry after each unit of work.
func publishCoordGauges(o *obs.Observer, agg *aggStats) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	for _, name := range agg.streams {
		ss := agg.s.Streams[name]
		if ss == nil {
			continue
		}
		reg.Gauge("coord.stream." + name + ".buffers").Set(ss.Buffers)
		reg.Gauge("coord.stream." + name + ".bytes").Set(ss.Bytes)
		reg.Gauge("coord.stream." + name + ".acks").Set(ss.Acks)
	}
}

// aggStats accumulates workers' stats fragments into a core.Stats.
type aggStats struct {
	s       *core.Stats
	streams []string
}

func newAggStats(spec GraphSpec) *aggStats {
	g := core.NewGraph()
	for _, f := range spec.Filters {
		g.AddFilter(f.Name, func() core.Filter { return nil })
	}
	for _, sp := range spec.Streams {
		g.Connect(sp.From, sp.To, sp.Name)
	}
	a := &aggStats{s: core.NewStats(g)}
	for _, sp := range spec.Streams {
		a.streams = append(a.streams, sp.Name)
	}
	return a
}

func (a *aggStats) merge(ws *wireStats) {
	if ws == nil {
		return
	}
	for stream, n := range ws.StreamBuffers {
		a.s.Streams[stream].Buffers += n
	}
	for stream, n := range ws.StreamBytes {
		a.s.Streams[stream].Bytes += n
	}
	for stream, n := range ws.StreamAcks {
		a.s.Streams[stream].Acks += n
	}
	for stream, per := range ws.PerTarget {
		for host, n := range per {
			a.s.Streams[stream].PerTargetHost[host] += n
		}
	}
	for filter, busy := range ws.FilterBusy {
		fs := a.s.Filters[filter]
		fs.BusySeconds = append(fs.BusySeconds, busy...)
		fs.Copies = len(fs.BusySeconds)
	}
}
