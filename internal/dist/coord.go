package dist

import (
	"fmt"
	"net"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/obs"
)

// Run executes a distributed session: it connects to the worker at each
// host's address, ships the graph spec and placement, drives the
// unit-of-work phases (init with buffer-size resolution, process,
// finalize), and aggregates the workers' statistics.
func Run(addrs map[string]string, spec GraphSpec, placement []PlacementEntry, opts Options, uows []any) (*core.Stats, error) {
	return RunObserved(addrs, spec, placement, opts, uows, nil)
}

// RunObserved is Run with coordinator-side observability attached: a
// "coord.uow_seconds" latency histogram plus per-stream buffer/byte/ack
// counters updated after each unit of work's stats merge. The observer is
// coordinator-local only — it is never serialized into Options, so workers
// attach their own via Worker.SetObserver. o may be nil (disabled).
func RunObserved(addrs map[string]string, spec GraphSpec, placement []PlacementEntry, opts Options, uows []any, o *obs.Observer) (*core.Stats, error) {
	if len(uows) == 0 {
		uows = []any{nil}
	}
	if opts.Policy != "" && core.PolicyByName(opts.Policy) == nil {
		return nil, fmt.Errorf("dist: unknown policy %q", opts.Policy)
	}
	for _, e := range placement {
		if _, ok := addrs[e.Host]; !ok {
			return nil, fmt.Errorf("dist: placement host %q has no worker address", e.Host)
		}
	}

	// Connect and set up every worker.
	ctrls := make(map[string]*conn, len(addrs))
	defer func() {
		for _, c := range ctrls {
			c.close()
		}
	}()
	for host, addr := range addrs {
		nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("dist: dialing worker %s (%s): %w", host, addr, err)
		}
		c := newConn(nc, nil)
		ctrls[host] = c
		if err := c.send(&frame{Kind: kindSetup, Setup: &setupMsg{
			Graph: spec, Placement: placement, Opts: opts, Addrs: addrs, Host: host,
		}}); err != nil {
			return nil, err
		}
	}
	for host, c := range ctrls {
		f, err := c.recv()
		if err != nil {
			return nil, fmt.Errorf("dist: worker %s setup: %w", host, err)
		}
		if f.Kind == kindFail {
			return nil, fmt.Errorf("dist: worker %s: %s", host, f.Err)
		}
		if f.Kind != kindSetupOK {
			return nil, fmt.Errorf("dist: worker %s: unexpected setup reply %d", host, f.Kind)
		}
	}

	stats := newAggStats(spec)
	var uowH *obs.Histogram
	if reg := o.Registry(); reg != nil {
		uowH = reg.Histogram("coord.uow_seconds")
	}
	start := time.Now()
	for i, work := range uows {
		t0 := time.Now()
		if err := runUOW(ctrls, i, work, opts, stats); err != nil {
			return stats.s, err
		}
		d := time.Since(t0).Seconds()
		stats.s.PerUOWSeconds = append(stats.s.PerUOWSeconds, d)
		uowH.Observe(d)
		publishCoordGauges(o, stats)
	}
	stats.s.WallSeconds = time.Since(start).Seconds()

	for _, c := range ctrls {
		_ = c.send(&frame{Kind: kindShutdown})
	}
	return stats.s, nil
}

func runUOW(ctrls map[string]*conn, idx int, work any, opts Options, agg *aggStats) error {
	var raw []byte
	if work != nil {
		var err error
		raw, err = encodeAny(work)
		if err != nil {
			return fmt.Errorf("dist: encoding unit of work: %w", err)
		}
	}

	// Phase 1: Init everywhere; gather and resolve buffer declarations.
	for _, c := range ctrls {
		if err := c.send(&frame{Kind: kindInitUOW, UOW: &uowMsg{Index: idx, Work: raw}}); err != nil {
			return err
		}
	}
	decls := map[string][2]int{}
	for host, c := range ctrls {
		f, err := c.recv()
		if err != nil {
			return fmt.Errorf("dist: worker %s init: %w", host, err)
		}
		if f.Kind == kindFail {
			return fmt.Errorf("dist: worker %s: %s", host, f.Err)
		}
		for stream, d := range f.Decls {
			cur := decls[stream]
			if d[0] > cur[0] {
				cur[0] = d[0]
			}
			if d[1] > 0 && (cur[1] == 0 || d[1] < cur[1]) {
				cur[1] = d[1]
			}
			decls[stream] = cur
		}
	}
	def := opts.BufferBytes
	if def <= 0 {
		def = 256 << 10
	}
	sizes := map[string]int{}
	for _, sp := range agg.streams {
		b := def
		d := decls[sp]
		if d[0] > 0 && b < d[0] {
			b = d[0]
		}
		if d[1] > 0 && b > d[1] {
			b = d[1]
		}
		sizes[sp] = b
	}

	// Phase 2: Process everywhere.
	for _, c := range ctrls {
		if err := c.send(&frame{Kind: kindBeginProcess, Sizes: sizes}); err != nil {
			return err
		}
	}
	for host, c := range ctrls {
		f, err := c.recv()
		if err != nil {
			return fmt.Errorf("dist: worker %s process: %w", host, err)
		}
		if f.Kind == kindFail {
			return fmt.Errorf("dist: worker %s: %s", host, f.Err)
		}
	}

	// Phase 3: Finalize everywhere; merge stats fragments.
	for _, c := range ctrls {
		if err := c.send(&frame{Kind: kindFinalize}); err != nil {
			return err
		}
	}
	for host, c := range ctrls {
		f, err := c.recv()
		if err != nil {
			return fmt.Errorf("dist: worker %s finalize: %w", host, err)
		}
		if f.Kind == kindFail {
			return fmt.Errorf("dist: worker %s: %s", host, f.Err)
		}
		agg.merge(f.Stats)
	}
	return nil
}

// publishCoordGauges reflects the running aggregate stream totals into the
// coordinator's registry after each unit of work.
func publishCoordGauges(o *obs.Observer, agg *aggStats) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	for _, name := range agg.streams {
		ss := agg.s.Streams[name]
		if ss == nil {
			continue
		}
		reg.Gauge("coord.stream." + name + ".buffers").Set(ss.Buffers)
		reg.Gauge("coord.stream." + name + ".bytes").Set(ss.Bytes)
		reg.Gauge("coord.stream." + name + ".acks").Set(ss.Acks)
	}
}

// aggStats accumulates workers' stats fragments into a core.Stats.
type aggStats struct {
	s       *core.Stats
	streams []string
}

func newAggStats(spec GraphSpec) *aggStats {
	g := core.NewGraph()
	for _, f := range spec.Filters {
		g.AddFilter(f.Name, func() core.Filter { return nil })
	}
	for _, sp := range spec.Streams {
		g.Connect(sp.From, sp.To, sp.Name)
	}
	a := &aggStats{s: core.NewStats(g)}
	for _, sp := range spec.Streams {
		a.streams = append(a.streams, sp.Name)
	}
	return a
}

func (a *aggStats) merge(ws *wireStats) {
	if ws == nil {
		return
	}
	for stream, n := range ws.StreamBuffers {
		a.s.Streams[stream].Buffers += n
	}
	for stream, n := range ws.StreamBytes {
		a.s.Streams[stream].Bytes += n
	}
	for stream, n := range ws.StreamAcks {
		a.s.Streams[stream].Acks += n
	}
	for stream, per := range ws.PerTarget {
		for host, n := range per {
			a.s.Streams[stream].PerTargetHost[host] += n
		}
	}
	for filter, busy := range ws.FilterBusy {
		fs := a.s.Filters[filter]
		fs.BusySeconds = append(fs.BusySeconds, busy...)
		fs.Copies = len(fs.BusySeconds)
	}
}
