package dist_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/faults"
	"datacutter/internal/geom"
	"datacutter/internal/isoviz"
	"datacutter/internal/leakcheck"
	"datacutter/internal/mcubes"
	"datacutter/internal/obs"
	"datacutter/internal/render"
	"datacutter/internal/volume"
)

// Chaos tests: deterministic fault injection (internal/faults) against the
// full detection → abort → replan → retry machinery. The CI chaos job runs
// exactly these (-run 'TestChaos') under the race detector and archives the
// coordinator metrics dumps on failure.

// startChaosWorkers is startWorkers with per-host fault plans installed
// before Serve (SetFaults must precede the first accepted connection).
func startChaosWorkers(t *testing.T, n int, plans map[string]string) (map[string]string, map[string]*dist.Worker) {
	t.Helper()
	addrs := make(map[string]string, n)
	workers := make(map[string]*dist.Worker, n)
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("host%d", i)
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if spec := plans[host]; spec != "" {
			plan, err := faults.ParsePlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			w.SetFaults(plan.Injector())
		}
		go w.Serve()
		addrs[host] = w.Addr()
		workers[host] = w
		t.Cleanup(w.Close)
	}
	return addrs, workers
}

// coordObserver builds a coordinator-side observer over a fresh registry and
// arranges for the registry to be dumped to $CHAOS_METRICS_DIR at cleanup
// (the CI chaos job archives that directory when the job fails).
func coordObserver(t *testing.T) (*obs.Observer, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	t.Cleanup(func() {
		dir := os.Getenv("CHAOS_METRICS_DIR")
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("chaos metrics dir: %v", err)
			return
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Logf("chaos metrics dump: %v", err)
			return
		}
		name := strings.ReplaceAll(t.Name(), "/", "_") + ".json"
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Logf("chaos metrics write: %v", err)
		}
	})
	return obs.New(nil, reg), reg
}

// chaosSuicideTarget is the worker the suicide source kills mid-write; set
// by the test before the run (builders are registered once in init).
var chaosSuicideTarget *dist.Worker

// suicideSource writes n ints on stream "b", killing chaosSuicideTarget
// after the second write. On a retried unit of work the target is already
// dead (Kill is idempotent), so the replanned copy completes the stream.
type suicideSource struct {
	core.BaseFilter
	n int
}

func (s *suicideSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if err := ctx.Write("b", core.Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
		if i == 1 && chaosSuicideTarget != nil {
			chaosSuicideTarget.Kill()
		}
	}
	return nil
}

// twoStreamSink drains stream "ints" fully, then stream "b".
type twoStreamSink struct {
	core.BaseFilter
	SumA, SumB, SeenB int
}

func (s *twoStreamSink) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read("ints")
		if !ok {
			break
		}
		s.SumA += b.Payload.(int)
	}
	for {
		b, ok := ctx.Read("b")
		if !ok {
			break
		}
		s.SeenB++
		s.SumB += b.Payload.(int)
	}
	return nil
}

func init() {
	dist.RegisterFilter("test.suicidesrc", func(params []byte) (core.Filter, error) {
		return &suicideSource{n: int(params[0])}, nil
	})
	dist.RegisterFilter("test.twosink", func([]byte) (core.Filter, error) {
		return &twoStreamSink{}, nil
	})
}

// TestChaosDeadHostDetectedWhileGatherWaitsElsewhere is the regression test
// for the liveness sweep: host2's only filter is a producer, so after it
// dies no survivor ever touches its sockets again (nothing writes to it,
// and its producer-done never arrives), while the sink host — gathered
// FIRST in sorted order — stays healthy, heartbeating, and blocked forever
// on the missing stream. Detection must come from sweeping host2's link
// while waiting on host0, not from the host currently being gathered.
func TestChaosDeadHostDetectedWhileGatherWaitsElsewhere(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startChaosWorkers(t, 3, nil)
	chaosSuicideTarget = workers["host2"]
	const n = 30
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S1", Kind: "test.source", Params: []byte{n}},
			{Name: "S2", Kind: "test.suicidesrc", Params: []byte{n}},
			{Name: "K", Kind: "test.twosink"},
		},
		Streams: []core.StreamSpec{
			{Name: "ints", From: "S1", To: "K"},
			{Name: "b", From: "S2", To: "K"},
		},
	}
	o, reg := coordObserver(t)
	done := make(chan error, 1)
	go func() {
		_, err := dist.RunObserved(addrs, g, []dist.PlacementEntry{
			{Filter: "K", Host: "host0", Copies: 1},
			{Filter: "S1", Host: "host1", Copies: 1},
			{Filter: "S2", Host: "host2", Copies: 1},
		}, dist.Options{
			MaxUOWRetries:     2,
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatMisses:   5,
		}, nil, o)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("coordinator never noticed the dead producer host: gather stuck on a healthy blocked host")
	}
	if err != nil {
		t.Fatalf("run did not recover from dead producer host: %v", err)
	}
	if v := reg.Counter("coord.hosts_lost").Value(); v < 1 {
		t.Fatalf("coord.hosts_lost = %d, want >= 1", v)
	}
	if v := reg.Counter("coord.uow_retries").Value(); v < 1 {
		t.Fatalf("coord.uow_retries = %d, want >= 1", v)
	}
	sink := workers["host0"].Instances("K")[0].(*twoStreamSink)
	if sink.SeenB != n || sink.SumB != n*(n-1)/2 || sink.SumA != n*(n-1)/2 {
		t.Fatalf("sink state after recovery: %+v", sink)
	}
}

// TestChaosKillMidUOWRecovers is the acceptance scenario: a seeded kill
// directive crashes a worker mid-unit-of-work (hard-closed sockets, no
// farewell), the coordinator detects it, aborts the survivors, replans the
// dead host's filter copies onto a survivor already running that filter, and
// the retried unit of work renders the byte-identical isosurface image.
func TestChaosKillMidUOWRecovers(t *testing.T) {
	leakcheck.Check(t)
	p := isoviz.FieldREParams{Seed: 17, Plumes: 4, GX: 33, GY: 33, GZ: 33, BX: 3, BY: 3, BZ: 3}
	view := isoviz.View{Timestep: 1, Iso: 0.35, Width: 96, Height: 96, Camera: geom.DefaultCamera()}

	// Fault-free reference render, same chunked source.
	src := isoviz.NewFieldSource(volume.NewPlumeField(p.Seed, p.Plumes), p.GX, p.GY, p.GZ, p.BX, p.BY, p.BZ)
	want := render.NewZBuffer(view.Width, view.Height)
	rr := render.NewRaster(view.Camera, view.Width, view.Height)
	for i := 0; i < src.Chunks(); i++ {
		v, err := src.Load(i, view.Timestep)
		if err != nil {
			t.Fatal(err)
		}
		mcubes.Walk(v, view.Iso, func(tr geom.Triangle) { rr.Draw(tr, want) })
	}

	// host1 (raster copies only) dies after receiving its 5th data frame.
	addrs, workers := startChaosWorkers(t, 3, map[string]string{
		"host1": "kill=data:5",
	})
	spec, err := isoviz.DistGraphField(p, isoviz.ZBuffer)
	if err != nil {
		t.Fatal(err)
	}
	o, reg := coordObserver(t)
	_, err = dist.RunObserved(addrs, spec, []dist.PlacementEntry{
		{Filter: "RE", Host: "host0", Copies: 2},
		{Filter: "Ra", Host: "host1", Copies: 2},
		{Filter: "Ra", Host: "host2", Copies: 1},
		{Filter: "M", Host: "host2", Copies: 1},
	}, dist.Options{
		Policy:            "DD",
		MaxUOWRetries:     2,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   5,
	}, []any{view}, o)
	if err != nil {
		t.Fatalf("run did not recover from worker kill: %v", err)
	}
	m, err := isoviz.MergeResult(workers["host2"].Instances("M"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Result() == nil || !m.Result().Equal(want) {
		t.Fatal("recovered render differs from fault-free reference")
	}
	if n := reg.Counter("coord.uow_retries").Value(); n < 1 {
		t.Fatalf("coord.uow_retries = %d, want >= 1", n)
	}
	if n := reg.Counter("coord.hosts_lost").Value(); n < 1 {
		t.Fatalf("coord.hosts_lost = %d, want >= 1", n)
	}
}

// TestChaosWedgeDetectedByHeartbeats freezes (rather than crashes) a worker:
// its sockets stay open but heartbeats and frame handling stall, the failure
// mode only liveness tracking can see. The coordinator must miss heartbeats,
// declare the host dead, and finish the work on the replanned survivors.
func TestChaosWedgeDetectedByHeartbeats(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startChaosWorkers(t, 3, map[string]string{
		"host1": "wedge=data:3:1500ms",
	})
	const n = 200
	o, reg := coordObserver(t)
	_, err := dist.RunObserved(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
		{Filter: "K", Host: "host2", Copies: 1},
	}, dist.Options{
		MaxUOWRetries:     2,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   4,
	}, nil, o)
	if err != nil {
		t.Fatalf("run did not recover from wedged worker: %v", err)
	}
	if misses := reg.Counter("dist.heartbeat_misses").Value(); misses == 0 {
		t.Fatal("dist.heartbeat_misses = 0: wedge was not detected via liveness")
	}
	if retries := reg.Counter("coord.uow_retries").Value(); retries < 1 {
		t.Fatalf("coord.uow_retries = %d, want >= 1", retries)
	}
	// host1's copy was replanned onto host2 (the surviving K host); the
	// retried unit of work must have delivered everything there.
	seen, sum := 0, 0
	for _, inst := range workers["host2"].Instances("K") {
		k := inst.(*intSink)
		seen += k.Seen
		sum += k.Sum
	}
	if seen != n || sum != n*(n-1)/2 {
		t.Fatalf("replanned sinks saw %d (sum %d), want %d (sum %d)", seen, sum, n, n*(n-1)/2)
	}
}

// TestChaosDialRetry injects dial failures on the coordinator side: the
// shared dialRetry path must back off, count redials, and connect once the
// injected failures are spent.
func TestChaosDialRetry(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startChaosWorkers(t, 2, nil)
	plan, err := faults.ParsePlan("faildial=2")
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	o, reg := coordObserver(t)
	_, err = dist.RunObserved(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{DialAttempts: 4}.WithFaults(plan.Injector()), nil, o)
	if err != nil {
		t.Fatalf("run did not survive injected dial failures: %v", err)
	}
	if redials := reg.Counter("dist.redials").Value(); redials < 2 {
		t.Fatalf("dist.redials = %d, want >= 2", redials)
	}
	sink := workers["host1"].Instances("K")[0].(*intSink)
	if sink.Seen != n {
		t.Fatalf("sink saw %d, want %d", sink.Seen, n)
	}
}

// TestChaosDropFrame drops exactly the 5th data frame sent on the "ints"
// stream: the run completes (frame loss is not a transport error) and the
// sink is short by precisely that frame's payload.
func TestChaosDropFrame(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startChaosWorkers(t, 2, map[string]string{
		"host0": "drop=ints:5",
	})
	const n = 40
	_, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := workers["host1"].Instances("K")[0].(*intSink)
	// The 5th frame sent carries payload 4.
	if sink.Seen != n-1 || sink.Sum != n*(n-1)/2-4 {
		t.Fatalf("sink saw %d (sum %d), want %d (sum %d)", sink.Seen, sink.Sum, n-1, n*(n-1)/2-4)
	}
}

// TestChaosDupAndDelayFrame duplicates the 5th data frame and delays the
// 10th; with a single producer and a single consumer the send sequence is
// deterministic, so the surplus is exactly the duplicated payload.
func TestChaosDupAndDelayFrame(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startChaosWorkers(t, 2, map[string]string{
		"host0": "dup=ints:5; delay=ints:10:50ms",
	})
	const n = 40
	_, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := workers["host1"].Instances("K")[0].(*intSink)
	if sink.Seen != n+1 || sink.Sum != n*(n-1)/2+4 {
		t.Fatalf("sink saw %d (sum %d), want %d (sum %d)", sink.Seen, sink.Sum, n+1, n*(n-1)/2+4)
	}
}
