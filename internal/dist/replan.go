package dist

import (
	"datacutter/internal/elastic"
)

// replanPlacement rebuilds a placement after the hosts in dead are declared
// lost. The algorithm lives in internal/elastic (ReplanDead) because fault
// replanning and elastic scaling are the same placement mutation —
// transparent-copy semantics make both legal: a filter's copies are
// interchangeable, so copies stranded on a dead host are re-created on
// survivors (preferentially on hosts already running the filter, otherwise
// round-robin), entries for the same (filter, host) pair are merged, the
// input is not mutated, and ordering is deterministic (first-appearance
// order), so a retry with the same dead set always produces the same plan.
func replanPlacement(placement []PlacementEntry, dead map[string]bool) ([]PlacementEntry, error) {
	in := make([]elastic.Entry, len(placement))
	for i, pe := range placement {
		in[i] = elastic.Entry{Filter: pe.Filter, Host: pe.Host, Copies: pe.Copies}
	}
	out, err := elastic.ReplanDead(in, dead)
	if err != nil {
		return nil, err
	}
	res := make([]PlacementEntry, len(out))
	for i, e := range out {
		res[i] = PlacementEntry{Filter: e.Filter, Host: e.Host, Copies: e.Copies}
	}
	return res, nil
}
