package dist

import (
	"fmt"
	"strings"
)

// replanPlacement rebuilds a placement after the hosts in dead are declared
// lost. Transparent-copy semantics make this legal: a filter's copies are
// interchangeable, so copies stranded on a dead host are re-created on
// survivors — preferentially on hosts that already run copies of the same
// filter (warm code paths, and WRR weights rescale naturally because the
// per-host copy counts grow), otherwise round-robin across all survivors.
// Entries for the same (filter, host) pair are merged. The input is not
// mutated; ordering is deterministic (first-appearance order), so a retry
// with the same dead set always produces the same plan.
func replanPlacement(placement []PlacementEntry, dead map[string]bool) ([]PlacementEntry, error) {
	// Survivor hosts in first-appearance order.
	var survivors []string
	seen := map[string]bool{}
	for _, pe := range placement {
		if !dead[pe.Host] && !seen[pe.Host] {
			seen[pe.Host] = true
			survivors = append(survivors, pe.Host)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("dist: no surviving hosts (lost: %s)", deadList(dead))
	}

	// Filters in first-appearance order, with their surviving and lost
	// entries partitioned.
	type filterPlan struct {
		name     string
		hosts    []string       // surviving hosts already running this filter
		copies   map[string]int // surviving host -> copies
		orphaned int            // copies stranded on dead hosts
	}
	var order []*filterPlan
	byName := map[string]*filterPlan{}
	for _, pe := range placement {
		fp := byName[pe.Filter]
		if fp == nil {
			fp = &filterPlan{name: pe.Filter, copies: map[string]int{}}
			byName[pe.Filter] = fp
			order = append(order, fp)
		}
		if dead[pe.Host] {
			fp.orphaned += pe.Copies
			continue
		}
		if _, ok := fp.copies[pe.Host]; !ok {
			fp.hosts = append(fp.hosts, pe.Host)
		}
		fp.copies[pe.Host] += pe.Copies
	}

	out := make([]PlacementEntry, 0, len(placement))
	for _, fp := range order {
		targets := fp.hosts
		if len(targets) == 0 {
			targets = survivors
			for _, h := range targets {
				fp.copies[h] = 0
			}
			fp.hosts = targets
		}
		for i := 0; i < fp.orphaned; i++ {
			fp.copies[targets[i%len(targets)]]++
		}
		for _, h := range fp.hosts {
			if n := fp.copies[h]; n > 0 {
				out = append(out, PlacementEntry{Filter: fp.name, Host: h, Copies: n})
			}
		}
	}
	return out, nil
}

func deadList(dead map[string]bool) string {
	var names []string
	for h := range dead {
		names = append(names, h)
	}
	// Deterministic message: insertion order of a map range is not, so sort.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
