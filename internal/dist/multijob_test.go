package dist_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/leakcheck"
)

// gateCh blocks test.gate sinks until the test releases them; reset per
// test (builders are registered once in init).
var (
	gateMu sync.Mutex
	gateCh chan struct{}
)

func setGate() chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	gateCh = make(chan struct{})
	return gateCh
}

type gateSink struct {
	core.BaseFilter
	Seen int
}

func (s *gateSink) Process(ctx core.Ctx) error {
	gateMu.Lock()
	ch := gateCh
	gateMu.Unlock()
	for {
		b, ok := ctx.Read("ints")
		if !ok {
			return nil
		}
		_ = b
		if s.Seen == 0 && ch != nil {
			<-ch
		}
		s.Seen++
	}
}

func init() {
	dist.RegisterFilter("test.gate", func([]byte) (core.Filter, error) { return &gateSink{}, nil })
}

// Two coordinators with distinct job ids share the same two persistent
// workers concurrently; both runs must complete with their own exact
// delivery counts and per-job sink instances.
func TestConcurrentJobsShareWorkerMesh(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)
	placement := []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}
	counts := map[uint64]int{1: 120, 2: 75}

	type result struct {
		job uint64
		st  *core.Stats
		err error
	}
	results := make(chan result, len(counts))
	for job, n := range counts {
		go func(job uint64, n int) {
			st, err := dist.Run(addrs, intGraph(n), placement,
				dist.Options{JobID: job}, []any{0, 1})
			results <- result{job, st, err}
		}(job, n)
	}
	for range counts {
		r := <-results
		if r.err != nil {
			t.Fatalf("job %d: %v", r.job, r.err)
		}
		want := int64(2 * counts[r.job]) // 2 UOWs
		if got := r.st.Streams["ints"].Buffers; got != want {
			t.Errorf("job %d stats: %d buffers, want %d", r.job, got, want)
		}
	}
	// Per-job sink retrieval: each job's session kept its own instances.
	for job, n := range counts {
		insts := workers["host1"].InstancesJob(job, "K")
		if len(insts) != 1 {
			t.Fatalf("job %d: %d sink instances, want 1", job, len(insts))
		}
		if got := insts[0].(*intSink).Seen; got != 2*n {
			t.Errorf("job %d sink saw %d buffers, want %d", job, got, 2*n)
		}
	}
}

// The same job id cannot run twice at once on a worker: the second setup is
// refused (busy), exactly like the pre-job single-session protocol.
func TestSameJobIDRefusedWhileActive(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	gate := setGate()
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.source", Params: []byte{20}},
			{Name: "K", Kind: "test.gate"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "K"}},
	}
	placement := []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}
	done := make(chan error, 1)
	go func() {
		_, err := dist.Run(addrs, g, placement, dist.Options{JobID: 7}, nil)
		done <- err
	}()
	// The gated sink holds job 7's session open; a competitor with the same
	// id must be refused. Options tuned so the busy-retry loop gives up fast.
	time.Sleep(50 * time.Millisecond)
	_, err := dist.Run(addrs, intGraph(5), placement, dist.Options{
		JobID:             7,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   1,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("concurrent setup for the same job id: err = %v, want busy refusal", err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("gated run failed: %v", err)
	}
}

// Drain refuses new sessions while letting the in-flight one finish.
func TestWorkerDrain(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 1)
	w := workers["host0"]

	// Idle worker: drain completes immediately.
	if !w.Drain(time.Second) {
		t.Fatal("idle worker did not drain")
	}

	// A draining worker refuses setups outright (no busy-retry).
	_, err := dist.Run(addrs, intGraph(5), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}, dist.Options{JobID: 3}, nil)
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("setup on a draining worker: err = %v, want draining refusal", err)
	}
}

// Drain waits for the in-flight session and reports success once it ends,
// or failure when the timeout elapses first.
func TestWorkerDrainWaitsForActiveSession(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 1)
	w := workers["host0"]
	gate := setGate()
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.source", Params: []byte{10}},
			{Name: "K", Kind: "test.gate"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "K"}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := dist.Run(addrs, g, []dist.PlacementEntry{
			{Filter: "S", Host: "host0", Copies: 1},
			{Filter: "K", Host: "host0", Copies: 1},
		}, dist.Options{JobID: 9}, nil)
		done <- err
	}()
	// Wait until the session is actually live on the worker.
	for len(w.InstancesJob(9, "K")) == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	if w.Drain(20 * time.Millisecond) {
		t.Fatal("drain reported idle while a session was gated open")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("gated run failed: %v", err)
	}
	if !w.Drain(5 * time.Second) {
		t.Fatal("drain did not complete after the session ended")
	}
}
