package dist_test

import (
	"fmt"
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/dist"
)

// Loopback two-worker throughput: a float source on host0 streams batches
// to a sink on host1 over real TCP connections. The "codec" variant ships
// []float32 through the registered fast path; "gob" wraps the same batch in
// an unregistered struct so every buffer takes the fallback — the wire cost
// profile of the protocol this PR replaced.

const (
	benchBatches   = 256
	benchBatchLen  = 4096 // float32s per batch (16 KiB)
	benchBatchSize = benchBatchLen * 4
)

// gobBatch has no registered codec, forcing the gob fallback.
type gobBatch struct{ Vals []float32 }

type floatSource struct {
	core.BaseFilter
	wrap bool // ship gobBatch instead of []float32
}

func (s *floatSource) Process(ctx core.Ctx) error {
	vals := make([]float32, benchBatchLen)
	for i := range vals {
		vals[i] = float32(i)
	}
	for i := 0; i < benchBatches; i++ {
		var payload any = vals
		if s.wrap {
			payload = gobBatch{Vals: vals}
		}
		if err := ctx.Write("floats", core.Buffer{Payload: payload, Size: benchBatchSize}); err != nil {
			return err
		}
	}
	return nil
}

type floatSink struct {
	core.BaseFilter
	Seen int
}

func (s *floatSink) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read("floats")
		if !ok {
			return nil
		}
		var n int
		switch v := b.Payload.(type) {
		case []float32:
			n = len(v)
		case gobBatch:
			n = len(v.Vals)
		}
		if n != benchBatchLen {
			return fmt.Errorf("bench sink: batch of %d floats", n)
		}
		s.Seen++
	}
}

func init() {
	dist.RegisterPayload(gobBatch{})
	dist.RegisterFilter("bench.fsrc", func(params []byte) (core.Filter, error) {
		return &floatSource{wrap: len(params) > 0 && params[0] == 1}, nil
	})
	dist.RegisterFilter("bench.fsink", func([]byte) (core.Filter, error) { return &floatSink{}, nil })
}

func benchGraph(wrap bool) dist.GraphSpec {
	var params []byte
	if wrap {
		params = []byte{1}
	}
	return dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "bench.fsrc", Params: params},
			{Name: "K", Kind: "bench.fsink"},
		},
		Streams: []core.StreamSpec{{Name: "floats", From: "S", To: "K"}},
	}
}

func benchWorkers(b *testing.B, n int) map[string]string {
	b.Helper()
	addrs := make(map[string]string, n)
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go w.Serve()
		addrs[fmt.Sprintf("host%d", i)] = w.Addr()
		b.Cleanup(w.Close)
	}
	return addrs
}

func BenchmarkDistThroughput(b *testing.B) {
	placement := []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}
	for _, tc := range []struct {
		name      string
		wrap      bool
		transport string
	}{
		{"codec", false, ""},
		{"gob", true, ""},
		// Same pipeline, same-host ring transport: frames move by reference
		// over in-process SPSC rings — no codec, no syscalls.
		{"codec-ring", false, dist.TransportRing},
	} {
		b.Run(tc.name, func(b *testing.B) {
			addrs := benchWorkers(b, 2)
			graph := benchGraph(tc.wrap)
			opts := dist.Options{Transport: tc.transport}
			b.ReportAllocs()
			b.SetBytes(benchBatches * benchBatchSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dist.Run(addrs, graph, placement, opts, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
