package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"datacutter/internal/faults"
	"datacutter/internal/obs"
)

// Wire format (full layout diagram in DESIGN.md, "Wire protocol"):
//
//	wire frame := u32 length | u8 kind | body     (length = 1 + len(body))
//
// The data/ack/producer-done plane — the per-buffer hot path — uses
// hand-rolled little-endian bodies. Every body leads with the job id the
// frame belongs to, so one worker's inbound connections can interleave
// frames from many concurrent jobs and demux them to the right session:
//
//	data := u64 job | u32 uow | u16 slen | stream | u32 target | u32 copy |
//	        u32 ackN | u32 size | u16 codec | u32 plen | payload
//	ack  := u64 job | u32 uow | u16 slen | stream | u32 target | u32 copy |
//	        u32 ackN
//	done := u64 job | u32 uow | u16 slen | stream
//	hello := (empty)
//
// Everything else (setup, unit-of-work, declarations, stats, failures) is
// control traffic — rare, per-session or per-UOW — and keeps a gob-encoded
// frame struct as its body, one self-contained gob stream per frame.

// maxFrameLen bounds a frame's length prefix; anything larger is a corrupt
// or hostile stream and fails the connection before large allocations.
const maxFrameLen = 256 << 20

// errFrameTooLarge is returned for length prefixes outside (0, maxFrameLen].
var errFrameTooLarge = fmt.Errorf("dist: frame length prefix exceeds %d bytes", maxFrameLen)

// defaultWireBuf is the per-connection write-coalescing buffer size.
const defaultWireBuf = 64 << 10

var wireBufMu sync.RWMutex
var wireBufBytes = defaultWireBuf

// SetWireBufferSize sets the per-connection write buffer used to coalesce
// frames into batched syscalls (default 64 KiB). It applies to connections
// opened afterwards; call it before workers or coordinators start.
func SetWireBufferSize(n int) {
	if n < 4<<10 {
		n = 4 << 10
	}
	wireBufMu.Lock()
	wireBufBytes = n
	wireBufMu.Unlock()
}

func wireBufSize() int {
	wireBufMu.RLock()
	defer wireBufMu.RUnlock()
	return wireBufBytes
}

// ---- Pooled wire buffers ----

// wirePool recycles frame encode/decode buffers. Oversized buffers (above
// maxPooledBuf) are dropped rather than pinned in the pool.
var wirePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const maxPooledBuf = 4 << 20

func getWireBuf() *[]byte { return wirePool.Get().(*[]byte) }

func putWireBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	wirePool.Put(b)
}

// release returns a received frame's pooled wire buffer (no-op when the
// frame does not own one, or after the first call).
func (f *frame) release() {
	if f.rel != nil {
		f.rel()
		f.rel = nil
	}
}

// ---- Frame encode ----

// appendFrame serializes f (kind byte + body, no length prefix) onto dst.
// For data frames carrying a payload value, the payload is encoded through
// the codec registry; pre-encoded payload bytes (re-framing a received
// frame) are copied verbatim with their codec id.
func appendFrame(dst []byte, f *frame) ([]byte, error) {
	dst = append(dst, byte(f.Kind))
	switch f.Kind {
	case kindData:
		dst = appendU64(dst, f.Job)
		dst = appendU32(dst, f.UOWIdx)
		var err error
		dst, err = appendStream(dst, f.Stream)
		if err != nil {
			return nil, err
		}
		dst = appendU32(dst, f.Target)
		dst = appendU32(dst, f.Copy)
		dst = appendU32(dst, f.AckN)
		dst = appendU32(dst, f.Size)
		if f.hasPayloadVal {
			var id uint16
			idAt := len(dst)
			dst = append(dst, 0, 0, 0, 0, 0, 0) // codec id + payload length
			dst, id, err = appendPayload(dst, f.payloadVal)
			if err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint16(dst[idAt:], id)
			binary.LittleEndian.PutUint32(dst[idAt+2:], uint32(len(dst)-idAt-6))
		} else {
			dst = binary.LittleEndian.AppendUint16(dst, f.Codec)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
			dst = append(dst, f.Payload...)
		}
	case kindAck:
		dst = appendU64(dst, f.Job)
		dst = appendU32(dst, f.UOWIdx)
		var err error
		dst, err = appendStream(dst, f.Stream)
		if err != nil {
			return nil, err
		}
		dst = appendU32(dst, f.Target)
		dst = appendU32(dst, f.Copy)
		dst = appendU32(dst, f.AckN)
	case kindProducerDone:
		dst = appendU64(dst, f.Job)
		dst = appendU32(dst, f.UOWIdx)
		var err error
		dst, err = appendStream(dst, f.Stream)
		if err != nil {
			return nil, err
		}
	case kindHello, kindHeartbeat:
		// empty body
	default:
		var bb bytes.Buffer
		if err := gob.NewEncoder(&bb).Encode(f); err != nil {
			return nil, fmt.Errorf("dist: encoding %v control frame: %w", f.Kind, err)
		}
		dst = append(dst, bb.Bytes()...)
	}
	return dst, nil
}

func appendU32(dst []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendStream(dst []byte, s string) ([]byte, error) {
	if len(s) > 1<<16-1 {
		return nil, fmt.Errorf("dist: stream name %.32q… exceeds 65535 bytes", s)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// ---- Frame decode ----

// frameReader decodes kind-prefixed frame bodies. names interns stream
// names so steady-state data frames decode without string allocations; it
// is not synchronized — each connection direction has a single reader.
type frameReader struct {
	buf   []byte
	names map[string]string
}

var errShortFrame = fmt.Errorf("dist: truncated frame")

// errTrailingBytes rejects binary-plane frames whose body is longer than
// the fields account for: every accepted frame re-encodes byte-identically.
var errTrailingBytes = fmt.Errorf("dist: frame has trailing bytes")

// decodeFrame parses one frame body (kind byte + body, as produced by
// appendFrame). Data-frame payloads alias buf.
func (r *frameReader) decodeFrame(buf []byte) (*frame, error) {
	if len(buf) < 1 {
		return nil, errShortFrame
	}
	f := &frame{Kind: frameKind(buf[0])}
	b := buf[1:]
	var err error
	switch f.Kind {
	case kindData:
		if f.Job, b, err = readU64(b); err != nil {
			return nil, err
		}
		if f.UOWIdx, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.Stream, b, err = r.readStream(b); err != nil {
			return nil, err
		}
		if f.Target, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.Copy, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.AckN, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.Size, b, err = readU32(b); err != nil {
			return nil, err
		}
		if len(b) < 6 {
			return nil, errShortFrame
		}
		f.Codec = binary.LittleEndian.Uint16(b)
		plen := int(binary.LittleEndian.Uint32(b[2:]))
		b = b[6:]
		if plen != len(b) {
			return nil, fmt.Errorf("dist: data frame payload length %d, have %d bytes", plen, len(b))
		}
		f.Payload = b
	case kindAck:
		if f.Job, b, err = readU64(b); err != nil {
			return nil, err
		}
		if f.UOWIdx, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.Stream, b, err = r.readStream(b); err != nil {
			return nil, err
		}
		if f.Target, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.Copy, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.AckN, b, err = readU32(b); err != nil {
			return nil, err
		}
		if len(b) != 0 {
			return nil, errTrailingBytes
		}
	case kindProducerDone:
		if f.Job, b, err = readU64(b); err != nil {
			return nil, err
		}
		if f.UOWIdx, b, err = readU32(b); err != nil {
			return nil, err
		}
		if f.Stream, b, err = r.readStream(b); err != nil {
			return nil, err
		}
		if len(b) != 0 {
			return nil, errTrailingBytes
		}
	case kindHello, kindHeartbeat:
		if len(b) != 0 {
			return nil, errTrailingBytes
		}
	case kindSetup, kindSetupOK, kindInitUOW, kindDecls, kindBeginProcess,
		kindProcessDone, kindFinalize, kindFinalizeDone, kindShutdown, kindFail,
		kindAbort, kindAbortDone, kindShutdownDone:
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(f); err != nil {
			return nil, fmt.Errorf("dist: decoding control frame: %w", err)
		}
		f.Kind = frameKind(buf[0]) // outer kind byte is authoritative
	default:
		return nil, fmt.Errorf("dist: unknown frame kind %d", buf[0])
	}
	return f, nil
}

func readU32(b []byte) (int, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errShortFrame
	}
	return int(binary.LittleEndian.Uint32(b)), b[4:], nil
}

func readU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errShortFrame
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func (r *frameReader) readStream(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errShortFrame
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, errShortFrame
	}
	raw := b[:n]
	if s, ok := r.names[string(raw)]; ok { // no-alloc map probe
		return s, b[n:], nil
	}
	s := string(raw)
	if r.names == nil {
		r.names = make(map[string]string, 8)
	}
	r.names[s] = s
	return s, b[n:], nil
}

// readWireFrame reads one length-prefixed frame from rd into a pooled
// buffer and decodes it. The returned cleanup recycles the buffer and is
// non-nil exactly when the frame (or its payload) may alias it. The body is
// read in bounded chunks so a hostile length prefix cannot force a large
// allocation ahead of actual stream contents.
func (r *frameReader) readWireFrame(rd io.Reader) (*frame, func(), error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n <= 0 || n > maxFrameLen {
		return nil, nil, errFrameTooLarge
	}
	bp := getWireBuf()
	buf := *bp
	const chunk = 1 << 20
	for len(buf) < n {
		next := len(buf) + chunk
		if next > n {
			next = n
		}
		if cap(buf) < next {
			grown := make([]byte, len(buf), next)
			copy(grown, buf)
			buf = grown
		}
		if _, err := io.ReadFull(rd, buf[len(buf):next]); err != nil {
			*bp = buf[:0]
			putWireBuf(bp)
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, nil, err
		}
		buf = buf[:next]
	}
	*bp = buf
	f, err := r.decodeFrame(buf)
	if err != nil {
		putWireBuf(bp)
		return nil, nil, err
	}
	if f.Kind == kindData {
		// Payload aliases the pooled buffer; hand ownership to the frame.
		rel := func() { putWireBuf(bp) }
		f.rel = rel
		return f, rel, nil
	}
	putWireBuf(bp)
	return f, nil, nil
}

// ---- Batched connection ----

// connMetrics are the optional tx-side instrumentation hooks of a conn.
type connMetrics struct {
	flushes        *obs.Counter   // dist.tx.flushes
	framesPerFlush *obs.Histogram // dist.tx.frames_per_flush
	frameBytes     *obs.Histogram // dist.tx.frame_bytes
	writevCalls    *obs.Counter   // dist.tx.writev_calls
	writevIovecs   *obs.Histogram // dist.tx.writev_iovecs (segments per vectored write)
	writevBytes    *obs.Counter   // dist.tx.writev_bytes
}

// smallFrameMax is the cutoff below which a frame's bytes are coalesced
// into a shared slab segment: for tiny acks and producer-done markers the
// memcpy is cheaper than burning an iovec (and, on partial writes, a
// retried syscall) per frame. Anything larger keeps its own pooled
// encode buffer and goes to the socket as its own iovec — zero intermediate
// copies between codec output and kernel.
const smallFrameMax = 2 << 10

// errConnClosed is the sticky write error after close/abort: frames sent to
// a torn-down connection fail deterministically instead of queueing into a
// writer that will never run again.
var errConnClosed = fmt.Errorf("dist: connection closed")

// conn wraps a TCP connection with length-prefixed framing, a vectored
// batch writer drained by a per-connection flusher goroutine, and an
// interning frame reader. Senders encode frames into pooled buffers outside
// any lock, then queue the finished segments under mu; the flusher hands
// the whole batch to writev (net.Buffers) in one syscall — large payload
// buffers travel from codec output to kernel with no intermediate memcpy,
// while bursts of small frames ride a shared slab segment. A batch-size cap
// (pendMax) blocks senders when the socket falls behind, standing in for
// the old bufio backpressure.
type conn struct {
	c  net.Conn
	br *bufio.Reader
	r  frameReader

	mu        sync.Mutex
	cond      *sync.Cond // signaled when pend drains or the conn fails
	pend      []*[]byte  // complete wire bytes (hdr+body), send order
	slab      *[]byte    // tail segment of pend accepting small frames; nil = none
	pendBytes int
	nSince    int // frames queued since the last flush
	werr      error

	// wmu serializes flushes: steal-order == write-order even when close()
	// races the flusher goroutine.
	wmu sync.Mutex

	slabCap int
	pendMax int

	kick chan struct{}
	stop chan struct{}
	once sync.Once

	m *connMetrics

	// fi is the process's fault injector; nil (the default) costs one
	// pointer comparison per send/recv. onClose fires once, from whichever
	// of close/abort runs first — workers use it to prune conn tracking.
	fi      *faults.Injector
	onClose func()
}

func newConn(c net.Conn, m *connMetrics) *conn {
	// The batch writer already coalesces small frames application-side, so
	// Nagle's algorithm on top would only delay flushed batches behind
	// unacknowledged data (adding RTT-scale latency to ack and end-of-work
	// markers). Disable it deliberately — this makes Go's default explicit
	// and keeps the batching policy in one place.
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	cn := &conn{
		c:       c,
		br:      bufio.NewReaderSize(c, wireBufSize()),
		slabCap: wireBufSize(),
		pendMax: 4 * wireBufSize(),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		m:       m,
	}
	cn.cond = sync.NewCond(&cn.mu)
	go cn.flusher()
	return cn
}

// queueLocked appends one frame's wire bytes (hdr+body) to the pending
// batch. Callers hold mu. When owned is non-nil the callee may keep the
// pooled buffer as its own segment; owned == nil (duplicate deliveries from
// fault injection) forces a copy.
func (c *conn) queueLocked(buf []byte, owned *[]byte) {
	if len(buf) <= smallFrameMax {
		if c.slab == nil || len(*c.slab)+len(buf) > c.slabCap {
			sp := getWireBuf()
			c.pend = append(c.pend, sp)
			c.slab = sp
		}
		*c.slab = append(*c.slab, buf...)
		if owned != nil {
			putWireBuf(owned)
		}
	} else if owned != nil {
		c.pend = append(c.pend, owned)
		c.slab = nil // keep send order: later small frames need a fresh tail
	} else {
		sp := getWireBuf()
		*sp = append((*sp)[:0], buf...)
		c.pend = append(c.pend, sp)
		c.slab = nil
	}
	c.pendBytes += len(buf)
	c.nSince++
}

// stealLocked takes the pending batch for a flush. Callers hold mu.
func (c *conn) stealLocked() (segs []*[]byte, frames int) {
	segs, frames = c.pend, c.nSince
	c.pend, c.slab, c.pendBytes, c.nSince = nil, nil, 0, 0
	// Senders blocked on the pendMax cap can refill while the batch is on
	// its way to the socket.
	c.cond.Broadcast()
	return segs, frames
}

// flushPend writes the pending batch as one vectored syscall. wmu (held
// across steal+write) keeps concurrent callers — the flusher goroutine and
// close() — from reordering batches.
func (c *conn) flushPend() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.mu.Lock()
	segs, frames := c.stealLocked()
	err := c.werr
	c.mu.Unlock()
	if len(segs) == 0 {
		return
	}
	if err == nil {
		bufs := make(net.Buffers, len(segs))
		total := 0
		for i, sp := range segs {
			bufs[i] = *sp
			total += len(*sp)
		}
		iovecs := len(bufs)
		// net.Buffers.WriteTo is writev on platforms that have it (Go
		// splits batches beyond IOV_MAX internally); one call per flush.
		_, err = bufs.WriteTo(c.c)
		if c.m != nil {
			c.m.flushes.Inc()
			c.m.framesPerFlush.Observe(float64(frames))
			c.m.writevCalls.Inc()
			c.m.writevIovecs.Observe(float64(iovecs))
			c.m.writevBytes.Add(int64(total))
		}
		if err != nil {
			c.mu.Lock()
			if c.werr == nil {
				c.werr = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
	for _, sp := range segs {
		putWireBuf(sp)
	}
}

// close tears the connection down and stops its flusher (idempotent). A
// best-effort bounded flush drains frames queued moments ago — a final
// kindShutdown or kindAbortDone must not die in the pending batch when the
// caller closes immediately after send. The write deadline is armed before
// the flush and fails any in-flight writev too, so close never blocks on a
// stuck peer beyond the bound (the old buffered writer could deadlock here:
// close waited on the write lock while the flusher held it inside a syscall
// that only the not-yet-set deadline could interrupt).
func (c *conn) close() {
	c.once.Do(func() {
		close(c.stop)
		_ = c.c.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
		c.flushPend()
		c.mu.Lock()
		if c.werr == nil {
			c.werr = errConnClosed
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		if c.onClose != nil {
			c.onClose()
		}
	})
	c.c.Close()
}

// abort hard-closes the connection without draining the pending batch —
// crash simulation and dead-host teardown, where queued frames must be
// lost the way a real process death would lose them.
func (c *conn) abort() {
	c.once.Do(func() {
		close(c.stop)
		c.mu.Lock()
		segs, _ := c.stealLocked()
		if c.werr == nil {
			c.werr = errConnClosed
		}
		c.mu.Unlock()
		for _, sp := range segs {
			putWireBuf(sp)
		}
		if c.onClose != nil {
			c.onClose()
		}
	})
	c.c.Close()
}

// setReadDeadline arms (d > 0) or clears (d <= 0) the read deadline on the
// underlying socket for the next recv.
func (c *conn) setReadDeadline(d time.Duration) {
	if d <= 0 {
		_ = c.c.SetReadDeadline(time.Time{})
		return
	}
	_ = c.c.SetReadDeadline(time.Now().Add(d))
}

// flusher drains the pending batch whenever senders go idle. Each send
// kicks it; by the time it runs, every frame of a burst queued meanwhile is
// in the batch and leaves in one vectored syscall. It exits on stop —
// close/abort fire it exactly once, so the goroutine never outlives the
// connection.
func (c *conn) flusher() {
	for {
		select {
		case <-c.kick:
			c.flushPend()
		case <-c.stop:
			return
		}
	}
}

// send frames and queues f. The call returns once the frame's wire bytes
// are in the pending batch; the flusher moves them to the socket (senders
// block at the batch-size cap, which exerts TCP backpressure upstream).
// Write errors are sticky: after a failure every subsequent send reports
// one.
func (c *conn) send(f *frame) error {
	var dup bool
	if c.fi != nil && f.Kind == kindData {
		act := c.fi.DataSent(f.Stream)
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		if act.Drop {
			return nil // vanished on the wire
		}
		dup = act.Dup
	}
	bp := getWireBuf()
	// Reserve the length prefix up front so the segment is one contiguous
	// iovec; patch it once the body size is known.
	buf := append((*bp)[:0], 0, 0, 0, 0)
	buf, err := appendFrame(buf, f)
	if err != nil {
		putWireBuf(bp)
		return err
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
	*bp = buf

	c.mu.Lock()
	for c.werr == nil && c.pendBytes >= c.pendMax {
		c.cond.Wait()
	}
	if err := c.werr; err != nil {
		c.mu.Unlock()
		putWireBuf(bp)
		return err
	}
	if dup {
		// Queue the copy first: queueing the original may hand its pooled
		// buffer over (or recycle it), after which buf's bytes are not ours.
		c.queueLocked(buf, nil)
	}
	c.queueLocked(buf, bp)
	c.mu.Unlock()
	if c.m != nil {
		c.m.frameBytes.Observe(float64(len(buf)))
	}
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return nil
}

// errInjectedKill surfaces a fault-injected process kill to the reader that
// triggered it; by the time recv returns it, Worker.Kill has already
// hard-closed every connection.
var errInjectedKill = fmt.Errorf("dist: fault injection killed this process")

// recv reads and decodes the next frame. Data frames own a pooled wire
// buffer (released via decodePayload / frame.release); every other kind is
// fully decoded and the buffer recycled before returning.
func (c *conn) recv() (*frame, error) {
	f, _, err := c.r.readWireFrame(c.br)
	if err == nil && c.fi != nil {
		kill, stall := c.fi.FrameReceived(f.Kind == kindData)
		if kill {
			f.release()
			return nil, errInjectedKill
		}
		if stall > 0 {
			time.Sleep(stall) // wedged process: frame handling frozen
		}
	}
	return f, err
}
