package dist

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"datacutter/internal/faults"
	"datacutter/internal/obs"
)

// dialRetry dials addr with per-attempt timeout opts.dialTimeout(), retrying
// up to opts.dialAttempts() times with exponential backoff plus jitter. It
// is the one dial path for both the coordinator's worker setup and the
// worker peer mesh. redials counts attempts after the first (nil-safe);
// cancel, when non-nil, aborts the backoff wait between attempts (a session
// being torn down must not sit out a backoff sleep). fi injects dial
// failures for chaos tests.
func dialRetry(addr string, opts *Options, fi *faults.Injector, redials *obs.Counter, cancel <-chan struct{}) (net.Conn, error) {
	const (
		backoffBase = 50 * time.Millisecond
		backoffCap  = 2 * time.Second
	)
	attempts := opts.dialAttempts()
	backoff := backoffBase
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Full jitter: sleep a uniform fraction of the backoff so
			// simultaneous redials from many hosts don't stampede.
			d := time.Duration(rand.Int63n(int64(backoff))) + backoff/2
			select {
			case <-time.After(d):
			case <-cancel:
				return nil, fmt.Errorf("dist: dial %s cancelled after %d attempts: %w", addr, i, lastErr)
			}
			if backoff *= 2; backoff > backoffCap {
				backoff = backoffCap
			}
			redials.Inc()
		}
		if err := fi.FailDial(); err != nil {
			lastErr = err
			continue
		}
		c, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dist: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}
