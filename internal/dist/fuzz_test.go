package dist

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives the wire-frame reader with arbitrary byte streams.
// The decoder must never panic or over-allocate, whatever the length prefix
// claims (truncated, zero, or oversized prefixes are all in the seed
// corpus), and any frame it does accept must re-encode to the same bytes.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed frames of each data-plane kind, plus a control frame.
	seed := func(fr *frame) {
		body, err := appendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		var hdr [4]byte
		putU32(hdr[:], len(body))
		f.Add(append(hdr[:], body...))
	}
	seed(dataFrame(9, 1, "tri", 2, 3, 4, 24, []float32{1, -2}))
	seed(dataFrame(0, 0, "s", 0, 0, 0, 3, []byte{0xDE, 0xAD, 0xBF}))
	seed(&frame{Kind: kindAck, UOWIdx: 1, Stream: "tri", Target: 2, Copy: 3, AckN: 4})
	seed(&frame{Kind: kindProducerDone, UOWIdx: 7, Stream: "pix"})
	seed(&frame{Kind: kindHello})
	seed(&frame{Kind: kindDecls, Decls: map[string][2]int{"ints": {64, 4096}}})
	// Hostile prefixes (also committed under testdata/fuzz/FuzzDecodeFrame).
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})            // oversized length
	f.Add([]byte{0, 0, 0, 0})                        // zero length
	f.Add([]byte{16, 0, 0, 0, byte(kindHello)})      // truncated body
	f.Add([]byte{1, 0, 0})                           // truncated prefix
	f.Add([]byte{5, 0, 0, 0, byte(kindData), 1, 0})  // truncated data header
	f.Add([]byte{0, 0, 0, 1, byte(kindShutdown), 9}) // 16 MiB prefix, 2 bytes

	f.Fuzz(func(t *testing.T, in []byte) {
		var r frameReader
		rd := bytes.NewReader(in)
		for i := 0; i < 64; i++ { // bound multi-frame streams
			fr, rel, err := r.readWireFrame(rd)
			if err != nil {
				return
			}
			// Accepted frames on the binary plane must round-trip
			// byte-identically (control frames re-encode via gob, whose
			// map ordering is not canonical, so skip those).
			switch fr.Kind {
			case kindData, kindAck, kindProducerDone, kindHello:
				re, err := appendFrame(nil, fr)
				if err != nil {
					t.Fatalf("re-encoding accepted frame: %v", err)
				}
				pos := int(rd.Size()) - rd.Len()
				if got := in[pos-len(re) : pos]; !bytes.Equal(re, got) {
					t.Fatalf("re-encode mismatch:\n got  %x\n want %x", re, got)
				}
			}
			if rel != nil {
				rel()
			}
		}
	})
}

// putU32 writes v little-endian; small helper so seeds read clearly.
func putU32(b []byte, v int) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
