package dist_test

import (
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/leakcheck"
	"datacutter/internal/obs"
)

// byteIdentitySource is the exact slice the byte source emits; the
// zero-copy test compares backing-array pointers against it.
var byteIdentitySource []byte

type byteSource struct{ core.BaseFilter }

func (s *byteSource) Process(ctx core.Ctx) error {
	return ctx.Write("blobs", core.Buffer{Payload: byteIdentitySource, Size: len(byteIdentitySource)})
}

type byteSink struct {
	core.BaseFilter
	got [][]byte
}

func (s *byteSink) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read("blobs")
		if !ok {
			return nil
		}
		s.got = append(s.got, b.Payload.([]byte))
	}
}

func init() {
	dist.RegisterFilter("test.bytesrc", func([]byte) (core.Filter, error) { return &byteSource{}, nil })
	dist.RegisterFilter("test.bytesink", func([]byte) (core.Filter, error) { return &byteSink{}, nil })
}

// TestRingTransportDelivers runs the cross-host pipeline with the ring
// transport forced on and checks delivery, stats, and that the data plane
// really went over rings (rx ring counter up, rx TCP path identical counts).
func TestRingTransportDelivers(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)

	regs := map[string]*obs.Registry{}
	for host, w := range workers {
		reg := obs.NewRegistry()
		o := obs.New(nil, reg)
		w.SetObserver(o)
		regs[host] = reg
	}

	const n = 200
	st, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{Transport: dist.TransportRing}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := workers["host1"].Instances("K")[0].(*intSink)
	if sink.Seen != n || sink.Sum != n*(n-1)/2 {
		t.Fatalf("sink saw %d (sum %d), want %d", sink.Seen, sink.Sum, n)
	}
	if st.Streams["ints"].Buffers != n {
		t.Fatalf("stats buffers = %d", st.Streams["ints"].Buffers)
	}
	if got := regs["host1"].Counter("dist.rx.ring_frames").Value(); got != n {
		t.Fatalf("host1 rx ring frames = %d, want %d (data plane not on rings?)", got, n)
	}
	if got := regs["host1"].Counter("dist.rx.data_frames").Value(); got != n {
		t.Fatalf("host1 rx data frames = %d, want %d", got, n)
	}
}

// TestRingTransportAcksAndMultiUOW exercises demand-driven acks riding the
// reverse ring and per-UOW state resets across three units of work.
func TestRingTransportAcksAndMultiUOW(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 3)
	const n = 120
	st, err := dist.Run(addrs, intGraph(n), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 2},
		{Filter: "K", Host: "host2", Copies: 1},
	}, dist.Options{Policy: "DD", Transport: dist.TransportAuto}, []any{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, host := range []string{"host0", "host1", "host2"} {
		for _, inst := range workers[host].Instances("K") {
			total += inst.(*intSink).Seen
		}
	}
	if total != 3*n {
		t.Fatalf("delivered %d of %d buffers across 3 UOWs", total, 3*n)
	}
	if st.Streams["ints"].Acks == 0 {
		t.Fatal("DD produced no acknowledgments over rings")
	}
}

// TestRingTransportZeroCopyIdentity pins the transport's defining property:
// the consumer receives the producer's payload value itself — same backing
// array, no codec round-trip. (TCP necessarily copies; the ring must not.)
func TestRingTransportZeroCopyIdentity(t *testing.T) {
	leakcheck.Check(t)
	addrs, workers := startWorkers(t, 2)
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	byteIdentitySource = src
	st, err := dist.Run(addrs, dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.bytesrc"},
			{Name: "K", Kind: "test.bytesink"},
		},
		Streams: []core.StreamSpec{{Name: "blobs", From: "S", To: "K"}},
	}, []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{Transport: dist.TransportRing}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams["blobs"].Buffers != 1 {
		t.Fatalf("buffers = %d", st.Streams["blobs"].Buffers)
	}
	sink := workers["host1"].Instances("K")[0].(*byteSink)
	if len(sink.got) != 1 {
		t.Fatalf("sink holds %d payloads", len(sink.got))
	}
	if &sink.got[0][0] != &src[0] {
		t.Fatal("payload was copied in transit: ring transport must deliver by reference")
	}
}

// TestRingTransportRejectsBadName pins Options validation.
func TestRingTransportRejectsBadName(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	_, err := dist.Run(addrs, intGraph(5), []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host0", Copies: 1},
	}, dist.Options{Transport: "carrier-pigeon"}, nil)
	if err == nil {
		t.Fatal("bogus Transport accepted")
	}
}

// TestRingTransportWorkerCloseSevers checks that closing a worker while a
// peer holds a ring link to it does not strand the peer: teardown severs
// the rings exactly like TCP conns, and the run surfaces an error instead
// of hanging.
func TestRingTransportWorkerCloseSevers(t *testing.T) {
	addrs, workers := startWorkers(t, 2)
	suicideTarget = workers["host1"]
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "test.source", Params: []byte{200}},
			{Name: "K", Kind: "test.suicide"},
		},
		Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "K"}},
	}
	_, err := dist.Run(addrs, g, []dist.PlacementEntry{
		{Filter: "S", Host: "host0", Copies: 1},
		{Filter: "K", Host: "host1", Copies: 1},
	}, dist.Options{Transport: dist.TransportRing}, nil)
	if err == nil {
		t.Fatal("run against a mid-stream-killed ring peer reported success")
	}
}
