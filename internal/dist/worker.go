package dist

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/exec"
	"datacutter/internal/faults"
	"datacutter/internal/obs"
)

// Worker serves one named host of distributed runs: it builds the filter
// copies placed on its host, executes them, and exchanges stream buffers
// and acknowledgments with peer workers over TCP.
//
// A worker is persistent and multi-tenant: it outlives individual runs and
// serves any number of concurrent sessions, one per job id (Options.JobID,
// carried on every setup, data, ack, and producer-done frame). A second
// setup for a job whose session is still active is refused — the pre-job
// single-session behaviour, preserved for plain dist.Run coordinators that
// leave JobID zero.
type Worker struct {
	ln net.Listener
	mu sync.Mutex
	// sessions holds the active session of each job; a session is removed
	// when it ends. The most recently ended one is kept in last — and a
	// bounded per-job map in ended — so Instances/InstancesJob can retrieve
	// sink results after a run returns without the worker accumulating
	// every session it ever served.
	sessions   map[uint64]*session
	last       *session
	ended      map[uint64]*session
	endedOrder []uint64
	// draining refuses new setups while in-flight sessions finish (Drain).
	draining bool
	closed   atomic.Bool

	// obsrv and wm are set by SetObserver before Serve; nil = disabled.
	// wm is atomic because accepted connections resolve it concurrently.
	obsrv *obs.Observer
	wm    atomic.Pointer[workerMetrics]

	// fi is this process's fault injector (SetFaults, before Serve).
	fi *faults.Injector

	// Every live connection (control, inbound peer, outbound peer) is
	// tracked so Kill can sever them all at once, simulating a process
	// crash without actually exiting the test binary.
	connsMu sync.Mutex
	conns   map[*conn]struct{}
	rings   map[*ringLink]struct{}
	killed  bool
}

// workerMetrics are the worker's live per-frame counters, resolved once so
// the data path never touches the registry lock.
type workerMetrics struct {
	rxDataFrames *obs.Counter
	rxDataBytes  *obs.Counter
	rxAckFrames  *obs.Counter
	rxRingFrames *obs.Counter // data frames that arrived over in-process rings
	txDataFrames *obs.Counter
	txDataBytes  *obs.Counter
	txAckFrames  *obs.Counter
	redials      *obs.Counter // peer-mesh dial retries
	// Batched-writer instrumentation, shared by every outbound connection.
	cm *connMetrics
}

// SetObserver attaches the observability subsystem: per-frame byte and
// acknowledgment counters in the observer's registry, batched-writer flush
// metrics (dist.tx.flushes, dist.tx.frames_per_flush, dist.tx.frame_bytes),
// plus buffer-lifecycle trace events (wall-clock time domain). Must be
// called before Serve.
func (w *Worker) SetObserver(o *obs.Observer) {
	w.obsrv = o
	if reg := o.Registry(); reg != nil {
		w.wm.Store(&workerMetrics{
			rxDataFrames: reg.Counter("dist.rx.data_frames"),
			rxDataBytes:  reg.Counter("dist.rx.data_bytes"),
			rxAckFrames:  reg.Counter("dist.rx.ack_frames"),
			rxRingFrames: reg.Counter("dist.rx.ring_frames"),
			txDataFrames: reg.Counter("dist.tx.data_frames"),
			txDataBytes:  reg.Counter("dist.tx.data_bytes"),
			txAckFrames:  reg.Counter("dist.tx.ack_frames"),
			redials:      reg.Counter("dist.redials"),
			cm: &connMetrics{
				flushes:        reg.Counter("dist.tx.flushes"),
				framesPerFlush: reg.Histogram("dist.tx.frames_per_flush"),
				frameBytes:     reg.Histogram("dist.tx.frame_bytes"),
				writevCalls:    reg.Counter("dist.tx.writev_calls"),
				writevIovecs:   reg.Histogram("dist.tx.writev_iovecs"),
				writevBytes:    reg.Counter("dist.tx.writev_bytes"),
			},
		})
	}
}

// metrics returns the worker's live counters (nil = disabled).
func (w *Worker) metrics() *workerMetrics { return w.wm.Load() }

// connMetrics returns the batched-writer instrumentation for this worker's
// connections (nil when observability is disabled).
func (w *Worker) connMetrics() *connMetrics {
	if m := w.wm.Load(); m != nil {
		return m.cm
	}
	return nil
}

// NewWorker starts a worker listening on addr ("127.0.0.1:0" for an
// ephemeral test port). Call Serve (usually in a goroutine) to accept
// connections.
func NewWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		ln:       ln,
		sessions: make(map[uint64]*session),
		ended:    make(map[uint64]*session),
		conns:    make(map[*conn]struct{}),
		rings:    make(map[*ringLink]struct{}),
	}
	// Advertise this worker for same-process ring transport selection.
	registerInproc(w)
	return w, nil
}

// Addr returns the listening address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// SetFaults attaches a fault injector to every connection this worker opens
// or accepts, and arms kill directives to Kill the worker. Must be called
// before Serve.
func (w *Worker) SetFaults(in *faults.Injector) {
	w.fi = in
	in.OnKill(w.Kill)
}

// track registers a connection for Kill and wires in the fault injector.
func (w *Worker) track(c *conn) *conn {
	c.fi = w.fi
	c.onClose = func() {
		w.connsMu.Lock()
		delete(w.conns, c)
		w.connsMu.Unlock()
	}
	w.connsMu.Lock()
	killed := w.killed
	if !killed {
		w.conns[c] = struct{}{}
	}
	w.connsMu.Unlock()
	if killed {
		c.abort()
	}
	return c
}

// severConns hard-closes every tracked connection. The snapshot is taken
// under connsMu but the aborts run outside it — abort fires onClose, which
// re-takes the lock to prune the map.
func (w *Worker) severConns(markKilled bool) {
	w.connsMu.Lock()
	if markKilled {
		w.killed = true
	}
	cs := make([]*conn, 0, len(w.conns))
	for c := range w.conns {
		cs = append(cs, c)
	}
	rls := make([]*ringLink, 0, len(w.rings))
	for rl := range w.rings {
		rls = append(rls, rl)
	}
	w.connsMu.Unlock()
	for _, c := range cs {
		c.abort()
	}
	for _, rl := range rls {
		rl.close()
	}
}

// Close stops the listener, severs all connections, and tears down every
// active session.
func (w *Worker) Close() {
	w.closed.Store(true)
	unregisterInproc(w)
	w.ln.Close()
	w.severConns(false)
	for _, s := range w.liveSessions() {
		s.fail(fmt.Errorf("dist: worker closed"))
	}
}

// liveSessions snapshots the active sessions.
func (w *Worker) liveSessions() []*session {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*session, 0, len(w.sessions))
	for _, s := range w.sessions {
		out = append(out, s)
	}
	return out
}

// Drain stops accepting new sessions (setups are refused with a draining
// message) and waits up to timeout for the in-flight ones to finish. It
// returns true when the worker went idle — the graceful half of a
// SIGTERM handler; callers typically Close afterwards either way.
func (w *Worker) Drain(timeout time.Duration) bool {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		w.mu.Lock()
		n := len(w.sessions)
		w.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Kill simulates a process crash: the listener and every live connection
// are hard-closed with no flush and no farewell frames, so peers and the
// coordinator see raw resets/EOFs exactly as they would from a real death.
// The worker accepts no further connections.
func (w *Worker) Kill() {
	w.closed.Store(true)
	unregisterInproc(w)
	w.ln.Close()
	w.severConns(true)
	for _, s := range w.liveSessions() {
		s.fail(fmt.Errorf("dist: worker killed"))
	}
}

// Serve accepts coordinator and peer connections until Close.
func (w *Worker) Serve() {
	for {
		c, err := w.ln.Accept()
		if err != nil {
			return
		}
		go w.handle(w.track(newConn(c, w.connMetrics())))
	}
}

// Instances returns the local filter instances for a filter name from the
// active sessions, falling back to the most recently ended one — the
// distributed analogue of Runner.Instances for retrieving results held by
// sink filters. With concurrent jobs in flight, prefer InstancesJob: two
// jobs may reuse a filter name.
func (w *Worker) Instances(name string) []core.Filter {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []core.Filter
	for _, job := range w.jobIDsLocked() {
		out = append(out, w.sessions[job].instancesOf(name)...)
	}
	if len(out) == 0 && w.last != nil {
		out = w.last.instancesOf(name)
	}
	return out
}

// InstancesJob returns the local filter instances for one job's session —
// the active one, or that job's most recently ended session while it is
// still within the worker's bounded retention window.
func (w *Worker) InstancesJob(job uint64, name string) []core.Filter {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s := w.sessions[job]; s != nil {
		return s.instancesOf(name)
	}
	if s := w.ended[job]; s != nil {
		return s.instancesOf(name)
	}
	return nil
}

// endedRetention bounds how many finished sessions a persistent worker keeps
// for post-run result retrieval (InstancesJob): one per job, newest wins,
// oldest evicted beyond the cap — a long-lived worker serving thousands of
// jobs must not accumulate every sink it ever ran.
const endedRetention = 8

// rememberEndedLocked records a finished session for InstancesJob; callers
// hold w.mu.
func (w *Worker) rememberEndedLocked(job uint64, s *session) {
	if _, seen := w.ended[job]; !seen {
		w.endedOrder = append(w.endedOrder, job)
		if len(w.endedOrder) > endedRetention {
			delete(w.ended, w.endedOrder[0])
			w.endedOrder = w.endedOrder[1:]
		}
	}
	w.ended[job] = s
}

// jobIDsLocked returns the active job ids sorted, for deterministic
// iteration; callers hold w.mu.
func (w *Worker) jobIDsLocked() []uint64 {
	ids := make([]uint64, 0, len(w.sessions))
	for id := range w.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (s *session) instancesOf(name string) []core.Filter {
	var out []core.Filter
	for _, c := range s.copies {
		if c.name == name {
			out = append(out, c.filter)
		}
	}
	return out
}

// handle dispatches an incoming connection by its first frame: a Setup
// frame makes it the coordinator control connection, a Hello frame a peer
// data connection.
func (w *Worker) handle(c *conn) {
	f, err := c.recv()
	if err != nil {
		c.close()
		return
	}
	switch f.Kind {
	case kindSetup:
		w.runSession(c, f.Setup)
	case kindHello:
		w.servePeer(c)
	default:
		c.close()
	}
}

// servePeer pumps data/ack/producer-done frames into their job's session:
// every frame on the binary plane leads with a job id, so one inbound
// connection may interleave traffic from many concurrent jobs.
func (w *Worker) servePeer(c *conn) {
	defer c.close()
	for {
		f, err := c.recv()
		if err != nil {
			return
		}
		w.mu.Lock()
		s := w.sessions[f.Job]
		w.mu.Unlock()
		if s == nil {
			f.release() // stale frame after the job's session ended
			continue
		}
		s.dispatchPeer(f)
	}
}

// busyMsg is the refusal a worker sends for a Setup of a job whose session
// is active. The coordinator's setup path retries on exactly this message —
// after an abort, a re-setup can race the old session's last breath.
const busyMsg = "dist: worker busy with another session"

// drainingMsg is the refusal a worker sends for any Setup while draining;
// coordinators fail fast on it (no retry — the worker is going away).
const drainingMsg = "dist: worker draining"

// runSession executes one coordinator-driven session on this worker.
// Sessions are keyed by job id: a second Setup for the *same* job while
// its session is active is refused rather than silently clobbering the
// running one, while setups for other jobs run concurrently.
//
// Phase operations run in goroutines so the control loop keeps reading:
// heartbeats refresh the read deadline and a kindAbort can interrupt a
// phase blocked on a dead peer. The coordinator is lock-step per worker, so
// at most one operation is in flight outside of teardown.
func (w *Worker) runSession(ctrl *conn, setup *setupMsg) {
	defer ctrl.close()
	s, err := newSession(w, setup)
	if err != nil {
		_ = ctrl.send(&frame{Kind: kindFail, Err: err.Error()})
		return
	}
	job := setup.Opts.JobID
	w.mu.Lock()
	switch {
	case w.draining:
		w.mu.Unlock()
		_ = ctrl.send(&frame{Kind: kindFail, Err: drainingMsg})
		return
	case w.sessions[job] != nil:
		w.mu.Unlock()
		_ = ctrl.send(&frame{Kind: kindFail, Err: busyMsg})
		return
	}
	w.sessions[job] = s
	w.mu.Unlock()

	opts := &setup.Opts
	var opWG sync.WaitGroup
	// endSession teardown order matters: closing peers first unblocks any
	// phase goroutine stuck in a TCP send to a dead host, so the Wait
	// cannot hang; only then is the session unregistered (a new Setup for
	// the job is accepted from that point, while Instances still reads the
	// copies via w.last).
	endSession := func() {
		s.closePeers()
		opWG.Wait()
		w.mu.Lock()
		s.ended = true
		if w.sessions[job] == s {
			delete(w.sessions, job)
		}
		w.last = s
		w.rememberEndedLocked(job, s)
		w.mu.Unlock()
	}

	if err := ctrl.send(&frame{Kind: kindSetupOK}); err != nil {
		endSession()
		return
	}

	// Worker->coordinator heartbeats from a dedicated sender, so liveness
	// flows even while a phase computes. A wedged (fault-injected) process
	// goes silent, exactly like a frozen real one.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(opts.hbInterval())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if w.fi.Wedged() {
					continue
				}
				if ctrl.send(&frame{Kind: kindHeartbeat}) != nil {
					return
				}
			case <-hbStop:
				return
			}
		}
	}()

	for {
		// Silence beyond the miss budget means the coordinator is gone;
		// its heartbeats re-arm the deadline every interval.
		ctrl.setReadDeadline(opts.hbTimeout())
		f, err := ctrl.recv()
		if err != nil {
			s.fail(fmt.Errorf("dist: coordinator connection lost: %w", err))
			endSession()
			return
		}
		switch f.Kind {
		case kindHeartbeat:
			// Liveness only; the recv already reset the deadline clock.
		case kindInitUOW:
			opWG.Add(1)
			go func(msg *uowMsg) {
				defer opWG.Done()
				decls, err := s.initUOW(msg)
				if err != nil {
					_ = ctrl.send(s.failFrame(err))
					return
				}
				_ = ctrl.send(&frame{Kind: kindDecls, Decls: decls})
			}(f.UOW)
		case kindBeginProcess:
			opWG.Add(1)
			go func(sizes map[string]int) {
				defer opWG.Done()
				if err := s.process(sizes); err != nil {
					_ = ctrl.send(s.failFrame(err))
					return
				}
				_ = ctrl.send(&frame{Kind: kindProcessDone})
			}(f.Sizes)
		case kindFinalize:
			opWG.Add(1)
			go func() {
				defer opWG.Done()
				st, err := s.finalize()
				if err != nil {
					_ = ctrl.send(s.failFrame(err))
					return
				}
				_ = ctrl.send(&frame{Kind: kindFinalizeDone, Stats: st})
			}()
		case kindAbort:
			// Coordinator-ordered teardown (typically a peer host died).
			// Unblock everything, wait the phase out, end the session so a
			// re-setup is accepted the moment AbortDone is on the wire.
			s.fail(fmt.Errorf("dist: run aborted by coordinator: %s", f.Err))
			endSession()
			ctrl.setReadDeadline(0)
			_ = ctrl.send(&frame{Kind: kindAbortDone})
			return
		case kindShutdown:
			// Confirm after endSession so the coordinator knows the job slot
			// is free: a back-to-back Run's Setup would otherwise race the
			// teardown and be refused busy, eating a retry backoff.
			endSession()
			ctrl.setReadDeadline(0)
			_ = ctrl.send(&frame{Kind: kindShutdownDone})
			return
		}
	}
}

// ---- Session ----

type dcopy struct {
	name      string
	filter    core.Filter
	globalIdx int
	total     int
}

type copyStream struct {
	copyIdx int
	stream  string
}

type delivery struct {
	buf          core.Buffer
	stream       string
	fromHost     string
	producerCopy int
	targetIdx    int
	ackEvery     int
	localAck     exec.AckChan // non-nil for same-host deliveries
	// release recycles the pooled wire buffer a zero-copy payload aliases;
	// the consumer's ctx calls it when the filter copy finishes the buffer.
	release func()
}

type session struct {
	w     *Worker
	setup *setupMsg
	// job namespaces this session's frames on the shared worker mesh.
	job uint64

	copies []*dcopy
	// filterHosts caches placement order per filter (copy-set targets).
	placeOf map[string][]PlacementEntry
	totalOf map[string]int
	// copyHost maps a filter's global copy index to its host.
	copyHost map[string][]string

	peersMu sync.Mutex
	peers   map[string]peerLink

	failMu   sync.Mutex
	failedCh chan struct{}
	failErr  error
	// failHost/failNet attribute the first failure when it was a transport
	// error talking to a peer — the coordinator uses them to tell a dead
	// host's cascade apart from an application error.
	failHost string
	failNet  bool
	// ended marks the session finished (guarded by Worker.mu); the worker
	// then accepts a new Setup while Instances still reads the old copies.
	ended bool

	uowMu sync.Mutex
	uow   *uowState
}

type uowState struct {
	index int
	work  any

	queues map[string]chan delivery
	// producersLeft counts down a stream's unfinished producer copies;
	// the exact zero edge closes the local queue (duplicated producer-done
	// frames from fault injection cannot double-close it). The map itself
	// is immutable once the unit of work is published.
	producersLeft map[string]*exec.Countdown
	writers       map[copyStream]*exec.StreamWriter
	acks          map[copyStream]exec.AckChan
	// counts tallies per-target deliveries per produced stream, shared by
	// this host's producer copies; targetHosts names the targets for the
	// finalize-time fold into wireStats.PerTarget.
	counts      map[string]*exec.Counts
	targetHosts map[string][]string

	declMu sync.Mutex
	decls  map[string][2]int
	sizes  map[string]int

	// stats (atomics / mutex-guarded)
	statMu   sync.Mutex
	buffers  map[string]int64
	bytes    map[string]int64
	ackCount map[string]int64
	busy     map[string][]float64
	busyIdx  map[string]map[int]int // filter -> globalIdx -> slot
}

func newSession(w *Worker, setup *setupMsg) (*session, error) {
	s := &session{
		w: w, setup: setup, job: setup.Opts.JobID,
		placeOf:  make(map[string][]PlacementEntry),
		totalOf:  make(map[string]int),
		copyHost: make(map[string][]string),
		peers:    make(map[string]peerLink),
		failedCh: make(chan struct{}),
	}
	for _, e := range setup.Placement {
		s.placeOf[e.Filter] = append(s.placeOf[e.Filter], e)
		s.totalOf[e.Filter] += e.Copies
		for i := 0; i < e.Copies; i++ {
			s.copyHost[e.Filter] = append(s.copyHost[e.Filter], e.Host)
		}
	}
	// Build local copies, preserving global copy numbering.
	for _, fs := range setup.Graph.Filters {
		b, err := builderFor(fs.Kind)
		if err != nil {
			return nil, err
		}
		idx := 0
		for _, e := range s.placeOf[fs.Name] {
			for i := 0; i < e.Copies; i++ {
				if e.Host == setup.Host {
					filt, err := b(fs.Params)
					if err != nil {
						return nil, fmt.Errorf("dist: building %s: %w", fs.Name, err)
					}
					// Near-storage instrumentation: a filter that owns a
					// prunable store gets this worker's observer, so pushdown
					// metrics are recorded where the pruning decision runs.
					if so, ok := filt.(core.ObserverSetter); ok {
						so.SetObserver(s.w.obsrv)
					}
					s.copies = append(s.copies, &dcopy{
						name: fs.Name, filter: filt,
						globalIdx: idx, total: s.totalOf[fs.Name],
					})
				}
				idx++
			}
		}
	}
	return s, nil
}

func (s *session) fail(err error) {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if s.failErr == nil {
		s.failErr = err
		close(s.failedCh)
	}
}

// failTransport records a failure caused by the network path to host. Only
// the first recorded failure carries attribution: a transport error that
// arrives after an application error is a cascade, not a cause.
func (s *session) failTransport(host string, err error) {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if s.failErr == nil {
		s.failErr = err
		s.failHost = host
		s.failNet = true
		close(s.failedCh)
	}
}

func (s *session) failed() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}

// failFrame builds the kindFail reply for err, attaching the session's
// transport attribution when its first failure implicated a peer host.
func (s *session) failFrame(err error) *frame {
	f := &frame{Kind: kindFail, Err: err.Error()}
	s.failMu.Lock()
	if s.failNet {
		f.FailNet = true
		f.FailHost = s.failHost
	}
	s.failMu.Unlock()
	return f
}

func (s *session) closePeers() {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	for _, c := range s.peers {
		c.close()
	}
}

// peer returns (attaching on demand) the outbound link to a host.
// Transport selection is per-edge: with Options.Transport "ring" or "auto",
// a peer whose advertised address is served by a live Worker in this
// process gets an in-process ring link (no sockets, no codec); otherwise —
// always, for the default "tcp" — the dial goes through dialRetry, the
// shared backoff+jitter helper bounded per attempt by Options.DialTimeout,
// so a peer mid-restart is retried rather than failing the run, and a
// session being torn down cancels the backoff wait via failedCh. newConn
// sets TCP_NODELAY: the connection's vectored batch writer already
// coalesces small frames, so Nagle would only delay those batches.
func (s *session) peer(host string) (peerLink, error) {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	if c, ok := s.peers[host]; ok {
		return c, nil
	}
	addr, ok := s.setup.Addrs[host]
	if !ok {
		return nil, fmt.Errorf("dist: no address for host %q", host)
	}
	switch s.setup.Opts.Transport {
	case TransportRing, TransportAuto:
		if dst := inprocWorker(addr); dst != nil {
			rl, err := newRingLink(s.w, dst)
			if err == nil {
				s.peers[host] = rl
				return rl, nil
			}
			if s.setup.Opts.Transport == TransportRing {
				return nil, fmt.Errorf("dist: ring link to peer %s (%s): %w", host, addr, err)
			}
			// auto: the in-process worker died between lookup and attach;
			// fall through to TCP, which will fail or reach a restart.
		} else if s.setup.Opts.Transport == TransportRing {
			return nil, fmt.Errorf("dist: transport \"ring\" but peer %s (%s) is not in this process", host, addr)
		}
	}
	var redials *obs.Counter
	if m := s.w.metrics(); m != nil {
		redials = m.redials
	}
	nc, err := dialRetry(addr, &s.setup.Opts, s.w.fi, redials, s.failedCh)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing peer %s: %w", host, err)
	}
	c := s.w.track(newConn(nc, s.w.connMetrics()))
	if err := c.send(&frame{Kind: kindHello}); err != nil {
		c.close()
		return nil, fmt.Errorf("dist: greeting peer %s (%s): %w", host, addr, err)
	}
	s.peers[host] = c
	return c, nil
}

// inputsOf / outputsOf resolve stream specs by endpoint.
func (s *session) inputsOf(filter string) []core.StreamSpec {
	var out []core.StreamSpec
	for _, sp := range s.setup.Graph.Streams {
		if sp.To == filter {
			out = append(out, sp)
		}
	}
	return out
}

func (s *session) outputsOf(filter string) []core.StreamSpec {
	var out []core.StreamSpec
	for _, sp := range s.setup.Graph.Streams {
		if sp.From == filter {
			out = append(out, sp)
		}
	}
	return out
}

func (s *session) streamByName(name string) (core.StreamSpec, bool) {
	for _, sp := range s.setup.Graph.Streams {
		if sp.Name == name {
			return sp, true
		}
	}
	return core.StreamSpec{}, false
}

// consumerTargets lists the consumer copy sets of a stream in placement
// order.
func (s *session) consumerTargets(sp core.StreamSpec, producerHost string) []core.TargetInfo {
	var out []core.TargetInfo
	for _, e := range s.placeOf[sp.To] {
		out = append(out, core.TargetInfo{Host: e.Host, Copies: e.Copies, Local: e.Host == producerHost})
	}
	return out
}

func (s *session) qcap() int {
	if s.setup.Opts.QueueCap > 0 {
		return s.setup.Opts.QueueCap
	}
	return 8
}

// policies resolves the session's writer-policy configuration (default +
// per-stream overrides). The names were validated coordinator-side before
// setup shipped; a name that somehow fails here falls back to Round Robin
// via the zero config rather than crashing mid-session.
func (s *session) policies() exec.PolicyConfig {
	cfg, err := exec.ParsePolicies(s.setup.Opts.Policy, s.setup.Opts.StreamPolicy)
	if err != nil {
		return exec.PolicyConfig{}
	}
	return cfg
}

// initUOW builds per-UOW plumbing and runs every local copy's Init.
func (s *session) initUOW(msg *uowMsg) (map[string][2]int, error) {
	var work any
	if len(msg.Work) > 0 {
		var err error
		work, err = decodeAny(msg.Work)
		if err != nil {
			return nil, fmt.Errorf("dist: decoding unit of work: %w", err)
		}
	}
	u := &uowState{
		index:         msg.Index,
		work:          work,
		queues:        make(map[string]chan delivery),
		producersLeft: make(map[string]*exec.Countdown),
		writers:       make(map[copyStream]*exec.StreamWriter),
		acks:          make(map[copyStream]exec.AckChan),
		counts:        make(map[string]*exec.Counts),
		targetHosts:   make(map[string][]string),
		decls:         make(map[string][2]int),
		sizes:         make(map[string]int),
		buffers:       make(map[string]int64),
		bytes:         make(map[string]int64),
		ackCount:      make(map[string]int64),
		busy:          make(map[string][]float64),
		busyIdx:       make(map[string]map[int]int),
	}
	// Queues for streams consumed on this host.
	for _, sp := range s.setup.Graph.Streams {
		consumesHere := false
		for _, e := range s.placeOf[sp.To] {
			if e.Host == s.setup.Host {
				consumesHere = true
			}
		}
		if consumesHere {
			u.queues[sp.Name] = make(chan delivery, s.qcap())
			u.producersLeft[sp.Name] = exec.NewCountdown(s.totalOf[sp.From])
		}
	}
	// Stream writers (the shared internal/exec runtime bound to a wire
	// port) and ack channels for local producer copies.
	pol := s.policies()
	for _, c := range s.copies {
		for _, sp := range s.outputsOf(c.name) {
			targets := s.consumerTargets(sp, s.setup.Host)
			if u.counts[sp.Name] == nil {
				u.counts[sp.Name] = exec.NewCounts(len(targets))
				hosts := make([]string, len(targets))
				for i, t := range targets {
					hosts[i] = t.Host
				}
				u.targetHosts[sp.Name] = hosts
			}
			key := copyStream{c.globalIdx, sp.Name}
			port := &distPort{s: s, u: u, c: c, stream: sp.Name, targets: targets}
			if reg := s.w.obsrv.Registry(); reg != nil {
				port.writeStallH = reg.Histogram("dist.write_stall_seconds")
			}
			sw := exec.NewStreamWriter(sp.Name, pol.For(sp.Name), targets, port, u.counts[sp.Name],
				exec.Meta{Obs: s.w.obsrv, Filter: c.name, Copy: c.globalIdx, Host: s.setup.Host, UOW: u.index})
			if sw.WantsAcks() {
				// 4x the never-block bound: inbound wire acks are shed with
				// Offer on overflow, so headroom trades memory for fewer
				// conservative drops under fault-injected duplication.
				ch := exec.NewAckChan(4 * exec.AckCap(targets, s.qcap()))
				u.acks[key] = ch
				port.acks = ch
				sw.BindAckSource(ch)
			}
			u.writers[key] = sw
		}
	}
	s.uowMu.Lock()
	s.uow = u
	s.uowMu.Unlock()

	// Run Init on every local copy.
	var wg sync.WaitGroup
	var initErr error
	var errMu sync.Mutex
	for _, c := range s.copies {
		wg.Add(1)
		go func(c *dcopy) {
			defer wg.Done()
			ctx := s.ctxFor(c, u)
			t0 := time.Now()
			err := c.filter.Init(ctx)
			u.addBusy(c, time.Since(t0).Seconds())
			if err != nil {
				errMu.Lock()
				if initErr == nil {
					initErr = fmt.Errorf("dist: %s copy %d init: %w", c.name, c.globalIdx, err)
				}
				errMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if initErr != nil {
		return nil, initErr
	}
	u.declMu.Lock()
	defer u.declMu.Unlock()
	out := make(map[string][2]int, len(u.decls))
	for k, v := range u.decls {
		out[k] = v
	}
	return out, nil
}

func (u *uowState) addBusy(c *dcopy, seconds float64) {
	u.statMu.Lock()
	defer u.statMu.Unlock()
	m := u.busyIdx[c.name]
	if m == nil {
		m = make(map[int]int)
		u.busyIdx[c.name] = m
	}
	slot, ok := m[c.globalIdx]
	if !ok {
		slot = len(u.busy[c.name])
		u.busy[c.name] = append(u.busy[c.name], 0)
		m[c.globalIdx] = slot
	}
	u.busy[c.name][slot] += seconds
}

// process runs every local copy's Process and propagates end-of-work.
func (s *session) process(sizes map[string]int) error {
	s.uowMu.Lock()
	u := s.uow
	s.uowMu.Unlock()
	if u == nil {
		return fmt.Errorf("dist: BeginProcess before InitUOW")
	}
	u.sizes = sizes

	var wg sync.WaitGroup
	var procErr error
	var errMu sync.Mutex
	for _, c := range s.copies {
		wg.Add(1)
		go func(c *dcopy) {
			defer wg.Done()
			ctx := s.ctxFor(c, u)
			s.w.obsrv.Emit(obs.Event{Kind: obs.KindProcessStart, Filter: c.name, Copy: c.globalIdx, Host: s.setup.Host, UOW: u.index})
			t0 := time.Now()
			err := safeProcess(c.filter, ctx)
			u.addBusy(c, time.Since(t0).Seconds())
			s.w.obsrv.Emit(obs.Event{Kind: obs.KindProcessEnd, Filter: c.name, Copy: c.globalIdx, Host: s.setup.Host, UOW: u.index})
			// End-of-work: tell every consuming host this producer copy is
			// done (on the data connections, so markers trail the data).
			for _, sp := range s.outputsOf(c.name) {
				s.broadcastProducerDone(sp, u.index)
			}
			if err != nil {
				errMu.Lock()
				// A cancelled copy is a symptom of whichever copy failed
				// first; keep the root cause even when the symptom wins the
				// race to report (e.g. a strict-ring setup error on one copy
				// cancelling its siblings).
				if procErr == nil ||
					(errors.Is(procErr, core.ErrCancelled) && !errors.Is(err, core.ErrCancelled)) {
					procErr = fmt.Errorf("dist: %s copy %d: %w", c.name, c.globalIdx, err)
				}
				errMu.Unlock()
				s.fail(err)
			}
		}(c)
	}
	wg.Wait()
	if procErr != nil {
		// Copies report ErrCancelled for failures the session already
		// recorded with attribution (a dead peer, a strict-ring setup
		// refusal): surface the recorded root cause, not the symptom.
		if ferr := s.failed(); ferr != nil && errors.Is(procErr, core.ErrCancelled) {
			return ferr
		}
		return procErr
	}
	return s.failed()
}

func safeProcess(f core.Filter, ctx core.Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("filter panicked: %v", r)
		}
	}()
	return f.Process(ctx)
}

// broadcastProducerDone notifies every host holding a consumer copy set of
// sp (including this one) that one producer copy finished.
func (s *session) broadcastProducerDone(sp core.StreamSpec, uowIdx int) {
	seen := map[string]bool{}
	for _, e := range s.placeOf[sp.To] {
		if seen[e.Host] {
			continue
		}
		seen[e.Host] = true
		if e.Host == s.setup.Host {
			s.producerDone(sp.Name, uowIdx)
			continue
		}
		c, err := s.peer(e.Host)
		if err != nil {
			// A consumer host we cannot reach would wait for this marker
			// forever; surface the failure instead of hanging the run.
			s.failTransport(e.Host, fmt.Errorf("dist: end-of-work for %s undeliverable: %w", sp.Name, err))
			continue
		}
		if err := c.send(&frame{Kind: kindProducerDone, Job: s.job, UOWIdx: uowIdx, Stream: sp.Name}); err != nil {
			s.failTransport(e.Host, fmt.Errorf("dist: end-of-work for %s undeliverable: %w", sp.Name, err))
		}
	}
}

// producerDone decrements a stream's live-producer countdown, closing the
// local queue exactly once at zero.
func (s *session) producerDone(stream string, uowIdx int) {
	s.uowMu.Lock()
	u := s.uow
	s.uowMu.Unlock()
	if u == nil || u.index != uowIdx {
		return
	}
	cd, ok := u.producersLeft[stream]
	if !ok {
		return
	}
	if cd.Done() {
		if q := u.queues[stream]; q != nil {
			close(q)
		}
	}
}

// finalize runs Finalize on local copies and returns the stats fragment.
func (s *session) finalize() (*wireStats, error) {
	s.uowMu.Lock()
	u := s.uow
	s.uowMu.Unlock()
	if u == nil {
		return nil, fmt.Errorf("dist: Finalize before InitUOW")
	}
	var wg sync.WaitGroup
	var finErr error
	var errMu sync.Mutex
	for _, c := range s.copies {
		wg.Add(1)
		go func(c *dcopy) {
			defer wg.Done()
			ctx := s.ctxFor(c, u)
			t0 := time.Now()
			err := c.filter.Finalize(ctx)
			u.addBusy(c, time.Since(t0).Seconds())
			if err != nil {
				errMu.Lock()
				if finErr == nil {
					finErr = err
				}
				errMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if finErr != nil {
		return nil, finErr
	}
	// Fold the shared runtime's per-target tallies into the wire shape.
	perTarget := make(map[string]map[string]int64, len(u.counts))
	for stream, counts := range u.counts {
		per := make(map[string]int64)
		counts.Fold(u.targetHosts[stream], per)
		perTarget[stream] = per
	}
	u.statMu.Lock()
	defer u.statMu.Unlock()
	ws := &wireStats{
		StreamBuffers: u.buffers, StreamBytes: u.bytes, StreamAcks: u.ackCount,
		PerTarget: perTarget, FilterBusy: u.busy,
	}
	return ws, nil
}

// dispatchPeer handles one inbound peer frame. Frames carry the unit of
// work they belong to; anything from a stale unit (e.g. a trailing
// acknowledgment that arrives after the next unit's state replaced the
// writer counters) is dropped — stream names repeat every unit, so
// without the check a late ack would corrupt the new unit's demand counts.
func (s *session) dispatchPeer(f *frame) {
	switch f.Kind {
	case kindData:
		if m := s.w.metrics(); m != nil {
			m.rxDataFrames.Inc()
			m.rxDataBytes.Add(int64(f.Size))
		}
		s.uowMu.Lock()
		u := s.uow
		s.uowMu.Unlock()
		if u == nil || u.index != f.UOWIdx {
			f.release()
			return
		}
		q := u.queues[f.Stream]
		if q == nil {
			f.release()
			return
		}
		var payload any
		var release func()
		if f.hasPayloadVal {
			// Ring transport: the producer's value arrived by reference —
			// no wire encode ever happened, so there is nothing to decode.
			payload = f.payloadVal
		} else {
			var err error
			payload, release, err = decodePayload(f)
			if err != nil {
				s.fail(fmt.Errorf("dist: decoding buffer on %s: %w", f.Stream, err))
				return
			}
		}
		sp, _ := s.streamByName(f.Stream)
		fromHost := s.copyHost[sp.From][f.Copy]
		d := delivery{
			buf:          core.Buffer{Payload: payload, Size: f.Size},
			stream:       f.Stream,
			fromHost:     fromHost,
			producerCopy: f.Copy,
			targetIdx:    f.Target,
			ackEvery:     f.AckN,
			release:      release,
		}
		select {
		case q <- d: // blocking here exerts TCP backpressure upstream
			// Copy -1: arrival on the host's shared copy-set queue — the
			// consuming copy is only decided at dequeue time.
			s.w.obsrv.Emit(obs.Event{Kind: obs.KindEnqueue, Filter: sp.To, Copy: -1, Host: s.setup.Host, Stream: f.Stream, Target: s.setup.Host, Bytes: f.Size, UOW: f.UOWIdx, Note: "rx"})
		case <-s.failedCh:
			if release != nil {
				release()
			}
		}
	case kindAck:
		if m := s.w.metrics(); m != nil {
			m.rxAckFrames.Inc()
		}
		s.uowMu.Lock()
		u := s.uow
		s.uowMu.Unlock()
		if u == nil || u.index != f.UOWIdx {
			return
		}
		if ch, ok := u.acks[copyStream{f.Copy, f.Stream}]; ok {
			ch.Offer(f.Target, f.AckN) // overflow: drop (conservative)
		}
	case kindProducerDone:
		s.producerDone(f.Stream, f.UOWIdx)
	}
}
