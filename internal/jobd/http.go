package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"datacutter/internal/obs"
)

// Handler returns the server's HTTP API, layered over the obs debug
// endpoint (so /healthz, /metrics, /debug/* come along for free):
//
//	POST   /jobs             submit a JobSpec (JSON body) -> {"id": N}, 202
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job snapshot (spec, state, stats when done)
//	DELETE /jobs/{id}        cancel a job -> 202 + snapshot (409 if terminal)
//	GET    /jobs/{id}/events the job's timestamped history
//	GET    /jobs/{id}/metrics the job's isolated coordinator metrics
//	POST   /workers          register a worker: {"host","addr","health"}
//	GET    /workers          list registered workers and their health
//	GET    /status           human-readable summary page
//
// Admission failures map to statuses: quota 429, draining 503, bad spec
// 400, load shedding 503 with a Retry-After header so clients back off.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "jobd: bad job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			if errors.Is(err, ErrOverload) {
				w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.shedRetryAfter().Seconds())))
			}
			http.Error(w, err.Error(), submitStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]uint64{"id": id})
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		j, err := s.Cancel(id)
		switch {
		case err == nil:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(j)
		case errors.Is(err, ErrTerminal):
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.NotFound(w, r)
		}
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Jobs())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		j, found := s.Get(id)
		if !found {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, j)
	})

	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		events, found := s.Events(id)
		if !found {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, events)
	})

	mux.HandleFunc("GET /jobs/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		m, found := s.JobMetrics(id)
		if !found {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, m)
	})

	mux.HandleFunc("POST /workers", func(w http.ResponseWriter, r *http.Request) {
		var reg struct {
			Host   string `json:"host"`
			Addr   string `json:"addr"`
			Health string `json:"health"`
		}
		if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
			http.Error(w, "jobd: bad worker registration: "+err.Error(), http.StatusBadRequest)
			return
		}
		if reg.Host == "" || reg.Addr == "" {
			http.Error(w, "jobd: worker registration needs host and addr", http.StatusBadRequest)
			return
		}
		s.RegisterWorker(reg.Host, reg.Addr, reg.Health)
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Workers())
	})

	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		jobs := s.Jobs()
		counts := map[State]int{}
		for _, j := range jobs {
			counts[j.State]++
		}
		fmt.Fprintf(w, "datacutter job server\n\njobs: %d queued, %d backoff, %d running, %d done, %d failed, %d cancelled\n\n",
			counts[StateQueued], counts[StateBackoff], counts[StateRunning],
			counts[StateDone], counts[StateFailed], counts[StateCancelled])
		for _, wk := range s.Workers() {
			health := "healthy"
			switch {
			case wk.Quarantined:
				health = fmt.Sprintf("QUARANTINED (strikes=%d, probation at %s)",
					wk.Strikes, wk.ProbationAt.Format("15:04:05"))
			case !wk.Healthy:
				health = "UNHEALTHY"
			case wk.Strikes > 0:
				health = fmt.Sprintf("healthy (strikes=%d)", wk.Strikes)
			}
			fmt.Fprintf(w, "worker %-10s %-21s %s\n", wk.Host, wk.Addr, health)
		}
		fmt.Fprintln(w)
		for _, j := range jobs {
			fmt.Fprintf(w, "job %-4d %-8s tenant=%-10s %s\n", j.ID, j.State, orDefault(j.Spec.Tenant), j.Spec.Name)
		}
	})

	// Everything else — /healthz, /metrics (the server's own registry),
	// /debug/pprof — falls through to the obs debug handler.
	mux.Handle("/", obs.Handler(s.reg, nil))
	return mux
}

func orDefault(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

func jobID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "jobd: bad job id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverload):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
