package jobd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// The job journal is a write-ahead JSONL log: one record per line, appended
// and fsynced before the state change it describes takes effect. Four
// record kinds cover a job's lifecycle:
//
//	{"kind":"submit","id":1,"time":...,"spec":{...}}
//	{"kind":"start","id":1,"time":...}
//	{"kind":"retry","id":1,"time":...,"attempt":2,"not_before_ms":...}
//	{"kind":"done","id":1,"time":...,"ok":true}
//
// Replay on startup re-queues every job whose submit has no matching done:
// a job that was merely queued is resubmitted as-is, a job that was in
// flight when the process died is re-run from scratch — per-UOW filter
// state is rebuilt by Init under the paper's transparent-copy semantics, so
// re-running a whole job is the coarse-grained version of the UOW-retry
// recovery the coordinator already performs — and a job in retry backoff
// resumes its journaled schedule: the attempt count and the absolute
// not-before time survive the restart, so the backoff neither resets nor
// double-fires.
//
// The log is compacted — rewritten as one snapshot per live job — on
// startup recovery and whenever it outgrows Config.JournalCompactBytes;
// without that it grows without bound across restarts.
type journal struct {
	f    *os.File
	w    *bufio.Writer
	path string
	// size is the current log length in bytes, maintained across appends;
	// dirty means replay found terminal records worth compacting away.
	size  int64
	dirty bool
}

type journalRec struct {
	Kind string    `json:"kind"`
	ID   uint64    `json:"id"`
	Time time.Time `json:"time"`
	Spec *JobSpec  `json:"spec,omitempty"`
	OK   bool      `json:"ok,omitempty"`
	Err  string    `json:"err,omitempty"`
	// Retry records: the attempt count after the failure and the absolute
	// earliest re-dispatch time (Unix milliseconds, so zero is omittable).
	Attempt     int   `json:"attempt,omitempty"`
	NotBeforeMS int64 `json:"not_before_ms,omitempty"`
}

// replayedJob is one journaled job the previous process never finished.
type replayedJob struct {
	ID        uint64
	Spec      JobSpec
	Submitted time.Time
	Started   bool // it was in flight, not just queued
	// Attempts and NotBefore resume a retry-backoff schedule (zero when the
	// job never failed).
	Attempts  int
	NotBefore time.Time
}

// openJournal opens (creating if absent) the journal at path, replays it,
// and returns the jobs to re-queue in id order. Truncated or corrupt
// trailing lines — a crash mid-append — are skipped, not fatal.
func openJournal(path string) (*journal, []replayedJob, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobd: opening journal: %w", err)
	}
	type entry struct {
		spec      *JobSpec
		submitted time.Time
		started   bool
		done      bool
		attempts  int
		notBefore time.Time
	}
	jobs := map[uint64]*entry{}
	dirty := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r journalRec
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn tail write; later records would not exist
		}
		switch r.Kind {
		case "submit":
			if r.Spec != nil {
				jobs[r.ID] = &entry{spec: r.Spec, submitted: r.Time}
			}
		case "start":
			if e := jobs[r.ID]; e != nil {
				e.started = true
			}
		case "retry":
			if e := jobs[r.ID]; e != nil {
				if e.started {
					dirty = true // supersedes the start record it follows
				}
				e.started = false // the failed run is over; it is queued again
				e.attempts = r.Attempt
				e.notBefore = time.UnixMilli(r.NotBeforeMS)
			}
		case "done":
			if e := jobs[r.ID]; e != nil {
				e.done = true
			}
			dirty = true
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobd: reading journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobd: sizing journal: %w", err)
	}
	var replay []replayedJob
	for id, e := range jobs {
		if e.done {
			continue
		}
		replay = append(replay, replayedJob{
			ID: id, Spec: *e.spec, Submitted: e.submitted, Started: e.started,
			Attempts: e.attempts, NotBefore: e.notBefore,
		})
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].ID < replay[j].ID })
	return &journal{f: f, w: bufio.NewWriter(f), path: path, size: st.Size(), dirty: dirty}, replay, nil
}

// append writes one record and syncs it to disk; the caller holds the
// server mutex, which is the journal's write ordering.
func (j *journal) append(r journalRec) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.size += int64(len(b)) + 1
	return j.f.Sync()
}

func (j *journal) submit(id uint64, t time.Time, spec *JobSpec) error {
	return j.append(journalRec{Kind: "submit", ID: id, Time: t, Spec: spec})
}

func (j *journal) start(id uint64, t time.Time) error {
	return j.append(journalRec{Kind: "start", ID: id, Time: t})
}

func (j *journal) retry(id uint64, t time.Time, attempt int, notBefore time.Time, cause error) error {
	r := journalRec{Kind: "retry", ID: id, Time: t, Attempt: attempt, NotBeforeMS: notBefore.UnixMilli()}
	if cause != nil {
		r.Err = cause.Error()
	}
	return j.append(r)
}

func (j *journal) done(id uint64, t time.Time, runErr error) error {
	r := journalRec{Kind: "done", ID: id, Time: t, OK: runErr == nil}
	if runErr != nil {
		r.Err = runErr.Error()
	}
	return j.append(r)
}

// compact atomically replaces the log with the given snapshot records: a
// temp file in the same directory, fsynced, then renamed over the old log.
// On any error the existing journal stays in service untouched.
func (j *journal) compact(recs []journalRec) error {
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobd: compacting journal: %w", err)
	}
	w := bufio.NewWriter(f)
	size := int64(0)
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		size += int64(len(b)) + 1
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobd: swapping compacted journal: %w", err)
	}
	// Re-point the append side at the new log.
	j.w.Flush()
	j.f.Close()
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobd: reopening compacted journal: %w", err)
	}
	j.f, j.w, j.size, j.dirty = nf, bufio.NewWriter(nf), size, false
	return nil
}

func (j *journal) close() {
	j.w.Flush()
	j.f.Close()
}
