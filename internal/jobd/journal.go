package jobd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// The job journal is a write-ahead JSONL log: one record per line, appended
// and fsynced before the state change it describes takes effect. Three
// record kinds cover a job's lifecycle:
//
//	{"kind":"submit","id":1,"time":...,"spec":{...}}
//	{"kind":"start","id":1,"time":...}
//	{"kind":"done","id":1,"time":...,"ok":true}
//
// Replay on startup re-queues every job whose submit has no matching done:
// a job that was merely queued is resubmitted as-is, and a job that was in
// flight when the process died is re-run from scratch — per-UOW filter
// state is rebuilt by Init under the paper's transparent-copy semantics, so
// re-running a whole job is the coarse-grained version of the UOW-retry
// recovery the coordinator already performs.
type journal struct {
	f    *os.File
	w    *bufio.Writer
	path string
}

type journalRec struct {
	Kind string    `json:"kind"`
	ID   uint64    `json:"id"`
	Time time.Time `json:"time"`
	Spec *JobSpec  `json:"spec,omitempty"`
	OK   bool      `json:"ok,omitempty"`
	Err  string    `json:"err,omitempty"`
}

// replayedJob is one journaled job the previous process never finished.
type replayedJob struct {
	ID        uint64
	Spec      JobSpec
	Submitted time.Time
	Started   bool // it was in flight, not just queued
}

// openJournal opens (creating if absent) the journal at path, replays it,
// and returns the jobs to re-queue in id order. Truncated or corrupt
// trailing lines — a crash mid-append — are skipped, not fatal.
func openJournal(path string) (*journal, []replayedJob, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobd: opening journal: %w", err)
	}
	type entry struct {
		spec      *JobSpec
		submitted time.Time
		started   bool
		done      bool
	}
	jobs := map[uint64]*entry{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r journalRec
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn tail write; later records would not exist
		}
		switch r.Kind {
		case "submit":
			if r.Spec != nil {
				jobs[r.ID] = &entry{spec: r.Spec, submitted: r.Time}
			}
		case "start":
			if e := jobs[r.ID]; e != nil {
				e.started = true
			}
		case "done":
			if e := jobs[r.ID]; e != nil {
				e.done = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobd: reading journal: %w", err)
	}
	var replay []replayedJob
	for id, e := range jobs {
		if e.done {
			continue
		}
		replay = append(replay, replayedJob{
			ID: id, Spec: *e.spec, Submitted: e.submitted, Started: e.started,
		})
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].ID < replay[j].ID })
	return &journal{f: f, w: bufio.NewWriter(f), path: path}, replay, nil
}

// append writes one record and syncs it to disk; the caller holds the
// server mutex, which is the journal's write ordering.
func (j *journal) append(r journalRec) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) submit(id uint64, t time.Time, spec *JobSpec) error {
	return j.append(journalRec{Kind: "submit", ID: id, Time: t, Spec: spec})
}

func (j *journal) start(id uint64, t time.Time) error {
	return j.append(journalRec{Kind: "start", ID: id, Time: t})
}

func (j *journal) done(id uint64, t time.Time, runErr error) error {
	r := journalRec{Kind: "done", ID: id, Time: t, OK: runErr == nil}
	if runErr != nil {
		r.Err = runErr.Error()
	}
	return j.append(r)
}

func (j *journal) close() {
	j.w.Flush()
	j.f.Close()
}
