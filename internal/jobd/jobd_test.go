package jobd_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"datacutter/internal/conformance"
	"datacutter/internal/dist"
	"datacutter/internal/jobd"
	"datacutter/internal/leakcheck"
	"datacutter/internal/obs"
)

// startMesh boots n persistent in-process workers named w0..w<n-1> and
// returns their names, their dist addresses, and a registration function.
func startMesh(t *testing.T, n int) ([]string, []string, func(s *jobd.Server)) {
	t.Helper()
	names := make([]string, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(w.Close)
		names[i] = fmt.Sprintf("w%d", i)
		addrs[i] = w.Addr()
	}
	return names, addrs, func(s *jobd.Server) {
		for i := range names {
			s.RegisterWorker(names[i], addrs[i], "")
		}
	}
}

func newServer(t *testing.T, cfg jobd.Config) *jobd.Server {
	t.Helper()
	s, err := jobd.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// confJobSpec packages a conformance DistJob as a jobd submission.
func confJobSpec(j *conformance.DistJob, tenant, name string) jobd.JobSpec {
	return jobd.JobSpec{
		Name: name, Tenant: tenant,
		Graph: j.Graph, Placement: j.Placement,
		Options: j.Options(), UOWs: j.UOWs,
	}
}

// Two seeded conformance pipelines submitted to one server over one shared
// worker pair: both must complete, both must satisfy the full delivery
// oracles against their own recorders, and each job's isolated metrics
// registry must reflect only its own units of work.
func TestConcurrentJobsOracleClean(t *testing.T) {
	leakcheck.Check(t)
	mesh, _, register := startMesh(t, 2)
	s := newServer(t, jobd.Config{})
	register(s)

	seeds := []int64{11, 23}
	jobs := make([]*conformance.DistJob, len(seeds))
	ids := make([]uint64, len(seeds))
	for i, seed := range seeds {
		spec := conformance.Generate(seed, conformance.GenConfig{MaxHosts: 2})
		j, err := conformance.NewDistJob(spec, mesh)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		jobs[i] = j
		id, err := s.Submit(confJobSpec(j, fmt.Sprintf("tenant%d", i), fmt.Sprintf("seed%d", seed)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	for i, id := range ids {
		res, err := s.Await(id, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.State != jobd.StateDone {
			t.Fatalf("job %d state %s: %s", id, res.State, res.Err)
		}
		if v := jobs[i].Check(res.Stats); len(v) > 0 {
			t.Errorf("job %d (seed %d) violated %d oracle(s):\n%v", id, seeds[i], len(v), v)
		}
		// Per-job metrics isolation: each job's registry counted exactly its
		// own units of work, not the other job's.
		m, ok := s.JobMetrics(id)
		if !ok {
			t.Fatalf("no metrics for job %d", id)
		}
		h, ok := m["coord.uow_seconds"].(obs.HistogramSnapshot)
		if !ok {
			t.Fatalf("job %d: no coord.uow_seconds histogram (metrics: %v)", id, m)
		}
		if want := int64(jobs[i].Spec.UOWs); h.Count != want {
			t.Errorf("job %d counted %d UOWs in its registry, want %d", id, h.Count, want)
		}
	}
}

// A server killed with a queued job must re-run it from the journal after
// restart; a finished job must not run again.
func TestJournalRestartRecovery(t *testing.T) {
	leakcheck.Check(t)
	mesh, _, register := startMesh(t, 2)
	journal := filepath.Join(t.TempDir(), "jobs.jsonl")

	spec := conformance.Generate(7, conformance.GenConfig{MaxHosts: 2})
	j, err := conformance.NewDistJob(spec, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// First server: submit but register no workers, so the job stays
	// queued; then die (Close without Drain — an unclean stop).
	s1, err := jobd.NewServer(jobd.Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(confJobSpec(j, "", "restartme"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s1.Get(id); got.State != jobd.StateQueued {
		t.Fatalf("job state %s before workers exist, want queued", got.State)
	}
	s1.Close()

	// Second server: the journaled job is re-queued and runs to completion
	// once the workers register.
	s2 := newServer(t, jobd.Config{JournalPath: journal})
	got, ok := s2.Get(id)
	if !ok {
		t.Fatalf("restarted server does not know job %d", id)
	}
	if got.State != jobd.StateQueued {
		t.Fatalf("replayed job state %s, want queued", got.State)
	}
	if got.Spec.Name != "restartme" {
		t.Fatalf("replayed spec lost its name: %+v", got.Spec)
	}
	register(s2)
	res, err := s2.Await(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateDone {
		t.Fatalf("replayed job state %s: %s", res.State, res.Err)
	}
	if v := j.Check(res.Stats); len(v) > 0 {
		t.Errorf("replayed job violated oracles:\n%v", v)
	}
	if !s2.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	s2.Close()

	// Third server: the done record holds; nothing is re-queued.
	s3 := newServer(t, jobd.Config{JournalPath: journal})
	if _, ok := s3.Get(id); ok {
		t.Fatal("finished job re-queued after a clean run")
	}
}

func TestQuotaAdmission(t *testing.T) {
	// No workers registered: submissions queue up and stay queued.
	s := newServer(t, jobd.Config{
		JournalPath: filepath.Join(t.TempDir(), "jobs.jsonl"),
		Quotas: map[string]jobd.Quota{
			"small": {MaxQueued: 2},
			"tiny":  {MaxQueuedBytes: 1},
		},
	})
	spec := conformance.Generate(3, conformance.GenConfig{MaxHosts: 2})
	j, err := conformance.NewDistJob(spec, []string{"w0", "w1"})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(confJobSpec(j, "small", "ok")); err != nil {
			t.Fatalf("submission %d under quota rejected: %v", i, err)
		}
	}
	if _, err := s.Submit(confJobSpec(j, "small", "over")); !errors.Is(err, jobd.ErrQuota) {
		t.Fatalf("queue-depth overflow: err = %v, want ErrQuota", err)
	}
	// A different tenant is unaffected by small's quota.
	if _, err := s.Submit(confJobSpec(j, "other", "fine")); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// Byte budget: this spec encodes far more than one byte.
	if _, err := s.Submit(confJobSpec(j, "tiny", "big")); !errors.Is(err, jobd.ErrQuota) {
		t.Fatalf("byte-budget overflow: err = %v, want ErrQuota", err)
	}
	// Admission metrics moved.
	reg := s.Metrics()
	if got := reg["jobd.jobs_rejected"].(int64); got != 2 {
		t.Fatalf("jobd.jobs_rejected = %d, want 2", got)
	}
	if got := reg["jobd.queue_depth"].(int64); got != 3 {
		t.Fatalf("jobd.queue_depth = %d, want 3", got)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	s := newServer(t, jobd.Config{})
	if _, err := s.Submit(jobd.JobSpec{}); !errors.Is(err, jobd.ErrInvalid) {
		t.Fatalf("empty spec: err = %v, want ErrInvalid", err)
	}
}

func TestDrainRefusesSubmissions(t *testing.T) {
	leakcheck.Check(t)
	s := newServer(t, jobd.Config{})
	if !s.Drain(time.Second) {
		t.Fatal("idle server did not drain")
	}
	spec := conformance.Generate(5, conformance.GenConfig{MaxHosts: 2})
	j, err := conformance.NewDistJob(spec, []string{"w0", "w1"})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := s.Submit(confJobSpec(j, "", "late")); !errors.Is(err, jobd.ErrDraining) {
		t.Fatalf("submission while draining: err = %v, want ErrDraining", err)
	}
}

// Per-tenant concurrency: with MaxRunning 1 for the tenant and two jobs
// queued, the second only runs after the first finishes.
func TestTenantMaxRunningSerializes(t *testing.T) {
	leakcheck.Check(t)
	mesh, _, register := startMesh(t, 2)
	s := newServer(t, jobd.Config{
		Quotas: map[string]jobd.Quota{"serial": {MaxRunning: 1}},
	})
	register(s)

	var ids []uint64
	var jobs []*conformance.DistJob
	for _, seed := range []int64{31, 37} {
		spec := conformance.Generate(seed, conformance.GenConfig{MaxHosts: 2})
		j, err := conformance.NewDistJob(spec, mesh)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		jobs = append(jobs, j)
		id, err := s.Submit(confJobSpec(j, "serial", "s"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var finished [2]time.Time
	var started [2]time.Time
	for i, id := range ids {
		res, err := s.Await(id, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.State != jobd.StateDone {
			t.Fatalf("job %d state %s: %s", id, res.State, res.Err)
		}
		if v := jobs[i].Check(res.Stats); len(v) > 0 {
			t.Errorf("job %d violated oracles:\n%v", id, v)
		}
		started[i], finished[i] = res.Started, res.Finished
	}
	if started[1].Before(finished[0]) {
		t.Fatalf("tenant limited to 1 running job, but job 2 started %v before job 1 finished %v",
			started[1], finished[0])
	}
}

// Drain with a job in flight: the running job completes, a submission
// racing the drain is refused, and Drain reports a clean stop.
func TestDrainCompletesInFlight(t *testing.T) {
	leakcheck.Check(t)
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "")
	s := newServer(t, jobd.Config{})
	s.RegisterWorker("a", wa.Addr(), "")
	s.RegisterWorker("b", wb.Addr(), "")

	// ~500ms of slow writes: long enough to drain around.
	id, err := s.Submit(intJobSpec("jobdtest.slowsrc", 10, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", 15*time.Second, func() bool {
		j, _ := s.Get(id)
		return j.State == jobd.StateRunning
	})
	if !s.Drain(30 * time.Second) {
		t.Fatal("drain timed out with one short job in flight")
	}
	res, ok := s.Get(id)
	if !ok || res.State != jobd.StateDone {
		t.Fatalf("in-flight job after drain: state %s err %q", res.State, res.Err)
	}
	if _, err := s.Submit(intJobSpec("jobdtest.src", 5, "a", "b")); !errors.Is(err, jobd.ErrDraining) {
		t.Fatalf("submission after drain: err = %v, want ErrDraining", err)
	}
}

// The dcworker second-signal path at the library level: Drain with active
// sessions times out (reporting the unclean state), then Close hard-aborts
// them — the job fails rather than hanging.
func TestWorkerDrainTimeoutThenCloseAborts(t *testing.T) {
	leakcheck.Check(t)
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "")
	s := newServer(t, jobd.Config{})
	s.RegisterWorker("a", wa.Addr(), "")
	s.RegisterWorker("b", wb.Addr(), "")

	spec := intJobSpec("jobdtest.slowsrc", 40, "a", "b") // ~2s of writes
	spec.MaxRetries = -1                                 // keep the failure terminal
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", 15*time.Second, func() bool {
		j, _ := s.Get(id)
		return j.State == jobd.StateRunning
	})
	// First signal: graceful drain, but the session outlives the timeout.
	if wa.Drain(100 * time.Millisecond) {
		t.Fatal("drain reported clean with a session mid-stream")
	}
	// Second signal: hard abort.
	wa.Close()
	res, err := s.Await(id, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateFailed {
		t.Fatalf("job after worker hard-abort: state %s err %q", res.State, res.Err)
	}
}
