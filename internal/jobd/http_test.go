package jobd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"datacutter/internal/conformance"
	"datacutter/internal/jobd"
)

func httpGet(t *testing.T, url string, want int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, want, body)
	}
	return body
}

func httpPost(t *testing.T, url string, v any, want int) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s = %d, want %d: %s", url, resp.StatusCode, want, body)
	}
	return body
}

// The full HTTP surface: register workers, submit a job, watch it finish,
// read its events, and hit the layered obs endpoints.
func TestHTTPAPIEndToEnd(t *testing.T) {
	mesh, meshAddrs, _ := startMesh(t, 2)
	s := newServer(t, jobd.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Liveness comes from the layered obs handler.
	if got := string(httpGet(t, ts.URL+"/healthz", http.StatusOK)); got != "ok\n" {
		t.Fatalf("/healthz = %q", got)
	}

	spec := conformance.Generate(41, conformance.GenConfig{MaxHosts: 2})
	j, err := conformance.NewDistJob(spec, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Register both workers over HTTP.
	for i, addr := range meshAddrs {
		httpPost(t, ts.URL+"/workers", map[string]string{
			"host": mesh[i], "addr": addr,
		}, http.StatusNoContent)
	}
	var workers []struct {
		Host    string `json:"host"`
		Healthy bool   `json:"healthy"`
	}
	if err := json.Unmarshal(httpGet(t, ts.URL+"/workers", http.StatusOK), &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 || !workers[0].Healthy || !workers[1].Healthy {
		t.Fatalf("workers = %+v", workers)
	}

	var sub struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(httpPost(t, ts.URL+"/jobs",
		confJobSpec(j, "web", "via-http"), http.StatusAccepted), &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == 0 {
		t.Fatal("submission returned id 0")
	}

	jobURL := fmt.Sprintf("%s/jobs/%d", ts.URL, sub.ID)
	deadline := time.Now().Add(30 * time.Second)
	var got jobd.Job
	for {
		if err := json.Unmarshal(httpGet(t, jobURL, http.StatusOK), &got); err != nil {
			t.Fatal(err)
		}
		if got.State == jobd.StateDone || got.State == jobd.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.State != jobd.StateDone {
		t.Fatalf("job failed: %s", got.Err)
	}
	if got.Stats == nil {
		t.Fatal("done job carries no stats")
	}
	if v := j.Check(got.Stats); len(v) > 0 {
		t.Errorf("job run over HTTP violated oracles:\n%v", v)
	}

	var events []jobd.Event
	if err := json.Unmarshal(httpGet(t, jobURL+"/events", http.StatusOK), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 { // submitted, started, done
		t.Fatalf("events = %+v", events)
	}

	httpGet(t, jobURL+"/metrics", http.StatusOK)
	httpGet(t, ts.URL+"/status", http.StatusOK)
	httpGet(t, ts.URL+"/metrics", http.StatusOK)
	httpGet(t, ts.URL+"/jobs/99999", http.StatusNotFound)

	// Bad submissions map to 400.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}
	httpPost(t, ts.URL+"/jobs", jobd.JobSpec{}, http.StatusBadRequest)
}

// Quota overflows surface as 429 over HTTP.
func TestHTTPQuotaStatus(t *testing.T) {
	s := newServer(t, jobd.Config{
		Quotas: map[string]jobd.Quota{"q": {MaxQueued: 1}},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := conformance.Generate(43, conformance.GenConfig{MaxHosts: 2})
	j, err := conformance.NewDistJob(spec, []string{"w0", "w1"})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	httpPost(t, ts.URL+"/jobs", confJobSpec(j, "q", "one"), http.StatusAccepted)
	httpPost(t, ts.URL+"/jobs", confJobSpec(j, "q", "two"), http.StatusTooManyRequests)
}
