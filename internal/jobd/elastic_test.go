package jobd_test

import (
	"errors"
	"testing"
	"time"

	"datacutter/internal/conformance"
	"datacutter/internal/elastic"
	"datacutter/internal/jobd"
	"datacutter/internal/leakcheck"
)

// scaleTotals returns the total copies of the base placement and the peak
// total across every boundary of the scale schedule — computed here,
// independently of the server's admission arithmetic.
func scaleTotals(placement []conformance.Place, steps []elastic.ScaleStep) (base, peak int) {
	entries := make([]elastic.Entry, 0, len(placement))
	for _, p := range placement {
		entries = append(entries, elastic.Entry{Filter: p.Filter, Host: p.Host, Copies: p.Copies})
		base += p.Copies
	}
	peak = base
	for _, st := range steps {
		n := 0
		for _, e := range elastic.EffectivePlacement(entries, steps, st.BeforeUOW) {
			n += e.Copies
		}
		if n > peak {
			peak = n
		}
	}
	return base, peak
}

// A tenant's MaxCopies quota bounds the peak of a job's elastic scale
// schedule at admission: a schedule that would scale past the budget is
// rejected with ErrQuota before it is journaled; within budget the schedule
// rides the JobSpec to the coordinator, the session rescales at its
// boundaries (visible in the job's isolated metrics), and the run stays
// oracle-clean.
func TestElasticCopyBudget(t *testing.T) {
	leakcheck.Check(t)
	mesh, _, register := startMesh(t, 2)

	// First seed whose schedule peaks strictly above the base placement —
	// the generator guarantees a scale-up per entry, but a same-boundary
	// scale-down on a second entry can offset the total.
	var spec *conformance.Spec
	base, peak := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		s := conformance.Generate(seed, conformance.GenConfig{MaxHosts: 2, Elastic: true})
		if b, p := scaleTotals(s.Placement, s.Scale); p > b {
			spec, base, peak = s, b, p
			break
		}
	}
	if spec == nil {
		t.Fatal("no seed in 0..19 produced a schedule peaking above its base placement")
	}
	t.Logf("base %d copies, schedule peaks at %d", base, peak)

	j, err := conformance.NewDistJob(spec, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	s := newServer(t, jobd.Config{Quotas: map[string]jobd.Quota{
		"capped": {MaxCopies: peak - 1},
		"roomy":  {MaxCopies: peak},
	}})
	register(s)

	if _, err := s.Submit(confJobSpec(j, "capped", "over-budget")); !errors.Is(err, jobd.ErrQuota) {
		t.Fatalf("submit over copy budget: err = %v, want ErrQuota", err)
	}

	id, err := s.Submit(confJobSpec(j, "roomy", "in-budget"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Await(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateDone {
		t.Fatalf("job state %s: %s", res.State, res.Err)
	}
	if v := j.Check(res.Stats); len(v) > 0 {
		t.Fatalf("elastic job violated %d oracle(s):\n%v", len(v), v)
	}
	m, ok := s.JobMetrics(id)
	if !ok {
		t.Fatal("no metrics for elastic job")
	}
	if added, _ := m[elastic.MetricCopiesAdded].(int64); added < 1 {
		t.Fatalf("elastic.copies_added = %v, want >= 1", m[elastic.MetricCopiesAdded])
	}
	if removed, _ := m[elastic.MetricCopiesRemoved].(int64); removed < 1 {
		t.Fatalf("elastic.copies_removed = %v, want >= 1", m[elastic.MetricCopiesRemoved])
	}
}
