// Package jobd is the persistent multi-tenant job service over a shared
// dist worker mesh: a long-lived server accepts many concurrent pipeline
// submissions, multiplexes them onto persistent dcworker processes (each
// job's session is namespaced by the job id every wire frame carries), and
// survives its own restarts through a write-ahead job journal.
//
// The server is the coordinator for every job it runs: a submitted JobSpec
// carries the serializable pieces of a dist run (graph, placement, options,
// pre-encoded units of work), admission control enforces per-tenant quotas
// on queue depth, queued bytes, and concurrency, and a FIFO dispatcher
// starts jobs as quota and worker health allow. Unit-of-work descriptors
// travel as dist.RawUOW, so the server never needs the submitting
// application's Go types registered — only the workers do.
package jobd

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/obs"
)

// Quota bounds one tenant's use of the service. Zero fields are unlimited.
type Quota struct {
	MaxRunning     int   // concurrent running jobs
	MaxQueued      int   // jobs waiting in the queue
	MaxQueuedBytes int64 // total encoded bytes (UOWs + filter params) queued
}

// Config configures a Server. Zero values select the defaults noted.
type Config struct {
	// MaxRunning caps concurrently running jobs across all tenants (4).
	MaxRunning int
	// DefaultQuota applies to tenants not listed in Quotas.
	DefaultQuota Quota
	// Quotas overrides the default per tenant name.
	Quotas map[string]Quota
	// JournalPath enables the write-ahead job journal (JSONL). Empty
	// disables persistence; a restarted server then starts empty.
	JournalPath string
	// ProbeInterval is the worker health-probe period (2s).
	ProbeInterval time.Duration
	// Registry receives the server's metrics (a fresh one when nil).
	Registry *obs.Registry
}

func (c Config) maxRunning() int {
	if c.MaxRunning > 0 {
		return c.MaxRunning
	}
	return 4
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	return 2 * time.Second
}

func (c Config) quotaFor(tenant string) Quota {
	if q, ok := c.Quotas[tenant]; ok {
		return q
	}
	return c.DefaultQuota
}

// JobSpec is one submitted pipeline: everything the server needs to run it
// as a dist coordinator. All fields are JSON-serializable — the spec is
// journaled verbatim and travels over the HTTP API.
type JobSpec struct {
	Name      string                `json:"name,omitempty"`
	Tenant    string                `json:"tenant,omitempty"`
	Graph     dist.GraphSpec        `json:"graph"`
	Placement []dist.PlacementEntry `json:"placement"`
	Options   dist.Options          `json:"options"`
	// UOWs are pre-encoded unit-of-work descriptors (dist.EncodeUOW);
	// empty runs a single nil unit of work.
	UOWs []dist.RawUOW `json:"uows,omitempty"`
}

// bytes is the admission-control size of the spec: encoded work plus
// filter params — the parts that scale with submission size.
func (sp *JobSpec) bytes() int64 {
	n := int64(0)
	for _, u := range sp.UOWs {
		n += int64(len(u))
	}
	for _, f := range sp.Graph.Filters {
		n += int64(len(f.Params))
	}
	return n
}

// hosts returns the distinct placement hosts, sorted.
func (sp *JobSpec) hosts() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range sp.Placement {
		if !seen[p.Host] {
			seen[p.Host] = true
			out = append(out, p.Host)
		}
	}
	sort.Strings(out)
	return out
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Event is one timestamped line of a job's history.
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// Job is an API snapshot of one job.
type Job struct {
	ID        uint64      `json:"id"`
	Spec      JobSpec     `json:"spec"`
	State     State       `json:"state"`
	Err       string      `json:"err,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Started   time.Time   `json:"started"`
	Finished  time.Time   `json:"finished"`
	Stats     *core.Stats `json:"stats,omitempty"`
}

// job is the server's mutable record; guarded by Server.mu.
type job struct {
	id        uint64
	spec      JobSpec
	state     State
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	stats     *core.Stats
	events    []Event
	// reg collects the job's coordinator-side metrics, isolated per job.
	reg *obs.Registry
}

func (j *job) snapshot() Job {
	return Job{
		ID: j.id, Spec: j.spec, State: j.state, Err: j.err,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Stats: j.stats,
	}
}

// workerInfo is one registered persistent worker.
type workerInfo struct {
	Host string `json:"host"`
	// Addr is the worker's dist (TCP) listen address.
	Addr string `json:"addr"`
	// Health is the worker's obs debug address; its /healthz endpoint is
	// the liveness probe. Empty falls back to probing Addr with a TCP dial.
	Health     string    `json:"health,omitempty"`
	Healthy    bool      `json:"healthy"`
	Registered time.Time `json:"registered"`
	LastProbe  time.Time `json:"last_probe"`
}

// serverMetrics are the server's resolved metric handles.
type serverMetrics struct {
	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	depth     *obs.Gauge
	running   *obs.Gauge
	healthy   *obs.Gauge
}

// Server is the job service. Create with NewServer, stop with Drain
// followed by Close.
type Server struct {
	cfg Config
	reg *obs.Registry
	m   serverMetrics
	jnl *journal

	mu        sync.Mutex
	jobs      map[uint64]*job
	queue     []uint64 // FIFO of queued job ids
	nextID    uint64
	running   int
	tenantRun map[string]int
	workers   map[string]*workerInfo
	draining  bool

	wake     chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	// loops tracks the dispatcher and prober; jobsWG the running jobs.
	loops  sync.WaitGroup
	jobsWG sync.WaitGroup
}

// NewServer builds the service, replays the journal (re-queueing every job
// the previous process never finished), and starts the dispatcher and the
// worker health prober.
func NewServer(cfg Config) (*Server, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		jobs:      make(map[uint64]*job),
		tenantRun: make(map[string]int),
		workers:   make(map[string]*workerInfo),
		nextID:    1,
		wake:      make(chan struct{}, 1),
		stopped:   make(chan struct{}),
	}
	s.m = serverMetrics{
		submitted: reg.Counter("jobd.jobs_submitted"),
		rejected:  reg.Counter("jobd.jobs_rejected"),
		completed: reg.Counter("jobd.jobs_completed"),
		failed:    reg.Counter("jobd.jobs_failed"),
		depth:     reg.Gauge("jobd.queue_depth"),
		running:   reg.Gauge("jobd.jobs_running"),
		healthy:   reg.Gauge("jobd.workers_healthy"),
	}
	if cfg.JournalPath != "" {
		jnl, replay, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.jnl = jnl
		for _, r := range replay {
			j := &job{
				id: r.ID, spec: r.Spec, state: StateQueued,
				submitted: r.Submitted, reg: obs.NewRegistry(),
			}
			j.events = append(j.events, Event{Time: r.Submitted, Msg: "submitted"})
			if r.Started {
				j.events = append(j.events, Event{Time: time.Now(), Msg: "re-queued after server restart (was in flight)"})
			} else {
				j.events = append(j.events, Event{Time: time.Now(), Msg: "re-queued after server restart"})
			}
			s.jobs[r.ID] = j
			s.queue = append(s.queue, r.ID)
			if r.ID >= s.nextID {
				s.nextID = r.ID + 1
			}
		}
		s.m.depth.Set(int64(len(s.queue)))
	}
	s.loops.Add(2)
	go s.dispatch()
	go s.probe()
	return s, nil
}

// Errors the admission path returns; the HTTP layer maps them to statuses.
var (
	ErrDraining = fmt.Errorf("jobd: server is draining")
	ErrQuota    = fmt.Errorf("jobd: tenant quota exceeded")
	ErrInvalid  = fmt.Errorf("jobd: invalid job spec")
)

// Submit runs admission control, journals the job, and queues it. The
// returned id is the job's identity everywhere: the API, the journal, and
// the JobID on every wire frame of its eventual session.
func (s *Server) Submit(spec JobSpec) (uint64, error) {
	if len(spec.Graph.Filters) == 0 || len(spec.Placement) == 0 {
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: graph and placement must be non-empty", ErrInvalid)
	}
	size := spec.bytes()
	q := s.cfg.quotaFor(spec.Tenant)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.rejected.Inc()
		return 0, ErrDraining
	}
	queued, queuedBytes := 0, int64(0)
	for _, id := range s.queue {
		if j := s.jobs[id]; j.spec.Tenant == spec.Tenant {
			queued++
			queuedBytes += j.spec.bytes()
		}
	}
	if q.MaxQueued > 0 && queued >= q.MaxQueued {
		s.mu.Unlock()
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: tenant %q has %d jobs queued (max %d)", ErrQuota, spec.Tenant, queued, q.MaxQueued)
	}
	if q.MaxQueuedBytes > 0 && queuedBytes+size > q.MaxQueuedBytes {
		s.mu.Unlock()
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: tenant %q queued bytes %d + %d exceed %d", ErrQuota, spec.Tenant, queuedBytes, size, q.MaxQueuedBytes)
	}
	id := s.nextID
	s.nextID++
	now := time.Now()
	j := &job{id: id, spec: spec, state: StateQueued, submitted: now, reg: obs.NewRegistry()}
	j.events = append(j.events, Event{Time: now, Msg: "submitted"})
	if s.jnl != nil {
		if err := s.jnl.submit(id, now, &spec); err != nil {
			s.mu.Unlock()
			s.m.rejected.Inc()
			return 0, fmt.Errorf("jobd: journaling submission: %w", err)
		}
	}
	s.jobs[id] = j
	s.queue = append(s.queue, id)
	s.m.depth.Set(int64(len(s.queue)))
	s.tenantGauges(spec.Tenant)
	s.mu.Unlock()

	s.m.submitted.Inc()
	s.kick()
	return id, nil
}

// kick nudges the dispatcher (non-blocking: one pending wake is enough).
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch starts queued jobs as quota and worker health allow, in FIFO
// order per scan.
func (s *Server) dispatch() {
	defer s.loops.Done()
	for {
		select {
		case <-s.wake:
		case <-s.stopped:
			return
		}
		for {
			j := s.takeRunnable()
			if j == nil {
				break
			}
			s.jobsWG.Add(1)
			go s.runJob(j)
		}
	}
}

// takeRunnable pops the first queued job that can start now: global and
// tenant concurrency below their caps, every placement host registered and
// healthy. Returns nil when nothing can start.
func (s *Server) takeRunnable() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running >= s.cfg.maxRunning() {
		return nil
	}
	for i, id := range s.queue {
		j := s.jobs[id]
		q := s.cfg.quotaFor(j.spec.Tenant)
		if q.MaxRunning > 0 && s.tenantRun[j.spec.Tenant] >= q.MaxRunning {
			continue
		}
		if !s.hostsReadyLocked(j.spec.hosts()) {
			continue
		}
		s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
		j.state = StateRunning
		j.started = time.Now()
		j.events = append(j.events, Event{Time: j.started, Msg: "started"})
		s.running++
		s.tenantRun[j.spec.Tenant]++
		s.m.depth.Set(int64(len(s.queue)))
		s.m.running.Set(int64(s.running))
		s.tenantGauges(j.spec.Tenant)
		if s.jnl != nil {
			_ = s.jnl.start(j.id, j.started)
		}
		return j
	}
	return nil
}

func (s *Server) hostsReadyLocked(hosts []string) bool {
	for _, h := range hosts {
		w := s.workers[h]
		if w == nil || !w.Healthy {
			return false
		}
	}
	return true
}

// runJob executes one job as a dist coordinator over the shared mesh. The
// job id becomes Options.JobID, so its session interleaves with other jobs
// on the same persistent workers.
func (s *Server) runJob(j *job) {
	defer s.jobsWG.Done()
	s.mu.Lock()
	addrs := make(map[string]string)
	for _, h := range j.spec.hosts() {
		if w := s.workers[h]; w != nil {
			addrs[h] = w.Addr
		}
	}
	s.mu.Unlock()

	opts := j.spec.Options
	opts.JobID = j.id
	var uows []any
	for _, raw := range j.spec.UOWs {
		uows = append(uows, raw)
	}
	st, err := dist.RunObserved(addrs, j.spec.Graph, j.spec.Placement, opts, uows, obs.New(nil, j.reg))

	now := time.Now()
	s.mu.Lock()
	j.finished = now
	j.stats = st
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
		j.events = append(j.events, Event{Time: now, Msg: "failed: " + err.Error()})
	} else {
		j.state = StateDone
		j.events = append(j.events, Event{Time: now, Msg: "done"})
	}
	s.running--
	s.tenantRun[j.spec.Tenant]--
	s.m.running.Set(int64(s.running))
	s.tenantGauges(j.spec.Tenant)
	if s.jnl != nil {
		_ = s.jnl.done(j.id, now, err)
	}
	s.mu.Unlock()

	if err != nil {
		s.m.failed.Inc()
	} else {
		s.m.completed.Inc()
	}
	s.kick()
}

// tenantGauges refreshes one tenant's queued/running gauges; callers hold
// s.mu.
func (s *Server) tenantGauges(tenant string) {
	if tenant == "" {
		tenant = "default"
	}
	queued := 0
	for _, id := range s.queue {
		t := s.jobs[id].spec.Tenant
		if t == "" {
			t = "default"
		}
		if t == tenant {
			queued++
		}
	}
	run := s.tenantRun[tenant]
	if tenant == "default" {
		run = s.tenantRun[""]
	}
	s.reg.Gauge("jobd.tenant." + tenant + ".queued").Set(int64(queued))
	s.reg.Gauge("jobd.tenant." + tenant + ".running").Set(int64(run))
}

// Get returns a job snapshot.
func (s *Server) Get(id uint64) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// Jobs lists every known job, id-ordered.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Events returns a job's history.
func (s *Server) Events(id uint64) ([]Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return append([]Event(nil), j.events...), true
}

// Metrics snapshots the server's own registry (admission counters, queue
// and worker gauges).
func (s *Server) Metrics() map[string]any { return s.reg.Snapshot() }

// JobMetrics snapshots one job's isolated coordinator-side registry.
func (s *Server) JobMetrics(id uint64) (map[string]any, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.reg.Snapshot(), true
}

// Await blocks until the job reaches a terminal state or the timeout
// elapses.
func (s *Server) Await(id uint64, timeout time.Duration) (Job, error) {
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.Get(id)
		if !ok {
			return Job{}, fmt.Errorf("jobd: no job %d", id)
		}
		if j.State == StateDone || j.State == StateFailed {
			return j, nil
		}
		if time.Now().After(deadline) {
			return j, fmt.Errorf("jobd: job %d still %s after %v", id, j.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RegisterWorker adds or refreshes a persistent worker. Registration
// implies liveness (the worker just spoke to us); the prober maintains it
// from here.
func (s *Server) RegisterWorker(host, addr, health string) {
	now := time.Now()
	s.mu.Lock()
	s.workers[host] = &workerInfo{
		Host: host, Addr: addr, Health: health,
		Healthy: true, Registered: now, LastProbe: now,
	}
	s.healthyGaugeLocked()
	s.mu.Unlock()
	s.kick()
}

// Workers lists registered workers, host-ordered.
func (s *Server) Workers() []workerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]workerInfo, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Host < out[k].Host })
	return out
}

func (s *Server) healthyGaugeLocked() {
	n := 0
	for _, w := range s.workers {
		if w.Healthy {
			n++
		}
	}
	s.m.healthy.Set(int64(n))
}

// probe sweeps worker liveness every ProbeInterval: GET /healthz on the
// worker's debug address when it published one, a bare TCP dial of its
// dist address otherwise. A worker that fails its probe is unhealthy until
// a probe (or re-registration) succeeds; queued jobs placed on it wait.
func (s *Server) probe() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.probeInterval())
	defer t.Stop()
	client := &http.Client{Timeout: s.cfg.probeInterval()}
	for {
		select {
		case <-t.C:
		case <-s.stopped:
			return
		}
		s.mu.Lock()
		targets := make([]workerInfo, 0, len(s.workers))
		for _, w := range s.workers {
			targets = append(targets, *w)
		}
		s.mu.Unlock()
		for _, w := range targets {
			healthy := probeWorker(client, w)
			s.mu.Lock()
			if cur := s.workers[w.Host]; cur != nil {
				cur.Healthy = healthy
				cur.LastProbe = time.Now()
				s.healthyGaugeLocked()
			}
			s.mu.Unlock()
		}
		s.kick() // newly healthy workers may unblock queued jobs
	}
}

// dialProbe is the fallback liveness check for workers that did not
// publish a debug address: a bare TCP dial of the dist listener.
func dialProbe(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

func probeWorker(client *http.Client, w workerInfo) bool {
	if w.Health != "" {
		resp, err := client.Get("http://" + w.Health + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	c, err := dialProbe(w.Addr, client.Timeout)
	if err != nil {
		return false
	}
	c.Close()
	return true
}

// Drain stops admitting jobs and waits up to timeout for the queue to
// empty and every running job to finish. Queued jobs that cannot start
// (e.g. their workers are gone) remain journaled for the next process.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		idle := s.running == 0
		s.mu.Unlock()
		if idle {
			s.jobsWG.Wait() // runJob bookkeeping finished too
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the dispatcher and prober and closes the journal. Jobs still
// running are left to finish on their own workers; their completion
// records may be lost — call Drain first for a clean stop.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopped) })
	s.loops.Wait()
	if s.jnl != nil {
		s.jnl.close()
	}
}
