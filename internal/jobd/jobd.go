// Package jobd is the persistent multi-tenant job service over a shared
// dist worker mesh: a long-lived server accepts many concurrent pipeline
// submissions, multiplexes them onto persistent dcworker processes (each
// job's session is namespaced by the job id every wire frame carries), and
// survives its own restarts through a write-ahead job journal.
//
// The server is the coordinator for every job it runs: a submitted JobSpec
// carries the serializable pieces of a dist run (graph, placement, options,
// pre-encoded units of work), admission control enforces per-tenant quotas
// on queue depth, queued bytes, and concurrency, and a FIFO dispatcher
// starts jobs as quota and worker health allow. Unit-of-work descriptors
// travel as dist.RawUOW, so the server never needs the submitting
// application's Go types registered — only the workers do.
package jobd

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/elastic"
	"datacutter/internal/obs"
)

// Quota bounds one tenant's use of the service. Zero fields are unlimited.
type Quota struct {
	MaxRunning     int   // concurrent running jobs
	MaxQueued      int   // jobs waiting in the queue
	MaxQueuedBytes int64 // total encoded bytes (UOWs + filter params) queued
	// MaxCopies caps the peak number of transparent filter copies one job
	// may place at any work-cycle boundary — the initial placement and every
	// point of its elastic scale schedule (Options.ScaleSchedule). A job may
	// scale up and down within this budget, never beyond it.
	MaxCopies int
}

// Config configures a Server. Zero values select the defaults noted.
type Config struct {
	// MaxRunning caps concurrently running jobs across all tenants (4).
	MaxRunning int
	// DefaultQuota applies to tenants not listed in Quotas.
	DefaultQuota Quota
	// Quotas overrides the default per tenant name.
	Quotas map[string]Quota
	// JournalPath enables the write-ahead job journal (JSONL). Empty
	// disables persistence; a restarted server then starts empty.
	JournalPath string
	// ProbeInterval is the worker health-probe period (2s).
	ProbeInterval time.Duration
	// Registry receives the server's metrics (a fresh one when nil).
	Registry *obs.Registry

	// Resilience knobs (DESIGN.md §15). Zero selects the noted default.

	// DefaultMaxRetries is the retry budget for jobs whose spec leaves
	// MaxRetries at 0 (default 0: no automatic retries).
	DefaultMaxRetries int
	// RetryBackoff is the base of the exponential retry backoff (500ms);
	// attempt n waits ~base*2^(n-1) with ±25% jitter, capped at
	// RetryBackoffMax (30s).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// QuarantineStrikes is how many attributed failures a worker absorbs
	// before it is quarantined (3).
	QuarantineStrikes int
	// Probation is how long a quarantined worker sits out before the
	// prober attempts one half-open reinstatement probe (30s).
	Probation time.Duration
	// MaxQueueAge sheds a tenant's new submissions while its oldest queued
	// job has waited longer than this (0 disables age shedding).
	MaxQueueAge time.Duration
	// MaxQueueDepth sheds submissions when the global queue holds this
	// many jobs (0 = unlimited).
	MaxQueueDepth int
	// ShedRetryAfter is the Retry-After hint attached to shed responses (5s).
	ShedRetryAfter time.Duration
	// JournalCompactBytes triggers journal compaction once the log exceeds
	// this size (4 MiB); compaction also always runs on startup recovery.
	JournalCompactBytes int64
}

func (c Config) maxRunning() int {
	if c.MaxRunning > 0 {
		return c.MaxRunning
	}
	return 4
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	return 2 * time.Second
}

func (c Config) quotaFor(tenant string) Quota {
	if q, ok := c.Quotas[tenant]; ok {
		return q
	}
	return c.DefaultQuota
}

// JobSpec is one submitted pipeline: everything the server needs to run it
// as a dist coordinator. All fields are JSON-serializable — the spec is
// journaled verbatim and travels over the HTTP API.
type JobSpec struct {
	Name      string                `json:"name,omitempty"`
	Tenant    string                `json:"tenant,omitempty"`
	Graph     dist.GraphSpec        `json:"graph"`
	Placement []dist.PlacementEntry `json:"placement"`
	Options   dist.Options          `json:"options"`
	// UOWs are pre-encoded unit-of-work descriptors (dist.EncodeUOW);
	// empty runs a single nil unit of work.
	UOWs []dist.RawUOW `json:"uows,omitempty"`
	// MaxRetries is the job's retry budget: a failed run re-queues with
	// exponential backoff up to this many times. 0 adopts the server
	// default (Config.DefaultMaxRetries); -1 disables retries explicitly.
	MaxRetries int `json:"max_retries,omitempty"`
	// Deadline is the job's time-to-live measured from submission. Once it
	// passes, a queued job fails without running and a running job's dist
	// session is cancelled (context deadline → abort protocol). 0 = none.
	Deadline time.Duration `json:"deadline,omitempty"`
}

// bytes is the admission-control size of the spec: encoded work plus
// filter params — the parts that scale with submission size.
func (sp *JobSpec) bytes() int64 {
	n := int64(0)
	for _, u := range sp.UOWs {
		n += int64(len(u))
	}
	for _, f := range sp.Graph.Filters {
		n += int64(len(f.Params))
	}
	return n
}

// peakCopies is the largest total number of transparent copies the job's
// placement reaches at any work-cycle boundary: the base placement, plus
// the effective placement after each elastic scale step the spec's
// Options.ScaleSchedule carries. Quota.MaxCopies bounds this peak.
func (sp *JobSpec) peakCopies() int {
	base := make([]elastic.Entry, 0, len(sp.Placement))
	for _, p := range sp.Placement {
		base = append(base, elastic.Entry{Filter: p.Filter, Host: p.Host, Copies: p.Copies})
	}
	peak := totalCopies(base)
	for _, st := range sp.Options.ScaleSchedule {
		eff := elastic.EffectivePlacement(base, sp.Options.ScaleSchedule, st.BeforeUOW)
		if n := totalCopies(eff); n > peak {
			peak = n
		}
	}
	return peak
}

func totalCopies(entries []elastic.Entry) int {
	n := 0
	for _, e := range entries {
		n += e.Copies
	}
	return n
}

// hosts returns the distinct placement hosts, sorted.
func (sp *JobSpec) hosts() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range sp.Placement {
		if !seen[p.Host] {
			seen[p.Host] = true
			out = append(out, p.Host)
		}
	}
	sort.Strings(out)
	return out
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateBackoff   State = "backoff" // failed attempt, waiting in queue for its retry time
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final (done, failed, cancelled).
func (st State) Terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// Event is one timestamped line of a job's history.
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// Job is an API snapshot of one job.
type Job struct {
	ID        uint64      `json:"id"`
	Spec      JobSpec     `json:"spec"`
	State     State       `json:"state"`
	Err       string      `json:"err,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Started   time.Time   `json:"started"`
	Finished  time.Time   `json:"finished"`
	Stats     *core.Stats `json:"stats,omitempty"`
	// Attempts counts failed runs so far; a job in "backoff" retries no
	// earlier than NotBefore.
	Attempts  int       `json:"attempts,omitempty"`
	NotBefore time.Time `json:"not_before"`
	// Deadline is the absolute time the job's TTL expires (zero = none).
	Deadline time.Time `json:"deadline"`
}

// job is the server's mutable record; guarded by Server.mu.
type job struct {
	id        uint64
	spec      JobSpec
	state     State
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	stats     *core.Stats
	events    []Event
	// reg collects the job's coordinator-side metrics, isolated per job.
	reg *obs.Registry

	// Resilience state.
	attempts  int                // failed runs so far
	notBefore time.Time          // earliest next dispatch (backoff schedule)
	queuedAt  time.Time          // when the job (re-)entered the queue, for age shedding
	deadline  time.Time          // absolute TTL (zero = none)
	cancelReq bool               // Cancel was requested
	cancel    context.CancelFunc // cancels the running dist session (nil unless running)
	done      chan struct{}      // closed on transition to a terminal state
}

func (j *job) snapshot() Job {
	return Job{
		ID: j.id, Spec: j.spec, State: j.state, Err: j.err,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Stats: j.stats, Attempts: j.attempts, NotBefore: j.notBefore,
		Deadline: j.deadline,
	}
}

// WorkerInfo is one registered persistent worker.
type WorkerInfo struct {
	Host string `json:"host"`
	// Addr is the worker's dist (TCP) listen address.
	Addr string `json:"addr"`
	// Health is the worker's obs debug address; its /healthz endpoint is
	// the liveness probe. Empty falls back to probing Addr with a TCP dial.
	Health     string    `json:"health,omitempty"`
	Healthy    bool      `json:"healthy"`
	Registered time.Time `json:"registered"`
	LastProbe  time.Time `json:"last_probe"`

	// Failure scoring (circuit breaker). Strikes accumulate from failed
	// runs attributed to this worker (dist.HostsError); at
	// Config.QuarantineStrikes the worker is quarantined — no dispatches —
	// until its probation elapses and a half-open probe succeeds, which
	// resets the record. A successful run also clears strikes. The record
	// survives re-registration: a flaky worker cannot launder its history
	// by re-announcing itself.
	Strikes     int       `json:"strikes,omitempty"`
	Quarantined bool      `json:"quarantined,omitempty"`
	ProbationAt time.Time `json:"probation_at"` // earliest half-open probe
}

// serverMetrics are the server's resolved metric handles.
type serverMetrics struct {
	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	depth     *obs.Gauge
	running   *obs.Gauge
	healthy   *obs.Gauge

	retried      *obs.Counter   // jobd.jobs_retried: failed runs re-queued with backoff
	cancelled    *obs.Counter   // jobd.jobs_cancelled
	deadlined    *obs.Counter   // jobd.jobs_deadline_exceeded
	shed         *obs.Counter   // jobd.jobs_shed: submissions rejected by load shedding
	quarantined  *obs.Counter   // jobd.workers_quarantined: quarantine events
	reinstated   *obs.Counter   // jobd.workers_reinstated: half-open probes that closed the breaker
	inQuarantine *obs.Gauge     // jobd.workers_in_quarantine
	queueAge     *obs.Histogram // jobd.queue_age_seconds: queue wait, observed at dispatch
}

// Server is the job service. Create with NewServer, stop with Drain
// followed by Close.
type Server struct {
	cfg Config
	reg *obs.Registry
	m   serverMetrics
	jnl *journal

	mu        sync.Mutex
	jobs      map[uint64]*job
	queue     []uint64 // FIFO of queued job ids
	nextID    uint64
	running   int
	tenantRun map[string]int
	workers   map[string]*WorkerInfo
	draining  bool

	wake     chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	// loops tracks the dispatcher and prober; jobsWG the running jobs.
	loops  sync.WaitGroup
	jobsWG sync.WaitGroup
}

// NewServer builds the service, replays the journal (re-queueing every job
// the previous process never finished), and starts the dispatcher and the
// worker health prober.
func NewServer(cfg Config) (*Server, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		jobs:      make(map[uint64]*job),
		tenantRun: make(map[string]int),
		workers:   make(map[string]*WorkerInfo),
		nextID:    1,
		wake:      make(chan struct{}, 1),
		stopped:   make(chan struct{}),
	}
	s.m = serverMetrics{
		submitted: reg.Counter("jobd.jobs_submitted"),
		rejected:  reg.Counter("jobd.jobs_rejected"),
		completed: reg.Counter("jobd.jobs_completed"),
		failed:    reg.Counter("jobd.jobs_failed"),
		depth:     reg.Gauge("jobd.queue_depth"),
		running:   reg.Gauge("jobd.jobs_running"),
		healthy:   reg.Gauge("jobd.workers_healthy"),

		retried:      reg.Counter("jobd.jobs_retried"),
		cancelled:    reg.Counter("jobd.jobs_cancelled"),
		deadlined:    reg.Counter("jobd.jobs_deadline_exceeded"),
		shed:         reg.Counter("jobd.jobs_shed"),
		quarantined:  reg.Counter("jobd.workers_quarantined"),
		reinstated:   reg.Counter("jobd.workers_reinstated"),
		inQuarantine: reg.Gauge("jobd.workers_in_quarantine"),
		queueAge:     reg.Histogram("jobd.queue_age_seconds"),
	}
	if cfg.JournalPath != "" {
		jnl, replay, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.jnl = jnl
		now := time.Now()
		for _, r := range replay {
			j := &job{
				id: r.ID, spec: r.Spec, state: StateQueued,
				submitted: r.Submitted, queuedAt: now,
				attempts: r.Attempts, notBefore: r.NotBefore,
				reg: obs.NewRegistry(), done: make(chan struct{}),
			}
			if r.Spec.Deadline > 0 {
				j.deadline = r.Submitted.Add(r.Spec.Deadline)
			}
			j.events = append(j.events, Event{Time: r.Submitted, Msg: "submitted"})
			switch {
			case r.Attempts > 0:
				// Resume the journaled backoff schedule rather than losing
				// the attempt count or double-running the backoff.
				j.state = StateBackoff
				j.events = append(j.events, Event{Time: now, Msg: fmt.Sprintf(
					"re-queued after server restart (resuming retry %d, not before %s)",
					r.Attempts, r.NotBefore.Format(time.RFC3339))})
			case r.Started:
				j.events = append(j.events, Event{Time: now, Msg: "re-queued after server restart (was in flight)"})
			default:
				j.events = append(j.events, Event{Time: now, Msg: "re-queued after server restart"})
			}
			s.jobs[r.ID] = j
			s.queue = append(s.queue, r.ID)
			if r.ID >= s.nextID {
				s.nextID = r.ID + 1
			}
		}
		s.m.depth.Set(int64(len(s.queue)))
		// Startup recovery is the natural compaction point: everything the
		// replay discarded (finished jobs, superseded retry records) would
		// otherwise re-accumulate across every restart.
		s.compactJournalLocked()
	}
	s.loops.Add(2)
	go s.dispatch()
	go s.probe()
	return s, nil
}

// Errors the admission path returns; the HTTP layer maps them to statuses.
var (
	ErrDraining = fmt.Errorf("jobd: server is draining")
	ErrQuota    = fmt.Errorf("jobd: tenant quota exceeded")
	ErrInvalid  = fmt.Errorf("jobd: invalid job spec")
	// ErrOverload is load shedding: the queue is too deep or the tenant's
	// backlog too old for new work to finish in reasonable time. The HTTP
	// layer maps it to 503 with a Retry-After header so clients back off.
	ErrOverload = fmt.Errorf("jobd: overloaded")
	// ErrTerminal rejects cancelling a job that already finished.
	ErrTerminal = fmt.Errorf("jobd: job already in a terminal state")
)

// Submit runs admission control, journals the job, and queues it. The
// returned id is the job's identity everywhere: the API, the journal, and
// the JobID on every wire frame of its eventual session.
func (s *Server) Submit(spec JobSpec) (uint64, error) {
	if len(spec.Graph.Filters) == 0 || len(spec.Placement) == 0 {
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: graph and placement must be non-empty", ErrInvalid)
	}
	if spec.MaxRetries < -1 {
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: MaxRetries must be >= -1, got %d", ErrInvalid, spec.MaxRetries)
	}
	if spec.Deadline < 0 {
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: Deadline must be >= 0, got %v", ErrInvalid, spec.Deadline)
	}
	size := spec.bytes()
	q := s.cfg.quotaFor(spec.Tenant)
	if q.MaxCopies > 0 {
		if peak := spec.peakCopies(); peak > q.MaxCopies {
			s.m.rejected.Inc()
			return 0, fmt.Errorf("%w: tenant %q job peaks at %d transparent copies (max %d)",
				ErrQuota, spec.Tenant, peak, q.MaxCopies)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.rejected.Inc()
		return 0, ErrDraining
	}
	// Load shedding before quota: a queue the service cannot drain should
	// turn clients away with a back-off hint rather than absorb more work.
	if max := s.cfg.MaxQueueDepth; max > 0 && len(s.queue) >= max {
		s.mu.Unlock()
		s.m.shed.Inc()
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: queue depth %d at the global bound", ErrOverload, max)
	}
	queued, queuedBytes := 0, int64(0)
	var oldest time.Time
	for _, id := range s.queue {
		if j := s.jobs[id]; j.spec.Tenant == spec.Tenant {
			queued++
			queuedBytes += j.spec.bytes()
			if oldest.IsZero() || j.queuedAt.Before(oldest) {
				oldest = j.queuedAt
			}
		}
	}
	if maxAge := s.cfg.MaxQueueAge; maxAge > 0 && !oldest.IsZero() {
		if age := time.Since(oldest); age > maxAge {
			s.mu.Unlock()
			s.m.shed.Inc()
			s.m.rejected.Inc()
			return 0, fmt.Errorf("%w: tenant %q backlog is %s old (bound %s)",
				ErrOverload, spec.Tenant, age.Round(time.Millisecond), maxAge)
		}
	}
	if q.MaxQueued > 0 && queued >= q.MaxQueued {
		s.mu.Unlock()
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: tenant %q has %d jobs queued (max %d)", ErrQuota, spec.Tenant, queued, q.MaxQueued)
	}
	if q.MaxQueuedBytes > 0 && queuedBytes+size > q.MaxQueuedBytes {
		s.mu.Unlock()
		s.m.rejected.Inc()
		return 0, fmt.Errorf("%w: tenant %q queued bytes %d + %d exceed %d", ErrQuota, spec.Tenant, queuedBytes, size, q.MaxQueuedBytes)
	}
	id := s.nextID
	s.nextID++
	now := time.Now()
	j := &job{
		id: id, spec: spec, state: StateQueued, submitted: now, queuedAt: now,
		reg: obs.NewRegistry(), done: make(chan struct{}),
	}
	if spec.Deadline > 0 {
		j.deadline = now.Add(spec.Deadline)
	}
	j.events = append(j.events, Event{Time: now, Msg: "submitted"})
	if s.jnl != nil {
		if err := s.jnl.submit(id, now, &spec); err != nil {
			s.mu.Unlock()
			s.m.rejected.Inc()
			return 0, fmt.Errorf("jobd: journaling submission: %w", err)
		}
	}
	s.jobs[id] = j
	s.queue = append(s.queue, id)
	s.m.depth.Set(int64(len(s.queue)))
	s.tenantGauges(spec.Tenant)
	s.mu.Unlock()

	s.m.submitted.Inc()
	s.kick()
	return id, nil
}

// kick nudges the dispatcher (non-blocking: one pending wake is enough).
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch starts queued jobs as quota and worker health allow. Besides
// explicit kicks it wakes itself on a timer armed at the earliest pending
// backoff expiry or queued-job deadline, so retries dispatch and TTLs fire
// without polling.
func (s *Server) dispatch() {
	defer s.loops.Done()
	for {
		s.expireDeadlines()
		for {
			j := s.takeRunnable()
			if j == nil {
				break
			}
			s.jobsWG.Add(1)
			go s.runJob(j)
		}
		var tc <-chan time.Time
		var timer *time.Timer
		if next, ok := s.nextWake(); ok {
			d := time.Until(next)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			tc = timer.C
		}
		select {
		case <-s.wake:
		case <-tc:
		case <-s.stopped:
			if timer != nil {
				timer.Stop()
			}
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// takeRunnable pops the best queued job that can start now: past its
// backoff time, global and tenant concurrency below their caps, every
// placement host registered, healthy, and out of quarantine. Among
// runnable candidates it prefers the one whose workers carry the fewest
// strikes (FIFO breaks ties), so jobs route around flaky-but-not-yet-
// quarantined workers when an alternative exists. Returns nil when nothing
// can start.
func (s *Server) takeRunnable() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running >= s.cfg.maxRunning() {
		return nil
	}
	now := time.Now()
	best, bestStrikes := -1, 0
	for i, id := range s.queue {
		j := s.jobs[id]
		if !j.notBefore.IsZero() && now.Before(j.notBefore) {
			continue
		}
		q := s.cfg.quotaFor(j.spec.Tenant)
		if q.MaxRunning > 0 && s.tenantRun[j.spec.Tenant] >= q.MaxRunning {
			continue
		}
		ready, strikes := s.hostsReadyLocked(j.spec.hosts())
		if !ready {
			continue
		}
		if strikes == 0 {
			best, bestStrikes = i, 0
			break // FIFO-first zero-strike candidate; no better exists
		}
		if best == -1 || strikes < bestStrikes {
			best, bestStrikes = i, strikes
		}
	}
	if best == -1 {
		return nil
	}
	j := s.jobs[s.queue[best]]
	s.queue = append(s.queue[:best:best], s.queue[best+1:]...)
	j.state = StateRunning
	j.started = now
	s.m.queueAge.Observe(now.Sub(j.queuedAt).Seconds())
	if j.attempts > 0 {
		j.events = append(j.events, Event{Time: j.started, Msg: fmt.Sprintf("started (attempt %d)", j.attempts+1)})
	} else {
		j.events = append(j.events, Event{Time: j.started, Msg: "started"})
	}
	s.running++
	s.tenantRun[j.spec.Tenant]++
	s.m.depth.Set(int64(len(s.queue)))
	s.m.running.Set(int64(s.running))
	s.tenantGauges(j.spec.Tenant)
	if s.jnl != nil {
		_ = s.jnl.start(j.id, j.started)
	}
	return j
}

// hostsReadyLocked reports whether every host is dispatchable (registered,
// healthy, not quarantined) and, when so, the worst strike count among
// them — the dispatcher's preference key.
func (s *Server) hostsReadyLocked(hosts []string) (bool, int) {
	max := 0
	for _, h := range hosts {
		w := s.workers[h]
		if w == nil || !w.Healthy || w.Quarantined {
			return false, 0
		}
		if w.Strikes > max {
			max = w.Strikes
		}
	}
	return true, max
}

// runJob executes one job as a dist coordinator over the shared mesh. The
// job id becomes Options.JobID, so its session interleaves with other jobs
// on the same persistent workers. The run's context carries the job's
// deadline and cancel request into the dist session; its outcome routes
// through the resilience layer — success rewards the workers, an
// attributed failure charges them strikes, and a failure within the retry
// budget re-queues with backoff instead of going terminal.
func (s *Server) runJob(j *job) {
	defer s.jobsWG.Done()
	s.mu.Lock()
	addrs := make(map[string]string)
	for _, h := range j.spec.hosts() {
		if w := s.workers[h]; w != nil {
			addrs[h] = w.Addr
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if !j.deadline.IsZero() {
		ctx, cancel = context.WithDeadline(context.Background(), j.deadline)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j.cancel = cancel
	if j.cancelReq { // Cancel raced the dispatch; honor it immediately
		cancel()
	}
	s.mu.Unlock()
	defer cancel()

	opts := j.spec.Options
	opts.JobID = j.id
	var uows []any
	for _, raw := range j.spec.UOWs {
		uows = append(uows, raw)
	}
	st, err := dist.RunObservedCtx(ctx, addrs, j.spec.Graph, j.spec.Placement, opts, uows, obs.New(nil, j.reg))

	now := time.Now()
	s.mu.Lock()
	j.cancel = nil
	j.stats = st
	s.running--
	s.tenantRun[j.spec.Tenant]--
	s.m.running.Set(int64(s.running))

	switch {
	case err == nil:
		s.rewardLocked(j.spec.hosts())
		s.finishLocked(j, StateDone, now, nil, "done")
	case j.cancelReq:
		s.finishLocked(j, StateCancelled, now, err, "cancelled: "+err.Error())
	case ctx.Err() == context.DeadlineExceeded:
		s.m.deadlined.Inc()
		s.finishLocked(j, StateFailed, now, err, "failed: deadline exceeded: "+err.Error())
	default:
		s.chargeStrikesLocked(attributedHosts(err), now)
		if !s.draining && j.attempts < j.retryBudget(s.cfg) {
			s.requeueForRetryLocked(j, now, err)
		} else {
			s.finishLocked(j, StateFailed, now, err, "failed: "+err.Error())
		}
	}
	s.tenantGauges(j.spec.Tenant)
	s.mu.Unlock()
	s.kick()
}

// tenantGauges refreshes one tenant's queued/running gauges; callers hold
// s.mu.
func (s *Server) tenantGauges(tenant string) {
	if tenant == "" {
		tenant = "default"
	}
	queued := 0
	for _, id := range s.queue {
		t := s.jobs[id].spec.Tenant
		if t == "" {
			t = "default"
		}
		if t == tenant {
			queued++
		}
	}
	run := s.tenantRun[tenant]
	if tenant == "default" {
		run = s.tenantRun[""]
	}
	s.reg.Gauge("jobd.tenant." + tenant + ".queued").Set(int64(queued))
	s.reg.Gauge("jobd.tenant." + tenant + ".running").Set(int64(run))
}

// Get returns a job snapshot.
func (s *Server) Get(id uint64) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// Jobs lists every known job, id-ordered.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Events returns a job's history.
func (s *Server) Events(id uint64) ([]Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return append([]Event(nil), j.events...), true
}

// Metrics snapshots the server's own registry (admission counters, queue
// and worker gauges).
func (s *Server) Metrics() map[string]any { return s.reg.Snapshot() }

// JobMetrics snapshots one job's isolated coordinator-side registry.
func (s *Server) JobMetrics(id uint64) (map[string]any, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.reg.Snapshot(), true
}

// Await blocks until the job reaches a terminal state or the timeout
// elapses. The wait is a channel receive on the job's done signal —
// terminal transitions are observed the instant finishLocked closes it,
// with no polling.
func (s *Server) Await(id uint64, timeout time.Duration) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("jobd: no job %d", id)
	}
	done := j.done
	s.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		snap, _ := s.Get(id)
		return snap, nil
	case <-t.C:
		snap, _ := s.Get(id)
		return snap, fmt.Errorf("jobd: job %d still %s after %v", id, snap.State, timeout)
	}
}

// RegisterWorker adds or refreshes a persistent worker. Registration
// implies liveness (the worker just spoke to us); the prober maintains it
// from here. The failure-scoring record (strikes, quarantine, probation)
// survives re-registration on purpose — a flaky worker cannot launder its
// history by re-announcing itself; it leaves quarantine only through the
// prober's half-open probe.
func (s *Server) RegisterWorker(host, addr, health string) {
	now := time.Now()
	s.mu.Lock()
	w := s.workers[host]
	if w == nil {
		w = &WorkerInfo{Host: host}
		s.workers[host] = w
	}
	w.Addr, w.Health = addr, health
	w.Healthy = true
	w.Registered, w.LastProbe = now, now
	s.healthyGaugeLocked()
	s.mu.Unlock()
	s.kick()
}

// Workers lists registered workers, host-ordered.
func (s *Server) Workers() []WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerInfo, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Host < out[k].Host })
	return out
}

func (s *Server) healthyGaugeLocked() {
	n := 0
	for _, w := range s.workers {
		if w.Healthy {
			n++
		}
	}
	s.m.healthy.Set(int64(n))
}

// probe sweeps worker liveness every ProbeInterval: GET /healthz on the
// worker's debug address when it published one, a bare TCP dial of its
// dist address otherwise. A worker that fails its probe is unhealthy until
// a probe (or re-registration) succeeds; queued jobs placed on it wait.
//
// Quarantined workers follow the circuit-breaker's half-open protocol:
// before ProbationAt they are skipped entirely (the breaker is open); once
// probation elapses one probe is attempted — success reinstates the worker
// with a clean record, failure extends probation by another period.
func (s *Server) probe() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.probeInterval())
	defer t.Stop()
	client := &http.Client{Timeout: s.cfg.probeInterval()}
	for {
		select {
		case <-t.C:
		case <-s.stopped:
			return
		}
		s.mu.Lock()
		targets := make([]WorkerInfo, 0, len(s.workers))
		for _, w := range s.workers {
			if w.Quarantined && time.Now().Before(w.ProbationAt) {
				continue // breaker open: no traffic, not even probes
			}
			targets = append(targets, *w)
		}
		s.mu.Unlock()
		for _, w := range targets {
			healthy := probeWorker(client, w)
			now := time.Now()
			s.mu.Lock()
			if cur := s.workers[w.Host]; cur != nil {
				cur.Healthy = healthy
				cur.LastProbe = now
				if cur.Quarantined {
					if healthy {
						// Half-open probe succeeded: close the breaker.
						cur.Quarantined = false
						cur.Strikes = 0
						cur.ProbationAt = time.Time{}
						s.m.reinstated.Inc()
					} else {
						cur.ProbationAt = now.Add(s.cfg.probation())
					}
					s.quarantineGaugeLocked()
				}
				s.healthyGaugeLocked()
			}
			s.mu.Unlock()
		}
		s.kick() // newly healthy or reinstated workers may unblock queued jobs
	}
}

// dialProbe is the fallback liveness check for workers that did not
// publish a debug address: a bare TCP dial of the dist listener.
func dialProbe(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

func probeWorker(client *http.Client, w WorkerInfo) bool {
	if w.Health != "" {
		resp, err := client.Get("http://" + w.Health + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	c, err := dialProbe(w.Addr, client.Timeout)
	if err != nil {
		return false
	}
	c.Close()
	return true
}

// Drain stops admitting jobs and waits up to timeout for the queue to
// empty and every running job to finish. Queued jobs that cannot start
// (e.g. their workers are gone) remain journaled for the next process.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		idle := s.running == 0
		s.mu.Unlock()
		if idle {
			s.jobsWG.Wait() // runJob bookkeeping finished too
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the dispatcher and prober and closes the journal. Jobs still
// running are left to finish on their own workers; their completion
// records may be lost — call Drain first for a clean stop.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopped) })
	s.loops.Wait()
	if s.jnl != nil {
		s.jnl.close()
	}
}
