package jobd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"datacutter/internal/dist"
)

// This file is the service-level resilience layer (DESIGN.md §15): job
// retry with journaled exponential backoff, worker failure scoring with
// circuit-breaker quarantine, deadline enforcement and cancellation, and
// the journal-compaction trigger. It composes with — rather than replaces
// — the in-run recovery the dist coordinator already performs: a run only
// reaches this layer after UOW replanning inside the session has given up.

// Config accessors with the documented defaults.

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 500 * time.Millisecond
}

func (c Config) retryBackoffMax() time.Duration {
	if c.RetryBackoffMax > 0 {
		return c.RetryBackoffMax
	}
	return 30 * time.Second
}

func (c Config) quarantineStrikes() int {
	if c.QuarantineStrikes > 0 {
		return c.QuarantineStrikes
	}
	return 3
}

func (c Config) probation() time.Duration {
	if c.Probation > 0 {
		return c.Probation
	}
	return 30 * time.Second
}

func (c Config) shedRetryAfter() time.Duration {
	if c.ShedRetryAfter > 0 {
		return c.ShedRetryAfter
	}
	return 5 * time.Second
}

func (c Config) journalCompactBytes() int64 {
	if c.JournalCompactBytes > 0 {
		return c.JournalCompactBytes
	}
	return 4 << 20
}

// retryBudget resolves the job's effective retry budget: the spec's
// explicit positive budget, 0 for an explicit -1 (retries disabled), the
// server default otherwise.
func (j *job) retryBudget(cfg Config) int {
	switch {
	case j.spec.MaxRetries > 0:
		return j.spec.MaxRetries
	case j.spec.MaxRetries < 0:
		return 0
	default:
		return cfg.DefaultMaxRetries
	}
}

// backoffFor is the delay before retry attempt n (1-based): base*2^(n-1)
// capped at the max, with ±25% jitter so a burst of same-shaped failures
// does not re-dispatch in lockstep.
func (s *Server) backoffFor(attempt int) time.Duration {
	base, max := s.cfg.retryBackoff(), s.cfg.retryBackoffMax()
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// finishLocked moves a job to a terminal state: history event, journal
// done record, terminal counters, and the done-channel close that wakes
// every Await. Callers hold s.mu and have already removed the job from the
// queue / running accounting.
func (s *Server) finishLocked(j *job, st State, now time.Time, runErr error, msg string) {
	j.state = st
	j.finished = now
	if runErr != nil {
		j.err = runErr.Error()
	}
	j.events = append(j.events, Event{Time: now, Msg: msg})
	if s.jnl != nil {
		if runErr == nil && st != StateDone {
			runErr = errors.New(msg)
		}
		_ = s.jnl.done(j.id, now, runErr)
		s.compactJournalLocked()
	}
	switch st {
	case StateDone:
		s.m.completed.Inc()
	case StateCancelled:
		s.m.cancelled.Inc()
	default:
		s.m.failed.Inc()
	}
	close(j.done)
}

// requeueForRetryLocked puts a failed job back on the queue in backoff
// state. The retry record is journaled with the absolute not-before time,
// so a server restarted mid-backoff resumes the schedule (and the attempt
// count) instead of losing or double-running the attempt. Callers hold
// s.mu.
func (s *Server) requeueForRetryLocked(j *job, now time.Time, cause error) {
	j.attempts++
	delay := s.backoffFor(j.attempts)
	j.state = StateBackoff
	j.notBefore = now.Add(delay)
	j.queuedAt = now // age shedding measures the re-queue, not the submission
	j.events = append(j.events, Event{Time: now, Msg: fmt.Sprintf(
		"attempt %d failed, retry %d/%d in %s: %v",
		j.attempts, j.attempts, j.retryBudget(s.cfg), delay.Round(time.Millisecond), cause)})
	s.queue = append(s.queue, j.id)
	s.m.depth.Set(int64(len(s.queue)))
	s.m.retried.Inc()
	if s.jnl != nil {
		_ = s.jnl.retry(j.id, now, j.attempts, j.notBefore, cause)
	}
}

// attributedHosts extracts the workers a dist run failure implicates, via
// the typed attribution error the coordinator wraps around host-charged
// failures. Unattributed failures (bad spec, coordinator-side errors)
// return nil and charge nobody.
func attributedHosts(err error) []string {
	var he *dist.HostsError
	if errors.As(err, &he) {
		return he.Hosts
	}
	return nil
}

// chargeStrikesLocked charges one strike to each implicated worker; a
// worker reaching the strike bound is quarantined — the breaker opens, the
// dispatcher stops routing to it — until probation elapses and a half-open
// probe succeeds. Callers hold s.mu.
func (s *Server) chargeStrikesLocked(hosts []string, now time.Time) {
	for _, h := range hosts {
		w := s.workers[h]
		if w == nil || w.Quarantined {
			continue
		}
		w.Strikes++
		if w.Strikes >= s.cfg.quarantineStrikes() {
			w.Quarantined = true
			w.ProbationAt = now.Add(s.cfg.probation())
			s.m.quarantined.Inc()
			s.quarantineGaugeLocked()
		}
	}
}

// rewardLocked clears the strike record of workers that just carried a run
// to completion — scoring tracks a recent-failure streak, not lifetime
// totals. Quarantined workers are not rewarded (they were not part of the
// run); only the half-open probe reinstates them. Callers hold s.mu.
func (s *Server) rewardLocked(hosts []string) {
	for _, h := range hosts {
		if w := s.workers[h]; w != nil && !w.Quarantined {
			w.Strikes = 0
		}
	}
}

func (s *Server) quarantineGaugeLocked() {
	n := 0
	for _, w := range s.workers {
		if w.Quarantined {
			n++
		}
	}
	s.m.inQuarantine.Set(int64(n))
}

// Cancel requests a job's termination. A queued or backoff job finishes
// immediately as cancelled; a running job has its dist session's context
// cancelled, which tears the session down through the abort protocol — the
// job then lands in cancelled when the run returns. Returns ErrTerminal if
// the job already finished.
func (s *Server) Cancel(id uint64) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("jobd: no job %d", id)
	}
	if j.state.Terminal() {
		snap := j.snapshot()
		s.mu.Unlock()
		return snap, ErrTerminal
	}
	now := time.Now()
	j.cancelReq = true
	if j.state == StateRunning {
		j.events = append(j.events, Event{Time: now, Msg: "cancel requested"})
		if j.cancel != nil {
			j.cancel()
		}
	} else {
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
				break
			}
		}
		s.m.depth.Set(int64(len(s.queue)))
		s.finishLocked(j, StateCancelled, now, context.Canceled, "cancelled by request")
		s.tenantGauges(j.spec.Tenant)
	}
	snap := j.snapshot()
	s.mu.Unlock()
	return snap, nil
}

// expireDeadlines fails every queued job whose TTL has passed — it never
// gets to run. Running jobs enforce their deadline through the run
// context; this sweep covers jobs stuck behind quota, dead workers, or
// backoff.
func (s *Server) expireDeadlines() {
	now := time.Now()
	s.mu.Lock()
	keep := s.queue[:0]
	expired := false
	for _, id := range s.queue {
		j := s.jobs[id]
		if !j.deadline.IsZero() && now.After(j.deadline) {
			s.m.deadlined.Inc()
			s.finishLocked(j, StateFailed, now,
				fmt.Errorf("deadline exceeded after %s, before the job could run", j.spec.Deadline),
				"failed: deadline exceeded while queued")
			s.tenantGauges(j.spec.Tenant)
			expired = true
			continue
		}
		keep = append(keep, id)
	}
	if expired {
		s.queue = keep
		s.m.depth.Set(int64(len(s.queue)))
	}
	s.mu.Unlock()
}

// nextWake is the earliest future instant the dispatcher must act without
// an external kick: a backoff expiring or a queued job's deadline. Returns
// ok=false when nothing is pending.
func (s *Server) nextWake() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	var next time.Time
	consider := func(t time.Time) {
		if t.IsZero() {
			return
		}
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	for _, id := range s.queue {
		j := s.jobs[id]
		if j.notBefore.After(now) {
			consider(j.notBefore)
		}
		consider(j.deadline)
	}
	return next, !next.IsZero()
}

// compactJournalLocked rewrites the journal as one snapshot record per
// live (non-terminal) job when the log has outgrown the configured bound.
// It is also called unconditionally after startup replay — recovery is the
// natural compaction point, since everything the replay discarded would
// otherwise re-accumulate across every restart. Callers hold s.mu.
func (s *Server) compactJournalLocked() {
	if s.jnl == nil {
		return
	}
	if s.jnl.size < s.cfg.journalCompactBytes() && !s.jnl.dirty {
		return
	}
	recs := make([]journalRec, 0, len(s.queue)+s.running)
	for _, j := range s.jobs {
		if j.state.Terminal() {
			continue
		}
		r := journalRec{Kind: "submit", ID: j.id, Time: j.submitted, Spec: &j.spec}
		recs = append(recs, r)
		if j.attempts > 0 {
			recs = append(recs, journalRec{
				Kind: "retry", ID: j.id, Time: j.queuedAt,
				Attempt: j.attempts, NotBeforeMS: j.notBefore.UnixMilli(),
			})
		}
	}
	_ = s.jnl.compact(recs)
}
