package jobd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testSpec(name string) *JobSpec {
	return &JobSpec{Name: name, Tenant: "t"}
}

// A journal holding finished jobs, a queued job, and a job mid-backoff is
// compacted to snapshot records; replaying the compacted log must yield
// exactly the live jobs with their retry schedule intact.
func TestJournalCompactReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	jnl, replay, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replay))
	}
	base := time.Now().Round(time.Millisecond)
	notBefore := base.Add(10 * time.Second)

	// Job 1 ran to completion, job 2 failed terminally: both compact away.
	// Job 3 is queued untouched; job 4 failed once and waits out a backoff.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(jnl.submit(1, base, testSpec("done")))
	must(jnl.start(1, base))
	must(jnl.done(1, base, nil))
	must(jnl.submit(2, base, testSpec("failed")))
	must(jnl.start(2, base))
	must(jnl.done(2, base, fmt.Errorf("boom")))
	must(jnl.submit(3, base, testSpec("queued")))
	must(jnl.submit(4, base, testSpec("backoff")))
	must(jnl.start(4, base))
	must(jnl.retry(4, base, 1, notBefore, fmt.Errorf("worker lost")))
	jnl.close()

	// Replay the uncompacted log: jobs 3 and 4 are live, 4 resumes retry 1.
	jnl, replay, err = openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !jnl.dirty {
		t.Fatal("journal with terminal records not marked dirty")
	}
	preSize := jnl.size
	checkReplay := func(replay []replayedJob) {
		t.Helper()
		if len(replay) != 2 {
			t.Fatalf("replayed %d jobs, want 2: %+v", len(replay), replay)
		}
		if replay[0].ID != 3 || replay[0].Attempts != 0 {
			t.Fatalf("job 3 replayed as %+v", replay[0])
		}
		if replay[1].ID != 4 || replay[1].Attempts != 1 {
			t.Fatalf("job 4 replayed as %+v", replay[1])
		}
		if got := replay[1].NotBefore.UnixMilli(); got != notBefore.UnixMilli() {
			t.Fatalf("job 4 notBefore %d, want %d", got, notBefore.UnixMilli())
		}
	}
	checkReplay(replay)

	// Compact to the snapshot a server would write: submit (+retry) per
	// live job.
	recs := []journalRec{
		{Kind: "submit", ID: 3, Time: base, Spec: testSpec("queued")},
		{Kind: "submit", ID: 4, Time: base, Spec: testSpec("backoff")},
		{Kind: "retry", ID: 4, Time: base, Attempt: 1, NotBeforeMS: notBefore.UnixMilli()},
	}
	if err := jnl.compact(recs); err != nil {
		t.Fatal(err)
	}
	if jnl.dirty {
		t.Fatal("compacted journal still dirty")
	}
	if jnl.size >= preSize {
		t.Fatalf("compaction did not shrink the log: %d -> %d", preSize, jnl.size)
	}
	// The compacted journal must still accept appends.
	must(jnl.submit(5, base, testSpec("post-compact")))
	jnl.close()

	// Replay the compacted log: same live set, plus the post-compact append.
	jnl2, replay, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.close()
	if jnl2.dirty {
		t.Fatal("compacted journal replayed dirty")
	}
	if len(replay) != 3 {
		t.Fatalf("replayed %d jobs after compaction, want 3: %+v", len(replay), replay)
	}
	checkReplay(replay[:2])
	if replay[2].ID != 5 {
		t.Fatalf("post-compact submit replayed as %+v", replay[2])
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"done"`) {
		t.Fatalf("compacted journal still holds terminal records:\n%s", raw)
	}
}

// A torn trailing line (crash mid-append) is skipped, not fatal, and does
// not corrupt the records before it.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	jnl, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.submit(1, time.Now(), testSpec("ok")); err != nil {
		t.Fatal(err)
	}
	jnl.close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jnl2, replay, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.close()
	if len(replay) != 1 || replay[0].ID != 1 {
		t.Fatalf("replay after torn tail: %+v", replay)
	}
}
