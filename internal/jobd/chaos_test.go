package jobd_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datacutter/internal/conformance"
	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/faults"
	"datacutter/internal/jobd"
	"datacutter/internal/leakcheck"
	"datacutter/internal/obs"
)

// Service-level chaos tests: deterministic fault injection (internal/faults
// and hard worker kills) against the jobd resilience layer — retry with
// journaled backoff, worker quarantine and half-open reinstatement,
// deadlines, cancellation, and load shedding. The CI chaos-jobd lane runs
// exactly these (-run 'TestJobdChaos') under the race detector and archives
// the server metrics dumps on failure.

// jobdSrc writes n ints on stream "ints", optionally sleeping between
// writes (the slow variant keeps a session running long enough to cancel
// or deadline it).
type jobdSrc struct {
	core.BaseFilter
	n     int
	delay time.Duration
}

func (s *jobdSrc) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		if err := ctx.Write("ints", core.Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
	}
	return nil
}

// jobdSink drains "ints" and remembers what it saw.
type jobdSink struct {
	core.BaseFilter
	Seen, Sum int
}

func (k *jobdSink) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read("ints")
		if !ok {
			return nil
		}
		k.Seen++
		k.Sum += b.Payload.(int)
	}
}

func init() {
	dist.RegisterFilter("jobdtest.src", func(p []byte) (core.Filter, error) {
		return &jobdSrc{n: int(p[0])}, nil
	})
	dist.RegisterFilter("jobdtest.slowsrc", func(p []byte) (core.Filter, error) {
		return &jobdSrc{n: int(p[0]), delay: 50 * time.Millisecond}, nil
	})
	dist.RegisterFilter("jobdtest.sink", func([]byte) (core.Filter, error) {
		return &jobdSink{}, nil
	})
}

// chaosWorker boots one worker, optionally with a fault plan installed
// before it serves.
func chaosWorker(t *testing.T, plan string) *dist.Worker {
	t.Helper()
	w, err := dist.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if plan != "" {
		p, err := faults.ParsePlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaults(p.Injector())
	}
	go w.Serve()
	t.Cleanup(w.Close)
	return w
}

// chaosRegistry builds the server registry and arranges for it to be
// dumped to $CHAOS_METRICS_DIR at cleanup (the CI chaos-jobd lane archives
// that directory when the lane fails).
func chaosRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	t.Cleanup(func() {
		dir := os.Getenv("CHAOS_METRICS_DIR")
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("chaos metrics dir: %v", err)
			return
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Logf("chaos metrics dump: %v", err)
			return
		}
		name := strings.ReplaceAll(t.Name(), "/", "_") + ".json"
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Logf("chaos metrics write: %v", err)
		}
	})
	return reg
}

// intJobSpec is a two-host pipeline with a deterministic frame count: the
// sink host receives exactly n data frames, so counted fault directives
// (kill=data:N, wedge=data:N:DUR) trigger mid-job by construction.
func intJobSpec(srcKind string, n int, srcHost, sinkHost string) jobd.JobSpec {
	return jobd.JobSpec{
		Name: "chaos",
		Graph: dist.GraphSpec{
			Filters: []dist.FilterSpec{
				{Name: "S", Kind: srcKind, Params: []byte{byte(n)}},
				{Name: "K", Kind: "jobdtest.sink"},
			},
			Streams: []core.StreamSpec{{Name: "ints", From: "S", To: "K"}},
		},
		Placement: []dist.PlacementEntry{
			{Filter: "S", Host: srcHost, Copies: 1},
			{Filter: "K", Host: sinkHost, Copies: 1},
		},
		Options: dist.Options{
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatMisses:   3,
		},
	}
}

func waitFor(t *testing.T, what string, d time.Duration, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !f() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func workerRecord(s *jobd.Server, host string) (jobd.WorkerInfo, bool) {
	for _, w := range s.Workers() {
		if w.Host == host {
			return w, true
		}
	}
	return jobd.WorkerInfo{}, false
}

// The acceptance kill scenario: a fault plan crashes the sink worker after
// its 5th data frame, mid-job. The failed run is charged to that worker
// (quarantined at one strike), the job re-queues with backoff, a
// replacement worker registered under the same name sits out the
// quarantine until the half-open probe reinstates it, and the retried job
// converges to done with the full delivery landing on the replacement.
func TestJobdChaosKillQuarantineReinstate(t *testing.T) {
	leakcheck.Check(t)
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "kill=data:5")
	reg := chaosRegistry(t)
	s := newServer(t, jobd.Config{
		Registry:          reg,
		RetryBackoff:      50 * time.Millisecond,
		RetryBackoffMax:   200 * time.Millisecond,
		QuarantineStrikes: 1,
		Probation:         250 * time.Millisecond,
		ProbeInterval:     50 * time.Millisecond,
	})
	s.RegisterWorker("a", wa.Addr(), "")
	s.RegisterWorker("b", wb.Addr(), "")

	const n = 20
	spec := intJobSpec("jobdtest.src", n, "a", "b")
	spec.MaxRetries = 3
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The failed run must quarantine the killed worker.
	waitFor(t, "worker b quarantined", 15*time.Second, func() bool {
		w, ok := workerRecord(s, "b")
		return ok && w.Quarantined
	})
	if got := reg.Counter("jobd.workers_quarantined").Value(); got < 1 {
		t.Fatalf("jobd.workers_quarantined = %d, want >= 1", got)
	}
	if got := reg.Counter("jobd.jobs_retried").Value(); got < 1 {
		t.Fatalf("jobd.jobs_retried = %d, want >= 1", got)
	}

	// A replacement worker re-announces the same placement name. The strike
	// record survives registration: the job must wait for the half-open
	// probe to reinstate the name, then retry onto the replacement.
	wb2 := chaosWorker(t, "")
	s.RegisterWorker("b", wb2.Addr(), "")

	res, err := s.Await(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateDone {
		t.Fatalf("job state %s after retries: %s", res.State, res.Err)
	}
	if res.Attempts < 1 {
		t.Fatalf("done job recorded %d attempts, want >= 1", res.Attempts)
	}
	if got := reg.Counter("jobd.workers_reinstated").Value(); got < 1 {
		t.Fatalf("jobd.workers_reinstated = %d, want >= 1", got)
	}
	w, _ := workerRecord(s, "b")
	if w.Quarantined || w.Strikes != 0 {
		t.Fatalf("reinstated worker record: %+v", w)
	}
	// At-least-once convergence: the replacement's sink saw the complete
	// stream (the killed attempt's partial delivery died with its worker).
	sink := wb2.Instances("K")[0].(*jobdSink)
	if sink.Seen != n || sink.Sum != n*(n-1)/2 {
		t.Fatalf("replacement sink saw %d (sum %d), want %d (sum %d)", sink.Seen, sink.Sum, n, n*(n-1)/2)
	}
}

// A wedge (frozen process: open sockets, stalled heartbeats) fails the
// first attempt via liveness detection, but the worker recovers before the
// backoff elapses: the retry succeeds on the SAME worker, one strike shy
// of quarantine, and the successful run clears its record.
func TestJobdChaosWedgeRetrySameWorker(t *testing.T) {
	leakcheck.Check(t)
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "wedge=data:5:800ms")
	reg := chaosRegistry(t)
	s := newServer(t, jobd.Config{
		Registry:          reg,
		RetryBackoff:      1200 * time.Millisecond, // past the wedge window
		RetryBackoffMax:   2 * time.Second,
		QuarantineStrikes: 3,
		ProbeInterval:     100 * time.Millisecond,
	})
	s.RegisterWorker("a", wa.Addr(), "")
	s.RegisterWorker("b", wb.Addr(), "")

	const n = 20
	spec := intJobSpec("jobdtest.src", n, "a", "b")
	spec.MaxRetries = 3
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Await(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateDone {
		t.Fatalf("job state %s after wedge: %s", res.State, res.Err)
	}
	if res.Attempts < 1 {
		t.Fatalf("job recorded %d attempts, want >= 1 (wedge never failed a run)", res.Attempts)
	}
	if got := reg.Counter("jobd.jobs_retried").Value(); got < 1 {
		t.Fatalf("jobd.jobs_retried = %d, want >= 1", got)
	}
	if got := reg.Counter("jobd.workers_quarantined").Value(); got != 0 {
		t.Fatalf("jobd.workers_quarantined = %d, want 0 (one strike is below the bound)", got)
	}
	// The successful retry on the same worker cleared its strike record.
	w, _ := workerRecord(s, "b")
	if w.Strikes != 0 || w.Quarantined {
		t.Fatalf("worker record after rewarded success: %+v", w)
	}
	// The retried session's sink instance received the complete stream.
	complete := false
	for _, inst := range wb.Instances("K") {
		if k := inst.(*jobdSink); k.Seen == n && k.Sum == n*(n-1)/2 {
			complete = true
		}
	}
	if !complete {
		t.Fatal("no sink instance on the recovered worker saw the complete stream")
	}
}

// A conformance pipeline whose worker dies between dispatch and session
// setup converges to done within its retry budget once a replacement
// registers, and the run satisfies the relaxed at-least-once delivery
// oracle — the correct oracle for a job whose failed attempts may have
// delivered partial traffic.
func TestJobdChaosRetryConvergesAtLeastOnce(t *testing.T) {
	leakcheck.Check(t)
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "")
	mesh := []string{"a", "b"}
	workers := map[string]*dist.Worker{"a": wa, "b": wb}

	// Find a seeded spec that actually uses both hosts.
	var dj *conformance.DistJob
	for seed := int64(50); ; seed++ {
		spec := conformance.Generate(seed, conformance.GenConfig{MaxHosts: 2})
		j, err := conformance.NewDistJob(spec, mesh)
		if err != nil {
			t.Fatal(err)
		}
		if len(j.Hosts) == 2 {
			dj = j
			break
		}
		j.Close()
		if seed > 200 {
			t.Fatal("no two-host conformance spec in seed range")
		}
	}
	defer dj.Close()

	reg := chaosRegistry(t)
	// A long probe interval keeps the prober from hiding the dead worker:
	// the dispatcher must run into it and the retry budget absorb it.
	s := newServer(t, jobd.Config{
		Registry:          reg,
		RetryBackoff:      100 * time.Millisecond,
		RetryBackoffMax:   time.Second,
		QuarantineStrikes: 10,
		ProbeInterval:     time.Hour,
	})
	s.RegisterWorker("a", wa.Addr(), "")
	s.RegisterWorker("b", wb.Addr(), "")

	// Kill the job's second host before submitting: the first attempt
	// dispatches against a dead address and fails, attributed to that host.
	victim := dj.Hosts[1]
	workers[victim].Kill()

	spec := confJobSpec(dj, "chaos", "at-least-once")
	spec.MaxRetries = 4
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first failed attempt", 20*time.Second, func() bool {
		j, ok := s.Get(id)
		return ok && j.Attempts >= 1
	})
	if w, ok := workerRecord(s, victim); !ok || w.Strikes < 1 {
		t.Fatalf("victim %s carries no strikes after the attributed failure: %+v", victim, w)
	}

	// Register a replacement under the victim's name and let the retry run.
	wrepl := chaosWorker(t, "")
	s.RegisterWorker(victim, wrepl.Addr(), "")
	res, err := s.Await(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateDone {
		t.Fatalf("job state %s within budget of 4 retries: %s", res.State, res.Err)
	}
	if got := reg.Counter("jobd.jobs_retried").Value(); got < 1 {
		t.Fatalf("jobd.jobs_retried = %d, want >= 1", got)
	}
	if v := dj.CheckAtLeastOnce(res.Stats); len(v) > 0 {
		t.Errorf("retried job violated the at-least-once oracle:\n%v", v)
	}
}

// A queued job whose TTL passes before any worker can take it fails with a
// deadline-attributed event, driven purely by the dispatcher's timer (no
// submissions or probes kick the loop in between).
func TestJobdChaosDeadlineQueued(t *testing.T) {
	leakcheck.Check(t)
	reg := chaosRegistry(t)
	s := newServer(t, jobd.Config{Registry: reg})
	spec := intJobSpec("jobdtest.src", 5, "a", "b") // no such workers
	spec.Deadline = 150 * time.Millisecond
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Await(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateFailed || !strings.Contains(res.Err, "deadline") {
		t.Fatalf("expired queued job: state %s err %q", res.State, res.Err)
	}
	events, _ := s.Events(id)
	found := false
	for _, e := range events {
		if strings.Contains(e.Msg, "deadline exceeded while queued") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deadline-attributed event: %+v", events)
	}
	if got := reg.Counter("jobd.jobs_deadline_exceeded").Value(); got != 1 {
		t.Fatalf("jobd.jobs_deadline_exceeded = %d, want 1", got)
	}
}

// A running job past its TTL has its dist session cancelled through the
// run context and fails with a deadline error — without consuming its
// retry budget on the way out.
func TestJobdChaosDeadlineRunning(t *testing.T) {
	leakcheck.Check(t)
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "")
	reg := chaosRegistry(t)
	s := newServer(t, jobd.Config{Registry: reg})
	s.RegisterWorker("a", wa.Addr(), "")
	s.RegisterWorker("b", wb.Addr(), "")

	// 20 writes x 50ms sleep: the session runs ~1s, the TTL is 400ms.
	spec := intJobSpec("jobdtest.slowsrc", 20, "a", "b")
	spec.Deadline = 400 * time.Millisecond
	spec.MaxRetries = 3
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Await(id, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateFailed || !strings.Contains(res.Err, "cancel") {
		t.Fatalf("deadlined running job: state %s err %q", res.State, res.Err)
	}
	if res.Attempts != 0 {
		t.Fatalf("deadline consumed the retry budget: %d attempts", res.Attempts)
	}
	if got := reg.Counter("jobd.jobs_deadline_exceeded").Value(); got != 1 {
		t.Fatalf("jobd.jobs_deadline_exceeded = %d, want 1", got)
	}
	if got := reg.Counter("jobd.jobs_retried").Value(); got != 0 {
		t.Fatalf("jobd.jobs_retried = %d, want 0", got)
	}
}

// DELETE /jobs/{id} cancels: a running job is torn down through the abort
// protocol and lands in cancelled; a queued job cancels immediately; a
// terminal job answers 409; an unknown id 404.
func TestJobdChaosCancelHTTP(t *testing.T) {
	leakcheck.Check(t)
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "")
	reg := chaosRegistry(t)
	s := newServer(t, jobd.Config{Registry: reg})
	s.RegisterWorker("a", wa.Addr(), "")
	s.RegisterWorker("b", wb.Addr(), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	httpDelete := func(url string, want int) []byte {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("DELETE %s = %d, want %d: %s", url, resp.StatusCode, want, buf.String())
		}
		return buf.Bytes()
	}

	// Running job: slow enough to catch mid-flight.
	id, err := s.Submit(intJobSpec("jobdtest.slowsrc", 40, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", 15*time.Second, func() bool {
		j, _ := s.Get(id)
		return j.State == jobd.StateRunning
	})
	httpDelete(fmt.Sprintf("%s/jobs/%d", ts.URL, id), http.StatusAccepted)
	res, err := s.Await(id, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateCancelled {
		t.Fatalf("cancelled running job: state %s err %q", res.State, res.Err)
	}
	// Cancelling again: terminal conflict.
	httpDelete(fmt.Sprintf("%s/jobs/%d", ts.URL, id), http.StatusConflict)
	httpDelete(ts.URL+"/jobs/99999", http.StatusNotFound)

	// Queued job (placed on a host that does not exist) cancels in place.
	qid, err := s.Submit(intJobSpec("jobdtest.src", 5, "nope", "nada"))
	if err != nil {
		t.Fatal(err)
	}
	var snap jobd.Job
	if err := json.Unmarshal(httpDelete(fmt.Sprintf("%s/jobs/%d", ts.URL, qid), http.StatusAccepted), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != jobd.StateCancelled {
		t.Fatalf("cancelled queued job snapshot: %+v", snap)
	}
	if got := reg.Counter("jobd.jobs_cancelled").Value(); got != 2 {
		t.Fatalf("jobd.jobs_cancelled = %d, want 2", got)
	}
}

// Load shedding: a full global queue and an over-age tenant backlog both
// reject with ErrOverload — 503 + Retry-After over HTTP — and count sheds.
func TestJobdChaosShedDepthAndAge(t *testing.T) {
	leakcheck.Check(t)
	reg := chaosRegistry(t)
	s := newServer(t, jobd.Config{
		Registry:       reg,
		MaxQueueDepth:  2,
		ShedRetryAfter: 7 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := intJobSpec("jobdtest.src", 5, "a", "b") // no workers: stays queued
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submission %d under the depth bound rejected: %v", i, err)
		}
	}
	if _, err := s.Submit(spec); !errors.Is(err, jobd.ErrOverload) {
		t.Fatalf("depth overflow: err = %v, want ErrOverload", err)
	}
	// Over HTTP: 503 with the configured Retry-After hint.
	b, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed over HTTP = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	if got := reg.Counter("jobd.jobs_shed").Value(); got != 2 {
		t.Fatalf("jobd.jobs_shed = %d, want 2", got)
	}

	// Age shedding: a tenant whose oldest queued job is over the bound.
	sAge := newServer(t, jobd.Config{MaxQueueAge: 50 * time.Millisecond})
	if _, err := sAge.Submit(spec); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := sAge.Submit(spec); !errors.Is(err, jobd.ErrOverload) {
		t.Fatalf("age overflow: err = %v, want ErrOverload", err)
	}
}

// A server restarted mid-backoff resumes the retry schedule from the
// journal: the attempt count and the not-before time survive, and the
// retry then converges to done on a replacement mesh.
func TestJobdChaosRestartMidBackoffResumes(t *testing.T) {
	leakcheck.Check(t)
	journal := filepath.Join(t.TempDir(), "jobs.jsonl")
	wa := chaosWorker(t, "")
	wb := chaosWorker(t, "kill=data:5")

	s1, err := jobd.NewServer(jobd.Config{
		JournalPath:       journal,
		RetryBackoff:      2 * time.Second, // wide backoff window to restart inside
		RetryBackoffMax:   4 * time.Second,
		QuarantineStrikes: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.RegisterWorker("a", wa.Addr(), "")
	s1.RegisterWorker("b", wb.Addr(), "")

	const n = 20
	spec := intJobSpec("jobdtest.src", n, "a", "b")
	spec.MaxRetries = 2
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job in backoff", 20*time.Second, func() bool {
		j, _ := s1.Get(id)
		return j.State == jobd.StateBackoff
	})
	before, _ := s1.Get(id)
	if before.Attempts != 1 || before.NotBefore.IsZero() {
		t.Fatalf("backoff snapshot before restart: %+v", before)
	}
	s1.Close() // die mid-backoff

	reg := chaosRegistry(t)
	s2 := newServer(t, jobd.Config{JournalPath: journal, Registry: reg})
	after, ok := s2.Get(id)
	if !ok {
		t.Fatalf("restarted server does not know job %d", id)
	}
	if after.State != jobd.StateBackoff || after.Attempts != 1 {
		t.Fatalf("replayed backoff job: state %s attempts %d, want backoff/1", after.State, after.Attempts)
	}
	if got, want := after.NotBefore.UnixMilli(), before.NotBefore.UnixMilli(); got != want {
		t.Fatalf("replayed notBefore %d, want the journaled %d", got, want)
	}

	// Fresh mesh under the same names; the resumed retry must finish.
	wa2 := chaosWorker(t, "")
	wb2 := chaosWorker(t, "")
	s2.RegisterWorker("a", wa2.Addr(), "")
	s2.RegisterWorker("b", wb2.Addr(), "")
	res, err := s2.Await(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobd.StateDone {
		t.Fatalf("resumed job state %s: %s", res.State, res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("resumed job ran %d failed attempts, want the journaled 1", res.Attempts)
	}
	sink := wb2.Instances("K")[0].(*jobdSink)
	if sink.Seen != n || sink.Sum != n*(n-1)/2 {
		t.Fatalf("sink after resumed retry saw %d (sum %d), want %d (sum %d)", sink.Seen, sink.Sum, n, n*(n-1)/2)
	}
}
