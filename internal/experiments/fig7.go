package experiments

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/tablefmt"
)

// RunFig7 reproduces Figure 7 (paper §4.5): rendering times for skewed
// distributions of the dataset between two Blue and two Rogue nodes, for
// the three filter configurations under each writer policy (active pixel,
// 2048x2048 output).
func RunFig7(scale Scale) (*Result, error) {
	ds, err := paperDataset(scale)
	if err != nil {
		return nil, err
	}
	w := isoviz.NewWorkload(ds, paperIso)
	nviews := 5
	size := 2048
	skews := []int{0, 25, 50, 75}
	if scale == Quick {
		nviews = 2
		size = 512
		skews = []int{0, 50}
	}

	var tables []*tablefmt.Table
	for _, skew := range skews {
		label := "balanced"
		if skew > 0 {
			label = fmt.Sprintf("skewed %d%%", skew)
		}
		t := tablefmt.New(
			fmt.Sprintf("%s - active pixel, %dx%d, 2 Blue + 2 Rogue nodes (seconds)", label, size, size),
			"config", "RR", "WRR", "DD")
		for _, cfg := range []isoviz.Config{isoviz.CombinedAll, isoviz.ExtractRaster, isoviz.ReadExtract} {
			row := []any{cfg.String()}
			for _, pol := range []core.Policy{core.RoundRobin(), core.WeightedRoundRobin(), core.DemandDriven()} {
				cl := cluster.New(freshKernel())
				blues := cluster.AddBlue(cl, 2)
				rogues := cluster.AddRogue(cl, 2)
				hosts := append(append([]string{}, blues...), rogues...)
				dist := dataset.DistributeEven(w.DS.Files, hosts, 2)
				if skew > 0 {
					dist.Skew(blues, rogues, skew, 2)
				}
				r := dcRun{
					Config: cfg, Alg: isoviz.ActivePixel, Policy: pol,
					W: w, Dist: dist, Views: paperViews(size, nviews),
					SrcHosts: hosts, MergeHost: blues[0],
					Chunks: paperQuery(w.DS),
				}
				_, sec, err := r.run(cl)
				if err != nil {
					return nil, fmt.Errorf("fig7 skew=%d %v %s: %w", skew, cfg, pol.Name(), err)
				}
				row = append(row, sec)
			}
			t.Row(row...)
		}
		tables = append(tables, t)
	}
	return &Result{
		ID: "fig7", Title: Title("fig7"), Tables: tables,
		Notes: []string{
			"expected shape: RERa-M is most sensitive to skew (SPMD: the node with the most data gates the run)",
			"decoupled configs let slow-node data be processed elsewhere; RE-Ra-M with DD is best overall",
		},
	}, nil
}
