package experiments

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/simrt"
	"datacutter/internal/tablefmt"
)

// The baseline experiment (paper §4.1, Tables 1 and 2): the four filters of
// the fully decomposed pipeline isolated on four separate hosts, rendering
// five timesteps of the 1.5 GB-class dataset into a 2048x2048 image, once
// with the z-buffer algorithm and once with active pixel. The paper's range
// query covers a sub-region of the volume (~29% — 443 of 1536 chunks); we
// query the centered box with 66% extent per axis.

type baselineOut struct {
	stats    *core.Stats
	perTS    float64
	nviews   int
	queryLen int
}

func runBaseline(scale Scale, alg isoviz.Algorithm, size int) (*baselineOut, error) {
	ds, err := baselineDataset(scale)
	if err != nil {
		return nil, err
	}
	w := isoviz.NewWorkload(ds, paperIso)

	// Centered range query covering 66% of each axis.
	qx0, qx1 := ds.GX*17/100, ds.GX*83/100
	qy0, qy1 := ds.GY*17/100, ds.GY*83/100
	qz0, qz1 := ds.GZ*17/100, ds.GZ*83/100
	chunks := ds.RangeQuery(qx0, qy0, qz0, qx1, qy1, qz1)

	cl := freshKernelCluster(func(cl *cluster.Cluster) { cluster.AddRogue(cl, 4) })
	// All data files on the read host's disks.
	dist := dataset.DistributeEven(ds.Files, []string{"rogue0"}, 2)

	nviews := 5
	if scale == Quick {
		nviews = 2
	}
	r := dcRun{
		Config: isoviz.FullPipeline, Alg: alg, Policy: core.RoundRobin(),
		W: w, Dist: dist, Views: paperViews(size, nviews),
		SrcHosts: []string{"rogue0"}, MergeHost: "rogue3",
		Chunks: chunks,
	}
	// Isolate E and Ra on their own hosts.
	r.WorkHosts = []string{"rogue2"}
	st, perTS, err := r.runIsolated(cl)
	if err != nil {
		return nil, err
	}
	return &baselineOut{stats: st, perTS: perTS, nviews: nviews, queryLen: len(chunks)}, nil
}

// runIsolated is dcRun.run with E pinned to its own host (the generic
// runner colocates E with the read hosts).
func (r dcRun) runIsolated(cl *cluster.Cluster) (*core.Stats, float64, error) {
	pl := core.NewPlacement().
		Place("R", "rogue0", 1).
		Place("E", "rogue1", 1).
		Place("Ra", "rogue2", 1).
		Place("M", r.MergeHost, 1)
	assign := isoviz.AssignByDistribution(r.W.DS, r.Dist, pl, "R")
	if r.Chunks != nil {
		assign = filterAssign(assign, r.Chunks)
	}
	spec := isoviz.ModelSpec{
		Config: isoviz.FullPipeline, Alg: r.Alg, W: r.W, Dist: r.Dist,
		Assign: assign, Costs: isoviz.DefaultCosts(),
	}
	// Synchronous reads: the baseline measures isolated per-filter cost
	// including the read filter's I/O time (paper Table 2).
	return runModelOpts(spec, pl, cl, simrt.Options{Policy: r.Policy, UOWs: r.Views, PrefetchDepth: 1})
}

// RunTable1 reproduces Table 1: buffers and MB transferred per stream for
// both algorithms (per timestep).
func RunTable1(scale Scale) (*Result, error) {
	size := 2048
	if scale == Quick {
		size = 512
	}
	zb, err := runBaseline(scale, isoviz.ZBuffer, size)
	if err != nil {
		return nil, err
	}
	ap, err := runBaseline(scale, isoviz.ActivePixel, size)
	if err != nil {
		return nil, err
	}

	t := tablefmt.New(
		fmt.Sprintf("Buffers and volume per timestep (%dx%d image, %d-chunk query)", size, size, zb.queryLen),
		"stream", "zb buffers", "zb MB", "ap buffers", "ap MB")
	row := func(label, stream string) {
		zs := zb.stats.Streams[stream]
		as := ap.stats.Streams[stream]
		n := int64(zb.nviews)
		t.Row(label,
			zs.Buffers/n, float64(zs.Bytes)/float64(n)/1e6,
			as.Buffers/n, float64(as.Bytes)/float64(n)/1e6)
	}
	row("R->E", isoviz.StreamVoxels)
	row("E->Ra", isoviz.StreamTriangles)
	row("Ra->M", isoviz.StreamPixels)
	return &Result{
		ID: "table1", Title: Title("table1"), Tables: []*tablefmt.Table{t},
		Notes: []string{
			"paper (2048x2048): R->E 443 bufs/38.6MB, E->Ra 470/11.8, Ra->M z-buffer 16/32.0, active pixel 469/28.5",
			"expected shape: active pixel ships many more, smaller Ra->M buffers with lower total volume",
		},
	}, nil
}

// RunTable2 reproduces Table 2: per-filter processing time per timestep for
// both algorithms.
func RunTable2(scale Scale) (*Result, error) {
	size := 2048
	if scale == Quick {
		size = 512
	}
	zb, err := runBaseline(scale, isoviz.ZBuffer, size)
	if err != nil {
		return nil, err
	}
	ap, err := runBaseline(scale, isoviz.ActivePixel, size)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New(
		fmt.Sprintf("Per-filter busy seconds per timestep (%dx%d image)", size, size),
		"algorithm", "R", "E", "Ra", "M", "sum")
	row := func(label string, o *baselineOut) {
		n := float64(o.nviews)
		var sum float64
		vals := make([]any, 0, 6)
		vals = append(vals, label)
		for _, f := range []string{"R", "E", "Ra", "M"} {
			_, a, _ := core.MinAvgMax(o.stats.Filters[f].BusySeconds)
			a /= n
			sum += a
			vals = append(vals, a)
		}
		vals = append(vals, sum)
		t.Row(vals...)
	}
	row("z-buffer", zb)
	row("active pixel", ap)
	return &Result{
		ID: "table2", Title: Title("table2"), Tables: []*tablefmt.Table{t},
		Notes: []string{
			"paper (2048x2048): R ~5.3s, E ~13s, Ra ~75-80s, M ~5-7s per timestep",
			"expected shape: raster dominates by far; merge cheaper with active pixel at large images",
		},
	}, nil
}
