package experiments

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/tablefmt"
)

// RunTable5 reproduces Table 5 (paper §4.4): the active-pixel algorithm
// with a varying number of 2-processor data nodes (Red cluster, Gigabit)
// plus the 8-processor Deathstar node as a compute node reachable only via
// Fast Ethernet. Merge and seven raster copies run on Deathstar; one copy
// of every non-merge filter runs on each data node.
func RunTable5(scale Scale) (*Result, error) {
	ds, err := paperDataset(scale)
	if err != nil {
		return nil, err
	}
	w := isoviz.NewWorkload(ds, paperIso)
	nviews := 5
	nodeCounts := []int{1, 2, 4, 8}
	if scale == Quick {
		nviews = 2
		nodeCounts = []int{1, 2, 4}
	}
	size := 2048
	if scale == Quick {
		size = 512
	}

	t := tablefmt.New(
		fmt.Sprintf("Avg seconds per timestep, active pixel, %dx%d image, 8-way compute node", size, size),
		"data nodes", "config", "RR", "WRR", "DD", "DD/4*")
	for _, n := range nodeCounts {
		for _, cfg := range []isoviz.Config{isoviz.ReadExtract, isoviz.ExtractRaster} {
			row := []any{n, cfg.String()}
			for _, pol := range []core.Policy{core.RoundRobin(), core.WeightedRoundRobin(), core.DemandDriven(), core.DemandDrivenBatched(4)} {
				cl := cluster.New(freshKernel())
				reds := cluster.AddRed(cl, n)
				dsHost := cluster.AddDeathstar(cl)
				dist := dataset.DistributeEven(w.DS.Files, reds, 1)

				pl := core.NewPlacement()
				src := cfg.SourceFilter()
				for _, h := range reds {
					pl.Place(src, h, 1)
				}
				wk := cfg.WorkerFilter()
				for _, h := range reds {
					pl.Place(wk, h, 1)
				}
				pl.Place(wk, dsHost, 7)
				pl.Place("M", dsHost, 1)

				assign := filterAssign(isoviz.AssignByDistribution(w.DS, dist, pl, src), paperQuery(w.DS))
				spec := isoviz.ModelSpec{
					Config: cfg, Alg: isoviz.ActivePixel, W: w, Dist: dist,
					Assign: assign, Costs: isoviz.DefaultCosts(),
				}
				_, sec, err := runModel(spec, pl, cl, pol, paperViews(size, nviews))
				if err != nil {
					return nil, fmt.Errorf("table5 n=%d %v %s: %w", n, cfg, pol.Name(), err)
				}
				row = append(row, sec)
			}
			t.Row(row...)
		}
	}
	return &Result{
		ID: "table5", Title: Title("table5"), Tables: []*tablefmt.Table{t},
		Notes: []string{
			"expected shape: WRR best (dedicated nodes; DD ack messages pay the slow Fast Ethernet link to the compute node)",
			"RE-Ra-M beats R-ERa-M (lower communication volume); the compute node helps most at few data nodes",
			"*extension (paper §6 follow-up): DD with 4-fold batched acks cuts ack traffic; the batch factor must stay below the queue window or demand information goes stale",
		},
	}, nil
}
