package experiments

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/tablefmt"
)

// The heterogeneous comparison (paper §4.2, Figure 5 and Table 3): half
// Rogue + half Blue nodes, with 0/1/4/16 background jobs on every Rogue
// node (the Blue nodes stay dedicated).

func fig5Groups(scale Scale) []int {
	if scale == Quick {
		return []int{2} // 2 Rogue + 2 Blue
	}
	return []int{2, 4, 8}
}

var fig5BgJobs = []int{0, 1, 4, 16}

// buildHalfHalf returns a builder for n Rogue + n Blue nodes with bg
// background jobs on the Rogue nodes.
func buildHalfHalf(n, bg int) func(cl *cluster.Cluster) []string {
	return func(cl *cluster.Cluster) []string {
		rogues := cluster.AddRogue(cl, n)
		blues := cluster.AddBlue(cl, n)
		for _, r := range rogues {
			cl.Host(r).SetBackgroundJobs(bg)
		}
		return append(rogues, blues...)
	}
}

// RunFig5 reproduces Figure 5: per-timestep times normalized to the
// original ADR implementation, as Rogue background load grows.
func RunFig5(scale Scale) (*Result, error) {
	ds, err := paperDataset(scale)
	if err != nil {
		return nil, err
	}
	w := isoviz.NewWorkload(ds, paperIso)
	nviews := 5
	if scale == Quick {
		nviews = 2
	}
	var tables []*tablefmt.Table
	for _, n := range fig5Groups(scale) {
		t := tablefmt.New(
			fmt.Sprintf("%d Rogue + %d Blue nodes (normalized to ADR; ADR seconds in parens)", n, n),
			"bg jobs", "image", "ADR", "DC z-buffer", "DC active pixel")
		for _, bg := range fig5BgJobs {
			for _, size := range fig4Sizes(scale) {
				adrT, zb, ap, err := runTrio(buildHalfHalf(n, bg), w, size, nviews)
				if err != nil {
					return nil, fmt.Errorf("fig5 n=%d bg=%d size=%d: %w", n, bg, size, err)
				}
				t.Row(bg, fmt.Sprintf("%dx%d", size, size),
					fmt.Sprintf("1.00 (%.2fs)", adrT), zb/adrT, ap/adrT)
			}
		}
		tables = append(tables, t)
	}
	return &Result{
		ID: "fig5", Title: Title("fig5"), Tables: tables,
		Notes: []string{
			"expected shape: ADR degrades sharply as bg jobs grow (static partition cannot shed load), worse at 2048^2",
			"both DataCutter versions stay nearly flat; normalized DC values fall well below 1.0 at bg=4,16",
		},
	}, nil
}

// RunTable3 reproduces Table 3: average E->Ra buffers received per Raster
// copy per node class under the demand-driven policy, for the fig5 setups.
func RunTable3(scale Scale) (*Result, error) {
	ds, err := paperDataset(scale)
	if err != nil {
		return nil, err
	}
	w := isoviz.NewWorkload(ds, paperIso)
	nviews := 5
	if scale == Quick {
		nviews = 2
	}
	var tables []*tablefmt.Table
	for _, n := range fig5Groups(scale) {
		t := tablefmt.New(
			fmt.Sprintf("%d Rogue + %d Blue nodes: avg buffers per Raster copy (DD)", n, n),
			"bg jobs", "image", "alg", "rogue", "blue")
		for _, bg := range fig5BgJobs {
			for _, size := range fig4Sizes(scale) {
				for _, alg := range []isoviz.Algorithm{isoviz.ZBuffer, isoviz.ActivePixel} {
					cl := cluster.New(freshKernel())
					hosts := buildHalfHalf(n, bg)(cl)
					dist := dataset.DistributeEven(w.DS.Files, hosts, 2)
					r := dcRun{
						Config: isoviz.ReadExtract, Alg: alg, Policy: core.DemandDriven(),
						W: w, Dist: dist, Views: paperViews(size, nviews),
						SrcHosts: hosts, MergeHost: hosts[0],
						Chunks: paperQuery(w.DS),
					}
					st, _, err := r.run(cl)
					if err != nil {
						return nil, err
					}
					var rogue, blue int64
					per := st.Streams[isoviz.StreamTriangles].PerTargetHost
					for host, count := range per {
						if cl.Host(host).Spec.NICBandwidth < 20e6 { // Rogue NICs are Fast Ethernet
							rogue += count
						} else {
							blue += count
						}
					}
					t.Row(bg, fmt.Sprintf("%dx%d", size, size), alg.String(),
						rogue/int64(n*nviews), blue/int64(n*nviews))
				}
			}
		}
		tables = append(tables, t)
	}
	return &Result{
		ID: "table3", Title: Title("table3"), Tables: tables,
		Notes: []string{
			"expected shape: with bg=0 the split is near even; as bg jobs grow, DD shifts buffers from loaded Rogue to dedicated Blue",
			"the shift is stronger at 2048^2 (more raster work per buffer)",
		},
	}, nil
}
