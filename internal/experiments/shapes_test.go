package experiments

import (
	"strconv"
	"strings"
	"testing"

	"datacutter/internal/leakcheck"
	"datacutter/internal/tablefmt"
)

// The shape assertions below check, at quick scale, that each regenerated
// artifact reproduces the paper's qualitative findings — who wins, in which
// direction effects move — not absolute numbers.

func cellF(t *testing.T, tb *tablefmt.Table, row, col int) float64 {
	t.Helper()
	s := tb.Cell(row, col)
	// Strip annotations like "1.00 (123.45s)".
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Cell(row, col), err)
	}
	return v
}

func cellI(t *testing.T, tb *tablefmt.Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(tb.Cell(row, col), 10, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not integer: %v", row, col, tb.Cell(row, col), err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("table1", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	// Row 2 is Ra->M: [stream, zbBufs, zbMB, apBufs, apMB].
	zbBufs, apBufs := cellI(t, tb, 2, 1), cellI(t, tb, 2, 3)
	zbMB, apMB := cellF(t, tb, 2, 2), cellF(t, tb, 2, 4)
	if apBufs <= zbBufs {
		t.Fatalf("active pixel should send more Ra->M buffers: ap=%d zb=%d", apBufs, zbBufs)
	}
	if apMB >= zbMB {
		t.Fatalf("active pixel should move less Ra->M volume: ap=%.2f zb=%.2f", apMB, zbMB)
	}
	// E is data-reducing: E->Ra volume below R->E volume.
	if cellF(t, tb, 1, 2) >= cellF(t, tb, 0, 2) {
		t.Fatal("extract stage should reduce data volume")
	}
}

func TestTable2Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("table2", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	for row := 0; row < 2; row++ {
		r := cellF(t, tb, row, 1)
		e := cellF(t, tb, row, 2)
		ra := cellF(t, tb, row, 3)
		if !(ra > e && ra > r) {
			t.Fatalf("row %d: raster must dominate (R=%.2f E=%.2f Ra=%.2f)", row, r, e, ra)
		}
	}
	// Active pixel merges cheaper than z-buffer at the merge filter.
	if cellF(t, tb, 1, 4) > cellF(t, tb, 0, 4) {
		t.Fatal("active-pixel merge should not cost more than z-buffer merge")
	}
}

func TestFig4Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("fig4", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	// Times fall as nodes grow (same image size: compare first and last
	// rows of the same size).
	firstADR := cellF(t, tb, 0, 2)
	lastADR := cellF(t, tb, tb.Rows()-2, 2)
	if lastADR >= firstADR {
		t.Fatalf("ADR does not scale with nodes: %v -> %v", firstADR, lastADR)
	}
	// DataCutter stays within 35% of ADR everywhere at quick scale.
	for row := 0; row < tb.Rows(); row++ {
		adr := cellF(t, tb, row, 2)
		for col := 3; col <= 4; col++ {
			if v := cellF(t, tb, row, col); v > adr*1.35 {
				t.Fatalf("row %d col %d: DC %.2f vs ADR %.2f — not competitive", row, col, v, adr)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("fig5", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	// Columns: bg, image, ADR(=1.00), zb, ap. At the highest load the
	// normalized DataCutter values must be clearly below 1.
	last := tb.Rows() - 1
	if zb, ap := cellF(t, tb, last, 3), cellF(t, tb, last, 4); zb >= 1 || ap >= 1 {
		t.Fatalf("DataCutter should beat ADR under heavy load: zb=%.2f ap=%.2f", zb, ap)
	}
	// And the advantage must grow with load: normalized value at bg=16
	// below value at bg=0 for active pixel.
	if first, lastV := cellF(t, tb, 0, 4), cellF(t, tb, last, 4); lastV >= first {
		t.Fatalf("DC advantage should grow with load: %.2f -> %.2f", first, lastV)
	}
}

func TestTable3Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("table3", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	// Columns: bg, image, alg, rogue, blue. With no load the split is
	// within 35%; at bg=16 blue must receive clearly more.
	r0, b0 := cellI(t, tb, 0, 3), cellI(t, tb, 0, 4)
	if r0 > b0*135/100 || b0 > r0*135/100 {
		t.Fatalf("unloaded split should be near even: rogue=%d blue=%d", r0, b0)
	}
	last := tb.Rows() - 1
	rN, bN := cellI(t, tb, last, 3), cellI(t, tb, last, 4)
	if bN <= rN {
		t.Fatalf("DD should shift buffers to blue under load: rogue=%d blue=%d", rN, bN)
	}
	// The shift at high load is stronger than at no load.
	if float64(bN)/float64(rN+1) <= float64(b0)/float64(r0+1) {
		t.Fatalf("shift should grow with load: %d/%d -> %d/%d", b0, r0, bN, rN)
	}
}

func TestTable4Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("table4", Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range res.Tables {
		for row := 0; row < tb.Rows(); row++ {
			cfg := tb.Cell(row, 1)
			apRR, apDD := cellF(t, tb, row, 2), cellF(t, tb, row, 3)
			if cfg == "RERa-M" {
				// Single combined filter: no demand-driven distribution
				// possible; DD must not help materially.
				if apDD < apRR*0.9 {
					t.Fatalf("RERa-M should gain nothing from DD: RR=%.2f DD=%.2f", apRR, apDD)
				}
				continue
			}
			// Under load (rows with bg>0), DD should not lose to RR by
			// more than noise.
			if bg := tb.Cell(row, 0); bg != "0" && apDD > apRR*1.1 {
				t.Fatalf("%s bg=%s: DD (%.2f) worse than RR (%.2f)", cfg, bg, apDD, apRR)
			}
		}
	}
}

func TestTable5Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("table5", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	// Columns: nodes, config, RR, WRR, DD. WRR must beat plain RR (the
	// 8-way node runs 7 copies and deserves proportional traffic).
	for row := 0; row < tb.Rows(); row++ {
		rr, wrr := cellF(t, tb, row, 2), cellF(t, tb, row, 3)
		if wrr > rr*1.05 {
			t.Fatalf("row %d: WRR (%.2f) should not lose to RR (%.2f)", row, wrr, rr)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run("fig7", Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Tables are [balanced, skewed...]; rows: RERa-M, R-ERa-M, RE-Ra-M.
	balanced, skewed := res.Tables[0], res.Tables[len(res.Tables)-1]
	// RERa-M (row 0) degrades with skew under every policy.
	for col := 1; col <= 3; col++ {
		b, s := cellF(t, balanced, 0, col), cellF(t, skewed, 0, col)
		if s <= b {
			t.Fatalf("RERa-M should degrade with skew (col %d): %.2f -> %.2f", col, b, s)
		}
	}
	// The decoupled RE-Ra-M with DD handles skew better than RERa-M.
	if re := cellF(t, skewed, 2, 3); re >= cellF(t, skewed, 0, 3) {
		t.Fatalf("RE-Ra-M+DD (%.2f) should beat RERa-M (%.2f) under skew", re, cellF(t, skewed, 0, 3))
	}
}
