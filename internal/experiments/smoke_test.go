package experiments

import (
	"testing"

	"datacutter/internal/leakcheck"
)

func TestQuickSmokeAll(t *testing.T) {
	leakcheck.Check(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, Quick)
			if err != nil {
				t.Fatal(err)
			}
			t.Log("\n" + res.String())
		})
	}
}
