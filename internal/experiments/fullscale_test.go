package experiments

import (
	"datacutter/internal/leakcheck"
	"os"
	"testing"
)

// TestFullScaleAll runs every experiment at paper scale when
// DATACUTTER_FULL=1 (slow; used to generate EXPERIMENTS.md data).
func TestFullScaleAll(t *testing.T) {
	leakcheck.Check(t)
	if os.Getenv("DATACUTTER_FULL") == "" {
		t.Skip("set DATACUTTER_FULL=1 for paper-scale runs")
	}
	for _, id := range IDs() {
		res, err := Run(id, Full)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Log("\n" + res.String())
	}
}
