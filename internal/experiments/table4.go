package experiments

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/tablefmt"
)

// RunTable4 reproduces Table 4 (paper §4.3): execution time of the three
// filter configurations under RR and DD with background jobs. Eight Rogue
// nodes: seven run one copy of every filter except merge (background jobs
// on four of them), the eighth runs one copy of every filter including
// merge.
func RunTable4(scale Scale) (*Result, error) {
	ds, err := paperDataset(scale)
	if err != nil {
		return nil, err
	}
	w := isoviz.NewWorkload(ds, paperIso)
	nviews := 5
	bgJobs := []int{0, 1, 4, 16}
	configs := []isoviz.Config{isoviz.CombinedAll, isoviz.ReadExtract, isoviz.ExtractRaster}
	if scale == Quick {
		nviews = 2
		bgJobs = []int{0, 4}
	}

	var tables []*tablefmt.Table
	for _, size := range fig4Sizes(scale) {
		t := tablefmt.New(
			fmt.Sprintf("Avg seconds per timestep, 8 Rogue nodes, %dx%d image", size, size),
			"bg", "config", "AP RR", "AP DD", "ZB RR", "ZB DD")
		for _, bg := range bgJobs {
			for _, cfg := range configs {
				row := []any{bg, cfg.String()}
				for _, alg := range []isoviz.Algorithm{isoviz.ActivePixel, isoviz.ZBuffer} {
					for _, pol := range []core.Policy{core.RoundRobin(), core.DemandDriven()} {
						cl := cluster.New(freshKernel())
						hosts := cluster.AddRogue(cl, 8)
						// Background jobs on 4 of the 7 non-merge nodes.
						for i := 0; i < 4; i++ {
							cl.Host(hosts[i]).SetBackgroundJobs(bg)
						}
						merge := hosts[7]
						workers := hosts[:7]
						dist := dataset.DistributeEven(w.DS.Files, hosts, 2)
						r := dcRun{
							Config: cfg, Alg: alg, Policy: pol,
							W: w, Dist: dist, Views: paperViews(size, nviews),
							SrcHosts: hosts, WorkHosts: append(append([]string{}, workers...), merge),
							MergeHost: merge,
							Chunks:    paperQuery(w.DS),
						}
						_, sec, err := r.run(cl)
						if err != nil {
							return nil, fmt.Errorf("table4 %v/%v/%s bg=%d: %w", cfg, alg, pol.Name(), bg, err)
						}
						row = append(row, sec)
					}
				}
				t.Row(row...)
			}
		}
		tables = append(tables, t)
	}
	return &Result{
		ID: "table4", Title: Title("table4"), Tables: tables,
		Notes: []string{
			"expected shape: DD <= RR wherever copies exist to schedule between; RERa-M gains nothing from DD",
			"RE-Ra-M is best overall (raster is the bottleneck and RE->Ra volume is low)",
			"times grow with bg jobs for all, but far less under DD",
		},
	}, nil
}
