package experiments

import (
	"fmt"

	"datacutter/internal/adr"
	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/tablefmt"
)

// fig4Sizes are the two output image sizes of Figures 4 and 5.
func fig4Sizes(scale Scale) []int {
	if scale == Quick {
		return []int{128, 512}
	}
	return []int{512, 2048}
}

func fig4Nodes(scale Scale) []int {
	if scale == Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8}
}

// adrViews converts paperViews output for the ADR runner.
func adrViews(views []any) []isoviz.View {
	out := make([]isoviz.View, len(views))
	for i, v := range views {
		out[i] = v.(isoviz.View)
	}
	return out
}

// runTrio runs the three systems of Figures 4/5 — original ADR, DataCutter
// z-buffer, DataCutter active pixel — on the given cluster builder and
// returns average per-timestep seconds for each.
func runTrio(build func(cl *cluster.Cluster) (hosts []string), w *isoviz.Workload, size, nviews int) (adrT, dcZB, dcAP float64, err error) {
	views := paperViews(size, nviews)
	query := paperQuery(w.DS)

	// ADR.
	{
		cl := cluster.New(freshKernel())
		hosts := build(cl)
		dist := dataset.DistributeEven(w.DS.Files, hosts, disksOf(cl, hosts[0]))
		res, e := adr.RunSim(cl, adr.SimOptions{
			W: w, Dist: dist, Costs: isoviz.DefaultCosts(), Hosts: hosts,
			Views: adrViews(views), Chunks: query,
		})
		if e != nil {
			return 0, 0, 0, e
		}
		adrT = avg(res.PerUOWSeconds)
	}
	// DataCutter, RE–Ra–M (paper §4.2), both algorithms, demand driven.
	for _, alg := range []isoviz.Algorithm{isoviz.ZBuffer, isoviz.ActivePixel} {
		cl := cluster.New(freshKernel())
		hosts := build(cl)
		dist := dataset.DistributeEven(w.DS.Files, hosts, disksOf(cl, hosts[0]))
		r := dcRun{
			Config: isoviz.ReadExtract, Alg: alg, Policy: core.DemandDriven(),
			W: w, Dist: dist, Views: views,
			SrcHosts: hosts, MergeHost: hosts[0],
			Chunks: query,
		}
		_, t, e := r.run(cl)
		if e != nil {
			return 0, 0, 0, e
		}
		if alg == isoviz.ZBuffer {
			dcZB = t
		} else {
			dcAP = t
		}
	}
	return adrT, dcZB, dcAP, nil
}

func disksOf(cl *cluster.Cluster, host string) int {
	n := len(cl.Host(host).Disks)
	if n < 1 {
		return 1
	}
	return n
}

// RunFig4 reproduces Figure 4: absolute rendering times for the original
// ADR implementation and the two DataCutter versions on 1..8 dedicated
// homogeneous Rogue nodes, at two output sizes.
func RunFig4(scale Scale) (*Result, error) {
	ds, err := paperDataset(scale)
	if err != nil {
		return nil, err
	}
	w := isoviz.NewWorkload(ds, paperIso)
	nviews := 5
	if scale == Quick {
		nviews = 2
	}
	t := tablefmt.New("Avg seconds per timestep, homogeneous Rogue nodes",
		"nodes", "image", "ADR", "DC z-buffer", "DC active pixel")
	for _, nodes := range fig4Nodes(scale) {
		for _, size := range fig4Sizes(scale) {
			nodes, size := nodes, size
			build := func(cl *cluster.Cluster) []string { return cluster.AddRogue(cl, nodes) }
			adrT, zb, ap, err := runTrio(build, w, size, nviews)
			if err != nil {
				return nil, fmt.Errorf("fig4 nodes=%d size=%d: %w", nodes, size, err)
			}
			t.Row(nodes, fmt.Sprintf("%dx%d", size, size), adrT, zb, ap)
		}
	}
	return &Result{
		ID: "fig4", Title: Title("fig4"), Tables: []*tablefmt.Table{t},
		Notes: []string{
			"expected shape: ADR <= DC z-buffer (within ~20%); DC active pixel ~= ADR, winning at 8 nodes / 2048^2",
			"all three scale with nodes; times drop roughly linearly until the merge bottleneck",
		},
	}, nil
}
