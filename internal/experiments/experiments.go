// Package experiments reproduces every table and figure of the paper's
// evaluation (§4). Each experiment builds the corresponding cluster model,
// dataset, filter configuration, and policies, runs it in virtual time, and
// prints rows shaped like the paper's artifact. See DESIGN.md §4 for the
// per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dataset"
	"datacutter/internal/isoviz"
	"datacutter/internal/obs"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
	"datacutter/internal/tablefmt"
)

// Scale selects workload size: Full reproduces the paper-scale datasets;
// Quick shrinks grids for fast runs (tests, benchmarks).
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// ParseScale maps "full"/"quick".
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "quick", "":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Quick, fmt.Errorf("experiments: unknown scale %q", s)
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*tablefmt.Table
	Notes  []string
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner func(Scale) (*Result, error)

var titles = map[string]string{
	"table1": "Buffer counts and volume between filters (Z-buffer vs Active Pixel)",
	"table2": "Per-filter processing times",
	"fig4":   "ADR vs DataCutter on homogeneous nodes",
	"fig5":   "ADR vs DataCutter under background load (normalized)",
	"table3": "E->Ra buffers received per node class under load",
	"table4": "Filter configurations x writer policies with background load",
	"table5": "Writer policies with an 8-way compute node",
	"fig7":   "Skewed data distributions",
}

// runners is populated in init to avoid an initialization cycle (the
// experiment functions themselves call Title).
var runners map[string]Runner

func init() {
	runners = map[string]Runner{
		"table1": RunTable1,
		"table2": RunTable2,
		"fig4":   RunFig4,
		"fig5":   RunFig5,
		"table3": RunTable3,
		"table4": RunTable4,
		"table5": RunTable5,
		"fig7":   RunFig7,
	}
}

// IDs lists the experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(titles))
	for id := range titles {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's title.
func Title(id string) string { return titles[id] }

// defaultObserver, when set via SetObserver, is attached to every simulated
// run an experiment launches (unless the run supplies its own). It lets CLI
// tools like dcbench trace and meter experiments without threading an
// observer through every runner signature.
var defaultObserver *obs.Observer

// SetObserver installs the package-wide default observer for subsequent
// experiment runs. Pass nil to disable. Not safe to call concurrently with
// Run.
func SetObserver(o *obs.Observer) { defaultObserver = o }

// Run executes one experiment by id.
func Run(id string, scale Scale) (*Result, error) {
	fn, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return fn(scale)
}

// ---- Shared workload construction ----

// paperDataset returns the 25 GB-class dataset (1024x1024x640 over 10
// timesteps, 24576 chunks, 64 files) or its quick-scale stand-in.
func paperDataset(scale Scale) (*dataset.Dataset, error) {
	m := dataset.Meta{Seed: 2002, Plumes: 5, Timesteps: 10, Files: 64}
	if scale == Full {
		m.GX, m.GY, m.GZ = 1025, 1025, 641
		m.BX, m.BY, m.BZ = 32, 32, 24 // 24,576 chunks
	} else {
		m.GX, m.GY, m.GZ = 129, 129, 97
		m.BX, m.BY, m.BZ = 8, 8, 6
	}
	return dataset.New(m)
}

// baselineDataset returns the 1.5 GB-class dataset (384x384x256, 1536
// chunks, 64 files) or its quick-scale stand-in.
func baselineDataset(scale Scale) (*dataset.Dataset, error) {
	m := dataset.Meta{Seed: 1999, Plumes: 4, Timesteps: 10, Files: 64}
	if scale == Full {
		m.GX, m.GY, m.GZ = 385, 385, 257
		m.BX, m.BY, m.BZ = 16, 16, 6 // 1,536 chunks
	} else {
		m.GX, m.GY, m.GZ = 97, 97, 65
		m.BX, m.BY, m.BZ = 8, 8, 3
	}
	return dataset.New(m)
}

// paperIso is the isovalue used by every experiment, chosen so the
// extracted surface's data volume is ~10-25% of the voxel volume — the
// data-reducing extract stage the paper's Table 1 shows (38.6 MB of voxels
// -> 11.8 MB of triangles).
const paperIso = 1.0

// paperQuery returns the chunks of the visualization range query used by
// the cluster-scale experiments: the centered box spanning 50% of each
// axis. It contains most of the plume surface, so — like the paper's runs —
// the raster stage dominates the extract stage (Table 2's 75s vs 13s).
func paperQuery(ds *dataset.Dataset) []int {
	return ds.RangeQuery(
		ds.GX/4, ds.GY/4, ds.GZ/4,
		ds.GX*3/4, ds.GY*3/4, ds.GZ*3/4)
}

// paperViews returns the paper's measurement protocol: five consecutive
// timesteps rendered into a size x size frame.
func paperViews(size int, timesteps int) []any {
	views := make([]any, timesteps)
	for i := range views {
		v := isoviz.DefaultView(paperIso)
		v.Timestep = i
		v.Width, v.Height = size, size
		views[i] = v
	}
	return views
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// dcRun describes one DataCutter run on a simulated cluster.
type dcRun struct {
	Config isoviz.Config
	Alg    isoviz.Algorithm
	Policy core.Policy
	W      *isoviz.Workload
	Dist   *dataset.Distribution
	Views  []any
	// SrcHosts hold the data (and the source filter copies); WorkHosts run
	// the compute filter copies (default: SrcHosts); MergeHost runs M.
	SrcHosts  []string
	WorkHosts []string
	// WorkCopies is the number of worker copies per work host (default 1).
	WorkCopies int
	MergeHost  string
	// Chunks restricts the run to a chunk subset (range query); nil = all.
	Chunks []int
}

// run executes the DataCutter configuration on the cluster and returns the
// stats and the average per-timestep virtual seconds.
func (r dcRun) run(cl *cluster.Cluster) (*core.Stats, float64, error) {
	work := r.WorkHosts
	if work == nil {
		work = r.SrcHosts
	}
	copies := r.WorkCopies
	if copies < 1 {
		copies = 1
	}
	pl := core.NewPlacement()
	src := r.Config.SourceFilter()
	for _, h := range r.SrcHosts {
		pl.Place(src, h, 1)
	}
	if r.Config == isoviz.FullPipeline {
		for _, h := range r.SrcHosts {
			pl.Place("E", h, 1)
		}
	}
	if wk := r.Config.WorkerFilter(); wk != "" {
		for _, h := range work {
			pl.Place(wk, h, copies)
		}
	}
	pl.Place("M", r.MergeHost, 1)

	assign := isoviz.AssignByDistribution(r.W.DS, r.Dist, pl, src)
	if r.Chunks != nil {
		assign = filterAssign(assign, r.Chunks)
	}
	spec := isoviz.ModelSpec{
		Config: r.Config, Alg: r.Alg, W: r.W, Dist: r.Dist,
		Assign: assign, Costs: isoviz.DefaultCosts(),
	}
	return runModel(spec, pl, cl, r.Policy, r.Views)
}

// runModel executes a model pipeline and returns (stats, avg per-UOW
// virtual seconds, error).
func runModel(spec isoviz.ModelSpec, pl *core.Placement, cl *cluster.Cluster, pol core.Policy, views []any) (*core.Stats, float64, error) {
	return runModelOpts(spec, pl, cl, simrt.Options{Policy: pol, UOWs: views})
}

func runModelOpts(spec isoviz.ModelSpec, pl *core.Placement, cl *cluster.Cluster, opts simrt.Options) (*core.Stats, float64, error) {
	if opts.Obs == nil {
		opts.Obs = defaultObserver
	}
	runner, err := simrt.NewRunner(spec.Build(), pl, cl, opts)
	if err != nil {
		return nil, 0, err
	}
	st, err := runner.Run()
	if err != nil {
		return nil, 0, err
	}
	return st, avg(st.PerUOWSeconds), nil
}

// filterAssign restricts an assignment to an allowed chunk set.
func filterAssign(base isoviz.Assign, allowed []int) isoviz.Assign {
	ok := make(map[int]bool, len(allowed))
	for _, c := range allowed {
		ok[c] = true
	}
	return func(ctx core.Ctx) []int {
		var out []int
		for _, c := range base(ctx) {
			if ok[c] {
				out = append(out, c)
			}
		}
		return out
	}
}

// freshKernel returns a new virtual clock so every run starts at time zero.
func freshKernel() *sim.Kernel { return sim.NewKernel() }

// freshKernelCluster builds a cluster on a fresh kernel via the supplied
// builder, so every run starts from virtual time zero.
func freshKernelCluster(build func(cl *cluster.Cluster)) *cluster.Cluster {
	cl := cluster.New(freshKernel())
	build(cl)
	return cl
}
