// Package leakcheck is a stdlib-only goroutine-leak guard for tests. It
// records the goroutine count when a test starts and, at cleanup, polls
// until the count settles back to (near) the baseline — flusher, reader,
// and heartbeat goroutines from a distributed run must all have exited.
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// slack tolerates runtime-internal goroutines (finalizer, test timers)
// that come and go independently of the code under test.
const slack = 2

// Check installs the guard. Call it FIRST in a test, before any helper
// that registers its own t.Cleanup (cleanups run LIFO, so the guard's
// cleanup then runs last, after the helpers have torn everything down).
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return // the failure is the story; a leak report would bury it
		}
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines, started with %d (+%d slack)\n%s",
			n, base, slack, truncate(buf, 16<<10))
	})
}

func truncate(b []byte, max int) string {
	if len(b) <= max {
		return string(b)
	}
	return fmt.Sprintf("%s\n... (%d more bytes)", b[:max], len(b)-max)
}
