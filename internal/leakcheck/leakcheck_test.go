package leakcheck

import (
	"testing"
	"time"
)

// TestCheckPassesWhenGoroutinesSettle exercises the happy path: a goroutine
// that exits before cleanup must not trip the guard, even if it is still
// running at cleanup entry (the guard polls).
func TestCheckPassesWhenGoroutinesSettle(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	<-done
}

func TestTruncate(t *testing.T) {
	if got := truncate([]byte("short"), 10); got != "short" {
		t.Fatalf("truncate small: %q", got)
	}
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'x'
	}
	got := truncate(long, 10)
	if len(got) >= 100 || got[:10] != "xxxxxxxxxx" {
		t.Fatalf("truncate large: %q", got)
	}
}
