// Package simrt executes a core filter graph on a simulated heterogeneous
// cluster in virtual time. It is the second engine for internal/core: the
// same Graph, Placement, Filter implementations, and — crucially — the very
// same Policy objects (RR, WRR, DD) drive buffer distribution, so scheduling
// behaviour measured here is the behaviour of the production code, not a
// re-implementation.
//
// Filters run as simulated processes. Ctx.Compute charges the host's
// processor-sharing CPU (where background jobs compete at equal priority),
// Ctx.ChargeDisk charges the host's disks, buffer writes occupy sender and
// receiver NICs for their wire time, and demand-driven acknowledgments are
// real small messages that queue on the same NICs — reproducing the paper's
// observation that DD ack traffic is costly on slow networks.
package simrt

import (
	"fmt"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/elastic"
	"datacutter/internal/exec"
	"datacutter/internal/obs"
	"datacutter/internal/sim"
)

// Options configures a simulated run.
type Options struct {
	// Policy is the default writer policy (RoundRobin if nil);
	// StreamPolicy overrides per stream.
	Policy       core.Policy
	StreamPolicy map[string]core.Policy
	// QueueCap is the per-copy-set queue capacity in buffers (default 8).
	QueueCap int
	// BufferBytes is the default stream buffer size (default 256 KiB),
	// clamped by DeclareBuffer bounds.
	BufferBytes int
	// AckBytes is the size of a DD acknowledgment message (default 64).
	AckBytes int
	// PrefetchDepth is the number of disk reads a filter copy keeps in
	// flight (modeling asynchronous I/O and OS readahead): ChargeDisk
	// returns once the read is issued and only blocks when the disk falls
	// `PrefetchDepth` requests behind. 1 makes reads fully synchronous.
	// Default 4.
	PrefetchDepth int
	// UOWs lists the unit-of-work descriptors (one nil UOW if empty).
	UOWs []any
	// ScaleSchedule lists seeded copy-set membership changes applied at
	// work-cycle boundaries (elastic.ScaleStep.BeforeUOW >= 1). Surviving
	// instances persist across the change; grown slots spawn fresh copies.
	ScaleSchedule []elastic.ScaleStep
	// Obs attaches the observability subsystem (see internal/obs). Events
	// are stamped in virtual seconds — the kernel's clock, not wall time —
	// so an exported trace shows the simulated timeline. Nil disables.
	Obs *obs.Observer
}

// validate rejects negative option values that would otherwise silently
// fall through to the defaults (mirrors core.Options.Validate).
func (o *Options) validate() error {
	if o.QueueCap < 0 {
		return fmt.Errorf("simrt: Options.QueueCap must be >= 0 (0 selects the default of 8), got %d", o.QueueCap)
	}
	if o.BufferBytes < 0 {
		return fmt.Errorf("simrt: Options.BufferBytes must be >= 0 (0 selects the default of 256 KiB), got %d", o.BufferBytes)
	}
	if o.AckBytes < 0 {
		return fmt.Errorf("simrt: Options.AckBytes must be >= 0 (0 selects the default of 64), got %d", o.AckBytes)
	}
	if o.PrefetchDepth < 0 {
		return fmt.Errorf("simrt: Options.PrefetchDepth must be >= 0 (0 selects the default of 4), got %d", o.PrefetchDepth)
	}
	return nil
}

func (o *Options) policyFor(stream string) core.Policy {
	return exec.PolicyConfig{Default: o.Policy, PerStream: o.StreamPolicy}.For(stream)
}

func (o *Options) queueCap() int {
	if o.QueueCap > 0 {
		return o.QueueCap
	}
	return 8
}

func (o *Options) bufferBytes() int {
	if o.BufferBytes > 0 {
		return o.BufferBytes
	}
	return 256 << 10
}

func (o *Options) ackBytes() int {
	if o.AckBytes > 0 {
		return o.AckBytes
	}
	return 64
}

func (o *Options) prefetchDepth() int {
	if o.PrefetchDepth > 0 {
		return o.PrefetchDepth
	}
	return 4
}

// Runner executes a graph on a cluster in virtual time.
type Runner struct {
	g    *core.Graph
	pl   *core.Placement
	cl   *cluster.Cluster
	opts Options

	copies map[string][]*copyInst
	stats  *core.Stats
	// firstErr is the first filter error; the run is reported failed.
	firstErr error
}

type copyInst struct {
	filter    core.Filter
	name      string
	host      string
	globalIdx int
	total     int
}

// NewRunner validates the graph/placement (every placed host must exist in
// the cluster) and instantiates filter copies.
func NewRunner(g *core.Graph, pl *core.Placement, cl *cluster.Cluster, opts Options) (*Runner, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(g); err != nil {
		return nil, err
	}
	for _, h := range pl.Hosts() {
		if cl.Host(h) == nil {
			return nil, fmt.Errorf("simrt: placement uses host %q not present in cluster", h)
		}
	}
	r := &Runner{g: g, pl: pl, cl: cl, opts: opts, copies: make(map[string][]*copyInst), stats: core.NewStats(g)}
	for _, name := range g.Filters() {
		total := pl.TotalCopies(name)
		idx := 0
		for _, e := range pl.Of(name) {
			for c := 0; c < e.Copies; c++ {
				r.copies[name] = append(r.copies[name], &copyInst{
					filter: g.Factory(name)(), name: name, host: e.Host, globalIdx: idx, total: total,
				})
				idx++
			}
		}
		fs := r.stats.Filters[name]
		fs.Copies = total
		fs.BusySeconds = make([]float64, total)
		fs.WallSeconds = make([]float64, total)
		fs.ReadBlockedSeconds = make([]float64, total)
		fs.WriteBlockedSeconds = make([]float64, total)
	}
	return r, nil
}

// Instances returns the filter instances for a filter in global copy order.
func (r *Runner) Instances(name string) []core.Filter {
	out := make([]core.Filter, len(r.copies[name]))
	for i, c := range r.copies[name] {
		out[i] = c.filter
	}
	return out
}

// Stats returns accumulated statistics (virtual-time seconds).
func (r *Runner) Stats() *core.Stats { return r.stats }

// Run executes all units of work sequentially in virtual time.
func (r *Runner) Run() (*core.Stats, error) {
	k := r.cl.Kernel()
	uows := r.opts.UOWs
	if len(uows) == 0 {
		uows = []any{nil}
	}
	if err := r.validateSchedule(); err != nil {
		return r.stats, err
	}
	cur := r.snapshotEntries()
	// This engine's time domain is the kernel's virtual clock: exported
	// traces show simulated seconds, directly comparable to Stats.
	r.opts.Obs.SetClock(obs.ClockFunc(func() float64 { return float64(k.Now()) }))
	start := k.Now()
	for i, work := range uows {
		if due := elastic.StepsAt(r.opts.ScaleSchedule, i); len(due) > 0 {
			cur = elastic.Apply(cur, due)
			r.rescale(cur, i)
		}
		t0 := k.Now()
		if err := r.runUOW(i, work); err != nil {
			return r.stats, err
		}
		r.stats.PerUOWSeconds = append(r.stats.PerUOWSeconds, float64(k.Now()-t0))
	}
	r.stats.WallSeconds += float64(k.Now() - start)
	return r.stats, nil
}

type delivery struct {
	buf    core.Buffer
	sender *writerState
	target int
	// ackEvery is the producer policy's ack coalescing factor (> 0 when
	// the policy wants acks).
	ackEvery int
}

type streamRT struct {
	spec      core.StreamSpec
	hosts     []string
	copies    []int
	chans     []*sim.Chan[delivery]
	counts    *exec.Counts    // per-target deliveries, folded into stats
	producers *exec.Countdown // end-of-work: last producer closes the queues

	declMin, declMax int
	bufBytes         int

	// Live counters, resolved once at setup; nil unless Options.Obs is set.
	ctrBuffers *obs.Counter
	ctrBytes   *obs.Counter
	ctrAcks    *obs.Counter
}

func (s *streamRT) resolve(def int) {
	b := def
	if s.declMin > 0 && b < s.declMin {
		b = s.declMin
	}
	if s.declMax > 0 && b > s.declMax {
		b = s.declMax
	}
	s.bufBytes = b
}

// writerState is one producer copy's write path for one stream: the shared
// stream-writer runtime plus this engine's ack source. The sim kernel is
// cooperative, so acknowledgments land in a plain AckSeq (appended by the
// spawned ack process after its wire transfer completes, drained by the
// StreamWriter at the next pick).
type writerState struct {
	st   *streamRT
	sw   *exec.StreamWriter
	acks *exec.AckSeq // non-nil when the policy wants acks
	host string       // producer copy's host
}

func (r *Runner) runUOW(uow int, work any) error {
	k := r.cl.Kernel()
	streams := make(map[string]*streamRT)
	for _, sp := range r.g.Streams() {
		st := &streamRT{spec: sp, producers: exec.NewCountdown(r.pl.TotalCopies(sp.From))}
		for _, e := range r.pl.Of(sp.To) {
			st.hosts = append(st.hosts, e.Host)
			st.copies = append(st.copies, e.Copies)
			st.chans = append(st.chans, sim.NewChan[delivery](k, sp.Name+"@"+e.Host, r.opts.queueCap()))
		}
		st.counts = exec.NewCounts(len(st.hosts))
		if reg := r.opts.Obs.Registry(); reg != nil {
			st.ctrBuffers = reg.Counter("simrt.stream." + sp.Name + ".buffers")
			st.ctrBytes = reg.Counter("simrt.stream." + sp.Name + ".bytes")
			st.ctrAcks = reg.Counter("simrt.stream." + sp.Name + ".acks")
		}
		streams[sp.Name] = st
	}

	var ctxs []*simCtx
	for _, name := range r.g.Filters() {
		for _, ci := range r.copies[name] {
			c := &simCtx{r: r, ci: ci, uow: uow, work: work,
				inputs:  make(map[string]*sim.Chan[delivery]),
				inputRT: make(map[string]*streamRT),
				writers: make(map[string]*writerState),
				o:       r.opts.Obs}
			if reg := r.opts.Obs.Registry(); reg != nil {
				c.readStallH = reg.Histogram("simrt.read_stall_seconds")
				c.writeStallH = reg.Histogram("simrt.write_stall_seconds")
			}
			for _, sp := range r.g.Inputs(name) {
				st := streams[sp.Name]
				for i, h := range st.hosts {
					if h == ci.host {
						c.inputs[sp.Name] = st.chans[i]
						break
					}
				}
				if c.inputs[sp.Name] == nil {
					return fmt.Errorf("simrt: stream %s: consumer copy of %q on host %q has no queue", sp.Name, name, ci.host)
				}
				c.inputRT[sp.Name] = st
			}
			for _, sp := range r.g.Outputs(name) {
				st := streams[sp.Name]
				infos := make([]core.TargetInfo, len(st.hosts))
				for i, h := range st.hosts {
					infos[i] = core.TargetInfo{Host: h, Copies: st.copies[i], Local: h == ci.host}
				}
				ws := &writerState{st: st, host: ci.host}
				ws.sw = exec.NewStreamWriter(sp.Name, r.opts.policyFor(sp.Name), infos,
					&simPort{c: c, ws: ws, stream: sp.Name}, st.counts,
					exec.Meta{Obs: r.opts.Obs, Filter: ci.name, Copy: ci.globalIdx, Host: ci.host, UOW: uow})
				if ws.sw.WantsAcks() {
					ws.acks = &exec.AckSeq{}
					ws.sw.BindAckSource(ws.acks)
				}
				c.writers[sp.Name] = ws
			}
			ctxs = append(ctxs, c)
		}
	}

	// Phase 1: Init.
	if err := r.phase(ctxs, "init", func(c *simCtx) error { return c.ci.filter.Init(c) }); err != nil {
		return err
	}
	for _, st := range streams {
		st.resolve(r.opts.bufferBytes())
	}

	// Phase 2: Process with end-of-work propagation.
	for _, c := range ctxs {
		c := c
		k.Spawn(fmt.Sprintf("%s#%d@%s", c.ci.name, c.ci.globalIdx, c.ci.host), func(p *sim.Proc) {
			c.p = p
			c.o.Emit(obs.Event{Kind: obs.KindProcessStart, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, UOW: c.uow})
			t0 := p.Now()
			err := c.ci.filter.Process(c)
			c.drainDisk()
			c.o.Emit(obs.Event{Kind: obs.KindProcessEnd, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, UOW: c.uow})
			fs := r.stats.Filters[c.ci.name]
			wall := float64(p.Now() - t0)
			fs.WallSeconds[c.ci.globalIdx] += wall
			fs.BusySeconds[c.ci.globalIdx] += wall - c.readBlocked - c.writeBlocked - c.netSeconds
			fs.ReadBlockedSeconds[c.ci.globalIdx] += c.readBlocked
			fs.WriteBlockedSeconds[c.ci.globalIdx] += c.writeBlocked + c.netSeconds
			c.readBlocked, c.writeBlocked, c.netSeconds = 0, 0, 0
			for _, sp := range r.g.Outputs(c.ci.name) {
				st := streams[sp.Name]
				if st.producers.Done() {
					for _, ch := range st.chans {
						ch.Close()
					}
				}
			}
			if err != nil && r.firstErr == nil {
				r.firstErr = fmt.Errorf("simrt: filter %s copy %d: %w", c.ci.name, c.ci.globalIdx, err)
			}
		})
	}
	runErr := k.Run()
	// Fold per-target delivery counts into stats before any error return,
	// so a failed run still reports what was delivered.
	for name, st := range streams {
		st.counts.Fold(st.hosts, r.stats.Streams[name].PerTargetHost)
	}
	if runErr != nil {
		if r.firstErr != nil {
			return r.firstErr
		}
		return runErr
	}
	if r.firstErr != nil {
		return r.firstErr
	}

	// Phase 3: Finalize.
	return r.phase(ctxs, "finalize", func(c *simCtx) error { return c.ci.filter.Finalize(c) })
}

func (r *Runner) phase(ctxs []*simCtx, label string, f func(*simCtx) error) error {
	k := r.cl.Kernel()
	for _, c := range ctxs {
		c := c
		k.Spawn(fmt.Sprintf("%s-%s#%d", label, c.ci.name, c.ci.globalIdx), func(p *sim.Proc) {
			c.p = p
			t0 := p.Now()
			err := f(c)
			// Init/Finalize work (accumulator allocation, final image
			// generation) counts toward the filter's busy time.
			dt := float64(p.Now() - t0)
			fs := r.stats.Filters[c.ci.name]
			fs.BusySeconds[c.ci.globalIdx] += dt
			fs.WallSeconds[c.ci.globalIdx] += dt
			if err != nil && r.firstErr == nil {
				r.firstErr = fmt.Errorf("simrt: filter %s copy %d (%s): %w", c.ci.name, c.ci.globalIdx, label, err)
			}
		})
	}
	if err := k.Run(); err != nil {
		if r.firstErr != nil {
			return r.firstErr
		}
		return err
	}
	return r.firstErr
}

// simCtx implements core.Ctx on the simulated engine.
type simCtx struct {
	r    *Runner
	ci   *copyInst
	p    *sim.Proc
	uow  int
	work any

	inputs  map[string]*sim.Chan[delivery]
	inputRT map[string]*streamRT
	writers map[string]*writerState

	// o is the attached observer (nil = disabled). Stall spans are detected
	// after the fact by comparing virtual time around a blocking call and
	// back-stamped with EmitAt.
	o           *obs.Observer
	readStallH  *obs.Histogram
	writeStallH *obs.Histogram

	readBlocked  float64
	writeBlocked float64
	netSeconds   float64

	diskPending     *sim.Chan[struct{}]
	diskOutstanding int

	// acks coalesces acknowledgments per (producer writer, target) when
	// the policy batches them (exec.Coalescer).
	acks *exec.Coalescer[ackKey]
}

type ackKey struct {
	ws     *writerState
	target int
}

var _ core.Ctx = (*simCtx)(nil)

func (c *simCtx) Read(stream string) (core.Buffer, bool) {
	ch, ok := c.inputs[stream]
	if !ok {
		panic(fmt.Sprintf("simrt: filter %s reads unknown input stream %q", c.ci.name, stream))
	}
	t0 := c.p.Now()
	d, ok := ch.Recv(c.p)
	c.readBlocked += float64(c.p.Now() - t0)
	c.emitStallSpan(t0, stream, "read", c.readStallH)
	if !ok {
		c.flushAcks()
		return core.Buffer{}, false
	}
	if d.ackEvery > 0 {
		c.ack(d.sender, d.target, d.ackEvery)
	}
	c.r.stats.Filters[c.ci.name].BuffersIn++
	return d.buf, true
}

// ack sends (or coalesces) the acknowledgment for one consumed buffer: a
// real small message that occupies consumer and producer NICs before the
// producer's counter drops (paper §2: the ack indicates the buffer is
// being processed). Batched-ack policies coalesce k buffers into one
// message (the paper's §6 follow-up for reducing DD overhead).
func (c *simCtx) ack(ws *writerState, target, every int) {
	if c.acks == nil {
		c.acks = exec.NewCoalescer[ackKey](func(key ackKey, n int) {
			c.sendAck(key.ws, key.target, n)
		})
	}
	c.acks.Ack(ackKey{ws, target}, every)
}

func (c *simCtx) sendAck(ws *writerState, target, n int) {
	stream := ws.st.spec.Name
	from, to := c.ci.host, ws.host
	ab := c.r.opts.ackBytes()
	c.p.Kernel().Spawn("ack", func(p *sim.Proc) {
		c.r.cl.Transfer(p, from, to, ab)
		ws.acks.Ack(target, n)
	})
	c.r.stats.Streams[stream].Acks++
	if c.o != nil {
		if st := c.inputRT[stream]; st != nil {
			st.ctrAcks.Inc()
		}
		c.o.Emit(obs.Event{Kind: obs.KindAck, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, Stream: stream, Target: ws.host, N: n, UOW: c.uow})
	}
}

// emitStallSpan back-stamps a stall-start/stall-end pair when virtual time
// advanced across a blocking call (no-op when obs is off or no time
// passed). Events land in the sink after intervening events from other
// simulated processes; timestamps, not emission order, are authoritative.
func (c *simCtx) emitStallSpan(t0 sim.Time, stream, dir string, h *obs.Histogram) {
	if c.o == nil {
		return
	}
	t1 := c.p.Now()
	if t1 <= t0 {
		return
	}
	h.Observe(float64(t1 - t0))
	e := obs.Event{Kind: obs.KindStallStart, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, Stream: stream, UOW: c.uow, Note: dir}
	c.o.EmitAt(float64(t0), e)
	e.Kind = obs.KindStallEnd
	c.o.EmitAt(float64(t1), e)
}

// flushAcks releases coalesced acknowledgments (called at end-of-work so
// producers' counters settle even when a batch is incomplete).
func (c *simCtx) flushAcks() {
	if c.acks != nil {
		c.acks.Flush()
	}
}

// Write hands the buffer to the shared stream-writer runtime: ack drain,
// policy pick, and window update happen in exec.StreamWriter; the simPort
// Deliver callback models the wire transfer and enqueue in virtual time.
func (c *simCtx) Write(stream string, b core.Buffer) error {
	ws, ok := c.writers[stream]
	if !ok {
		panic(fmt.Sprintf("simrt: filter %s writes unknown output stream %q", c.ci.name, stream))
	}
	return ws.sw.Write(b)
}

// simPort binds the shared stream-writer runtime to the simulated engine:
// Deliver occupies sender and receiver NICs for the buffer's wire time,
// then enqueues on the target copy set's sim channel (blocking there is
// consumer backpressure, traced as a write stall).
type simPort struct {
	c      *simCtx
	ws     *writerState
	stream string
}

func (p *simPort) Deliver(idx int, b core.Buffer, ackEvery int) error {
	c, ws, stream := p.c, p.ws, p.stream
	// Wire time: occupy the NICs for the buffer's transfer.
	t0 := c.p.Now()
	c.r.cl.Transfer(c.p, c.ci.host, ws.st.hosts[idx], b.Size)
	c.netSeconds += float64(c.p.Now() - t0)
	if c.o != nil {
		c.o.Emit(obs.Event{Kind: obs.KindSend, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, Stream: stream, Target: ws.st.hosts[idx], Bytes: b.Size, UOW: c.uow})
	}
	// Enqueue; blocking here is backpressure from a full consumer queue.
	t0 = c.p.Now()
	ws.st.chans[idx].Send(c.p, delivery{buf: b, sender: ws, target: idx, ackEvery: ackEvery})
	c.writeBlocked += float64(c.p.Now() - t0)
	c.emitStallSpan(t0, stream, "write", c.writeStallH)

	ss := c.r.stats.Streams[stream]
	ss.Buffers++
	ss.Bytes += int64(b.Size)
	c.r.stats.Filters[c.ci.name].BuffersOut++
	if c.o != nil {
		ws.st.ctrBuffers.Inc()
		ws.st.ctrBytes.Add(int64(b.Size))
		c.o.Emit(obs.Event{Kind: obs.KindEnqueue, Filter: c.ci.name, Copy: c.ci.globalIdx, Host: c.ci.host, Stream: stream, Target: ws.st.hosts[idx], Bytes: b.Size, UOW: c.uow})
	}
	return nil
}

func (c *simCtx) Compute(refSeconds float64) {
	if refSeconds <= 0 {
		return
	}
	c.r.cl.Host(c.ci.host).CPU.Compute(c.p, refSeconds)
}

// ChargeDisk issues a disk read with asynchronous prefetch: up to
// Options.PrefetchDepth reads stay in flight while the filter computes,
// modeling the overlapped I/O both real systems rely on. Waiting for a
// slot counts as read-blocked time. All reads drain before the copy
// reaches end-of-work.
func (c *simCtx) ChargeDisk(disk int, bytes int) {
	depth := c.r.opts.prefetchDepth()
	host := c.r.cl.Host(c.ci.host)
	if depth <= 1 {
		host.ReadDisk(c.p, disk, bytes)
		return
	}
	if c.diskPending == nil {
		c.diskPending = sim.NewChan[struct{}](c.p.Kernel(), "prefetch@"+c.ci.host, depth)
	}
	for c.diskOutstanding >= depth {
		t0 := c.p.Now()
		c.diskPending.Recv(c.p)
		c.diskOutstanding--
		c.readBlocked += float64(c.p.Now() - t0)
	}
	done := c.diskPending
	c.p.Kernel().Spawn("prefetch-io", func(p *sim.Proc) {
		host.ReadDisk(p, disk, bytes)
		done.Send(p, struct{}{})
	})
	c.diskOutstanding++
}

// drainDisk waits for in-flight prefetch reads (end of Process).
func (c *simCtx) drainDisk() {
	for c.diskOutstanding > 0 {
		t0 := c.p.Now()
		c.diskPending.Recv(c.p)
		c.diskOutstanding--
		c.readBlocked += float64(c.p.Now() - t0)
	}
}

func (c *simCtx) DeclareBuffer(stream string, minBytes, maxBytes int) {
	st := c.streamRTFor(stream)
	if minBytes > st.declMin {
		st.declMin = minBytes
	}
	if maxBytes > 0 && (st.declMax == 0 || maxBytes < st.declMax) {
		st.declMax = maxBytes
	}
}

func (c *simCtx) BufferBytes(stream string) int { return c.streamRTFor(stream).bufBytes }

func (c *simCtx) streamRTFor(stream string) *streamRT {
	if ws, ok := c.writers[stream]; ok {
		return ws.st
	}
	if st, ok := c.inputRT[stream]; ok {
		return st
	}
	panic(fmt.Sprintf("simrt: filter %s references unknown stream %q", c.ci.name, stream))
}

func (c *simCtx) Host() string     { return c.ci.host }
func (c *simCtx) CopyIndex() int   { return c.ci.globalIdx }
func (c *simCtx) TotalCopies() int { return c.ci.total }
func (c *simCtx) UOW() int         { return c.uow }
func (c *simCtx) Work() any        { return c.work }
