package simrt

import (
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/obs"
	"datacutter/internal/sim"
)

// TestSimObservedRun checks that the simulated engine stamps trace events in
// virtual time and mirrors its stream stats into the registry.
func TestSimObservedRun(t *testing.T) {
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0", "h1")
	g, sink := buildPipeline(50, 1000, 0.01)
	pl := core.NewPlacement().
		Place("S", "h0", 1).Place("W", "h1", 1).Place("K", "h0", 1)

	ring := obs.NewRingSink(16384)
	reg := obs.NewRegistry()
	o := obs.New(ring, reg)
	r, err := NewRunner(g, pl, cl, Options{Policy: core.DemandDriven(), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sink.seen != 50 {
		t.Fatalf("sink saw %d", sink.seen)
	}

	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	// Virtual timestamps: non-negative and bounded by the run's makespan.
	var enq, procStart int
	for _, e := range evs {
		if e.T < 0 || e.T > st.WallSeconds+1e-9 {
			t.Fatalf("event %+v outside virtual run time [0, %g]", e, st.WallSeconds)
		}
		switch e.Kind {
		case obs.KindEnqueue:
			enq++
		case obs.KindProcessStart:
			procStart++
		}
	}
	if want := int(st.Streams["in"].Buffers + st.Streams["out"].Buffers); enq != want {
		t.Fatalf("enqueue events = %d, want %d", enq, want)
	}
	if procStart != 3 {
		t.Fatalf("process-start events = %d, want 3 (one per copy)", procStart)
	}

	// Registry counters mirror the stats.
	if got := reg.Counter("simrt.stream.in.buffers").Value(); got != st.Streams["in"].Buffers {
		t.Fatalf("counter = %d, stats = %d", got, st.Streams["in"].Buffers)
	}
	if got := reg.Counter("simrt.stream.out.bytes").Value(); got != st.Streams["out"].Bytes {
		t.Fatalf("bytes counter = %d, stats = %d", got, st.Streams["out"].Bytes)
	}
}

// TestSimOptionsValidate pins the negative-option errors.
func TestSimOptionsValidate(t *testing.T) {
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0")
	g, _ := buildPipeline(1, 1, 0)
	pl := core.NewPlacement().
		Place("S", "h0", 1).Place("W", "h0", 1).Place("K", "h0", 1)
	for _, opts := range []Options{
		{QueueCap: -1}, {BufferBytes: -1}, {AckBytes: -1}, {PrefetchDepth: -1},
	} {
		if _, err := NewRunner(g, pl, cl, opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}
