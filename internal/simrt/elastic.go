package simrt

import (
	"fmt"

	"datacutter/internal/core"
	"datacutter/internal/elastic"
)

// Elasticity on the simulated engine. The kernel runs each unit of work to
// completion in one virtual-time episode, so membership changes apply at
// work-cycle boundaries only: before a UOW starts, the scale schedule's due
// steps rewrite the placement, surviving instances carry over, grown slots
// spawn fresh copies, and shrunk slots retire from the end — exactly the
// real engine's rescale semantics, replayed in virtual time.

// snapshotEntries captures the current placement as engine-neutral entries,
// in graph filter order then placement host order.
func (r *Runner) snapshotEntries() []elastic.Entry {
	var out []elastic.Entry
	for _, name := range r.g.Filters() {
		for _, e := range r.pl.Of(name) {
			out = append(out, elastic.Entry{Filter: name, Host: e.Host, Copies: e.Copies})
		}
	}
	return out
}

// validateSchedule rejects steps naming unknown filters or hosts absent
// from the cluster (a grown copy set must land on modeled hardware).
func (r *Runner) validateSchedule() error {
	known := make(map[string]bool)
	for _, name := range r.g.Filters() {
		known[name] = true
	}
	for _, s := range r.opts.ScaleSchedule {
		if !known[s.Filter] {
			return fmt.Errorf("simrt: scale schedule names unknown filter %q", s.Filter)
		}
		if s.BeforeUOW < 1 {
			return fmt.Errorf("simrt: scale step for %q has BeforeUOW %d (the initial plan is the zero boundary; steps need >= 1)", s.Filter, s.BeforeUOW)
		}
		if s.Copies >= 1 && r.cl.Host(s.Host) == nil {
			return fmt.Errorf("simrt: scale step for %q uses host %q not present in cluster", s.Filter, s.Host)
		}
	}
	return nil
}

// rescale applies a new effective placement between units of work (see the
// core engine's rescale): surviving (filter, host) slots keep instances,
// grown slots spawn from the factory, shrunk slots retire from the end.
// Indices and totals are reassigned in placement order; untouched filters
// keep their instances and indices exactly. Stats slices grow, never shrink.
func (r *Runner) rescale(entries []elastic.Entry, uow int) {
	newPl := core.NewPlacement()
	for _, e := range entries {
		newPl.Place(e.Filter, e.Host, e.Copies)
	}
	for _, name := range r.g.Filters() {
		oldByHost := make(map[string][]*copyInst)
		oldCount := make(map[string]int)
		for _, ci := range r.copies[name] {
			oldByHost[ci.host] = append(oldByHost[ci.host], ci)
			oldCount[ci.host]++
		}
		total := newPl.TotalCopies(name)
		var next []*copyInst
		idx := 0
		for _, e := range newPl.Of(name) {
			pool := oldByHost[e.Host]
			for c := 0; c < e.Copies; c++ {
				var ci *copyInst
				if len(pool) > 0 {
					ci, pool = pool[0], pool[1:]
				} else {
					ci = &copyInst{filter: r.g.Factory(name)(), name: name, host: e.Host}
				}
				ci.globalIdx = idx
				ci.total = total
				next = append(next, ci)
				idx++
			}
			oldByHost[e.Host] = pool
			if old := oldCount[e.Host]; old != e.Copies {
				elastic.RecordScale(r.opts.Obs, name, e.Host, old, e.Copies, uow, "scale schedule")
			}
			delete(oldCount, e.Host)
		}
		for host, old := range oldCount {
			elastic.RecordScale(r.opts.Obs, name, host, old, 0, uow, "scale schedule")
		}
		r.copies[name] = next
		fs := r.stats.Filters[name]
		fs.Copies = total
		for len(fs.BusySeconds) < total {
			fs.BusySeconds = append(fs.BusySeconds, 0)
			fs.WallSeconds = append(fs.WallSeconds, 0)
			fs.ReadBlockedSeconds = append(fs.ReadBlockedSeconds, 0)
			fs.WriteBlockedSeconds = append(fs.WriteBlockedSeconds, 0)
		}
	}
	r.pl = newPl
}
