package simrt

import (
	"testing"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/sim"
)

// diskHeavy reads n chunks from disk and computes per chunk.
type diskHeavy struct {
	core.BaseFilter
	n         int
	diskBytes int
	cost      float64
}

func (f *diskHeavy) Process(ctx core.Ctx) error {
	for i := 0; i < f.n; i++ {
		ctx.ChargeDisk(0, f.diskBytes)
		ctx.Compute(f.cost)
	}
	return nil
}

func prefetchRun(t *testing.T, depth int) float64 {
	t.Helper()
	k := sim.NewKernel()
	cl := cluster.New(k)
	cl.AddHost(cluster.HostSpec{
		Name: "h", Cores: 1, Speed: 1, NICBandwidth: 1e9,
		Disks: []cluster.DiskSpec{{SeekSeconds: 0, Bandwidth: 10e6}},
	})
	g := core.NewGraph()
	// 20 chunks: 1 MB disk (0.1 s) + 0.1 s compute each.
	g.AddFilter("F", func() core.Filter { return &diskHeavy{n: 20, diskBytes: 1e6, cost: 0.1} })
	pl := core.NewPlacement().Place("F", "h", 1)
	r, err := NewRunner(g, pl, cl, Options{PrefetchDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st.WallSeconds
}

func TestPrefetchOverlapsDiskAndCompute(t *testing.T) {
	sync := prefetchRun(t, 1)  // serial: ~20*(0.1+0.1) = 4.0 s
	async := prefetchRun(t, 4) // overlapped: ~max(2.0, 2.0) + ramp ≈ 2.1 s
	if !(sync > 3.9 && sync < 4.1) {
		t.Fatalf("synchronous run took %v, want ~4.0", sync)
	}
	if async > 2.3 {
		t.Fatalf("prefetch run took %v, want ~2.1 (overlapped)", async)
	}
}

func TestPrefetchDrainsBeforeEndOfWork(t *testing.T) {
	// The filter finishes its compute instantly; the disk still owes time.
	// The copy's end-of-work must wait for the reads, so downstream sees
	// the full disk latency in the makespan.
	k := sim.NewKernel()
	cl := cluster.New(k)
	cl.AddHost(cluster.HostSpec{
		Name: "h", Cores: 1, Speed: 1, NICBandwidth: 1e9,
		Disks: []cluster.DiskSpec{{SeekSeconds: 0, Bandwidth: 1e6}},
	})
	g := core.NewGraph()
	g.AddFilter("F", func() core.Filter { return &diskHeavy{n: 3, diskBytes: 1e6, cost: 0} })
	pl := core.NewPlacement().Place("F", "h", 1)
	r, _ := NewRunner(g, pl, cl, Options{PrefetchDepth: 8})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.WallSeconds < 2.99 {
		t.Fatalf("run finished before disk reads completed: %v", st.WallSeconds)
	}
}

func TestInitFinalizeTimeCountsAsBusy(t *testing.T) {
	k := sim.NewKernel()
	cl := cluster.New(k)
	cl.AddHost(cluster.HostSpec{Name: "h", Cores: 1, Speed: 1, NICBandwidth: 1e9})
	g := core.NewGraph()
	g.AddFilter("F", func() core.Filter { return &finalizeHeavy{} })
	pl := core.NewPlacement().Place("F", "h", 1)
	r, _ := NewRunner(g, pl, cl, Options{})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if busy := st.Filters["F"].BusySeconds[0]; busy < 1.99 {
		t.Fatalf("finalize compute missing from busy time: %v", busy)
	}
}

type finalizeHeavy struct{ core.BaseFilter }

func (f *finalizeHeavy) Process(core.Ctx) error { return nil }
func (f *finalizeHeavy) Finalize(ctx core.Ctx) error {
	ctx.Compute(2)
	return nil
}

// Batched-ack DD on the simulated cluster: same deliveries, fewer ack
// messages through the NICs.
func TestSimBatchedAcksReduceMessages(t *testing.T) {
	run := func(pol core.Policy) (int64, int64) {
		k := sim.NewKernel()
		cl := cluster.New(k)
		for i := 0; i < 3; i++ {
			cl.AddHost(cluster.HostSpec{
				Name: string(rune('a' + i)), Cores: 1, Speed: 1, NICBandwidth: 20e6,
				Disks: []cluster.DiskSpec{{SeekSeconds: 0.001, Bandwidth: 50e6}},
			})
		}
		// A simple produce/consume graph with 200 buffers.
		g2 := core.NewGraph()
		g2.AddFilter("P", func() core.Filter { return &bulkSource{n: 200} })
		g2.AddFilter("W", func() core.Filter { return &bulkSink{} })
		g2.Connect("P", "W", "work")
		pl := core.NewPlacement().
			Place("P", "a", 1).
			Place("W", "b", 1).Place("W", "c", 1)
		r, err := NewRunner(g2, pl, cl, Options{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Streams["work"].Acks, cl.MessagesMoved
	}
	plainAcks, plainMsgs := run(core.DemandDriven())
	batchAcks, batchMsgs := run(core.DemandDrivenBatched(10))
	if plainAcks != 200 {
		t.Fatalf("plain DD acks = %d, want 200", plainAcks)
	}
	if batchAcks > 25 {
		t.Fatalf("batched acks = %d, want ~20", batchAcks)
	}
	if batchMsgs >= plainMsgs {
		t.Fatalf("batched messages (%d) should be below plain (%d)", batchMsgs, plainMsgs)
	}
}

type bulkSource struct {
	core.BaseFilter
	n int
}

func (s *bulkSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		ctx.Compute(0.001)
		if err := ctx.Write("work", core.Buffer{Payload: i, Size: 4096}); err != nil {
			return err
		}
	}
	return nil
}

type bulkSink struct{ core.BaseFilter }

func (s *bulkSink) Process(ctx core.Ctx) error {
	for {
		if _, ok := ctx.Read("work"); !ok {
			return nil
		}
		ctx.Compute(0.002)
	}
}
