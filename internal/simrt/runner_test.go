package simrt

import (
	"errors"
	"math"
	"testing"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/leakcheck"
	"datacutter/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// modelSource emits n buffers of fixed size, charging diskSeconds-worth of
// disk reads per buffer.
type modelSource struct {
	core.BaseFilter
	n, size   int
	diskBytes int
	stream    string
}

func (s *modelSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if s.diskBytes > 0 {
			ctx.ChargeDisk(0, s.diskBytes)
		}
		if err := ctx.Write(s.stream, core.Buffer{Payload: i, Size: s.size}); err != nil {
			return err
		}
	}
	return nil
}

// modelWorker charges a fixed compute cost per buffer then forwards it.
type modelWorker struct {
	core.BaseFilter
	in, out string
	cost    float64
	seen    int
}

func (w *modelWorker) Process(ctx core.Ctx) error {
	for {
		b, ok := ctx.Read(w.in)
		if !ok {
			return nil
		}
		ctx.Compute(w.cost)
		w.seen++
		if err := ctx.Write(w.out, b); err != nil {
			return err
		}
	}
}

// modelSink counts buffers.
type modelSink struct {
	core.BaseFilter
	in   string
	seen int
}

func (s *modelSink) Process(ctx core.Ctx) error {
	for {
		_, ok := ctx.Read(s.in)
		if !ok {
			return nil
		}
		s.seen++
	}
}

func uniformCluster(k *sim.Kernel, hosts ...string) *cluster.Cluster {
	cl := cluster.New(k)
	for _, h := range hosts {
		cl.AddHost(cluster.HostSpec{
			Name: h, Cores: 1, Speed: 1, NICBandwidth: 100e6,
			Disks: []cluster.DiskSpec{{SeekSeconds: 0.001, Bandwidth: 50e6}},
		})
	}
	return cl
}

func buildPipeline(n, size int, cost float64) (*core.Graph, *modelSink) {
	sink := &modelSink{in: "out"}
	g := core.NewGraph()
	g.AddFilter("S", func() core.Filter { return &modelSource{n: n, size: size, stream: "in"} })
	g.AddFilter("W", func() core.Filter { return &modelWorker{in: "in", out: "out", cost: cost} })
	g.AddFilter("K", func() core.Filter { return sink })
	g.Connect("S", "W", "in")
	g.Connect("W", "K", "out")
	return g, sink
}

func TestSimPipelineDeliversEverything(t *testing.T) {
	leakcheck.Check(t)
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0", "h1", "h2")
	g, sink := buildPipeline(100, 1000, 0.01)
	pl := core.NewPlacement().
		Place("S", "h0", 1).
		Place("W", "h1", 1).Place("W", "h2", 1).
		Place("K", "h0", 1)
	r, err := NewRunner(g, pl, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sink.seen != 100 {
		t.Fatalf("sink saw %d buffers, want 100", sink.seen)
	}
	if st.Streams["in"].Buffers != 100 || st.Streams["out"].Buffers != 100 {
		t.Fatalf("stream counts: %+v", st.Streams)
	}
	if st.WallSeconds <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestSimComputeDominatedMakespan(t *testing.T) {
	// 100 buffers, 0.05 ref-seconds each, one worker on a speed-2 host:
	// compute time = 100*0.05/2 = 2.5 s, transfers negligible. The pipeline
	// overlaps, so total should be close to 2.5 s.
	k := sim.NewKernel()
	cl := cluster.New(k)
	cl.AddHost(cluster.HostSpec{Name: "src", Cores: 1, Speed: 1, NICBandwidth: 1e9,
		Disks: []cluster.DiskSpec{{SeekSeconds: 0, Bandwidth: 1e12}}})
	cl.AddHost(cluster.HostSpec{Name: "w", Cores: 1, Speed: 2, NICBandwidth: 1e9})
	g, _ := buildPipeline(100, 10, 0.05)
	pl := core.NewPlacement().
		Place("S", "src", 1).Place("W", "w", 1).Place("K", "src", 1)
	r, _ := NewRunner(g, pl, cl, Options{})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(st.WallSeconds, 2.5, 0.1) {
		t.Fatalf("makespan %v, want ~2.5", st.WallSeconds)
	}
}

func TestSimNetworkDominatedMakespan(t *testing.T) {
	// 10 buffers of 10 MB over a 10 MB/s bottleneck: >= 10 s of wire time
	// serialized on the source egress NIC.
	k := sim.NewKernel()
	cl := cluster.New(k)
	cl.Latency = 0
	cl.AddHost(cluster.HostSpec{Name: "a", Cores: 1, Speed: 1, NICBandwidth: 10e6,
		Disks: []cluster.DiskSpec{{SeekSeconds: 0, Bandwidth: 1e12}}})
	cl.AddHost(cluster.HostSpec{Name: "b", Cores: 1, Speed: 1, NICBandwidth: 10e6})
	g, _ := buildPipeline(10, 10e6, 0)
	pl := core.NewPlacement().
		Place("S", "a", 1).Place("W", "b", 1).Place("K", "b", 1)
	r, _ := NewRunner(g, pl, cl, Options{})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.WallSeconds < 10.0 || st.WallSeconds > 11.0 {
		t.Fatalf("makespan %v, want ~10", st.WallSeconds)
	}
}

func TestSimDDShiftsLoadToFastHost(t *testing.T) {
	leakcheck.Check(t)
	// Worker copies on a fast host and a 4x-loaded host. DD must deliver
	// clearly more buffers to the fast host; RR stays even.
	run := func(pol core.Policy) map[string]int64 {
		k := sim.NewKernel()
		cl := uniformCluster(k, "src", "fast", "slow")
		cl.Host("slow").SetBackgroundJobs(4)
		g, sink := buildPipeline(200, 1000, 0.01)
		pl := core.NewPlacement().
			Place("S", "src", 1).
			Place("W", "fast", 1).Place("W", "slow", 1).
			Place("K", "src", 1)
		r, _ := NewRunner(g, pl, cl, Options{Policy: pol, QueueCap: 4})
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if sink.seen != 200 {
			t.Fatalf("%s: sink saw %d", pol.Name(), sink.seen)
		}
		return st.Streams["in"].PerTargetHost
	}
	dd := run(core.DemandDriven())
	if dd["fast"] < 2*dd["slow"] {
		t.Fatalf("DD did not shift load: %v", dd)
	}
	rr := run(core.RoundRobin())
	if rr["fast"] != rr["slow"] {
		t.Fatalf("RR should split evenly: %v", rr)
	}
}

func TestSimDDFasterThanRRUnderImbalance(t *testing.T) {
	run := func(pol core.Policy) float64 {
		k := sim.NewKernel()
		cl := uniformCluster(k, "src", "fast", "slow")
		cl.Host("slow").SetBackgroundJobs(8)
		g, _ := buildPipeline(200, 1000, 0.01)
		pl := core.NewPlacement().
			Place("S", "src", 1).
			Place("W", "fast", 1).Place("W", "slow", 1).
			Place("K", "src", 1)
		r, _ := NewRunner(g, pl, cl, Options{Policy: pol, QueueCap: 4})
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.WallSeconds
	}
	dd, rr := run(core.DemandDriven()), run(core.RoundRobin())
	if dd >= rr {
		t.Fatalf("DD (%v) not faster than RR (%v) under load imbalance", dd, rr)
	}
}

func TestSimWRRProportions(t *testing.T) {
	leakcheck.Check(t)
	k := sim.NewKernel()
	cl := uniformCluster(k, "src", "h1", "h2")
	g, _ := buildPipeline(300, 100, 0.001)
	pl := core.NewPlacement().
		Place("S", "src", 1).
		Place("W", "h1", 1).Place("W", "h2", 2).
		Place("K", "src", 1)
	r, _ := NewRunner(g, pl, cl, Options{Policy: core.WeightedRoundRobin()})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	per := st.Streams["in"].PerTargetHost
	if per["h1"] != 100 || per["h2"] != 200 {
		t.Fatalf("WRR distribution: %v", per)
	}
}

func TestSimDeterminism(t *testing.T) {
	leakcheck.Check(t)
	run := func() (float64, map[string]int64) {
		k := sim.NewKernel()
		cl := uniformCluster(k, "src", "a", "b")
		cl.Host("b").SetBackgroundJobs(2)
		g, _ := buildPipeline(150, 512, 0.004)
		pl := core.NewPlacement().
			Place("S", "src", 1).
			Place("W", "a", 1).Place("W", "b", 1).
			Place("K", "src", 1)
		r, _ := NewRunner(g, pl, cl, Options{Policy: core.DemandDriven()})
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.WallSeconds, st.Streams["in"].PerTargetHost
	}
	w1, p1 := run()
	w2, p2 := run()
	if w1 != w2 {
		t.Fatalf("nondeterministic makespan: %v vs %v", w1, w2)
	}
	for h, n := range p1 {
		if p2[h] != n {
			t.Fatalf("nondeterministic distribution: %v vs %v", p1, p2)
		}
	}
}

func TestSimAcksConsumeNetwork(t *testing.T) {
	leakcheck.Check(t)
	// Same workload, DD vs RR: DD must move strictly more messages (the
	// acks) through the cluster.
	run := func(pol core.Policy) int64 {
		k := sim.NewKernel()
		cl := uniformCluster(k, "src", "a", "b")
		g, _ := buildPipeline(100, 1000, 0.002)
		pl := core.NewPlacement().
			Place("S", "src", 1).
			Place("W", "a", 1).Place("W", "b", 1).
			Place("K", "src", 1)
		r, _ := NewRunner(g, pl, cl, Options{Policy: pol})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return cl.MessagesMoved
	}
	dd, rr := run(core.DemandDriven()), run(core.RoundRobin())
	if dd <= rr {
		t.Fatalf("DD messages (%d) should exceed RR messages (%d)", dd, rr)
	}
}

func TestSimMultiUOW(t *testing.T) {
	leakcheck.Check(t)
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0")
	g, sink := buildPipeline(20, 100, 0.001)
	pl := core.NewPlacement().
		Place("S", "h0", 1).Place("W", "h0", 1).Place("K", "h0", 1)
	r, _ := NewRunner(g, pl, cl, Options{UOWs: []any{0, 1, 2, 3}})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sink.seen != 80 {
		t.Fatalf("sink saw %d, want 80", sink.seen)
	}
	if len(st.PerUOWSeconds) != 4 {
		t.Fatalf("per-UOW count %d", len(st.PerUOWSeconds))
	}
	for _, d := range st.PerUOWSeconds {
		if d <= 0 {
			t.Fatalf("non-positive UOW duration: %v", st.PerUOWSeconds)
		}
	}
}

// errFilter fails immediately in Process.
type errFilter struct {
	core.BaseFilter
	in string
}

func (e *errFilter) Process(ctx core.Ctx) error {
	ctx.Read(e.in)
	return errors.New("boom")
}

func TestSimFilterErrorSurfaces(t *testing.T) {
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0")
	g := core.NewGraph()
	g.AddFilter("S", func() core.Filter { return &modelSource{n: 5, size: 10, stream: "s"} })
	g.AddFilter("E", func() core.Filter { return &errFilter{in: "s"} })
	g.Connect("S", "E", "s")
	pl := core.NewPlacement().Place("S", "h0", 1).Place("E", "h0", 1)
	r, _ := NewRunner(g, pl, cl, Options{})
	_, err := r.Run()
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestSimPlacementOnUnknownHostRejected(t *testing.T) {
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0")
	g, _ := buildPipeline(1, 1, 0)
	pl := core.NewPlacement().
		Place("S", "h0", 1).Place("W", "ghost", 1).Place("K", "h0", 1)
	if _, err := NewRunner(g, pl, cl, Options{}); err == nil {
		t.Fatal("expected error for unknown host")
	}
}

func TestSimBackgroundJobsDegradeStatically(t *testing.T) {
	// RR with bg jobs on one worker host: makespan grows with load because
	// RR keeps sending half the work there.
	run := func(bg int) float64 {
		k := sim.NewKernel()
		cl := uniformCluster(k, "src", "a", "b")
		cl.Host("b").SetBackgroundJobs(bg)
		g, _ := buildPipeline(100, 1000, 0.01)
		pl := core.NewPlacement().
			Place("S", "src", 1).
			Place("W", "a", 1).Place("W", "b", 1).
			Place("K", "src", 1)
		r, _ := NewRunner(g, pl, cl, Options{Policy: core.RoundRobin()})
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.WallSeconds
	}
	if t0, t4 := run(0), run(4); t4 < t0*2 {
		t.Fatalf("RR under 4 bg jobs: %v vs unloaded %v — should degrade >= 2x", t4, t0)
	}
}
