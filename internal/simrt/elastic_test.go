package simrt

import (
	"testing"

	"datacutter/internal/core"
	"datacutter/internal/elastic"
	"datacutter/internal/leakcheck"
	"datacutter/internal/obs"
	"datacutter/internal/sim"
)

// TestSimElasticScaleScheduleSpeedsHotUOWs scales the compute-bound worker
// from one copy to three before UOW 1 and back down before UOW 2, then
// checks delivery conservation, the emitted elastic metrics, and that the
// wider middle UOW actually ran faster in virtual time.
func TestSimElasticScaleScheduleSpeedsHotUOWs(t *testing.T) {
	leakcheck.Check(t)
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0", "h1")
	g, sink := buildPipeline(60, 1000, 0.02)
	pl := core.NewPlacement().
		Place("S", "h0", 1).
		Place("W", "h1", 1).
		Place("K", "h0", 1)
	ring := obs.NewRingSink(1 << 14)
	o := obs.New(ring, nil)
	r, err := NewRunner(g, pl, cl, Options{
		UOWs: []any{0, 1, 2},
		Obs:  o,
		ScaleSchedule: []elastic.ScaleStep{
			{BeforeUOW: 1, Filter: "W", Host: "h1", Copies: 3},
			{BeforeUOW: 2, Filter: "W", Host: "h1", Copies: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sink.seen != 3*60 {
		t.Fatalf("sink saw %d buffers, want %d", sink.seen, 3*60)
	}
	if len(st.PerUOWSeconds) != 3 {
		t.Fatalf("per-UOW times: %v", st.PerUOWSeconds)
	}
	// One host, one core: three copies still share the CPU, but CPU is not
	// the bottleneck here (0.02 ref-s per buffer vs the serialized pick/ack
	// path); the widened UOW must not be slower, and typically is faster.
	if st.PerUOWSeconds[1] > st.PerUOWSeconds[0]*1.05 {
		t.Fatalf("scaled-up UOW slower: %v", st.PerUOWSeconds)
	}
	reg := o.Registry()
	if v := reg.Counter(elastic.MetricCopiesAdded).Value(); v != 2 {
		t.Fatalf("copies_added = %d, want 2", v)
	}
	if v := reg.Counter(elastic.MetricCopiesRemoved).Value(); v != 2 {
		t.Fatalf("copies_removed = %d, want 2", v)
	}
	if v := reg.Gauge(elastic.GaugeCopysetSize + ".W.h1").Value(); v != 1 {
		t.Fatalf("copyset_size = %d, want 1", v)
	}
	var ups, downs int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KindScaleUp:
			ups++
		case obs.KindScaleDown:
			downs++
		}
	}
	if ups != 1 || downs != 1 {
		t.Fatalf("scale events up=%d down=%d, want 1/1", ups, downs)
	}
	// Stats slices grew to the peak width and kept retired copies' time.
	fs := st.Filters["W"]
	if fs.Copies != 1 || len(fs.BusySeconds) != 3 {
		t.Fatalf("stats width: copies=%d busy=%d", fs.Copies, len(fs.BusySeconds))
	}
	if fs.BusySeconds[1] <= 0 || fs.BusySeconds[2] <= 0 {
		t.Fatalf("retired copies lost their accumulated time: %v", fs.BusySeconds)
	}
}

// TestSimElasticScheduleValidation rejects unknown filters, zero
// boundaries, and hosts outside the modeled cluster.
func TestSimElasticScheduleValidation(t *testing.T) {
	leakcheck.Check(t)
	cases := []elastic.ScaleStep{
		{BeforeUOW: 1, Filter: "nope", Host: "h0", Copies: 2},
		{BeforeUOW: 0, Filter: "W", Host: "h0", Copies: 2},
		{BeforeUOW: 1, Filter: "W", Host: "ghost", Copies: 2},
	}
	for i, step := range cases {
		k := sim.NewKernel()
		cl := uniformCluster(k, "h0")
		g, _ := buildPipeline(1, 100, 0)
		pl := core.NewPlacement().Place("S", "h0", 1).Place("W", "h0", 1).Place("K", "h0", 1)
		r, err := NewRunner(g, pl, cl, Options{ScaleSchedule: []elastic.ScaleStep{step}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err == nil {
			t.Fatalf("case %d: bad step %+v accepted", i, step)
		}
	}
}

// TestSimElasticSpawnOnNewHost grows a copy set onto a host the filter did
// not start on; the new copies join the RR rotation and consume buffers.
func TestSimElasticSpawnOnNewHost(t *testing.T) {
	leakcheck.Check(t)
	k := sim.NewKernel()
	cl := uniformCluster(k, "h0", "h1", "h2")
	g, sink := buildPipeline(40, 1000, 0.01)
	pl := core.NewPlacement().
		Place("S", "h0", 1).
		Place("W", "h1", 1).
		Place("K", "h0", 1)
	r, err := NewRunner(g, pl, cl, Options{
		UOWs: []any{0, 1},
		ScaleSchedule: []elastic.ScaleStep{
			{BeforeUOW: 1, Filter: "W", Host: "h2", Copies: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sink.seen != 80 {
		t.Fatalf("sink saw %d, want 80", sink.seen)
	}
	// UOW 1 ran W on two hosts; RR must have delivered to both.
	per := st.Streams["in"].PerTargetHost
	if per["h1"] == 0 || per["h2"] == 0 {
		t.Fatalf("per-target deliveries %v: new host never picked", per)
	}
	if n := len(r.Instances("W")); n != 3 {
		t.Fatalf("final W instances = %d, want 3", n)
	}
}
