// Package exec is the transport-agnostic stream-writer runtime shared by
// all three engines. It owns everything between "a filter produced a
// buffer" and "bytes handed to a transport": writer-policy construction
// from TargetInfo (RR/WRR/DD, see policy.go), the demand-driven unacked
// sliding window and ack coalescing, copy-set targeting, producer-done /
// end-of-work countdowns, per-target delivery stats, and the internal/obs
// buffer-lifecycle events.
//
// Engines plug in through two small interfaces: a Port delivers a picked
// buffer over whatever the engine's transport is (a Go channel in
// internal/core, a sim-kernel channel plus virtual-time NIC occupation in
// internal/simrt, a wire hostLink or local queue in internal/dist), and an
// AckSource surfaces consumer acknowledgments back to the producer side
// (an AckChan for the concurrent engines, an AckSeq for the cooperative
// simulator). The StreamWriter in between is identical for every engine,
// which is the point: policy semantics are implemented once and verified
// once (see the cross-engine equivalence test).
package exec

import (
	"sync"

	"datacutter/internal/obs"
)

// Buffer is the unit of data flowing through a stream: an opaque payload
// plus its size in bytes for accounting and simulation.
type Buffer struct {
	Payload any
	Size    int
}

// Port delivers one picked buffer to a target copy set. It is the
// engine-owned half of a stream-writer path: everything before Deliver
// (policy pick, window update, pick trace event) is shared runtime,
// everything from Deliver on (queueing, wire framing, virtual-time NIC
// charges, enqueue/send trace events, backpressure stalls, cancellation)
// belongs to the engine.
//
// ackEvery is the consumer-side acknowledgment contract for this buffer:
// 0 means the policy wants no acks, k >= 1 means the consumer must
// acknowledge every k-th buffer it dequeues (coalesced via Coalescer).
// Deliver returns the engine's cancellation error (e.g. core.ErrCancelled)
// when the run is being torn down; the StreamWriter then reports the
// buffer as undelivered (no stats, no count).
type Port interface {
	Deliver(target int, b Buffer, ackEvery int) error
}

// AckSource drains consumer acknowledgments on the producer side. TryAck
// never blocks; it returns one coalesced acknowledgment (target index and
// buffer count) or ok=false when none are pending. The StreamWriter drains
// it fully at each Write, which is exactly when the window counts are
// read — acks arriving between writes cannot influence a pick anyway.
type AckSource interface {
	TryAck() (target, n int, ok bool)
}

// AckChan is the AckSource for the concurrent engines (core, dist): a
// buffered channel of (target, count) acknowledgments that consumers send
// into and one producer copy drains. Capacity must cover the worst-case
// in-flight acknowledgment count (see AckCap) so consumer-side sends never
// block; dist additionally uses Offer to shed rather than stall when a
// fault-injected peer floods it.
type AckChan chan [2]int

// NewAckChan returns an AckChan with the given capacity.
func NewAckChan(capacity int) AckChan { return make(AckChan, capacity) }

// Ack records n acknowledged buffers for target. It blocks if the channel
// is full, which a correctly sized channel (AckCap) never is.
func (c AckChan) Ack(target, n int) { c <- [2]int{target, n} }

// Offer records the acknowledgment if there is room and drops it
// otherwise, reporting whether it was accepted. The drop path exists for
// dist's receive loop, where a faulty peer must not be able to wedge the
// worker by overflowing the window bookkeeping.
func (c AckChan) Offer(target, n int) bool {
	select {
	case c <- [2]int{target, n}:
		return true
	default:
		return false
	}
}

// TryAck implements AckSource.
func (c AckChan) TryAck() (target, n int, ok bool) {
	select {
	case a := <-c:
		return a[0], a[1], true
	default:
		return 0, 0, false
	}
}

// AckSeq is the AckSource for the cooperative simulator: a plain slice,
// safe because the sim kernel runs one process at a time and acknowledging
// processes and the producer never interleave within a step.
type AckSeq struct {
	pending [][2]int
}

// Ack appends n acknowledged buffers for target.
func (s *AckSeq) Ack(target, n int) { s.pending = append(s.pending, [2]int{target, n}) }

// TryAck implements AckSource.
func (s *AckSeq) TryAck() (target, n int, ok bool) {
	if len(s.pending) == 0 {
		return 0, 0, false
	}
	a := s.pending[0]
	s.pending = s.pending[1:]
	if len(s.pending) == 0 {
		s.pending = nil
	}
	return a[0], a[1], true
}

// AckCap returns the ack-channel capacity guaranteeing consumer-side acks
// never block: one slot per buffer that can be in flight toward any target
// (its queue capacity plus one per consumer copy holding a dequeued buffer)
// plus slack for acks drained but not yet applied.
func AckCap(targets []TargetInfo, queueCap int) int {
	capacity := 8
	for _, t := range targets {
		c := t.Copies
		if c < 1 {
			c = 1
		}
		capacity += queueCap + c
	}
	return capacity
}

// Meta identifies a producer copy's stream writer for observability. Obs
// may be nil, disabling pick events.
type Meta struct {
	Obs    *obs.Observer
	Filter string // producer filter name
	Copy   int    // producer global copy index
	Host   string // producer host
	UOW    int    // current unit-of-work index
}

// StreamWriter is the shared per-(producer copy, stream) write path: it
// drains acknowledgments into the unacked sliding window, asks the policy
// writer to pick a target copy set, emits the pick trace event, hands the
// buffer to the engine Port, and counts the delivery. One StreamWriter is
// single-producer state — engines create one per producer copy per stream
// (core, simrt) or one per producing host per stream (dist, where a host's
// copies share the write path under the session lock).
//
// The target set is runtime-mutable: AddTarget/RemoveTarget/Reweight queue
// membership changes that take effect at the next buffer-pick boundary (see
// mutable.go). Target indices are stable for the writer's lifetime — a
// removed target keeps its index (and its unacked-window slot, so late acks
// still land) and a re-added host reclaims it; brand-new hosts append. The
// policy writer itself only ever sees the active targets.
type StreamWriter struct {
	stream   string
	pol      Policy
	targets  []TargetInfo // stable-index table; removed targets keep slots
	w        Writer       // policy state over the active view
	unacked  []int        // stable-index space
	acks     AckSource
	ackEvery int
	counts   *Counts
	port     Port
	meta     Meta

	mu      sync.Mutex // guards pending ops, window, view, and policy state
	pending []targetOp
	active  []bool
	view    []int // active stable indices in stable order; nil = identity
	scratch []int // view-space unacked, reused across picks
	mutated bool  // true once the view differs from the stable table
}

// NewStreamWriter builds the write path for one stream: policy writer from
// the targets, window sized to match, coalescing factor from the policy.
// counts may be shared across the producer copies of one stream (their
// deliveries tally into one per-target total). Bind an AckSource with
// BindAckSource when WantsAcks reports true.
func NewStreamWriter(stream string, p Policy, targets []TargetInfo, port Port, counts *Counts, meta Meta) *StreamWriter {
	w := p.NewWriter(targets)
	sw := &StreamWriter{
		stream:  stream,
		pol:     p,
		targets: append([]TargetInfo(nil), targets...),
		w:       w,
		unacked: make([]int, len(targets)),
		active:  make([]bool, len(targets)),
		counts:  counts,
		port:    port,
		meta:    meta,
	}
	for i := range sw.active {
		sw.active[i] = true
	}
	if w.WantsAcks() {
		sw.ackEvery = AckBatchOf(w)
	}
	return sw
}

// WantsAcks reports whether the policy needs the consumer-side ack path.
func (sw *StreamWriter) WantsAcks() bool { return sw.w.WantsAcks() }

// AckEvery returns the consumer acknowledgment contract: 0 when the policy
// wants no acks, otherwise the coalescing factor (1 = ack every buffer).
func (sw *StreamWriter) AckEvery() int { return sw.ackEvery }

// BindAckSource attaches the engine's ack path. Required before Write when
// WantsAcks is true.
func (sw *StreamWriter) BindAckSource(src AckSource) { sw.acks = src }

// Targets returns a copy of the writer's active copy-set targets in stable
// index order. It is a defensive copy: the underlying set is runtime-mutable,
// so handing out the internal slice would let callers alias state that
// AddTarget/RemoveTarget/Reweight change underneath them.
func (sw *StreamWriter) Targets() []TargetInfo {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]TargetInfo, 0, len(sw.targets))
	for i, t := range sw.targets {
		if sw.active[i] {
			out = append(out, t)
		}
	}
	return out
}

// SetUOW updates the unit-of-work index stamped on pick events.
func (sw *StreamWriter) SetUOW(uow int) { sw.meta.UOW = uow }

// Write sends one buffer: drain pending acks into the window, pick a
// target, deliver, count. The window is incremented at pick time — before
// the Port runs — so a policy never sees a buffer it already placed as
// absent from the window while the transport is still moving it. On a
// Deliver error the buffer is uncounted; the window deliberately keeps the
// increment, since a failed Deliver only happens during teardown when no
// further picks occur.
func (sw *StreamWriter) Write(b Buffer) error {
	sw.mu.Lock()
	if len(sw.pending) > 0 {
		sw.applyPending()
	}
	if sw.acks != nil {
		for {
			target, n, ok := sw.acks.TryAck()
			if !ok {
				break
			}
			sw.unacked[target] -= n
		}
	}
	var idx int
	if !sw.mutated {
		idx = sw.w.Pick(sw.unacked)
	} else {
		// The policy writer runs in view space (active targets only); map
		// its pick back to the stable index the transport and acks use.
		if cap(sw.scratch) < len(sw.view) {
			sw.scratch = make([]int, len(sw.view))
		}
		s := sw.scratch[:len(sw.view)]
		for vi, si := range sw.view {
			s[vi] = sw.unacked[si]
		}
		idx = sw.view[sw.w.Pick(s)]
	}
	if sw.w.WantsAcks() {
		sw.unacked[idx]++
	}
	targetHost := sw.targets[idx].Host
	ackEvery := sw.ackEvery
	sw.mu.Unlock()
	if sw.meta.Obs != nil {
		sw.meta.Obs.Emit(obs.Event{
			Kind: obs.KindPick, Filter: sw.meta.Filter, Copy: sw.meta.Copy,
			Host: sw.meta.Host, Stream: sw.stream, Target: targetHost,
			UOW: sw.meta.UOW,
		})
	}
	if err := sw.port.Deliver(idx, b, ackEvery); err != nil {
		return err
	}
	if sw.counts != nil {
		sw.counts.Inc(idx)
	}
	return nil
}

// Unacked returns a copy of the sliding window in stable index order, for
// tests and debugging. Removed targets keep their slots (late acks still
// drain them), so the slice always spans every target ever added.
func (sw *StreamWriter) Unacked() []int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]int, len(sw.unacked))
	copy(out, sw.unacked)
	return out
}

// Coalescer batches consumer-side acknowledgments: Ack counts one dequeued
// buffer toward key and invokes send once every `every` buffers; Flush
// sends whatever remains at end-of-work so DD windows drain even when the
// buffer count is not a multiple of the batch factor. K identifies the
// producer-side window the ack belongs to — engines key it by ack channel
// and target (core), writer state (simrt), or origin coordinates (dist).
type Coalescer[K comparable] struct {
	pending map[K]int
	send    func(key K, n int)
}

// NewCoalescer returns a Coalescer delivering batches through send.
func NewCoalescer[K comparable](send func(key K, n int)) *Coalescer[K] {
	return &Coalescer[K]{pending: make(map[K]int), send: send}
}

// Ack records one consumed buffer for key, sending a coalesced
// acknowledgment once `every` are pending.
func (c *Coalescer[K]) Ack(key K, every int) {
	c.pending[key]++
	if c.pending[key] >= every {
		n := c.pending[key]
		delete(c.pending, key)
		c.send(key, n)
	}
}

// Flush sends all residual partial batches. Call at end-of-work.
func (c *Coalescer[K]) Flush() {
	for key, n := range c.pending {
		delete(c.pending, key)
		c.send(key, n)
	}
}

// Pending returns the number of keys holding a partial batch.
func (c *Coalescer[K]) Pending() int { return len(c.pending) }
