package exec

import (
	"sync"
	"testing"
)

func TestRingOrderedDelivery(t *testing.T) {
	r := NewRing[int](8)
	const n = 10000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := r.Push(i, nil); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Pop(nil)
		if !ok {
			t.Fatalf("ring exhausted at %d of %d", i, n)
		}
		if v != i {
			t.Fatalf("pop %d = %d: FIFO order broken", i, v)
		}
	}
	if _, ok := r.Pop(nil); ok {
		t.Fatal("pop after close+drain reported an item")
	}
	wg.Wait()
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {512, 512},
	} {
		if got := NewRing[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingDrainsAfterClose(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 5; i++ {
		if err := r.Push(i, nil); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	r.Close() // idempotent
	if err := r.Push(99, nil); err != ErrRingClosed {
		t.Fatalf("push after close = %v, want ErrRingClosed", err)
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Pop(nil)
		if !ok || v != i {
			t.Fatalf("drain pop %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := r.Pop(nil); ok {
		t.Fatal("pop reported an item after the drain")
	}
}

func TestRingPushStopUnblocks(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1, nil)
	r.Push(2, nil) // full
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- r.Push(3, stop) }()
	close(stop)
	if err := <-errc; err != ErrRingClosed {
		t.Fatalf("blocked push after stop = %v, want ErrRingClosed", err)
	}
}

func TestRingPopStopUnblocks(t *testing.T) {
	r := NewRing[int](2)
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := r.Pop(stop)
		done <- ok
	}()
	close(stop)
	if ok := <-done; ok {
		t.Fatal("blocked pop after stop reported an item")
	}
}

func TestRingCloseUnblocksBothSides(t *testing.T) {
	full := NewRing[int](2)
	full.Push(1, nil)
	full.Push(2, nil)
	pushErr := make(chan error, 1)
	go func() { pushErr <- full.Push(3, nil) }()

	empty := NewRing[int](2)
	popOK := make(chan bool, 1)
	go func() {
		_, ok := empty.Pop(nil)
		popOK <- ok
	}()

	full.Close()
	empty.Close()
	if err := <-pushErr; err != ErrRingClosed {
		t.Fatalf("push unblocked with %v, want ErrRingClosed", err)
	}
	if ok := <-popOK; ok {
		t.Fatal("pop on closed empty ring reported an item")
	}
}

// TestRingStress hammers a small ring from both sides so the race detector
// can see the slot handoff and the park/wake protocol.
func TestRingStress(t *testing.T) {
	r := NewRing[[]byte](4)
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := []byte{0}
		for i := 0; i < n; i++ {
			buf[0] = byte(i)
			cp := append([]byte(nil), buf...)
			if err := r.Push(cp, nil); err != nil {
				t.Errorf("push: %v", err)
				return
			}
		}
		r.Close()
	}()
	got := 0
	for {
		v, ok := r.Pop(nil)
		if !ok {
			break
		}
		if v[0] != byte(got) {
			t.Fatalf("item %d carried payload %d", got, v[0])
		}
		got++
	}
	if got != n {
		t.Fatalf("received %d of %d items", got, n)
	}
	wg.Wait()
}

func TestRingPortDelivers(t *testing.T) {
	rings := []*Ring[RingItem]{NewRing[RingItem](4), NewRing[RingItem](4)}
	p := &RingPort{Rings: rings}
	if err := p.Deliver(1, Buffer{Payload: "x", Size: 7}, 3); err != nil {
		t.Fatal(err)
	}
	if rings[0].Len() != 0 {
		t.Fatal("delivery landed on the wrong target ring")
	}
	it, ok := rings[1].Pop(nil)
	if !ok || it.Buf.Payload != "x" || it.Buf.Size != 7 || it.AckEvery != 3 {
		t.Fatalf("popped %+v, ok=%v", it, ok)
	}
}
