package exec

import (
	"sync"
	"sync/atomic"
)

// Countdown tracks end-of-work propagation for one stream: it starts at the
// number of producer copies (or producing hosts, in dist) and Done reports
// true exactly once, when the last producer finishes. Engines close the
// consumer queue on that edge. Extra Done calls after zero — dist's fault
// injector can duplicate producer-done frames — return false, so the close
// can never double-fire.
type Countdown struct {
	left atomic.Int32
}

// NewCountdown returns a countdown expecting n producer completions.
func NewCountdown(n int) *Countdown {
	c := &Countdown{}
	c.left.Store(int32(n))
	return c
}

// Done records one producer completion and reports whether it was the last.
func (c *Countdown) Done() bool { return c.left.Add(-1) == 0 }

// Left returns the number of outstanding producers (may go negative on
// duplicated completions; callers only act on the exact zero edge).
func (c *Countdown) Left() int { return int(c.left.Load()) }

// Counts is a per-target delivery tally, shared by all producer copies of
// one stream and safe for concurrent increment. Fold turns the indices back
// into the per-host map the engines expose in their stream stats.
//
// The tally is growable so a runtime target-set addition (StreamWriter.
// AddTarget) can extend it mid-stream: slots are pointers published through
// an atomic snapshot, so a grow copies the pointers and concurrent
// increments on existing slots are never lost.
type Counts struct {
	mu    sync.Mutex // serializes Grow
	slots atomic.Pointer[[]*atomic.Int64]
}

// NewCounts returns a tally over n targets.
func NewCounts(n int) *Counts {
	c := &Counts{}
	s := make([]*atomic.Int64, n)
	for i := range s {
		s[i] = new(atomic.Int64)
	}
	c.slots.Store(&s)
	return c
}

// Inc adds one delivery to target i.
func (c *Counts) Inc(i int) { (*c.slots.Load())[i].Add(1) }

// Get returns target i's delivery count (0 for targets beyond the tally).
func (c *Counts) Get(i int) int64 {
	s := *c.slots.Load()
	if i >= len(s) {
		return 0
	}
	return s[i].Load()
}

// Len returns the number of targets tallied.
func (c *Counts) Len() int { return len(*c.slots.Load()) }

// Grow extends the tally to cover n targets; existing counts are preserved.
// No-op when already that wide. Safe to call concurrently with Inc/Get/Fold.
func (c *Counts) Grow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := *c.slots.Load()
	if n <= len(s) {
		return
	}
	ns := make([]*atomic.Int64, n)
	copy(ns, s)
	for i := len(s); i < n; i++ {
		ns[i] = new(atomic.Int64)
	}
	c.slots.Store(&ns)
}

// Fold adds the tally into a per-host map; hosts[i] names target i. Slots
// beyond the host list (added after the caller captured its host order) are
// skipped.
func (c *Counts) Fold(hosts []string, into map[string]int64) {
	s := *c.slots.Load()
	for i := range s {
		if i >= len(hosts) {
			break
		}
		if v := s[i].Load(); v != 0 {
			into[hosts[i]] += v
		}
	}
}
