package exec

import "sync/atomic"

// Countdown tracks end-of-work propagation for one stream: it starts at the
// number of producer copies (or producing hosts, in dist) and Done reports
// true exactly once, when the last producer finishes. Engines close the
// consumer queue on that edge. Extra Done calls after zero — dist's fault
// injector can duplicate producer-done frames — return false, so the close
// can never double-fire.
type Countdown struct {
	left atomic.Int32
}

// NewCountdown returns a countdown expecting n producer completions.
func NewCountdown(n int) *Countdown {
	c := &Countdown{}
	c.left.Store(int32(n))
	return c
}

// Done records one producer completion and reports whether it was the last.
func (c *Countdown) Done() bool { return c.left.Add(-1) == 0 }

// Left returns the number of outstanding producers (may go negative on
// duplicated completions; callers only act on the exact zero edge).
func (c *Countdown) Left() int { return int(c.left.Load()) }

// Counts is a per-target delivery tally, shared by all producer copies of
// one stream and safe for concurrent increment. Fold turns the indices back
// into the per-host map the engines expose in their stream stats.
type Counts struct {
	n []atomic.Int64
}

// NewCounts returns a tally over n targets.
func NewCounts(n int) *Counts { return &Counts{n: make([]atomic.Int64, n)} }

// Inc adds one delivery to target i.
func (c *Counts) Inc(i int) { c.n[i].Add(1) }

// Get returns target i's delivery count.
func (c *Counts) Get(i int) int64 { return c.n[i].Load() }

// Fold adds the tally into a per-host map; hosts[i] names target i.
func (c *Counts) Fold(hosts []string, into map[string]int64) {
	for i := range c.n {
		if v := c.n[i].Load(); v != 0 {
			into[hosts[i]] += v
		}
	}
}
