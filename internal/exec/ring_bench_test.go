package exec

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
)

// BenchmarkSameHostPort compares same-host Port transports moving 16 KiB
// buffers to one consumer: the SPSC ring (this PR), a buffered Go channel
// (the core engine's transport), and a TCP loopback socket carrying
// length-prefixed payload bytes (what the dist engine pays when it does not
// select the ring). Consumer-side work is just counting, so the numbers
// isolate transport overhead.
func BenchmarkSameHostPort(b *testing.B) {
	const payloadLen = 16 << 10
	payload := make([]byte, payloadLen)

	b.Run("ring", func(b *testing.B) {
		r := NewRing[RingItem](512)
		p := &RingPort{Rings: []*Ring[RingItem]{r}}
		done := make(chan int)
		go func() {
			n := 0
			for {
				it, ok := r.Pop(nil)
				if !ok {
					break
				}
				n += it.Buf.Size
			}
			done <- n
		}()
		b.ReportAllocs()
		b.SetBytes(payloadLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Deliver(0, Buffer{Payload: payload, Size: payloadLen}, 0); err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
		if got := <-done; got != b.N*payloadLen {
			b.Fatalf("consumer saw %d bytes, want %d", got, b.N*payloadLen)
		}
	})

	b.Run("chan", func(b *testing.B) {
		ch := make(chan Buffer, 512)
		done := make(chan int)
		go func() {
			n := 0
			for buf := range ch {
				n += buf.Size
			}
			done <- n
		}()
		b.ReportAllocs()
		b.SetBytes(payloadLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch <- Buffer{Payload: payload, Size: payloadLen}
		}
		close(ch)
		if got := <-done; got != b.N*payloadLen {
			b.Fatalf("consumer saw %d bytes, want %d", got, b.N*payloadLen)
		}
	})

	b.Run("tcp-loopback", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		done := make(chan int)
		go func() {
			c, err := ln.Accept()
			if err != nil {
				done <- -1
				return
			}
			defer c.Close()
			var hdr [4]byte
			buf := make([]byte, payloadLen)
			n := 0
			for {
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					break
				}
				sz := int(binary.LittleEndian.Uint32(hdr[:]))
				if _, err := io.ReadFull(c, buf[:sz]); err != nil {
					break
				}
				n += sz
			}
			done <- n
		}()
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], payloadLen)
		b.ReportAllocs()
		b.SetBytes(payloadLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(hdr[:]); err != nil {
				b.Fatal(err)
			}
			if _, err := c.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		c.Close()
		if got := <-done; got != b.N*payloadLen {
			b.Fatalf("consumer saw %d bytes, want %d", got, b.N*payloadLen)
		}
	})
}
