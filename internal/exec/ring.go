package exec

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrRingClosed is returned by Ring.Push after Close (or after the pusher's
// stop channel fires): the consumer side is gone and the value was not
// enqueued.
var ErrRingClosed = errors.New("exec: ring closed")

// Ring is a bounded single-producer/single-consumer queue over a
// power-of-two slot array. The hot path is lock-free — one atomic load and
// one atomic store per operation while the ring is neither full nor empty —
// and the contended path parks on capacity-1 wakeup channels instead of
// spinning, so a stalled consumer costs no CPU.
//
// The SPSC contract is strict: at most one goroutine calls Push and at most
// one calls Pop at any time (serialize externally to widen either side).
// Close may be called from anywhere, any number of times; after Close the
// consumer drains the remaining items and then Pop reports exhaustion,
// matching a closed Go channel.
type Ring[T any] struct {
	slots []T
	mask  uint64

	head atomic.Uint64 // next slot to pop; advanced only by the consumer
	tail atomic.Uint64 // next slot to fill; advanced only by the producer

	notEmpty chan struct{} // capacity 1: consumer parks here when empty
	notFull  chan struct{} // capacity 1: producer parks here when full
	done     chan struct{}
	closing  sync.Once
}

// NewRing returns a ring holding at least capacity items (rounded up to a
// power of two, minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{
		slots:    make([]T, n),
		mask:     uint64(n - 1),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// Cap returns the ring's slot count.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Len returns the number of items currently queued (racy by nature; exact
// only from the producer or consumer goroutine).
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Close marks the ring closed: Push fails from now on, and Pop drains the
// remaining items before reporting exhaustion. Idempotent.
func (r *Ring[T]) Close() {
	r.closing.Do(func() { close(r.done) })
}

// Push enqueues v, blocking while the ring is full. It returns ErrRingClosed
// when the ring is closed or stop (which may be nil) fires before the value
// is enqueued.
func (r *Ring[T]) Push(v T, stop <-chan struct{}) error {
	for {
		select {
		case <-r.done:
			return ErrRingClosed
		default:
		}
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.slots)) {
			// The store to the slot happens-before the tail.Store (release),
			// which the consumer's tail.Load (acquire) synchronizes with.
			r.slots[t&r.mask] = v
			r.tail.Store(t + 1)
			select {
			case r.notEmpty <- struct{}{}:
			default:
			}
			return nil
		}
		select {
		case <-r.notFull:
			// A pop freed a slot (or a stale token; the loop re-checks).
		case <-r.done:
			return ErrRingClosed
		case <-stop:
			return ErrRingClosed
		}
	}
}

// Pop dequeues the next item, blocking while the ring is empty. ok=false
// means the ring was closed and fully drained, or stop (which may be nil)
// fired. After Close, Pop keeps returning the items already enqueued before
// reporting exhaustion — in-flight traffic is delivered, like a closed
// channel.
func (r *Ring[T]) Pop(stop <-chan struct{}) (v T, ok bool) {
	var zero T
	for {
		h := r.head.Load()
		if r.tail.Load() > h {
			v = r.slots[h&r.mask]
			// Zero the slot so the ring does not pin the payload for a full
			// lap, then release it to the producer.
			r.slots[h&r.mask] = zero
			r.head.Store(h + 1)
			select {
			case r.notFull <- struct{}{}:
			default:
			}
			return v, true
		}
		select {
		case <-r.notEmpty:
		case <-r.done:
			// Closed: one final racy window where a concurrent Push may have
			// landed between the emptiness check and here.
			h := r.head.Load()
			if r.tail.Load() > h {
				continue
			}
			return zero, false
		case <-stop:
			return zero, false
		}
	}
}

// RingItem is one delivery on a RingPort target ring: the buffer plus its
// consumer-side acknowledgment contract.
type RingItem struct {
	Buf      Buffer
	AckEvery int
}

// RingPort is a Port backed by one SPSC ring per target copy set — the
// same-address-space transport: a picked buffer is handed to the consumer
// as a value, with no serialization, no syscall, and no copy. A full target
// ring blocks the producer (bounded-queue backpressure, like every other
// engine transport). Stop, when non-nil, aborts a blocked Deliver at
// teardown.
type RingPort struct {
	Rings []*Ring[RingItem]
	Stop  <-chan struct{}
}

// Deliver implements Port.
func (p *RingPort) Deliver(target int, b Buffer, ackEvery int) error {
	return p.Rings[target].Push(RingItem{Buf: b, AckEvery: ackEvery}, p.Stop)
}
