package exec_test

import (
	"reflect"
	"testing"

	"datacutter/internal/exec"
)

func replayTargets() []exec.TargetInfo {
	return []exec.TargetInfo{
		{Host: "hostA", Copies: 1},
		{Host: "hostB", Copies: 2},
	}
}

func TestReplayCountsRR(t *testing.T) {
	// Round robin ignores weights: an even split regardless of copies.
	got := exec.ReplayCounts(exec.RoundRobin(), replayTargets(), 96)
	if want := []int{48, 48}; !reflect.DeepEqual(got, want) {
		t.Fatalf("RR counts %v, want %v", got, want)
	}
}

func TestReplayCountsWRR(t *testing.T) {
	// Weighted round robin splits proportionally to copy counts — the
	// same 32/64 split the cross-engine equivalence suite pins down.
	got := exec.ReplayCounts(exec.WeightedRoundRobin(), replayTargets(), 96)
	if want := []int{32, 64}; !reflect.DeepEqual(got, want) {
		t.Fatalf("WRR counts %v, want %v", got, want)
	}
}

func TestReplayPicksDeterministic(t *testing.T) {
	for _, p := range []exec.Policy{exec.RoundRobin(), exec.WeightedRoundRobin()} {
		a := exec.ReplayPicks(p, replayTargets(), 41)
		b := exec.ReplayPicks(p, replayTargets(), 41)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two replays differ: %v vs %v", p.Name(), a, b)
		}
		if len(a) != 41 {
			t.Fatalf("%s: %d picks, want 41", p.Name(), len(a))
		}
		counts := exec.ReplayCounts(p, replayTargets(), 41)
		sum := 0
		for _, n := range counts {
			sum += n
		}
		if sum != 41 {
			t.Fatalf("%s: counts %v sum to %d, want 41", p.Name(), counts, sum)
		}
	}
}
