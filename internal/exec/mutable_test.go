package exec

import (
	"reflect"
	"sync"
	"testing"
)

// ---- runtime-mutable target sets ----

func targets3() []TargetInfo {
	return []TargetInfo{
		{Host: "a", Copies: 1},
		{Host: "b", Copies: 1},
		{Host: "c", Copies: 1},
	}
}

func TestTargetsDefensiveCopy(t *testing.T) {
	sw := NewStreamWriter("s", RoundRobin(), targets2(), &recordPort{}, nil, Meta{})
	got := sw.Targets()
	got[0].Host = "mangled"
	got[0].Copies = 99
	again := sw.Targets()
	if again[0].Host != "a" || again[0].Copies != 1 {
		t.Fatalf("internal targets aliased through Targets(): %+v", again)
	}
	// The constructor must also defend against the caller's slice.
	mine := targets2()
	sw = NewStreamWriter("s", RoundRobin(), mine, &recordPort{}, nil, Meta{})
	mine[1].Host = "mangled"
	if ts := sw.Targets(); ts[1].Host != "b" {
		t.Fatalf("constructor aliased caller slice: %+v", ts)
	}
}

func TestRemoveTargetSkipsInactive(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", RoundRobin(), targets3(), port, nil, Meta{})
	// Two full cycles, then remove b. Stable indices: a=0 b=1 c=2.
	for i := 0; i < 6; i++ {
		mustWrite(t, sw)
	}
	sw.RemoveTarget("b")
	for i := 0; i < 4; i++ {
		mustWrite(t, sw)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 2, 0, 2}
	if !reflect.DeepEqual(port.picks, want) {
		t.Fatalf("picks = %v, want %v", port.picks, want)
	}
	if ts := sw.Targets(); len(ts) != 2 || ts[0].Host != "a" || ts[1].Host != "c" {
		t.Fatalf("active targets after remove: %+v", ts)
	}
}

func TestRemoveLastTargetIgnored(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", RoundRobin(), []TargetInfo{{Host: "a", Copies: 1}}, port, nil, Meta{})
	sw.RemoveTarget("a")
	mustWrite(t, sw)
	if len(port.picks) != 1 || port.picks[0] != 0 {
		t.Fatalf("picks = %v", port.picks)
	}
	if ts := sw.Targets(); len(ts) != 1 {
		t.Fatalf("last target was removed: %+v", ts)
	}
}

func TestAddTargetAppendsAndGrowsCounts(t *testing.T) {
	port := &recordPort{}
	counts := NewCounts(2)
	sw := NewStreamWriter("s", RoundRobin(), targets2(), port, counts, Meta{})
	mustWrite(t, sw) // a
	sw.AddTarget(TargetInfo{Host: "c", Copies: 1})
	for i := 0; i < 5; i++ {
		mustWrite(t, sw)
	}
	// After the add, rotation continues from b then includes c.
	want := []int{0, 1, 2, 0, 1, 2}
	if !reflect.DeepEqual(port.picks, want) {
		t.Fatalf("picks = %v, want %v", port.picks, want)
	}
	if counts.Len() != 3 {
		t.Fatalf("counts.Len() = %d after AddTarget", counts.Len())
	}
	if counts.Get(2) != 2 {
		t.Fatalf("appended target tally = %d, want 2", counts.Get(2))
	}
}

func TestReAddReclaimsStableIndexAndWindow(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", DemandDriven(), targets2(), port, nil, Meta{})
	acks := &AckSeq{}
	sw.BindAckSource(acks)
	// Fill both windows: a=2 b=2.
	for i := 0; i < 4; i++ {
		mustWrite(t, sw)
	}
	sw.RemoveTarget("a")
	// a's window slot survives removal; writes go to b only.
	mustWrite(t, sw)
	if w := sw.Unacked(); w[0] != 2 || w[1] != 3 {
		t.Fatalf("window after remove+write: %v", w)
	}
	// A late ack for the removed target still drains its slot.
	acks.Ack(0, 2)
	sw.AddTarget(TargetInfo{Host: "a", Copies: 1})
	// a rejoined at its old index with a drained window — DD picks it.
	mustWrite(t, sw)
	if last := port.picks[len(port.picks)-1]; last != 0 {
		t.Fatalf("post-rejoin pick = %d, want stable index 0", last)
	}
	if w := sw.Unacked(); w[0] != 1 || w[1] != 3 {
		t.Fatalf("window after rejoin: %v", w)
	}
}

func TestReweightShiftsWRRProportions(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", WeightedRoundRobin(), targets2(), port, nil, Meta{})
	sw.Reweight("a", 2)
	sw.Reweight("b", 1)
	got := map[int]int{}
	for i := 0; i < 9; i++ {
		mustWrite(t, sw)
	}
	for _, p := range port.picks {
		got[p]++
	}
	// Weights flipped from 1:2 to 2:1.
	if got[0] != 6 || got[1] != 3 {
		t.Fatalf("WRR split after reweight %v, want 6/3", got)
	}
}

func TestReweightScalesDDBatchedNormalization(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", DemandDrivenBatched(2), targets2(), port, nil, Meta{})
	sw.BindAckSource(&AckSeq{})
	// b has 2 copies: unbalanced raw windows normalize equal. Reweight b to
	// 1 copy and its window stops being discounted.
	for i := 0; i < 6; i++ {
		mustWrite(t, sw)
	}
	w := sw.Unacked()
	if w[0]+w[1] != 6 {
		t.Fatalf("window = %v", w)
	}
	before := w[1]
	sw.Reweight("b", 1)
	got := map[int]int{}
	for i := 0; i < 4; i++ {
		mustWrite(t, sw)
	}
	for _, p := range port.picks[6:] {
		got[p]++
	}
	if before > 2 && got[1] > got[0] {
		t.Fatalf("reweighted b still over-fed: %v (window before %v)", got, w)
	}
}

func TestWRRMigrationKeepsSurvivorCredits(t *testing.T) {
	// 3 targets weight 1 each. After k picks, credits encode who is owed
	// next. Removing an untouched target must not reset the cycle.
	port := &recordPort{}
	sw := NewStreamWriter("s", WeightedRoundRobin(), targets3(), port, nil, Meta{})
	mustWrite(t, sw) // picks a (index 0)
	sw.RemoveTarget("a")
	mustWrite(t, sw)
	mustWrite(t, sw)
	// b and c were owed their turn; the rebuilt writer must serve both
	// before returning to anyone.
	got := map[int]int{}
	for _, p := range port.picks[1:] {
		got[p]++
	}
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("post-migration picks %v, want one each of b,c", port.picks[1:])
	}
}

func TestMutationsApplyAtPickBoundary(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", RoundRobin(), targets2(), port, nil, Meta{})
	sw.RemoveTarget("a")
	sw.AddTarget(TargetInfo{Host: "a", Copies: 1})
	// Queued ops cancel out before any pick: behavior identical to no-op.
	for i := 0; i < 4; i++ {
		mustWrite(t, sw)
	}
	if !reflect.DeepEqual(port.picks, []int{0, 1, 0, 1}) {
		t.Fatalf("picks = %v", port.picks)
	}
}

func TestConcurrentMutationsUnderWrites(t *testing.T) {
	// Race-detector exercise: one goroutine writes, another churns
	// membership and weights. Invariant: every pick lands on an index that
	// was active at pick time, and the writer never panics or deadlocks.
	port := &recordPort{}
	sw := NewStreamWriter("s", WeightedRoundRobin(), targets3(), port, NewCounts(3), Meta{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				sw.RemoveTarget("b")
			case 1:
				sw.Reweight("a", 1+i%3)
			case 2:
				sw.AddTarget(TargetInfo{Host: "b", Copies: 2})
			case 3:
				sw.Targets()
				sw.Unacked()
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		mustWrite(t, sw)
	}
	close(stop)
	wg.Wait()
	if len(port.picks) != 2000 {
		t.Fatalf("delivered %d, want 2000", len(port.picks))
	}
	for _, p := range port.picks {
		if p < 0 || p > 2 {
			t.Fatalf("pick outside stable table: %d", p)
		}
	}
}

func TestCountsGrowConcurrent(t *testing.T) {
	c := NewCounts(1)
	var wg sync.WaitGroup
	const incs = 5000
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < incs; i++ {
			c.Inc(0)
		}
	}()
	go func() {
		defer wg.Done()
		for n := 2; n < 64; n++ {
			c.Grow(n)
		}
	}()
	wg.Wait()
	if c.Get(0) != incs {
		t.Fatalf("lost increments across Grow: %d/%d", c.Get(0), incs)
	}
	if c.Len() != 63 {
		t.Fatalf("Len = %d, want 63", c.Len())
	}
	c.Grow(10) // shrinking request is a no-op
	if c.Len() != 63 {
		t.Fatal("Grow shrank the tally")
	}
	into := map[string]int64{}
	c.Fold([]string{"h"}, into) // host list shorter than tally: no panic
	if into["h"] != incs {
		t.Fatalf("fold: %v", into)
	}
}

func TestRRMigrationRotationResumes(t *testing.T) {
	// next pointed at a removed target: rotation resumes at the next
	// surviving one, cyclically.
	port := &recordPort{}
	sw := NewStreamWriter("s", RoundRobin(), targets3(), port, nil, Meta{})
	mustWrite(t, sw) // a; next = b
	sw.RemoveTarget("b")
	mustWrite(t, sw) // next surviving after b is c
	mustWrite(t, sw) // then a
	if !reflect.DeepEqual(port.picks, []int{0, 2, 0}) {
		t.Fatalf("picks = %v", port.picks)
	}
}

func TestDDMigrationPrefersLocalAfterRebuild(t *testing.T) {
	port := &recordPort{}
	targets := []TargetInfo{
		{Host: "a", Copies: 1},
		{Host: "b", Copies: 1, Local: true},
		{Host: "c", Copies: 1},
	}
	sw := NewStreamWriter("s", DemandDriven(), targets, port, nil, Meta{})
	sw.BindAckSource(&AckSeq{})
	sw.RemoveTarget("c")
	mustWrite(t, sw)
	// All windows equal (zero): the rebuilt writer still prefers the
	// colocated copy set, proving Local survived the rebuild.
	if port.picks[0] != 1 {
		t.Fatalf("first pick = %d, want local index 1", port.picks[0])
	}
}

func mustWrite(t *testing.T, sw *StreamWriter) {
	t.Helper()
	if err := sw.Write(Buffer{Size: 1}); err != nil {
		t.Fatal(err)
	}
}
