package exec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TargetInfo describes one consumer copy set (all transparent copies of the
// consumer filter on one host) from the point of view of a particular
// producer copy.
type TargetInfo struct {
	Host   string
	Copies int  // consumer copies on that host
	Local  bool // true if colocated with the producer copy
}

// Policy selects, for each buffer a producer copy writes, which consumer
// copy set receives it. Policies are engine-neutral: the identical
// implementations drive the real goroutine engine (internal/core), the
// simulated cluster engine (internal/simrt), and the distributed TCP engine
// (internal/dist), all through this package's StreamWriter runtime.
//
// The three policies are the ones evaluated in the paper (§2):
//
//   - Round Robin (RR): buffers cycle over copy sets, one per host.
//   - Weighted Round Robin (WRR): cyclic, with each host receiving buffers
//     in proportion to the number of copies it runs.
//   - Demand Driven (DD): consumers acknowledge each buffer as they begin
//     processing it; the producer sends to the copy set with the fewest
//     unacknowledged buffers, preferring a colocated copy set on ties.
type Policy interface {
	// Name returns the short policy name ("RR", "WRR", "DD").
	Name() string
	// NewWriter creates per-producer-copy state for one stream with the
	// given targets (one per consumer copy set, in placement order).
	NewWriter(targets []TargetInfo) Writer
}

// Writer is per-(producer copy, stream) policy state.
type Writer interface {
	// Pick returns the index into the targets slice that should receive
	// the next buffer. unacked[i] is the number of buffers sent to target
	// i that have not yet been acknowledged; it is maintained by the
	// engine and meaningful only when WantsAcks is true.
	Pick(unacked []int) int
	// WantsAcks reports whether the engine must have consumers acknowledge
	// buffers (the DD feedback channel). RR and WRR are the paper's
	// "zero overhead" policies and return false.
	WantsAcks() bool
}

// ---- Round Robin ----

type rrPolicy struct{}

// RoundRobin returns the RR policy: cyclic distribution of buffers across
// copy sets, one buffer per host per cycle.
func RoundRobin() Policy { return rrPolicy{} }

func (rrPolicy) Name() string { return "RR" }
func (rrPolicy) NewWriter(targets []TargetInfo) Writer {
	return &rrWriter{n: len(targets)}
}

type rrWriter struct{ next, n int }

func (w *rrWriter) Pick([]int) int {
	i := w.next
	w.next = (w.next + 1) % w.n
	return i
}
func (w *rrWriter) WantsAcks() bool { return false }

// migrateFrom resumes the rotation at the first surviving target at or after
// the old writer's next pick, so a membership change neither skips nor
// double-serves anyone.
func (w *rrWriter) migrateFrom(old Writer, oldToNew []int) {
	o, ok := old.(*rrWriter)
	if !ok || len(oldToNew) == 0 || w.n == 0 {
		return
	}
	n := len(oldToNew)
	for i := 0; i < n; i++ {
		q := (o.next + i) % n
		if oldToNew[q] >= 0 {
			w.next = oldToNew[q]
			return
		}
	}
}

// ---- Weighted Round Robin ----

type wrrPolicy struct{}

// WeightedRoundRobin returns the WRR policy: cyclic distribution where each
// host receives buffers in linear proportion to the number of consumer
// copies it runs (paper §2: "one per filter on each host").
func WeightedRoundRobin() Policy { return wrrPolicy{} }

func (wrrPolicy) Name() string { return "WRR" }
func (wrrPolicy) NewWriter(targets []TargetInfo) Writer {
	// Expand the weighted cycle; interleave rather than blocking so hosts
	// alternate even within one cycle (smooth WRR): on each step pick the
	// target with the highest (weight - sent*cycleLen/weight) — implemented
	// as the classic smooth weighted round-robin.
	w := &wrrWriter{}
	for _, t := range targets {
		c := t.Copies
		if c < 1 {
			c = 1
		}
		w.weight = append(w.weight, c)
		w.current = append(w.current, 0)
		w.total += c
	}
	return w
}

// wrrWriter implements smooth weighted round robin: each pick adds weight_i
// to current_i, selects the max, and subtracts the total weight from it.
// Over one cycle of `total` picks every target i is chosen weight_i times,
// with picks spread as evenly as possible.
type wrrWriter struct {
	weight  []int
	current []int
	total   int
}

func (w *wrrWriter) Pick([]int) int {
	best := 0
	for i := range w.current {
		w.current[i] += w.weight[i]
		if w.current[i] > w.current[best] {
			best = i
		}
	}
	w.current[best] -= w.total
	return best
}
func (w *wrrWriter) WantsAcks() bool { return false }

// migrateFrom carries surviving targets' smooth-WRR credits across a
// rebuild; departed credit disappears with its target and new targets start
// at zero. Smooth WRR is self-correcting, so carried credit only smooths the
// transition — long-run proportions follow the new weights regardless.
func (w *wrrWriter) migrateFrom(old Writer, oldToNew []int) {
	o, ok := old.(*wrrWriter)
	if !ok {
		return
	}
	for i, np := range oldToNew {
		if np >= 0 && i < len(o.current) && np < len(w.current) {
			w.current[np] = o.current[i]
		}
	}
}

// ---- Demand Driven ----

type ddPolicy struct{}

// DemandDriven returns the DD policy: a sliding-window mechanism based on
// buffer consumption rate. Consumers acknowledge each buffer when they
// dequeue it for processing; the producer sends each new buffer to the copy
// set with the fewest unacknowledged buffers, directing work to consumers
// showing recent good performance. Ties prefer a colocated copy set,
// implicitly accounting for communication cost (paper §2, §4.3).
func DemandDriven() Policy { return ddPolicy{} }

func (ddPolicy) Name() string { return "DD" }
func (ddPolicy) NewWriter(targets []TargetInfo) Writer {
	w := &ddWriter{local: make([]bool, len(targets)), last: len(targets) - 1}
	for i, t := range targets {
		w.local[i] = t.Local
	}
	return w
}

type ddWriter struct {
	local []bool
	last  int // rotation point for fair tie-breaks among remotes
}

// Pick selects the copy set with the fewest unacknowledged buffers. Ties
// prefer a colocated copy set (avoiding network traffic, paper §2); ties
// among remote copy sets rotate cyclically so that, when every consumer is
// saturated (all counts equal), the distribution stays fair instead of
// piling onto the first-listed host.
func (w *ddWriter) Pick(unacked []int) int {
	n := len(unacked)
	min := unacked[0]
	for _, u := range unacked[1:] {
		if u < min {
			min = u
		}
	}
	best := -1
	for i := 1; i <= n; i++ {
		idx := (w.last + i) % n
		if unacked[idx] != min {
			continue
		}
		if w.local[idx] {
			best = idx
			break
		}
		if best == -1 {
			best = idx
		}
	}
	w.last = best
	return best
}
func (w *ddWriter) WantsAcks() bool { return true }

// migrateFrom remaps the remote tie-break rotation point to the nearest
// surviving predecessor, so saturated-steady-state fairness carries across a
// membership change. DD's demand signal itself (the unacked window) lives in
// the StreamWriter and needs no migration. Promoted through ddBatchedWriter's
// embedding, so it handles both plain and batched old writers.
func (w *ddWriter) migrateFrom(old Writer, oldToNew []int) {
	var o *ddWriter
	switch v := old.(type) {
	case *ddWriter:
		o = v
	case *ddBatchedWriter:
		o = v.ddWriter
	default:
		return
	}
	n := len(oldToNew)
	if n == 0 || o.last < 0 || o.last >= n || len(w.local) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		q := ((o.last-i)%n + n) % n
		if oldToNew[q] >= 0 {
			w.last = oldToNew[q]
			return
		}
	}
}

// ---- Demand Driven with batched acknowledgments ----

// AckBatcher is an optional Writer extension: when implemented, consumers
// coalesce acknowledgments, sending one message per AckBatch buffers
// instead of one per buffer. This is the paper's proposed follow-up for
// reducing DD's communication overhead on slow networks (§6: "we plan to
// further investigate methods to reduce the communication overhead in
// DD"): the ack traffic drops k-fold at the price of coarser demand
// information.
type AckBatcher interface {
	// AckBatch returns the coalescing factor (>= 1).
	AckBatch() int
}

type ddBatchedPolicy struct{ k int }

// DemandDrivenBatched returns the DD policy with acknowledgments coalesced
// k-fold.
func DemandDrivenBatched(k int) Policy {
	if k < 1 {
		k = 1
	}
	return ddBatchedPolicy{k: k}
}

func (p ddBatchedPolicy) Name() string { return fmt.Sprintf("DD/%d", p.k) }
func (p ddBatchedPolicy) NewWriter(targets []TargetInfo) Writer {
	w := &ddBatchedWriter{
		ddWriter: DemandDriven().NewWriter(targets).(*ddWriter),
		k:        p.k,
		copies:   make([]int, len(targets)),
	}
	for i, t := range targets {
		c := t.Copies
		if c < 1 {
			c = 1
		}
		w.copies[i] = c
	}
	return w
}

type ddBatchedWriter struct {
	*ddWriter
	k      int
	copies []int
}

func (w *ddBatchedWriter) AckBatch() int { return w.k }

// Pick normalizes outstanding buffers by copy count before comparing:
// with acknowledgments arriving in coarse batches, raw counts would
// systematically under-feed large copy sets (a set of c copies legitimately
// holds c in-flight buffers plus a batch of withheld acks).
func (w *ddBatchedWriter) Pick(unacked []int) int {
	scaled := make([]int, len(unacked))
	for i, u := range unacked {
		scaled[i] = (u + w.copies[i] - 1) / w.copies[i]
	}
	return w.ddWriter.Pick(scaled)
}

// AckBatchOf returns a writer's coalescing factor (1 when unbatched).
func AckBatchOf(w Writer) int {
	if b, ok := w.(AckBatcher); ok {
		if k := b.AckBatch(); k > 1 {
			return k
		}
	}
	return 1
}

// PolicyByName returns the policy for a short name, or nil if unknown.
// "DD/4" selects demand driven with 4-fold batched acknowledgments; the
// batch factor must be a bare positive integer ("DD/0", "DD/-1", "DD/4x",
// and "DD/" are all rejected).
func PolicyByName(name string) Policy {
	switch name {
	case "RR":
		return RoundRobin()
	case "WRR":
		return WeightedRoundRobin()
	case "DD":
		return DemandDriven()
	}
	if rest, ok := strings.CutPrefix(name, "DD/"); ok {
		k, err := strconv.Atoi(rest)
		// Reject non-canonical spellings ("DD/+2", "DD/08") as well as
		// garbage: a policy name appears in flags and wire frames, and a
		// lenient parse would let two spellings of one policy slip past
		// equality checks.
		if err == nil && k >= 1 && rest == strconv.Itoa(k) {
			return DemandDrivenBatched(k)
		}
	}
	return nil
}

// ---- Shared policy configuration ----

// PolicyConfig is the engine-neutral writer-policy configuration shared by
// all three engines: one default policy plus per-stream overrides. The zero
// value selects Round Robin for every stream.
type PolicyConfig struct {
	// Default applies to every stream without an override (RoundRobin when
	// nil).
	Default Policy
	// PerStream overrides the policy for individual streams by name.
	PerStream map[string]Policy
}

// For resolves the policy for a stream: per-stream override first, then the
// default, then Round Robin.
func (c PolicyConfig) For(stream string) Policy {
	if p, ok := c.PerStream[stream]; ok && p != nil {
		return p
	}
	if c.Default != nil {
		return c.Default
	}
	return RoundRobin()
}

// ParsePolicies builds a PolicyConfig from policy names — the single
// parse/validate path for every name-carrying surface (dist Options and its
// setup frame, dcsubmit/dcbench flags). An empty default selects Round
// Robin; any unknown name is an error naming the offending stream.
func ParsePolicies(def string, perStream map[string]string) (PolicyConfig, error) {
	var cfg PolicyConfig
	if def != "" {
		if cfg.Default = PolicyByName(def); cfg.Default == nil {
			return PolicyConfig{}, fmt.Errorf("exec: unknown policy %q", def)
		}
	}
	if len(perStream) > 0 {
		cfg.PerStream = make(map[string]Policy, len(perStream))
		for stream, name := range perStream {
			p := PolicyByName(name)
			if p == nil {
				return PolicyConfig{}, fmt.Errorf("exec: unknown policy %q for stream %q", name, stream)
			}
			cfg.PerStream[stream] = p
		}
	}
	return cfg, nil
}

// ParseStreamPolicies parses a command-line per-stream policy spec of the
// form "stream=POLICY,stream=POLICY" into the name map ParsePolicies (and
// dist.Options.StreamPolicy) accept. Policy names are validated; an empty
// spec yields a nil map.
func ParseStreamPolicies(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		stream, name, ok := strings.Cut(pair, "=")
		if !ok || stream == "" {
			return nil, fmt.Errorf("exec: bad stream policy %q (want stream=POLICY)", pair)
		}
		if PolicyByName(name) == nil {
			return nil, fmt.Errorf("exec: unknown policy %q for stream %q", name, stream)
		}
		if _, dup := out[stream]; dup {
			return nil, fmt.Errorf("exec: duplicate stream %q in policy spec", stream)
		}
		out[stream] = name
	}
	return out, nil
}

// StreamPolicyNames lists a name map's streams sorted, for deterministic
// error messages and logs.
func StreamPolicyNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for s := range m {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}
