package exec_test

import (
	"fmt"
	"reflect"
	"testing"

	"datacutter/internal/cluster"
	"datacutter/internal/core"
	"datacutter/internal/dist"
	"datacutter/internal/exec"
	"datacutter/internal/leakcheck"
	"datacutter/internal/sim"
	"datacutter/internal/simrt"
)

// Cross-engine equivalence: the same graph (one producer, consumer copy
// sets hostA×1 + hostB×2), the same buffer count, and the same policy must
// yield the same per-target delivery distribution on every engine, because
// the pick/window/ack logic is the one exec.StreamWriter implementation.
// RR and WRR ignore acknowledgments, so their distributions are exact and
// compared across all three engines (core goroutines, simrt virtual time,
// dist TCP loopback). DD and DD/8 react to consumer timing, which differs
// by engine, so for those the invariants are: every buffer delivered,
// acknowledgments flowed, and no target oversupplied beyond the total.

const equivN = 96

// expected exact splits for the ack-free policies with targets A×1, B×2.
var equivExact = map[string]map[string]int64{
	"RR":  {"hostA": 48, "hostB": 48},
	"WRR": {"hostA": 32, "hostB": 64},
}

var equivPolicies = []string{"RR", "WRR", "DD", "DD/8"}

// ---- shared test filters (core.Ctx works on every engine) ----

type equivSource struct {
	core.BaseFilter
	n int
}

func (s *equivSource) Process(ctx core.Ctx) error {
	for i := 0; i < s.n; i++ {
		if err := ctx.Write("nums", core.Buffer{Payload: i, Size: 64}); err != nil {
			return err
		}
	}
	return nil
}

type equivSink struct{ core.BaseFilter }

func (s *equivSink) Process(ctx core.Ctx) error {
	for {
		if _, ok := ctx.Read("nums"); !ok {
			return nil
		}
	}
}

func init() {
	dist.RegisterFilter("equiv.source", func(params []byte) (core.Filter, error) {
		return &equivSource{n: int(params[0])}, nil
	})
	dist.RegisterFilter("equiv.sink", func([]byte) (core.Filter, error) {
		return &equivSink{}, nil
	})
}

func equivGraph() *core.Graph {
	g := core.NewGraph()
	g.AddFilter("S", func() core.Filter { return &equivSource{n: equivN} })
	g.AddFilter("K", func() core.Filter { return &equivSink{} })
	g.Connect("S", "K", "nums")
	return g
}

func equivPlacement() *core.Placement {
	return core.NewPlacement().
		Place("S", "hostA", 1).
		Place("K", "hostA", 1).
		Place("K", "hostB", 2)
}

// checkDist validates one engine's resulting distribution for a policy.
func checkDist(t *testing.T, engine, pol string, per map[string]int64, acks int64) {
	t.Helper()
	total := int64(0)
	for _, v := range per {
		total += v
	}
	if total != equivN {
		t.Fatalf("%s/%s: delivered %d of %d: %v", engine, pol, total, equivN, per)
	}
	if want, exact := equivExact[pol]; exact {
		got := map[string]int64{}
		for h, v := range per {
			got[h] = v
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%s: distribution %v, want %v", engine, pol, got, want)
		}
		if acks != 0 {
			t.Fatalf("%s/%s: ack-free policy produced %d acks", engine, pol, acks)
		}
		return
	}
	// Demand driven: every ack is a real message and the window kept every
	// target's share legal (no target can exceed the total; acks bounded by
	// one per buffer).
	if acks <= 0 || acks > equivN {
		t.Fatalf("%s/%s: acks = %d, want 1..%d", engine, pol, acks, equivN)
	}
}

func runCoreEquiv(t *testing.T, pol string) (map[string]int64, int64) {
	t.Helper()
	r, err := core.NewRunner(equivGraph(), equivPlacement(), core.Options{Policy: core.PolicyByName(pol)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st.Streams["nums"].PerTargetHost, st.Streams["nums"].Acks
}

func runSimEquiv(t *testing.T, pol string) (map[string]int64, int64) {
	t.Helper()
	k := sim.NewKernel()
	cl := cluster.New(k)
	for _, h := range []string{"hostA", "hostB"} {
		cl.AddHost(cluster.HostSpec{
			Name: h, Cores: 1, Speed: 1, NICBandwidth: 100e6,
			Disks: []cluster.DiskSpec{{SeekSeconds: 0.001, Bandwidth: 50e6}},
		})
	}
	r, err := simrt.NewRunner(equivGraph(), equivPlacement(), cl, simrt.Options{Policy: core.PolicyByName(pol)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st.Streams["nums"].PerTargetHost, st.Streams["nums"].Acks
}

func runDistEquiv(t *testing.T, pol string) (map[string]int64, int64) {
	t.Helper()
	addrs := make(map[string]string, 2)
	for _, host := range []string{"hostA", "hostB"} {
		w, err := dist.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		addrs[host] = w.Addr()
		t.Cleanup(w.Close)
	}
	g := dist.GraphSpec{
		Filters: []dist.FilterSpec{
			{Name: "S", Kind: "equiv.source", Params: []byte{byte(equivN)}},
			{Name: "K", Kind: "equiv.sink"},
		},
		Streams: []core.StreamSpec{{Name: "nums", From: "S", To: "K"}},
	}
	st, err := dist.Run(addrs, g, []dist.PlacementEntry{
		{Filter: "S", Host: "hostA", Copies: 1},
		{Filter: "K", Host: "hostA", Copies: 1},
		{Filter: "K", Host: "hostB", Copies: 2},
	}, dist.Options{Policy: pol}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st.Streams["nums"].PerTargetHost, st.Streams["nums"].Acks
}

func TestCrossEngineEquivalence(t *testing.T) {
	type runner struct {
		name string
		run  func(*testing.T, string) (map[string]int64, int64)
	}
	engines := []runner{
		{"core", runCoreEquiv},
		{"simrt", runSimEquiv},
		{"dist", runDistEquiv},
	}
	for _, pol := range equivPolicies {
		t.Run(pol, func(t *testing.T) {
			leakcheck.Check(t)
			for _, e := range engines {
				per, acks := e.run(t, pol)
				checkDist(t, e.name, pol, per, acks)
			}
		})
	}
}

// The ack-free distributions must also be bit-identical between core and
// simrt when the copy-set layout varies — not just on the layout the exact
// table above covers.
func TestCrossEngineRRAndWRRLayouts(t *testing.T) {
	leakcheck.Check(t)
	layouts := [][]struct {
		host   string
		copies int
	}{
		{{"hostA", 1}, {"hostB", 1}, {"hostC", 1}},
		{{"hostA", 2}, {"hostB", 3}},
		{{"hostA", 1}, {"hostB", 4}, {"hostC", 2}},
	}
	for li, lay := range layouts {
		for _, pol := range []string{"RR", "WRR"} {
			t.Run(fmt.Sprintf("layout%d/%s", li, pol), func(t *testing.T) {
				build := func() (*core.Graph, *core.Placement, []string) {
					g := equivGraph()
					pl := core.NewPlacement().Place("S", "hostA", 1)
					hosts := []string{"hostA"}
					seen := map[string]bool{"hostA": true}
					for _, e := range lay {
						pl.Place("K", e.host, e.copies)
						if !seen[e.host] {
							hosts = append(hosts, e.host)
							seen[e.host] = true
						}
					}
					return g, pl, hosts
				}
				g, pl, _ := build()
				r, err := core.NewRunner(g, pl, core.Options{Policy: core.PolicyByName(pol)})
				if err != nil {
					t.Fatal(err)
				}
				cst, err := r.Run()
				if err != nil {
					t.Fatal(err)
				}

				g, pl, hosts := build()
				k := sim.NewKernel()
				cl := cluster.New(k)
				for _, h := range hosts {
					cl.AddHost(cluster.HostSpec{
						Name: h, Cores: 1, Speed: 1, NICBandwidth: 100e6,
						Disks: []cluster.DiskSpec{{SeekSeconds: 0.001, Bandwidth: 50e6}},
					})
				}
				sr, err := simrt.NewRunner(g, pl, cl, simrt.Options{Policy: core.PolicyByName(pol)})
				if err != nil {
					t.Fatal(err)
				}
				sst, err := sr.Run()
				if err != nil {
					t.Fatal(err)
				}

				cper := cst.Streams["nums"].PerTargetHost
				sper := sst.Streams["nums"].PerTargetHost
				if !reflect.DeepEqual(cper, sper) {
					t.Fatalf("core %v != simrt %v", cper, sper)
				}
			})
		}
	}
}

// Per-stream overrides resolve through the same exec.PolicyConfig on core
// and simrt: a DD default with a WRR override on the stream must behave as
// pure WRR (exact split, zero acks) on both engines.
func TestCrossEngineStreamPolicyOverride(t *testing.T) {
	leakcheck.Check(t)
	want := equivExact["WRR"]

	r, err := core.NewRunner(equivGraph(), equivPlacement(), core.Options{
		Policy:       core.DemandDriven(),
		StreamPolicy: map[string]core.Policy{"nums": core.WeightedRoundRobin()},
	})
	if err != nil {
		t.Fatal(err)
	}
	cst, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if per := cst.Streams["nums"].PerTargetHost; !reflect.DeepEqual(per, want) {
		t.Fatalf("core override: %v, want %v", per, want)
	}
	if cst.Streams["nums"].Acks != 0 {
		t.Fatal("core override still produced acks")
	}

	k := sim.NewKernel()
	cl := cluster.New(k)
	for _, h := range []string{"hostA", "hostB"} {
		cl.AddHost(cluster.HostSpec{
			Name: h, Cores: 1, Speed: 1, NICBandwidth: 100e6,
			Disks: []cluster.DiskSpec{{SeekSeconds: 0.001, Bandwidth: 50e6}},
		})
	}
	sr, err := simrt.NewRunner(equivGraph(), equivPlacement(), cl, simrt.Options{
		Policy:       core.DemandDriven(),
		StreamPolicy: map[string]core.Policy{"nums": core.WeightedRoundRobin()},
	})
	if err != nil {
		t.Fatal(err)
	}
	sst, err := sr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if per := sst.Streams["nums"].PerTargetHost; !reflect.DeepEqual(per, want) {
		t.Fatalf("simrt override: %v, want %v", per, want)
	}

	// And the parse path used by dist/flags resolves to the same writers.
	cfg, err := exec.ParsePolicies("DD", map[string]string{"nums": "WRR"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.For("nums").Name() != "WRR" || cfg.For("other").Name() != "DD" {
		t.Fatalf("parsed config resolves %s/%s", cfg.For("nums").Name(), cfg.For("other").Name())
	}
}
