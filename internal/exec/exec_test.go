package exec

import (
	"fmt"
	"reflect"
	"testing"
)

// ---- PolicyByName parsing ----

func TestPolicyByNameValid(t *testing.T) {
	cases := []struct {
		in   string
		name string
	}{
		{"RR", "RR"},
		{"WRR", "WRR"},
		{"DD", "DD"},
		{"DD/1", "DD/1"},
		{"DD/8", "DD/8"},
		{"DD/32", "DD/32"},
	}
	for _, c := range cases {
		p := PolicyByName(c.in)
		if p == nil {
			t.Fatalf("PolicyByName(%q) = nil", c.in)
		}
		if p.Name() != c.name {
			t.Fatalf("PolicyByName(%q).Name() = %q, want %q", c.in, p.Name(), c.name)
		}
	}
}

func TestPolicyByNameBatchFactor(t *testing.T) {
	p := PolicyByName("DD/8")
	w := p.NewWriter([]TargetInfo{{Host: "a", Copies: 1}, {Host: "b", Copies: 1}})
	if !w.WantsAcks() {
		t.Fatal("DD/8 writer does not want acks")
	}
	if got := AckBatchOf(w); got != 8 {
		t.Fatalf("AckBatchOf(DD/8 writer) = %d, want 8", got)
	}
	// Unbatched writers coalesce by 1.
	if got := AckBatchOf(DemandDriven().NewWriter([]TargetInfo{{Host: "a"}})); got != 1 {
		t.Fatalf("AckBatchOf(DD writer) = %d, want 1", got)
	}
}

func TestPolicyByNameInvalid(t *testing.T) {
	for _, in := range []string{
		"", "nope", "rr", "dd", "dd/8", "DD/", "DD/x", "DD/8x",
		"DD/0", "DD/-1", "DD/+2", "DD/08", "DD/ 8", "DD//2", "DD/1.5",
	} {
		if p := PolicyByName(in); p != nil {
			t.Fatalf("PolicyByName(%q) = %v, want nil", in, p.Name())
		}
	}
}

// ---- PolicyConfig / parse helpers ----

func TestPolicyConfigFor(t *testing.T) {
	var zero PolicyConfig
	if got := zero.For("s").Name(); got != "RR" {
		t.Fatalf("zero config resolves %q, want RR", got)
	}
	cfg := PolicyConfig{
		Default:   DemandDriven(),
		PerStream: map[string]Policy{"tri": WeightedRoundRobin()},
	}
	if got := cfg.For("tri").Name(); got != "WRR" {
		t.Fatalf("override resolves %q, want WRR", got)
	}
	if got := cfg.For("other").Name(); got != "DD" {
		t.Fatalf("default resolves %q, want DD", got)
	}
}

func TestParsePolicies(t *testing.T) {
	cfg, err := ParsePolicies("DD", map[string]string{"a": "WRR", "b": "DD/4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.For("a").Name() != "WRR" || cfg.For("b").Name() != "DD/4" || cfg.For("c").Name() != "DD" {
		t.Fatalf("resolution wrong: a=%s b=%s c=%s", cfg.For("a").Name(), cfg.For("b").Name(), cfg.For("c").Name())
	}
	if _, err := ParsePolicies("bogus", nil); err == nil {
		t.Fatal("bad default accepted")
	}
	if _, err := ParsePolicies("", map[string]string{"s": "bogus"}); err == nil {
		t.Fatal("bad per-stream name accepted")
	}
	cfg, err = ParsePolicies("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.For("s").Name() != "RR" {
		t.Fatal("empty default should resolve RR")
	}
}

func TestParseStreamPolicies(t *testing.T) {
	m, err := ParseStreamPolicies("tri=DD/4,img=WRR")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"tri": "DD/4", "img": "WRR"}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("parsed %v, want %v", m, want)
	}
	if got := StreamPolicyNames(m); !reflect.DeepEqual(got, []string{"img", "tri"}) {
		t.Fatalf("names %v not sorted", got)
	}
	if m, err := ParseStreamPolicies(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{"tri", "=DD", "tri=bogus", "tri=DD,tri=RR"} {
		if _, err := ParseStreamPolicies(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// ---- Ack plumbing ----

func TestAckChan(t *testing.T) {
	c := NewAckChan(4)
	if _, _, ok := c.TryAck(); ok {
		t.Fatal("empty channel yielded an ack")
	}
	c.Ack(2, 3)
	target, n, ok := c.TryAck()
	if !ok || target != 2 || n != 3 {
		t.Fatalf("TryAck = (%d,%d,%v)", target, n, ok)
	}
	for i := 0; i < 4; i++ {
		if !c.Offer(0, 1) {
			t.Fatalf("Offer %d rejected below capacity", i)
		}
	}
	if c.Offer(0, 1) {
		t.Fatal("Offer accepted past capacity")
	}
}

func TestAckSeq(t *testing.T) {
	var s AckSeq
	if _, _, ok := s.TryAck(); ok {
		t.Fatal("empty seq yielded an ack")
	}
	s.Ack(0, 1)
	s.Ack(1, 2)
	if target, n, ok := s.TryAck(); !ok || target != 0 || n != 1 {
		t.Fatalf("first TryAck = (%d,%d,%v)", target, n, ok)
	}
	if target, n, ok := s.TryAck(); !ok || target != 1 || n != 2 {
		t.Fatalf("second TryAck = (%d,%d,%v)", target, n, ok)
	}
	if _, _, ok := s.TryAck(); ok {
		t.Fatal("drained seq yielded an ack")
	}
}

func TestAckCap(t *testing.T) {
	targets := []TargetInfo{{Host: "a", Copies: 2}, {Host: "b", Copies: 0}}
	// 8 slack + (qcap + copies) per target, zero copies counting as one.
	if got := AckCap(targets, 4); got != 8+(4+2)+(4+1) {
		t.Fatalf("AckCap = %d", got)
	}
}

// ---- Coalescer ----

func TestCoalescerBatching(t *testing.T) {
	var sent [][2]int
	c := NewCoalescer[string](func(key string, n int) {
		if key != "k" {
			t.Fatalf("unexpected key %q", key)
		}
		sent = append(sent, [2]int{len(sent), n})
	})
	for i := 0; i < 7; i++ {
		c.Ack("k", 3)
	}
	if len(sent) != 2 || sent[0][1] != 3 || sent[1][1] != 3 {
		t.Fatalf("sent = %v, want two batches of 3", sent)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending keys = %d, want 1", c.Pending())
	}
	c.Flush()
	if len(sent) != 3 || sent[2][1] != 1 {
		t.Fatalf("flush sent %v", sent)
	}
	if c.Pending() != 0 {
		t.Fatal("flush left pending state")
	}
	c.Flush() // idempotent on empty
	if len(sent) != 3 {
		t.Fatal("empty flush sent something")
	}
}

func TestCoalescerEveryOne(t *testing.T) {
	count := 0
	c := NewCoalescer[int](func(int, int) { count++ })
	for i := 0; i < 5; i++ {
		c.Ack(7, 1)
	}
	if count != 5 || c.Pending() != 0 {
		t.Fatalf("every=1: %d sends, %d pending", count, c.Pending())
	}
}

// ---- Countdown / Counts ----

func TestCountdownSingleEdge(t *testing.T) {
	c := NewCountdown(3)
	if c.Done() || c.Done() {
		t.Fatal("premature zero edge")
	}
	if !c.Done() {
		t.Fatal("missed zero edge")
	}
	// Duplicate completions (dist fault injection) must not re-fire.
	if c.Done() || c.Done() {
		t.Fatal("zero edge fired twice")
	}
	if c.Left() >= 0 {
		t.Fatalf("Left = %d after duplicates", c.Left())
	}
}

func TestCountsFold(t *testing.T) {
	c := NewCounts(3)
	c.Inc(0)
	c.Inc(2)
	c.Inc(2)
	if c.Get(0) != 1 || c.Get(1) != 0 || c.Get(2) != 2 {
		t.Fatalf("tallies: %d %d %d", c.Get(0), c.Get(1), c.Get(2))
	}
	into := map[string]int64{"b": 5}
	c.Fold([]string{"a", "b", "b"}, into)
	// Folding accumulates (two targets may share a host) and skips zeros.
	if into["a"] != 1 || into["b"] != 7 {
		t.Fatalf("folded: %v", into)
	}
	if _, present := into["zero"]; present {
		t.Fatal("zero tally created a map entry")
	}
}

// ---- StreamWriter ----

// recordPort captures deliveries and optionally acknowledges them
// immediately, simulating an infinitely fast consumer.
type recordPort struct {
	picks    []int
	ackEvery []int
	acks     *AckSeq // when set, every delivery is acked instantly
	err      error
}

func (p *recordPort) Deliver(target int, b Buffer, ackEvery int) error {
	if p.err != nil {
		return p.err
	}
	p.picks = append(p.picks, target)
	p.ackEvery = append(p.ackEvery, ackEvery)
	if p.acks != nil {
		p.acks.Ack(target, 1)
	}
	return nil
}

func targets2() []TargetInfo {
	return []TargetInfo{{Host: "a", Copies: 1}, {Host: "b", Copies: 2}}
}

func TestStreamWriterRoundRobin(t *testing.T) {
	port := &recordPort{}
	counts := NewCounts(2)
	sw := NewStreamWriter("s", RoundRobin(), targets2(), port, counts, Meta{})
	if sw.WantsAcks() {
		t.Fatal("RR wants acks")
	}
	if sw.AckEvery() != 0 {
		t.Fatalf("RR AckEvery = %d", sw.AckEvery())
	}
	for i := 0; i < 6; i++ {
		if err := sw.Write(Buffer{Payload: i, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(port.picks, []int{0, 1, 0, 1, 0, 1}) {
		t.Fatalf("picks = %v", port.picks)
	}
	for _, e := range port.ackEvery {
		if e != 0 {
			t.Fatalf("RR delivered with ackEvery %d", e)
		}
	}
	if counts.Get(0) != 3 || counts.Get(1) != 3 {
		t.Fatalf("counts: %d/%d", counts.Get(0), counts.Get(1))
	}
}

func TestStreamWriterWRRProportions(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", WeightedRoundRobin(), targets2(), port, nil, Meta{})
	got := map[int]int{}
	for i := 0; i < 9; i++ {
		if err := sw.Write(Buffer{Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range port.picks {
		got[p]++
	}
	if got[0] != 3 || got[1] != 6 {
		t.Fatalf("WRR split %v, want 3/6", got)
	}
}

func TestStreamWriterDDWindow(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", DemandDriven(), targets2(), port, nil, Meta{})
	acks := &AckSeq{}
	sw.BindAckSource(acks)
	if !sw.WantsAcks() || sw.AckEvery() != 1 {
		t.Fatalf("DD: wants=%v every=%d", sw.WantsAcks(), sw.AckEvery())
	}
	// No acks: window fills evenly.
	for i := 0; i < 4; i++ {
		if err := sw.Write(Buffer{Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if w := sw.Unacked(); w[0]+w[1] != 4 || w[0] != 2 {
		t.Fatalf("window after 4 unacked writes: %v", w)
	}
	// Ack everything on target 0; the next writes all pick it.
	acks.Ack(0, 2)
	if err := sw.Write(Buffer{Size: 1}); err != nil {
		t.Fatal(err)
	}
	if last := port.picks[len(port.picks)-1]; last != 0 {
		t.Fatalf("post-ack pick = %d, want 0", last)
	}
	if w := sw.Unacked(); w[0] != 1 || w[1] != 2 {
		t.Fatalf("window after ack+write: %v", w)
	}
}

func TestStreamWriterDeliverErrorUncounted(t *testing.T) {
	wantErr := fmt.Errorf("cancelled")
	port := &recordPort{err: wantErr}
	counts := NewCounts(2)
	sw := NewStreamWriter("s", RoundRobin(), targets2(), port, counts, Meta{})
	if err := sw.Write(Buffer{Size: 1}); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if counts.Get(0) != 0 && counts.Get(1) != 0 {
		t.Fatal("failed delivery was counted")
	}
}

func TestStreamWriterBatchedAckEvery(t *testing.T) {
	port := &recordPort{}
	sw := NewStreamWriter("s", DemandDrivenBatched(4), targets2(), port, nil, Meta{})
	sw.BindAckSource(&AckSeq{})
	if sw.AckEvery() != 4 {
		t.Fatalf("DD/4 AckEvery = %d", sw.AckEvery())
	}
	if err := sw.Write(Buffer{Size: 1}); err != nil {
		t.Fatal(err)
	}
	if port.ackEvery[0] != 4 {
		t.Fatalf("delivered ackEvery = %d, want 4", port.ackEvery[0])
	}
}

// ---- Fan-out benchmark (wired into the CI bench job) ----

// BenchmarkExecFanout measures the shared write path — ack drain, policy
// pick, window update, delivery — over 4 targets with an instantly acking
// port, comparing the zero-overhead policies with DD and batched DD.
func BenchmarkExecFanout(b *testing.B) {
	targets := []TargetInfo{
		{Host: "a", Copies: 1, Local: true},
		{Host: "b", Copies: 2},
		{Host: "c", Copies: 1},
		{Host: "d", Copies: 4},
	}
	for _, pol := range []Policy{RoundRobin(), WeightedRoundRobin(), DemandDriven(), DemandDrivenBatched(8)} {
		b.Run(pol.Name(), func(b *testing.B) {
			acks := &AckSeq{}
			port := &recordPort{acks: acks}
			counts := NewCounts(len(targets))
			sw := NewStreamWriter("bench", pol, targets, port, counts, Meta{})
			if sw.WantsAcks() {
				sw.BindAckSource(acks)
			}
			buf := Buffer{Payload: nil, Size: 4096}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				port.picks = port.picks[:0]
				port.ackEvery = port.ackEvery[:0]
				if err := sw.Write(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
