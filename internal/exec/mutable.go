package exec

// Runtime-mutable target sets. A StreamWriter's copy-set membership can be
// changed while the writer is live: the autoscale controller (internal/
// elastic) reweights WRR from observed throughput and retires hot-spot
// targets mid-cycle, and the engines rebuild full membership at work-cycle
// boundaries. Three invariants make this safe without pausing the stream:
//
//  1. Mutations are queued and applied only at buffer-pick boundaries (the
//     top of Write), never concurrently with a pick. The queueing methods
//     are safe to call from any goroutine.
//
//  2. Target indices are stable forever. Deliveries and acknowledgments in
//     flight carry the index they were picked with; compacting the table
//     would misdirect them. A removed target therefore keeps its slot and
//     its unacked-window entry — late acks still drain it, and if the host
//     rejoins it reclaims both, so no window accounting is ever lost.
//
//  3. The policy writer is rebuilt over the active view (active targets in
//     stable order) and its state migrated: RR resumes its rotation at the
//     nearest surviving target, WRR carries surviving smooth-WRR credits,
//     DD remaps its tie-break rotation point. The per-target window itself
//     lives in the StreamWriter, not the policy writer, so DD's demand
//     signal survives any rebuild untouched.
type targetOp struct {
	kind   opKind
	t      TargetInfo // opAdd
	host   string     // opRemove, opReweight
	copies int        // opReweight
}

type opKind uint8

const (
	opAdd opKind = iota
	opRemove
	opReweight
)

// AddTarget schedules a copy set joining the stream: a previously removed
// host reclaims its stable index (and any residual unacked window), a new
// host appends one. Takes effect at the next Write.
func (sw *StreamWriter) AddTarget(t TargetInfo) {
	sw.mu.Lock()
	sw.pending = append(sw.pending, targetOp{kind: opAdd, t: t})
	sw.mu.Unlock()
}

// RemoveTarget schedules a copy set leaving the stream. The target keeps its
// stable index and window slot so in-flight acknowledgments still drain; it
// just stops receiving picks. Removing the last active target is ignored —
// a stream must always have somewhere to send. Takes effect at the next
// Write.
func (sw *StreamWriter) RemoveTarget(host string) {
	sw.mu.Lock()
	sw.pending = append(sw.pending, targetOp{kind: opRemove, host: host})
	sw.mu.Unlock()
}

// Reweight schedules a copy-count change for an active target, shifting WRR
// proportions and DD/k batch scaling. Unknown or inactive hosts are ignored.
// Takes effect at the next Write.
func (sw *StreamWriter) Reweight(host string, copies int) {
	sw.mu.Lock()
	sw.pending = append(sw.pending, targetOp{kind: opReweight, host: host, copies: copies})
	sw.mu.Unlock()
}

// applyPending drains the mutation queue and, if membership or weights
// changed, rebuilds the policy writer over the new active view. Caller holds
// sw.mu.
func (sw *StreamWriter) applyPending() {
	changed := false
	for _, op := range sw.pending {
		switch op.kind {
		case opAdd:
			if i := sw.slotOf(op.t.Host); i >= 0 {
				if op.t.Copies >= 1 {
					sw.targets[i].Copies = op.t.Copies
				}
				sw.targets[i].Local = op.t.Local
				sw.active[i] = true
			} else {
				sw.targets = append(sw.targets, op.t)
				sw.active = append(sw.active, true)
				sw.unacked = append(sw.unacked, 0)
				if sw.counts != nil {
					sw.counts.Grow(len(sw.targets))
				}
			}
			changed = true
		case opRemove:
			i := sw.slotOf(op.host)
			if i < 0 || !sw.active[i] {
				continue
			}
			live := 0
			for _, a := range sw.active {
				if a {
					live++
				}
			}
			if live <= 1 {
				continue // never empty the target set
			}
			sw.active[i] = false
			changed = true
		case opReweight:
			i := sw.slotOf(op.host)
			if i < 0 || !sw.active[i] || op.copies < 1 {
				continue
			}
			if sw.targets[i].Copies != op.copies {
				sw.targets[i].Copies = op.copies
				changed = true
			}
		}
	}
	sw.pending = sw.pending[:0]
	if changed {
		sw.rebuild()
	}
}

// slotOf returns host's stable index, or -1. Caller holds sw.mu.
func (sw *StreamWriter) slotOf(host string) int {
	for i := range sw.targets {
		if sw.targets[i].Host == host {
			return i
		}
	}
	return -1
}

// rebuild reconstructs the active view and the policy writer, migrating the
// old writer's rotation/credit state onto the survivors. Caller holds sw.mu.
func (sw *StreamWriter) rebuild() {
	oldView := sw.view
	if oldView == nil {
		// Identity view before the first mutation. Appends have already
		// grown the stable table, so recover the pre-rebuild width from the
		// current policy writer.
		n := sw.prevLen()
		oldView = make([]int, n)
		for i := range oldView {
			oldView[i] = i
		}
	}
	newView := make([]int, 0, len(sw.targets))
	for i := range sw.targets {
		if sw.active[i] {
			newView = append(newView, i)
		}
	}
	at := make([]TargetInfo, len(newView))
	for vi, si := range newView {
		at[vi] = sw.targets[si]
	}
	nw := sw.pol.NewWriter(at)
	stableToNew := make([]int, len(sw.targets))
	for i := range stableToNew {
		stableToNew[i] = -1
	}
	for vi, si := range newView {
		stableToNew[si] = vi
	}
	oldToNew := make([]int, len(oldView))
	for vi, si := range oldView {
		oldToNew[vi] = stableToNew[si]
	}
	if m, ok := nw.(migratory); ok {
		m.migrateFrom(sw.w, oldToNew)
	}
	sw.w = nw
	sw.view = newView
	// Identity view ⇔ every stable slot active; then the fast path (pick
	// directly over the stable window) is valid again.
	sw.mutated = len(newView) != len(sw.targets)
}

// prevLen returns the target count the current policy writer was built over,
// so a first mutation can reconstruct the identity view it is migrating
// from. Caller holds sw.mu.
func (sw *StreamWriter) prevLen() int {
	switch w := sw.w.(type) {
	case *rrWriter:
		return w.n
	case *wrrWriter:
		return len(w.weight)
	case *ddWriter:
		return len(w.local)
	case *ddBatchedWriter:
		return len(w.local)
	default:
		return len(sw.targets)
	}
}

// migratory is implemented by policy writers that can carry their state
// across a target-set rebuild. oldToNew maps old view positions to new view
// positions, -1 for targets no longer active.
type migratory interface {
	migrateFrom(old Writer, oldToNew []int)
}
