package exec

// ReplayPicks returns the target-index sequence a fresh Writer for p
// produces over n picks with an all-zero (and never-updated) unacked
// window. For the ack-free policies (RR, WRR) this is exactly the
// distribution any engine must produce, because their Pick ignores the
// window entirely; it is the reference model the conformance harness
// (internal/conformance) diffs every engine against. For ack-driven
// policies the sequence is only what a producer would do if no
// acknowledgment ever arrived, which is not an engine invariant — callers
// wanting exact oracles should gate on p.NewWriter(...).WantsAcks().
func ReplayPicks(p Policy, targets []TargetInfo, n int) []int {
	w := p.NewWriter(targets)
	unacked := make([]int, len(targets))
	out := make([]int, n)
	for i := range out {
		out[i] = w.Pick(unacked)
	}
	return out
}

// ReplayCounts folds ReplayPicks into per-target totals: counts[i] is how
// many of the n picks landed on targets[i].
func ReplayCounts(p Policy, targets []TargetInfo, n int) []int {
	counts := make([]int, len(targets))
	for _, idx := range ReplayPicks(p, targets, n) {
		counts[idx]++
	}
	return counts
}
