package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float32) bool { return float32(math.Abs(float64(a-b))) <= tol }

func TestVecOps(t *testing.T) {
	a, b := V(1, 2, 3), V(4, 5, 6)
	if got := a.Add(b); got != V(5, 7, 9) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(3, 3, 3) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); got != V(0, 0, 1) {
		t.Fatalf("Cross = %v", got)
	}
	if got := V(3, 4, 0).Len(); got != 5 {
		t.Fatalf("Len = %v", got)
	}
	if got := V(0, 0, 9).Normalize(); got != V(0, 0, 1) {
		t.Fatalf("Normalize = %v", got)
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Fatalf("Normalize zero = %v", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V(1, 2, 3), V(5, 6, 7)
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("Lerp endpoints wrong")
	}
	mid := Lerp(a, b, 0.5)
	if mid != V(3, 4, 5) {
		t.Fatalf("Lerp mid = %v", mid)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float32) bool {
		// Bound magnitudes to keep float32 error in check.
		clamp := func(v float32) float32 {
			if v != v || v > 1e3 || v < -1e3 {
				return 1
			}
			return v
		}
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		scale := a.Len()*b.Len() + 1
		return feq(c.Dot(a)/scale, 0, 1e-3) && feq(c.Dot(b)/scale, 0, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleAreaAndCentroid(t *testing.T) {
	tr := Triangle{P: [3]Vec3{V(0, 0, 0), V(2, 0, 0), V(0, 2, 0)}}
	if got := tr.Area(); got != 2 {
		t.Fatalf("Area = %v", got)
	}
	c := tr.Centroid()
	if !feq(c.X, 2.0/3, 1e-6) || !feq(c.Y, 2.0/3, 1e-6) || c.Z != 0 {
		t.Fatalf("Centroid = %v", c)
	}
}

func TestIdentityApply(t *testing.T) {
	v, w := Identity().Apply(V(1, 2, 3))
	if v != V(1, 2, 3) || w != 1 {
		t.Fatalf("identity apply = %v %v", v, w)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randMat := func() Mat4 {
		var m Mat4
		for i := range m {
			m[i] = rng.Float64()*2 - 1
		}
		return m
	}
	for i := 0; i < 50; i++ {
		a, b, c := randMat(), randMat(), randMat()
		ab_c := a.Mul(b).Mul(c)
		a_bc := a.Mul(b.Mul(c))
		for j := range ab_c {
			if math.Abs(ab_c[j]-a_bc[j]) > 1e-9 {
				t.Fatalf("Mul not associative at %d: %v vs %v", j, ab_c[j], a_bc[j])
			}
		}
	}
}

func TestLookAtMapsCenterToAxis(t *testing.T) {
	m := LookAt(V(0, 0, 5), V(0, 0, 0), V(0, 1, 0))
	v, _ := m.Apply(V(0, 0, 0))
	// Center maps onto the -z axis at distance 5.
	if !feq(v.X, 0, 1e-6) || !feq(v.Y, 0, 1e-6) || !feq(v.Z, -5, 1e-6) {
		t.Fatalf("LookAt center = %v", v)
	}
}

func TestPerspectiveDepthOrdering(t *testing.T) {
	cam := DefaultCamera()
	m := cam.Matrix(100, 100)
	near, _ := m.Apply(V(0.5, 0.5, 0.5))
	far, _ := m.Apply(cam.Eye.Add(cam.ViewDir().Scale(5)))
	if near.Z >= far.Z {
		t.Fatalf("nearer point should have smaller depth: %v vs %v", near.Z, far.Z)
	}
}

func TestCameraMatrixCentersImage(t *testing.T) {
	cam := DefaultCamera()
	for _, size := range []int{64, 512} {
		m := cam.Matrix(size, size)
		v, w := m.Apply(cam.Center)
		if w <= 0 {
			t.Fatal("center behind camera")
		}
		mid := float32(size) / 2
		if !feq(v.X, mid, 0.5) || !feq(v.Y, mid, 0.5) {
			t.Fatalf("center maps to (%v,%v), want (%v,%v)", v.X, v.Y, mid, mid)
		}
	}
}

func TestViewportCorners(t *testing.T) {
	vp := Viewport(200, 100)
	tl, _ := vp.Apply(V(-1, 1, 0))
	br, _ := vp.Apply(V(1, -1, 0))
	if !feq(tl.X, 0, 1e-5) || !feq(tl.Y, 0, 1e-5) {
		t.Fatalf("top-left = %v", tl)
	}
	if !feq(br.X, 200, 1e-4) || !feq(br.Y, 100, 1e-4) {
		t.Fatalf("bottom-right = %v", br)
	}
}

func TestBehindCameraHasNegativeW(t *testing.T) {
	cam := DefaultCamera()
	m := cam.Matrix(64, 64)
	behind := cam.Eye.Sub(cam.ViewDir().Scale(3))
	_, w := m.Apply(behind)
	if w >= 0 {
		t.Fatalf("point behind camera got w=%v", w)
	}
}
