// Package geom provides the small linear-algebra kit shared by the
// isosurface extraction and rendering substrates: 3-vectors, 4x4 matrices,
// triangles, and camera transforms.
package geom

import "math"

// Vec3 is a 3-component float32 vector. float32 keeps triangle soups half
// the size of float64, which matters when streaming isosurfaces of large
// volumes.
type Vec3 struct{ X, Y, Z float32 }

// V constructs a Vec3.
func V(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec3) Scale(s float32) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean norm.
func (a Vec3) Len() float32 { return float32(math.Sqrt(float64(a.Dot(a)))) }

// Normalize returns a unit vector in a's direction (zero stays zero).
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Lerp returns a + t*(b-a).
func Lerp(a, b Vec3, t float32) Vec3 {
	return Vec3{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y), a.Z + t*(b.Z-a.Z)}
}

// Triangle is one isosurface facet with per-vertex normals for shading.
type Triangle struct {
	P [3]Vec3 // positions, world coordinates
	N [3]Vec3 // unit normals
}

// Centroid returns the triangle's center of mass.
func (t Triangle) Centroid() Vec3 {
	return t.P[0].Add(t.P[1]).Add(t.P[2]).Scale(1.0 / 3.0)
}

// Area returns the triangle's surface area.
func (t Triangle) Area() float32 {
	return t.P[1].Sub(t.P[0]).Cross(t.P[2].Sub(t.P[0])).Len() / 2
}

// TriangleBytes is the serialized size of one Triangle (6 Vec3 of 3
// float32), used for stream buffer accounting.
const TriangleBytes = 6 * 3 * 4
