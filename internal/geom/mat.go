package geom

import "math"

// Mat4 is a 4x4 row-major transformation matrix (float64 for numerical
// headroom in composed view transforms).
type Mat4 [16]float64

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns a * b (apply b first, then a).
func (a Mat4) Mul(b Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += a[r*4+k] * b[k*4+c]
			}
			out[r*4+c] = s
		}
	}
	return out
}

// Apply transforms a point, performing the perspective divide. The returned
// w is the clip-space w before division (w <= 0 means the point is at or
// behind the eye plane and must be culled).
func (a Mat4) Apply(v Vec3) (out Vec3, w float64) {
	x, y, z := float64(v.X), float64(v.Y), float64(v.Z)
	ox := a[0]*x + a[1]*y + a[2]*z + a[3]
	oy := a[4]*x + a[5]*y + a[6]*z + a[7]
	oz := a[8]*x + a[9]*y + a[10]*z + a[11]
	ow := a[12]*x + a[13]*y + a[14]*z + a[15]
	if ow != 0 {
		ox, oy, oz = ox/ow, oy/ow, oz/ow
	}
	return Vec3{float32(ox), float32(oy), float32(oz)}, ow
}

// LookAt builds a view matrix with the camera at eye, looking at center,
// with the given up hint.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	return Mat4{
		float64(s.X), float64(s.Y), float64(s.Z), -float64(s.Dot(eye)),
		float64(u.X), float64(u.Y), float64(u.Z), -float64(u.Dot(eye)),
		-float64(f.X), -float64(f.Y), -float64(f.Z), float64(f.Dot(eye)),
		0, 0, 0, 1,
	}
}

// Perspective builds a perspective projection with the vertical field of
// view in radians.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// Viewport maps normalized device coordinates [-1,1]² to pixel coordinates
// of a w×h image, leaving z untouched for depth testing.
func Viewport(w, h int) Mat4 {
	fw, fh := float64(w), float64(h)
	return Mat4{
		fw / 2, 0, 0, fw / 2,
		0, -fh / 2, 0, fh / 2,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Camera bundles the viewing parameters of one rendering (part of the
// unit-of-work descriptor in the isosurface application).
type Camera struct {
	Eye, Center, Up Vec3
	FovY            float64 // radians
	Near, Far       float64
}

// DefaultCamera frames the unit cube [0,1]^3 from a three-quarter view.
func DefaultCamera() Camera {
	return Camera{
		Eye:    V(2.2, 1.6, 2.4),
		Center: V(0.5, 0.5, 0.5),
		Up:     V(0, 1, 0),
		FovY:   math.Pi / 5,
		Near:   0.1,
		Far:    10,
	}
}

// Matrix returns the composite world-to-pixel transform for a w×h image.
func (c Camera) Matrix(w, h int) Mat4 {
	proj := Perspective(c.FovY, float64(w)/float64(h), c.Near, c.Far)
	view := LookAt(c.Eye, c.Center, c.Up)
	return Viewport(w, h).Mul(proj).Mul(view)
}

// ViewDir returns the unit vector from eye toward center.
func (c Camera) ViewDir() Vec3 { return c.Center.Sub(c.Eye).Normalize() }
