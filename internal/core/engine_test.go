package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"datacutter/internal/leakcheck"
)

// source emits ints 0..N-1, one per buffer.
type source struct {
	BaseFilter
	n      int
	stream string
}

func (s *source) Process(ctx Ctx) error {
	for i := 0; i < s.n; i++ {
		if err := ctx.Write(s.stream, Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
	}
	return nil
}

// doubler reads ints, multiplies by 2, forwards.
type doubler struct {
	BaseFilter
	in, out string
}

func (d *doubler) Process(ctx Ctx) error {
	for {
		b, ok := ctx.Read(d.in)
		if !ok {
			return nil
		}
		if err := ctx.Write(d.out, Buffer{Payload: b.Payload.(int) * 2, Size: 8}); err != nil {
			return err
		}
	}
}

func pipelineGraph(n int) (*Graph, *[]int) {
	got := &[]int{}
	var mu sync.Mutex
	g := NewGraph()
	g.AddFilter("S", func() Filter { return &source{n: n, stream: "nums"} })
	g.AddFilter("D", func() Filter { return &doubler{in: "nums", out: "doubled"} })
	g.AddFilter("C", func() Filter { return &sharedCollector{in: "doubled", mu: &mu, got: got} })
	g.Connect("S", "D", "nums")
	g.Connect("D", "C", "doubled")
	return g, got
}

// sharedCollector shares one slice+mutex across all copies.
type sharedCollector struct {
	BaseFilter
	in  string
	mu  *sync.Mutex
	got *[]int
}

func (c *sharedCollector) Process(ctx Ctx) error {
	for {
		b, ok := ctx.Read(c.in)
		if !ok {
			return nil
		}
		c.mu.Lock()
		*c.got = append(*c.got, b.Payload.(int))
		c.mu.Unlock()
	}
}

func checkDoubled(t *testing.T, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("collected %d values, want %d", len(got), n)
	}
	s := append([]int(nil), got...)
	sort.Ints(s)
	for i := 0; i < n; i++ {
		if s[i] != 2*i {
			t.Fatalf("sorted[%d] = %d, want %d", i, s[i], 2*i)
		}
	}
}

func TestPipelineSingleCopies(t *testing.T) {
	leakcheck.Check(t)
	g, got := pipelineGraph(100)
	pl := NewPlacement().
		Place("S", "h0", 1).
		Place("D", "h0", 1).
		Place("C", "h0", 1)
	r, err := NewRunner(g, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, *got, 100)
}

func TestPipelineTransparentCopiesEveryPolicy(t *testing.T) {
	for _, pol := range []Policy{RoundRobin(), WeightedRoundRobin(), DemandDriven()} {
		t.Run(pol.Name(), func(t *testing.T) {
			leakcheck.Check(t)
			g, got := pipelineGraph(500)
			pl := NewPlacement().
				Place("S", "h0", 1).
				Place("D", "h0", 2).
				Place("D", "h1", 3).
				Place("D", "h2", 1).
				Place("C", "h0", 1)
			r, err := NewRunner(g, pl, Options{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			st, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			checkDoubled(t, *got, 500)
			if st.Streams["nums"].Buffers != 500 {
				t.Fatalf("nums buffers = %d", st.Streams["nums"].Buffers)
			}
			total := int64(0)
			for _, n := range st.Streams["nums"].PerTargetHost {
				total += n
			}
			if total != 500 {
				t.Fatalf("per-target totals = %d", total)
			}
		})
	}
}

func TestWRRDeliversProportionally(t *testing.T) {
	leakcheck.Check(t)
	g, got := pipelineGraph(600)
	pl := NewPlacement().
		Place("S", "h0", 1).
		Place("D", "h1", 1).
		Place("D", "h2", 2).
		Place("C", "h0", 1)
	r, err := NewRunner(g, pl, Options{Policy: WeightedRoundRobin()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, *got, 600)
	per := st.Streams["nums"].PerTargetHost
	if per["h1"] != 200 || per["h2"] != 400 {
		t.Fatalf("WRR distribution = %v, want h1:200 h2:400", per)
	}
}

func TestDDGeneratesAcks(t *testing.T) {
	leakcheck.Check(t)
	g, got := pipelineGraph(200)
	pl := NewPlacement().
		Place("S", "h0", 1).
		Place("D", "h0", 1).
		Place("D", "h1", 1).
		Place("C", "h0", 1)
	r, err := NewRunner(g, pl, Options{Policy: DemandDriven()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, *got, 200)
	if st.Streams["nums"].Acks != 200 {
		t.Fatalf("acks = %d, want 200", st.Streams["nums"].Acks)
	}
	if st.Streams["doubled"].Acks != 200 {
		t.Fatalf("doubled acks = %d, want 200", st.Streams["doubled"].Acks)
	}
}

func TestRRIgnoresAcks(t *testing.T) {
	g, _ := pipelineGraph(50)
	pl := NewPlacement().
		Place("S", "h0", 1).Place("D", "h0", 1).Place("C", "h0", 1)
	r, _ := NewRunner(g, pl, Options{Policy: RoundRobin()})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams["nums"].Acks != 0 {
		t.Fatalf("RR produced %d acks", st.Streams["nums"].Acks)
	}
}

func TestMultipleUOWs(t *testing.T) {
	leakcheck.Check(t)
	g, got := pipelineGraph(40)
	pl := NewPlacement().
		Place("S", "h0", 1).Place("D", "h0", 2).Place("C", "h0", 1)
	r, _ := NewRunner(g, pl, Options{UOWs: []any{"t0", "t1", "t2"}})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(*got) != 120 {
		t.Fatalf("collected %d across 3 UOWs, want 120", len(*got))
	}
	if len(st.PerUOWSeconds) != 3 {
		t.Fatalf("per-UOW timings: %v", st.PerUOWSeconds)
	}
}

// uowEcho records the Work() descriptor it sees each unit of work.
type uowEcho struct {
	BaseFilter
	mu   sync.Mutex
	seen []any
}

func (u *uowEcho) Process(ctx Ctx) error {
	u.mu.Lock()
	u.seen = append(u.seen, ctx.Work())
	u.mu.Unlock()
	return nil
}

func TestWorkDescriptorReachesFilters(t *testing.T) {
	g := NewGraph()
	g.AddFilter("U", func() Filter { return &uowEcho{} })
	pl := NewPlacement().Place("U", "h0", 1)
	r, _ := NewRunner(g, pl, Options{UOWs: []any{7, 8}})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	u := r.Instances("U")[0].(*uowEcho)
	if len(u.seen) != 2 || u.seen[0] != 7 || u.seen[1] != 8 {
		t.Fatalf("seen = %v", u.seen)
	}
}

// failing fails on the k-th buffer.
type failing struct {
	BaseFilter
	in    string
	after int
}

func (f *failing) Process(ctx Ctx) error {
	for i := 0; ; i++ {
		_, ok := ctx.Read(f.in)
		if !ok {
			return nil
		}
		if i == f.after {
			return errors.New("synthetic failure")
		}
	}
}

func TestFilterErrorAbortsRun(t *testing.T) {
	g := NewGraph()
	g.AddFilter("S", func() Filter { return &source{n: 1_000_000, stream: "s"} })
	g.AddFilter("F", func() Filter { return &failing{in: "s", after: 3} })
	g.Connect("S", "F", "s")
	pl := NewPlacement().Place("S", "h0", 1).Place("F", "h0", 1)
	r, _ := NewRunner(g, pl, Options{QueueCap: 2})
	_, err := r.Run()
	if err == nil {
		t.Fatal("expected error")
	}
	if want := "synthetic failure"; !errorContains(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func errorContains(err error, sub string) bool {
	return err != nil && (len(err.Error()) >= len(sub)) && (func() bool {
		s := err.Error()
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	}())
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	g.AddFilter("A", func() Filter { return &source{n: 1, stream: "x"} })
	g.AddFilter("B", func() Filter { return &doubler{in: "x", out: "y"} })
	g.Connect("A", "B", "x")
	g.Connect("B", "A", "y") // cycle
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}

	g2 := NewGraph()
	g2.AddFilter("A", func() Filter { return &source{n: 1, stream: "x"} })
	g2.Connect("A", "Missing", "x")
	if err := g2.Validate(); err == nil {
		t.Fatal("missing consumer not detected")
	}
}

func TestPlacementValidation(t *testing.T) {
	g, _ := pipelineGraph(1)
	pl := NewPlacement().Place("S", "h0", 1) // D and C unplaced
	if _, err := NewRunner(g, pl, Options{}); err == nil {
		t.Fatal("unplaced filters not detected")
	}
}

func TestPlacementAccumulates(t *testing.T) {
	pl := NewPlacement().Place("F", "h0", 1).Place("F", "h0", 2).Place("F", "h1", 1)
	if got := pl.TotalCopies("F"); got != 4 {
		t.Fatalf("TotalCopies = %d", got)
	}
	entries := pl.Of("F")
	if len(entries) != 2 || entries[0].Copies != 3 {
		t.Fatalf("entries = %v", entries)
	}
	hosts := pl.Hosts()
	if len(hosts) != 2 || hosts[0] != "h0" || hosts[1] != "h1" {
		t.Fatalf("hosts = %v", hosts)
	}
}

// declFilter declares buffer bounds in Init and checks resolution in
// Process.
type declFilter struct {
	min, max int
	stream   string
	got      int
	produce  bool
}

func (d *declFilter) Init(ctx Ctx) error {
	ctx.DeclareBuffer(d.stream, d.min, d.max)
	return nil
}
func (d *declFilter) Process(ctx Ctx) error {
	d.got = ctx.BufferBytes(d.stream)
	if d.produce {
		return ctx.Write(d.stream, Buffer{Payload: 1, Size: 8})
	}
	for {
		if _, ok := ctx.Read(d.stream); !ok {
			return nil
		}
	}
}
func (d *declFilter) Finalize(Ctx) error { return nil }

func TestDeclareBufferResolution(t *testing.T) {
	cases := []struct {
		def, min, max, want int
	}{
		{def: 1000, min: 0, max: 0, want: 1000},
		{def: 1000, min: 2000, max: 0, want: 2000}, // min raises
		{def: 1000, min: 0, max: 500, want: 500},   // max caps
		{def: 1000, min: 100, max: 4000, want: 1000},
	}
	for i, c := range cases {
		g := NewGraph()
		var prod, cons *declFilter
		g.AddFilter("P", func() Filter {
			prod = &declFilter{min: c.min, max: c.max, stream: "s", produce: true}
			return prod
		})
		g.AddFilter("C", func() Filter {
			cons = &declFilter{stream: "s"}
			return cons
		})
		g.Connect("P", "C", "s")
		pl := NewPlacement().Place("P", "h0", 1).Place("C", "h0", 1)
		r, _ := NewRunner(g, pl, Options{BufferBytes: c.def})
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if prod.got != c.want || cons.got != c.want {
			t.Fatalf("case %d: resolved %d/%d, want %d", i, prod.got, cons.got, c.want)
		}
	}
}

// ctxProbe checks the identity accessors.
type ctxProbe struct {
	BaseFilter
	mu    sync.Mutex
	hosts map[string]int
	total int
	idxs  map[int]bool
}

func (c *ctxProbe) Process(ctx Ctx) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hosts == nil {
		c.hosts = map[string]int{}
		c.idxs = map[int]bool{}
	}
	c.hosts[ctx.Host()]++
	c.total = ctx.TotalCopies()
	c.idxs[ctx.CopyIndex()] = true
	return nil
}

func TestCopyIdentity(t *testing.T) {
	shared := &ctxProbe{}
	g := NewGraph()
	g.AddFilter("P", func() Filter { return shared })
	pl := NewPlacement().Place("P", "h0", 2).Place("P", "h1", 3)
	r, _ := NewRunner(g, pl, Options{})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if shared.total != 5 {
		t.Fatalf("TotalCopies = %d", shared.total)
	}
	if shared.hosts["h0"] != 2 || shared.hosts["h1"] != 3 {
		t.Fatalf("host spread = %v", shared.hosts)
	}
	for i := 0; i < 5; i++ {
		if !shared.idxs[i] {
			t.Fatalf("copy index %d missing: %v", i, shared.idxs)
		}
	}
}

func TestStatsBuffersAndBytes(t *testing.T) {
	leakcheck.Check(t)
	g, _ := pipelineGraph(64)
	pl := NewPlacement().Place("S", "h0", 1).Place("D", "h0", 1).Place("C", "h0", 1)
	r, _ := NewRunner(g, pl, Options{})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams["nums"].Bytes != 64*8 {
		t.Fatalf("bytes = %d", st.Streams["nums"].Bytes)
	}
	if st.Filters["D"].BuffersIn != 64 || st.Filters["D"].BuffersOut != 64 {
		t.Fatalf("filter D counters: %+v", st.Filters["D"])
	}
	if len(st.Filters["D"].WallSeconds) != 1 {
		t.Fatalf("per-copy timings missing")
	}
}

func TestFanInMultipleInputStreams(t *testing.T) {
	leakcheck.Check(t)
	// Two sources feed one collector over distinct streams.
	var mu sync.Mutex
	got := &[]int{}
	g := NewGraph()
	g.AddFilter("S1", func() Filter { return &source{n: 10, stream: "a"} })
	g.AddFilter("S2", func() Filter { return &source{n: 10, stream: "b"} })
	g.AddFilter("C", func() Filter { return &fanInCollector{mu: &mu, got: got} })
	g.Connect("S1", "C", "a")
	g.Connect("S2", "C", "b")
	pl := NewPlacement().Place("S1", "h0", 1).Place("S2", "h0", 1).Place("C", "h0", 1)
	r, _ := NewRunner(g, pl, Options{})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 20 {
		t.Fatalf("fan-in collected %d, want 20", len(*got))
	}
}

type fanInCollector struct {
	BaseFilter
	mu  *sync.Mutex
	got *[]int
}

func (c *fanInCollector) Process(ctx Ctx) error {
	for _, s := range []string{"a", "b"} {
		for {
			b, ok := ctx.Read(s)
			if !ok {
				break
			}
			c.mu.Lock()
			*c.got = append(*c.got, b.Payload.(int))
			c.mu.Unlock()
		}
	}
	return nil
}

func TestDDDirectsLoadAwayFromSlowConsumer(t *testing.T) {
	leakcheck.Check(t)
	// One fast and one artificially slow consumer copy set; DD should send
	// clearly more buffers to the fast host than RR's even split.
	run := func(pol Policy) map[string]int64 {
		var mu sync.Mutex
		got := &[]int{}
		g := NewGraph()
		g.AddFilter("S", func() Filter { return &source{n: 300, stream: "s"} })
		g.AddFilter("W", func() Filter { return &speedSensitive{out: "o"} })
		g.AddFilter("C", func() Filter { return &sharedCollector{in: "o", mu: &mu, got: got} })
		g.Connect("S", "W", "s")
		g.Connect("W", "C", "o")
		pl := NewPlacement().
			Place("S", "fast", 1).
			Place("W", "fast", 1).
			Place("W", "slow", 1).
			Place("C", "fast", 1)
		r, _ := NewRunner(g, pl, Options{Policy: pol, QueueCap: 8})
		st, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(*got) != 300 {
			t.Fatalf("lost buffers: %d", len(*got))
		}
		return st.Streams["s"].PerTargetHost
	}
	dd := run(DemandDriven())
	if dd["fast"] <= dd["slow"]*2 {
		t.Fatalf("DD did not favor fast host: %v", dd)
	}
	rr := run(RoundRobin())
	if rr["fast"] != rr["slow"] {
		t.Fatalf("RR should split evenly: %v", rr)
	}
}

// speedSensitive sleeps per buffer when running on the host named "slow",
// modeling a slow host without monopolizing the test machine's CPU.
type speedSensitive struct {
	BaseFilter
	out string
}

func (w *speedSensitive) Process(ctx Ctx) error {
	slow := ctx.Host() == "slow"
	for {
		b, ok := ctx.Read("s")
		if !ok {
			return nil
		}
		if slow {
			time.Sleep(2 * time.Millisecond)
		}
		if err := ctx.Write(w.out, b); err != nil {
			return err
		}
	}
}

func TestDuplicateFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewGraph()
	g.AddFilter("A", func() Filter { return &source{} })
	g.AddFilter("A", func() Filter { return &source{} })
}

func TestUnknownStreamReadPanics(t *testing.T) {
	g := NewGraph()
	g.AddFilter("A", func() Filter { return &badReader{} })
	pl := NewPlacement().Place("A", "h0", 1)
	r, _ := NewRunner(g, pl, Options{})
	_, err := r.Run()
	if err == nil {
		t.Fatal("expected error from panicking filter")
	}
	_ = fmt.Sprint(err)
}

// badReader panics by reading a stream that does not exist; the engine must
// convert the panic into a run error.
type badReader struct{ BaseFilter }

func (b *badReader) Process(ctx Ctx) error {
	ctx.Read("nonexistent")
	return nil
}

// Blocked-time accounting: a consumer that waits on a slow producer
// accrues read-blocked time, not busy time.
func TestBlockedTimeAccounting(t *testing.T) {
	g := NewGraph()
	g.AddFilter("P", func() Filter { return &slowProducer{} })
	g.AddFilter("C", func() Filter { return &sharedCollector{in: "s", mu: &sync.Mutex{}, got: &[]int{}} })
	g.Connect("P", "C", "s")
	pl := NewPlacement().Place("P", "h0", 1).Place("C", "h0", 1)
	r, _ := NewRunner(g, pl, Options{})
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	fs := st.Filters["C"]
	if fs.ReadBlockedSeconds[0] < 0.05 {
		t.Fatalf("consumer read-blocked = %v, want >= 50ms", fs.ReadBlockedSeconds[0])
	}
	if fs.BusySeconds[0] > fs.WallSeconds[0] {
		t.Fatalf("busy (%v) exceeds wall (%v)", fs.BusySeconds[0], fs.WallSeconds[0])
	}
}

type slowProducer struct{ BaseFilter }

func (s *slowProducer) Process(ctx Ctx) error {
	for i := 0; i < 3; i++ {
		time.Sleep(25 * time.Millisecond)
		if err := ctx.Write("s", Buffer{Payload: i, Size: 8}); err != nil {
			return err
		}
	}
	return nil
}
