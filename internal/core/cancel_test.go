package core

import (
	"errors"
	"testing"
	"time"
)

// cancelSource writes until Write fails and records that error — the
// observable half of the abort contract: a producer blocked on a full queue
// when a peer filter fails must be released with ErrCancelled, not left
// blocked forever.
type cancelSource struct {
	BaseFilter
	stream string
	werr   error
}

func (s *cancelSource) Process(ctx Ctx) error {
	for i := 0; ; i++ {
		if err := ctx.Write(s.stream, Buffer{Payload: i, Size: 8}); err != nil {
			s.werr = err
			return err
		}
	}
}

// readOneThenFail consumes a single buffer and fails the run.
type readOneThenFail struct {
	BaseFilter
	in string
}

func (f *readOneThenFail) Process(ctx Ctx) error {
	ctx.Read(f.in)
	return errors.New("synthetic sink failure")
}

// TestWriteReturnsErrCancelledOnPeerFailure: the sink fails after one
// buffer while the source is blocked writing into a full queue. The run
// must surface the sink's error and the source must observe ErrCancelled.
func TestWriteReturnsErrCancelledOnPeerFailure(t *testing.T) {
	src := &cancelSource{stream: "nums"}
	g := NewGraph()
	g.AddFilter("S", func() Filter { return src })
	g.AddFilter("K", func() Filter { return &readOneThenFail{in: "nums"} })
	g.Connect("S", "K", "nums")
	pl := NewPlacement().Place("S", "h0", 1).Place("K", "h0", 1)
	r, err := NewRunner(g, pl, Options{QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Run()
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run hung: blocked producer was never cancelled")
	}
	if err == nil {
		t.Fatal("sink failure not surfaced")
	}
	if errors.Is(err, ErrCancelled) {
		t.Fatalf("run error = %v: the application error must win over the cancellation it caused", err)
	}
	if !errors.Is(src.werr, ErrCancelled) {
		t.Fatalf("source write error = %v, want ErrCancelled", src.werr)
	}
}

// failingSource errors out before producing anything.
type failingSource struct {
	BaseFilter
	stream string
}

func (s *failingSource) Process(Ctx) error {
	return errors.New("synthetic source failure")
}

// blockedReader records how its read loop ended.
type blockedReader struct {
	BaseFilter
	in       string
	released bool
}

func (r *blockedReader) Process(ctx Ctx) error {
	for {
		_, ok := ctx.Read(r.in)
		if !ok {
			r.released = true
			return nil
		}
	}
}

// TestReadReleasedOnPeerFailure: a consumer blocked on an empty queue must
// be released (Read returns ok=false) when the producer fails, so the run
// terminates with the producer's error instead of deadlocking.
func TestReadReleasedOnPeerFailure(t *testing.T) {
	rd := &blockedReader{in: "nums"}
	g := NewGraph()
	g.AddFilter("S", func() Filter { return &failingSource{stream: "nums"} })
	g.AddFilter("K", func() Filter { return rd })
	g.Connect("S", "K", "nums")
	pl := NewPlacement().Place("S", "h0", 1).Place("K", "h0", 1)
	r, err := NewRunner(g, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Run()
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run hung: blocked consumer was never released")
	}
	if err == nil || errors.Is(err, ErrCancelled) {
		t.Fatalf("run error = %v, want the source's failure", err)
	}
	if !rd.released {
		t.Fatal("blocked reader did not observe end-of-stream on cancellation")
	}
}
