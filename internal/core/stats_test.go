package core

import (
	"strings"
	"testing"
)

func TestMinAvgMax(t *testing.T) {
	tests := []struct {
		name          string
		xs            []float64
		min, avg, max float64
	}{
		{"empty", nil, 0, 0, 0},
		{"single", []float64{3.5}, 3.5, 3.5, 3.5},
		{"ordered", []float64{1, 2, 3, 4}, 1, 2.5, 4},
		{"unordered", []float64{4, 1, 3, 2}, 1, 2.5, 4},
		{"negative", []float64{-2, 0, 2}, -2, 0, 2},
		{"repeated", []float64{5, 5, 5}, 5, 5, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			min, avg, max := MinAvgMax(tc.xs)
			if min != tc.min || avg != tc.avg || max != tc.max {
				t.Fatalf("MinAvgMax(%v) = %v, %v, %v; want %v, %v, %v",
					tc.xs, min, avg, max, tc.min, tc.avg, tc.max)
			}
		})
	}
}

func TestStreamNames(t *testing.T) {
	empty := &Stats{Streams: map[string]*StreamStats{}}
	if got := empty.StreamNames(); len(got) != 0 {
		t.Fatalf("empty stats names = %v", got)
	}

	single := &Stats{Streams: map[string]*StreamStats{"tris": {}}}
	if got := single.StreamNames(); len(got) != 1 || got[0] != "tris" {
		t.Fatalf("single stats names = %v", got)
	}

	multi := &Stats{Streams: map[string]*StreamStats{
		"pixels": {}, "tris": {}, "blocks": {},
	}}
	got := multi.StreamNames()
	want := []string{"blocks", "pixels", "tris"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want sorted %v", got, want)
		}
	}
}

func TestNewStatsShape(t *testing.T) {
	g := NewGraph()
	g.AddFilter("A", func() Filter { return nil })
	g.AddFilter("B", func() Filter { return nil })
	g.Connect("A", "B", "s1")
	st := NewStats(g)
	if st.Streams["s1"] == nil || st.Streams["s1"].PerTargetHost == nil {
		t.Fatal("stream stats not allocated")
	}
	if st.Filters["A"] == nil || st.Filters["B"] == nil {
		t.Fatal("filter stats not allocated")
	}
}

func TestNewRunnerRejectsNegativeOptions(t *testing.T) {
	g := NewGraph()
	g.AddFilter("S", func() Filter { return &source{n: 1, stream: "nums"} })
	g.AddFilter("K", func() Filter { return &sharedCollector{in: "nums"} })
	g.Connect("S", "K", "nums")
	pl := NewPlacement().Place("S", "h", 1).Place("K", "h", 1)

	if _, err := NewRunner(g, pl, Options{QueueCap: -1}); err == nil {
		t.Fatal("negative QueueCap accepted")
	} else if !strings.Contains(err.Error(), "QueueCap") {
		t.Fatalf("error %q does not name QueueCap", err)
	}

	if _, err := NewRunner(g, pl, Options{BufferBytes: -8}); err == nil {
		t.Fatal("negative BufferBytes accepted")
	} else if !strings.Contains(err.Error(), "BufferBytes") {
		t.Fatalf("error %q does not name BufferBytes", err)
	}

	// Zero still selects the defaults.
	if _, err := NewRunner(g, pl, Options{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}
